module E = Gnrflash_device.Electrostatics
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let stack = E.of_fgt F.paper_default

let test_matches_divider_no_charge () =
  let s = check_ok "solve" (E.solve stack ~vgs:15. ~vs:0. ~sigma_fg:0.) in
  let divider = E.vfg_divider stack ~vgs:15. ~vs:0. ~sigma_fg:0. in
  check_close ~tol:1e-6 "FD = series capacitors" divider s.E.vfg;
  (* xco = 2*xto with equal eps: VFG = VGS/3 * ... C_co = eps/10nm, C_to = eps/5nm
     -> VFG = (C_co*15)/(C_co+C_to) = (1/10*15)/(1/10+1/5) = 1.5/0.3 = 5 V *)
  check_close ~tol:1e-6 "two-plate divider value" 5. s.E.vfg

let test_matches_divider_with_charge () =
  let sigma = -0.01 in
  let s = check_ok "solve" (E.solve stack ~vgs:15. ~vs:0. ~sigma_fg:sigma) in
  let divider = E.vfg_divider stack ~vgs:15. ~vs:0. ~sigma_fg:sigma in
  check_close ~tol:1e-6 "with sheet charge" divider s.E.vfg;
  check_true "negative charge lowers VFG" (s.E.vfg < 5.)

let test_fields_consistent () =
  let s = check_ok "solve" (E.solve stack ~vgs:15. ~vs:0. ~sigma_fg:0.) in
  check_close ~tol:1e-6 "tunnel field" (s.E.vfg /. stack.E.xto) s.E.field_tunnel;
  check_close ~tol:1e-6 "control field" ((15. -. s.E.vfg) /. stack.E.xco) s.E.field_control;
  (* Gauss law at the uncharged FG: eps_co*E_co = eps_to*E_to *)
  check_close ~tol:1e-6 "flux continuity" s.E.field_control
    (s.E.field_tunnel *. stack.E.eps_r_to /. stack.E.eps_r_co *. (stack.E.xto /. stack.E.xto))

let test_potential_profile_piecewise_linear () =
  let s = check_ok "solve" (E.solve stack ~vgs:15. ~vs:0. ~sigma_fg:0.) in
  let n = Array.length s.E.potential in
  check_close "left boundary" 15. s.E.potential.(0);
  check_close "right boundary" 0. s.E.potential.(n - 1);
  (* monotone decreasing from gate to channel for positive VGS, no charge *)
  for i = 0 to n - 2 do
    check_true "monotone potential" (s.E.potential.(i + 1) <= s.E.potential.(i) +. 1e-9)
  done

let test_source_bias () =
  let s = check_ok "solve" (E.solve stack ~vgs:15. ~vs:0.05 ~sigma_fg:0.) in
  let divider = E.vfg_divider stack ~vgs:15. ~vs:0.05 ~sigma_fg:0. in
  check_close ~tol:1e-6 "source bias handled" divider s.E.vfg

let test_resolution_independence () =
  let coarse = E.of_fgt ~nodes_per_layer:10 F.paper_default in
  let fine = E.of_fgt ~nodes_per_layer:200 F.paper_default in
  let sc = check_ok "coarse" (E.solve coarse ~vgs:15. ~vs:0. ~sigma_fg:(-0.02)) in
  let sf = check_ok "fine" (E.solve fine ~vgs:15. ~vs:0. ~sigma_fg:(-0.02)) in
  check_close ~tol:1e-9 "grid independent (piecewise-linear exact)" sf.E.vfg sc.E.vfg

let test_eq3_agreement_with_fgt () =
  (* the Poisson VFG must agree with equation (3) when the network is the
     pure two-plate divider: build an Fgt with matching caps. Here we
     check the charge term's sign and scale through both models. *)
  let t = F.paper_default in
  let area = t.F.area in
  let q = -1e-18 in
  let sigma = q /. area in
  let s = check_ok "solve" (E.solve stack ~vgs:15. ~vs:0. ~sigma_fg:sigma) in
  (* eq (3) uses the 4-capacitor CT, Poisson the 2-plate stack: the charge
     term q/C differs by the CFS+CFB+CFD contribution; both must move VFG
     down by a comparable amount *)
  let vfg_eq3 = F.vfg t ~vgs:15. ~qfg:q in
  check_true "same direction" (s.E.vfg < 5. && vfg_eq3 < 9.);
  let drop_poisson = 5. -. s.E.vfg in
  let drop_eq3 = 9. -. vfg_eq3 in
  check_in "charge term same scale" ~lo:(drop_eq3 /. 3.) ~hi:(drop_eq3 *. 3.) drop_poisson

let test_degenerate_grid () =
  let bad = { stack with E.nodes_per_layer = 1 } in
  check_error "too few nodes" (E.solve bad ~vgs:1. ~vs:0. ~sigma_fg:0.)

let prop_linearity_in_vgs =
  prop "VFG linear in VGS" ~count:25 QCheck2.Gen.(float_range (-20.) 20.)
    (fun vgs ->
       match E.solve stack ~vgs ~vs:0. ~sigma_fg:0. with
       | Error _ -> false
       | Ok s -> abs_float (s.E.vfg -. (vgs /. 3.)) < 1e-6 *. (1. +. abs_float vgs))

let () =
  Alcotest.run "electrostatics"
    [
      ( "electrostatics",
        [
          case "matches divider (no charge)" test_matches_divider_no_charge;
          case "matches divider (charged)" test_matches_divider_with_charge;
          case "fields consistent" test_fields_consistent;
          case "potential profile" test_potential_profile_piecewise_linear;
          case "source bias" test_source_bias;
          case "grid independence" test_resolution_independence;
          case "eq(3) agreement" test_eq3_agreement_with_fgt;
          case "degenerate grid" test_degenerate_grid;
          prop_linearity_in_vgs;
        ] );
    ]
