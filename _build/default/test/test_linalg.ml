module L = Gnrflash_numerics.Linalg
open Gnrflash_testing.Testing

let test_dot () = check_close "dot" 32. (L.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |])

let test_norm2 () = check_close "norm" 5. (L.norm2 [| 3.; 4. |])

let test_vector_ops () =
  let a = [| 1.; 2. |] and b = [| 3.; 5. |] in
  check_close "add" 4. (L.add a b).(0);
  check_close "sub" (-3.) (L.sub a b).(1);
  check_close "scale" 4. (L.scale 2. a).(1)

let test_mat_vec () =
  let m = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let v = L.mat_vec m [| 1.; 1. |] in
  check_close "row0" 3. v.(0);
  check_close "row1" 7. v.(1)

let test_mat_mul () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let c = L.mat_mul a b in
  check_close "swap columns" 2. c.(0).(0);
  check_close "swap columns" 1. c.(0).(1)

let test_transpose () =
  let t = L.transpose [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  Alcotest.(check int) "rows" 3 (Array.length t);
  check_close "t(0,1)" 4. t.(0).(1)

let test_identity_mul () =
  let a = [| [| 2.; 1. |]; [| 7.; 3. |] |] in
  let i = L.identity 2 in
  let ai = L.mat_mul a i in
  check_close "a*i = a" a.(1).(0) ai.(1).(0)

let test_solve () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = check_ok "solve" (L.solve a [| 5.; 10. |]) in
  check_close ~tol:1e-12 "x0" 1. x.(0);
  check_close ~tol:1e-12 "x1" 3. x.(1)

let test_solve_pivoting () =
  (* zero on the diagonal forces a row swap *)
  let a = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = check_ok "solve" (L.solve a [| 2.; 3. |]) in
  check_close "x0" 3. x.(0);
  check_close "x1" 2. x.(1)

let test_solve_singular () =
  let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  check_error "singular" (L.solve a [| 1.; 2. |])

let test_solve_tridiag () =
  let sub = [| 0.; 1.; 1. |] and diag = [| 2.; 2.; 2. |] and sup = [| 1.; 1.; 0. |] in
  let x = check_ok "tridiag" (L.solve_tridiag ~sub ~diag ~sup [| 3.; 4.; 3. |]) in
  (* verify by substitution *)
  check_close ~tol:1e-12 "row0" 3. ((2. *. x.(0)) +. x.(1));
  check_close ~tol:1e-12 "row1" 4. (x.(0) +. (2. *. x.(1)) +. x.(2));
  check_close ~tol:1e-12 "row2" 3. (x.(1) +. (2. *. x.(2)))

let test_lstsq_exact () =
  (* overdetermined but consistent: y = 2x + 1 at 4 points *)
  let a = [| [| 1.; 0. |]; [| 1.; 1. |]; [| 1.; 2. |]; [| 1.; 3. |] |] in
  let b = [| 1.; 3.; 5.; 7. |] in
  let x = check_ok "lstsq" (L.lstsq a b) in
  check_close ~tol:1e-10 "intercept" 1. x.(0);
  check_close ~tol:1e-10 "slope" 2. x.(1)

let test_cmat2 () =
  let open Complex in
  let m = { L.a = one; b = i; c = zero; d = one } in
  let p = L.cmat2_mul m m in
  check_close "a" 1. p.L.a.re;
  check_close "b.im doubles" 2. p.L.b.im;
  let d = L.cmat2_det m in
  check_close "det" 1. d.re;
  check_close "det im" 0. d.im

let test_cmat2_identity () =
  let open Complex in
  let m = { L.a = { re = 2.; im = 1. }; b = i; c = one; d = { re = 0.; im = -3. } } in
  let p = L.cmat2_mul m L.cmat2_id in
  check_close "preserved" m.L.a.re p.L.a.re;
  check_close "preserved" m.L.d.im p.L.d.im

let prop_solve_roundtrip =
  prop "solve then multiply returns rhs" ~count:100
    QCheck2.Gen.(array_size (return 4) (float_range (-10.) 10.))
    (fun entries ->
       let a =
         [|
           [| entries.(0) +. 5.; entries.(1) |];
           [| entries.(2); entries.(3) +. 5. |];
         |]
       in
       let b = [| 1.; 2. |] in
       match L.solve a b with
       | Error _ -> true (* singular combinations are acceptable *)
       | Ok x ->
         let b' = L.mat_vec a x in
         abs_float (b'.(0) -. 1.) < 1e-8 && abs_float (b'.(1) -. 2.) < 1e-8)

let () =
  Alcotest.run "linalg"
    [
      ( "linalg",
        [
          case "dot" test_dot;
          case "norm2" test_norm2;
          case "vector ops" test_vector_ops;
          case "mat_vec" test_mat_vec;
          case "mat_mul" test_mat_mul;
          case "transpose" test_transpose;
          case "identity" test_identity_mul;
          case "solve 2x2" test_solve;
          case "solve needs pivoting" test_solve_pivoting;
          case "solve singular" test_solve_singular;
          case "tridiagonal" test_solve_tridiag;
          case "least squares exact" test_lstsq_exact;
          case "complex 2x2 multiply" test_cmat2;
          case "complex 2x2 identity" test_cmat2_identity;
          prop_solve_roundtrip;
        ] );
    ]
