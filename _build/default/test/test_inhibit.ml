module I = Gnrflash_memory.Inhibit
module D = Gnrflash_device
open Gnrflash_testing.Testing

let t = D.Fgt.paper_default

let test_boosted_channel () =
  (* 1.1 + 0.8*15 = 13.1 V at t = 0 *)
  check_close ~tol:1e-9 "initial boost" 13.1
    (I.boosted_channel I.default ~vgs_program:15. ~t_elapsed:0.);
  (* decays with the leak time *)
  let v1 = I.boosted_channel I.default ~vgs_program:15. ~t_elapsed:100e-6 in
  check_close ~tol:1e-6 "one tau" (13.1 *. exp (-1.)) v1

let test_config_validation () =
  Alcotest.check_raises "ratio" (Invalid_argument "Inhibit: boost_ratio out of (0, 1)")
    (fun () ->
       ignore
         (I.boosted_channel { I.default with I.boost_ratio = 1.5 } ~vgs_program:15.
            ~t_elapsed:0.))

let test_inhibited_field_small () =
  (* VFG = 9 V, channel boosted to 13.1 V: the field is negative (no
     injection at all at the start of the pulse) *)
  let f = I.inhibited_tunnel_field I.default t ~vgs_program:15. ~qfg:0. ~t_elapsed:0. in
  check_true "field reversed or tiny" (f < 1e8);
  (* vs the raw programming field of 18 MV/cm *)
  check_true "far below program field" (f < D.Fgt.tunnel_field t ~vgs:15. ~qfg:0. /. 10.)

let test_disturb_ratio () =
  let r = I.disturb_ratio I.default t ~vgs_program:15. in
  (* boosting must beat the VGS/2 scheme by many orders of magnitude *)
  check_in "ratio" ~lo:0. ~hi:1e-6 r

let test_dvt_accumulation_negligible () =
  let dvt = I.dvt_after_events t ~vgs_program:15. ~pulse_width:10e-6 ~events:1000 in
  (* after 1000 neighbouring programs the boosted cell barely moves *)
  check_in "bounded drift" ~lo:0. ~hi:0.2 dvt;
  (* the half-select scheme under the same exposure drifts visibly more *)
  match D.Disturb.dvt_after_events t ~qfg0:0. ~events:1000 with
  | Ok half -> check_true "boosting beats half-select" (dvt <= half +. 1e-12)
  | Error e -> Alcotest.fail e

let test_dvt_monotone_in_events () =
  let d n = I.dvt_after_events t ~vgs_program:15. ~pulse_width:10e-6 ~events:n in
  check_true "monotone" (d 100 <= d 1000 +. 1e-12);
  check_close "zero events" 0. (d 0)

let test_validation () =
  Alcotest.check_raises "events" (Invalid_argument "Inhibit.dvt_after_events: negative events")
    (fun () -> ignore (I.dvt_after_events t ~vgs_program:15. ~pulse_width:1e-6 ~events:(-1)))

let () =
  Alcotest.run "inhibit"
    [
      ( "inhibit",
        [
          case "boosted channel" test_boosted_channel;
          case "config validation" test_config_validation;
          case "inhibited field" test_inhibited_field_small;
          case "disturb ratio" test_disturb_ratio;
          case "accumulated drift" test_dvt_accumulation_negligible;
          case "monotone in events" test_dvt_monotone_in_events;
          case "validation" test_validation;
        ] );
    ]
