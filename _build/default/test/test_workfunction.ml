module W = Gnrflash_materials.Workfunction
module O = Gnrflash_materials.Oxide
open Gnrflash_testing.Testing

let test_reference_values () =
  check_close "n+ poly" 4.05 (W.work_function W.N_poly_si);
  check_close "graphene" 4.56 (W.work_function W.Graphene);
  check_close "Al" 4.28 (W.work_function W.Aluminium);
  check_close "custom" 5.1 (W.work_function (W.Custom ("x", 5.1)))

let test_mlgnr_monotone_to_graphite () =
  let w1 = W.work_function (W.Mlgnr 1) in
  let w3 = W.work_function (W.Mlgnr 3) in
  let w20 = W.work_function (W.Mlgnr 20) in
  check_close "monolayer = graphene" (W.work_function W.Graphene) w1;
  check_true "increases with layers" (w3 > w1);
  check_close ~tol:1e-3 "approaches graphite" 4.6 w20

let test_cnt_diameter_dependence () =
  let small = W.work_function (W.Cnt 0.8e-9) in
  let large = W.work_function (W.Cnt 2.0e-9) in
  check_true "smaller tube, larger wf" (small > large);
  check_in "around 4.8" ~lo:4.7 ~hi:5.0 small

let test_barrier_height () =
  check_close "paper barrier" 3.2
    (W.barrier_height (W.Custom ("paper", 4.1)) O.sio2);
  check_close "graphene/SiO2" 3.66 (W.barrier_height W.Graphene O.sio2);
  check_true "HfO2 barrier smaller"
    (W.barrier_height W.Graphene O.hfo2 < W.barrier_height W.Graphene O.sio2)

let test_si_sio2_reference () = check_close "textbook" 3.2 W.si_sio2_barrier

let test_names () =
  Alcotest.(check string) "mlgnr" "MLGNR(3)" (W.name (W.Mlgnr 3));
  Alcotest.(check string) "custom" "x" (W.name (W.Custom ("x", 5.)))

let prop_barrier_decreases_with_affinity =
  prop "higher-affinity oxide gives lower barrier" ~count:20
    QCheck2.Gen.(float_range 4.0 5.2)
    (fun wf ->
       let e = W.Custom ("probe", wf) in
       W.barrier_height e O.hfo2 < W.barrier_height e O.sio2)

let () =
  Alcotest.run "workfunction"
    [
      ( "workfunction",
        [
          case "reference values" test_reference_values;
          case "MLGNR approach to graphite" test_mlgnr_monotone_to_graphite;
          case "CNT diameter dependence" test_cnt_diameter_dependence;
          case "barrier heights" test_barrier_height;
          case "Si/SiO2 textbook value" test_si_sio2_reference;
          case "names" test_names;
          prop_barrier_decreases_with_affinity;
        ] );
    ]
