test/common/testing.ml: Alcotest QCheck2 QCheck_alcotest
