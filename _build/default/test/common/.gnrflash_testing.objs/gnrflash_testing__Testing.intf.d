test/common/testing.mli: Alcotest QCheck2
