module Che = Gnrflash_quantum.Che
open Gnrflash_testing.Testing

let p = Che.default_si

let test_default_parameters () =
  check_close "lambda" 9.2e-9 p.Che.lambda;
  check_close "barrier" 3.2 p.Che.phi_b_ev;
  check_close "prefactor" 2e-3 p.Che.prefactor

let test_injection_probability_zero_field () =
  check_close "no field, no injection" 0. (Che.injection_probability p ~lateral_field:0.);
  check_close "reverse field" 0. (Che.injection_probability p ~lateral_field:(-1e8))

let test_injection_probability_magnitude () =
  (* at 5e8 V/m (typical drain-side peak): exponent = 3.2/(5e8*9.2e-9) = 0.6957 *)
  let prob = Che.injection_probability p ~lateral_field:5e8 in
  check_close ~tol:1e-6 "lucky electron" (2e-3 *. exp (-3.2 /. (5e8 *. 9.2e-9))) prob;
  check_in "well below 1" ~lo:0. ~hi:1e-2 prob

let test_gate_current () =
  let ig = Che.gate_current p ~drain_current:1e-3 ~lateral_field:5e8 in
  check_true "some injection" (ig > 0.);
  check_true "tiny fraction of Id" (ig < 1e-5)

let test_gate_current_validation () =
  Alcotest.check_raises "negative Id"
    (Invalid_argument "Che.gate_current: negative drain current") (fun () ->
      ignore (Che.gate_current p ~drain_current:(-1.) ~lateral_field:1e8))

let test_programming_budget_vs_fn () =
  (* the paper's Section II point: CHE needs ~mA per cell, so programming a
     4 kB page costs amps, while FN needs < 1 nA per cell *)
  let budget = Che.programming_current_budget p ~drain_current:0.5e-3
      ~lateral_field:5e8 ~cells:32768 in
  check_true "CHE page budget exceeds 10 A" (budget > 10.);
  let fn_budget = 1e-9 *. 32768. in
  check_true "FN page budget under 0.1 mA" (fn_budget < 1e-4);
  check_true "FN advantage > 1e5" (budget /. fn_budget > 1e5)

let prop_injection_monotone_in_field =
  prop "injection probability increases with lateral field"
    QCheck2.Gen.(float_range 1e8 1e9)
    (fun e ->
       Che.injection_probability p ~lateral_field:(e *. 1.2)
       > Che.injection_probability p ~lateral_field:e)

let prop_gate_current_linear_in_id =
  prop "gate current linear in drain current" QCheck2.Gen.(float_range 1e-5 1e-2)
    (fun id ->
       let e = 4e8 in
       let i1 = Che.gate_current p ~drain_current:id ~lateral_field:e in
       let i2 = Che.gate_current p ~drain_current:(2. *. id) ~lateral_field:e in
       abs_float ((i2 /. i1) -. 2.) < 1e-9)

let () =
  Alcotest.run "che"
    [
      ( "che",
        [
          case "default parameters" test_default_parameters;
          case "zero field" test_injection_probability_zero_field;
          case "lucky-electron magnitude" test_injection_probability_magnitude;
          case "gate current" test_gate_current;
          case "validation" test_gate_current_validation;
          case "CHE vs FN budget (paper Section II)" test_programming_budget_vs_fn;
          prop_injection_monotone_in_field;
          prop_gate_current_linear_in_id;
        ] );
    ]
