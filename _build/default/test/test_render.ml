module P = Gnrflash_plot
open Gnrflash_testing.Testing

let fig () =
  P.Figure.make ~title:"test figure" ~xlabel:"x" ~ylabel:"y"
    [
      P.Series.make ~label:"linear" [| (0., 1.); (1., 2.); (2., 4.) |];
      P.Series.make ~label:"flat" [| (0., 3.); (2., 3.) |];
    ]

let test_figure_filters_log_invalid () =
  let f =
    P.Figure.make ~title:"log" ~yscale:P.Scale.Log10
      [ P.Series.make ~label:"mixed" [| (0., -1.); (1., 10.); (2., 100.) |] ]
  in
  let s = List.hd f.P.Figure.series in
  Alcotest.(check int) "negative dropped" 2 (Array.length s.P.Series.points)

let test_figure_rejects_empty () =
  Alcotest.check_raises "no points" (Invalid_argument "Figure.make: no plottable points")
    (fun () ->
       ignore
         (P.Figure.make ~title:"empty" ~yscale:P.Scale.Log10
            [ P.Series.make ~label:"neg" [| (0., -1.) |] ]))

let test_figure_drops_nan () =
  let f = P.Figure.make ~title:"nan" [ P.Series.make ~label:"s" [| (0., nan); (1., 2.) |] ] in
  Alcotest.(check int) "nan dropped" 1
    (Array.length (List.hd f.P.Figure.series).P.Series.points)

let test_ascii_render_contains_content () =
  let out = P.Ascii.render ~width:40 ~height:10 (fig ()) in
  check_true "title present" (String.length out > 0);
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_true "title" (contains "test figure" out);
  check_true "legend series 1" (contains "linear" out);
  check_true "legend series 2" (contains "flat" out);
  check_true "axis label" (contains "x:" out);
  check_true "glyph plotted" (contains "*" out)

let test_ascii_dimensions () =
  let out = P.Ascii.render ~width:30 ~height:8 (fig ()) in
  let lines = String.split_on_char '\n' out in
  (* title + 8 canvas rows + axis + xlabels + labels + 2 legend lines *)
  check_true "enough lines" (List.length lines >= 12)

let test_svg_well_formed () =
  let out = P.Svg.render (fig ()) in
  let starts_with p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  check_true "svg root" (starts_with "<svg" out);
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_true "closes" (contains "</svg>" out);
  check_true "polyline" (contains "<polyline" out);
  check_true "legend text" (contains "linear" out)

let test_svg_escapes () =
  let f =
    P.Figure.make ~title:"a < b & c" [ P.Series.make ~label:"s<1>" [| (0., 1.); (1., 2.) |] ]
  in
  let out = P.Svg.render f in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_true "escaped lt" (contains "a &lt; b &amp; c" out);
  check_false "raw angle in label" (contains "s<1>" out)

let test_csv_format () =
  let out = P.Csv.of_figure (fig ()) in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check string) "header" "series,x,y" (List.hd lines);
  Alcotest.(check int) "rows" (1 + 3 + 2) (List.length lines)

let test_csv_quoting () =
  let f =
    P.Figure.make ~title:"q" [ P.Series.make ~label:"a,b" [| (0., 1.) |] ]
  in
  let out = P.Csv.of_figure f in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_true "quoted label" (contains "\"a,b\"" out)

let test_csv_table () =
  let out = P.Csv.of_table ~header:[ "a"; "b" ] [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "3 lines" 3 (List.length lines);
  Alcotest.check_raises "ragged" (Invalid_argument "Csv.of_table: ragged row") (fun () ->
      ignore (P.Csv.of_table ~header:[ "a" ] [ [ 1.; 2. ] ]))

let test_file_roundtrips () =
  let dir = Filename.temp_file "gnrflash" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let svg_path = Filename.concat dir "fig.svg" in
  let csv_path = Filename.concat dir "fig.csv" in
  P.Svg.save ~path:svg_path (fig ());
  P.Csv.save_figure ~path:csv_path (fig ());
  check_true "svg exists" (Sys.file_exists svg_path);
  check_true "csv exists" (Sys.file_exists csv_path);
  let ic = open_in csv_path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "csv header on disk" "series,x,y" line

let () =
  Alcotest.run "render"
    [
      ( "render",
        [
          case "log filtering" test_figure_filters_log_invalid;
          case "empty rejected" test_figure_rejects_empty;
          case "nan dropped" test_figure_drops_nan;
          case "ascii contents" test_ascii_render_contains_content;
          case "ascii dimensions" test_ascii_dimensions;
          case "svg well-formed" test_svg_well_formed;
          case "svg escaping" test_svg_escapes;
          case "csv format" test_csv_format;
          case "csv quoting" test_csv_quoting;
          case "csv table" test_csv_table;
          case "file save roundtrips" test_file_roundtrips;
        ] );
    ]
