module F = Gnrflash_memory.Ftl
module W = Gnrflash_memory.Workload
open Gnrflash_testing.Testing

let small = { F.blocks = 4; pages_per_block = 8; gc_threshold = 4; endurance_limit = 1000 }

let test_create () =
  let t = F.create small in
  (* (4-1) blocks x 8 pages x 7/8 = 21 *)
  Alcotest.(check int) "logical capacity" 21 (F.logical_capacity t);
  let s = F.stats t in
  Alcotest.(check int) "no writes" 0 s.F.host_writes;
  Alcotest.(check int) "no erases" 0 s.F.erases

let test_create_validation () =
  Alcotest.check_raises "one block" (Invalid_argument "Ftl.create: need >= 2 blocks and >= 1 page")
    (fun () -> ignore (F.create { small with F.blocks = 1 }))

let test_write_and_read () =
  let t = F.create small in
  let t = check_ok "write" (F.write t ~lpn:5) in
  (match F.read t ~lpn:5 with
   | Some _ -> ()
   | None -> Alcotest.fail "mapping missing");
  check_true "unwritten page unmapped" (F.read t ~lpn:6 = None)

let test_rewrite_moves_page () =
  let t = F.create small in
  let t = check_ok "w1" (F.write t ~lpn:3) in
  let loc1 = F.read t ~lpn:3 in
  let t = check_ok "w2" (F.write t ~lpn:3) in
  let loc2 = F.read t ~lpn:3 in
  check_true "out-of-place update" (loc1 <> loc2);
  let s = F.stats t in
  Alcotest.(check int) "2 host writes" 2 s.F.host_writes

let test_out_of_range () =
  let t = F.create small in
  check_error "lpn" (F.write t ~lpn:99)

let test_trim () =
  let t = F.create small in
  let t = check_ok "write" (F.write t ~lpn:1) in
  let t = F.trim t ~lpn:1 in
  check_true "unmapped after trim" (F.read t ~lpn:1 = None)

let test_gc_triggers_under_pressure () =
  let t = F.create small in
  (* hammer one logical page enough to exhaust free pages repeatedly *)
  let rec hammer t n = if n = 0 then t else hammer (check_ok "write" (F.write t ~lpn:0)) (n - 1) in
  let t = hammer t 100 in
  let s = F.stats t in
  check_true "GC ran" (s.F.gc_runs > 0);
  check_true "erases happened" (s.F.erases > 0);
  Alcotest.(check int) "all writes landed" 100 s.F.host_writes;
  (* the page is still readable *)
  check_true "still mapped" (F.read t ~lpn:0 <> None)

let test_write_amplification_bounds () =
  let t = F.create small in
  let ops = W.generate ~seed:5 W.Uniform ~pages:28 ~strings:1 ~ops:300 ~read_fraction:0. in
  let t = check_ok "trace" (F.run_trace t ops) in
  let s = F.stats t in
  check_true "wa >= 1" (s.F.write_amplification >= 1.);
  check_true "wa sane" (s.F.write_amplification < 10.)

let test_wear_leveling_spread () =
  let t = F.create { small with F.blocks = 8 } in
  let ops = W.generate ~seed:9 W.Uniform ~pages:56 ~strings:1 ~ops:2000 ~read_fraction:0. in
  let t = check_ok "trace" (F.run_trace t ops) in
  let s = F.stats t in
  check_true "work spread over blocks" (s.F.min_erase_count > 0);
  (* allocation prefers cold blocks: spread stays a small multiple of min *)
  check_true "bounded spread"
    (float_of_int s.F.max_erase_count <= (3. *. float_of_int s.F.min_erase_count) +. 5.)

let test_sequential_vs_random_wa () =
  (* sequential rewrites invalidate whole blocks: cheaper GC than random *)
  let run pattern =
    let t = F.create { small with F.blocks = 8 } in
    let ops = W.generate ~seed:4 pattern ~pages:56 ~strings:1 ~ops:1500 ~read_fraction:0. in
    let t = check_ok "trace" (F.run_trace t ops) in
    (F.stats t).F.write_amplification
  in
  let wa_seq = run W.Sequential in
  let wa_zipf = run (W.Zipf 1.2) in
  check_true "sequential WA modest" (wa_seq < 2.5);
  check_true "both computed" (wa_zipf >= 1.)

let test_endurance_retirement () =
  let t = F.create { small with F.endurance_limit = 3 } in
  let rec hammer t n =
    if n = 0 then Ok t
    else match F.write t ~lpn:0 with Ok t -> hammer t (n - 1) | Error e -> Error e
  in
  (* blocks retire after 3 erases each; the device eventually fills *)
  (match hammer t 2000 with
   | Ok t ->
     let s = F.stats t in
     check_true "some retirement happened" (s.F.retired_blocks > 0)
   | Error _ -> () (* running out of space after retirement is the expected end state *));
  ()

let prop_mapping_consistent_after_random_trace =
  prop "every mapping points at a Valid page holding that lpn" ~count:20
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
       let t = F.create small in
       let capacity = F.logical_capacity t in
       let ops =
         W.generate ~seed W.Uniform ~pages:capacity ~strings:1 ~ops:200
           ~read_fraction:0.
       in
       match F.run_trace t ops with
       | Error _ -> false
       | Ok t ->
         let ok = ref true in
         for lpn = 0 to capacity - 1 do
           match F.read t ~lpn with
           | None -> ()
           | Some _ -> if F.read t ~lpn = None then ok := false
         done;
         !ok)

let prop_written_pages_stay_mapped =
  prop "a written lpn stays mapped through GC" ~count:20
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
       let t = F.create small in
       let capacity = F.logical_capacity t in
       let target = seed mod capacity in
       match F.write t ~lpn:target with
       | Error _ -> false
       | Ok t ->
         (* churn other pages hard enough to force GC *)
         let ops =
           W.generate ~seed:(seed + 1) W.Uniform ~pages:capacity ~strings:1
             ~ops:150 ~read_fraction:0.
         in
         (match F.run_trace t ops with
          | Error _ -> false
          | Ok t -> F.read t ~lpn:target <> None))

let () =
  Alcotest.run "ftl"
    [
      ( "ftl",
        [
          case "create" test_create;
          case "create validation" test_create_validation;
          case "write and read" test_write_and_read;
          case "out-of-place rewrite" test_rewrite_moves_page;
          case "lpn range" test_out_of_range;
          case "trim" test_trim;
          case "gc under pressure" test_gc_triggers_under_pressure;
          case "write amplification" test_write_amplification_bounds;
          case "wear leveling" test_wear_leveling_spread;
          case "sequential vs random" test_sequential_vs_random_wa;
          case "endurance retirement" test_endurance_retirement;
          prop_mapping_consistent_after_random_trace;
          prop_written_pages_stay_mapped;
        ] );
    ]
