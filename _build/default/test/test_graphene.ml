module G = Gnrflash_materials.Graphene
module C = Gnrflash_physics.Constants
open Gnrflash_testing.Testing

let ev = C.ev

let test_dispersion_linear () =
  let k = 1e9 in
  check_close ~tol:1e-12 "E = hbar vF k" (C.hbar *. 1e6 *. k) (G.dispersion k);
  check_close "doubles with k" (2. *. G.dispersion k) (G.dispersion (2. *. k))

let test_dos_linear () =
  let e = 0.1 *. ev in
  check_close "DOS doubles with E" (2. *. G.density_of_states e)
    (G.density_of_states (2. *. e));
  check_close "symmetric" (G.density_of_states e) (G.density_of_states (-.e));
  (* textbook magnitude at 0.1 eV: ~1.47e17 states/eV/m^2 *)
  check_close ~tol:0.01 "magnitude" 1.47e17 (G.density_of_states e *. ev)

let test_degenerate_density () =
  (* n(EF) = EF^2/(pi (hbar vF)^2); at 0.2 eV ~ 2.95e16 m^-2 *)
  let n = G.carrier_density ~ef:(0.2 *. ev) ~t:0. in
  check_close ~tol:0.01 "n at 0.2 eV" 2.95e16 n

let test_density_sign () =
  check_true "electrons" (G.carrier_density ~ef:(0.1 *. ev) ~t:0. > 0.);
  check_true "holes" (G.carrier_density ~ef:(-0.1 *. ev) ~t:0. < 0.);
  check_close "neutral" 0. (G.carrier_density ~ef:0. ~t:0.)

let test_finite_t_approaches_degenerate () =
  let ef = 0.3 *. ev in
  let n0 = G.carrier_density ~ef ~t:0. in
  let n300 = G.carrier_density ~ef ~t:300. in
  check_close ~tol:0.05 "near-degenerate" n0 n300

let test_neutrality_finite_t () =
  check_abs ~tol:1e12 "electron-hole symmetry at Dirac point" 0.
    (G.carrier_density ~ef:0. ~t:300.)

let test_quantum_capacitance_degenerate () =
  let ef = 0.2 *. ev in
  let expected = 2. *. C.q *. C.q *. ef /. (Float.pi *. ((C.hbar *. 1e6) ** 2.)) in
  check_close ~tol:1e-9 "degenerate Cq" expected (G.quantum_capacitance ~ef ~t:0.)

let test_quantum_capacitance_thermal_floor () =
  let cq = G.quantum_capacitance ~ef:0. ~t:300. in
  check_true "thermal floor" (cq > 0.);
  (* literature: ~0.8 uF/cm^2 = 8e-3 F/m^2 at the Dirac point, 300 K *)
  check_close ~tol:0.05 "magnitude" 8.4e-3 cq

let test_quantum_capacitance_large_ef_no_overflow () =
  let cq = G.quantum_capacitance ~ef:(2. *. ev) ~t:300. in
  check_true "finite" (Float.is_finite cq)

let test_fermi_level_inversion () =
  let n = 5e16 in
  let ef = G.fermi_level_for_density ~n ~t:300. in
  let back = G.carrier_density ~ef ~t:300. in
  check_close ~tol:1e-4 "roundtrip" n back

let test_fermi_level_inversion_holes () =
  let ef = G.fermi_level_for_density ~n:(-3e16) ~t:300. in
  check_true "negative EF for holes" (ef < 0.)

let prop_cq_increases_with_ef =
  prop "Cq monotone in |EF|" QCheck2.Gen.(float_range 0.01 0.5) (fun ef_ev ->
      let c1 = G.quantum_capacitance ~ef:(ef_ev *. ev) ~t:300. in
      let c2 = G.quantum_capacitance ~ef:((ef_ev +. 0.05) *. ev) ~t:300. in
      c2 > c1)

let prop_density_odd =
  prop "n(-EF) = -n(EF) at T=0" QCheck2.Gen.(float_range 0.01 0.6) (fun ef_ev ->
      let n1 = G.carrier_density ~ef:(ef_ev *. ev) ~t:0. in
      let n2 = G.carrier_density ~ef:(-.ef_ev *. ev) ~t:0. in
      abs_float (n1 +. n2) <= 1e-9 *. abs_float n1)

let () =
  Alcotest.run "graphene"
    [
      ( "graphene",
        [
          case "linear dispersion" test_dispersion_linear;
          case "linear DOS" test_dos_linear;
          case "degenerate density" test_degenerate_density;
          case "density sign" test_density_sign;
          case "finite-T ~ degenerate" test_finite_t_approaches_degenerate;
          case "neutrality at Dirac point" test_neutrality_finite_t;
          case "Cq degenerate limit" test_quantum_capacitance_degenerate;
          case "Cq thermal floor" test_quantum_capacitance_thermal_floor;
          case "Cq no overflow" test_quantum_capacitance_large_ef_no_overflow;
          case "EF(n) inversion" test_fermi_level_inversion;
          case "EF(n) holes" test_fermi_level_inversion_holes;
          prop_cq_increases_with_ef;
          prop_density_odd;
        ] );
    ]
