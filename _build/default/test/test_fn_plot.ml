module Fp = Gnrflash_quantum.Fn_plot
module Fn = Gnrflash_quantum.Fn
module Grid = Gnrflash_numerics.Grid
open Gnrflash_testing.Testing

let p = Fn.coefficients ~phi_b_ev:3.2 ~m_ox_rel:0.42

let fields = Grid.linspace 8e8 1.8e9 15

let test_points_are_linear () =
  (* the FN plot of the exact model is a perfect line: check collinearity *)
  let pts = Fp.points p ~fields in
  let x0, y0 = pts.(0) and x1, y1 = pts.(Array.length pts - 1) in
  let slope = (y1 -. y0) /. (x1 -. x0) in
  Array.iter
    (fun (x, y) ->
       check_close ~tol:1e-9 "collinear" (y0 +. (slope *. (x -. x0))) y)
    pts

let test_points_slope_is_minus_b () =
  let pts = Fp.points p ~fields in
  let x0, y0 = pts.(0) and x1, y1 = pts.(Array.length pts - 1) in
  check_close ~tol:1e-9 "slope = -B" (-.p.Fn.b) ((y1 -. y0) /. (x1 -. x0))

let test_extract_roundtrip () =
  let e = check_ok "extract" (Fp.extract_from_model p ~fields) in
  check_close ~tol:1e-6 "A recovered" p.Fn.a e.Fp.a;
  check_close ~tol:1e-6 "B recovered" p.Fn.b e.Fp.b;
  check_close ~tol:1e-9 "perfect line" 1. e.Fp.r_squared

let test_extract_with_noise () =
  let rng = Random.State.make [| 7 |] in
  let currents =
    Array.map
      (fun e ->
         Fn.current_density p ~field:e
         *. (1. +. (0.03 *. ((2. *. Random.State.float rng 1.) -. 1.))))
      fields
  in
  let e = check_ok "extract" (Fp.extract ~fields ~currents) in
  check_close ~tol:0.02 "B within 2%" p.Fn.b e.Fp.b;
  check_in "R^2 still high" ~lo:0.99 ~hi:1. e.Fp.r_squared

let test_points_of_data_drops_invalid () =
  let pts =
    Fp.points_of_data ~fields:[| 1e9; 1.2e9; 1.4e9 |] ~currents:[| 1.; 0.; -3. |]
  in
  Alcotest.(check int) "only positive J kept" 1 (Array.length pts)

let test_extract_too_few () =
  check_error "one point" (Fp.extract ~fields:[| 1e9 |] ~currents:[| 1. |])

let test_length_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Fn_plot.points_of_data: length mismatch") (fun () ->
      ignore (Fp.points_of_data ~fields:[| 1e9 |] ~currents:[| 1.; 2. |]))

let prop_extraction_stable_across_ranges =
  prop "B recovered from any sub-range" ~count:25
    QCheck2.Gen.(float_range 6e8 1.2e9)
    (fun lo ->
       let fields = Grid.linspace lo (lo *. 1.8) 10 in
       match Fp.extract_from_model p ~fields with
       | Error _ -> false
       | Ok e -> abs_float (e.Fp.b -. p.Fn.b) <= 1e-4 *. p.Fn.b)

let () =
  Alcotest.run "fn_plot"
    [
      ( "fn_plot",
        [
          case "model points collinear" test_points_are_linear;
          case "slope equals -B" test_points_slope_is_minus_b;
          case "round-trip extraction" test_extract_roundtrip;
          case "noisy extraction" test_extract_with_noise;
          case "invalid points dropped" test_points_of_data_drops_invalid;
          case "too few points" test_extract_too_few;
          case "length mismatch" test_length_mismatch;
          prop_extraction_stable_across_ranges;
        ] );
    ]
