module R = Gnrflash_numerics.Regression
open Gnrflash_testing.Testing

let test_ols_exact_line () =
  let xs = [| 0.; 1.; 2.; 3. |] in
  let ys = Array.map (fun x -> (2.5 *. x) -. 1. ) xs in
  let f = check_ok "ols" (R.ols xs ys) in
  check_close ~tol:1e-10 "slope" 2.5 f.R.slope;
  check_close ~tol:1e-10 "intercept" (-1.) f.R.intercept;
  check_close ~tol:1e-10 "r2" 1. f.R.r_squared

let test_ols_noisy () =
  let xs = Array.init 50 float_of_int in
  let ys = Array.mapi (fun i x -> (3. *. x) +. (if i mod 2 = 0 then 1. else -1.)) xs in
  let f = check_ok "ols" (R.ols xs ys) in
  check_close ~tol:1e-2 "slope" 3. f.R.slope;
  check_in "r2 high" ~lo:0.99 ~hi:1. f.R.r_squared;
  check_true "stderr positive" (f.R.slope_stderr > 0.)

let test_ols_too_few () = check_error "1 point" (R.ols [| 1. |] [| 1. |])

let test_ols_constant_x () =
  check_error "vertical line" (R.ols [| 2.; 2.; 2. |] [| 1.; 2.; 3. |])

let test_wls_downweights_outlier () =
  let xs = [| 0.; 1.; 2.; 3.; 4. |] in
  let ys = [| 0.; 1.; 2.; 3.; 100. |] in
  let w_out = [| 1.; 1.; 1.; 1.; 0. |] in
  let f = check_ok "wls" (R.wls ~weights:w_out xs ys) in
  check_close ~tol:1e-9 "slope ignoring outlier" 1. f.R.slope

let test_wls_negative_weight () =
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Regression.wls: negative weight") (fun () ->
      ignore (R.wls ~weights:[| 1.; -1. |] [| 0.; 1. |] [| 0.; 1. |]))

let test_through_origin () =
  let s = check_ok "origin" (R.through_origin [| 1.; 2.; 3. |] [| 2.; 4.; 6. |]) in
  check_close "slope" 2. s

let test_through_origin_zero_x () =
  check_error "degenerate" (R.through_origin [| 0.; 0. |] [| 1.; 2. |])

let test_r_squared_flat () =
  (* constant ys: residuals are zero, r2 defined as 1 *)
  let f = check_ok "flat" (R.ols [| 0.; 1.; 2. |] [| 5.; 5.; 5. |]) in
  check_close "slope" 0. f.R.slope;
  check_close "r2" 1. f.R.r_squared

let prop_ols_recovers_line =
  prop "ols recovers synthetic slope/intercept"
    QCheck2.Gen.(pair (float_range (-10.) 10.) (float_range (-10.) 10.))
    (fun (m, c) ->
       let xs = Array.init 10 float_of_int in
       let ys = Array.map (fun x -> (m *. x) +. c) xs in
       match R.ols xs ys with
       | Error _ -> false
       | Ok f ->
         abs_float (f.R.slope -. m) <= 1e-8 *. (1. +. abs_float m)
         && abs_float (f.R.intercept -. c) <= 1e-7 *. (1. +. abs_float c))

let prop_wls_uniform_equals_ols =
  prop "uniform weights reduce to ols" QCheck2.Gen.(float_range 0.1 10.)
    (fun w ->
       let xs = [| 0.; 1.; 2.; 5. |] and ys = [| 1.; 2.; 2.5; 7. |] in
       match R.ols xs ys, R.wls ~weights:(Array.make 4 w) xs ys with
       | Ok a, Ok b -> abs_float (a.R.slope -. b.R.slope) < 1e-9
       | _ -> false)

let () =
  Alcotest.run "regression"
    [
      ( "regression",
        [
          case "exact line" test_ols_exact_line;
          case "noisy line" test_ols_noisy;
          case "too few points" test_ols_too_few;
          case "constant x" test_ols_constant_x;
          case "wls outlier" test_wls_downweights_outlier;
          case "wls negative weight" test_wls_negative_weight;
          case "through origin" test_through_origin;
          case "through origin degenerate" test_through_origin_zero_x;
          case "flat data r2" test_r_squared_flat;
          prop_ols_recovers_line;
          prop_wls_uniform_equals_ols;
        ] );
    ]
