module Am = Gnrflash_memory.Array_model
module Cell = Gnrflash_memory.Cell
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let block () = Am.make F.paper_default ~pages:3 ~strings:4

let test_make () =
  let b = block () in
  Alcotest.(check int) "pages" 3 b.Am.pages;
  Alcotest.(check int) "strings" 4 b.Am.strings

let test_make_validation () =
  Alcotest.check_raises "dims" (Invalid_argument "Array_model.make: non-positive dimensions")
    (fun () -> ignore (Am.make F.paper_default ~pages:0 ~strings:4))

let test_fresh_block_erased () =
  let bits = Am.page_bits (block ()) ~page:1 in
  Alcotest.(check (array int)) "all erased" [| 1; 1; 1; 1 |] bits

let test_get_set () =
  let b = block () in
  let programmed = check_ok "program" (Cell.program (Cell.make F.paper_default)) in
  let b' = Am.set b ~page:1 ~string_:2 programmed in
  check_true "cell updated" ((Am.get b' ~page:1 ~string_:2).Cell.qfg < 0.);
  (* functional update: the original block is untouched *)
  check_close "original intact" 0. (Am.get b ~page:1 ~string_:2).Cell.qfg;
  let bits = Am.page_bits b' ~page:1 in
  Alcotest.(check (array int)) "one programmed" [| 1; 1; 0; 1 |] bits

let test_coordinates_checked () =
  Alcotest.check_raises "bad page" (Invalid_argument "Array_model: coordinates out of range")
    (fun () -> ignore (Am.get (block ()) ~page:5 ~string_:0))

let test_map_page () =
  let programmed c = match Cell.program c with Ok c' -> c' | Error _ -> c in
  let b = Am.map_page (block ()) ~page:0 programmed in
  Alcotest.(check (array int)) "page 0 programmed" [| 0; 0; 0; 0 |] (Am.page_bits b ~page:0);
  Alcotest.(check (array int)) "page 1 untouched" [| 1; 1; 1; 1 |] (Am.page_bits b ~page:1)

let test_map_all () =
  let programmed c = match Cell.program c with Ok c' -> c' | Error _ -> c in
  let b = Am.map_all (block ()) programmed in
  for p = 0 to 2 do
    Alcotest.(check (array int)) "all programmed" [| 0; 0; 0; 0 |] (Am.page_bits b ~page:p)
  done

let test_wear_summary () =
  let mean0, fluence0, broken0 = Am.wear_summary (block ()) in
  check_close "fresh mean" 0. mean0;
  check_close "fresh fluence" 0. fluence0;
  Alcotest.(check int) "none broken" 0 broken0;
  let programmed c = match Cell.program c with Ok c' -> c' | Error _ -> c in
  let b = Am.map_all (block ()) programmed in
  let mean1, fluence1, _ = Am.wear_summary b in
  check_close "one cycle everywhere" 1. mean1;
  check_true "fluence accumulated" (fluence1 > 0.)

let () =
  Alcotest.run "array_model"
    [
      ( "array_model",
        [
          case "make" test_make;
          case "make validation" test_make_validation;
          case "fresh block erased" test_fresh_block_erased;
          case "get/set functional" test_get_set;
          case "coordinate checking" test_coordinates_checked;
          case "map_page" test_map_page;
          case "map_all" test_map_all;
          case "wear summary" test_wear_summary;
        ] );
    ]
