module R = Gnrflash_quantum.Regime
open Gnrflash_testing.Testing

let test_fn_when_vox_exceeds_barrier () =
  check_true "programming condition is FN"
    (R.classify ~phi_b_ev:3.2 ~v_ox:9. ~thickness:5e-9 = R.Fowler_nordheim)

let test_direct_for_thin_low_bias () =
  check_true "thin oxide low bias is direct"
    (R.classify ~phi_b_ev:3.2 ~v_ox:1. ~thickness:3e-9 = R.Direct)

let test_negligible_for_thick_low_bias () =
  check_true "thick oxide low bias conducts nothing"
    (R.classify ~phi_b_ev:3.2 ~v_ox:1. ~thickness:8e-9 = R.Negligible)

let test_polarity_symmetric () =
  Alcotest.(check bool) "erase equals program classification" true
    (R.classify ~phi_b_ev:3.2 ~v_ox:(-9.) ~thickness:5e-9
     = R.classify ~phi_b_ev:3.2 ~v_ox:9. ~thickness:5e-9)

let test_zero_bias_negligible () =
  check_true "zero bias" (R.classify ~phi_b_ev:3.2 ~v_ox:0. ~thickness:3e-9 = R.Negligible)

let test_thresholds () =
  check_close "direct limit 5 nm" 5e-9 R.direct_thickness_limit;
  check_close "FN threshold 4 nm" 4e-9 R.fn_thickness_threshold

let test_describe () =
  Alcotest.(check string) "fn" "Fowler-Nordheim tunneling" (R.describe R.Fowler_nordheim);
  Alcotest.(check string) "direct" "direct tunneling" (R.describe R.Direct);
  Alcotest.(check string) "neg" "negligible conduction" (R.describe R.Negligible)

let test_validation () =
  Alcotest.check_raises "phi" (Invalid_argument "Regime.classify: phi_b <= 0")
    (fun () -> ignore (R.classify ~phi_b_ev:0. ~v_ox:1. ~thickness:5e-9));
  Alcotest.check_raises "thickness" (Invalid_argument "Regime.classify: thickness <= 0")
    (fun () -> ignore (R.classify ~phi_b_ev:3.2 ~v_ox:1. ~thickness:0.))

let prop_high_bias_always_fn =
  prop "any v_ox above the barrier is FN"
    QCheck2.Gen.(pair (float_range 3.3 20.) (float_range 2e-9 10e-9))
    (fun (v, t) -> R.classify ~phi_b_ev:3.2 ~v_ox:v ~thickness:t = R.Fowler_nordheim)

let () =
  Alcotest.run "regime"
    [
      ( "regime",
        [
          case "FN at programming bias" test_fn_when_vox_exceeds_barrier;
          case "direct for thin oxide" test_direct_for_thin_low_bias;
          case "negligible for thick oxide" test_negligible_for_thick_low_bias;
          case "polarity symmetric" test_polarity_symmetric;
          case "zero bias" test_zero_bias_negligible;
          case "threshold constants" test_thresholds;
          case "describe" test_describe;
          case "validation" test_validation;
          prop_high_bias_always_fn;
        ] );
    ]
