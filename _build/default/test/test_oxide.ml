module O = Gnrflash_materials.Oxide
module C = Gnrflash_physics.Constants
open Gnrflash_testing.Testing

let test_sio2_parameters () =
  check_close "eps_r" 3.9 O.sio2.O.eps_r;
  check_close "affinity" 0.9 O.sio2.O.electron_affinity;
  check_close "gap" 9.0 O.sio2.O.bandgap;
  check_close "m_ox" 0.42 O.sio2.O.m_ox

let test_high_k_ordering () =
  check_true "hfo2 higher k" (O.hfo2.O.eps_r > O.sio2.O.eps_r);
  check_true "al2o3 higher k" (O.al2o3.O.eps_r > O.sio2.O.eps_r);
  check_true "hfo2 smaller gap" (O.hfo2.O.bandgap < O.sio2.O.bandgap);
  check_true "hfo2 weaker breakdown" (O.hfo2.O.breakdown_field < O.sio2.O.breakdown_field)

let test_all_physical () =
  List.iter
    (fun o ->
       check_true (o.O.name ^ " eps_r > 1") (o.O.eps_r > 1.);
       check_true (o.O.name ^ " gap positive") (o.O.bandgap > 0.);
       check_true (o.O.name ^ " affinity positive") (o.O.electron_affinity > 0.);
       check_true (o.O.name ^ " mass physical") (o.O.m_ox > 0. && o.O.m_ox < 1.);
       check_true (o.O.name ^ " breakdown positive") (o.O.breakdown_field > 0.))
    O.all

let test_by_name () =
  (match O.by_name "sio2" with
   | Some o -> Alcotest.(check string) "case-insensitive" "SiO2" o.O.name
   | None -> Alcotest.fail "SiO2 not found");
  check_true "unknown" (O.by_name "diamond" = None)

let test_permittivity () =
  check_close ~tol:1e-9 "absolute permittivity" (3.9 *. C.eps0) (O.permittivity O.sio2)

let test_capacitance_per_area () =
  (* SiO2 at 10 nm: ~3.45e-3 F/m^2 = 345 nF/cm^2 *)
  let c = O.capacitance_per_area O.sio2 ~thickness:10e-9 in
  check_close ~tol:1e-3 "10nm SiO2" 3.4531e-3 c

let test_capacitance_invalid () =
  Alcotest.check_raises "zero thickness"
    (Invalid_argument "Oxide.capacitance_per_area: thickness <= 0") (fun () ->
      ignore (O.capacitance_per_area O.sio2 ~thickness:0.))

let prop_capacitance_inverse_thickness =
  prop "capacitance halves when thickness doubles"
    QCheck2.Gen.(float_range 1e-9 50e-9)
    (fun t ->
       let c1 = O.capacitance_per_area O.sio2 ~thickness:t in
       let c2 = O.capacitance_per_area O.sio2 ~thickness:(2. *. t) in
       abs_float ((c1 /. c2) -. 2.) < 1e-9)

let () =
  Alcotest.run "oxide"
    [
      ( "oxide",
        [
          case "SiO2 parameters" test_sio2_parameters;
          case "high-k ordering" test_high_k_ordering;
          case "all materials physical" test_all_physical;
          case "lookup by name" test_by_name;
          case "absolute permittivity" test_permittivity;
          case "parallel plate" test_capacitance_per_area;
          case "invalid thickness" test_capacitance_invalid;
          prop_capacitance_inverse_thickness;
        ] );
    ]
