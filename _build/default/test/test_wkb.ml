module W = Gnrflash_quantum.Wkb
module B = Gnrflash_quantum.Barrier
module C = Gnrflash_physics.Constants
open Gnrflash_testing.Testing

let ev = C.ev
let m_eff = 0.42 *. C.m0

let test_closed_form_matches_paper_exponent () =
  (* T = exp(-B_fn/E) with B_fn = 4 sqrt(2m) phi^1.5 / (3 hbar q),
     the exponential factor of the Lenzlinger-Snow current *)
  let field = 1e9 in
  let phi = 3.2 *. ev in
  let b_fn = 4. *. sqrt (2. *. m_eff) *. (phi ** 1.5) /. (3. *. C.hbar *. C.q) in
  check_close ~tol:1e-4 "B magnitude" 2.534e10 b_fn;
  let t = W.transmission_triangular ~phi_b:phi ~field ~m_eff in
  check_close ~tol:1e-9 "exponent" (exp (-.b_fn /. field)) t

let test_numeric_matches_closed_form () =
  let phi = 3.2 *. ev and field = 1.2e9 in
  let closed = W.transmission_triangular ~phi_b:phi ~field ~m_eff in
  let b = B.triangular ~phi_b:phi ~field ~m_eff in
  let numeric = W.transmission b ~energy:0. in
  check_close ~tol:1e-4 "quadrature vs closed form" closed numeric

let test_transmission_bounds () =
  let b = B.triangular ~phi_b:(3.2 *. ev) ~field:8e8 ~m_eff in
  let t = W.transmission b ~energy:(0.1 *. ev) in
  check_in "in [0,1]" ~lo:0. ~hi:1. t

let test_above_barrier_transmits () =
  let b = B.triangular ~phi_b:(1. *. ev) ~field:1e9 ~m_eff in
  check_close "T = 1 above barrier" 1. (W.transmission b ~energy:(1.5 *. ev))

let test_action_zero_above () =
  let b = B.triangular ~phi_b:(1. *. ev) ~field:1e9 ~m_eff in
  check_close "no action above" 0. (W.action_integral b ~energy:(2. *. ev))

let test_transmission_increases_with_energy () =
  let b = B.triangular ~phi_b:(3.2 *. ev) ~field:1e9 ~m_eff in
  let t0 = W.transmission b ~energy:0. in
  let t1 = W.transmission b ~energy:(0.5 *. ev) in
  let t2 = W.transmission b ~energy:(1.5 *. ev) in
  check_true "monotone in E" (t0 < t1 && t1 < t2)

let test_transmission_increases_with_field () =
  let t e = W.transmission_triangular ~phi_b:(3.2 *. ev) ~field:e ~m_eff in
  check_true "monotone in field" (t 8e8 < t 1e9 && t 1e9 < t 1.5e9)

let test_heavier_mass_less_transmission () =
  let t m = W.transmission_triangular ~phi_b:(3.2 *. ev) ~field:1e9 ~m_eff:m in
  check_true "mass suppresses tunneling" (t (0.5 *. C.m0) < t (0.3 *. C.m0))

let test_rectangular_barrier_action () =
  (* flat barrier: action = 2 kappa d *)
  let v = 1. *. ev and d = 2e-9 in
  let b = B.make ~m_eff [ (0., v); (d, v *. (1. -. 1e-9)) ] in
  let kappa = sqrt (2. *. m_eff *. v) /. C.hbar in
  check_close ~tol:1e-3 "2 kappa d" (2. *. kappa *. d) (W.action_integral b ~energy:0.)

let prop_transmission_in_unit_interval =
  prop "0 <= T <= 1 everywhere"
    QCheck2.Gen.(pair (float_range 5e8 3e9) (float_range 0. 3.))
    (fun (field, e_ev) ->
       let b = B.triangular ~phi_b:(3.2 *. ev) ~field ~m_eff in
       let t = W.transmission b ~energy:(e_ev *. ev) in
       t >= 0. && t <= 1.)

let prop_closed_form_agreement =
  prop "closed form vs quadrature across fields" ~count:25
    QCheck2.Gen.(float_range 6e8 2.5e9)
    (fun field ->
       let phi = 3.2 *. ev in
       let closed = W.transmission_triangular ~phi_b:phi ~field ~m_eff in
       let b = B.triangular ~phi_b:phi ~field ~m_eff in
       let numeric = W.transmission b ~energy:0. in
       abs_float (log closed -. log numeric) < 1e-3)

let () =
  Alcotest.run "wkb"
    [
      ( "wkb",
        [
          case "closed form exponent" test_closed_form_matches_paper_exponent;
          case "numeric vs closed form" test_numeric_matches_closed_form;
          case "bounds" test_transmission_bounds;
          case "above-barrier" test_above_barrier_transmits;
          case "zero action above" test_action_zero_above;
          case "monotone in energy" test_transmission_increases_with_energy;
          case "monotone in field" test_transmission_increases_with_field;
          case "mass dependence" test_heavier_mass_less_transmission;
          case "rectangular action" test_rectangular_barrier_action;
          prop_transmission_in_unit_interval;
          prop_closed_form_agreement;
        ] );
    ]
