module Ctl = Gnrflash_memory.Controller
module Am = Gnrflash_memory.Array_model
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let controller () = Ctl.make (Am.make F.paper_default ~pages:2 ~strings:4)

let test_program_page_roundtrip () =
  let c = controller () in
  let data = [| 0; 1; 0; 1 |] in
  let c = check_ok "program" (Ctl.program_page c ~page:0 ~data) in
  check_true "verifies" (Ctl.verify_page c ~page:0 ~data);
  let _, bits = check_ok "read" (Ctl.read_page c ~page:0) in
  Alcotest.(check (array int)) "pattern back" data bits

let test_inhibited_page_untouched () =
  let c = controller () in
  let c = check_ok "program" (Ctl.program_page c ~page:0 ~data:[| 0; 0; 0; 0 |]) in
  let _, bits = check_ok "read" (Ctl.read_page c ~page:1) in
  Alcotest.(check (array int)) "other page still erased" [| 1; 1; 1; 1 |] bits

let test_all_inhibit () =
  (* data of all 1s programs nothing *)
  let c = controller () in
  let c = check_ok "program" (Ctl.program_page c ~page:0 ~data:[| 1; 1; 1; 1 |]) in
  let _, bits = check_ok "read" (Ctl.read_page c ~page:0) in
  Alcotest.(check (array int)) "still erased" [| 1; 1; 1; 1 |] bits

let test_stats_accumulate () =
  let c = controller () in
  let c = check_ok "p" (Ctl.program_page c ~page:0 ~data:[| 0; 1; 1; 1 |]) in
  let c, _ = check_ok "r" (Ctl.read_page c ~page:0) in
  let c = check_ok "e" (Ctl.erase_block c) in
  Alcotest.(check int) "programs" 1 c.Ctl.stats.Ctl.programs;
  Alcotest.(check int) "reads" 1 c.Ctl.stats.Ctl.reads;
  Alcotest.(check int) "erases" 1 c.Ctl.stats.Ctl.erases;
  check_true "disturb events recorded" (c.Ctl.stats.Ctl.disturb_events > 0)

let test_erase_block_clears () =
  let c = controller () in
  let c = check_ok "program" (Ctl.program_page c ~page:0 ~data:[| 0; 0; 0; 0 |]) in
  let c = check_ok "erase" (Ctl.erase_block c) in
  let _, bits = check_ok "read" (Ctl.read_page c ~page:0) in
  Alcotest.(check (array int)) "erased" [| 1; 1; 1; 1 |] bits

let test_data_length_checked () =
  Alcotest.check_raises "length" (Invalid_argument "Controller.program_page: data length mismatch")
    (fun () -> ignore (Ctl.program_page (controller ()) ~page:0 ~data:[| 0 |]))

let test_disturb_does_not_flip_inhibited () =
  (* after programming one page, inhibited neighbours must still verify *)
  let c = controller () in
  let data = [| 0; 1; 0; 1 |] in
  let c = check_ok "program" (Ctl.program_page c ~page:0 ~data) in
  check_true "inhibited cells still erased" (Ctl.verify_page c ~page:0 ~data)

let test_reprogram_after_erase_cycles () =
  let c = controller () in
  let rec cycle c n =
    if n = 0 then c
    else begin
      let c = check_ok "program" (Ctl.program_page c ~page:0 ~data:[| 0; 0; 1; 1 |]) in
      let c = check_ok "erase" (Ctl.erase_block c) in
      cycle c (n - 1)
    end
  in
  let c = cycle c 3 in
  Alcotest.(check int) "three programs" 3 c.Ctl.stats.Ctl.programs;
  Alcotest.(check int) "three erases" 3 c.Ctl.stats.Ctl.erases;
  let _, bits = check_ok "read" (Ctl.read_page c ~page:0) in
  Alcotest.(check (array int)) "ends erased" [| 1; 1; 1; 1 |] bits

let () =
  Alcotest.run "controller"
    [
      ( "controller",
        [
          case "program page roundtrip" test_program_page_roundtrip;
          case "other pages untouched" test_inhibited_page_untouched;
          case "all-inhibit pattern" test_all_inhibit;
          case "stats accumulate" test_stats_accumulate;
          case "erase block" test_erase_block_clears;
          case "data length checked" test_data_length_checked;
          case "disturb does not flip" test_disturb_does_not_flip_inhibited;
          case "program/erase cycles" test_reprogram_after_erase_cycles;
        ] );
    ]
