module S = Gnrflash_plot.Series
open Gnrflash_testing.Testing

let pts = [| (0., 1.); (1., 3.); (2., 2.) |]

let test_make_copies () =
  let src = Array.copy pts in
  let s = S.make ~label:"a" src in
  src.(0) <- (99., 99.);
  check_close "input copied" 0. (fst s.S.points.(0))

let test_of_arrays () =
  let s = S.of_arrays ~label:"a" [| 1.; 2. |] [| 10.; 20. |] in
  Alcotest.(check int) "length" 2 (Array.length s.S.points);
  check_close "zip" 20. (snd s.S.points.(1))

let test_of_arrays_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Series.of_arrays: length mismatch")
    (fun () -> ignore (S.of_arrays ~label:"a" [| 1. |] [| 1.; 2. |]))

let test_of_fn () =
  let s = S.of_fn ~label:"sq" ~xs:[| 1.; 2.; 3. |] (fun x -> x *. x) in
  check_close "f(3)" 9. (snd s.S.points.(2))

let test_map_y () =
  let s = S.map_y (fun y -> y *. 10.) (S.make ~label:"a" pts) in
  check_close "scaled" 30. (snd s.S.points.(1));
  check_close "x untouched" 1. (fst s.S.points.(1))

let test_filter () =
  let s = S.filter (fun (_, y) -> y > 1.5) (S.make ~label:"a" pts) in
  Alcotest.(check int) "two survive" 2 (Array.length s.S.points)

let test_xs_ys () =
  let s = S.make ~label:"a" pts in
  Alcotest.(check (array (float 0.))) "xs" [| 0.; 1.; 2. |] (S.xs s);
  Alcotest.(check (array (float 0.))) "ys" [| 1.; 3.; 2. |] (S.ys s)

let test_extent () =
  let s1 = S.make ~label:"a" pts in
  let s2 = S.make ~label:"b" [| (-1., 7.) |] in
  let (xmin, xmax), (ymin, ymax) = S.extent [ s1; s2 ] in
  check_close "xmin" (-1.) xmin;
  check_close "xmax" 2. xmax;
  check_close "ymin" 1. ymin;
  check_close "ymax" 7. ymax

let test_extent_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Series.extent: all series empty")
    (fun () -> ignore (S.extent [ S.make ~label:"a" [||] ]))

let () =
  Alcotest.run "series"
    [
      ( "series",
        [
          case "make copies input" test_make_copies;
          case "of_arrays" test_of_arrays;
          case "of_arrays mismatch" test_of_arrays_mismatch;
          case "of_fn" test_of_fn;
          case "map_y" test_map_y;
          case "filter" test_filter;
          case "xs/ys" test_xs_ys;
          case "extent" test_extent;
          case "extent empty" test_extent_empty;
        ] );
    ]
