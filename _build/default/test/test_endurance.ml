module E = Gnrflash_memory.Endurance
module F = Gnrflash_device.Fgt
module Pe = Gnrflash_device.Program_erase
open Gnrflash_testing.Testing

let t = F.paper_default
let short_pulse v = { Pe.vgs = v; duration = 10e-6 }

let run_cycles n =
  E.cycle_cell ~program_pulse:(short_pulse 15.) ~erase_pulse:(short_pulse (-15.)) t
    ~cycles:n

let test_survives_modest_cycling () =
  let r = run_cycles 100 in
  Alcotest.(check int) "all cycles done" 100 r.E.cycles_survived;
  check_true "no failure" (r.E.failure = None)

let test_window_positive_and_stable () =
  let r = run_cycles 50 in
  List.iter
    (fun s ->
       check_true "window open" (s.E.window > 1.);
       check_true "programmed above erased" (s.E.vt_programmed > s.E.vt_erased))
    r.E.samples

let test_samples_log_spaced () =
  let r = run_cycles 100 in
  let cycles = List.map (fun s -> s.E.cycle) r.E.samples in
  check_true "includes 1" (List.mem 1 cycles);
  check_true "includes 10" (List.mem 10 cycles);
  check_true "includes 100" (List.mem 100 cycles);
  (* strictly increasing *)
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  check_true "ordered" (increasing cycles)

let test_fluence_grows_with_cycles () =
  let r = run_cycles 100 in
  let fluences = List.map (fun s -> s.E.fluence) r.E.samples in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && nondecreasing rest
    | _ -> true
  in
  check_true "fluence accumulates" (nondecreasing fluences);
  check_true "positive" (List.for_all (fun f -> f > 0.) fluences)

let test_vt_drift_with_cycling () =
  (* trap-induced drift raises both levels over cycling *)
  let r = run_cycles 1000 in
  match r.E.samples with
  | first :: rest when rest <> [] ->
    let last = List.nth rest (List.length rest - 1) in
    check_true "erased VT drifts up" (last.E.vt_erased >= first.E.vt_erased -. 1e-9)
  | _ -> Alcotest.fail "need at least two samples"

let test_cycle_validation () =
  Alcotest.check_raises "cycles" (Invalid_argument "Endurance.cycle_cell: cycles < 1")
    (fun () -> ignore (E.cycle_cell t ~cycles:0))

let test_predicted_endurance () =
  let n = E.predicted_endurance t ~vgs:15. in
  check_true "finite prediction" (Float.is_finite n && n > 0.);
  (* lower programming voltage stresses less: longer life *)
  let n_low = E.predicted_endurance t ~vgs:13. in
  check_true "field acceleration" (n_low > n)

let () =
  Alcotest.run "endurance"
    [
      ( "endurance",
        [
          case "survives modest cycling" test_survives_modest_cycling;
          case "window positive" test_window_positive_and_stable;
          case "log-spaced checkpoints" test_samples_log_spaced;
          case "fluence accumulates" test_fluence_grows_with_cycles;
          case "VT drift" test_vt_drift_with_cycling;
          case "validation" test_cycle_validation;
          case "predicted endurance" test_predicted_endurance;
        ] );
    ]
