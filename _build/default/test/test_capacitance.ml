module Cap = Gnrflash_device.Capacitance
open Gnrflash_testing.Testing

let net = Cap.make ~cfc:6e-18 ~cfs:1e-18 ~cfb:2e-18 ~cfd:1e-18

let test_total_eq2 () =
  (* paper equation (2) *)
  check_close "CT" 1e-17 (Cap.total net)

let test_gcr () = check_close "GCR" 0.6 (Cap.gcr net)

let test_make_validation () =
  Alcotest.check_raises "negative" (Invalid_argument "Capacitance.make: negative component")
    (fun () -> ignore (Cap.make ~cfc:(-1e-18) ~cfs:0. ~cfb:0. ~cfd:0.));
  Alcotest.check_raises "zero total" (Invalid_argument "Capacitance.make: zero total")
    (fun () -> ignore (Cap.make ~cfc:0. ~cfs:0. ~cfb:0. ~cfd:0.))

let test_of_gcr () =
  let n = Cap.of_gcr ~gcr:0.6 ~cfc:6e-18 in
  check_close ~tol:1e-12 "target gcr" 0.6 (Cap.gcr n);
  check_close ~tol:1e-12 "cfc preserved" 6e-18 n.Cap.cfc;
  check_close ~tol:1e-12 "total consistent" 1e-17 (Cap.total n)

let test_of_gcr_full_coupling () =
  let n = Cap.of_gcr ~gcr:1.0 ~cfc:5e-18 in
  check_close "gcr 1" 1. (Cap.gcr n)

let test_of_gcr_validation () =
  Alcotest.check_raises "gcr range"
    (Invalid_argument "Capacitance.of_gcr: gcr out of (0, 1]") (fun () ->
      ignore (Cap.of_gcr ~gcr:1.2 ~cfc:1e-18))

let test_parallel_plate () =
  (* SiO2 32x32nm at 10 nm -> eps0*3.9*1.024e-15/1e-8 ~ 3.536e-18 F *)
  let c = Cap.parallel_plate ~eps_r:3.9 ~area:(32e-9 *. 32e-9) ~thickness:10e-9 in
  check_close ~tol:1e-3 "paper-scale CFC" 3.536e-18 c

let test_quantum_capacitance_series () =
  (* Cq in series with CFC lowers the coupling; Cq -> inf recovers it *)
  let n = Cap.with_quantum_capacitance net ~cq:6e-18 in
  check_close ~tol:1e-12 "series halves equal caps" 3e-18 n.Cap.cfc;
  check_true "gcr drops" (Cap.gcr n < Cap.gcr net);
  let n_inf = Cap.with_quantum_capacitance net ~cq:1e-12 in
  check_close ~tol:1e-4 "large Cq no effect" (Cap.gcr net) (Cap.gcr n_inf)

let prop_of_gcr_roundtrip =
  prop "of_gcr produces the requested ratio"
    QCheck2.Gen.(float_range 0.05 1.0)
    (fun g ->
       let n = Cap.of_gcr ~gcr:g ~cfc:4e-18 in
       abs_float (Cap.gcr n -. g) < 1e-12)

let prop_series_never_raises_gcr =
  prop "quantum capacitance only lowers GCR"
    QCheck2.Gen.(float_range 1e-19 1e-15)
    (fun cq ->
       let n = Cap.with_quantum_capacitance net ~cq in
       Cap.gcr n <= Cap.gcr net +. 1e-15)

let () =
  Alcotest.run "capacitance"
    [
      ( "capacitance",
        [
          case "equation (2) total" test_total_eq2;
          case "GCR" test_gcr;
          case "make validation" test_make_validation;
          case "of_gcr synthesis" test_of_gcr;
          case "of_gcr full coupling" test_of_gcr_full_coupling;
          case "of_gcr validation" test_of_gcr_validation;
          case "parallel plate" test_parallel_plate;
          case "quantum capacitance series" test_quantum_capacitance_series;
          prop_of_gcr_roundtrip;
          prop_series_never_raises_gcr;
        ] );
    ]
