module W = Gnrflash_memory.Workload
module Ctl = Gnrflash_memory.Controller
module Am = Gnrflash_memory.Array_model
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let test_generate_counts () =
  let ops = W.generate ~seed:1 W.Uniform ~pages:4 ~strings:4 ~ops:50 ~read_fraction:0.5 in
  Alcotest.(check int) "op count" 50 (List.length ops)

let test_generate_deterministic () =
  let a = W.generate ~seed:7 W.Uniform ~pages:4 ~strings:4 ~ops:30 ~read_fraction:0.3 in
  let b = W.generate ~seed:7 W.Uniform ~pages:4 ~strings:4 ~ops:30 ~read_fraction:0.3 in
  check_true "same seed, same trace" (a = b);
  let c = W.generate ~seed:8 W.Uniform ~pages:4 ~strings:4 ~ops:30 ~read_fraction:0.3 in
  check_true "different seed differs" (a <> c)

let test_generate_read_fraction_extremes () =
  let reads_only = W.generate ~seed:1 W.Uniform ~pages:4 ~strings:4 ~ops:20 ~read_fraction:1. in
  check_true "all reads" (List.for_all (function W.Read _ -> true | W.Write _ -> false) reads_only);
  let writes_only = W.generate ~seed:1 W.Uniform ~pages:4 ~strings:4 ~ops:20 ~read_fraction:0. in
  check_true "all writes" (List.for_all (function W.Write _ -> true | W.Read _ -> false) writes_only)

let test_sequential_pattern () =
  let ops = W.generate ~seed:1 W.Sequential ~pages:3 ~strings:2 ~ops:6 ~read_fraction:0. in
  let pages = List.map (function W.Write { page; _ } -> page | W.Read { page } -> page) ops in
  Alcotest.(check (list int)) "round robin" [ 0; 1; 2; 0; 1; 2 ] pages

let test_zipf_skew () =
  let ops = W.generate ~seed:3 (W.Zipf 1.5) ~pages:16 ~strings:2 ~ops:400 ~read_fraction:0. in
  let counts = Array.make 16 0 in
  List.iter
    (function W.Write { page; _ } | W.Read { page } -> counts.(page) <- counts.(page) + 1)
    ops;
  (* rank-1 page must dominate the tail half of the distribution *)
  let tail = Array.fold_left ( + ) 0 (Array.sub counts 8 8) in
  check_true "head heavier than tail" (counts.(0) > tail);
  check_true "pages in range" (List.for_all
    (function W.Write { page; _ } | W.Read { page } -> page >= 0 && page < 16) ops)

let test_generate_validation () =
  Alcotest.check_raises "read fraction"
    (Invalid_argument "Workload.generate: read_fraction out of [0, 1]") (fun () ->
      ignore (W.generate ~seed:1 W.Uniform ~pages:2 ~strings:2 ~ops:5 ~read_fraction:1.5));
  Alcotest.check_raises "zipf exponent"
    (Invalid_argument "Workload.generate: zipf exponent <= 0") (fun () ->
      ignore (W.generate ~seed:1 (W.Zipf 0.) ~pages:2 ~strings:2 ~ops:5 ~read_fraction:0.))

let test_replay_small_trace () =
  let pages = 2 and strings = 4 in
  let ctrl = Ctl.make (Am.make F.paper_default ~pages ~strings) in
  let ops = W.generate ~seed:11 W.Sequential ~pages ~strings ~ops:6 ~read_fraction:0.5 in
  let _, stats = check_ok "replay" (W.replay ctrl ops) in
  Alcotest.(check int) "ops accounted" 6 (stats.W.writes + stats.W.reads);
  Alcotest.(check int) "no verify failures" 0 stats.W.failed_verifies;
  Alcotest.(check int) "no broken cells" 0 stats.W.broken_cells

let test_replay_rewrite_triggers_erase () =
  let pages = 1 and strings = 2 in
  let ctrl = Ctl.make (Am.make F.paper_default ~pages ~strings) in
  let data = [| 0; 0 |] in
  let ops = [ W.Write { page = 0; data }; W.Write { page = 0; data } ] in
  let _, stats = check_ok "replay" (W.replay ctrl ops) in
  Alcotest.(check int) "second write needs an erase" 1 stats.W.erase_cycles

let () =
  Alcotest.run "workload"
    [
      ( "workload",
        [
          case "op counts" test_generate_counts;
          case "deterministic" test_generate_deterministic;
          case "read fraction extremes" test_generate_read_fraction_extremes;
          case "sequential pattern" test_sequential_pattern;
          case "zipf skew" test_zipf_skew;
          case "generate validation" test_generate_validation;
          case "replay small trace" test_replay_small_trace;
          case "rewrite triggers erase" test_replay_rewrite_triggers_erase;
        ] );
    ]
