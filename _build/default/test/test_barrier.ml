module B = Gnrflash_quantum.Barrier
module C = Gnrflash_physics.Constants
open Gnrflash_testing.Testing

let ev = C.ev
let m_eff = 0.42 *. C.m0

let test_triangular_geometry () =
  let phi = 3.2 *. ev in
  let field = 1e9 in
  let b = B.triangular ~phi_b:phi ~field ~m_eff in
  (* exit point x = phi/(qE) = 3.2 nm at 10 MV/cm *)
  check_close ~tol:1e-9 "width" 3.2e-9 (B.width b);
  check_close "entry height" phi (B.height_at b 0.);
  check_abs ~tol:1e-25 "exit height" 0. (B.height_at b (B.width b));
  check_close "max" phi (B.max_height b)

let test_triangular_linearity () =
  let phi = 3.2 *. ev in
  let b = B.triangular ~phi_b:phi ~field:1e9 ~m_eff in
  check_close ~tol:1e-9 "midpoint" (phi /. 2.) (B.height_at b (B.width b /. 2.))

let test_triangular_validation () =
  Alcotest.check_raises "field" (Invalid_argument "Barrier.triangular: field <= 0")
    (fun () -> ignore (B.triangular ~phi_b:(1. *. ev) ~field:0. ~m_eff))

let test_trapezoidal_low_bias () =
  let phi = 3.2 *. ev in
  let b = B.trapezoidal ~phi_b:phi ~v_ox:1. ~thickness:5e-9 ~m_eff in
  check_close ~tol:1e-9 "width = full oxide" 5e-9 (B.width b);
  check_close ~tol:1e-9 "exit height" (phi -. (1. *. ev)) (B.height_at b 5e-9)

let test_trapezoidal_fn_regime () =
  (* v_ox > phi/q: degenerates to triangle inside the oxide *)
  let phi = 3.2 *. ev in
  let b = B.trapezoidal ~phi_b:phi ~v_ox:6.4 ~thickness:5e-9 ~m_eff in
  check_close ~tol:1e-9 "exit inside oxide" 2.5e-9 (B.width b);
  check_abs ~tol:1e-25 "exit at zero" 0. (B.height_at b (B.width b))

let test_height_outside () =
  let b = B.triangular ~phi_b:(1. *. ev) ~field:1e9 ~m_eff in
  check_close "before" 0. (B.height_at b (-1e-9));
  check_close "after" 0. (B.height_at b 1e-6)

let test_image_force_lowering () =
  let phi = 3.2 *. ev in
  let b = B.triangular ~phi_b:phi ~field:1e9 ~m_eff in
  let b' = B.with_image_force ~eps_r:3.9 b in
  check_true "barrier lowered" (B.max_height b' < B.max_height b);
  (* Schottky lowering at 10 MV/cm in SiO2: dPhi = sqrt(qE/(4 pi eps)) ~ 0.6 eV *)
  let lowering = (B.max_height b -. B.max_height b') /. ev in
  check_in "lowering magnitude" ~lo:0.2 ~hi:1.0 lowering

let test_turning_points_triangle () =
  let phi = 3.2 *. ev in
  let b = B.triangular ~phi_b:phi ~field:1e9 ~m_eff in
  match B.classical_turning_points b ~energy:(1.6 *. ev) with
  | None -> Alcotest.fail "expected a forbidden region"
  | Some (x1, x2) ->
    check_abs ~tol:1e-11 "starts at entry" 0. x1;
    (* V = 1.6 eV at x = 1.6 nm *)
    check_close ~tol:1e-2 "exit where V = E" 1.6e-9 x2

let test_turning_points_above_barrier () =
  let b = B.triangular ~phi_b:(1. *. ev) ~field:1e9 ~m_eff in
  check_true "no forbidden region"
    (B.classical_turning_points b ~energy:(2. *. ev) = None)

let test_make_validation () =
  Alcotest.check_raises "too few" (Invalid_argument "Barrier.make: need >= 2 points")
    (fun () -> ignore (B.make ~m_eff [ (0., 1.) ]));
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Barrier.make: x not strictly increasing") (fun () ->
      ignore (B.make ~m_eff [ (0., 1.); (0., 2.) ]))

let prop_width_scales_inverse_field =
  prop "triangle width = phi/(qE)" QCheck2.Gen.(float_range 5e8 2e9) (fun field ->
      let phi = 3.2 *. ev in
      let b = B.triangular ~phi_b:phi ~field ~m_eff in
      abs_float (B.width b -. (phi /. (C.q *. field))) < 1e-15)

let prop_trapezoid_interpolation_bounds =
  prop "trapezoid height within [exit, phi]"
    QCheck2.Gen.(pair (float_range 0.1 3.) (float_range 0. 1.))
    (fun (v_ox, frac) ->
       let phi = 3.2 *. ev in
       let b = B.trapezoidal ~phi_b:phi ~v_ox ~thickness:5e-9 ~m_eff in
       let h = B.height_at b (frac *. B.width b) in
       h >= -.1e-25 && h <= phi +. 1e-25)

let () =
  Alcotest.run "barrier"
    [
      ( "barrier",
        [
          case "triangular geometry" test_triangular_geometry;
          case "triangular linearity" test_triangular_linearity;
          case "triangular validation" test_triangular_validation;
          case "trapezoidal low bias" test_trapezoidal_low_bias;
          case "trapezoidal FN regime" test_trapezoidal_fn_regime;
          case "height outside profile" test_height_outside;
          case "image force lowering" test_image_force_lowering;
          case "turning points" test_turning_points_triangle;
          case "above-barrier energies" test_turning_points_above_barrier;
          case "make validation" test_make_validation;
          prop_width_scales_inverse_field;
          prop_trapezoid_interpolation_bounds;
        ] );
    ]
