module O = Gnrflash_numerics.Optimize
open Gnrflash_testing.Testing

let test_golden_parabola () =
  let x, fx = O.golden_section (fun x -> (x -. 2.) ** 2.) 0. 5. in
  check_close ~tol:1e-6 "minimum location" 2. x;
  check_abs ~tol:1e-10 "minimum value" 0. fx

let test_golden_cosine () =
  let x, _ = O.golden_section cos 2. 4. in
  check_close ~tol:1e-6 "pi" Float.pi x

let test_golden_reversed_bracket () =
  let x, _ = O.golden_section (fun x -> (x -. 1.) ** 2.) 3. (-2.) in
  check_close ~tol:1e-6 "handles swapped bounds" 1. x

let test_grid_search_1d () =
  let x, fx = O.grid_search_1d ~n:101 (fun x -> abs_float (x -. 0.42)) 0. 1. in
  check_close ~tol:2e-2 "coarse location" 0.42 x;
  check_true "small residual" (fx < 0.01)

let test_grid_search_2d () =
  let (x, y), fxy =
    O.grid_search_2d ~nx:21 ~ny:21
      (fun x y -> ((x -. 1.) ** 2.) +. ((y +. 2.) ** 2.))
      (-3., 3.) (-4., 0.)
  in
  check_close ~tol:0.2 "x" 1. x;
  check_close ~tol:0.2 "y" (-2.) y;
  check_true "near zero" (fxy < 0.2)

let test_nelder_mead_rosenbrock () =
  let rosen x =
    let a = 1. -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
    (a *. a) +. (100. *. b *. b)
  in
  let x, fx = O.nelder_mead ~max_iter:5000 ~tol:1e-14 rosen [| -1.2; 1. |] in
  check_close ~tol:1e-3 "x" 1. x.(0);
  check_close ~tol:1e-3 "y" 1. x.(1);
  check_true "objective tiny" (fx < 1e-6)

let test_nelder_mead_quadratic_3d () =
  let f x =
    ((x.(0) -. 1.) ** 2.) +. ((x.(1) -. 2.) ** 2.) +. ((x.(2) +. 3.) ** 2.)
  in
  let x, _ = O.nelder_mead f [| 0.; 0.; 0. |] in
  check_close ~tol:1e-4 "x0" 1. x.(0);
  check_close ~tol:1e-4 "x1" 2. x.(1);
  check_close ~tol:1e-4 "x2" (-3.) x.(2)

let test_nelder_mead_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Optimize.nelder_mead: empty point")
    (fun () -> ignore (O.nelder_mead (fun _ -> 0.) [||]))

let test_minimize_penalized () =
  (* minimize x^2 subject to x >= 1 via penalty *)
  let penalty x = if x.(0) < 1. then 1000. *. ((1. -. x.(0)) ** 2.) else 0. in
  let x, fx = O.minimize_penalized ~penalty (fun x -> x.(0) ** 2.) [| 3. |] in
  check_close ~tol:0.05 "constrained minimum" 1. x.(0);
  check_close ~tol:0.1 "objective" 1. fx

let prop_golden_finds_shifted_parabola =
  prop "golden section on (x-c)^2" QCheck2.Gen.(float_range (-5.) 5.) (fun c ->
      let x, _ = O.golden_section (fun x -> (x -. c) ** 2.) (-10.) 10. in
      abs_float (x -. c) < 1e-5)

let prop_nelder_mead_never_worse_than_start =
  prop "result no worse than initial point" ~count:50
    QCheck2.Gen.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (a, b) ->
       let f x = (x.(0) *. x.(0)) +. (abs_float x.(1) *. 3.) +. sin (x.(0) *. 2.) in
       let x0 = [| a; b |] in
       let _, fx = O.nelder_mead f x0 in
       fx <= f x0 +. 1e-12)

let () =
  Alcotest.run "optimize"
    [
      ( "optimize",
        [
          case "golden parabola" test_golden_parabola;
          case "golden cosine" test_golden_cosine;
          case "golden reversed bracket" test_golden_reversed_bracket;
          case "grid search 1d" test_grid_search_1d;
          case "grid search 2d" test_grid_search_2d;
          case "nelder-mead rosenbrock" test_nelder_mead_rosenbrock;
          case "nelder-mead 3d quadratic" test_nelder_mead_quadratic_3d;
          case "nelder-mead empty input" test_nelder_mead_empty;
          case "penalized minimize" test_minimize_penalized;
          prop_golden_finds_shifted_parabola;
          prop_nelder_mead_never_worse_than_start;
        ] );
    ]
