module Sc = Gnrflash_plot.Scale
open Gnrflash_testing.Testing

let test_linear_projection () =
  let s = Sc.make Sc.Linear ~lo:0. ~hi:10. in
  check_close "lo" 0. (Sc.project s 0.);
  check_close "hi" 1. (Sc.project s 10.);
  check_close "mid" 0.5 (Sc.project s 5.)

let test_linear_clamping () =
  let s = Sc.make Sc.Linear ~lo:0. ~hi:10. in
  check_close "below" 0. (Sc.project s (-5.));
  check_close "above" 1. (Sc.project s 99.)

let test_degenerate_range_padded () =
  let s = Sc.make Sc.Linear ~lo:5. ~hi:5. in
  let lo, hi = Sc.bounds s in
  check_true "padded" (lo < 5. && hi > 5.);
  check_close "centred" 0.5 (Sc.project s 5.)

let test_log_projection () =
  let s = Sc.make Sc.Log10 ~lo:1. ~hi:1000. in
  check_close "lo" 0. (Sc.project s 1.);
  check_close "hi" 1. (Sc.project s 1000.);
  check_close ~tol:1e-9 "decade" (1. /. 3.) (Sc.project s 10.)

let test_log_invalid () =
  Alcotest.check_raises "nonpositive" (Invalid_argument "Scale.make: log scale needs positive data")
    (fun () -> ignore (Sc.make Sc.Log10 ~lo:(-1.) ~hi:0.))

let test_log_clamps_lo () =
  let s = Sc.make Sc.Log10 ~lo:0. ~hi:100. in
  let lo, _ = Sc.bounds s in
  check_true "lo positive" (lo > 0.)

let test_linear_ticks_nice () =
  let s = Sc.make Sc.Linear ~lo:0. ~hi:10. in
  let ticks = Sc.ticks s in
  check_true "several ticks" (Array.length ticks >= 3);
  Array.iter (fun v -> check_in "within range" ~lo:(-0.01) ~hi:10.01 v) ticks;
  (* evenly spaced *)
  let d = ticks.(1) -. ticks.(0) in
  for i = 0 to Array.length ticks - 2 do
    check_close ~tol:1e-9 "uniform" d (ticks.(i + 1) -. ticks.(i))
  done

let test_log_ticks_decades () =
  let s = Sc.make Sc.Log10 ~lo:1. ~hi:1e4 in
  let ticks = Sc.ticks s in
  Array.iter
    (fun v -> check_close ~tol:1e-9 "power of ten" (Float.round (log10 v)) (log10 v))
    ticks

let test_tick_labels () =
  let lin = Sc.make Sc.Linear ~lo:0. ~hi:10. in
  Alcotest.(check string) "zero" "0" (Sc.tick_label lin 0.);
  Alcotest.(check string) "int" "5" (Sc.tick_label lin 5.);
  let log = Sc.make Sc.Log10 ~lo:1e-6 ~hi:1. in
  Alcotest.(check string) "log label" "1e-3" (Sc.tick_label log 1e-3)

let prop_projection_monotone =
  prop "projection monotone"
    QCheck2.Gen.(pair (float_range 0.1 100.) (float_range 1.01 2.))
    (fun (v, factor) ->
       let s = Sc.make Sc.Log10 ~lo:0.1 ~hi:200. in
       Sc.project s (v *. factor) >= Sc.project s v)

let prop_projection_in_unit_interval =
  prop "projection in [0,1]" QCheck2.Gen.(float_range (-1e6) 1e6) (fun v ->
      let s = Sc.make Sc.Linear ~lo:(-10.) ~hi:10. in
      let p = Sc.project s v in
      p >= 0. && p <= 1.)

let () =
  Alcotest.run "scale"
    [
      ( "scale",
        [
          case "linear projection" test_linear_projection;
          case "clamping" test_linear_clamping;
          case "degenerate range" test_degenerate_range_padded;
          case "log projection" test_log_projection;
          case "log invalid" test_log_invalid;
          case "log clamps lo" test_log_clamps_lo;
          case "nice linear ticks" test_linear_ticks_nice;
          case "log decade ticks" test_log_ticks_decades;
          case "tick labels" test_tick_labels;
          prop_projection_monotone;
          prop_projection_in_unit_interval;
        ] );
    ]
