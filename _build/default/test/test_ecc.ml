module E = Gnrflash_memory.Ecc
open Gnrflash_testing.Testing

let data8 = [| 1; 0; 1; 1; 0; 0; 1; 0 |]

let test_parity_bits () =
  (* classic table: 4 data bits need 3 parity, 8 need 4, 64 need 7 *)
  Alcotest.(check int) "k=4" 3 (E.parity_bits 4);
  Alcotest.(check int) "k=8" 4 (E.parity_bits 8);
  Alcotest.(check int) "k=11" 4 (E.parity_bits 11);
  Alcotest.(check int) "k=64" 7 (E.parity_bits 64)

let test_overhead () =
  Alcotest.(check int) "k=64 SEC-DED overhead" 8 (E.overhead 64)

let test_encode_length () =
  let cw = E.encode data8 in
  Alcotest.(check int) "8 data + 4 parity + overall" 13 (Array.length cw)

let test_clean_roundtrip () =
  match E.decode ~k:8 (E.encode data8) with
  | E.Clean data -> Alcotest.(check (array int)) "data back" data8 data
  | _ -> Alcotest.fail "expected clean decode"

let test_single_error_corrected_everywhere () =
  let cw = E.encode data8 in
  for pos = 0 to Array.length cw - 1 do
    match E.decode ~k:8 (E.inject_error cw ~pos) with
    | E.Corrected (data, _) ->
      Alcotest.(check (array int))
        (Printf.sprintf "corrected flip at %d" pos)
        data8 data
    | E.Clean _ -> Alcotest.failf "flip at %d not detected" pos
    | E.Uncorrectable -> Alcotest.failf "flip at %d not corrected" pos
  done

let test_double_error_detected () =
  let cw = E.encode data8 in
  let n = Array.length cw in
  (* flip pairs of data-region bits: must never silently mis-correct *)
  let miscorrections = ref 0 in
  for i = 0 to n - 2 do
    let corrupted = E.inject_error (E.inject_error cw ~pos:i) ~pos:(i + 1) in
    match E.decode ~k:8 corrupted with
    | E.Uncorrectable -> ()
    | E.Corrected (data, _) | E.Clean data ->
      if data <> data8 then incr miscorrections
      else () (* a double flip that cancels in the data view is acceptable *)
  done;
  Alcotest.(check int) "no silent corruption" 0 !miscorrections

let test_all_double_errors_exhaustive_small () =
  (* 4-bit payload: check every 2-bit corruption is flagged *)
  let data = [| 1; 0; 0; 1 |] in
  let cw = E.encode data in
  let n = Array.length cw in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match E.decode ~k:4 (E.inject_error (E.inject_error cw ~pos:i) ~pos:j) with
      | E.Uncorrectable -> ()
      | E.Clean d | E.Corrected (d, _) ->
        if d <> data then
          Alcotest.failf "double error (%d, %d) silently corrupted data" i j
    done
  done

let test_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Ecc.encode: empty data") (fun () ->
      ignore (E.encode [||]));
  Alcotest.check_raises "non-bit" (Invalid_argument "Ecc.encode: non-bit value")
    (fun () -> ignore (E.encode [| 2 |]));
  Alcotest.check_raises "bad index" (Invalid_argument "Ecc.inject_error: bad index")
    (fun () -> ignore (E.inject_error (E.encode data8) ~pos:99))

let prop_roundtrip_any_data =
  prop "encode/decode roundtrip" ~count:100
    QCheck2.Gen.(array_size (int_range 1 40) (int_range 0 1))
    (fun data ->
       match E.decode ~k:(Array.length data) (E.encode data) with
       | E.Clean d -> d = data
       | _ -> false)

let prop_single_error_recovered =
  prop "any single flip is recovered" ~count:100
    QCheck2.Gen.(pair (array_size (int_range 1 32) (int_range 0 1)) (int_range 0 1000))
    (fun (data, seed) ->
       let cw = E.encode data in
       let pos = seed mod Array.length cw in
       match E.decode ~k:(Array.length data) (E.inject_error cw ~pos) with
       | E.Corrected (d, _) -> d = data
       | _ -> false)

let () =
  Alcotest.run "ecc"
    [
      ( "ecc",
        [
          case "parity bit counts" test_parity_bits;
          case "overhead" test_overhead;
          case "codeword length" test_encode_length;
          case "clean roundtrip" test_clean_roundtrip;
          case "single errors corrected" test_single_error_corrected_everywhere;
          case "double errors detected" test_double_error_detected;
          case "exhaustive double errors (k=4)" test_all_double_errors_exhaustive_small;
          case "validation" test_validation;
          prop_roundtrip_any_data;
          prop_single_error_recovered;
        ] );
    ]
