module E = Gnrflash.Extensions
module P = Gnrflash_plot
open Gnrflash_testing.Testing

let test_model_comparison_rows () =
  let rows = E.model_comparison ~fields_mv_cm:[| 10.; 14.; 18. |] () in
  Alcotest.(check int) "four models" 4 (List.length rows);
  List.iter
    (fun (name, pts) ->
       Alcotest.(check int) (name ^ " points") 3 (Array.length pts);
       Array.iter
         (fun (_, j) -> check_true (name ^ " positive J") (j > 0. && Float.is_finite j))
         pts)
    rows

let test_models_agree_within_decades () =
  (* the ablation's point: all models share the exponential trend; at
     14 MV/cm they agree within ~2 decades *)
  let rows = E.model_comparison ~fields_mv_cm:[| 14. |] () in
  let js = List.map (fun (_, pts) -> snd pts.(0)) rows in
  let lo = List.fold_left min infinity js and hi = List.fold_left max 0. js in
  check_true "within 2.5 decades" (log10 (hi /. lo) < 2.5)

let test_model_figure () =
  let fig = E.model_figure () in
  Alcotest.(check int) "four series" 4 (List.length fig.P.Figure.series)

let test_evaluate_design_paper_point () =
  let p = E.evaluate_design ~gcr:0.6 ~xto_nm:5. in
  check_true "feasible" (Float.is_finite p.E.program_time);
  check_close ~tol:1e-9 "field 18 MV/cm" 1.8e9 p.E.peak_field;
  check_true "fast programming" (p.E.program_time < 1e-6)

let test_design_tradeoff () =
  (* thicker oxide: slower but lower field *)
  let thin = E.evaluate_design ~gcr:0.6 ~xto_nm:5. in
  let thick = E.evaluate_design ~gcr:0.6 ~xto_nm:7. in
  check_true "thin faster" (thin.E.program_time < thick.E.program_time);
  check_true "thick lower field" (thick.E.peak_field < thin.E.peak_field);
  check_true "thick more endurance" (thick.E.endurance > thin.E.endurance)

let test_optimize_design () =
  let best, points = E.optimize_design () in
  Alcotest.(check int) "grid size" 36 (List.length points);
  check_true "best is feasible" best.E.feasible;
  check_true "best is fast" (Float.is_finite best.E.program_time);
  (* no feasible point is strictly faster with endurance >= 1e4 *)
  List.iter
    (fun p ->
       if p.E.feasible && p.E.endurance >= 1e4 then
         check_true "optimality" (p.E.program_time >= best.E.program_time -. 1e-15))
    points

let test_retention_curve () =
  let fig, loss = E.retention_curve () in
  Alcotest.(check int) "one series" 1 (List.length fig.P.Figure.series);
  check_in "bounded loss" ~lo:0. ~hi:100. loss;
  (* the 5 nm cell holds its charge *)
  check_true "retains" (loss < 20.)

let test_endurance_curve () =
  let fig, survived = E.endurance_curve ~cycles:100 () in
  Alcotest.(check int) "three series" 3 (List.length fig.P.Figure.series);
  Alcotest.(check int) "survives 100" 100 survived

let test_qcap_comparison () =
  let rows = E.qcap_comparison ~layers:[ 1; 3; 5 ] in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  List.iter
    (fun (n, g0, g_eff) ->
       check_true (Printf.sprintf "%d layers reduce gcr" n) (g_eff < g0);
       check_true "still positive" (g_eff > 0.))
    rows;
  (* more layers -> more quantum capacitance -> less reduction *)
  match rows with
  | [ (_, _, g1); (_, _, g3); (_, _, g5) ] ->
    check_true "ordering with layers" (g1 < g3 && g3 < g5)
  | _ -> Alcotest.fail "unexpected shape"

let test_qcap_jv_figure () =
  let fig = E.qcap_jv_figure () in
  Alcotest.(check int) "three curves" 3 (List.length fig.P.Figure.series)

let test_nand_page_demo () =
  let s = check_ok "demo" (E.nand_page_demo ~pages:2 ~strings:4 ()) in
  Alcotest.(check int) "pages written" 2 s.E.pages_written;
  Alcotest.(check int) "no verify failures" 0 s.E.verify_failures;
  check_true "disturb bounded" (s.E.disturb_dvt_max < 1.0);
  check_true "pulses used" (s.E.mean_pulses > 0.)

let test_retention_after_cycling () =
  let rows = E.retention_after_cycling () in
  Alcotest.(check int) "four cycle counts" 4 (List.length rows);
  (match rows with
   | (0, traps0, mult0) :: rest ->
     check_close "fresh oxide has no traps" 0. traps0;
     check_close "fresh multiplier is 1" 1. mult0;
     let rec monotone last = function
       | [] -> ()
       | (_, traps, mult) :: tl ->
         check_true "traps grow with cycling" (traps > 0.);
         check_true "leakage multiplier grows" (mult >= last);
         monotone mult tl
     in
     monotone mult0 rest
   | _ -> Alcotest.fail "first row must be the fresh device");
  (* heavy cycling must visibly hurt retention *)
  let _, _, mult_10k = List.nth rows 3 in
  check_true "10k cycles multiply leakage" (mult_10k > 1.)

let test_mlc_error_budget () =
  let rows = E.mlc_error_budget () in
  Alcotest.(check int) "six spreads" 6 (List.length rows);
  let rec increasing = function
    | a :: (b :: _ as rest) ->
      check_true "failure grows with spread"
        (b.Gnrflash_memory.Ber.page_failure >= a.Gnrflash_memory.Ber.page_failure);
      increasing rest
    | _ -> ()
  in
  increasing rows;
  check_true "tight spread passes" (List.hd rows).Gnrflash_memory.Ber.acceptable;
  check_false "loose spread fails"
    (List.nth rows 5).Gnrflash_memory.Ber.acceptable

let test_bake_test () =
  let rows, ea = E.bake_test () in
  Alcotest.(check int) "four temperatures" 4 (List.length rows);
  (* hotter bakes fail sooner (among finite results) *)
  let finite = List.filter (fun (_, t) -> Float.is_finite t) rows in
  let rec decreasing = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      check_true "hotter fails sooner" (b <= a);
      decreasing rest
    | _ -> ()
  in
  decreasing finite;
  (* the Arrhenius fit recovers the retention model's 0.3 eV activation *)
  check_close ~tol:0.1 "activation energy" 0.3 ea

let test_id_vg_figure () =
  let fig = E.id_vg_figure () in
  Alcotest.(check int) "two curves" 2 (List.length fig.P.Figure.series);
  (* the programmed curve must lie at or below the erased one everywhere *)
  let by_label l =
    List.find (fun s -> s.P.Series.label = l) fig.P.Figure.series
  in
  let er = P.Series.ys (by_label "erased (dVT = 0)") in
  let pr = P.Series.ys (by_label "programmed (dVT = 5.0 V)") in
  let n = min (Array.length er) (Array.length pr) in
  check_true "window exists" (n > 0);
  for i = 0 to n - 1 do
    check_true "programmed below erased" (pr.(i) <= er.(i) +. 1e-18)
  done

let () =
  Alcotest.run "extensions"
    [
      ( "extensions",
        [
          case "model comparison rows" test_model_comparison_rows;
          case "models agree" test_models_agree_within_decades;
          case "model figure" test_model_figure;
          case "paper design point" test_evaluate_design_paper_point;
          case "design tradeoff" test_design_tradeoff;
          case "optimize design" test_optimize_design;
          case "retention curve" test_retention_curve;
          case "endurance curve" test_endurance_curve;
          case "quantum capacitance" test_qcap_comparison;
          case "qcap J-V figure" test_qcap_jv_figure;
          case "NAND page demo" test_nand_page_demo;
          case "retention after cycling (Ext K)" test_retention_after_cycling;
          case "MLC error budget (Ext L)" test_mlc_error_budget;
          case "temperature bake (Ext M)" test_bake_test;
          case "ID-VG window (Ext N)" test_id_vg_figure;
        ] );
    ]
