module F = Gnrflash_physics.Fermi
module C = Gnrflash_physics.Constants
open Gnrflash_testing.Testing

let ev = C.ev
let t300 = 300.

let test_occupation_at_fermi_level () =
  check_close "f(EF) = 1/2" 0.5 (F.occupation ~ef:(0.5 *. ev) ~t:t300 (0.5 *. ev))

let test_occupation_deep_states () =
  check_close ~tol:1e-6 "deep below EF" 1.
    (F.occupation ~ef:(1. *. ev) ~t:t300 0.);
  check_abs ~tol:1e-12 "far above EF" 0.
    (F.occupation ~ef:0. ~t:t300 (2. *. ev))

let test_occupation_zero_temperature () =
  check_close "below" 1. (F.occupation ~ef:1. ~t:0. 0.5);
  check_close "above" 0. (F.occupation ~ef:1. ~t:0. 1.5);
  check_close "at" 0.5 (F.occupation ~ef:1. ~t:0. 1.)

let test_occupation_no_overflow () =
  let v = F.occupation ~ef:0. ~t:1e-3 (10. *. ev) in
  check_true "finite" (Float.is_finite v);
  check_abs ~tol:1e-300 "zero" 0. v

let test_boltzmann_limit () =
  (* far above EF, FD -> MB *)
  let e = 0.6 *. ev and ef = 0.1 *. ev in
  let fd = F.occupation ~ef ~t:t300 e in
  let mb = F.maxwell_boltzmann ~ef ~t:t300 e in
  check_close ~tol:1e-8 "non-degenerate limit" mb fd

let test_supply_zero_bias () =
  check_abs ~tol:1e-25 "no bias, no net supply" 0.
    (F.supply_difference ~ef:(0.2 *. ev) ~t:t300 ~qv:0. (0.1 *. ev))

let test_supply_positive_bias () =
  let n = F.supply_difference ~ef:(0.2 *. ev) ~t:t300 ~qv:(1. *. ev) (0.05 *. ev) in
  check_true "forward supply positive" (n > 0.)

let test_supply_degenerate_limit () =
  (* for E << EF and large qV: N ~ EF - E *)
  let ef = 0.5 *. ev in
  let e = 0.1 *. ev in
  let n = F.supply_difference ~ef ~t:t300 ~qv:(5. *. ev) e in
  check_close ~tol:2e-2 "degenerate supply" (ef -. e) n

let test_fermi_integral_limits () =
  (* non-degenerate: F_1/2(eta) -> e^eta for eta << 0 *)
  check_close ~tol:0.05 "boltzmann tail" (exp (-5.)) (F.fermi_integral_half (-5.));
  (* degenerate: F_1/2(eta) -> (4/3/sqrt(pi)) eta^{3/2} for eta >> 0 *)
  let eta = 30. in
  let sommerfeld = 4. /. (3. *. sqrt Float.pi) *. (eta ** 1.5) in
  check_close ~tol:0.02 "sommerfeld limit" sommerfeld (F.fermi_integral_half eta)

let prop_occupation_in_unit_interval =
  prop "0 <= f <= 1"
    QCheck2.Gen.(pair (float_range (-2.) 2.) (float_range (-2.) 2.))
    (fun (e_ev, ef_ev) ->
       let f = F.occupation ~ef:(ef_ev *. ev) ~t:t300 (e_ev *. ev) in
       f >= 0. && f <= 1.)

let prop_occupation_monotone_decreasing =
  prop "f decreasing in E"
    QCheck2.Gen.(pair (float_range (-1.) 1.) (float_range 0.001 0.5))
    (fun (e_ev, d_ev) ->
       let f1 = F.occupation ~ef:0. ~t:t300 (e_ev *. ev) in
       let f2 = F.occupation ~ef:0. ~t:t300 ((e_ev +. d_ev) *. ev) in
       f2 <= f1 +. 1e-12)

let prop_supply_nonneg_forward =
  prop "supply non-negative under forward bias"
    QCheck2.Gen.(pair (float_range 0. 1.) (float_range 0. 2.))
    (fun (e_ev, qv_ev) ->
       F.supply_difference ~ef:(0.3 *. ev) ~t:t300 ~qv:(qv_ev *. ev) (e_ev *. ev)
       >= -1e-30)

let () =
  Alcotest.run "fermi"
    [
      ( "fermi",
        [
          case "occupation at EF" test_occupation_at_fermi_level;
          case "occupation deep states" test_occupation_deep_states;
          case "occupation T=0" test_occupation_zero_temperature;
          case "no overflow" test_occupation_no_overflow;
          case "boltzmann limit" test_boltzmann_limit;
          case "supply zero bias" test_supply_zero_bias;
          case "supply forward bias" test_supply_positive_bias;
          case "supply degenerate" test_supply_degenerate_limit;
          case "fermi integral limits" test_fermi_integral_limits;
          prop_occupation_in_unit_interval;
          prop_occupation_monotone_decreasing;
          prop_supply_nonneg_forward;
        ] );
    ]
