module O = Gnrflash_memory.Over_erase
module Cell = Gnrflash_memory.Cell
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let fresh () = Cell.make F.paper_default

let deeply_erased () =
  (* a full erase drives the symmetric device to dVT ~ -6.7 V *)
  check_ok "erase" (Cell.erase (fresh ()))

let test_detection () =
  check_false "fresh cell fine" (O.is_over_erased (fresh ()));
  check_true "erased cell over-erased" (O.is_over_erased (deeply_erased ()))

let test_recover_noop_in_window () =
  let c, pulses = check_ok "recover" (O.recover (fresh ())) in
  Alcotest.(check int) "no pulses needed" 0 pulses;
  check_close "unchanged" 0. c.Cell.qfg

let test_recover_over_erased () =
  let c = deeply_erased () in
  let recovered, pulses = check_ok "recover" (O.recover c) in
  check_true "used pulses" (pulses > 0);
  let dvt = Cell.dvt recovered in
  check_in "back in the window" ~lo:O.default.O.verify_low ~hi:O.default.O.verify_high dvt

let test_erase_with_recovery () =
  let programmed = check_ok "program" (Cell.program (fresh ())) in
  let c, pulses = check_ok "flow" (O.erase_with_recovery programmed) in
  check_true "soft pulses applied" (pulses > 0);
  check_in "erase verify window" ~lo:O.default.O.verify_low ~hi:O.default.O.verify_high
    (Cell.dvt c);
  check_true "cell reads erased" (Cell.read c = Cell.Erased)

let test_budget_exhaustion () =
  (* a tiny pulse budget cannot climb out of deep over-erase *)
  let config = { O.default with O.max_pulses = 1; soft_width = 1e-12 } in
  check_error "budget" (O.recover ~config (deeply_erased ()))

let () =
  Alcotest.run "over_erase"
    [
      ( "over_erase",
        [
          case "detection" test_detection;
          case "no-op in window" test_recover_noop_in_window;
          case "recovers over-erased cell" test_recover_over_erased;
          case "full erase flow" test_erase_with_recovery;
          case "budget exhaustion" test_budget_exhaustion;
        ] );
    ]
