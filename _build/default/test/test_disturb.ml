module D = Gnrflash_device.Disturb
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let t = F.paper_default

let test_half_select () =
  let c = D.half_select ~vgs_program:15. ~pulse_width:10e-6 in
  check_close "half bias" 7.5 c.D.v_disturb;
  check_close "width" 10e-6 c.D.pulse_width

let test_zero_events_no_drift () =
  let dvt = check_ok "none" (D.dvt_after_events t ~qfg0:0. ~events:0) in
  check_close "no drift" 0. dvt

let test_drift_grows_with_events () =
  let d n = check_ok "drift" (D.dvt_after_events t ~qfg0:0. ~events:n) in
  let d10 = d 10 and d1000 = d 1000 in
  check_true "monotone" (d1000 >= d10);
  check_true "some disturb at VGS/2" (d1000 > 0.)

let test_disturb_much_slower_than_program () =
  (* at VGS/2 = 7.5 V the field is 9 MV/cm vs 18 MV/cm: the exponential makes
     the disturb rate many orders slower *)
  let dvt_disturb = check_ok "disturb" (D.dvt_after_events t ~qfg0:0. ~events:1) in
  let config_full = { D.v_disturb = 15.; pulse_width = 10e-6 } in
  let dvt_full =
    check_ok "full bias" (D.dvt_after_events ~config:config_full t ~qfg0:0. ~events:1)
  in
  check_true "disturb shift far smaller" (dvt_disturb < dvt_full /. 50.)

let test_negative_events_rejected () =
  check_error "negative" (D.dvt_after_events t ~qfg0:0. ~events:(-1))

let test_events_to_failure_finds_crossing () =
  (* pick a failure level the 7.5 V disturb can actually reach *)
  match check_ok "etf" (D.events_to_failure t ~qfg0:0. ~dvt_fail:0.05 ~max_events:(1 lsl 20)) with
  | None -> Alcotest.fail "expected failure within budget"
  | Some n ->
    check_true "positive" (n >= 1);
    (* verify the crossing: n events reach the level, fewer do not *)
    let at = check_ok "at" (D.dvt_after_events t ~qfg0:0. ~events:n) in
    check_true "reaches level" (at >= 0.05);
    if n > 1 then begin
      let before = check_ok "before" (D.dvt_after_events t ~qfg0:0. ~events:(n - 1)) in
      check_true "tight crossing" (before < 0.05)
    end

let test_events_to_failure_none () =
  (* a fail level above the disturb-bias saturation window is unreachable *)
  let r = check_ok "etf" (D.events_to_failure t ~qfg0:0. ~dvt_fail:10. ~max_events:1024) in
  check_true "unreachable" (r = None)

let test_events_to_failure_validation () =
  check_error "bad level" (D.events_to_failure t ~qfg0:0. ~dvt_fail:0. ~max_events:10)

let () =
  Alcotest.run "disturb"
    [
      ( "disturb",
        [
          case "half-select scheme" test_half_select;
          case "zero events" test_zero_events_no_drift;
          case "drift grows" test_drift_grows_with_events;
          case "disturb << program" test_disturb_much_slower_than_program;
          case "negative events" test_negative_events_rejected;
          case "events-to-failure crossing" test_events_to_failure_finds_crossing;
          case "unreachable failure" test_events_to_failure_none;
          case "validation" test_events_to_failure_validation;
        ] );
    ]
