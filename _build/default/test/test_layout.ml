module L = Gnrflash_device.Layout
module Cap = Gnrflash_device.Capacitance
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let test_paper_layout_gcr () =
  (* the derived GCR should land near the paper's 0.6 *)
  check_in "gcr near paper value" ~lo:0.5 ~hi:0.7 (L.gcr L.paper_layout)

let test_capacitance_components () =
  let caps = L.capacitances L.paper_layout in
  check_true "cfc largest single plate" (caps.Cap.cfc > caps.Cap.cfs);
  check_close ~tol:1e-9 "source/drain symmetric" caps.Cap.cfs caps.Cap.cfd;
  (* hand check: CFC = wrap * eps0*3.9*(32nm)^2/10nm *)
  let expected =
    3.5 *. Cap.parallel_plate ~eps_r:3.9 ~area:(32e-9 *. 32e-9) ~thickness:10e-9
  in
  check_close ~tol:1e-12 "cfc plate" expected caps.Cap.cfc

let test_validation () =
  Alcotest.check_raises "overlaps too big"
    (Invalid_argument "Layout.capacitances: overlaps exceed the gate") (fun () ->
      ignore (L.capacitances { L.paper_layout with L.overlap = 20e-9 }))

let test_device_construction () =
  let t = L.device L.paper_layout in
  check_close ~tol:1e-9 "area" (32e-9 *. 32e-9) t.F.area;
  check_close ~tol:1e-9 "gcr consistent" (L.gcr L.paper_layout) (F.gcr t);
  (* the layout-derived device programs like the canonical one *)
  let vfg = F.vfg t ~vgs:15. ~qfg:0. in
  check_in "vfg in the paper ballpark" ~lo:7. ~hi:11. vfg

let test_gcr_rises_with_thinner_control_oxide () =
  let sweep = L.gcr_vs_control_oxide L.paper_layout ~xco_nm:[| 6.; 8.; 10.; 14. |] in
  for i = 0 to Array.length sweep - 2 do
    check_true "thinner xco, higher gcr" (snd sweep.(i) > snd sweep.(i + 1))
  done

let test_fringing_increases_parasitics () =
  let no_fringe = { L.paper_layout with L.fringe_factor = 1.0 } in
  check_true "fringing lowers gcr" (L.gcr L.paper_layout < L.gcr no_fringe)

let prop_gcr_bounded =
  prop "derived gcr in (0, 1)" ~count:40
    QCheck2.Gen.(pair (float_range 5. 20.) (float_range 1. 6.))
    (fun (xco_nm, overlap_nm) ->
       let l =
         { L.paper_layout with L.xco = xco_nm *. 1e-9; overlap = overlap_nm *. 1e-9 }
       in
       let g = L.gcr l in
       g > 0. && g < 1.)

let () =
  Alcotest.run "layout"
    [
      ( "layout",
        [
          case "paper layout GCR" test_paper_layout_gcr;
          case "capacitance components" test_capacitance_components;
          case "validation" test_validation;
          case "device construction" test_device_construction;
          case "GCR vs control oxide" test_gcr_rises_with_thinner_control_oxide;
          case "fringing" test_fringing_increases_parasitics;
          prop_gcr_bounded;
        ] );
    ]
