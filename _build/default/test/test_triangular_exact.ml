module Te = Gnrflash_quantum.Triangular_exact
module Tm = Gnrflash_quantum.Transfer_matrix
module B = Gnrflash_quantum.Barrier
module C = Gnrflash_physics.Constants
open Gnrflash_testing.Testing

let ev = C.ev
let m_b = 0.42 *. C.m0

let test_rectangular_limit () =
  (* phi1 = phi2: falls back to the analytic rectangular formula *)
  let v = 1. *. ev in
  let t = Te.transmission ~phi1:v ~phi2:v ~thickness:1e-9 ~m_b:C.m0 ~m_e:C.m0
      ~energy:(0.5 *. ev) in
  let k = sqrt (2. *. C.m0 *. 0.5 *. ev) /. C.hbar in
  let kappa = sqrt (2. *. C.m0 *. 0.5 *. ev) /. C.hbar in
  let s = sinh (kappa *. 1e-9) in
  let expected = 1. /. (1. +. ((((k /. kappa) +. (kappa /. k)) ** 2.) /. 4. *. s *. s)) in
  check_close ~tol:1e-6 "symmetric rectangular" expected t

let test_zero_energy () =
  check_close "blocked at E = 0" 0.
    (Te.transmission ~phi1:(3.2 *. ev) ~phi2:0. ~thickness:5e-9 ~m_b ~m_e:C.m0
       ~energy:0.)

let test_evanescent_collector () =
  (* E below the collector band edge: no propagating exit *)
  let t = Te.transmission ~phi1:(3.2 *. ev) ~phi2:(1. *. ev) ~thickness:5e-9 ~m_b
      ~m_e:C.m0 ~energy:(0.5 *. ev) in
  check_close "no exit channel" 0. t

let test_bounds_and_agreement_with_tmm () =
  (* the two independent exact-ish solvers must agree closely on a tilted
     barrier at moderate attenuation *)
  let phi = 3.2 *. ev in
  let field = 1.2e9 in
  let thickness = 5e-9 in
  let e = 0.3 *. ev in
  let t_airy = Te.transmission_fn ~phi_b:phi ~field ~thickness ~m_b ~m_e:C.m0 ~energy:e in
  let b = B.trapezoidal ~phi_b:phi ~v_ox:(field *. thickness) ~thickness ~m_eff:m_b in
  let t_tmm = Tm.transmission ~steps:800 b ~energy:e in
  check_in "bounded" ~lo:0. ~hi:1. t_airy;
  check_true "both tiny" (t_airy < 1e-4);
  check_in "airy vs tmm exponent" ~lo:0.85 ~hi:1.18 (log t_airy /. log t_tmm)

let test_monotone_in_energy () =
  let t e_ev =
    Te.transmission_fn ~phi_b:(3.2 *. ev) ~field:1.2e9 ~thickness:5e-9 ~m_b ~m_e:C.m0
      ~energy:(e_ev *. ev)
  in
  check_true "monotone" (t 0.2 < t 0.8 && t 0.8 < t 1.5)

let test_monotone_in_field () =
  let t field =
    Te.transmission_fn ~phi_b:(3.2 *. ev) ~field ~thickness:5e-9 ~m_b ~m_e:C.m0
      ~energy:(0.3 *. ev)
  in
  check_true "monotone" (t 1e9 < t 1.4e9 && t 1.4e9 < t 1.8e9)

let test_field_validation () =
  Alcotest.check_raises "field <= 0"
    (Invalid_argument "Triangular_exact.transmission_fn: field <= 0") (fun () ->
      ignore (Te.transmission_fn ~phi_b:(1. *. ev) ~field:0. ~thickness:1e-9 ~m_b
                ~m_e:C.m0 ~energy:(0.1 *. ev)))

let test_thin_limit () =
  check_close "zero thickness transmits" 1.
    (Te.transmission ~phi1:(1. *. ev) ~phi2:0. ~thickness:0. ~m_b ~m_e:C.m0
       ~energy:(0.1 *. ev))

let prop_bounded =
  prop "T in [0,1]" ~count:60
    QCheck2.Gen.(pair (float_range 8e8 2e9) (float_range 0.05 2.5))
    (fun (field, e_ev) ->
       let t =
         Te.transmission_fn ~phi_b:(3.2 *. ev) ~field ~thickness:5e-9 ~m_b ~m_e:C.m0
           ~energy:(e_ev *. ev)
       in
       t >= 0. && t <= 1.)

let () =
  Alcotest.run "triangular_exact"
    [
      ( "triangular_exact",
        [
          case "rectangular limit" test_rectangular_limit;
          case "zero energy" test_zero_energy;
          case "evanescent collector" test_evanescent_collector;
          case "agrees with transfer matrix" test_bounds_and_agreement_with_tmm;
          case "monotone in energy" test_monotone_in_energy;
          case "monotone in field" test_monotone_in_field;
          case "field validation" test_field_validation;
          case "thin limit" test_thin_limit;
          prop_bounded;
        ] );
    ]
