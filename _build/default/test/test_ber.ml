module B = Gnrflash_memory.Ber
module M = Gnrflash_memory.Mlc
open Gnrflash_testing.Testing

let test_raw_cell_error_rate () =
  (* margin = sigma: p = 0.5 erfc(1/sqrt2) = 0.5*(1-erf(0.707)) = 0.1587 *)
  check_close ~tol:1e-4 "one-sigma tail" 0.1586553
    (B.raw_cell_error_rate ~sigma_dvt:0.25 ~margin:0.25);
  (* 5-sigma margin: ~2.9e-7 *)
  check_close ~tol:1e-2 "five-sigma tail" 2.87e-7
    (B.raw_cell_error_rate ~sigma_dvt:0.1 ~margin:0.5)

let test_error_rate_monotone () =
  let p s = B.raw_cell_error_rate ~sigma_dvt:s ~margin:0.75 in
  check_true "worse with spread" (p 0.3 > p 0.1);
  let q m = B.raw_cell_error_rate ~sigma_dvt:0.2 ~margin:m in
  check_true "better with margin" (q 0.9 < q 0.4)

let test_validation () =
  Alcotest.check_raises "sigma" (Invalid_argument "Ber.raw_cell_error_rate: non-positive input")
    (fun () -> ignore (B.raw_cell_error_rate ~sigma_dvt:0. ~margin:1.))

let test_mlc_raw_ber () =
  let ber = B.mlc_raw_ber ~sigma_dvt:0.2 () in
  check_in "plausible raw BER" ~lo:1e-8 ~hi:1e-1 ber;
  (* TLC with tighter margins must be worse at the same spread *)
  let tlc = B.mlc_raw_ber ~config:M.default_tlc ~sigma_dvt:0.2 () in
  check_true "TLC worse than MLC" (tlc > ber)

let test_page_failure_rate_limits () =
  check_close "zero ber" 0. (B.page_failure_rate ~raw_ber:0. ~codeword_bits:72 ~codewords_per_page:512);
  check_close "certain failure" 1. (B.page_failure_rate ~raw_ber:1. ~codeword_bits:72 ~codewords_per_page:512)

let test_page_failure_small_ber () =
  (* p = 1e-6 per bit, 72-bit words: cw fail ~ C(72,2) p^2 = 2556e-12;
     512 words -> ~1.3e-6 *)
  let pf = B.page_failure_rate ~raw_ber:1e-6 ~codeword_bits:72 ~codewords_per_page:512 in
  check_close ~tol:0.05 "binomial tail" 1.31e-6 pf

let test_ecc_gain () =
  (* with ECC the page failure rate must be far below the raw page error
     probability (1 - (1-p)^bits) *)
  let raw_ber = 1e-7 in
  let pf = B.page_failure_rate ~raw_ber ~codeword_bits:72 ~codewords_per_page:512 in
  let unprotected = 1. -. ((1. -. raw_ber) ** float_of_int (4096 * 8)) in
  check_true "ECC wins by orders" (pf < unprotected /. 1e3)

let test_analyze_pipeline () =
  let a = B.analyze ~sigma_dvt:0.1 () in
  check_true "tiny spread is acceptable" a.B.acceptable;
  let b = B.analyze ~sigma_dvt:0.6 () in
  check_false "huge spread fails" b.B.acceptable;
  check_true "failure ordering" (b.B.page_failure > a.B.page_failure)

let test_max_tolerable_sigma () =
  let s = B.max_tolerable_sigma () in
  check_in "budget plausible" ~lo:0.01 ~hi:0.5 s;
  (* at the budget, the analysis passes; 20% above, it fails *)
  check_true "passes at budget" (B.analyze ~sigma_dvt:s ()).B.acceptable;
  check_false "fails above budget" (B.analyze ~sigma_dvt:(s *. 1.2) ()).B.acceptable

let prop_page_failure_monotone_in_ber =
  prop "page failure monotone in raw BER" ~count:40
    QCheck2.Gen.(float_range 1e-9 1e-3)
    (fun p ->
       B.page_failure_rate ~raw_ber:(p *. 2.) ~codeword_bits:72 ~codewords_per_page:512
       >= B.page_failure_rate ~raw_ber:p ~codeword_bits:72 ~codewords_per_page:512)

let () =
  Alcotest.run "ber"
    [
      ( "ber",
        [
          case "raw cell error rate" test_raw_cell_error_rate;
          case "monotonicities" test_error_rate_monotone;
          case "validation" test_validation;
          case "MLC raw BER" test_mlc_raw_ber;
          case "page failure limits" test_page_failure_rate_limits;
          case "binomial tail value" test_page_failure_small_ber;
          case "ECC gain" test_ecc_gain;
          case "analysis pipeline" test_analyze_pipeline;
          case "tolerable sigma" test_max_tolerable_sigma;
          prop_page_failure_monotone_in_ber;
        ] );
    ]
