module S = Gnrflash_numerics.Special
open Gnrflash_testing.Testing

(* Reference values: Abramowitz & Stegun / DLMF tables. *)

let test_erf_values () =
  check_abs ~tol:2e-7 "erf 0" 0. (S.erf 0.);
  check_abs ~tol:2e-7 "erf 0.5" 0.5204998778 (S.erf 0.5);
  check_abs ~tol:2e-7 "erf 1" 0.8427007929 (S.erf 1.);
  check_abs ~tol:2e-7 "erf 2" 0.9953222650 (S.erf 2.)

let test_erf_odd () =
  check_abs ~tol:1e-12 "odd symmetry" 0. (S.erf 0.7 +. S.erf (-0.7))

let test_erfc_complement () =
  check_abs ~tol:1e-9 "erf + erfc = 1" 1. (S.erf 1.3 +. S.erfc 1.3)

let test_erfc_tail () =
  (* erfc(3) = 2.20904970e-5 *)
  check_close ~tol:1e-4 "erfc 3" 2.2090497e-5 (S.erfc 3.)

let test_gamma_integers () =
  check_close ~tol:1e-10 "gamma 1" 1. (S.gamma 1.);
  check_close ~tol:1e-10 "gamma 5 = 24" 24. (S.gamma 5.);
  check_close ~tol:1e-10 "gamma 8 = 5040" 5040. (S.gamma 8.)

let test_gamma_half () =
  check_close ~tol:1e-10 "gamma 1/2 = sqrt pi" (sqrt Float.pi) (S.gamma 0.5)

let test_gamma_reflection () =
  (* gamma(-0.5) = -2 sqrt(pi) *)
  check_close ~tol:1e-9 "gamma -1/2" (-2. *. sqrt Float.pi) (S.gamma (-0.5))

let test_ln_gamma () =
  check_close ~tol:1e-10 "ln gamma 10" (log (S.gamma 10.)) (S.ln_gamma 10.);
  check_close ~tol:1e-9 "ln gamma large" 359.1342053696 (S.ln_gamma 100.)

let test_airy_at_zero () =
  check_close ~tol:1e-12 "Ai(0)" 0.3550280538878172 (S.airy_ai 0.);
  check_close ~tol:1e-12 "Ai'(0)" (-0.2588194037928068) (S.airy_ai' 0.);
  check_close ~tol:1e-12 "Bi(0)" 0.6149266274460007 (S.airy_bi 0.);
  check_close ~tol:1e-12 "Bi'(0)" 0.4482883573538264 (S.airy_bi' 0.)

let test_airy_at_one () =
  check_close ~tol:1e-10 "Ai(1)" 0.1352924163128814 (S.airy_ai 1.);
  check_close ~tol:1e-10 "Ai'(1)" (-0.1591474412967932) (S.airy_ai' 1.);
  check_close ~tol:1e-10 "Bi(1)" 1.2074235949528713 (S.airy_bi 1.);
  check_close ~tol:1e-10 "Bi'(1)" 0.9324359333927756 (S.airy_bi' 1.)

let test_airy_negative () =
  check_close ~tol:1e-9 "Ai(-1)" 0.5355608832923521 (S.airy_ai (-1.));
  check_close ~tol:1e-9 "Bi(-1)" 0.1039973894969446 (S.airy_bi (-1.));
  check_close ~tol:1e-7 "Ai(-5)" 0.3507610090241142 (S.airy_ai (-5.));
  check_close ~tol:1e-7 "Bi(-5)" (-0.1383691349016005) (S.airy_bi (-5.))

let test_airy_asymptotic () =
  (* references from mpmath at 20 digits *)
  check_close ~tol:1e-7 "Ai(5)" 1.0834442813607442e-4 (S.airy_ai 5.);
  check_close ~tol:1e-7 "Ai(10)" 1.1047532552898686e-10 (S.airy_ai 10.);
  check_close ~tol:1e-6 "Bi(5)" 657.79204417117118 (S.airy_bi 5.);
  check_close ~tol:1e-7 "Ai(-8)" (-0.052705050356386203) (S.airy_ai (-8.))

let test_airy_wronskian () =
  (* Ai Bi' - Ai' Bi = 1/pi at every x *)
  List.iter
    (fun x ->
       let ai, ai', bi, bi' = S.airy_all x in
       check_close ~tol:1e-7
         (Printf.sprintf "wronskian at %g" x)
         (1. /. Float.pi)
         ((ai *. bi') -. (ai' *. bi)))
    [ -6.; -3.; -1.; 0.; 0.5; 2.; 4.; 6.; 9. ]

let test_airy_ode_residual () =
  (* numerical second derivative must satisfy y'' = x y *)
  let h = 1e-4 in
  List.iter
    (fun x ->
       let y m = S.airy_ai (x +. m) in
       let second = (y h -. (2. *. y 0.) +. y (-.h)) /. (h *. h) in
       check_close ~tol:1e-4
         (Printf.sprintf "Ai'' = x Ai at %g" x)
         (x *. S.airy_ai x) second)
    [ 0.5; 1.5; 3. ]

let prop_airy_continuity_at_cutoff =
  (* the series/asymptotic switch at |x| = 5.5 must be seamless: the jump
     across the boundary must not exceed the natural variation Ai'(x)·dx
     plus the asymptotic truncation error (~1e-8 relative there) *)
  prop "Ai continuous at the method boundary" ~count:50
    QCheck2.Gen.(float_range 5.3 5.7)
    (fun x ->
       let dx = 1e-6 in
       let left = S.airy_ai (x -. dx) and right = S.airy_ai (x +. dx) in
       let slope_allowance = abs_float (S.airy_ai' x) *. 2. *. dx in
       abs_float (left -. right) <= slope_allowance +. (1e-7 *. abs_float left))

let prop_erf_monotone =
  prop "erf monotone" QCheck2.Gen.(pair (float_range (-3.) 3.) (float_range 0.001 1.))
    (fun (x, d) -> S.erf (x +. d) >= S.erf x)

let () =
  Alcotest.run "special"
    [
      ( "special",
        [
          case "erf table values" test_erf_values;
          case "erf odd" test_erf_odd;
          case "erfc complement" test_erfc_complement;
          case "erfc tail" test_erfc_tail;
          case "gamma integers" test_gamma_integers;
          case "gamma half" test_gamma_half;
          case "gamma reflection" test_gamma_reflection;
          case "ln_gamma" test_ln_gamma;
          case "airy at 0" test_airy_at_zero;
          case "airy at 1" test_airy_at_one;
          case "airy negative axis" test_airy_negative;
          case "airy asymptotic region" test_airy_asymptotic;
          case "airy wronskian" test_airy_wronskian;
          case "airy satisfies its ODE" test_airy_ode_residual;
          prop_airy_continuity_at_cutoff;
          prop_erf_monotone;
        ] );
    ]
