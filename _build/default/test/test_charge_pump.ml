module P = Gnrflash_device.Charge_pump
open Gnrflash_testing.Testing

let pump = P.make ~v_dd:1.8 ~stages:12 ()

let test_open_circuit_voltage () =
  (* V = Vdd + N(Vdd - Vd) - Vd = 1.8 + 12*1.5 - 0.3 = 19.5 V *)
  check_close ~tol:1e-9 "unloaded output" 19.5 (P.output_voltage pump ~i_load:0.)

let test_load_droop () =
  let v0 = P.output_voltage pump ~i_load:0. in
  let v1 = P.output_voltage pump ~i_load:1e-6 in
  check_true "droops under load" (v1 < v0);
  (* droop = N * I/(fC) = 12 * 1e-6/(20e6*1e-12) = 0.6 V *)
  check_close ~tol:1e-6 "droop magnitude" 0.6 (v0 -. v1)

let test_make_validation () =
  Alcotest.check_raises "bad vdd" (Invalid_argument "Charge_pump.make: non-positive parameter")
    (fun () -> ignore (P.make ~v_dd:0. ~stages:4 ()))

let test_stages_for_paper_bias () =
  (* reaching 15 V for the paper's programming from a 1.8 V supply *)
  let n = P.stages_for pump ~v_target:15. ~i_load:1e-9 in
  check_in "stage count sane" ~lo:8. ~hi:14. (float_of_int n);
  (* and the resulting pump really reaches it *)
  let sized = { pump with P.stages = n } in
  check_true "reaches target" (P.output_voltage sized ~i_load:1e-9 >= 15.)

let test_stages_for_unreachable () =
  Alcotest.check_raises "load too heavy"
    (Invalid_argument "Charge_pump.stages_for: pump cannot source this load") (fun () ->
      ignore (P.stages_for pump ~v_target:15. ~i_load:1. ))

let test_efficiency () =
  let eta = P.efficiency pump ~i_load:1e-6 in
  check_in "eta in (0,1]" ~lo:0.01 ~hi:1. eta;
  (* ideal Dickson efficiency ~ Vout/((N+1) Vdd) ~ 18.9/23.4 ~ 0.8 *)
  check_in "plausible" ~lo:0.5 ~hi:0.95 eta

let test_energy_per_program () =
  let e = P.energy_per_program pump ~i_load:1e-9 ~pulse_width:10e-6 in
  (* (N+1) * I * Vdd * t = 13 * 1e-9 * 1.8 * 1e-5 = 2.34e-13 J *)
  check_close ~tol:1e-9 "supply energy" 2.34e-13 e

let test_ramp_time () =
  let t = P.ramp_time pump ~load_capacitance:1e-12 ~v_target:15. in
  (* I_avail = 20e6*1e-12*1.5 = 30 uA; t = CV/I = 1e-12*15/3e-5 = 0.5 us *)
  check_close ~tol:1e-9 "ramp" 5e-7 t

let prop_voltage_monotone_in_stages =
  prop "more stages, more volts" QCheck2.Gen.(int_range 1 30) (fun n ->
      let p1 = P.make ~v_dd:1.8 ~stages:n () in
      let p2 = P.make ~v_dd:1.8 ~stages:(n + 1) () in
      P.output_voltage p2 ~i_load:1e-9 > P.output_voltage p1 ~i_load:1e-9)

let prop_efficiency_decreases_with_stages =
  prop "stage count costs efficiency" QCheck2.Gen.(int_range 2 25) (fun n ->
      let p1 = P.make ~v_dd:1.8 ~stages:n () in
      let p2 = P.make ~v_dd:1.8 ~stages:(n + 2) () in
      P.efficiency p2 ~i_load:1e-7 <= P.efficiency p1 ~i_load:1e-7 +. 1e-9)

let () =
  Alcotest.run "charge_pump"
    [
      ( "charge_pump",
        [
          case "open-circuit voltage" test_open_circuit_voltage;
          case "load droop" test_load_droop;
          case "validation" test_make_validation;
          case "stages for 15 V" test_stages_for_paper_bias;
          case "unreachable load" test_stages_for_unreachable;
          case "efficiency" test_efficiency;
          case "energy per program" test_energy_per_program;
          case "ramp time" test_ramp_time;
          prop_voltage_monotone_in_stages;
          prop_efficiency_decreases_with_stages;
        ] );
    ]
