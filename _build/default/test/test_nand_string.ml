module Ns = Gnrflash_memory.Nand_string
module Cell = Gnrflash_memory.Cell
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let fresh_string n = Ns.make (Array.init n (fun _ -> Cell.make F.paper_default))

let test_make_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Nand_string.make: empty string")
    (fun () -> ignore (Ns.make [||]))

let test_length () = Alcotest.(check int) "length" 8 (Ns.length (fresh_string 8))

let test_read_erased_string () =
  let s = fresh_string 4 in
  for i = 0 to 3 do
    let bit = check_ok "read" (Ns.read_bit s ~selected:i) in
    Alcotest.(check int) "erased reads 1" 1 bit
  done

let test_read_programmed_cell () =
  (* a fully saturated cell shifts VT by ~6.7 V, so V_pass must exceed
     vt0 + dVT for the series string to stay conductive *)
  let s = Ns.make ~v_pass:9. (Array.init 4 (fun _ -> Cell.make F.paper_default)) in
  let programmed = check_ok "program" (Cell.program (Cell.make F.paper_default)) in
  let s = Ns.update_cell s 2 programmed in
  Alcotest.(check int) "programmed reads 0" 0 (check_ok "read" (Ns.read_bit s ~selected:2));
  Alcotest.(check int) "neighbor unaffected" 1 (check_ok "read" (Ns.read_bit s ~selected:1))

let test_bad_index () =
  check_error "out of range" (Ns.read_bit (fresh_string 4) ~selected:9);
  Alcotest.check_raises "update" (Invalid_argument "Nand_string.update_cell: bad index")
    (fun () -> ignore (Ns.update_cell (fresh_string 4) 9 (Cell.make F.paper_default)))

let test_blocked_string () =
  (* an unselected cell whose VT exceeds V_pass breaks the series path *)
  let s = Ns.make ~v_pass:2. (Array.init 4 (fun _ -> Cell.make F.paper_default)) in
  let programmed = check_ok "program" (Cell.program (Cell.make F.paper_default)) in
  let s = Ns.update_cell s 1 programmed in
  (* cell 1 has dVT ~ 6.7 V > 2 V pass: reading another page must fail *)
  check_error "blocked" (Ns.read_bit s ~selected:3)

let test_string_current_bottleneck () =
  let s = fresh_string 4 in
  let i_fresh = Ns.string_current s ~selected:0 in
  check_true "erased string conducts" (i_fresh > 0.);
  let programmed = check_ok "program" (Cell.program (Cell.make F.paper_default)) in
  let s' = Ns.update_cell s 0 programmed in
  let i_prog = Ns.string_current s' ~selected:0 in
  check_true "programmed cell throttles the string" (i_prog < i_fresh /. 10.)

let test_pass_disturb_events () =
  let s = fresh_string 5 in
  let victims = Ns.pass_disturb_events s ~selected:2 in
  Alcotest.(check int) "all others exposed" 4 (Array.length victims);
  check_true "selected excluded" (not (Array.mem 2 victims))

let () =
  Alcotest.run "nand_string"
    [
      ( "nand_string",
        [
          case "make validation" test_make_validation;
          case "length" test_length;
          case "erased string reads 1s" test_read_erased_string;
          case "programmed cell reads 0" test_read_programmed_cell;
          case "index errors" test_bad_index;
          case "blocked string" test_blocked_string;
          case "series bottleneck" test_string_current_bottleneck;
          case "pass-disturb victims" test_pass_disturb_events;
        ] );
    ]
