module I = Gnrflash_device.Ispp
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let t = F.paper_default

let test_default_config () =
  check_close "start" 12. I.default.I.v_start;
  check_close "step" 0.5 I.default.I.v_step;
  check_close "target" 2. I.default.I.target_dvt

let test_reaches_target () =
  let r = check_ok "ispp" (I.run t ~qfg0:0.) in
  check_true "passed" r.I.passed;
  check_true "used pulses" (r.I.pulses_used >= 1);
  match List.rev r.I.steps with
  | last :: _ -> check_true "target met" (last.I.dvt >= I.default.I.target_dvt)
  | [] -> Alcotest.fail "no steps recorded"

let test_dvt_monotone_over_pulses () =
  let r = check_ok "ispp" (I.run t ~qfg0:0.) in
  let rec check_list = function
    | a :: (b :: _ as rest) ->
      check_true "monotone staircase" (b.I.dvt >= a.I.dvt -. 1e-9);
      check_list rest
    | _ -> ()
  in
  check_list r.I.steps

let test_vgs_staircase () =
  let r = check_ok "ispp" (I.run t ~qfg0:0.) in
  List.iteri
    (fun i s ->
       check_close ~tol:1e-12 "bias schedule"
         (I.default.I.v_start +. (float_of_int i *. I.default.I.v_step))
         s.I.vgs)
    r.I.steps

let test_fails_when_unreachable () =
  (* target far beyond the saturation window with a low abort voltage *)
  let config = { I.default with I.target_dvt = 50.; v_max = 13. } in
  let r = check_ok "ispp" (I.run ~config t ~qfg0:0.) in
  check_false "cannot pass" r.I.passed

let test_higher_start_fewer_pulses () =
  let config_lo = { I.default with I.v_start = 11. } in
  let config_hi = { I.default with I.v_start = 14. } in
  let r_lo = check_ok "lo" (I.run ~config:config_lo t ~qfg0:0.) in
  let r_hi = check_ok "hi" (I.run ~config:config_hi t ~qfg0:0.) in
  check_true "higher start converges in fewer pulses"
    (r_hi.I.pulses_used <= r_lo.I.pulses_used)

let test_config_validation () =
  check_error "step" (I.run ~config:{ I.default with I.v_step = 0. } t ~qfg0:0.);
  check_error "width" (I.run ~config:{ I.default with I.pulse_width = 0. } t ~qfg0:0.)

let test_tail_increments () =
  let r = check_ok "ispp" (I.run t ~qfg0:0.) in
  let incs = I.dvt_per_pulse_tail r in
  (* in steady state the staircase increment approaches v_step *)
  match List.rev incs with
  | last :: _ -> check_in "increment near v_step" ~lo:0.05 ~hi:1.0 last
  | [] -> () (* single-pulse convergence is acceptable *)

let prop_target_monotone_in_pulses =
  prop "larger targets need at least as many pulses" ~count:4
    QCheck2.Gen.(float_range 0.5 2.)
    (fun dvt ->
       let run target =
         match I.run ~config:{ I.default with I.target_dvt = target } t ~qfg0:0. with
         | Ok r -> r.I.pulses_used
         | Error _ -> max_int
       in
       run (dvt +. 1.) >= run dvt)

let () =
  Alcotest.run "ispp"
    [
      ( "ispp",
        [
          case "default config" test_default_config;
          case "reaches target" test_reaches_target;
          case "monotone staircase" test_dvt_monotone_over_pulses;
          case "bias schedule" test_vgs_staircase;
          case "unreachable target" test_fails_when_unreachable;
          case "start voltage tradeoff" test_higher_start_fewer_pulses;
          case "config validation" test_config_validation;
          case "tail increments" test_tail_increments;
          prop_target_monotone_in_pulses;
        ] );
    ]
