module S = Gnrflash_materials.Silicon
open Gnrflash_testing.Testing

let test_parameters () =
  check_close "gap" 1.12 S.bandgap_ev;
  check_close "affinity" 4.05 S.electron_affinity;
  check_close "eps_r" 11.7 S.eps_r;
  check_true "ni" (S.ni > 0.);
  check_true "nc > nv order" (S.nc > S.nv)

let test_fermi_level_doping () =
  (* heavier doping moves EF closer to the conduction band *)
  let light = S.fermi_level_n ~nd:1e22 in
  let heavy = S.fermi_level_n ~nd:1e25 in
  check_true "both below Ec" (light > 0. && heavy >= 0.);
  check_true "heavy doping closer to Ec" (heavy < light)

let test_fermi_level_magnitude () =
  (* nd = nc -> EF at the band edge *)
  check_abs ~tol:1e-12 "EF at Ec for nd = Nc" 0. (S.fermi_level_n ~nd:S.nc)

let test_fermi_level_invalid () =
  Alcotest.check_raises "bad doping" (Invalid_argument "Silicon.fermi_level_n: nd <= 0")
    (fun () -> ignore (S.fermi_level_n ~nd:0.))

let () =
  Alcotest.run "silicon"
    [
      ( "silicon",
        [
          case "parameters" test_parameters;
          case "fermi level vs doping" test_fermi_level_doping;
          case "fermi level at Nc" test_fermi_level_magnitude;
          case "invalid doping" test_fermi_level_invalid;
        ] );
    ]
