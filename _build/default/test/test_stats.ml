module S = Gnrflash_numerics.Stats
open Gnrflash_testing.Testing

let sample = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |]

let test_mean () = check_close "mean" 5. (S.mean sample)

let test_variance () =
  (* population variance of this classic sample is 4; sample variance 32/7 *)
  check_close "sample variance" (32. /. 7.) (S.variance sample)

let test_std () = check_close "std" (sqrt (32. /. 7.)) (S.std sample)

let test_single_point () =
  check_close "variance of singleton" 0. (S.variance [| 42. |])

let test_min_max () =
  let lo, hi = S.min_max sample in
  check_close "min" 2. lo;
  check_close "max" 9. hi

let test_median_odd () = check_close "median" 3. (S.median [| 5.; 1.; 3. |])

let test_median_even () = check_close "median" 4.5 (S.median sample)

let test_percentile () =
  check_close "p0" 2. (S.percentile 0. sample);
  check_close "p100" 9. (S.percentile 100. sample);
  check_close "p50 = median" (S.median sample) (S.percentile 50. sample)

let test_percentile_range () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p out of [0, 100]") (fun () ->
      ignore (S.percentile 101. sample))

let test_histogram () =
  let h = S.histogram ~bins:7 sample in
  Alcotest.(check int) "bins" 7 (Array.length h.S.counts);
  Alcotest.(check int) "edges" 8 (Array.length h.S.edges);
  Alcotest.(check int) "total count" (Array.length sample)
    (Array.fold_left ( + ) 0 h.S.counts);
  check_close "first edge" 2. h.S.edges.(0);
  check_close "last edge" 9. h.S.edges.(7)

let test_histogram_degenerate () =
  let h = S.histogram ~bins:3 [| 5.; 5.; 5. |] in
  Alcotest.(check int) "all in some bin" 3 (Array.fold_left ( + ) 0 h.S.counts)

let test_geometric_mean () =
  check_close "gm of 1,10,100" 10. (S.geometric_mean [| 1.; 10.; 100. |])

let test_rms_log_ratio () =
  check_close "identical curves" 0. (S.rms_log_ratio [| 1.; 2. |] [| 1.; 2. |]);
  check_close "one decade apart" 1. (S.rms_log_ratio [| 10.; 100. |] [| 1.; 10. |])

let test_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (S.mean [||]))

let prop_mean_bounded =
  prop "mean within min..max"
    QCheck2.Gen.(array_size (int_range 1 30) (float_range (-100.) 100.))
    (fun xs ->
       let lo, hi = S.min_max xs in
       let m = S.mean xs in
       m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_percentile_monotone =
  prop "percentile monotone in p"
    QCheck2.Gen.(pair
                   (array_size (int_range 2 30) (float_range (-50.) 50.))
                   (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
       let lo = min p1 p2 and hi = max p1 p2 in
       S.percentile lo xs <= S.percentile hi xs +. 1e-9)

let prop_variance_nonneg =
  prop "variance non-negative"
    QCheck2.Gen.(array_size (int_range 1 30) (float_range (-100.) 100.))
    (fun xs -> S.variance xs >= 0.)

let () =
  Alcotest.run "stats"
    [
      ( "stats",
        [
          case "mean" test_mean;
          case "variance" test_variance;
          case "std" test_std;
          case "singleton variance" test_single_point;
          case "min_max" test_min_max;
          case "median odd" test_median_odd;
          case "median even" test_median_even;
          case "percentiles" test_percentile;
          case "percentile range check" test_percentile_range;
          case "histogram" test_histogram;
          case "histogram degenerate" test_histogram_degenerate;
          case "geometric mean" test_geometric_mean;
          case "rms log ratio" test_rms_log_ratio;
          case "empty rejected" test_empty_rejected;
          prop_mean_bounded;
          prop_percentile_monotone;
          prop_variance_nonneg;
        ] );
    ]
