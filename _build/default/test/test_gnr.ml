module G = Gnrflash_materials.Gnr
module C = Gnrflash_physics.Constants
open Gnrflash_testing.Testing

let test_make_validation () =
  Alcotest.check_raises "n too small" (Invalid_argument "Gnr.make: n < 2") (fun () ->
      ignore (G.make G.Armchair 1))

let test_width_armchair () =
  (* N-AGNR width = (N-1) sqrt3/2 a_cc: 12-AGNR -> 11*0.123 = 1.353 nm *)
  let r = G.make G.Armchair 12 in
  check_close ~tol:1e-3 "12-AGNR width" 1.3529e-9 (G.width r)

let test_width_zigzag () =
  let r = G.make G.Zigzag 6 in
  check_close ~tol:1e-3 "6-ZGNR width" (((1.5 *. 6.) -. 1.) *. 0.142e-9) (G.width r)

let test_family_rule () =
  Alcotest.(check int) "9 -> 0" 0 (G.family (G.make G.Armchair 9));
  Alcotest.(check int) "10 -> 1" 1 (G.family (G.make G.Armchair 10));
  Alcotest.(check int) "11 -> 2" 2 (G.family (G.make G.Armchair 11));
  Alcotest.(check int) "zigzag -> -1" (-1) (G.family (G.make G.Zigzag 8))

let test_three_family_gaps () =
  (* quasi-metallic family 3p+2 has (near-)zero TB gap; other families gap > 0 *)
  let gap n = G.bandgap_ev (G.make G.Armchair n) in
  check_true "N=11 (3p+2) quasi-metallic" (gap 11 < 0.2);
  check_true "N=12 (3p) semiconducting" (gap 12 > 0.3);
  check_true "N=13 (3p+1) semiconducting" (gap 13 > 0.3);
  (* the quasi-metallic family sits far below both semiconducting ones *)
  check_true "family separation" (gap 11 < gap 12 /. 2. && gap 11 < gap 13 /. 2.)

let test_gap_decreases_with_width () =
  let gap n = G.bandgap_ev (G.make G.Armchair n) in
  check_true "wider ribbon, smaller gap" (gap 24 < gap 12);
  check_true "even wider" (gap 48 < gap 24)

let test_zigzag_metallic () =
  check_close "zigzag gap 0" 0. (G.bandgap_ev (G.make G.Zigzag 10));
  check_false "not semiconducting" (G.is_semiconducting (G.make G.Zigzag 10))

let test_subband_energy () =
  let r = G.make G.Armchair 12 in
  (* subband edge at k=0 equals t|1+2cos(theta_p)| *)
  let p = 8 in
  let theta = Float.pi *. 8. /. 13. in
  let expected = C.t_hopping *. abs_float (1. +. (2. *. cos theta)) in
  check_close ~tol:1e-9 "edge at k=0" expected (G.subband_energy r ~p ~k:0.);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Gnr.subband_energy: p out of range") (fun () ->
      ignore (G.subband_energy r ~p:0 ~k:0.))

let test_subband_increases_from_edge () =
  let r = G.make G.Armchair 12 in
  (* moving k away from 0 cannot go below the k=0 edge for the gap subband *)
  let e0 = G.subband_energy r ~p:8 ~k:0. in
  let e1 = G.subband_energy r ~p:8 ~k:1e8 in
  check_true "dispersion rises" (e1 >= e0 -. 1e-25)

let test_empirical_gap () =
  check_close "0.8/W rule" 0.8 (G.empirical_gap_ev ~width_nm:1.0);
  check_close "2 nm ribbon" 0.4 (G.empirical_gap_ev ~width_nm:2.0);
  Alcotest.check_raises "bad width"
    (Invalid_argument "Gnr.empirical_gap_ev: width <= 0") (fun () ->
      ignore (G.empirical_gap_ev ~width_nm:0.))

let test_tb_vs_empirical_same_scale () =
  (* both models should agree within a factor ~3 for a ~1.4 nm semiconducting ribbon *)
  let r = G.make G.Armchair 13 in
  let tb = G.bandgap_ev r in
  let emp = G.empirical_gap_ev ~width_nm:(G.width r *. 1e9) in
  check_in "same order of magnitude" ~lo:(emp /. 3.) ~hi:(emp *. 3.) tb

let test_conducting_channels () =
  let r = G.make G.Armchair 12 in
  let low = G.conducting_channels r ~ef_ev:0.01 in
  let high = G.conducting_channels r ~ef_ev:3.5 in
  check_true "few channels at low EF" (low <= 1);
  check_true "more channels at high EF" (high > low);
  (* zigzag always has the edge band *)
  check_true "zigzag edge channel"
    (G.conducting_channels (G.make G.Zigzag 8) ~ef_ev:0.01 >= 1)

let prop_gap_nonnegative =
  prop "TB gap non-negative" QCheck2.Gen.(int_range 3 60) (fun n ->
      G.bandgap_ev (G.make G.Armchair n) >= 0.)

let prop_family_32_quasi_metallic =
  prop "3p+2 armchair gap below other families" QCheck2.Gen.(int_range 2 15)
    (fun p ->
       let n = (3 * p) + 2 in
       let g32 = G.bandgap_ev (G.make G.Armchair n) in
       let g3 = G.bandgap_ev (G.make G.Armchair (n + 1)) in
       g32 < g3)

let () =
  Alcotest.run "gnr"
    [
      ( "gnr",
        [
          case "constructor validation" test_make_validation;
          case "armchair width" test_width_armchair;
          case "zigzag width" test_width_zigzag;
          case "family rule" test_family_rule;
          case "three-family gaps" test_three_family_gaps;
          case "gap vs width" test_gap_decreases_with_width;
          case "zigzag metallic" test_zigzag_metallic;
          case "subband edge" test_subband_energy;
          case "dispersion rises from edge" test_subband_increases_from_edge;
          case "empirical 0.8/W" test_empirical_gap;
          case "TB vs empirical scale" test_tb_vs_empirical_same_scale;
          case "conducting channels" test_conducting_channels;
          prop_gap_nonnegative;
          prop_family_32_quasi_metallic;
        ] );
    ]
