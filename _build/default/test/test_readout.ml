module R = Gnrflash_device.Readout
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let t = F.paper_default
let config = R.default

let test_threshold_voltage () =
  check_close "neutral VT" config.R.vt0 (R.threshold_voltage config t ~qfg:0.);
  let q = F.qfg_for_threshold_shift t ~dvt:2. in
  check_close ~tol:1e-9 "shifted VT" (config.R.vt0 +. 2.) (R.threshold_voltage config t ~qfg:q)

let test_is_programmed () =
  check_false "neutral reads erased" (R.is_programmed config t ~qfg:0.);
  let q = F.qfg_for_threshold_shift t ~dvt:5. in
  check_true "heavily charged reads programmed" (R.is_programmed config t ~qfg:q)

let test_read_current_on () =
  let i_on = R.read_current config t ~qfg:0. in
  check_true "on current flows" (i_on > 0.);
  (* Landauer with a handful of channels at 50 mV: microamp scale *)
  check_in "physical magnitude" ~lo:1e-9 ~hi:1e-3 i_on

let test_read_current_off () =
  let q = F.qfg_for_threshold_shift t ~dvt:5. in
  check_close "cutoff" 0. (R.read_current config t ~qfg:q)

let test_read_window () =
  let q = F.qfg_for_threshold_shift t ~dvt:5. in
  let w = R.read_window config t ~qfg_programmed:q in
  check_true "large on/off window" (w > 1e3)

let test_partial_shift_reduces_current () =
  (* the Landauer channel count is quantized, so a partial shift reduces the
     current in steps: still conducting, never increased *)
  let q1 = F.qfg_for_threshold_shift t ~dvt:0.5 in
  let i0 = R.read_current config t ~qfg:0. in
  let i1 = R.read_current config t ~qfg:q1 in
  check_true "still conducting" (i1 > 0.);
  check_true "not increased" (i1 <= i0)

let prop_current_nonincreasing_in_shift =
  prop "read current non-increasing in dVT" QCheck2.Gen.(float_range 0. 4.)
    (fun dvt ->
       let q1 = F.qfg_for_threshold_shift t ~dvt in
       let q2 = F.qfg_for_threshold_shift t ~dvt:(dvt +. 0.3) in
       R.read_current config t ~qfg:q2 <= R.read_current config t ~qfg:q1 +. 1e-15)

let () =
  Alcotest.run "readout"
    [
      ( "readout",
        [
          case "threshold voltage" test_threshold_voltage;
          case "programmed classification" test_is_programmed;
          case "on current" test_read_current_on;
          case "off current" test_read_current_off;
          case "read window" test_read_window;
          case "partial shift" test_partial_shift_reduces_current;
          prop_current_nonincreasing_in_shift;
        ] );
    ]
