module C = Gnrflash_physics.Constants
open Gnrflash_testing.Testing

let test_codata_values () =
  check_close "q" 1.602176634e-19 C.q;
  check_close "h" 6.62607015e-34 C.h;
  check_close "m0" 9.1093837015e-31 C.m0;
  check_close "kB" 1.380649e-23 C.k_b;
  check_close ~tol:1e-9 "eps0" 8.8541878128e-12 C.eps0;
  check_close "c" 2.99792458e8 C.c

let test_hbar () = check_close ~tol:1e-12 "hbar" (C.h /. (2. *. Float.pi)) C.hbar

let test_hbar_value () = check_close ~tol:1e-9 "hbar numeric" 1.054571817e-34 C.hbar

let test_ev_equals_q () = check_close "1 eV in J" C.q C.ev

let test_graphene_lattice () =
  check_close "a_cc" 0.142e-9 C.a_cc;
  check_close ~tol:1e-12 "lattice constant" (sqrt 3. *. 0.142e-9) C.a_graphene;
  check_close ~tol:1e-3 "a ~ 0.246 nm" 0.246e-9 C.a_graphene

let test_hopping_energy () =
  check_close ~tol:1e-12 "t = 2.7 eV" (2.7 *. C.ev) C.t_hopping

let test_thermal_voltage () =
  (* kT/q at 300 K ~ 25.85 mV *)
  check_close ~tol:1e-3 "vt at 300K" 0.02585 (C.thermal_voltage 300.);
  check_close ~tol:1e-12 "scales linearly" (2. *. C.thermal_voltage 300.)
    (C.thermal_voltage 600.)

let () =
  Alcotest.run "constants"
    [
      ( "constants",
        [
          case "CODATA 2018 values" test_codata_values;
          case "hbar definition" test_hbar;
          case "hbar numeric" test_hbar_value;
          case "eV = q joules" test_ev_equals_q;
          case "graphene lattice" test_graphene_lattice;
          case "hopping energy" test_hopping_energy;
          case "thermal voltage" test_thermal_voltage;
        ] );
    ]
