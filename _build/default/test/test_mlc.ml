module M = Gnrflash_memory.Mlc
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let t = F.paper_default

let test_levels () =
  Alcotest.(check int) "mlc 4 levels" 4 (M.levels M.default_mlc);
  Alcotest.(check int) "tlc 8 levels" 8 (M.levels M.default_tlc)

let test_targets () =
  check_close "level 0 erased" 0. (M.target_dvt M.default_mlc ~level:0);
  check_close "level 1" 1.5 (M.target_dvt M.default_mlc ~level:1);
  check_close "level 2" 3.0 (M.target_dvt M.default_mlc ~level:2);
  check_close "level 3" 4.5 (M.target_dvt M.default_mlc ~level:3);
  Alcotest.check_raises "range" (Invalid_argument "Mlc.target_dvt: level out of range")
    (fun () -> ignore (M.target_dvt M.default_mlc ~level:4))

let test_gray_code () =
  Alcotest.(check (list int)) "first eight"
    [ 0; 1; 3; 2; 6; 7; 5; 4 ]
    (List.init 8 M.gray_encode);
  for n = 0 to 63 do
    Alcotest.(check int) "roundtrip" n (M.gray_decode (M.gray_encode n))
  done

let test_gray_adjacent_one_bit () =
  for n = 0 to 30 do
    let diff = M.gray_encode n lxor M.gray_encode (n + 1) in
    (* exactly one bit set *)
    check_true "one bit flips between adjacent levels" (diff land (diff - 1) = 0 && diff <> 0)
  done

let test_level_bits_roundtrip () =
  let c = M.default_mlc in
  for level = 0 to 3 do
    let bits = M.level_to_bits c level in
    Alcotest.(check int) "width" 2 (Array.length bits);
    Alcotest.(check int) "roundtrip" level (M.bits_to_level c bits)
  done

let test_level_bits_convention () =
  (* erased level stores all-ones ("11") after Gray coding? level 0 -> gray 0
     -> bits 00; production MLC maps erased to 11 — we document the direct
     Gray convention and just pin it here *)
  Alcotest.(check (array int)) "level 0" [| 0; 0 |] (M.level_to_bits M.default_mlc 0);
  Alcotest.(check (array int)) "level 1" [| 0; 1 |] (M.level_to_bits M.default_mlc 1);
  Alcotest.(check (array int)) "level 2" [| 1; 1 |] (M.level_to_bits M.default_mlc 2);
  Alcotest.(check (array int)) "level 3" [| 1; 0 |] (M.level_to_bits M.default_mlc 3)

let test_program_and_read_all_levels () =
  for level = 0 to 3 do
    let qfg, pulses = check_ok "program" (M.program_level t ~qfg0:0. ~level) in
    let got = M.read_level t ~qfg in
    Alcotest.(check int) (Printf.sprintf "level %d read back" level) level got;
    if level = 0 then Alcotest.(check int) "erased is free" 0 pulses
    else check_true "programming used pulses" (pulses > 0)
  done

let test_placement_accuracy () =
  for level = 1 to 3 do
    let qfg, _ = check_ok "program" (M.program_level t ~qfg0:0. ~level) in
    let dvt = F.threshold_shift t ~qfg in
    let target = M.target_dvt M.default_mlc ~level in
    (* ISPP places within one step above the verify level *)
    check_in
      (Printf.sprintf "level %d placement" level)
      ~lo:target ~hi:(target +. 0.75) dvt
  done

let test_read_margin () =
  let c = M.default_mlc in
  check_close "interior margin" 0.75 (M.read_margin c ~level:1);
  check_close "edge margin" 0.75 (M.read_margin c ~level:0);
  (* TLC packs tighter *)
  check_true "tlc margins tighter"
    (M.read_margin M.default_tlc ~level:1 < M.read_margin c ~level:1)

let test_level_out_of_range () =
  check_error "level 9" (M.program_level t ~qfg0:0. ~level:9)

let prop_read_level_of_target_charge =
  prop "reading the exact target charge returns the level" ~count:20
    QCheck2.Gen.(int_range 0 3)
    (fun level ->
       let dvt = M.target_dvt M.default_mlc ~level in
       let qfg = F.qfg_for_threshold_shift t ~dvt in
       M.read_level t ~qfg = level)

let () =
  Alcotest.run "mlc"
    [
      ( "mlc",
        [
          case "level counts" test_levels;
          case "level targets" test_targets;
          case "gray code" test_gray_code;
          case "gray adjacency" test_gray_adjacent_one_bit;
          case "bits roundtrip" test_level_bits_roundtrip;
          case "bit convention" test_level_bits_convention;
          case "program and read all levels" test_program_and_read_all_levels;
          case "placement accuracy" test_placement_accuracy;
          case "read margins" test_read_margin;
          case "level range" test_level_out_of_range;
          prop_read_level_of_target_charge;
        ] );
    ]
