module I = Gnrflash_numerics.Interp
open Gnrflash_testing.Testing

let xs = [| 0.; 1.; 2.; 3. |]
let ys = [| 0.; 1.; 4.; 9. |] (* x^2 at the knots *)

let test_linear_at_knots () =
  let t = I.linear xs ys in
  Array.iteri (fun i x -> check_close "knot" ys.(i) (I.eval t x)) xs

let test_linear_midpoint () =
  let t = I.linear xs ys in
  check_close "between 1 and 4" 2.5 (I.eval t 1.5)

let test_linear_extrapolation () =
  let t = I.linear [| 0.; 1. |] [| 0.; 2. |] in
  check_close "extrapolate right" 4. (I.eval t 2.);
  check_close "extrapolate left" (-2.) (I.eval t (-1.))

let test_spline_at_knots () =
  let t = I.cubic_spline xs ys in
  Array.iteri (fun i x -> check_close ~tol:1e-9 "knot" ys.(i) (I.eval t x)) xs

let test_spline_smooth_quadratic () =
  (* dense quadratic data: spline should reproduce x^2 well inside *)
  let xs = Array.init 21 (fun i -> float_of_int i /. 10.) in
  let ys = Array.map (fun x -> x *. x) xs in
  let t = I.cubic_spline xs ys in
  check_close ~tol:1e-4 "x^2 at 0.55" (0.55 ** 2.) (I.eval t 0.55);
  check_close ~tol:1e-4 "x^2 at 1.23" (1.23 ** 2.) (I.eval t 1.23)

let test_spline_linear_data () =
  (* a spline through collinear points is that line *)
  let xs = [| 0.; 1.; 2.; 5. |] in
  let ys = Array.map (fun x -> (3. *. x) +. 1.) xs in
  let t = I.cubic_spline xs ys in
  check_close ~tol:1e-9 "line at 3.7" ((3. *. 3.7) +. 1.) (I.eval t 3.7)

let test_pchip_monotone () =
  (* monotone data with a sharp corner: pchip must not overshoot *)
  let xs = [| 0.; 1.; 2.; 3.; 4. |] in
  let ys = [| 0.; 0.; 0.; 1.; 1. |] in
  let t = I.pchip xs ys in
  let samples = Array.init 101 (fun i -> float_of_int i /. 25.) in
  Array.iter
    (fun x ->
       let v = I.eval t x in
       check_in "no overshoot" ~lo:(-1e-12) ~hi:(1. +. 1e-12) v)
    samples;
  (* and monotone non-decreasing *)
  let prev = ref (I.eval t 0.) in
  Array.iter
    (fun x ->
       let v = I.eval t x in
       check_true "monotone" (v >= !prev -. 1e-12);
       prev := v)
    samples

let test_pchip_at_knots () =
  let t = I.pchip xs ys in
  Array.iteri (fun i x -> check_close "knot" ys.(i) (I.eval t x)) xs

let test_eval_array () =
  let t = I.linear xs ys in
  let out = I.eval_array t [| 0.5; 1.5 |] in
  check_close "0.5" 0.5 out.(0);
  check_close "1.5" 2.5 out.(1)

let test_knots_roundtrip () =
  let t = I.linear xs ys in
  let kx, ky = I.knots t in
  Alcotest.(check (array (float 0.))) "xs" xs kx;
  Alcotest.(check (array (float 0.))) "ys" ys ky

let test_validation () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Interp: length mismatch")
    (fun () -> ignore (I.linear [| 0.; 1. |] [| 0. |]));
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Interp: xs not strictly increasing") (fun () ->
      ignore (I.linear [| 0.; 0. |] [| 1.; 2. |]))

let prop_linear_between_bounds =
  prop "linear interpolant stays within segment bounds"
    QCheck2.Gen.(float_range 0. 3.)
    (fun x ->
       let t = I.linear xs ys in
       let v = I.eval t x in
       v >= -1e-9 && v <= 9. +. 1e-9)

let prop_spline_interpolates =
  prop "spline hits every knot" QCheck2.Gen.(int_range 0 3) (fun i ->
      let t = I.cubic_spline xs ys in
      abs_float (I.eval t xs.(i) -. ys.(i)) < 1e-9)

let () =
  Alcotest.run "interp"
    [
      ( "interp",
        [
          case "linear at knots" test_linear_at_knots;
          case "linear midpoint" test_linear_midpoint;
          case "linear extrapolation" test_linear_extrapolation;
          case "spline at knots" test_spline_at_knots;
          case "spline approximates x^2" test_spline_smooth_quadratic;
          case "spline exact on lines" test_spline_linear_data;
          case "pchip no overshoot" test_pchip_monotone;
          case "pchip at knots" test_pchip_at_knots;
          case "eval_array" test_eval_array;
          case "knots roundtrip" test_knots_roundtrip;
          case "input validation" test_validation;
          prop_linear_between_bounds;
          prop_spline_interpolates;
        ] );
    ]
