module Cell = Gnrflash_memory.Cell
module F = Gnrflash_device.Fgt
module Rel = Gnrflash_device.Reliability
open Gnrflash_testing.Testing

let fresh () = Cell.make F.paper_default

let test_fresh_cell () =
  let c = fresh () in
  check_close "no charge" 0. c.Cell.qfg;
  check_close "no shift" 0. (Cell.dvt c);
  check_true "reads erased" (Cell.read c = Cell.Erased);
  Alcotest.(check int) "bit 1" 1 (Cell.to_bit (Cell.read c))

let test_program_read () =
  let c = check_ok "program" (Cell.program (fresh ())) in
  check_true "stores electrons" (c.Cell.qfg < 0.);
  check_true "reads programmed" (Cell.read c = Cell.Programmed);
  Alcotest.(check int) "bit 0" 0 (Cell.to_bit (Cell.read c));
  check_true "state classification" (Cell.state c = Cell.Programmed)

let test_erase_restores () =
  let c = check_ok "program" (Cell.program (fresh ())) in
  let c = check_ok "erase" (Cell.erase c) in
  check_true "reads erased again" (Cell.read c = Cell.Erased)

let test_wear_accumulates () =
  let c = check_ok "program" (Cell.program (fresh ())) in
  let c = check_ok "erase" (Cell.erase c) in
  Alcotest.(check int) "two pulses recorded" 2 c.Cell.wear.Rel.cycles;
  check_true "fluence positive" (c.Cell.wear.Rel.fluence > 0.)

let test_effective_vt_includes_drift () =
  let c = check_ok "program" (Cell.program (fresh ())) in
  let vt_stored = Gnrflash_device.Readout.threshold_voltage Gnrflash_device.Readout.default
      c.Cell.device ~qfg:c.Cell.qfg in
  check_true "wear adds drift" (Cell.effective_vt c >= vt_stored)

let test_broken_cell_rejects_program () =
  let c = fresh () in
  let broken =
    { c with Cell.wear = { Rel.fresh with Rel.broken = true } }
  in
  check_error "broken oxide" (Cell.program broken)

let test_custom_threshold () =
  let c = check_ok "program" (Cell.program (fresh ())) in
  (* very high decision level flips classification *)
  check_true "high threshold reads erased" (Cell.state ~dvt_threshold:100. c = Cell.Erased)

let prop_program_erase_roundtrip =
  prop "program/erase returns to erased" ~count:3 QCheck2.Gen.(return ()) (fun () ->
      match Cell.program (fresh ()) with
      | Error _ -> false
      | Ok c ->
        (match Cell.erase c with
         | Error _ -> false
         | Ok c -> Cell.read c = Cell.Erased))

let () =
  Alcotest.run "cell"
    [
      ( "cell",
        [
          case "fresh cell" test_fresh_cell;
          case "program and read" test_program_read;
          case "erase restores" test_erase_restores;
          case "wear accumulates" test_wear_accumulates;
          case "effective VT drift" test_effective_vt_includes_drift;
          case "broken oxide rejected" test_broken_cell_rejects_program;
          case "custom threshold" test_custom_threshold;
          prop_program_erase_roundtrip;
        ] );
    ]
