module Tm = Gnrflash_quantum.Transfer_matrix
module B = Gnrflash_quantum.Barrier
module W = Gnrflash_quantum.Wkb
module C = Gnrflash_physics.Constants
open Gnrflash_testing.Testing

let ev = C.ev

(* Exact rectangular-barrier transmission for equal masses everywhere. *)
let exact_rectangular ~v ~d ~m ~e =
  if e >= v then 1.
  else begin
    let k = sqrt (2. *. m *. e) /. C.hbar in
    let kappa = sqrt (2. *. m *. (v -. e)) /. C.hbar in
    let s = sinh (kappa *. d) in
    1. /. (1. +. (((k *. k) +. (kappa *. kappa)) ** 2. /. (4. *. k *. k *. kappa *. kappa) *. s *. s))
  end

let test_rectangular_vs_exact () =
  let v = 1. *. ev and d = 1e-9 in
  (* near-flat profile with electron mass inside = m0 so the analytic formula applies *)
  let b = B.make ~m_eff:C.m0 [ (0., v); (d, v *. (1. -. 1e-12)) ] in
  List.iter
    (fun e_ev ->
       let e = e_ev *. ev in
       let got = Tm.transmission ~steps:200 b ~energy:e in
       let want = exact_rectangular ~v ~d ~m:C.m0 ~e in
       check_close ~tol:1e-3 (Printf.sprintf "E = %g eV" e_ev) want got)
    [ 0.2; 0.5; 0.8 ]

let test_zero_energy_blocked () =
  let b = B.triangular ~phi_b:(3.2 *. ev) ~field:1e9 ~m_eff:(0.42 *. C.m0) in
  check_close "no propagating wave" 0. (Tm.transmission b ~energy:0.)

let test_bounds () =
  let b = B.triangular ~phi_b:(3.2 *. ev) ~field:1.5e9 ~m_eff:(0.42 *. C.m0) in
  let t = Tm.transmission b ~energy:(0.3 *. ev) in
  check_in "in [0,1]" ~lo:0. ~hi:1. t

let test_matches_wkb_order_of_magnitude () =
  (* deep tunneling: TMM and WKB agree on the exponent within ~20% *)
  let phi = 3.2 *. ev and m = 0.42 *. C.m0 in
  let field = 1.2e9 in
  let thickness = 5e-9 in
  let b = B.trapezoidal ~phi_b:phi ~v_ox:(field *. thickness) ~thickness ~m_eff:m in
  let e = 0.05 *. ev in
  let t_tm = Tm.transmission ~steps:500 b ~energy:e in
  let t_wkb = W.transmission b ~energy:e in
  check_true "both tiny" (t_tm < 1e-6 && t_wkb < 1e-6);
  check_in "log agreement" ~lo:0.8 ~hi:1.25 (log t_tm /. log t_wkb)

let test_transmission_increases_with_energy () =
  let b = B.triangular ~phi_b:(3.2 *. ev) ~field:1.2e9 ~m_eff:(0.42 *. C.m0) in
  let t1 = Tm.transmission b ~energy:(0.1 *. ev) in
  let t2 = Tm.transmission b ~energy:(0.8 *. ev) in
  check_true "monotone" (t2 > t1)

let test_step_convergence () =
  let b = B.triangular ~phi_b:(3.2 *. ev) ~field:1.2e9 ~m_eff:(0.42 *. C.m0) in
  let e = 0.2 *. ev in
  let t200 = Tm.transmission ~steps:200 b ~energy:e in
  let t800 = Tm.transmission ~steps:800 b ~energy:e in
  check_close ~tol:0.02 "staircase converged" t800 t200

let test_spectrum () =
  let b = B.triangular ~phi_b:(3.2 *. ev) ~field:1.2e9 ~m_eff:(0.42 *. C.m0) in
  let es = [| 0.1 *. ev; 0.5 *. ev; 1.0 *. ev |] in
  let ts = Tm.transmission_spectrum b ~energies:es in
  Alcotest.(check int) "length" 3 (Array.length ts);
  check_true "monotone spectrum" (ts.(0) < ts.(1) && ts.(1) < ts.(2))

let prop_bounded =
  prop "T in [0,1] over random fields/energies" ~count:40
    QCheck2.Gen.(pair (float_range 6e8 2e9) (float_range 0.01 3.))
    (fun (field, e_ev) ->
       let b = B.triangular ~phi_b:(3.2 *. ev) ~field ~m_eff:(0.42 *. C.m0) in
       let t = Tm.transmission ~steps:150 b ~energy:(e_ev *. ev) in
       t >= 0. && t <= 1.)

let () =
  Alcotest.run "transfer_matrix"
    [
      ( "transfer_matrix",
        [
          case "rectangular vs analytic" test_rectangular_vs_exact;
          case "zero energy blocked" test_zero_energy_blocked;
          case "bounds" test_bounds;
          case "agrees with WKB exponent" test_matches_wkb_order_of_magnitude;
          case "monotone in energy" test_transmission_increases_with_energy;
          case "staircase convergence" test_step_convergence;
          case "spectrum helper" test_spectrum;
          prop_bounded;
        ] );
    ]
