module Ret = Gnrflash_device.Retention
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let t = F.paper_default
let qfg0 = F.qfg_for_threshold_shift t ~dvt:2.

let test_simulate_shape () =
  let s = Ret.simulate t ~qfg0 ~t_start:1e-3 ~t_end:1e6 in
  check_true "many samples" (Array.length s > 50);
  check_true "times increasing"
    (Array.for_all (fun x -> x) (Array.init (Array.length s - 1)
       (fun i -> s.(i + 1).Ret.time > s.(i).Ret.time)))

let test_charge_decays_monotonically () =
  let s = Ret.simulate t ~qfg0 ~t_start:1e-3 ~t_end:1e8 in
  for i = 0 to Array.length s - 2 do
    (* qfg negative, decaying toward zero: non-decreasing *)
    check_true "monotone decay" (s.(i + 1).Ret.qfg >= s.(i).Ret.qfg -. 1e-30)
  done;
  check_true "never crosses zero" (Array.for_all (fun x -> x.Ret.qfg <= 0.) s)

let test_dvt_tracks_charge () =
  let s = Ret.simulate t ~qfg0 ~t_start:1e-3 ~t_end:1e4 in
  Array.iter
    (fun x -> check_close ~tol:1e-9 "dvt consistent" (F.threshold_shift t ~qfg:x.Ret.qfg) x.Ret.dvt)
    s

let test_ten_year_retention_of_paper_cell () =
  (* 5 nm oxide with a ~1.2 V self-field: direct tunneling leakage is small;
     the paper-default cell must hold charge for 10 years *)
  check_true "10-year spec" (Ret.ten_year_retention t ~qfg0)

let test_loss_increases_with_time () =
  let l1 = Ret.charge_loss_percent t ~qfg0 ~after:1e4 in
  let l2 = Ret.charge_loss_percent t ~qfg0 ~after:1e8 in
  check_true "monotone loss" (l2 >= l1);
  check_in "bounded" ~lo:0. ~hi:100. l2

let test_thin_oxide_leaks_faster () =
  let thin = F.with_xto t 2e-9 in
  let q_thin = F.qfg_for_threshold_shift thin ~dvt:2. in
  let loss_thin = Ret.charge_loss_percent thin ~qfg0:q_thin ~after:1e6 in
  let loss_thick = Ret.charge_loss_percent t ~qfg0 ~after:1e6 in
  check_true "2 nm leaks more than 5 nm" (loss_thin > loss_thick)

let test_temperature_acceleration () =
  let s300 = Ret.simulate ~temp:300. t ~qfg0 ~t_start:1e-3 ~t_end:1e6 in
  let s400 = Ret.simulate ~temp:400. t ~qfg0 ~t_start:1e-3 ~t_end:1e6 in
  let last a = a.(Array.length a - 1).Ret.qfg in
  check_true "hotter leaks at least as much" (last s400 >= last s300 -. 1e-30)

let test_validation () =
  Alcotest.check_raises "positive charge"
    (Invalid_argument "Retention.simulate: qfg0 must be negative (programmed)")
    (fun () -> ignore (Ret.simulate t ~qfg0:1e-18 ~t_start:1e-3 ~t_end:1.));
  Alcotest.check_raises "bad range"
    (Invalid_argument "Retention.simulate: bad time range") (fun () ->
      ignore (Ret.simulate t ~qfg0 ~t_start:1. ~t_end:0.5))

let test_retention_time_criterion () =
  let time = Ret.retention_time t ~qfg0 ~criterion:0.8 in
  check_true "positive or infinite" (time > 0.)

let test_retention_time_validation () =
  Alcotest.check_raises "criterion"
    (Invalid_argument "Retention.retention_time: criterion out of (0, 1)") (fun () ->
      ignore (Ret.retention_time t ~qfg0 ~criterion:1.5))

let () =
  Alcotest.run "retention"
    [
      ( "retention",
        [
          case "trajectory shape" test_simulate_shape;
          case "monotone decay" test_charge_decays_monotonically;
          case "dvt consistency" test_dvt_tracks_charge;
          case "10-year spec (paper cell)" test_ten_year_retention_of_paper_cell;
          case "loss grows with time" test_loss_increases_with_time;
          case "thin oxide leaks faster" test_thin_oxide_leaks_faster;
          case "temperature acceleration" test_temperature_acceleration;
          case "input validation" test_validation;
          case "retention time" test_retention_time_criterion;
          case "criterion validation" test_retention_time_validation;
        ] );
    ]
