module Q = Gnrflash_device.Qcap
module F = Gnrflash_device.Fgt
module Mlgnr = Gnrflash_materials.Mlgnr
module Gnr = Gnrflash_materials.Gnr
open Gnrflash_testing.Testing

let t = F.paper_default
let stack = Mlgnr.make (Gnr.make Gnr.Armchair 12) ~layers:3

let test_fermi_shift_zero_charge () =
  check_close "no charge no shift" 0. (Q.fermi_shift ~stack ~area:t.F.area ~qfg:0.)

let test_fermi_shift_monotone () =
  let s q = Q.fermi_shift ~stack ~area:t.F.area ~qfg:q in
  let s1 = s (-1e-17) and s2 = s (-2e-17) in
  check_true "positive" (s1 > 0.);
  check_true "more charge more shift" (s2 > s1)

let test_fermi_shift_inverts_storable_charge () =
  let qfg = -1.5e-17 in
  let shift_ev = Q.fermi_shift ~stack ~area:t.F.area ~qfg /. Gnrflash_physics.Constants.ev in
  let back = Mlgnr.storable_charge stack ~ef_max_ev:shift_ev in
  check_close ~tol:1e-6 "roundtrip" (abs_float qfg /. t.F.area) back

let test_vfg_effective_direction () =
  let qfg = -2e-17 in
  let geom = F.vfg t ~vgs:15. ~qfg in
  let eff = Q.vfg_effective t ~stack ~vgs:15. ~qfg in
  check_true "band filling lowers the effective drive" (eff < geom);
  check_close "neutral unchanged" (F.vfg t ~vgs:15. ~qfg:0.)
    (Q.vfg_effective t ~stack ~vgs:15. ~qfg:0.)

let test_run_shrinks_window () =
  let r = check_ok "qcap run" (Q.run t ~vgs:15. ~duration:1e-2) in
  (* the finite DOS opposes charging: less stored charge than the metal gate *)
  check_true "less charge stored" (abs_float r.Q.qfg_final <= abs_float r.Q.qfg_final_metal);
  check_in "window shrink fraction" ~lo:0. ~hi:0.5 r.Q.window_shrink;
  check_true "fermi shift developed" (r.Q.ef_final_ev > 0.);
  check_true "still programs substantially" (r.Q.dvt_final > 3.)

let test_run_validation () =
  check_error "duration" (Q.run t ~vgs:15. ~duration:0.)

let test_thicker_stack_less_feedback () =
  let thin = Mlgnr.make (Gnr.make Gnr.Armchair 12) ~layers:1 in
  let thick = Mlgnr.make (Gnr.make Gnr.Armchair 12) ~layers:8 in
  let r1 = check_ok "thin" (Q.run ~stack:thin t ~vgs:15. ~duration:1e-2) in
  let r8 = check_ok "thick" (Q.run ~stack:thick t ~vgs:15. ~duration:1e-2) in
  check_true "more layers store more" (r8.Q.window_shrink <= r1.Q.window_shrink +. 1e-9)

let () =
  Alcotest.run "qcap"
    [
      ( "qcap",
        [
          case "zero charge" test_fermi_shift_zero_charge;
          case "shift monotone" test_fermi_shift_monotone;
          case "shift inverts storable charge" test_fermi_shift_inverts_storable_charge;
          case "effective VFG direction" test_vfg_effective_direction;
          case "window shrink" test_run_shrinks_window;
          case "validation" test_run_validation;
          case "layer dependence" test_thicker_stack_less_feedback;
        ] );
    ]
