module En = Gnrflash_memory.Energy
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let test_fn_program_energy () =
  let e = En.fn_program_energy F.paper_default ~vgs:15. ~pulse_width:10e-6 in
  check_true "cell energy positive" (e.En.cell_energy > 0.);
  check_true "supply >= cell" (e.En.supply_energy > 0.);
  check_true "pump sized" (e.En.pump_stages >= 8);
  (* cell energy = Q*V ~ 2.4e-17 * 15 ~ 3.5e-16 J: attojoule-scale *)
  check_in "attojoule scale" ~lo:1e-17 ~hi:1e-14 e.En.cell_energy

let test_che_program_energy () =
  let e =
    En.che_program_energy ~drain_current:0.5e-3 ~vds:5. ~vgs:10. ~pulse_width:1e-6 ()
  in
  (* drain path: 0.5mA * 5V * 1us = 2.5e-9 J *)
  check_close ~tol:1e-3 "drain energy" 2.5e-9 e.En.cell_energy;
  check_true "supply at least drain" (e.En.supply_energy >= e.En.cell_energy)

let test_fn_beats_che_per_page () =
  let rows = En.page_program_comparison ~cells:4096 in
  let get k = List.assoc k rows in
  check_true "fn cheaper" (get "fn-page-energy-J" < get "che-page-energy-J");
  (* the paper's Section II argument: orders of magnitude advantage *)
  check_true "by orders of magnitude" (get "che-to-fn-ratio" > 1e3)

let test_energy_scales_with_cells () =
  let one = En.page_program_comparison ~cells:1 in
  let many = En.page_program_comparison ~cells:1000 in
  let get rows k = List.assoc k rows in
  check_close ~tol:1e-9 "linear scaling"
    (1000. *. get one "fn-page-energy-J")
    (get many "fn-page-energy-J")

let test_cells_validation () =
  Alcotest.check_raises "cells" (Invalid_argument "Energy.page_program_comparison: cells < 1")
    (fun () -> ignore (En.page_program_comparison ~cells:0))

let () =
  Alcotest.run "energy"
    [
      ( "energy",
        [
          case "FN pulse energy" test_fn_program_energy;
          case "CHE pulse energy" test_che_program_energy;
          case "FN beats CHE per page" test_fn_beats_che_per_page;
          case "linear in cells" test_energy_scales_with_cells;
          case "validation" test_cells_validation;
        ] );
    ]
