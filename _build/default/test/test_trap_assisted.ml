module Tat = Gnrflash_quantum.Trap_assisted
module Fn = Gnrflash_quantum.Fn
open Gnrflash_testing.Testing

let p = Fn.coefficients ~phi_b_ev:3.2 ~m_ox_rel:0.42

let test_step_transmissions_bounds () =
  let t_in, t_out = Tat.step_transmissions p Tat.mid_gap_trap ~v_ox:2. ~thickness:5e-9 in
  check_in "capture bounded" ~lo:0. ~hi:1. t_in;
  check_in "emission bounded" ~lo:0. ~hi:1. t_out;
  check_true "both nonzero" (t_in > 0. && t_out > 0.)

let test_steps_exceed_full_barrier () =
  (* each half-barrier transmits far more than the full barrier *)
  let t_in, t_out = Tat.step_transmissions p Tat.mid_gap_trap ~v_ox:2. ~thickness:5e-9 in
  let full =
    Gnrflash_quantum.Wkb.transmission
      (Gnrflash_quantum.Barrier.trapezoidal
         ~phi_b:(3.2 *. Gnrflash_physics.Constants.ev) ~v_ox:2. ~thickness:5e-9
         ~m_eff:(0.42 *. Gnrflash_physics.Constants.m0))
      ~energy:0.
  in
  check_true "capture step easier" (t_in > full);
  check_true "emission step easier" (t_out > full)

let test_current_scales_with_traps () =
  let j n = Tat.current_density p ~trap_density:n ~v_ox:2. ~thickness:5e-9 in
  check_close ~tol:1e-12 "linear in density" (10. *. j 1e14) (j 1e15);
  check_close "no traps no current" 0. (j 0.)

let test_zero_bias () =
  check_close "no bias" 0.
    (Tat.current_density p ~trap_density:1e15 ~v_ox:0. ~thickness:5e-9)

let test_current_monotone_in_bias () =
  let j v = Tat.current_density p ~trap_density:1e15 ~v_ox:v ~thickness:5e-9 in
  check_true "monotone" (j 1. < j 2. && j 2. < j 3.)

let test_silc_amplification_grows_with_damage () =
  let r n = Tat.silc_ratio p ~trap_density:n ~v_ox:1.5 ~thickness:5e-9 in
  check_true "more traps, more leakage" (r 1e16 > r 1e14);
  check_close ~tol:1e-9 "ratio linear" (100. *. r 1e14) (r 1e16)

let test_validation () =
  Alcotest.check_raises "density" (Invalid_argument "Trap_assisted: negative trap density")
    (fun () -> ignore (Tat.current_density p ~trap_density:(-1.) ~v_ox:1. ~thickness:5e-9));
  Alcotest.check_raises "thickness" (Invalid_argument "Trap_assisted: thickness <= 0")
    (fun () -> ignore (Tat.step_transmissions p Tat.mid_gap_trap ~v_ox:1. ~thickness:0.));
  Alcotest.check_raises "fraction" (Invalid_argument "Trap_assisted: depth_fraction out of (0, 1)")
    (fun () ->
       ignore
         (Tat.step_transmissions p
            { Tat.depth_fraction = 1.5; energy_ev = 2.6 }
            ~v_ox:1. ~thickness:5e-9))

let prop_bounded_and_nonnegative =
  prop "TAT current non-negative and finite" ~count:40
    QCheck2.Gen.(pair (float_range 0.1 4.) (float_range 2e-9 9e-9))
    (fun (v, th) ->
       let j = Tat.current_density p ~trap_density:1e15 ~v_ox:v ~thickness:th in
       j >= 0. && Float.is_finite j)

let () =
  Alcotest.run "trap_assisted"
    [
      ( "trap_assisted",
        [
          case "step transmissions" test_step_transmissions_bounds;
          case "steps beat full barrier" test_steps_exceed_full_barrier;
          case "linear in trap density" test_current_scales_with_traps;
          case "zero bias" test_zero_bias;
          case "monotone in bias" test_current_monotone_in_bias;
          case "SILC amplification" test_silc_amplification_grows_with_damage;
          case "validation" test_validation;
          prop_bounded_and_nonnegative;
        ] );
    ]
