module Dt = Gnrflash_quantum.Direct_tunneling
module Fn = Gnrflash_quantum.Fn
open Gnrflash_testing.Testing

let p = Fn.coefficients ~phi_b_ev:3.2 ~m_ox_rel:0.42

let test_zero_bias () =
  check_close "no bias no current" 0. (Dt.current_density p ~v_ox:0. ~thickness:3e-9)

let test_reduces_to_fn_above_barrier () =
  (* v_ox >= phi: exactly the FN expression at the same field *)
  let v_ox = 4.0 and thickness = 5e-9 in
  let j_dt = Dt.current_density p ~v_ox ~thickness in
  let j_fn = Fn.current_density p ~field:(v_ox /. thickness) in
  check_close ~tol:1e-12 "FN limit" j_fn j_dt

let test_exceeds_fn_below_barrier () =
  (* in the direct regime the trapezoid is thinner than the FN triangle
     extrapolation assumes, so J_direct > J_FN at the same field *)
  let v_ox = 1.5 and thickness = 3e-9 in
  let j_dt = Dt.current_density p ~v_ox ~thickness in
  let j_fn = Fn.current_density p ~field:(v_ox /. thickness) in
  check_true "direct exceeds FN extrapolation" (j_dt > j_fn)

let test_ratio_to_fn () =
  let r = Dt.ratio_to_fn p ~v_ox:1.5 ~thickness:3e-9 in
  check_true "ratio > 1 in direct regime" (r > 1.);
  check_close "ratio 1 in FN regime" 1. (Dt.ratio_to_fn p ~v_ox:4.0 ~thickness:5e-9)

let test_continuity_at_barrier_voltage () =
  (* the piecewise expression must be continuous at v_ox = phi_b *)
  let thickness = 5e-9 in
  let below = Dt.current_density p ~v_ox:(3.2 -. 1e-9) ~thickness in
  let above = Dt.current_density p ~v_ox:(3.2 +. 1e-9) ~thickness in
  check_close ~tol:1e-6 "continuous at phi" above below

let test_thickness_validation () =
  Alcotest.check_raises "thickness" (Invalid_argument "Direct_tunneling: thickness <= 0")
    (fun () -> ignore (Dt.current_density p ~v_ox:1. ~thickness:0.))

let test_thin_oxide_dominates () =
  (* same voltage across thinner oxide -> much more current *)
  let j3 = Dt.current_density p ~v_ox:1. ~thickness:3e-9 in
  let j5 = Dt.current_density p ~v_ox:1. ~thickness:5e-9 in
  check_true "thinner wins" (j3 > j5 *. 100.)

let prop_monotone_in_vox =
  prop "J increasing in v_ox"
    QCheck2.Gen.(pair (float_range 0.1 3.0) (float_range 0.05 0.5))
    (fun (v, dv) ->
       let j1 = Dt.current_density p ~v_ox:v ~thickness:4e-9 in
       let j2 = Dt.current_density p ~v_ox:(v +. dv) ~thickness:4e-9 in
       j2 > j1)

let prop_nonnegative =
  prop "J non-negative"
    QCheck2.Gen.(pair (float_range (-1.) 4.) (float_range 1e-9 8e-9))
    (fun (v, t) -> Dt.current_density p ~v_ox:v ~thickness:t >= 0.)

let () =
  Alcotest.run "direct_tunneling"
    [
      ( "direct_tunneling",
        [
          case "zero bias" test_zero_bias;
          case "FN limit" test_reduces_to_fn_above_barrier;
          case "exceeds FN below barrier" test_exceeds_fn_below_barrier;
          case "ratio to FN" test_ratio_to_fn;
          case "continuity at phi" test_continuity_at_barrier_voltage;
          case "validation" test_thickness_validation;
          case "thickness dependence" test_thin_oxide_dominates;
          prop_monotone_in_vox;
          prop_nonnegative;
        ] );
    ]
