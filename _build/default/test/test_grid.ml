module G = Gnrflash_numerics.Grid
open Gnrflash_testing.Testing

let test_linspace_endpoints () =
  let xs = G.linspace 2. 5. 7 in
  Alcotest.(check int) "length" 7 (Array.length xs);
  check_close "first" 2. xs.(0);
  check_close "last" 5. xs.(6)

let test_linspace_spacing () =
  let xs = G.linspace 0. 1. 5 in
  for i = 0 to 3 do
    check_close "step" 0.25 (xs.(i + 1) -. xs.(i))
  done

let test_linspace_descending () =
  let xs = G.linspace 5. 2. 4 in
  check_close "first" 5. xs.(0);
  check_close "last" 2. xs.(3);
  check_true "descending" (xs.(1) < xs.(0))

let test_linspace_invalid () =
  Alcotest.check_raises "n=1" (Invalid_argument "Grid.linspace: n < 2") (fun () ->
      ignore (G.linspace 0. 1. 1))

let test_logspace () =
  let xs = G.logspace 0. 3. 4 in
  check_close "10^0" 1. xs.(0);
  check_close "10^1" 10. xs.(1);
  check_close "10^2" 100. xs.(2);
  check_close "10^3" 1000. xs.(3)

let test_geomspace () =
  let xs = G.geomspace 2. 32. 5 in
  check_close "first" 2. xs.(0);
  check_close "last" 32. xs.(4);
  for i = 0 to 3 do
    check_close "ratio" 2. (xs.(i + 1) /. xs.(i))
  done

let test_geomspace_negative () =
  Alcotest.check_raises "negative endpoint"
    (Invalid_argument "Grid.geomspace: non-positive endpoint") (fun () ->
      ignore (G.geomspace (-1.) 10. 3))

let test_arange () =
  let xs = G.arange ~step:0.5 0. 2. in
  Alcotest.(check int) "length" 4 (Array.length xs);
  check_close "last" 1.5 xs.(3)

let test_arange_excludes_stop () =
  let xs = G.arange 0. 3. in
  Alcotest.(check int) "length" 3 (Array.length xs);
  check_close "last" 2. xs.(2)

let test_midpoints () =
  let m = G.midpoints [| 0.; 2.; 6. |] in
  Alcotest.(check int) "length" 2 (Array.length m);
  check_close "m0" 1. m.(0);
  check_close "m1" 4. m.(1)

let test_map2 () =
  let z = G.map2 ( +. ) [| 1.; 2. |] [| 10.; 20. |] in
  check_close "sum" 11. z.(0);
  check_close "sum" 22. z.(1)

let prop_linspace_monotone =
  prop "linspace monotone for a < b"
    QCheck2.Gen.(pair (float_range (-100.) 100.) (int_range 2 50))
    (fun (a, n) ->
       let xs = G.linspace a (a +. 1.) n in
       let ok = ref true in
       for i = 0 to n - 2 do
         if xs.(i + 1) <= xs.(i) then ok := false
       done;
       !ok)

let prop_geomspace_positive =
  prop "geomspace stays positive"
    QCheck2.Gen.(pair (float_range 0.01 10.) (int_range 2 40))
    (fun (a, n) ->
       let xs = G.geomspace a (a *. 100.) n in
       Array.for_all (fun x -> x > 0.) xs)

let () =
  Alcotest.run "grid"
    [
      ( "grid",
        [
          case "linspace endpoints" test_linspace_endpoints;
          case "linspace spacing" test_linspace_spacing;
          case "linspace descending" test_linspace_descending;
          case "linspace invalid" test_linspace_invalid;
          case "logspace decades" test_logspace;
          case "geomspace ratios" test_geomspace;
          case "geomspace rejects negatives" test_geomspace_negative;
          case "arange with step" test_arange;
          case "arange excludes stop" test_arange_excludes_stop;
          case "midpoints" test_midpoints;
          case "map2" test_map2;
          prop_linspace_monotone;
          prop_geomspace_positive;
        ] );
    ]
