module T = Gnrflash_materials.Cnt
open Gnrflash_testing.Testing

let test_make_validation () =
  Alcotest.check_raises "m > n" (Invalid_argument "Cnt.make: require n >= m >= 0, n > 0")
    (fun () -> ignore (T.make 3 5))

let test_diameter_10_10 () =
  (* (10,10) armchair: d = 0.246nm*sqrt(300)/pi = 1.356 nm *)
  check_close ~tol:2e-3 "armchair (10,10)" 1.356e-9 (T.diameter (T.make 10 10))

let test_diameter_17_0 () =
  (* (17,0) zigzag: d = 0.246*17/pi = 1.331 nm *)
  check_close ~tol:2e-3 "zigzag (17,0)" 1.331e-9 (T.diameter (T.make 17 0))

let test_chiral_angle () =
  check_close "zigzag angle 0" 0. (T.chiral_angle (T.make 10 0));
  check_close ~tol:1e-9 "armchair angle pi/6" (Float.pi /. 6.)
    (T.chiral_angle (T.make 8 8))

let test_metallicity_rule () =
  check_true "(10,10) metallic" (T.is_metallic (T.make 10 10));
  check_true "(9,0) metallic" (T.is_metallic (T.make 9 0));
  check_false "(10,0) semiconducting" (T.is_metallic (T.make 10 0));
  check_false "(8,3) semiconducting" (T.is_metallic (T.make 8 3));
  check_true "(7,4) metallic" (T.is_metallic (T.make 7 4))

let test_bandgap_semiconducting () =
  (* Eg ~ 0.77 eV nm / d; (10,0): d = 0.783 nm -> ~0.98 eV *)
  let t = T.make 10 0 in
  let d_nm = T.diameter t *. 1e9 in
  check_close ~tol:1e-6 "gap formula" (2. *. 2.7 *. 0.142 /. d_nm) (T.bandgap_ev t);
  check_in "about 1 eV" ~lo:0.8 ~hi:1.2 (T.bandgap_ev t)

let test_bandgap_metallic_zero () =
  check_close "metallic no gap" 0. (T.bandgap_ev (T.make 12 12))

let test_classify () =
  Alcotest.(check string) "metallic" "metallic" (T.classify (T.make 5 5));
  Alcotest.(check string) "semiconducting" "semiconducting" (T.classify (T.make 10 0))

let test_work_function () =
  check_in "around 4.8-4.9" ~lo:4.75 ~hi:4.95 (T.work_function (T.make 10 0))

let prop_gap_inverse_diameter =
  prop "gap decreases with diameter among semiconducting tubes"
    QCheck2.Gen.(int_range 7 25)
    (fun n ->
       let n2 = n + 3 in
       (* same (mod 3) class: if (n,0) is semiconducting so is (n+3,0) *)
       let t1 = T.make n 0 and t2 = T.make n2 0 in
       if T.is_metallic t1 then true
       else T.bandgap_ev t2 < T.bandgap_ev t1)

let prop_metallic_fraction =
  prop "exactly the (n-m) mod 3 = 0 class is metallic"
    QCheck2.Gen.(pair (int_range 1 20) (int_range 0 20))
    (fun (n, m) ->
       let m = min m n in
       let t = T.make n m in
       T.is_metallic t = ((n - m) mod 3 = 0))

let () =
  Alcotest.run "cnt"
    [
      ( "cnt",
        [
          case "constructor validation" test_make_validation;
          case "diameter (10,10)" test_diameter_10_10;
          case "diameter (17,0)" test_diameter_17_0;
          case "chiral angles" test_chiral_angle;
          case "metallicity rule" test_metallicity_rule;
          case "semiconducting gap" test_bandgap_semiconducting;
          case "metallic gap zero" test_bandgap_metallic_zero;
          case "classification" test_classify;
          case "work function" test_work_function;
          prop_gap_inverse_diameter;
          prop_metallic_fraction;
        ] );
    ]
