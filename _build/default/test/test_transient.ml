module Tr = Gnrflash_device.Transient
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let t = F.paper_default

let run_program () =
  check_ok "transient" (Tr.run t ~vgs:15. ~duration:10.)

let test_initial_currents () =
  let ji, jo = Tr.initial_currents t ~vgs:15. ~qfg:0. in
  check_close ~tol:1e-3 "Jin at t=0" 2.8568e6 ji;
  check_true "Jout negligible" (jo < 1e-5)

let test_jin_monotone_decreasing () =
  let r = run_program () in
  let samples = r.Tr.samples in
  for i = 0 to Array.length samples - 2 do
    check_true "Jin decreasing" (samples.(i + 1).Tr.j_in <= samples.(i).Tr.j_in +. 1e-9)
  done

let test_jout_monotone_increasing () =
  let r = run_program () in
  let samples = r.Tr.samples in
  for i = 0 to Array.length samples - 2 do
    check_true "Jout increasing" (samples.(i + 1).Tr.j_out >= samples.(i).Tr.j_out -. 1e-9)
  done

let test_vfg_relaxes_to_divider_point () =
  (* the fixed point Jin = Jout for identical interfaces: VFG/XTO = (VGS-VFG)/XCO
     -> VFG* = VGS XTO/(XTO+XCO) = 5 V *)
  let r = run_program () in
  let final = r.Tr.samples.(Array.length r.Tr.samples - 1) in
  check_close ~tol:5e-3 "VFG -> 5 V" 5. final.Tr.vfg

let test_tsat_reached () =
  let r = run_program () in
  match r.Tr.tsat with
  | None -> Alcotest.fail "saturation not reached"
  | Some ts ->
    check_in "tsat order of magnitude" ~lo:1e-6 ~hi:1e-1 ts

let test_charge_monotone () =
  let r = run_program () in
  let samples = r.Tr.samples in
  for i = 0 to Array.length samples - 2 do
    check_true "charge monotone negative" (samples.(i + 1).Tr.qfg <= samples.(i).Tr.qfg +. 1e-25)
  done;
  check_true "final negative" (r.Tr.qfg_final < 0.)

let test_dvt_positive_after_program () =
  let r = run_program () in
  check_in "threshold window" ~lo:5. ~hi:8. r.Tr.dvt_final

let test_erase_symmetry () =
  let rp = run_program () in
  let re = check_ok "erase" (Tr.run t ~vgs:(-15.) ~duration:10.) in
  (* identical interfaces: erase is the mirror image *)
  check_close ~tol:1e-3 "mirror charge" (-.rp.Tr.qfg_final) re.Tr.qfg_final;
  (match rp.Tr.tsat, re.Tr.tsat with
   | Some tp, Some te -> check_close ~tol:0.05 "mirror tsat" tp te
   | _ -> Alcotest.fail "both polarities must saturate")

let test_saturation_charge_matches_ode () =
  let q_root = check_ok "root" (Tr.saturation_charge t ~vgs:15.) in
  let r = run_program () in
  check_close ~tol:0.02 "ODE endpoint = fixed point" q_root r.Tr.qfg_final

let test_zero_bias_balanced () =
  let r = check_ok "zero bias" (Tr.run t ~vgs:0. ~duration:1.) in
  check_close "no charge motion" 0. r.Tr.qfg_final;
  check_true "trivially saturated" (r.Tr.tsat = Some 0.)

let test_duration_validation () =
  check_error "bad duration" (Tr.run t ~vgs:15. ~duration:0.)

let test_time_to_threshold () =
  let time =
    check_ok "ttts" (Tr.time_to_threshold_shift t ~vgs:15. ~dvt:2. ~max_time:1.)
  in
  match time with
  | None -> Alcotest.fail "2 V shift must be reachable"
  | Some ts ->
    check_in "nanosecond programming" ~lo:1e-10 ~hi:1e-6 ts;
    (* confirm by integrating exactly that long *)
    let r = check_ok "confirm" (Tr.run t ~vgs:15. ~duration:ts) in
    check_close ~tol:0.05 "dVT at that time" 2. r.Tr.dvt_final

let test_time_to_threshold_unreachable () =
  (* the bias can shift VT by at most ~6.7 V; 20 V is unreachable *)
  let time =
    check_ok "ttts" (Tr.time_to_threshold_shift t ~vgs:15. ~dvt:20. ~max_time:0.1)
  in
  check_true "unreachable" (time = None)

let test_higher_vgs_faster () =
  let time v =
    match check_ok "ttts" (Tr.time_to_threshold_shift t ~vgs:v ~dvt:1. ~max_time:1.) with
    | Some ts -> ts
    | None -> infinity
  in
  check_true "15 V faster than 12 V" (time 15. < time 12.)

let prop_final_dvt_bounded_by_fixed_point =
  prop "transient never overshoots the fixed point" ~count:8
    QCheck2.Gen.(float_range 12. 17.)
    (fun vgs ->
       match Tr.run t ~vgs ~duration:10., Tr.saturation_charge t ~vgs with
       | Ok r, Ok q_star -> r.Tr.qfg_final >= q_star *. 1.01 -. 1e-20 || r.Tr.qfg_final >= q_star
       | _ -> false)

let () =
  Alcotest.run "transient"
    [
      ( "transient",
        [
          case "initial currents" test_initial_currents;
          case "Jin monotone (Fig 5)" test_jin_monotone_decreasing;
          case "Jout monotone (Fig 5)" test_jout_monotone_increasing;
          case "VFG relaxes to divider point" test_vfg_relaxes_to_divider_point;
          case "tsat reached" test_tsat_reached;
          case "charge monotone" test_charge_monotone;
          case "final threshold window" test_dvt_positive_after_program;
          case "erase mirrors program" test_erase_symmetry;
          case "fixed point vs ODE" test_saturation_charge_matches_ode;
          case "zero bias balanced" test_zero_bias_balanced;
          case "duration validation" test_duration_validation;
          case "time to 2 V shift" test_time_to_threshold;
          case "unreachable target" test_time_to_threshold_unreachable;
          case "higher bias is faster" test_higher_vgs_faster;
          prop_final_dvt_bounded_by_fixed_point;
        ] );
    ]
