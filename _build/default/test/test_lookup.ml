module L = Gnrflash_quantum.Lookup
module Fn = Gnrflash_quantum.Fn
open Gnrflash_testing.Testing

let p = Fn.coefficients ~phi_b_ev:3.2 ~m_ox_rel:0.42

let table = L.of_fn p ~field_min:5e8 ~field_max:2e9

let test_exact_at_nodes_vicinity () =
  (* pchip through log-log data: error between nodes stays small *)
  let err = L.max_relative_error table (fun e -> Fn.current_density p ~field:e) in
  check_true "sub-0.1% interpolation error" (err < 1e-3)

let test_interpolation_mid_range () =
  let e = 1.234e9 in
  check_close ~tol:1e-4 "mid-range value" (Fn.current_density p ~field:e)
    (L.current_density table ~field:e)

let test_clamping () =
  let above = L.current_density table ~field:1e10 in
  let at_max = L.current_density table ~field:2e9 in
  check_close ~tol:1e-9 "clamped above" at_max above;
  check_close "deep below cuts off" 0. (L.current_density table ~field:1e7)

let test_range () =
  let lo, hi = L.range table in
  check_close "lo" 5e8 lo;
  check_close "hi" 2e9 hi

let test_build_validation () =
  Alcotest.check_raises "range" (Invalid_argument "Lookup.build: bad field range")
    (fun () -> ignore (L.build ~field_min:2e9 ~field_max:1e9 (fun _ -> 1.)));
  Alcotest.check_raises "nonpositive model"
    (Invalid_argument "Lookup.build: model non-positive on the range") (fun () ->
      ignore (L.build ~field_min:1e8 ~field_max:1e9 (fun _ -> 0.)))

let test_denser_table_more_accurate () =
  let coarse = L.of_fn ~points:8 p ~field_min:5e8 ~field_max:2e9 in
  let fine = L.of_fn ~points:128 p ~field_min:5e8 ~field_max:2e9 in
  let reference e = Fn.current_density p ~field:e in
  check_true "refinement helps"
    (L.max_relative_error fine reference < L.max_relative_error coarse reference)

let prop_monotone_like_model =
  prop "table preserves monotonicity" ~count:50
    QCheck2.Gen.(float_range 5e8 1.8e9)
    (fun e ->
       L.current_density table ~field:(e *. 1.05) >= L.current_density table ~field:e)

let () =
  Alcotest.run "lookup"
    [
      ( "lookup",
        [
          case "interpolation error bound" test_exact_at_nodes_vicinity;
          case "mid-range value" test_interpolation_mid_range;
          case "clamping" test_clamping;
          case "range" test_range;
          case "build validation" test_build_validation;
          case "refinement" test_denser_table_more_accurate;
          prop_monotone_like_model;
        ] );
    ]
