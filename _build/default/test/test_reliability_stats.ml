module Rs = Gnrflash_device.Reliability_stats
open Gnrflash_testing.Testing

let w = { Rs.beta = 2.0; eta = 1e3 }

let test_sample_deterministic () =
  let a = Rs.sample ~seed:1 w ~n:10 in
  let b = Rs.sample ~seed:1 w ~n:10 in
  check_true "reproducible" (a = b);
  check_true "positive" (Array.for_all (fun q -> q > 0.) a)

let test_sample_validation () =
  Alcotest.check_raises "bad weibull" (Invalid_argument "Reliability_stats.sample: bad weibull")
    (fun () -> ignore (Rs.sample { Rs.beta = 0.; eta = 1. } ~n:3))

let test_quantile_cdf_inverse () =
  let q = Rs.quantile w ~f:0.1 in
  check_close ~tol:1e-9 "roundtrip" 0.1 (Rs.failure_fraction w ~q)

let test_quantile_632 () =
  (* by definition eta is the 63.2% point *)
  check_close ~tol:1e-6 "eta quantile" w.Rs.eta (Rs.quantile w ~f:(1. -. exp (-1.)))

let test_cdf_shape () =
  check_close "zero at origin" 0. (Rs.failure_fraction w ~q:0.);
  check_true "monotone"
    (Rs.failure_fraction w ~q:500. < Rs.failure_fraction w ~q:1500.);
  check_in "tends to 1" ~lo:0.99 ~hi:1. (Rs.failure_fraction w ~q:(w.Rs.eta *. 4.))

let test_fit_recovers_parameters () =
  let qs = Rs.sample ~seed:11 w ~n:500 in
  let fitted, r2 = check_ok "fit" (Rs.fit qs) in
  check_close ~tol:0.1 "beta recovered" w.Rs.beta fitted.Rs.beta;
  check_close ~tol:0.05 "eta recovered" w.Rs.eta fitted.Rs.eta;
  check_in "weibull plot linear" ~lo:0.95 ~hi:1. r2

let test_fit_needs_points () =
  check_error "too few" (Rs.fit [| 1.; 2. |])

let test_population_endurance () =
  let cycles =
    Rs.population_endurance ~seed:3 w ~charge_per_cycle_per_area:0.1 ~n:100_000
      ~ppm_target:100.
  in
  check_true "positive" (cycles > 0.);
  (* 100 ppm quantile of Weibull(2, 1e3) is eta*sqrt(-ln(1-1e-4)) ~ 10 C/m^2
     -> about 100 cycles at 0.1 C/m^2 per cycle *)
  check_in "magnitude" ~lo:20. ~hi:500. cycles;
  (* a tighter ppm target can only lower the qualified cycle count *)
  let stricter =
    Rs.population_endurance ~seed:3 w ~charge_per_cycle_per_area:0.1 ~n:100_000
      ~ppm_target:10.
  in
  check_true "stricter target, fewer cycles" (stricter <= cycles)

let prop_quantile_monotone =
  prop "quantile monotone in f" ~count:50
    QCheck2.Gen.(pair (float_range 0.01 0.49) (float_range 0.5 0.99))
    (fun (f1, f2) -> Rs.quantile w ~f:f1 < Rs.quantile w ~f:f2)

let () =
  Alcotest.run "reliability_stats"
    [
      ( "reliability_stats",
        [
          case "deterministic sampling" test_sample_deterministic;
          case "sample validation" test_sample_validation;
          case "quantile/cdf inverse" test_quantile_cdf_inverse;
          case "eta is the 63.2% point" test_quantile_632;
          case "cdf shape" test_cdf_shape;
          case "fit recovers parameters" test_fit_recovers_parameters;
          case "fit needs points" test_fit_needs_points;
          case "population endurance" test_population_endurance;
          prop_quantile_monotone;
        ] );
    ]
