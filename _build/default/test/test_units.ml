module U = Gnrflash_physics.Units
open Gnrflash_testing.Testing

let test_length () =
  check_close "5 nm" 5e-9 (U.nm 5.);
  check_close "roundtrip" 7.3 (U.to_nm (U.nm 7.3));
  check_close "1 um" 1e-6 (U.um 1.);
  check_close "1 A" 1e-10 (U.angstrom 1.)

let test_energy () =
  check_close "3.2 eV" (3.2 *. 1.602176634e-19) (U.ev_to_joule 3.2);
  check_close "roundtrip" 3.2 (U.joule_to_ev (U.ev_to_joule 3.2))

let test_field () =
  check_close "10 MV/cm" 1e9 (U.mv_per_cm 10.);
  check_close "roundtrip" 12.5 (U.to_mv_per_cm (U.mv_per_cm 12.5))

let test_current_density () =
  check_close "1 A/cm2" 1e4 (U.a_per_cm2 1.);
  check_close "roundtrip" 0.37 (U.to_a_per_cm2 (U.a_per_cm2 0.37))

let test_capacitance_charge () =
  check_close "1 F/cm2" 1e4 (U.f_per_cm2 1.);
  check_close "F roundtrip" 2.5 (U.to_f_per_cm2 (U.f_per_cm2 2.5));
  check_close "1 C/cm2" 1e4 (U.c_per_cm2 1.);
  check_close "C roundtrip" 0.01 (U.to_c_per_cm2 (U.c_per_cm2 0.01))

let test_time () =
  check_close "1 ns" 1e-9 (U.ns 1.);
  check_close "1 us" 1e-6 (U.us 1.);
  check_close "1 ms" 1e-3 (U.ms 1.);
  check_close "1 year" (365.25 *. 86400.) (U.years 1.);
  check_close "10 years" (10. *. 365.25 *. 86400.) (U.years 10.)

let prop_field_roundtrip =
  prop "MV/cm roundtrip" QCheck2.Gen.(float_range 0.1 100.) (fun e ->
      abs_float (U.to_mv_per_cm (U.mv_per_cm e) -. e) < 1e-9 *. e)

let () =
  Alcotest.run "units"
    [
      ( "units",
        [
          case "length" test_length;
          case "energy" test_energy;
          case "field" test_field;
          case "current density" test_current_density;
          case "capacitance and charge" test_capacitance_charge;
          case "time" test_time;
          prop_field_roundtrip;
        ] );
    ]
