module Rel = Gnrflash_device.Reliability
open Gnrflash_testing.Testing

let m = Rel.default

let test_qbd_field_acceleration () =
  (* a decade of Q_BD per 2.5 MV/cm by construction *)
  let q10 = Rel.qbd m ~field:1e9 in
  let q125 = Rel.qbd m ~field:1.25e9 in
  check_close ~tol:1e-9 "decade per 2.5 MV/cm" 10. (q10 /. q125);
  check_close ~tol:1e-3 "calibrated at 10 MV/cm" 1e6 q10;
  (* the paper's 18 MV/cm programming field: ~1e4-cycle-class oxide *)
  check_in "paper field Q_BD" ~lo:1e2 ~hi:1e4 (Rel.qbd m ~field:1.8e9)

let test_qbd_validation () =
  Alcotest.check_raises "field" (Invalid_argument "Reliability.qbd: field <= 0")
    (fun () -> ignore (Rel.qbd m ~field:0.))

let test_fresh () =
  check_close "no fluence" 0. Rel.fresh.Rel.fluence;
  check_false "not broken" Rel.fresh.Rel.broken;
  Alcotest.(check int) "no cycles" 0 Rel.fresh.Rel.cycles

let test_after_pulse_accumulates () =
  let area = 1e-15 in
  let w1 = Rel.after_pulse m Rel.fresh ~injected:1e-17 ~area ~field:1e9 in
  let w2 = Rel.after_pulse m w1 ~injected:1e-17 ~area ~field:1e9 in
  check_close ~tol:1e-9 "fluence adds" (2. *. 1e-17 /. area) w2.Rel.fluence;
  Alcotest.(check int) "cycles count" 2 w2.Rel.cycles;
  check_true "traps grow" (w2.Rel.traps > w1.Rel.traps)

let test_breakdown_trips () =
  let area = 1e-15 in
  let field = 1e9 in
  let qbd = Rel.qbd m ~field in
  (* one pulse carrying more than QBD *)
  let w = Rel.after_pulse m Rel.fresh ~injected:(qbd *. area *. 1.01) ~area ~field in
  check_true "broken" w.Rel.broken;
  (* breakdown is latched *)
  let w' = Rel.after_pulse m w ~injected:0. ~area ~field in
  check_true "stays broken" w'.Rel.broken

let test_vt_drift () =
  let area = 1e-15 in
  let w = Rel.after_pulse m Rel.fresh ~injected:1e-16 ~area ~field:1e9 in
  let drift = Rel.vt_drift m w in
  check_true "positive drift" (drift > 0.);
  (* doubling fluence doubles drift *)
  let w2 = Rel.after_pulse m w ~injected:1e-16 ~area ~field:1e9 in
  check_close ~tol:1e-9 "linear drift" (2. *. drift) (Rel.vt_drift m w2)

let test_endurance_cycles () =
  let n = Rel.endurance_cycles m ~charge_per_cycle:5e-17 ~area:1e-15 ~field:1e9 in
  check_true "many cycles" (n > 1e2);
  (* higher field shortens life *)
  let n_hi = Rel.endurance_cycles m ~charge_per_cycle:5e-17 ~area:1e-15 ~field:1.4e9 in
  check_true "field acceleration" (n_hi < n)

let test_endurance_validation () =
  Alcotest.check_raises "charge" (Invalid_argument "Reliability.endurance_cycles: charge <= 0")
    (fun () -> ignore (Rel.endurance_cycles m ~charge_per_cycle:0. ~area:1e-15 ~field:1e9))

let prop_qbd_monotone_decreasing =
  prop "Q_BD decreasing in field" QCheck2.Gen.(float_range 4e8 1.6e9) (fun e ->
      Rel.qbd m ~field:(e *. 1.1) < Rel.qbd m ~field:e)

let prop_fluence_never_decreases =
  prop "wear accumulates monotonically" QCheck2.Gen.(float_range 0. 1e-16)
    (fun injected ->
       let w = Rel.after_pulse m Rel.fresh ~injected ~area:1e-15 ~field:1e9 in
       w.Rel.fluence >= 0. && w.Rel.traps >= 0.)

let () =
  Alcotest.run "reliability"
    [
      ( "reliability",
        [
          case "Q_BD field acceleration" test_qbd_field_acceleration;
          case "Q_BD validation" test_qbd_validation;
          case "fresh wear" test_fresh;
          case "pulse accumulation" test_after_pulse_accumulates;
          case "breakdown trips and latches" test_breakdown_trips;
          case "VT drift" test_vt_drift;
          case "endurance cycles" test_endurance_cycles;
          case "endurance validation" test_endurance_validation;
          prop_qbd_monotone_decreasing;
          prop_fluence_never_decreases;
        ] );
    ]
