module R = Gnrflash.Report
open Gnrflash_testing.Testing

let test_fig4_check () =
  let c = R.check_fig4 () in
  check_true ("fig4: " ^ c.R.detail) c.R.passed

let test_fig5_checks () =
  List.iter (fun c -> check_true (c.R.name ^ ": " ^ c.R.detail) c.R.passed) (R.check_fig5 ())

let test_fig6_checks () =
  List.iter (fun c -> check_true (c.R.name ^ ": " ^ c.R.detail) c.R.passed) (R.check_fig6 ())

let test_fig7_checks () =
  List.iter (fun c -> check_true (c.R.name ^ ": " ^ c.R.detail) c.R.passed) (R.check_fig7 ())

let test_fig8_checks () =
  List.iter (fun c -> check_true (c.R.name ^ ": " ^ c.R.detail) c.R.passed) (R.check_fig8 ())

let test_fig9_checks () =
  List.iter (fun c -> check_true (c.R.name ^ ": " ^ c.R.detail) c.R.passed) (R.check_fig9 ())

let test_all_checks_pass () =
  let checks = R.all_checks () in
  check_true "non-trivial count" (List.length checks >= 20);
  List.iter (fun c -> check_true (c.R.name ^ ": " ^ c.R.detail) c.R.passed) checks

let test_render_format () =
  let out =
    R.render
      [
        { R.name = "alpha"; passed = true; detail = "fine" };
        { R.name = "beta"; passed = false; detail = "broken" };
      ]
  in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_true "pass marker" (contains "[PASS] alpha" out);
  check_true "fail marker" (contains "[FAIL] beta" out);
  check_true "summary" (contains "1/2" out)

let test_series_table () =
  let fig = Gnrflash.Figures.fig6_program_gcr () in
  let table = R.series_table fig ~max_rows:5 in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_true "title row" (contains "Fig 6" table);
  check_true "series label" (contains "GCR = 60%" table);
  (* down-sampled: far fewer rows than the full 60-point sweep x4 *)
  let lines = List.length (String.split_on_char '\n' table) in
  check_true "down-sampled" (lines < 40)

let () =
  Alcotest.run "report"
    [
      ( "report",
        [
          case "fig4 shape" test_fig4_check;
          case "fig5 shape" test_fig5_checks;
          case "fig6 shape" test_fig6_checks;
          case "fig7 shape" test_fig7_checks;
          case "fig8 shape" test_fig8_checks;
          case "fig9 shape" test_fig9_checks;
          case "all checks pass" test_all_checks_pass;
          case "render format" test_render_format;
          case "series table" test_series_table;
        ] );
    ]
