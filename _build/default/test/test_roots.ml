module R = Gnrflash_numerics.Roots
open Gnrflash_testing.Testing

let cubic x = (x *. x *. x) -. (2. *. x) -. 5.
(* real root near 2.0945514815423265 *)
let cubic_root = 2.0945514815423265

let test_bisect_cubic () =
  let x = check_ok "bisect" (R.bisect cubic 1. 3.) in
  check_close ~tol:1e-10 "cubic root" cubic_root x

let test_bisect_exact_endpoint () =
  let x = check_ok "bisect" (R.bisect (fun x -> x) 0. 5.) in
  check_close "root at endpoint" 0. x

let test_bisect_no_sign_change () =
  check_error "no bracket" (R.bisect (fun x -> (x *. x) +. 1.) (-1.) 1.)

let test_brent_cubic () =
  let x = check_ok "brent" (R.brent cubic 1. 3.) in
  check_close ~tol:1e-12 "cubic root" cubic_root x

let test_brent_cos () =
  let x = check_ok "brent" (R.brent cos 1. 2.) in
  check_close ~tol:1e-12 "pi/2" (Float.pi /. 2.) x

let test_brent_tiny_root () =
  (* magnitude ~1e-17: regression test for the absolute-floor bug that made
     the device-charge root finding return bracket endpoints *)
  let f x = x -. 3.2e-17 in
  let x = check_ok "brent tiny" (R.brent f 0. 1e-16) in
  check_close ~tol:1e-9 "tiny root" 3.2e-17 x

let test_newton () =
  let x =
    check_ok "newton"
      (R.newton ~f:(fun x -> (x *. x) -. 2.) ~df:(fun x -> 2. *. x) 1.)
  in
  check_close ~tol:1e-12 "sqrt2" (sqrt 2.) x

let test_newton_zero_derivative () =
  check_error "flat" (R.newton ~f:(fun x -> (x *. x) +. 1.) ~df:(fun _ -> 0.) 0.)

let test_secant () =
  let x = check_ok "secant" (R.secant (fun x -> exp x -. 3.) 0. 2.) in
  check_close ~tol:1e-10 "ln3" (log 3.) x

let test_bracket_root () =
  let lo, hi = check_ok "bracket" (R.bracket_root cubic 0. 0.5) in
  check_true "sign change" (cubic lo *. cubic hi <= 0.)

let test_bracket_root_fails () =
  check_error "no root anywhere"
    (R.bracket_root (fun x -> (x *. x) +. 1.) 0. 1.)

let prop_brent_finds_linear_roots =
  prop "brent solves a(x - r) = 0"
    QCheck2.Gen.(pair (float_range (-50.) 50.) (float_range 0.1 10.))
    (fun (r, a) ->
       match R.brent (fun x -> a *. (x -. r)) (r -. 7.) (r +. 13.) with
       | Ok x -> abs_float (x -. r) <= 1e-7 *. (1. +. abs_float r)
       | Error _ -> false)

let prop_newton_quadratic =
  prop "newton solves x^2 = c" QCheck2.Gen.(float_range 0.1 1000.) (fun c ->
      match R.newton ~f:(fun x -> (x *. x) -. c) ~df:(fun x -> 2. *. x) (c +. 1.) with
      | Ok x -> abs_float (x -. sqrt c) <= 1e-6 *. sqrt c
      | Error _ -> false)

let () =
  Alcotest.run "roots"
    [
      ( "roots",
        [
          case "bisect cubic" test_bisect_cubic;
          case "bisect endpoint root" test_bisect_exact_endpoint;
          case "bisect needs sign change" test_bisect_no_sign_change;
          case "brent cubic" test_brent_cubic;
          case "brent cos" test_brent_cos;
          case "brent tiny-magnitude root" test_brent_tiny_root;
          case "newton sqrt2" test_newton;
          case "newton zero derivative" test_newton_zero_derivative;
          case "secant ln3" test_secant;
          case "bracket_root expands" test_bracket_root;
          case "bracket_root fails cleanly" test_bracket_root_fails;
          prop_brent_finds_linear_roots;
          prop_newton_quadratic;
        ] );
    ]
