module Ec = Gnrflash_memory.Ecc_controller
module Ctl = Gnrflash_memory.Controller
module Am = Gnrflash_memory.Array_model
module Cell = Gnrflash_memory.Cell
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let data_bits = 4
let strings = Ec.required_strings ~data_bits
let payload = [| 1; 0; 0; 1 |]

let controller () = Ctl.make (Am.make F.paper_default ~pages:1 ~strings)

let test_required_strings () =
  (* 4 data bits need 3 hamming + 1 overall parity = 8 strings *)
  Alcotest.(check int) "codeword width" 8 strings

let test_roundtrip () =
  let c = check_ok "program" (Ec.program_page_ecc (controller ()) ~page:0 ~data:payload) in
  let _, r = check_ok "read" (Ec.read_page_ecc c ~page:0 ~data_bits) in
  check_false "clean" r.Ec.uncorrectable;
  Alcotest.(check int) "no corrections needed" 0 r.Ec.corrected;
  Alcotest.(check (array int)) "payload back" payload r.Ec.data

let test_wrong_geometry () =
  let small = Ctl.make (Am.make F.paper_default ~pages:1 ~strings:4) in
  check_error "string count" (Ec.program_page_ecc small ~page:0 ~data:payload)

let test_single_cell_upset_corrected () =
  let c = check_ok "program" (Ec.program_page_ecc (controller ()) ~page:0 ~data:payload) in
  (* flip one stored cell by force: erase a programmed cell (0 -> 1) *)
  let coded = Ec.encode_page ~data:payload in
  (* find a programmed (0) cell to flip *)
  let idx = ref (-1) in
  Array.iteri (fun i b -> if !idx < 0 && b = 0 then idx := i) coded;
  check_true "found a programmed cell" (!idx >= 0);
  let victim = Am.get c.Ctl.block ~page:0 ~string_:!idx in
  let flipped = { victim with Cell.qfg = 0. } in
  let c = { c with Ctl.block = Am.set c.Ctl.block ~page:0 ~string_:!idx flipped } in
  let _, r = check_ok "read" (Ec.read_page_ecc c ~page:0 ~data_bits) in
  check_false "survived the upset" r.Ec.uncorrectable;
  Alcotest.(check int) "one correction" 1 r.Ec.corrected;
  Alcotest.(check (array int)) "payload intact" payload r.Ec.data

let test_double_upset_detected () =
  let c = check_ok "program" (Ec.program_page_ecc (controller ()) ~page:0 ~data:payload) in
  let coded = Ec.encode_page ~data:payload in
  (* flip the first two programmed cells *)
  let flips = ref [] in
  Array.iteri (fun i b -> if List.length !flips < 2 && b = 0 then flips := i :: !flips) coded;
  let c =
    List.fold_left
      (fun c i ->
         let victim = Am.get c.Ctl.block ~page:0 ~string_:i in
         { c with Ctl.block = Am.set c.Ctl.block ~page:0 ~string_:i { victim with Cell.qfg = 0. } })
      c !flips
  in
  let _, r = check_ok "read" (Ec.read_page_ecc c ~page:0 ~data_bits) in
  check_true "double error flagged" r.Ec.uncorrectable

let () =
  Alcotest.run "ecc_controller"
    [
      ( "ecc_controller",
        [
          case "required strings" test_required_strings;
          case "roundtrip" test_roundtrip;
          case "wrong geometry" test_wrong_geometry;
          case "single upset corrected" test_single_cell_upset_corrected;
          case "double upset detected" test_double_upset_detected;
        ] );
    ]
