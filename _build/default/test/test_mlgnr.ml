module M = Gnrflash_materials.Mlgnr
module G = Gnrflash_materials.Gnr
open Gnrflash_testing.Testing

let ribbon = G.make G.Armchair 12

let test_make_validation () =
  Alcotest.check_raises "layers" (Invalid_argument "Mlgnr.make: layers < 1") (fun () ->
      ignore (M.make ribbon ~layers:0))

let test_thickness () =
  let s1 = M.make ribbon ~layers:1 in
  let s4 = M.make ribbon ~layers:4 in
  check_close ~tol:1e-9 "monolayer vdW thickness" 0.335e-9 (M.thickness s1);
  check_close ~tol:1e-9 "4 layers" (0.335e-9 +. (3. *. 0.335e-9)) (M.thickness s4)

let test_custom_interlayer () =
  let s = M.make ~interlayer:0.4e-9 ribbon ~layers:3 in
  check_close ~tol:1e-9 "custom spacing" (0.335e-9 +. 0.8e-9) (M.thickness s)

let test_gap_shrinks_with_layers () =
  let gap n = M.bandgap_ev (M.make ribbon ~layers:n) in
  check_close "monolayer equals GNR" (G.bandgap_ev ribbon) (gap 1);
  check_true "bilayer smaller" (gap 2 < gap 1);
  check_true "5 layers smaller still" (gap 5 < gap 2)

let test_quantum_capacitance_scaling () =
  let cq n = M.quantum_capacitance (M.make ribbon ~layers:n) ~ef_ev:0.2 ~temp:300. in
  check_true "more layers, more Cq" (cq 3 > cq 1);
  (* screened geometric series: bounded by 1/(1-screening_factor) monolayers *)
  let bound = cq 1 /. (1. -. M.screening_factor) in
  check_true "bounded by screening sum" (cq 30 < bound *. 1.0001)

let test_storable_charge () =
  let s = M.make ribbon ~layers:3 in
  let q1 = M.storable_charge s ~ef_max_ev:0.2 in
  let q2 = M.storable_charge s ~ef_max_ev:0.4 in
  check_true "positive" (q1 > 0.);
  (* quadratic in EF: 2x EF -> 4x charge *)
  check_close ~tol:1e-9 "quadratic scaling" (4. *. q1) q2;
  Alcotest.check_raises "negative ef"
    (Invalid_argument "Mlgnr.storable_charge: negative ef_max") (fun () ->
      ignore (M.storable_charge s ~ef_max_ev:(-0.1)))

let test_sheet_conductance () =
  let g1 = M.sheet_conductance (M.make ribbon ~layers:1) ~ef_ev:3.5 in
  let g3 = M.sheet_conductance (M.make ribbon ~layers:3) ~ef_ev:3.5 in
  check_close ~tol:1e-12 "conductance scales with layers" (3. *. g1) g3;
  (* each channel contributes G0 = 77.5 uS *)
  let g0 = 2. *. Gnrflash_physics.Constants.q ** 2. /. Gnrflash_physics.Constants.h in
  check_true "multiple of G0" (g1 >= g0 *. 0.99)

let prop_storable_charge_monotone_in_layers =
  prop "storable charge grows with layers" QCheck2.Gen.(int_range 1 10) (fun n ->
      let q_n = M.storable_charge (M.make ribbon ~layers:n) ~ef_max_ev:0.3 in
      let q_n1 = M.storable_charge (M.make ribbon ~layers:(n + 1)) ~ef_max_ev:0.3 in
      q_n1 > q_n)

let () =
  Alcotest.run "mlgnr"
    [
      ( "mlgnr",
        [
          case "constructor validation" test_make_validation;
          case "thickness" test_thickness;
          case "custom interlayer" test_custom_interlayer;
          case "gap shrinks with layers" test_gap_shrinks_with_layers;
          case "quantum capacitance scaling" test_quantum_capacitance_scaling;
          case "storable charge" test_storable_charge;
          case "sheet conductance" test_sheet_conductance;
          prop_storable_charge_monotone_in_layers;
        ] );
    ]
