module P = Gnrflash_numerics.Polynomial
open Gnrflash_testing.Testing

let test_eval () =
  (* 1 + 2x + 3x^2 at x = 2 -> 17 *)
  check_close "horner" 17. (P.eval [| 1.; 2.; 3. |] 2.)

let test_eval_empty () = check_close "zero poly" 0. (P.eval [||] 5.)

let test_derivative () =
  let d = P.derivative [| 1.; 2.; 3. |] in
  (* 2 + 6x *)
  check_close "d(1)" 8. (P.eval d 1.)

let test_derivative_constant () =
  Alcotest.(check int) "constant" 0 (Array.length (P.derivative [| 7. |]))

let test_integral () =
  let p = P.integral ~c0:1. [| 2.; 6. |] in
  (* 1 + 2x + 3x^2 *)
  check_close "integral at 2" 17. (P.eval p 2.)

let test_integral_derivative_inverse () =
  let p = [| 3.; -1.; 2.; 0.5 |] in
  let back = P.derivative (P.integral p) in
  Array.iteri (fun i c -> check_close "coeff" c back.(i)) p

let test_add () =
  let s = P.add [| 1.; 2. |] [| 10.; 0.; 5. |] in
  check_close "c0" 11. s.(0);
  check_close "c2" 5. s.(2)

let test_mul () =
  (* (1 + x)(1 - x) = 1 - x^2 *)
  let p = P.mul [| 1.; 1. |] [| 1.; -1. |] in
  check_close "c0" 1. p.(0);
  check_close "c1" 0. p.(1);
  check_close "c2" (-1.) p.(2)

let test_scale () = check_close "scaled" 6. (P.scale 3. [| 2. |]).(0)

let test_degree () =
  Alcotest.(check int) "deg" 2 (P.degree [| 1.; 0.; 5.; 0. |]);
  Alcotest.(check int) "zero poly" (-1) (P.degree [| 0.; 0. |])

let test_fit_quadratic () =
  let xs = [| -2.; -1.; 0.; 1.; 2. |] in
  let ys = Array.map (fun x -> 2. +. (3. *. x) -. (x *. x)) xs in
  let p = check_ok "fit" (P.fit ~deg:2 xs ys) in
  check_close ~tol:1e-8 "c0" 2. p.(0);
  check_close ~tol:1e-8 "c1" 3. p.(1);
  check_close ~tol:1e-8 "c2" (-1.) p.(2)

let test_fit_underdetermined () =
  check_error "not enough points" (P.fit ~deg:3 [| 0.; 1. |] [| 0.; 1. |])

let test_roots_quadratic () =
  match P.roots_quadratic 1. (-3.) 2. with
  | Some (r1, r2) ->
    check_close "r1" 1. r1;
    check_close "r2" 2. r2
  | None -> Alcotest.fail "expected real roots"

let test_roots_complex () =
  check_true "complex" (P.roots_quadratic 1. 0. 1. = None)

let test_roots_degenerate () =
  check_true "linear" (P.roots_quadratic 0. 1. 1. = None)

let prop_mul_eval_commutes =
  prop "eval (p*q) = eval p * eval q"
    QCheck2.Gen.(pair (float_range (-3.) 3.) (float_range (-3.) 3.))
    (fun (x, c) ->
       let p = [| c; 1. |] and q = [| 1.; -2.; c |] in
       let lhs = P.eval (P.mul p q) x in
       let rhs = P.eval p x *. P.eval q x in
       abs_float (lhs -. rhs) <= 1e-9 *. (1. +. abs_float rhs))

let prop_quadratic_roots_are_roots =
  prop "returned roots satisfy the quadratic"
    QCheck2.Gen.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (r1, r2) ->
       (* construct (x - r1)(x - r2) *)
       let b = -.(r1 +. r2) and c = r1 *. r2 in
       match P.roots_quadratic 1. b c with
       | None -> false
       | Some (a, b') ->
         let f x = (x *. x) +. (b *. x) +. c in
         abs_float (f a) < 1e-6 && abs_float (f b') < 1e-6)

let () =
  Alcotest.run "polynomial"
    [
      ( "polynomial",
        [
          case "horner eval" test_eval;
          case "empty evaluates to 0" test_eval_empty;
          case "derivative" test_derivative;
          case "derivative of constant" test_derivative_constant;
          case "integral" test_integral;
          case "integral-derivative inverse" test_integral_derivative_inverse;
          case "add" test_add;
          case "mul" test_mul;
          case "scale" test_scale;
          case "degree" test_degree;
          case "fit quadratic" test_fit_quadratic;
          case "fit underdetermined" test_fit_underdetermined;
          case "quadratic roots" test_roots_quadratic;
          case "complex roots rejected" test_roots_complex;
          case "degenerate rejected" test_roots_degenerate;
          prop_mul_eval_commutes;
          prop_quadratic_roots_are_roots;
        ] );
    ]
