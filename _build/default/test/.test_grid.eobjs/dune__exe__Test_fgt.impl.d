test/test_fgt.ml: Alcotest Gnrflash_device Gnrflash_quantum Gnrflash_testing QCheck2
