test/test_regime.ml: Alcotest Gnrflash_quantum Gnrflash_testing QCheck2
