test/test_grid.ml: Alcotest Array Gnrflash_numerics Gnrflash_testing QCheck2
