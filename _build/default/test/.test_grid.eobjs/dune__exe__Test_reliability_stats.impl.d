test/test_reliability_stats.ml: Alcotest Array Gnrflash_device Gnrflash_testing QCheck2
