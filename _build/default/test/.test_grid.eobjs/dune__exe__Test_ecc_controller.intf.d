test/test_ecc_controller.mli:
