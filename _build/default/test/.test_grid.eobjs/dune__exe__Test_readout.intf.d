test/test_readout.mli:
