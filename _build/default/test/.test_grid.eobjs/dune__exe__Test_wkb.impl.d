test/test_wkb.ml: Alcotest Gnrflash_physics Gnrflash_quantum Gnrflash_testing QCheck2
