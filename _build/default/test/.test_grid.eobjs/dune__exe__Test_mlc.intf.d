test/test_mlc.mli:
