test/test_charge_pump.mli:
