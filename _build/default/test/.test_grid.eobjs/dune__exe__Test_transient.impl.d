test/test_transient.ml: Alcotest Array Fun Gnrflash_device Gnrflash_telemetry Gnrflash_testing List Printf QCheck2
