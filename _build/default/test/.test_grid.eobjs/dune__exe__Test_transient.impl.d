test/test_transient.ml: Alcotest Array Gnrflash_device Gnrflash_testing QCheck2
