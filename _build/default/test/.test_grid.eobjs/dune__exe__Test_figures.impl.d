test/test_figures.ml: Alcotest Array Gnrflash Gnrflash_plot Gnrflash_testing List QCheck2
