test/test_fn_plot.ml: Alcotest Array Gnrflash_numerics Gnrflash_quantum Gnrflash_testing QCheck2 Random
