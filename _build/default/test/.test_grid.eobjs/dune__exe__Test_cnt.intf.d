test/test_cnt.mli:
