test/test_qcap.mli:
