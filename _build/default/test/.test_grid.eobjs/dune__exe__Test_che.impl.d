test/test_che.ml: Alcotest Gnrflash_quantum Gnrflash_testing QCheck2
