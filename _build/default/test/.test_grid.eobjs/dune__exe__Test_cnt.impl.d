test/test_cnt.ml: Alcotest Float Gnrflash_materials Gnrflash_testing QCheck2
