test/test_oxide.ml: Alcotest Gnrflash_materials Gnrflash_physics Gnrflash_testing List QCheck2
