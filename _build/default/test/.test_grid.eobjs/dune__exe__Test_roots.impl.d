test/test_roots.ml: Alcotest Float Gnrflash_numerics Gnrflash_testing QCheck2
