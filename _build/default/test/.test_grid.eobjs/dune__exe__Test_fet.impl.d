test/test_fet.ml: Alcotest Array Gnrflash_device Gnrflash_numerics Gnrflash_testing
