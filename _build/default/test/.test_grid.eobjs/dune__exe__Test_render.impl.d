test/test_render.ml: Alcotest Array Filename Gnrflash_plot Gnrflash_testing List String Sys
