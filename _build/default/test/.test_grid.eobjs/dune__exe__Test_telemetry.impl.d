test/test_telemetry.ml: Alcotest Fun Gnrflash_telemetry Gnrflash_testing List Printf QCheck2 String
