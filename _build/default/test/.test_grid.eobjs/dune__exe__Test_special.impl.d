test/test_special.ml: Alcotest Float Gnrflash_numerics Gnrflash_testing List Printf QCheck2
