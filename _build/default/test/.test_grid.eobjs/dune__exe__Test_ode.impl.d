test/test_ode.ml: Alcotest Array Float Gnrflash_numerics Gnrflash_testing QCheck2
