test/test_ispp.mli:
