test/test_fn.ml: Alcotest Float Gnrflash_materials Gnrflash_quantum Gnrflash_testing QCheck2
