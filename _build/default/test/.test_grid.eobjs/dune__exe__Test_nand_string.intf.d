test/test_nand_string.mli:
