test/test_scale.ml: Alcotest Array Float Gnrflash_plot Gnrflash_testing QCheck2
