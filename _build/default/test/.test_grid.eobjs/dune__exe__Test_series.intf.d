test/test_series.mli:
