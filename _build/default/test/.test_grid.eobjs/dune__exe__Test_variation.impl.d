test/test_variation.ml: Alcotest Array Float Gnrflash_device Gnrflash_testing
