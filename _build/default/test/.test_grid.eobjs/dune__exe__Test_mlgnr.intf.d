test/test_mlgnr.mli:
