test/test_mlc.ml: Alcotest Array Gnrflash_device Gnrflash_memory Gnrflash_testing List Printf QCheck2
