test/test_report.ml: Alcotest Gnrflash Gnrflash_testing List String
