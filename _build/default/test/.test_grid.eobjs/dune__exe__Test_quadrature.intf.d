test/test_quadrature.mli:
