test/test_fermi.mli:
