test/test_lookup.ml: Alcotest Gnrflash_quantum Gnrflash_testing QCheck2
