test/test_constants.ml: Alcotest Float Gnrflash_physics Gnrflash_testing
