test/test_electrostatics.mli:
