test/test_lookup.mli:
