test/test_transfer_matrix.mli:
