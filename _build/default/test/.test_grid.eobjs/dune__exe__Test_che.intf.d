test/test_che.mli:
