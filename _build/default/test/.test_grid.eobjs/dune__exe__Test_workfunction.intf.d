test/test_workfunction.mli:
