test/test_silicon.ml: Alcotest Gnrflash_materials Gnrflash_testing
