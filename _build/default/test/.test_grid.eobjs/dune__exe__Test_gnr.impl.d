test/test_gnr.ml: Alcotest Float Gnrflash_materials Gnrflash_physics Gnrflash_testing QCheck2
