test/test_regime.mli:
