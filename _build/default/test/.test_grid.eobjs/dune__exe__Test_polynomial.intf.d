test/test_polynomial.mli:
