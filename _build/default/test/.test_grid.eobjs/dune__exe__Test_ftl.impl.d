test/test_ftl.ml: Alcotest Gnrflash_memory Gnrflash_testing QCheck2
