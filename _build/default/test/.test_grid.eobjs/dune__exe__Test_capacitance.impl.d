test/test_capacitance.ml: Alcotest Gnrflash_device Gnrflash_testing QCheck2
