test/test_roots.mli:
