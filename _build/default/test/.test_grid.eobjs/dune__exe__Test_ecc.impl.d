test/test_ecc.ml: Alcotest Array Gnrflash_memory Gnrflash_testing Printf QCheck2
