test/test_ftl.mli:
