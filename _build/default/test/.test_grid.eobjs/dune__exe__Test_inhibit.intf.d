test/test_inhibit.mli:
