test/test_polynomial.ml: Alcotest Array Gnrflash_numerics Gnrflash_testing QCheck2
