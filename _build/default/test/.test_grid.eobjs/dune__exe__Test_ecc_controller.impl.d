test/test_ecc_controller.ml: Alcotest Array Gnrflash_device Gnrflash_memory Gnrflash_testing List
