test/test_waveform.ml: Alcotest Gnrflash_device Gnrflash_memory Gnrflash_testing List
