test/test_electrostatics.ml: Alcotest Array Gnrflash_device Gnrflash_testing QCheck2
