test/test_extensions.ml: Alcotest Array Float Gnrflash Gnrflash_memory Gnrflash_plot Gnrflash_testing List Printf
