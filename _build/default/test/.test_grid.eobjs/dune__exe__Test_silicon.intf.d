test/test_silicon.mli:
