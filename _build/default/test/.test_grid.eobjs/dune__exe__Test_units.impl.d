test/test_units.ml: Alcotest Gnrflash_physics Gnrflash_testing QCheck2
