test/test_retention.ml: Alcotest Array Gnrflash_device Gnrflash_testing
