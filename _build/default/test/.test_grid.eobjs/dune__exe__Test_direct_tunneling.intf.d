test/test_direct_tunneling.mli:
