test/test_gnr.mli:
