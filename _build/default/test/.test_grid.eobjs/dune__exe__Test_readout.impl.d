test/test_readout.ml: Alcotest Gnrflash_device Gnrflash_testing QCheck2
