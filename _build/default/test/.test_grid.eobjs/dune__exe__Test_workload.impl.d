test/test_workload.ml: Alcotest Array Gnrflash_device Gnrflash_memory Gnrflash_testing List
