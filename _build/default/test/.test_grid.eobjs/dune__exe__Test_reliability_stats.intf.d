test/test_reliability_stats.mli:
