test/test_disturb.mli:
