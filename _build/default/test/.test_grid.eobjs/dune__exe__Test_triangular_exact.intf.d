test/test_triangular_exact.mli:
