test/test_tsu_esaki.ml: Alcotest Float Gnrflash_physics Gnrflash_quantum Gnrflash_testing List QCheck2
