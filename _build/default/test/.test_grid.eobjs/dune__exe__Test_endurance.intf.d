test/test_endurance.mli:
