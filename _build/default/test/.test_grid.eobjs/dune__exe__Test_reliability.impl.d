test/test_reliability.ml: Alcotest Gnrflash_device Gnrflash_testing QCheck2
