test/test_fgt.mli:
