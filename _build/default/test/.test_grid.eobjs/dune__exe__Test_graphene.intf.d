test/test_graphene.mli:
