test/test_special.mli:
