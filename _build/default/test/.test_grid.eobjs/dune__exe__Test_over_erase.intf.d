test/test_over_erase.mli:
