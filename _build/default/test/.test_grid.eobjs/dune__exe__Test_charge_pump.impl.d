test/test_charge_pump.ml: Alcotest Gnrflash_device Gnrflash_testing QCheck2
