test/test_endurance.ml: Alcotest Float Gnrflash_device Gnrflash_memory Gnrflash_testing List
