test/test_program_erase.ml: Alcotest Gnrflash_device Gnrflash_testing QCheck2
