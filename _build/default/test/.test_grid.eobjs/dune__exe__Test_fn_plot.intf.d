test/test_fn_plot.mli:
