test/test_regression.ml: Alcotest Array Gnrflash_numerics Gnrflash_testing QCheck2
