test/test_trap_assisted.mli:
