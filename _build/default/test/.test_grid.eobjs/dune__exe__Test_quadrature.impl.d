test/test_quadrature.ml: Alcotest Array Float Gnrflash_numerics Gnrflash_testing QCheck2
