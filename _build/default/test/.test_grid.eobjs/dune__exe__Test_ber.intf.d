test/test_ber.mli:
