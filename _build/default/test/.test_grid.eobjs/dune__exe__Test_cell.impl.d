test/test_cell.ml: Alcotest Gnrflash_device Gnrflash_memory Gnrflash_testing QCheck2
