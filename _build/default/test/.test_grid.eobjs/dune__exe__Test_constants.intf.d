test/test_constants.mli:
