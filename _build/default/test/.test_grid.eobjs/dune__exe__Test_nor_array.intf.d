test/test_nor_array.mli:
