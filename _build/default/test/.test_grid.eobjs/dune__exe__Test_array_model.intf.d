test/test_array_model.mli:
