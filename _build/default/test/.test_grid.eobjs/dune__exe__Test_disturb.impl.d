test/test_disturb.ml: Alcotest Gnrflash_device Gnrflash_testing
