test/test_capacitance.mli:
