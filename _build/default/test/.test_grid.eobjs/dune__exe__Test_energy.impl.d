test/test_energy.ml: Alcotest Gnrflash_device Gnrflash_memory Gnrflash_testing List
