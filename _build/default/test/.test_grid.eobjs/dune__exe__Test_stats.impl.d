test/test_stats.ml: Alcotest Array Gnrflash_numerics Gnrflash_testing QCheck2
