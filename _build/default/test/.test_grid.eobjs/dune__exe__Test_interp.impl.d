test/test_interp.ml: Alcotest Array Gnrflash_numerics Gnrflash_testing QCheck2
