test/test_linalg.ml: Alcotest Array Complex Gnrflash_numerics Gnrflash_testing QCheck2
