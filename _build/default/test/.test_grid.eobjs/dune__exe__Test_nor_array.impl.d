test/test_nor_array.ml: Alcotest Array Gnrflash_device Gnrflash_memory Gnrflash_testing
