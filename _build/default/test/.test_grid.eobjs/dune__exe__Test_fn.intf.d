test/test_fn.mli:
