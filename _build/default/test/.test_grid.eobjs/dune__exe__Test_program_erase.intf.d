test/test_program_erase.mli:
