test/test_ber.ml: Alcotest Gnrflash_memory Gnrflash_testing QCheck2
