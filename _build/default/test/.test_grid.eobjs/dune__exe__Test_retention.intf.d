test/test_retention.mli:
