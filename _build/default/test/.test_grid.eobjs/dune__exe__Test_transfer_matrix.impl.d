test/test_transfer_matrix.ml: Alcotest Array Gnrflash_physics Gnrflash_quantum Gnrflash_testing List Printf QCheck2
