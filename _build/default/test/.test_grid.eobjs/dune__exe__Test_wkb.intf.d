test/test_wkb.mli:
