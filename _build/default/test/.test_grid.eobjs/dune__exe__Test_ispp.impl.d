test/test_ispp.ml: Alcotest Gnrflash_device Gnrflash_testing List QCheck2
