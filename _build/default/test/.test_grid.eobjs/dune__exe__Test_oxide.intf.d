test/test_oxide.mli:
