test/test_tsu_esaki.mli:
