test/test_optimize.ml: Alcotest Array Float Gnrflash_numerics Gnrflash_testing QCheck2
