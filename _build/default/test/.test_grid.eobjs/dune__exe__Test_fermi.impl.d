test/test_fermi.ml: Alcotest Float Gnrflash_physics Gnrflash_testing QCheck2
