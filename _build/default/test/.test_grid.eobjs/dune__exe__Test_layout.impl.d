test/test_layout.ml: Alcotest Array Gnrflash_device Gnrflash_testing QCheck2
