test/test_series.ml: Alcotest Array Gnrflash_plot Gnrflash_testing
