test/test_fet.mli:
