module Fet = Gnrflash_device.Fet
open Gnrflash_testing.Testing

let p = Fet.default

let test_off_state () =
  let i = Fet.drain_current p ~vgs:(-2.) ~vds:0.05 in
  check_close "leakage floor" p.Fet.i_off i

let test_zero_vds () =
  check_close "no drain bias" 0. (Fet.drain_current p ~vgs:3. ~vds:0.)

let test_on_state_magnitude () =
  let i = Fet.drain_current p ~vgs:3. ~vds:0.05 in
  (* Landauer-ish conductance at 50 mV: microamp scale *)
  check_in "on current" ~lo:1e-8 ~hi:1e-3 i

let test_monotone_in_vgs () =
  let prev = ref 0. in
  for k = 0 to 40 do
    let vgs = -1. +. (0.15 *. float_of_int k) in
    let i = Fet.drain_current p ~vgs ~vds:0.05 in
    check_true "non-decreasing" (i >= !prev -. 1e-18);
    prev := i
  done

let test_continuity_at_joint () =
  (* the subthreshold/on-state stitch at overdrive = v_sat must be smooth *)
  let v_joint = p.Fet.vt0 +. p.Fet.v_sat in
  let below = Fet.drain_current p ~vgs:(v_joint -. 1e-6) ~vds:0.05 in
  let above = Fet.drain_current p ~vgs:(v_joint +. 1e-6) ~vds:0.05 in
  check_close ~tol:1e-3 "continuous" above below

let test_drain_saturation () =
  let i1 = Fet.drain_current p ~vgs:3. ~vds:0.5 in
  let i2 = Fet.drain_current p ~vgs:3. ~vds:5. in
  (* 10x more drain bias buys < 50% more current past v_sat *)
  check_true "saturates" (i2 < i1 *. 1.5);
  check_true "still increases" (i2 >= i1)

let test_subthreshold_swing () =
  check_close ~tol:0.02 "configured swing" p.Fet.ss_mv_dec
    (Fet.subthreshold_swing p ~vds:0.05)

let test_transfer_shift () =
  let vgs = Gnrflash_numerics.Grid.linspace 0. 4. 41 in
  let erased = Fet.transfer_curve p ~dvt:0. ~vds:0.05 ~vgs in
  let programmed = Fet.transfer_curve p ~dvt:2. ~vds:0.05 ~vgs in
  (* at every bias the programmed cell conducts no more than the erased *)
  Array.iteri
    (fun i (_, ie) ->
       let _, ip = programmed.(i) in
       check_true "programmed below erased" (ip <= ie +. 1e-18))
    erased;
  (* the curve is shifted: programmed at vgs+2 equals erased at vgs *)
  let i_er = Fet.drain_current p ~vgs:2.5 ~vds:0.05 in
  let i_pr = Fet.drain_current { p with Fet.vt0 = p.Fet.vt0 +. 2. } ~vgs:4.5 ~vds:0.05 in
  check_close ~tol:1e-9 "pure lateral shift" i_er i_pr

let test_read_window () =
  let w = Fet.read_window p ~dvt_programmed:5. ~vread:3. ~vds:0.05 in
  check_true "large window" (w > 1e3)

let () =
  Alcotest.run "fet"
    [
      ( "fet",
        [
          case "off state" test_off_state;
          case "zero vds" test_zero_vds;
          case "on magnitude" test_on_state_magnitude;
          case "monotone in vgs" test_monotone_in_vgs;
          case "continuity at joint" test_continuity_at_joint;
          case "drain saturation" test_drain_saturation;
          case "subthreshold swing" test_subthreshold_swing;
          case "transfer shift" test_transfer_shift;
          case "read window" test_read_window;
        ] );
    ]
