type t = {
  name : string;
  eps_r : float;
  electron_affinity : float;
  bandgap : float;
  m_ox : float;
  breakdown_field : float;
}

(* Parameter sources: Robertson, "High dielectric constant oxides" (2004)
   for affinities/gaps; Lenzlinger & Snow and Depas et al. for SiO2 m_ox;
   breakdown fields are the usual intrinsic values. *)

let sio2 =
  {
    name = "SiO2";
    eps_r = 3.9;
    electron_affinity = 0.9;
    bandgap = 9.0;
    m_ox = 0.42;
    breakdown_field = 1.0e9 (* ~10 MV/cm *);
  }

let si3n4 =
  {
    name = "Si3N4";
    eps_r = 7.5;
    electron_affinity = 2.1;
    bandgap = 5.3;
    m_ox = 0.4;
    breakdown_field = 6.0e8;
  }

let al2o3 =
  {
    name = "Al2O3";
    eps_r = 9.0;
    electron_affinity = 1.4;
    bandgap = 8.8;
    m_ox = 0.3;
    breakdown_field = 7.0e8;
  }

let hfo2 =
  {
    name = "HfO2";
    eps_r = 22.0;
    electron_affinity = 2.4;
    bandgap = 5.8;
    m_ox = 0.17;
    breakdown_field = 4.0e8;
  }

let hbn =
  {
    name = "hBN";
    eps_r = 3.8;
    electron_affinity = 1.3;
    bandgap = 6.0;
    m_ox = 0.5;
    breakdown_field = 8.0e8;
  }

let all = [ sio2; si3n4; al2o3; hfo2; hbn ]

let by_name name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun o -> String.lowercase_ascii o.name = lower) all

let permittivity o = Gnrflash_physics.Constants.eps0 *. o.eps_r

let capacitance_per_area o ~thickness =
  if thickness <= 0. then invalid_arg "Oxide.capacitance_per_area: thickness <= 0";
  permittivity o /. thickness
