(** Graphene nanoribbons (GNR) in the nearest-neighbour tight-binding
    picture.

    Armchair ribbons are indexed by the number of dimer lines [n] across the
    width; their gap follows the well-known three-family rule
    (n = 3p, 3p+1 metallic-ish gap families; n = 3p+2 quasi-metallic).
    Zigzag ribbons are metallic in this approximation (edge states). *)

type edge =
  | Armchair
  | Zigzag

type t = {
  edge : edge;
  n : int;        (** dimer lines (armchair) or zigzag chains across width *)
}

val make : edge -> int -> t
(** Construct a ribbon descriptor. @raise Invalid_argument if [n < 2]. *)

val width : t -> float
(** Geometric width [m]: [(n-1)·√3/2·a_cc] for armchair,
    [(3n/2 - 1)·a_cc] for zigzag. *)

val family : t -> int
(** For armchair ribbons, [n mod 3] (0, 1 or 2); zigzag ribbons return [-1]. *)

val subband_energy : t -> p:int -> k:float -> float
(** Tight-binding conduction subband [p] at longitudinal wavevector [k]
    [1/m], in joules:
    [E = t·sqrt(1 + 4 cosθp cos(ka/2) + 4 cos²θp)], θp = pπ/(n+1).
    @raise Invalid_argument unless [1 <= p <= n]. *)

val bandgap : t -> float
(** Bandgap in joules: armchair — [min_p 2|t|·|1 + 2 cos θp|] at k = 0;
    zigzag — 0 (edge-state metallicity in nearest-neighbour TB). *)

val bandgap_ev : t -> float
(** {!bandgap} in eV. *)

val empirical_gap_ev : width_nm:float -> float
(** The widely used empirical scaling [Eg ≈ 0.8 eV·nm / W] for comparison
    against the tight-binding result.
    @raise Invalid_argument if [width_nm <= 0.]. *)

val is_semiconducting : ?threshold_ev:float -> t -> bool
(** True when the gap exceeds [threshold_ev] (default 0.1 eV). *)

val conducting_channels : t -> ef_ev:float -> int
(** Number of spin-degenerate subbands whose edge lies below the Fermi level
    [ef_ev] (measured from midgap) — the Landauer channel count used by the
    readout model. *)
