module C = Gnrflash_physics.Constants

type edge =
  | Armchair
  | Zigzag

type t = {
  edge : edge;
  n : int;
}

let make edge n =
  if n < 2 then invalid_arg "Gnr.make: n < 2";
  { edge; n }

let width r =
  match r.edge with
  | Armchair -> float_of_int (r.n - 1) *. sqrt 3. /. 2. *. C.a_cc
  | Zigzag -> ((1.5 *. float_of_int r.n) -. 1.) *. C.a_cc

let family r =
  match r.edge with
  | Armchair -> r.n mod 3
  | Zigzag -> -1

let theta r p = Float.pi *. float_of_int p /. float_of_int (r.n + 1)

let subband_energy r ~p ~k =
  if p < 1 || p > r.n then invalid_arg "Gnr.subband_energy: p out of range";
  match r.edge with
  | Armchair ->
    let ct = cos (theta r p) in
    let ka2 = k *. C.a_graphene /. 2. in
    C.t_hopping *. sqrt (1. +. (4. *. ct *. cos ka2) +. (4. *. ct *. ct))
  | Zigzag ->
    (* Flat edge band near E = 0 plus dispersive bulk bands; we expose the
       bulk subband expression with the transverse quantization of a zigzag
       ribbon (approximate hard-wall form). *)
    let ct = cos (theta r p) in
    let ka2 = k *. C.a_graphene /. 2. in
    C.t_hopping
    *. sqrt (abs_float (1. +. (4. *. ct *. cos ka2) +. (4. *. ct *. ct)))

let bandgap r =
  match r.edge with
  | Zigzag -> 0.
  | Armchair ->
    let best = ref infinity in
    for p = 1 to r.n do
      let gap = 2. *. C.t_hopping *. abs_float (1. +. (2. *. cos (theta r p))) in
      if gap < !best then best := gap
    done;
    !best

let bandgap_ev r = bandgap r /. C.ev

let empirical_gap_ev ~width_nm =
  if width_nm <= 0. then invalid_arg "Gnr.empirical_gap_ev: width <= 0";
  0.8 /. width_nm

let is_semiconducting ?(threshold_ev = 0.1) r = bandgap_ev r > threshold_ev

let conducting_channels r ~ef_ev =
  let ef = abs_float ef_ev *. C.ev in
  let count = ref 0 in
  (match r.edge with
   | Zigzag ->
     (* edge band at E=0 always conducts *)
     incr count
   | Armchair -> ());
  for p = 1 to r.n do
    let edge_energy =
      match r.edge with
      | Armchair ->
        (* subband edge at k = 0 *)
        C.t_hopping *. abs_float (1. +. (2. *. cos (theta r p)))
      | Zigzag -> C.t_hopping *. abs_float (1. +. (2. *. cos (theta r p)))
    in
    if edge_energy <= ef then incr count
  done;
  !count
