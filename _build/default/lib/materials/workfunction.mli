(** Work functions of electrode materials and the barrier heights they form
    against gate dielectrics. All energies in eV. *)

type electrode =
  | N_poly_si       (** degenerately doped n+ polysilicon *)
  | P_poly_si       (** p+ polysilicon *)
  | Aluminium
  | Titanium_nitride
  | Graphene        (** monolayer graphene at charge neutrality *)
  | Mlgnr of int    (** multilayer graphene nanoribbon with the given layer count *)
  | Cnt of float    (** carbon nanotube of the given diameter [m] *)
  | Custom of string * float  (** name and work function [eV] *)

val work_function : electrode -> float
(** Work function in eV. MLGNR converges from the monolayer value toward
    graphite (≈ 4.6 eV) as layers are added; CNT work function decreases
    slightly with diameter around ≈ 4.8 eV. *)

val name : electrode -> string
(** Display name. *)

val barrier_height : electrode -> Oxide.t -> float
(** [barrier_height e ox] is the electron tunneling barrier
    Φ_B = W(e) − χ(ox) in eV — the energy an electron at the electrode Fermi
    level must surmount to enter the oxide conduction band. *)

val si_sio2_barrier : float
(** The textbook Si/SiO₂ electron barrier, 3.15–3.2 eV; used as the paper's
    default Φ_B and pinned by unit tests. *)
