(** Single-wall carbon nanotubes, classified by chirality [(n, m)]. *)

type t = {
  n : int;
  m : int;
}

val make : int -> int -> t
(** Chirality indices; requires [n >= m >= 0] and [n > 0].
    @raise Invalid_argument otherwise. *)

val diameter : t -> float
(** Tube diameter [m]: [a·√(n² + nm + m²)/π] with [a] the graphene lattice
    constant. *)

val chiral_angle : t -> float
(** Chiral angle [rad], 0 for zigzag (m = 0), π/6 for armchair (n = m). *)

val is_metallic : t -> bool
(** True when [(n - m) mod 3 = 0] (band-structure metallicity rule). *)

val bandgap_ev : t -> float
(** Semiconducting gap [2·t·a_cc/d ≈ 0.77 eV·nm / d]; metallic tubes
    return 0. *)

val classify : t -> string
(** ["metallic"] or ["semiconducting"]. *)

val work_function : t -> float
(** Work function in eV (see {!Workfunction.Cnt}). *)
