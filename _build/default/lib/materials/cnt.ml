module C = Gnrflash_physics.Constants

type t = {
  n : int;
  m : int;
}

let make n m =
  if n <= 0 || m < 0 || m > n then invalid_arg "Cnt.make: require n >= m >= 0, n > 0";
  { n; m }

let diameter t =
  let n = float_of_int t.n and m = float_of_int t.m in
  C.a_graphene *. sqrt ((n *. n) +. (n *. m) +. (m *. m)) /. Float.pi

let chiral_angle t =
  let n = float_of_int t.n and m = float_of_int t.m in
  atan2 (sqrt 3. *. m) ((2. *. n) +. m)

let is_metallic t = (t.n - t.m) mod 3 = 0

let bandgap_ev t =
  if is_metallic t then 0.
  else begin
    let d = diameter t in
    2. *. (C.t_hopping /. C.ev) *. C.a_cc /. d
  end

let classify t = if is_metallic t then "metallic" else "semiconducting"

let work_function t = Workfunction.work_function (Workfunction.Cnt (diameter t))
