(** Bulk silicon parameters for the conventional-FGT baseline the paper
    compares against implicitly (CMOS floating-gate numbers in Section II). *)

val bandgap_ev : float
(** 1.12 eV at 300 K. *)

val electron_affinity : float
(** 4.05 eV. *)

val eps_r : float
(** Relative permittivity, 11.7. *)

val ni : float
(** Intrinsic carrier concentration at 300 K [1/m³]. *)

val nc : float
(** Effective conduction-band DOS at 300 K [1/m³]. *)

val nv : float
(** Effective valence-band DOS at 300 K [1/m³]. *)

val fermi_level_n : nd:float -> float
(** Fermi level below the conduction band [eV] for donor doping [nd] [1/m³]
    (Boltzmann approximation). @raise Invalid_argument if [nd <= 0.]. *)
