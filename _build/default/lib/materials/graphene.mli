(** Monolayer graphene electronic properties in the linear (Dirac)
    approximation. Energies in joules unless stated otherwise. *)

val dispersion : float -> float
(** [dispersion k] is the conduction-band energy [ħ·v_F·k] at wavevector
    [k] [1/m]. *)

val density_of_states : float -> float
(** [density_of_states e] is the 2D DOS per unit area per joule at energy
    [e] measured from the Dirac point: [2|e| / (π ħ² v_F²)]. *)

val carrier_density : ef:float -> t:float -> float
(** Net carrier density [1/m²] (electrons minus holes) at Fermi level [ef]
    (joules, relative to the Dirac point) and temperature [t]. At [t = 0]
    this is the analytic [ef²/(π ħ² v_F²)·sign(ef)]; at finite temperature
    it is evaluated by quadrature. *)

val quantum_capacitance : ef:float -> t:float -> float
(** Quantum capacitance per unit area [F/m²]:
    [Cq = 2 q² kT / (π (ħ v_F)²) · ln(2(1 + cosh(ef/kT)))]. For [t = 0] the
    degenerate limit [2 q² |ef| / (π (ħ v_F)²)] is used. The floating-gate
    model puts this in series with the geometric capacitances (Ext E). *)

val fermi_level_for_density : n:float -> t:float -> float
(** Inverse of {!carrier_density}: the Fermi level [J] producing net density
    [n] [1/m²] at temperature [t], found by bracketing + Brent. *)
