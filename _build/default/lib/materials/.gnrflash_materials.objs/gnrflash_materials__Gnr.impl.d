lib/materials/gnr.ml: Float Gnrflash_physics
