lib/materials/workfunction.ml: Oxide Printf
