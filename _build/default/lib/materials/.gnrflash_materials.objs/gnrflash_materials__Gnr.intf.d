lib/materials/gnr.mli:
