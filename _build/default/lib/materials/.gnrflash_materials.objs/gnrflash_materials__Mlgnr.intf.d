lib/materials/mlgnr.mli: Gnr
