lib/materials/graphene.ml: Float Gnrflash_numerics Gnrflash_physics
