lib/materials/silicon.mli:
