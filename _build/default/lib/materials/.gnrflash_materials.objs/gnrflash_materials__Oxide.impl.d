lib/materials/oxide.ml: Gnrflash_physics List String
