lib/materials/mlgnr.ml: Float Gnr Gnrflash_physics Graphene
