lib/materials/graphene.mli:
