lib/materials/oxide.mli:
