lib/materials/cnt.mli:
