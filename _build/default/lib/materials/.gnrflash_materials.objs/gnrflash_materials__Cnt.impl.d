lib/materials/cnt.ml: Float Gnrflash_physics Workfunction
