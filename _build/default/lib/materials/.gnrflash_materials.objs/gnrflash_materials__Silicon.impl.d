lib/materials/silicon.ml: Gnrflash_physics
