lib/materials/workfunction.mli: Oxide
