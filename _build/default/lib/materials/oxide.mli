(** Gate-dielectric materials. All energies in eV, fields in V/m. *)

type t = {
  name : string;
  eps_r : float;              (** relative permittivity *)
  electron_affinity : float;  (** χ, eV below vacuum of the conduction band *)
  bandgap : float;            (** eV *)
  m_ox : float;               (** effective tunneling electron mass, units of m0 *)
  breakdown_field : float;    (** intrinsic breakdown field, V/m *)
}

val sio2 : t
(** Thermal silicon dioxide — the paper's assumed tunnel/control oxide. *)

val si3n4 : t
(** Silicon nitride. *)

val al2o3 : t
(** Alumina (high-k). *)

val hfo2 : t
(** Hafnia (high-k). *)

val hbn : t
(** Hexagonal boron nitride — the natural 2D-stack dielectric for
    graphene devices. *)

val all : t list
(** Every material above, for sweeps. *)

val by_name : string -> t option
(** Case-insensitive lookup in {!all}. *)

val permittivity : t -> float
(** Absolute permittivity ε₀·εᵣ [F/m]. *)

val capacitance_per_area : t -> thickness:float -> float
(** Parallel-plate capacitance per unit area [F/m²] of a film of the given
    thickness [m]. @raise Invalid_argument if [thickness <= 0.]. *)
