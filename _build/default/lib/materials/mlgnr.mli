(** Multilayer graphene nanoribbon (MLGNR) stacks — the floating gate and
    channel material of the proposed device.

    The stack model captures the three MLGNR effects the device layer
    needs: (i) gap shrinkage with layer count, (ii) total quantum
    capacitance of the stack (series/parallel combination with interlayer
    screening), and (iii) areal charge-storage capacity of the floating
    gate. *)

type t = {
  ribbon : Gnr.t;     (** per-layer ribbon geometry *)
  layers : int;       (** number of stacked layers, >= 1 *)
  interlayer : float; (** interlayer spacing [m], default graphite 0.335 nm *)
}

val make : ?interlayer:float -> Gnr.t -> layers:int -> t
(** Build a stack descriptor. @raise Invalid_argument if [layers < 1]. *)

val thickness : t -> float
(** Physical stack thickness [m] ([interlayer × (layers-1)] plus one layer). *)

val bandgap_ev : t -> float
(** Effective gap: the monolayer tight-binding gap divided by an
    interlayer-coupling factor [1 + 0.5·(layers - 1)] — multilayer AGNRs
    close their gap quickly with layer count (Sahu et al., PRB 2008). *)

val quantum_capacitance : t -> ef_ev:float -> temp:float -> float
(** Stack quantum capacitance per unit area [F/m²]. The top layer feels the
    full field; deeper layers are screened with characteristic length ~1
    layer, so contributions fall geometrically (factor {!screening_factor}
    per layer) and add in parallel. *)

val screening_factor : float
(** Per-layer interlayer screening attenuation (≈ 0.53, i.e. screening
    length of about 1.6 layers). *)

val storable_charge : t -> ef_max_ev:float -> float
(** Maximum areal charge density [C/m²] the stack can absorb while its
    Fermi level rises by [ef_max_ev]: [q·Σ_layers ∫₀^{Ef} DOS]. Determines
    the floating-gate saturation charge independent of the Jin = Jout
    dynamic limit. *)

val sheet_conductance : t -> ef_ev:float -> float
(** Landauer sheet conductance [S] of the stack:
    [layers × channels × 2q²/h] (ballistic limit, used by the readout
    model). *)
