type electrode =
  | N_poly_si
  | P_poly_si
  | Aluminium
  | Titanium_nitride
  | Graphene
  | Mlgnr of int
  | Cnt of float
  | Custom of string * float

let graphene_wf = 4.56
let graphite_wf = 4.6

let work_function = function
  | N_poly_si -> 4.05 (* at the Si electron affinity for n+ *)
  | P_poly_si -> 5.17
  | Aluminium -> 4.28
  | Titanium_nitride -> 4.7
  | Graphene -> graphene_wf
  | Mlgnr n ->
    (* Exponential approach from monolayer to graphite with layer count
       (Hibino et al. 2009 measured ~0.05 eV span over 1..4 layers). *)
    let n = max 1 n in
    graphite_wf -. ((graphite_wf -. graphene_wf) *. exp (-.float_of_int (n - 1) /. 2.))
  | Cnt d ->
    (* Diameter dependence around 4.8 eV (Shiraishi & Ata 2001):
       smaller tubes have slightly higher work function. *)
    let d_nm = d *. 1e9 in
    if d_nm <= 0. then invalid_arg "Workfunction: non-positive CNT diameter";
    4.8 +. (0.1 /. d_nm *. 0.5)
  | Custom (_, wf) -> wf

let name = function
  | N_poly_si -> "n+ poly-Si"
  | P_poly_si -> "p+ poly-Si"
  | Aluminium -> "Al"
  | Titanium_nitride -> "TiN"
  | Graphene -> "graphene"
  | Mlgnr n -> Printf.sprintf "MLGNR(%d)" n
  | Cnt d -> Printf.sprintf "CNT(d=%.2fnm)" (d *. 1e9)
  | Custom (n, _) -> n

let barrier_height e (ox : Oxide.t) = work_function e -. ox.electron_affinity

let si_sio2_barrier = 3.2
