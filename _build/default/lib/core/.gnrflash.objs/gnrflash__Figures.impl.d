lib/core/figures.ml: Array Gnrflash_device Gnrflash_numerics Gnrflash_physics Gnrflash_plot Gnrflash_quantum List Params Printf
