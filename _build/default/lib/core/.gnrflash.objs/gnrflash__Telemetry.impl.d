lib/core/telemetry.ml: Gnrflash_telemetry
