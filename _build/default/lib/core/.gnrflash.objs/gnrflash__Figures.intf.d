lib/core/figures.mli: Gnrflash_plot
