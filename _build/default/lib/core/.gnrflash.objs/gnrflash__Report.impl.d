lib/core/report.ml: Array Buffer Figures Gnrflash_plot List Printf String
