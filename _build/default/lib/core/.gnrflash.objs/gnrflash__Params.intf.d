lib/core/params.mli: Gnrflash_device Gnrflash_quantum
