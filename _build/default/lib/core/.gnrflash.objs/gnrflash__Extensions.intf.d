lib/core/extensions.mli: Gnrflash_memory Gnrflash_plot
