lib/core/report.mli: Gnrflash_plot
