lib/core/params.ml: Gnrflash_device Gnrflash_quantum
