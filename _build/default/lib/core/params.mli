(** The parameter sets the paper's evaluation figures use. *)

val phi_b_ev : float
(** Barrier height, 3.2 eV (Si/SiO₂ textbook value the paper's
    k-coefficients correspond to). *)

val m_ox_rel : float
(** Tunneling effective mass in SiO₂, 0.42 m₀. *)

val gcr_values : float list
(** The four coupling ratios of Figs 6 and 8: 45 %, 50 %, 55 %, 60 %. *)

val xto_values_nm : float list
(** The five tunnel-oxide thicknesses of Figs 7 and 9: 5–9 nm. *)

val xto_default_nm : float
(** 5 nm (paper Fig 8 caption: "XTO = 5"). *)

val xco_default_nm : float
(** Control-oxide thickness, 10 nm — the paper states only that the
    control oxide is "always greater than the tunnel oxide"; 10 nm makes
    the worked example (Jout across 6 V / thicker oxide) come out as
    drawn. *)

val gcr_default : float
(** 0.6, the worked example's value. *)

val vgs_program : float
(** 15 V programming bias. *)

val vgs_program_range : float * float
(** Fig 6 sweep: 8–17 V. *)

val vgs_program_range_xto : float * float
(** Fig 7 sweep: 10–17 V. *)

val vgs_erase_range : float * float
(** Figs 8/9 sweep: −17 … −8 V. *)

val sweep_points : int
(** Samples per J–V curve (60). *)

val device : unit -> Gnrflash_device.Fgt.t
(** A fresh paper-default device
    ({!Gnrflash_device.Fgt.paper_default}). *)

val fn : unit -> Gnrflash_quantum.Fn.params
(** FN coefficients at the paper's Φ_B and m_ox. *)
