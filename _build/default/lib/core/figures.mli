(** Regeneration of every figure in the paper's evaluation. Each function
    returns a ready-to-render {!Gnrflash_plot.Figure.t}; the underlying
    numeric series are accessible through the figure's series list.

    Current densities are reported in A/cm² (the natural device unit);
    voltages in volts; times in seconds. *)

val fig2_band_diagram : unit -> Gnrflash_plot.Figure.t
(** The FN band diagram: tunnel-oxide barrier profiles at three fields
    (5, 10, 15 MV/cm) showing the triangular thinning, plus the
    image-force-rounded profile at 10 MV/cm. *)

val fig4_initial_currents : unit -> Gnrflash_plot.Figure.t * (float * float)
(** [Jin] vs [Jout] at t = 0 under the worked-example bias (VGS = 15 V,
    GCR = 0.6): the early-time portion of the transient on a log-log
    scale, plus the raw [(Jin, Jout)] pair at t = 0. *)

val fig5_transient : unit -> Gnrflash_plot.Figure.t * float option
(** [Jin(t)] and [Jout(t)] over the full programming transient (log-log),
    and the saturation time [tsat]. *)

val fig6_program_gcr : unit -> Gnrflash_plot.Figure.t
(** [JFN(VGS)] for the four GCR values, programming polarity,
    VGS ∈ [8, 17] V, XTO = 5 nm, semilog-y. *)

val fig7_program_xto : unit -> Gnrflash_plot.Figure.t
(** [JFN(VGS)] for the five XTO values at GCR = 60 %, VGS ∈ [10, 17] V. *)

val fig8_erase_gcr : unit -> Gnrflash_plot.Figure.t
(** Erase polarity of Fig 6: VGS ∈ [−17, −8] V, XTO = 5 nm. |J| plotted
    against VGS (negative axis). *)

val fig9_erase_xto : unit -> Gnrflash_plot.Figure.t
(** Erase polarity of Fig 7. *)

val all : unit -> (string * Gnrflash_plot.Figure.t) list
(** Every paper figure, labelled ["fig2" … "fig9"]. *)

(** {1 Raw series helpers (used by benches and tests)} *)

val jv_sweep_gcr :
  polarity:[ `Program | `Erase ] -> gcr:float -> xto_nm:float ->
  vgs_range:(float * float) -> points:int -> (float * float) array
(** One J–V curve: [(VGS, |J| in A/cm²)] from paper equations (3) + (7)
    with QFG = 0 (the paper's figures are drawn at the start of the
    operation). *)
