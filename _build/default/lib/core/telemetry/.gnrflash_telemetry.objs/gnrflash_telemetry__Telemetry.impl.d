lib/core/telemetry/telemetry.ml: Buffer Char Float Fun Hashtbl List Option Printf String Unix
