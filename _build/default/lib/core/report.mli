(** Shape checks and textual summaries: does each regenerated figure show
    the qualitative behaviour the paper reports? Used by the bench harness
    and by EXPERIMENTS.md. *)

type check = {
  name : string;
  passed : bool;
  detail : string;
}

val check_fig4 : unit -> check
(** Jin exceeds Jout by many orders of magnitude at t = 0. *)

val check_fig5 : unit -> check list
(** Jin monotone decreasing, Jout monotone increasing, saturation reached,
    currents converge at tsat. *)

val check_fig6 : unit -> check list
(** J increases with VGS for every GCR; higher-GCR curves lie strictly
    above lower ones. *)

val check_fig7 : unit -> check list
(** J increases with VGS for every XTO; thinner-oxide curves lie above;
    the XTO = 5 nm vs 7 nm gap is much larger than 7 nm vs 9 nm (the
    paper's "increases significantly below 7 nm"). *)

val check_fig8 : unit -> check list
(** Erase mirror of fig 6: |J| grows as VGS goes more negative, ordered by
    GCR. *)

val check_fig9 : unit -> check list
(** Erase mirror of fig 7. *)

val all_checks : unit -> check list
(** Every check above. *)

val render : check list -> string
(** Multi-line PASS/FAIL table. *)

val series_table : Gnrflash_plot.Figure.t -> max_rows:int -> string
(** The numeric rows of a figure (down-sampled to [max_rows] per series) —
    what the bench harness prints as "the same rows the paper reports". *)
