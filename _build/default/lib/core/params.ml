let phi_b_ev = 3.2
let m_ox_rel = 0.42
let gcr_values = [ 0.45; 0.50; 0.55; 0.60 ]
let xto_values_nm = [ 5.; 6.; 7.; 8.; 9. ]
let xto_default_nm = 5.
let xco_default_nm = 10.
let gcr_default = 0.6
let vgs_program = 15.
let vgs_program_range = (8., 17.)
let vgs_program_range_xto = (10., 17.)
let vgs_erase_range = (-17., -8.)
let sweep_points = 60

let device () = Gnrflash_device.Fgt.paper_default

let fn () = Gnrflash_quantum.Fn.coefficients ~phi_b_ev ~m_ox_rel
