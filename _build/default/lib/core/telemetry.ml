(* Re-export so users of the umbrella library can say [Gnrflash.Telemetry]
   without depending on the low-level gnrflash_telemetry library directly. *)
include Gnrflash_telemetry.Telemetry
