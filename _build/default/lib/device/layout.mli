(** Physical cell layout → capacitance network: derives the four
    equation-(2) capacitances from the geometry of paper Figure 1 (control
    gate over the floating gate, source/drain contacts flanking the
    channel) instead of postulating a GCR. Parallel-plate terms plus a
    fixed fringing fraction for the source/drain sidewall coupling. *)

type t = {
  gate_length : float;     (** channel / gate length [m] *)
  gate_width : float;      (** device width [m] *)
  xto : float;             (** tunnel-oxide thickness [m] *)
  xco : float;             (** control-oxide thickness [m] *)
  eps_r : float;           (** oxide relative permittivity *)
  overlap : float;         (** source/drain underlap beneath the FG [m] *)
  fringe_factor : float;   (** sidewall fringing multiplier for CFS/CFD *)
  wrap_factor : float;     (** control-gate area multiplier from wrapping the
                               FG sidewalls (ONO-style); how real cells reach
                               GCR ≈ 0.6 despite the thinner tunnel oxide *)
}

val paper_layout : t
(** 32 nm × 32 nm gate, 5/10 nm oxides, 4 nm overlaps, 3.5× control-gate
    wrap, SiO₂ — chosen so the derived GCR lands near the paper's 0.6. *)

val capacitances : t -> Capacitance.t
(** The derived network: CFC from the full gate plate through the control
    oxide; CFB from the non-overlapped channel region through the tunnel
    oxide; CFS/CFD from the overlap regions (with fringing).
    @raise Invalid_argument when the overlaps exceed half the gate
    length. *)

val gcr : t -> float
(** Gate-coupling ratio of the derived network. *)

val device : ?vs:float -> t -> Fgt.t
(** A full {!Fgt.t} built from the layout (same FN interfaces as
    {!Fgt.paper_default}). *)

val gcr_vs_control_oxide : t -> xco_nm:float array -> (float * float) array
(** [(XCO in nm, GCR)] sweep — how the designer actually tunes GCR. *)
