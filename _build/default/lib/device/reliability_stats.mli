(** Statistical oxide reliability: charge-to-breakdown is Weibull
    distributed across a cell population; this module samples Q_BD
    ensembles (deterministic seed) and extracts the Weibull parameters
    from the classic [ln(−ln(1−F))] vs [ln Q] plot — the analysis behind
    every oxide-reliability qualification. *)

type weibull = {
  beta : float;    (** shape (slope) — intrinsic oxides: β ≈ 1.5–3 *)
  eta : float;     (** scale (63.2 % quantile) [C/m²] *)
}

val sample :
  ?seed:int -> weibull -> n:int -> float array
(** [n] Q_BD draws by inverse-CDF sampling,
    [Q = η·(−ln(1−U))^{1/β}]. @raise Invalid_argument for non-positive
    parameters or [n < 1]. *)

val fit : float array -> (weibull * float, string) result
(** Weibull fit of a sample by median-rank regression on the Weibull plot;
    returns the parameters and the plot's R². Needs ≥ 3 points. *)

val quantile : weibull -> f:float -> float
(** The Q_BD below which a fraction [f] of devices fail.
    @raise Invalid_argument for [f] outside (0, 1). *)

val failure_fraction : weibull -> q:float -> float
(** CDF: fraction failed by fluence [q]. *)

val population_endurance :
  ?seed:int -> weibull -> charge_per_cycle_per_area:float -> n:int ->
  ppm_target:float -> float
(** Cycle count at which the failed fraction reaches [ppm_target] (parts
    per million) for a population of [n] sampled cells at a constant
    per-cycle areal fluence — the qualification number (e.g. "10 k cycles
    at < 100 ppm"). *)
