module C = Gnrflash_physics.Constants

type t = {
  cfc : float;
  cfs : float;
  cfb : float;
  cfd : float;
}

let make ~cfc ~cfs ~cfb ~cfd =
  if cfc < 0. || cfs < 0. || cfb < 0. || cfd < 0. then
    invalid_arg "Capacitance.make: negative component";
  if cfc +. cfs +. cfb +. cfd <= 0. then invalid_arg "Capacitance.make: zero total";
  { cfc; cfs; cfb; cfd }

let total t = t.cfc +. t.cfs +. t.cfb +. t.cfd

let gcr t = t.cfc /. total t

let of_gcr ~gcr ~cfc =
  if gcr <= 0. || gcr > 1. then invalid_arg "Capacitance.of_gcr: gcr out of (0, 1]";
  if cfc <= 0. then invalid_arg "Capacitance.of_gcr: cfc <= 0";
  let rest = cfc *. ((1. /. gcr) -. 1.) in
  make ~cfc ~cfs:(0.25 *. rest) ~cfb:(0.5 *. rest) ~cfd:(0.25 *. rest)

let parallel_plate ~eps_r ~area ~thickness =
  if thickness <= 0. then invalid_arg "Capacitance.parallel_plate: thickness <= 0";
  if area <= 0. then invalid_arg "Capacitance.parallel_plate: area <= 0";
  C.eps0 *. eps_r *. area /. thickness

let with_quantum_capacitance t ~cq =
  if cq <= 0. then invalid_arg "Capacitance.with_quantum_capacitance: cq <= 0";
  { t with cfc = t.cfc *. cq /. (t.cfc +. cq) }
