(** Tunnel-oxide wear — the reliability concern the paper's conclusion
    raises ("higher tunneling current will severely damage the oxide's
    reliability").

    Phenomenology: every coulomb of Fowler–Nordheim charge fluence through
    the oxide generates traps; breakdown occurs at a charge-to-breakdown
    [Q_BD] that shrinks exponentially with the oxide field (the E-model),
    and accumulated traps shift the neutral threshold and accelerate
    leakage. *)

type model = {
  qbd0 : float;        (** charge-to-breakdown extrapolated to zero field [C/m²] *)
  e0 : float;          (** field-acceleration constant [V/m] *)
  trap_per_charge : float; (** generated traps per injected electron *)
  dvt_per_trap : float;    (** threshold drift per areal trap density [V·m²] *)
}

val default : model
(** SiO₂-like numbers: [Q_BD] ≈ 10⁶ C/m² at 8 MV/cm falling ~10× per
    2 MV/cm; 10⁻⁵ traps per electron. *)

type wear = {
  fluence : float;       (** cumulative injected charge [C/m²] *)
  traps : float;         (** areal trap density [1/m²] *)
  cycles : int;          (** completed P/E cycles *)
  broken : bool;         (** oxide has reached Q_BD *)
}

val fresh : wear
(** Zero wear. *)

val qbd : model -> field:float -> float
(** Charge-to-breakdown at the given oxide field [C/m²]. *)

val after_pulse : model -> wear -> injected:float -> area:float -> field:float -> wear
(** Update wear with one pulse's injected charge (C, over the given cell
    area) at the given peak oxide field. *)

val vt_drift : model -> wear -> float
(** Neutral-threshold drift caused by trapped charge [V]. *)

val endurance_cycles : model -> charge_per_cycle:float -> area:float -> field:float -> float
(** Predicted number of P/E cycles before breakdown at a constant
    per-cycle fluence. *)
