(** Charge retention: with all terminals grounded the stored electrons leak
    back through the tunnel oxide by direct tunneling under the small
    self-induced field [VFG = QFG/CT]. Because the leakage spans many
    decades of time, integration proceeds on an exponentially growing time
    grid (quasi-static forward Euler, refined per decade). *)

type sample = {
  time : float;    (** s *)
  qfg : float;     (** remaining charge [C] *)
  dvt : float;     (** remaining threshold shift [V] *)
}

val simulate :
  ?points_per_decade:int -> ?temp:float ->
  Fgt.t -> qfg0:float -> t_start:float -> t_end:float -> sample array
(** Leakage trajectory from [t_start] to [t_end] seconds (log-spaced,
    default 16 points per decade). [qfg0] must be the programmed (negative)
    charge; [temp] scales an Arrhenius acceleration factor
    (activation 0.3 eV) applied to the leakage current, normalized to
    300 K. @raise Invalid_argument on non-negative [qfg0] or a bad time
    range. *)

val charge_loss_percent : Fgt.t -> qfg0:float -> after:float -> float
(** Percentage of stored charge lost after [after] seconds at 300 K. *)

val ten_year_retention : Fgt.t -> qfg0:float -> bool
(** The usual spec: still holding ≥ 80 % of the charge after 10 years. *)

val retention_time : ?temp:float -> Fgt.t -> qfg0:float -> criterion:float -> float
(** First time (s) at which the remaining charge fraction drops below
    [criterion] (e.g. 0.8); [infinity] if it never does within 100 years. *)
