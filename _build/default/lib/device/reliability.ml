type model = {
  qbd0 : float;
  e0 : float;
  trap_per_charge : float;
  dvt_per_trap : float;
}

(* Calibration: qbd(10 MV/cm) = 1e6 C/m^2 (100 C/cm^2-class intrinsic
   oxide), falling one decade per 2.5 MV/cm — which puts the paper's
   18 MV/cm programming condition at ~6e2 C/m^2, i.e. the textbook
   1e4-1e5 P/E cycles for a flash tunnel oxide. *)
let default =
  {
    qbd0 = 1e6 *. exp (1e9 /. (2.5e8 /. log 10.));
    e0 = 2.5e8 /. log 10.;
    trap_per_charge = 1e-5;
    dvt_per_trap = 1e-18 (* 1 V per 1e18 traps/m^2 *);
  }

type wear = {
  fluence : float;
  traps : float;
  cycles : int;
  broken : bool;
}

let fresh = { fluence = 0.; traps = 0.; cycles = 0; broken = false }

let qbd m ~field =
  if field <= 0. then invalid_arg "Reliability.qbd: field <= 0";
  m.qbd0 *. exp (-.field /. m.e0)

let after_pulse m w ~injected ~area ~field =
  if injected < 0. || area <= 0. then invalid_arg "Reliability.after_pulse: bad arguments";
  let fluence = w.fluence +. (injected /. area) in
  let electrons_per_area = injected /. area /. Gnrflash_physics.Constants.q in
  let traps = w.traps +. (m.trap_per_charge *. electrons_per_area) in
  let broken = w.broken || fluence >= qbd m ~field in
  { fluence; traps; cycles = w.cycles + 1; broken }

let vt_drift m w = m.dvt_per_trap *. w.traps

let endurance_cycles m ~charge_per_cycle ~area ~field =
  if charge_per_cycle <= 0. then invalid_arg "Reliability.endurance_cycles: charge <= 0";
  qbd m ~field /. (charge_per_cycle /. area)
