type t = {
  gate_length : float;
  gate_width : float;
  xto : float;
  xco : float;
  eps_r : float;
  overlap : float;
  fringe_factor : float;
  wrap_factor : float;
}

let paper_layout =
  {
    gate_length = 32e-9;
    gate_width = 32e-9;
    xto = 5e-9;
    xco = 10e-9;
    eps_r = 3.9;
    overlap = 4e-9;
    fringe_factor = 1.5;
    wrap_factor = 3.5;
  }

let capacitances l =
  if l.overlap *. 2. >= l.gate_length then
    invalid_arg "Layout.capacitances: overlaps exceed the gate";
  if l.gate_length <= 0. || l.gate_width <= 0. then
    invalid_arg "Layout.capacitances: non-positive dimensions";
  let plate ~area ~thickness =
    Capacitance.parallel_plate ~eps_r:l.eps_r ~area ~thickness
  in
  let gate_area = l.gate_length *. l.gate_width in
  let overlap_area = l.overlap *. l.gate_width in
  let body_area = (l.gate_length -. (2. *. l.overlap)) *. l.gate_width in
  let cfc = l.wrap_factor *. plate ~area:gate_area ~thickness:l.xco in
  let cfb = plate ~area:body_area ~thickness:l.xto in
  let cfs = l.fringe_factor *. plate ~area:overlap_area ~thickness:l.xto in
  let cfd = cfs in
  Capacitance.make ~cfc ~cfs ~cfb ~cfd

let gcr l = Capacitance.gcr (capacitances l)

let device ?(vs = 0.) l =
  let caps = capacitances l in
  let base = Fgt.make ~vs ~gcr:(Capacitance.gcr caps) ~xto:l.xto ~xco:l.xco
      ~area:(l.gate_length *. l.gate_width) () in
  (* replace the synthesized network with the layout-derived one *)
  { base with Fgt.caps }

let gcr_vs_control_oxide l ~xco_nm =
  Array.map
    (fun nm ->
       let l' = { l with xco = nm *. 1e-9 } in
       (nm, gcr l'))
    xco_nm
