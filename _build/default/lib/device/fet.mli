(** Compact I–V model of the MLGNR-channel read transistor — a
    virtual-source / top-of-the-barrier hybrid: exponential subthreshold
    conduction below VT, Landauer-limited saturation above it, with a
    smooth transition. Produces the ID–VG transfer curves whose lateral
    shift by ΔVT is how the stored state is actually sensed. *)

type params = {
  vt0 : float;           (** neutral threshold [V] *)
  ss_mv_dec : float;     (** subthreshold swing [mV/decade], ≥ 60 at 300 K *)
  i_off : float;         (** leakage floor at VGS = VT − 10·SS [A] *)
  g_on : float;          (** on-state transconductance-limited conductance [S] *)
  v_sat : float;         (** drain saturation voltage scale [V] *)
}

val of_channel :
  ?vt0:float -> Gnrflash_materials.Mlgnr.t -> params
(** Derive the on-conductance from the MLGNR stack's Landauer limit
    (channels at EF ≈ 1 eV) and use a near-ideal 70 mV/dec swing. *)

val default : params
(** {!of_channel} on the 3-layer 12-AGNR stack, VT0 = 1 V. *)

val drain_current : params -> vgs:float -> vds:float -> float
(** ID(VGS, VDS) ≥ 0: subthreshold exponential for [vgs < vt], saturating
    linear conduction above, continuous at the joint. *)

val transfer_curve :
  params -> dvt:float -> vds:float -> vgs:float array -> (float * float) array
(** ID–VG points for a cell whose threshold is shifted by [dvt] — the
    programmed/erased pair of these curves is the read window. *)

val read_window :
  params -> dvt_programmed:float -> vread:float -> vds:float -> float
(** On/off current ratio between erased and programmed states at the read
    point (clamped to the leakage floor). *)

val subthreshold_swing : params -> vds:float -> float
(** Numerically extracted swing [mV/dec] a few decades below the on-state
    joint — tests pin it to the configured value. *)
