module Dt = Gnrflash_quantum.Direct_tunneling
module C = Gnrflash_physics.Constants

type sample = {
  time : float;
  qfg : float;
  dvt : float;
}

(* Leakage current density for stored charge q: the floating gate sits at
   VFG = q/CT (negative for electrons), pushing electrons back to the
   channel through the tunnel oxide. *)
let leakage_j (t : Fgt.t) ~temp ~qfg =
  let vfg = Fgt.vfg t ~vgs:0. ~qfg in
  let v_ox = -.vfg in
  if v_ox <= 0. then 0.
  else begin
    let j = Dt.current_density t.Fgt.tunnel_fn ~v_ox ~thickness:t.Fgt.xto in
    (* Arrhenius acceleration around room temperature, Ea = 0.3 eV --
       phenomenological trap-assisted component. *)
    let ea = 0.3 *. C.ev in
    let accel = exp (ea /. C.k_b *. ((1. /. 300.) -. (1. /. temp))) in
    j *. accel
  end

let simulate ?(points_per_decade = 16) ?(temp = 300.) t ~qfg0 ~t_start ~t_end =
  if qfg0 >= 0. then invalid_arg "Retention.simulate: qfg0 must be negative (programmed)";
  if t_start <= 0. || t_end <= t_start then invalid_arg "Retention.simulate: bad time range";
  let decades = log10 (t_end /. t_start) in
  let n = max 2 (int_of_float (ceil (decades *. float_of_int points_per_decade))) in
  let times = Gnrflash_numerics.Grid.geomspace t_start t_end n in
  let q = ref qfg0 in
  let prev_t = ref 0. in
  Array.map
    (fun time ->
       (* quasi-static step: charge loss = J * area * dt, with dt split if
          the step would remove more than 5% of the charge *)
       let dt_total = time -. !prev_t in
       let remaining = ref dt_total in
       while !remaining > 0. && !q < 0. do
         let j = leakage_j t ~temp ~qfg:!q in
         let dq_rate = j *. t.Fgt.area in
         if dq_rate <= 0. then remaining := 0.
         else begin
           let max_step = 0.05 *. abs_float !q /. dq_rate in
           let step = min !remaining max_step in
           q := min 0. (!q +. (dq_rate *. step));
           remaining := !remaining -. step
         end
       done;
       prev_t := time;
       { time; qfg = !q; dvt = Fgt.threshold_shift t ~qfg:!q })
    times

let charge_loss_percent t ~qfg0 ~after =
  let samples = simulate t ~qfg0 ~t_start:1e-3 ~t_end:after in
  let final = samples.(Array.length samples - 1) in
  100. *. (1. -. (final.qfg /. qfg0))

let ten_year_retention t ~qfg0 =
  charge_loss_percent t ~qfg0 ~after:(Gnrflash_physics.Units.years 10.) <= 20.

let retention_time ?(temp = 300.) t ~qfg0 ~criterion =
  if criterion <= 0. || criterion >= 1. then
    invalid_arg "Retention.retention_time: criterion out of (0, 1)";
  let horizon = Gnrflash_physics.Units.years 100. in
  let samples = simulate ~temp t ~qfg0 ~t_start:1e-3 ~t_end:horizon in
  let hit =
    Array.fold_left
      (fun acc s ->
         match acc with
         | Some _ -> acc
         | None -> if s.qfg /. qfg0 < criterion then Some s.time else None)
      None samples
  in
  match hit with Some t' -> t' | None -> infinity
