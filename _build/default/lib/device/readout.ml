module Mlgnr = Gnrflash_materials.Mlgnr
module Gnr = Gnrflash_materials.Gnr

type config = {
  vt0 : float;
  vread : float;
  vds : float;
  channel : Mlgnr.t;
  temp : float;
}

let default =
  {
    vt0 = 1.0;
    vread = 3.0;
    vds = 0.05;
    channel = Mlgnr.make (Gnr.make Gnr.Armchair 12) ~layers:3;
    temp = 300.;
  }

let threshold_voltage config t ~qfg = config.vt0 +. Fgt.threshold_shift t ~qfg

let is_programmed config t ~qfg = threshold_voltage config t ~qfg > config.vread

let read_current config t ~qfg =
  let vt = threshold_voltage config t ~qfg in
  let overdrive = config.vread -. vt in
  if overdrive <= 0. then 0.
  else begin
    (* gate overdrive moves the channel Fermi level through the coupling
       ratio; a simple linear map suffices for the on-state conductance *)
    let ef_ev = Fgt.gcr t *. overdrive in
    let g = Mlgnr.sheet_conductance config.channel ~ef_ev in
    g *. config.vds
  end

let read_window config t ~qfg_programmed =
  let on = read_current config t ~qfg:0. in
  let off = read_current config t ~qfg:qfg_programmed in
  on /. max off 1e-15
