(** Dickson charge pump — the on-chip high-voltage generator that produces
    the 15–20 V programming bias from the chip supply (the SoC integration
    cost of FN programming the paper's venue cares about).

    Ideal-switch model with per-stage capacitor [c_stage], clock frequency
    [f_clk], diode drop [v_d] and load current [i_load]:
    [V_out = V_dd + N·(V_dd − V_d − I_load/(f·C)) − V_d]. *)

type t = {
  v_dd : float;       (** supply voltage [V] *)
  v_diode : float;    (** per-stage diode/switch drop [V] *)
  c_stage : float;    (** per-stage pump capacitance [F] *)
  f_clk : float;      (** pump clock [Hz] *)
  stages : int;
}

val make :
  ?v_diode:float -> ?c_stage:float -> ?f_clk:float ->
  v_dd:float -> stages:int -> unit -> t
(** Defaults: 0.3 V drop, 1 pF stages, 20 MHz clock.
    @raise Invalid_argument for non-positive parameters. *)

val output_voltage : t -> i_load:float -> float
(** Open-circuit-to-loaded output voltage at the given DC load. *)

val stages_for : ?margin:float -> t -> v_target:float -> i_load:float -> int
(** Minimum stage count reaching [v_target·(1+margin)] (margin default
    0.05) at the load, using the same per-stage parameters.
    @raise Invalid_argument if unreachable (per-stage gain <= 0). *)

val efficiency : t -> i_load:float -> float
(** Power efficiency [P_out/P_in]: ideal Dickson input current is
    [(N+1)·I_load] from [V_dd] (plus nothing else in this lossless-clock
    model), so η = V_out/((N+1)·V_dd). In (0, 1]. *)

val energy_per_program :
  t -> i_load:float -> pulse_width:float -> float
(** Energy drawn from the supply for one programming pulse [J]. *)

val ramp_time : t -> load_capacitance:float -> v_target:float -> float
(** Time to charge a capacitive load to [v_target] with the pump's output
    current capability [f·C·(V_dd − V_d)] per stage-step (single-slope
    estimate). *)
