module Mlgnr = Gnrflash_materials.Mlgnr

type params = {
  vt0 : float;
  ss_mv_dec : float;
  i_off : float;
  g_on : float;
  v_sat : float;
}

let of_channel ?(vt0 = 1.0) stack =
  (* on-state Fermi level ~1 eV above midgap: enough to open the first
     subband of a ~1.6 eV-gap ribbon in every layer *)
  let g = Mlgnr.sheet_conductance stack ~ef_ev:1.0 in
  {
    vt0;
    ss_mv_dec = 70.;
    i_off = 1e-12;
    g_on = g;
    v_sat = 0.3;
  }

let default =
  of_channel (Mlgnr.make (Gnrflash_materials.Gnr.make Gnrflash_materials.Gnr.Armchair 12)
                ~layers:3)

(* Drain-side saturation factor: linear for small VDS, saturating at
   v_sat. *)
let drain_factor p ~vds = p.v_sat *. (1. -. exp (-.vds /. p.v_sat))

let drain_current p ~vgs ~vds =
  if vds <= 0. then 0.
  else begin
    let overdrive = vgs -. p.vt0 in
    let df = drain_factor p ~vds in
    (* above-threshold current at the band edge, used as the subthreshold
       matching point so the curve is continuous at VGS = VT *)
    let on_current ov = p.g_on *. ov *. df /. p.v_sat in
    if overdrive >= p.v_sat then on_current overdrive
    else begin
      (* at the joint (ov = v_sat) the current is g_on * df; below it decay
         exponentially with the configured swing *)
      let joint = on_current p.v_sat in
      let decades = (overdrive -. p.v_sat) /. (p.ss_mv_dec /. 1e3) in
      let sub = joint *. (10. ** decades) in
      max sub p.i_off
    end
  end

let transfer_curve p ~dvt ~vds ~vgs:vgs_grid =
  let shifted = { p with vt0 = p.vt0 +. dvt } in
  Array.map (fun vgs -> (vgs, drain_current shifted ~vgs ~vds)) vgs_grid

let read_window p ~dvt_programmed ~vread ~vds =
  let erased = drain_current p ~vgs:vread ~vds in
  let programmed =
    drain_current { p with vt0 = p.vt0 +. dvt_programmed } ~vgs:vread ~vds
  in
  erased /. max programmed p.i_off

let subthreshold_swing p ~vds =
  (* probe a few decades below the on-state joint, safely above the
     leakage floor *)
  let vg0 = p.vt0 +. p.v_sat -. 0.25 in
  let dv = 0.01 in
  let i1 = drain_current p ~vgs:vg0 ~vds in
  let i2 = drain_current p ~vgs:(vg0 +. dv) ~vds in
  dv /. (log10 i2 -. log10 i1) *. 1e3
