(** Self-consistent quantum-capacitance transient: a nanoscale MLGNR
    floating gate has a finite density of states, so every stored electron
    also lifts the gate's Fermi level — an extra voltage term
    [ΔE_F(σ)/q] that a metal floating gate does not have. This module
    re-runs the programming transient with that band-filling feedback and
    quantifies how much it slows charging and shrinks the stored window
    (the dynamic version of extension experiment Ext E). *)

type result = {
  qfg_final : float;          (** stored charge with feedback [C] *)
  qfg_final_metal : float;    (** reference metal-gate (eq-3) result [C] *)
  dvt_final : float;          (** threshold shift with feedback [V] *)
  dvt_final_metal : float;
  window_shrink : float;      (** 1 − dvt/dvt_metal, ≥ 0 for electron storage *)
  ef_final_ev : float;        (** floating-gate Fermi shift at the end [eV] *)
}

val fermi_shift :
  stack:Gnrflash_materials.Mlgnr.t -> area:float -> qfg:float -> float
(** Fermi-level rise [J] of the stack holding charge [qfg] (negative =
    electrons), by inverting the stack's charge-vs-EF relation. [0.] for
    non-negative charge (hole filling treated symmetrically). *)

val vfg_effective :
  Fgt.t -> stack:Gnrflash_materials.Mlgnr.t -> vgs:float -> qfg:float -> float
(** Equation (3) corrected by the band-filling term:
    [VFG_geom − sign(σ)·ΔE_F/q] — stored electrons make the gate look less
    negative to further injection. *)

val run :
  ?stack:Gnrflash_materials.Mlgnr.t ->
  Fgt.t -> vgs:float -> duration:float -> (result, string) Stdlib.result
(** Integrate the charge balance with the feedback (forward stepping with
    adaptive sub-steps) and compare against the metal-gate reference.
    Defaults to a 3-layer 12-AGNR stack. *)
