type t = {
  v_dd : float;
  v_diode : float;
  c_stage : float;
  f_clk : float;
  stages : int;
}

let make ?(v_diode = 0.3) ?(c_stage = 1e-12) ?(f_clk = 20e6) ~v_dd ~stages () =
  if v_dd <= 0. || c_stage <= 0. || f_clk <= 0. || stages < 1 || v_diode < 0. then
    invalid_arg "Charge_pump.make: non-positive parameter";
  { v_dd; v_diode; c_stage; f_clk; stages }

let per_stage_gain t ~i_load =
  t.v_dd -. t.v_diode -. (i_load /. (t.f_clk *. t.c_stage))

let output_voltage t ~i_load =
  if i_load < 0. then invalid_arg "Charge_pump.output_voltage: negative load";
  t.v_dd +. (float_of_int t.stages *. per_stage_gain t ~i_load) -. t.v_diode

let stages_for ?(margin = 0.05) t ~v_target ~i_load =
  let gain = per_stage_gain t ~i_load in
  if gain <= 0. then invalid_arg "Charge_pump.stages_for: pump cannot source this load";
  let needed = (v_target *. (1. +. margin)) -. t.v_dd +. t.v_diode in
  max 1 (int_of_float (ceil (needed /. gain)))

let efficiency t ~i_load =
  let v_out = output_voltage t ~i_load in
  let eta = v_out /. (float_of_int (t.stages + 1) *. t.v_dd) in
  if eta <= 0. then 0. else min eta 1.

let energy_per_program t ~i_load ~pulse_width =
  if pulse_width < 0. then invalid_arg "Charge_pump.energy_per_program: negative width";
  (* supply delivers (N+1) * I_load at V_dd for the pulse duration *)
  float_of_int (t.stages + 1) *. i_load *. t.v_dd *. pulse_width

let ramp_time t ~load_capacitance ~v_target =
  if load_capacitance <= 0. || v_target <= 0. then
    invalid_arg "Charge_pump.ramp_time: non-positive argument";
  let i_avail = t.f_clk *. t.c_stage *. (t.v_dd -. t.v_diode) in
  load_capacitance *. v_target /. i_avail
