lib/device/fet.ml: Array Gnrflash_materials
