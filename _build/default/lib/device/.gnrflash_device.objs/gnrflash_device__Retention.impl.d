lib/device/retention.ml: Array Fgt Gnrflash_numerics Gnrflash_physics Gnrflash_quantum
