lib/device/electrostatics.ml: Array Fgt Gnrflash_numerics Gnrflash_physics
