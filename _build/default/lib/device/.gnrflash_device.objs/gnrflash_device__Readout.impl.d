lib/device/readout.ml: Fgt Gnrflash_materials
