lib/device/program_erase.ml: Gnrflash_telemetry Transient
