lib/device/program_erase.ml: Transient
