lib/device/disturb.ml: Fgt Transient
