lib/device/transient.ml: Array Fgt Gnrflash_numerics Gnrflash_telemetry
