lib/device/capacitance.ml: Gnrflash_physics
