lib/device/fet.mli: Gnrflash_materials
