lib/device/layout.mli: Capacitance Fgt
