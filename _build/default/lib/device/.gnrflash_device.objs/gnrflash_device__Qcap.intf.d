lib/device/qcap.mli: Fgt Gnrflash_materials Stdlib
