lib/device/reliability_stats.mli:
