lib/device/fgt.ml: Capacitance Gnrflash_materials Gnrflash_quantum
