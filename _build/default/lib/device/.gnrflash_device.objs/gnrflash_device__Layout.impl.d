lib/device/layout.ml: Array Capacitance Fgt
