lib/device/transient.mli: Fgt Stdlib
