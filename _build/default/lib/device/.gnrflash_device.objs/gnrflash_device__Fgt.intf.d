lib/device/fgt.mli: Capacitance Gnrflash_materials Gnrflash_quantum
