lib/device/ispp.mli: Fgt Stdlib
