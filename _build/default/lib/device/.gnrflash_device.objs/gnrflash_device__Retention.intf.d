lib/device/retention.mli: Fgt
