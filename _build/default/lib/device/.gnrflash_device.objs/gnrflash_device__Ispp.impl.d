lib/device/ispp.ml: List Program_erase
