lib/device/reliability_stats.ml: Array Gnrflash_numerics Random
