lib/device/charge_pump.mli:
