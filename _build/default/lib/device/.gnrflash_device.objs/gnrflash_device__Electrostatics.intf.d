lib/device/electrostatics.mli: Fgt
