lib/device/disturb.mli: Fgt
