lib/device/capacitance.mli:
