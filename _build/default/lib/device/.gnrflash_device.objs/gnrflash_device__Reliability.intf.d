lib/device/reliability.mli:
