lib/device/readout.mli: Fgt Gnrflash_materials
