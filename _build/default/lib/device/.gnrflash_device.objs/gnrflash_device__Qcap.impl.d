lib/device/qcap.ml: Fgt Gnrflash_materials Gnrflash_numerics Gnrflash_physics Gnrflash_quantum Transient
