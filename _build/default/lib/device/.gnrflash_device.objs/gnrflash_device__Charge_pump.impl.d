lib/device/charge_pump.ml:
