lib/device/variation.ml: Array Fgt Float Gnrflash_numerics Gnrflash_quantum List Random Transient
