lib/device/program_erase.mli: Fgt
