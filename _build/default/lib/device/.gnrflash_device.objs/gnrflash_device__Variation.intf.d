lib/device/variation.mli: Fgt
