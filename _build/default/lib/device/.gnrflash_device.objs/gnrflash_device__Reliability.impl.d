lib/device/reliability.ml: Gnrflash_physics
