(** Read operation: the stored charge shifts the threshold seen from the
    control gate; the MLGNR channel conducts in the Landauer picture when
    the gate overdrive opens channels. *)

type config = {
  vt0 : float;         (** neutral (uncharged) threshold voltage [V] *)
  vread : float;       (** control-gate read bias [V] *)
  vds : float;         (** drain read bias [V] — the paper's 50 mV *)
  channel : Gnrflash_materials.Mlgnr.t;  (** MLGNR channel stack *)
  temp : float;        (** K *)
}

val default : config
(** VT0 = 1 V, VREAD = 3 V, VDS = 50 mV, 3-layer 12-AGNR channel, 300 K. *)

val threshold_voltage : config -> Fgt.t -> qfg:float -> float
(** [vt0 + ΔVT(qfg)]. *)

val is_programmed : config -> Fgt.t -> qfg:float -> bool
(** True when the shifted threshold exceeds the read bias — the cell reads
    as logic '0' (paper convention: programmed = electrons on FG = '0'). *)

val read_current : config -> Fgt.t -> qfg:float -> float
(** Drain current [A] at the read point: 0 when the cell is cut off;
    otherwise [G_sheet·(W/L ≡ 1)·vds] with the Landauer sheet conductance
    of the MLGNR stack evaluated at a Fermi level proportional to the gate
    overdrive. *)

val read_window : config -> Fgt.t -> qfg_programmed:float -> float
(** Current ratio (erased / programmed, with programmed clamped to 1 fA)
    — the sensing margin. *)
