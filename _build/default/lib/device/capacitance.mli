(** The floating-gate capacitance network of paper equation (2):
    [CT = CFC + CFS + CFB + CFD] and the gate-coupling ratio
    [GCR = CFC / CT]. All capacitances in farads (per cell). *)

type t = {
  cfc : float;  (** floating gate ↔ control gate *)
  cfs : float;  (** floating gate ↔ source *)
  cfb : float;  (** floating gate ↔ body *)
  cfd : float;  (** floating gate ↔ drain *)
}

val make : cfc:float -> cfs:float -> cfb:float -> cfd:float -> t
(** Build a network. @raise Invalid_argument on a negative component or a
    zero total. *)

val total : t -> float
(** Equation (2). *)

val gcr : t -> float
(** Gate-coupling ratio [CFC/CT], in (0, 1]. *)

val of_gcr : gcr:float -> cfc:float -> t
(** Synthesize a network with the given [gcr] and control capacitance: the
    remaining capacitance [cfc·(1/gcr − 1)] is split between source, body
    and drain in the conventional 25/50/25 proportion. The split does not
    affect any paper quantity (only CT and CFC enter equations (2)–(3));
    it is recorded for completeness.
    @raise Invalid_argument unless [0 < gcr <= 1] and [cfc > 0]. *)

val parallel_plate : eps_r:float -> area:float -> thickness:float -> float
(** [ε₀·εᵣ·A/t] — helper to derive components from geometry. *)

val with_quantum_capacitance : t -> cq:float -> t
(** Ext E: the MLGNR floating gate's quantum capacitance [cq] (farads) in
    series with the control-gate coupling — returns a network whose [cfc]
    is [cfc·cq/(cfc + cq)], lowering the effective GCR. *)
