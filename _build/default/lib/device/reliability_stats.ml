module Reg = Gnrflash_numerics.Regression

type weibull = {
  beta : float;
  eta : float;
}

let sample ?(seed = 7) w ~n =
  if w.beta <= 0. || w.eta <= 0. then invalid_arg "Reliability_stats.sample: bad weibull";
  if n < 1 then invalid_arg "Reliability_stats.sample: n < 1";
  let state = Random.State.make [| seed |] in
  Array.init n (fun _ ->
      let u = Random.State.float state 1. in
      let u = min (max u 1e-12) (1. -. 1e-12) in
      w.eta *. ((-.log (1. -. u)) ** (1. /. w.beta)))

let fit qs =
  let n = Array.length qs in
  if n < 3 then Error "Reliability_stats.fit: need >= 3 points"
  else begin
    let sorted = Array.copy qs in
    Array.sort compare sorted;
    if sorted.(0) <= 0. then Error "Reliability_stats.fit: non-positive Q_BD"
    else begin
      (* median ranks (Bernard's approximation) *)
      let xs = Array.map log sorted in
      let ys =
        Array.init n (fun i ->
            let f = (float_of_int (i + 1) -. 0.3) /. (float_of_int n +. 0.4) in
            log (-.log (1. -. f)))
      in
      match Reg.ols xs ys with
      | Error e -> Error e
      | Ok r ->
        let beta = r.Reg.slope in
        let eta = exp (-.r.Reg.intercept /. beta) in
        Ok ({ beta; eta }, r.Reg.r_squared)
    end
  end

let quantile w ~f =
  if f <= 0. || f >= 1. then invalid_arg "Reliability_stats.quantile: f out of (0, 1)";
  w.eta *. ((-.log (1. -. f)) ** (1. /. w.beta))

let failure_fraction w ~q =
  if q <= 0. then 0. else 1. -. exp (-.((q /. w.eta) ** w.beta))

let population_endurance ?seed w ~charge_per_cycle_per_area ~n ~ppm_target =
  if charge_per_cycle_per_area <= 0. then
    invalid_arg "Reliability_stats.population_endurance: non-positive fluence";
  if ppm_target <= 0. then
    invalid_arg "Reliability_stats.population_endurance: non-positive target";
  let qbds = sample ?seed w ~n in
  Array.sort compare qbds;
  (* the ppm-th weakest device sets the qualification point *)
  let rank = max 0 (int_of_float (ppm_target /. 1e6 *. float_of_int n) - 1) in
  let rank = min rank (n - 1) in
  qbds.(rank) /. charge_per_cycle_per_area
