module Stats = Gnrflash_numerics.Stats

type spread = {
  sigma_xto : float;
  sigma_phi : float;
  sigma_gcr : float;
}

let default_spread = { sigma_xto = 0.1e-9; sigma_phi = 0.05; sigma_gcr = 0.01 }

type sample = {
  xto : float;
  phi_b_ev : float;
  gcr : float;
  program_time : float;
  dvt_fixed_pulse : float;
}

let gaussian state =
  (* Box-Muller *)
  let u1 = Random.State.float state 1. in
  let u2 = Random.State.float state 1. in
  sqrt (-2. *. log (max u1 1e-300)) *. cos (2. *. Float.pi *. u2)

let perturbed_device ~base ~spread state =
  let base_fn = base.Fgt.tunnel_fn in
  let xto = max 1e-9 (base.Fgt.xto +. (spread.sigma_xto *. gaussian state)) in
  let phi =
    max 1. (base_fn.Gnrflash_quantum.Fn.phi_b_ev +. (spread.sigma_phi *. gaussian state))
  in
  let gcr =
    min 0.95 (max 0.05 (Fgt.gcr base +. (spread.sigma_gcr *. gaussian state)))
  in
  let fn =
    Gnrflash_quantum.Fn.coefficients ~phi_b_ev:phi
      ~m_ox_rel:base_fn.Gnrflash_quantum.Fn.m_ox_rel
  in
  let t = Fgt.with_xto (Fgt.with_gcr base gcr) xto in
  ({ t with Fgt.tunnel_fn = fn; control_fn = fn }, xto, phi, gcr)

let evaluate device =
  let program_time =
    match Transient.time_to_threshold_shift device ~vgs:15. ~dvt:2. ~max_time:1. with
    | Ok (Some t) -> t
    | Ok None | Error _ -> infinity
  in
  let dvt_fixed_pulse =
    match Transient.run device ~vgs:15. ~duration:100e-9 with
    | Ok r -> r.Transient.dvt_final
    | Error _ -> nan
  in
  (program_time, dvt_fixed_pulse)

let sample_devices ?(spread = default_spread) ?(seed = 2014) ~base ~n () =
  if n < 1 then invalid_arg "Variation.sample_devices: n < 1";
  let state = Random.State.make [| seed |] in
  Array.init n (fun _ ->
      let device, xto, phi_b_ev, gcr = perturbed_device ~base ~spread state in
      let program_time, dvt_fixed_pulse = evaluate device in
      { xto; phi_b_ev; gcr; program_time; dvt_fixed_pulse })

type summary = {
  n : int;
  t_prog_median : float;
  t_prog_p95 : float;
  t_prog_spread : float;
  dvt_mean : float;
  dvt_sigma : float;
}

let summarize samples =
  let times =
    Array.of_list
      (List.filter_map
         (fun s -> if Float.is_finite s.program_time then Some s.program_time else None)
         (Array.to_list samples))
  in
  if Array.length times = 0 then invalid_arg "Variation.summarize: no successful samples";
  let dvts =
    Array.of_list
      (List.filter_map
         (fun s -> if Float.is_nan s.dvt_fixed_pulse then None else Some s.dvt_fixed_pulse)
         (Array.to_list samples))
  in
  {
    n = Array.length samples;
    t_prog_median = Stats.median times;
    t_prog_p95 = Stats.percentile 95. times;
    t_prog_spread = Stats.percentile 95. times /. Stats.percentile 5. times;
    dvt_mean = Stats.mean dvts;
    dvt_sigma = Stats.std dvts;
  }

let sensitivity_xto ?(delta = 0.05e-9) base =
  let time xto =
    let t = Fgt.with_xto base xto in
    match Transient.time_to_threshold_shift t ~vgs:15. ~dvt:2. ~max_time:10. with
    | Ok (Some time) -> time
    | Ok None | Error _ -> nan
  in
  let t_plus = time (base.Fgt.xto +. delta) in
  let t_minus = time (base.Fgt.xto -. delta) in
  (log10 t_plus -. log10 t_minus) /. (2. *. delta *. 1e9)
