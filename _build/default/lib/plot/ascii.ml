let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 72) ?(height = 22) (fig : Figure.t) =
  let xscale, yscale = Figure.scales fig in
  let canvas = Array.make_matrix height width ' ' in
  let plot_series idx (s : Series.t) =
    let glyph = glyphs.(idx mod Array.length glyphs) in
    let pts = s.Series.points in
    let n = Array.length pts in
    (* draw line segments between consecutive points with dense sampling *)
    for i = 0 to n - 1 do
      let x, y = pts.(i) in
      let cx = int_of_float (Scale.project xscale x *. float_of_int (width - 1)) in
      let cy = int_of_float (Scale.project yscale y *. float_of_int (height - 1)) in
      canvas.(height - 1 - cy).(cx) <- glyph;
      if i < n - 1 then begin
        let x2, y2 = pts.(i + 1) in
        let steps = 24 in
        for k = 1 to steps - 1 do
          let f = float_of_int k /. float_of_int steps in
          (* interpolate in projected space so log scales draw straight *)
          let px = Scale.project xscale x and px2 = Scale.project xscale x2 in
          let py = Scale.project yscale y and py2 = Scale.project yscale y2 in
          let cx = int_of_float ((px +. (f *. (px2 -. px))) *. float_of_int (width - 1)) in
          let cy = int_of_float ((py +. (f *. (py2 -. py))) *. float_of_int (height - 1)) in
          if canvas.(height - 1 - cy).(cx) = ' ' then
            canvas.(height - 1 - cy).(cx) <- glyph
        done
      end
    done
  in
  List.iteri plot_series fig.Figure.series;
  let buf = Buffer.create ((width + 16) * (height + 6)) in
  Buffer.add_string buf fig.Figure.title;
  Buffer.add_char buf '\n';
  (* y-axis labels: top, middle, bottom *)
  let ylo, yhi = Scale.bounds yscale in
  let ylabel_at row =
    if row = 0 then Scale.tick_label yscale yhi
    else if row = height - 1 then Scale.tick_label yscale ylo
    else if row = height / 2 then begin
      match Scale.kind yscale with
      | Scale.Linear -> Scale.tick_label yscale (0.5 *. (ylo +. yhi))
      | Scale.Log10 -> Scale.tick_label yscale (sqrt (ylo *. yhi))
    end
    else ""
  in
  let label_width =
    List.fold_left max 0
      (List.map String.length
         (List.init height ylabel_at))
  in
  for row = 0 to height - 1 do
    let lbl = ylabel_at row in
    Buffer.add_string buf (String.make (label_width - String.length lbl) ' ');
    Buffer.add_string buf lbl;
    Buffer.add_string buf " |";
    Buffer.add_string buf (String.init width (fun c -> canvas.(row).(c)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make (label_width + 1) ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  let xlo, xhi = Scale.bounds xscale in
  let left = Scale.tick_label xscale xlo and right = Scale.tick_label xscale xhi in
  Buffer.add_string buf (String.make (label_width + 2) ' ');
  Buffer.add_string buf left;
  let pad = width - String.length left - String.length right in
  Buffer.add_string buf (String.make (max 1 pad) ' ');
  Buffer.add_string buf right;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "  x: %s   y: %s\n" fig.Figure.xlabel fig.Figure.ylabel);
  List.iteri
    (fun i (s : Series.t) ->
       Buffer.add_string buf
         (Printf.sprintf "  %c %s\n" glyphs.(i mod Array.length glyphs) s.Series.label))
    fig.Figure.series;
  Buffer.contents buf

let print ?width ?height fig = print_string (render ?width ?height fig)
