(** A labelled data series for plotting. *)

type t = {
  label : string;
  points : (float * float) array;
}

val make : label:string -> (float * float) array -> t
(** Build a series; points are copied. *)

val of_arrays : label:string -> float array -> float array -> t
(** Zip two coordinate arrays. @raise Invalid_argument on length mismatch. *)

val of_fn : label:string -> xs:float array -> (float -> float) -> t
(** Sample a function on a grid. *)

val map_y : (float -> float) -> t -> t
(** Transform ordinates (e.g. unit conversion). *)

val filter : ((float * float) -> bool) -> t -> t
(** Keep only matching points (e.g. positive values before a log plot). *)

val xs : t -> float array
val ys : t -> float array

val extent : t list -> (float * float) * (float * float)
(** Joint bounding box [((xmin, xmax), (ymin, ymax))] of non-empty series.
    @raise Invalid_argument when all series are empty. *)
