let palette =
  [| "#4269d0"; "#efb118"; "#ff725c"; "#6cc5b0"; "#3ca951"; "#ff8ab7"; "#a463f2"; "#97bbf5" |]

let xml_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '<' -> Buffer.add_string buf "&lt;"
       | '>' -> Buffer.add_string buf "&gt;"
       | '&' -> Buffer.add_string buf "&amp;"
       | '"' -> Buffer.add_string buf "&quot;"
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ?(width = 720) ?(height = 480) (fig : Figure.t) =
  let xscale, yscale = Figure.scales fig in
  let ml = 70 and mr = 160 and mt = 40 and mb = 55 in
  let pw = float_of_int (width - ml - mr) in
  let ph = float_of_int (height - mt - mb) in
  let px x = float_of_int ml +. (Scale.project xscale x *. pw) in
  let py y = float_of_int (height - mb) -. (Scale.project yscale y *. ph) in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" font-family=\"sans-serif\">\n"
       width height width height);
  Buffer.add_string buf
    (Printf.sprintf "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"24\" font-size=\"16\" font-weight=\"bold\">%s</text>\n"
       ml (xml_escape fig.Figure.title));
  (* gridlines + ticks *)
  let xticks = Scale.ticks xscale and yticks = Scale.ticks yscale in
  Array.iter
    (fun v ->
       let x = px v in
       Buffer.add_string buf
         (Printf.sprintf
            "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"#ddd\"/>\n" x mt x
            (height - mb));
       Buffer.add_string buf
         (Printf.sprintf
            "<text x=\"%.1f\" y=\"%d\" font-size=\"11\" text-anchor=\"middle\">%s</text>\n"
            x
            (height - mb + 16)
            (xml_escape (Scale.tick_label xscale v))))
    xticks;
  Array.iter
    (fun v ->
       let y = py v in
       Buffer.add_string buf
         (Printf.sprintf
            "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke=\"#ddd\"/>\n" ml y
            (width - mr) y);
       Buffer.add_string buf
         (Printf.sprintf
            "<text x=\"%d\" y=\"%.1f\" font-size=\"11\" text-anchor=\"end\">%s</text>\n"
            (ml - 6) (y +. 4.)
            (xml_escape (Scale.tick_label yscale v))))
    yticks;
  (* frame *)
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"%d\" y=\"%d\" width=\"%.0f\" height=\"%.0f\" fill=\"none\" \
        stroke=\"black\"/>\n"
       ml mt pw ph);
  (* series *)
  List.iteri
    (fun i (s : Series.t) ->
       let color = palette.(i mod Array.length palette) in
       let pts =
         Array.to_list s.Series.points
         |> List.map (fun (x, y) -> Printf.sprintf "%.2f,%.2f" (px x) (py y))
         |> String.concat " "
       in
       if pts <> "" then
         Buffer.add_string buf
           (Printf.sprintf
              "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.8\"/>\n"
              pts color);
       (* legend entry *)
       let ly = mt + 14 + (i * 18) in
       Buffer.add_string buf
         (Printf.sprintf
            "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" \
             stroke-width=\"3\"/>\n"
            (width - mr + 10) ly (width - mr + 34) ly color);
       Buffer.add_string buf
         (Printf.sprintf "<text x=\"%d\" y=\"%d\" font-size=\"11\">%s</text>\n"
            (width - mr + 40) (ly + 4) (xml_escape s.Series.label)))
    fig.Figure.series;
  (* axis labels *)
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%.0f\" y=\"%d\" font-size=\"13\" text-anchor=\"middle\">%s</text>\n"
       (float_of_int ml +. (pw /. 2.))
       (height - 14)
       (xml_escape fig.Figure.xlabel));
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"18\" y=\"%.0f\" font-size=\"13\" text-anchor=\"middle\" \
        transform=\"rotate(-90 18 %.0f)\">%s</text>\n"
       (float_of_int mt +. (ph /. 2.))
       (float_of_int mt +. (ph /. 2.))
       (xml_escape fig.Figure.ylabel));
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save ?width ?height ~path fig =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?width ?height fig))
