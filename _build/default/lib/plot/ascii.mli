(** Terminal rendering of figures: a character-cell canvas with per-series
    glyphs, tick labels and a legend. *)

val render : ?width:int -> ?height:int -> Figure.t -> string
(** Render the figure to a multi-line string. [width]×[height] is the
    canvas size in character cells (defaults 72×22, exclusive of labels). *)

val print : ?width:int -> ?height:int -> Figure.t -> unit
(** [render] straight to stdout. *)
