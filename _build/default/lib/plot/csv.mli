(** CSV export of figures and raw tables. *)

val of_figure : Figure.t -> string
(** Long-format CSV with header [series,x,y] — one row per point. *)

val save_figure : path:string -> Figure.t -> unit
(** Write {!of_figure} output to a file. *)

val of_table : header:string list -> float list list -> string
(** Generic numeric table, one list per row.
    @raise Invalid_argument when a row length differs from the header. *)

val save_table : path:string -> header:string list -> float list list -> unit
(** Write {!of_table} output to a file. *)
