let quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let of_figure (fig : Figure.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "series,x,y\n";
  List.iter
    (fun (s : Series.t) ->
       Array.iter
         (fun (x, y) ->
            Buffer.add_string buf
              (Printf.sprintf "%s,%.10g,%.10g\n" (quote s.Series.label) x y))
         s.Series.points)
    fig.Figure.series;
  Buffer.contents buf

let write path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

let save_figure ~path fig = write path (of_figure fig)

let of_table ~header rows =
  let width = List.length header in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (List.map quote header));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
       if List.length row <> width then invalid_arg "Csv.of_table: ragged row";
       Buffer.add_string buf (String.concat "," (List.map (Printf.sprintf "%.10g") row));
       Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let save_table ~path ~header rows = write path (of_table ~header rows)
