lib/plot/ascii.ml: Array Buffer Figure List Printf Scale Series String
