lib/plot/csv.mli: Figure
