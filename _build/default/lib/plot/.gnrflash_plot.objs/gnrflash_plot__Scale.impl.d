lib/plot/scale.ml: Array Float List Printf
