lib/plot/csv.ml: Array Buffer Figure Fun List Printf Series String
