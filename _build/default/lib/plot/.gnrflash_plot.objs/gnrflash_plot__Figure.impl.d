lib/plot/figure.ml: Array Float List Scale Series
