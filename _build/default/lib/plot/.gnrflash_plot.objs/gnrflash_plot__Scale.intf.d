lib/plot/scale.mli:
