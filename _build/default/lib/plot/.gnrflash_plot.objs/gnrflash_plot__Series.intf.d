lib/plot/series.mli:
