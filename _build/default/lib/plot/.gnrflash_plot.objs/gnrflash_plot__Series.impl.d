lib/plot/series.ml: Array List
