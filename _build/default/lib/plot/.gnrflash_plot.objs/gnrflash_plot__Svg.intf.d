lib/plot/svg.mli: Figure
