lib/plot/svg.ml: Array Buffer Figure Fun List Printf Scale Series String
