lib/plot/ascii.mli: Figure
