lib/plot/figure.mli: Scale Series
