(** SVG rendering of figures: axes, ticks, grid, polylines and a legend. *)

val render : ?width:int -> ?height:int -> Figure.t -> string
(** Render to an SVG document string ([width]×[height] pixels, defaults
    720×480). *)

val save : ?width:int -> ?height:int -> path:string -> Figure.t -> unit
(** Write the SVG document to [path]. *)
