type t = {
  label : string;
  points : (float * float) array;
}

let make ~label points = { label; points = Array.copy points }

let of_arrays ~label xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Series.of_arrays: length mismatch";
  { label; points = Array.init n (fun i -> (xs.(i), ys.(i))) }

let of_fn ~label ~xs f = { label; points = Array.map (fun x -> (x, f x)) xs }

let map_y f t = { t with points = Array.map (fun (x, y) -> (x, f y)) t.points }

let filter p t = { t with points = Array.of_list (List.filter p (Array.to_list t.points)) }

let xs t = Array.map fst t.points
let ys t = Array.map snd t.points

let extent series =
  let xmin = ref infinity and xmax = ref neg_infinity in
  let ymin = ref infinity and ymax = ref neg_infinity in
  let seen = ref false in
  List.iter
    (fun s ->
       Array.iter
         (fun (x, y) ->
            seen := true;
            if x < !xmin then xmin := x;
            if x > !xmax then xmax := x;
            if y < !ymin then ymin := y;
            if y > !ymax then ymax := y)
         s.points)
    series;
  if not !seen then invalid_arg "Series.extent: all series empty";
  ((!xmin, !xmax), (!ymin, !ymax))
