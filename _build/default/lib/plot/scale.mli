(** Axis scales: mapping data coordinates to the unit interval, and tick
    generation. *)

type kind =
  | Linear
  | Log10  (** requires strictly positive data *)

type t

val make : kind -> lo:float -> hi:float -> t
(** Build a scale over the data range [[lo, hi]]. Degenerate ranges are
    padded; log scales clamp [lo] to a positive value.
    @raise Invalid_argument if [hi < lo], or for a log scale with
    [hi <= 0.]. *)

val kind : t -> kind
val bounds : t -> float * float
(** The (possibly padded) data range. *)

val project : t -> float -> float
(** Map a data value into [[0, 1]] (clamped). *)

val ticks : ?target:int -> t -> float array
(** "Nice" tick positions: 1-2-5 progression for linear scales, powers of
    ten for log scales. [target] is the desired tick count (default 6). *)

val tick_label : t -> float -> string
(** Compact label for a tick value ([1e-3]-style for log scales and
    magnitudes beyond ±10⁴). *)
