(** A figure: series plus axes metadata, renderable to ASCII, SVG or CSV. *)

type t = {
  title : string;
  xlabel : string;
  ylabel : string;
  xscale : Scale.kind;
  yscale : Scale.kind;
  series : Series.t list;
}

val make :
  ?xlabel:string -> ?ylabel:string ->
  ?xscale:Scale.kind -> ?yscale:Scale.kind ->
  title:string -> Series.t list -> t
(** Build a figure (scales default to linear). Series with non-positive
    values are filtered automatically when the corresponding scale is
    logarithmic. @raise Invalid_argument when no points remain. *)

val scales : t -> Scale.t * Scale.t
(** The fitted x and y scales. *)
