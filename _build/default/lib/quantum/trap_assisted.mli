(** Trap-assisted tunneling (TAT) — the stress-induced leakage current
    (SILC) mechanism that dominates retention loss after program/erase
    cycling: electrons hop through oxide traps created by the tunneling
    stress, in two sequential (shorter) tunneling steps.

    Model: a trap at depth [x_t] and energy [e_t] below the oxide
    conduction band splits the barrier in two; the two-step rate is
    limited by the slower step,
    [J_TAT ∝ N_t · min(T_in, T_out)], with each step evaluated by WKB
    through its sub-barrier. The prefactor is calibrated so a fresh oxide
    (N_t = N_T0) reproduces a small fraction of the direct-tunneling
    current. *)

type trap = {
  depth_fraction : float;  (** trap position as a fraction of the oxide, (0, 1) *)
  energy_ev : float;       (** trap level below the oxide conduction band [eV] *)
}

val mid_gap_trap : trap
(** The canonical SILC trap: mid-oxide, ~2.6 eV below the conduction
    band. *)

val step_transmissions :
  Fn.params -> trap -> v_ox:float -> thickness:float -> float * float
(** WKB transmissions of the capture (emitter → trap) and emission
    (trap → collector) steps at a given oxide drop [v_ox].
    @raise Invalid_argument for non-positive [thickness] or [v_ox]. *)

val current_density :
  ?trap:trap -> Fn.params -> trap_density:float -> v_ox:float ->
  thickness:float -> float
(** TAT current density [A/m²] for an areal trap density [1/m²].
    Scales linearly with [trap_density]; returns [0.] for [v_ox <= 0.]. *)

val silc_ratio :
  ?trap:trap -> Fn.params -> trap_density:float -> v_ox:float ->
  thickness:float -> float
(** [J_TAT / J_direct] at the same bias — how much the cycling-generated
    traps multiply low-field leakage (the quantity that degrades retention
    with cycling). *)
