(** Fowler–Nordheim tunneling current density — the closed form the paper's
    equations (1), (4), (6), (7) are built on (Lenzlinger & Snow 1969).

    [J = A·E²·exp(−B/E)] with
    [A = q³·m0 / (8π·h·m_ox·Φ_B)]  (A/V²) and
    [B = 8π·√(2 m_ox)·Φ_B^{3/2} / (3 q h)]  (V/m),
    Φ_B in joules inside the formulas, quoted in eV at the API. *)

type params = {
  a : float;        (** prefactor A [A/V²] *)
  b : float;        (** exponent coefficient B [V/m] *)
  phi_b_ev : float; (** barrier height used to build the coefficients [eV] *)
  m_ox_rel : float; (** effective tunneling mass in units of m0 *)
}

val coefficients : phi_b_ev:float -> m_ox_rel:float -> params
(** Build FN coefficients from a barrier height and relative effective
    mass. @raise Invalid_argument for non-positive arguments. *)

val of_interface : Gnrflash_materials.Workfunction.electrode ->
  Gnrflash_materials.Oxide.t -> params
(** Coefficients for a given electrode/oxide interface, deriving Φ_B from
    the work function and electron affinity, and m_ox from the oxide. *)

val current_density : params -> field:float -> float
(** Current density [A/m²] at oxide field [field] [V/m]; [0.] for
    non-positive fields (the formula describes forward injection only —
    callers handle polarity). *)

val current_from_voltages : params -> vfg:float -> vs:float -> xto:float -> float
(** Paper equation (6): field [E = (VFG − VS)/XTO], then {!current_density}.
    [xto] in metres. Returns [0.] when [vfg <= vs]. *)

val paper_eq7 : params -> vfg:float -> xto:float -> float
(** Paper equation (7): the [VS = 0] special case. *)

val field_for_current : params -> j:float -> (float, string) result
(** Invert [J(E)]: the field [V/m] at which the current density reaches
    [j] [A/m²] (Newton on ln J, monotone for E > 0). *)

val log10_current : params -> field:float -> float
(** [log10 (J)] computed in log space — usable even where [J] underflows a
    float ([field > 0] required). *)
