type mechanism =
  | Fowler_nordheim
  | Direct
  | Negligible

let direct_thickness_limit = 5e-9
let fn_thickness_threshold = 4e-9

let classify ~phi_b_ev ~v_ox ~thickness =
  if phi_b_ev <= 0. then invalid_arg "Regime.classify: phi_b <= 0";
  if thickness <= 0. then invalid_arg "Regime.classify: thickness <= 0";
  let v = abs_float v_ox in
  if v > phi_b_ev then Fowler_nordheim
  else if thickness <= direct_thickness_limit && v > 0. then Direct
  else Negligible

let describe = function
  | Fowler_nordheim -> "Fowler-Nordheim tunneling"
  | Direct -> "direct tunneling"
  | Negligible -> "negligible conduction"
