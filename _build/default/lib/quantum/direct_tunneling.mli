(** Direct tunneling through a trapezoidal barrier — the transport channel
    for ultra-thin oxides (2–5 nm) and the leakage mechanism that limits
    retention. WKB closed form:

    [J = A·E²·exp(−B·(1 − (1 − qV_ox/Φ_B)^{3/2}) / E)]   for qV_ox < Φ_B,

    smoothly reducing to Fowler–Nordheim when the oxide drop exceeds the
    barrier height. [A] and [B] are the FN coefficients of the interface. *)

val current_density :
  Fn.params -> v_ox:float -> thickness:float -> float
(** Current density [A/m²] for a potential drop [v_ox] (volts, >= 0) across
    an oxide of the given [thickness] (m). Returns [0.] for [v_ox <= 0.].
    For [v_ox >= Φ_B/q] this is exactly {!Fn.current_density} at the same
    field. *)

val ratio_to_fn : Fn.params -> v_ox:float -> thickness:float -> float
(** [J_direct / J_FN-extrapolated] at the same field — quantifies how much
    the pure-FN expression underestimates low-voltage leakage (used in the
    regime analysis). *)
