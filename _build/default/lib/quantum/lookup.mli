(** Tabulated tunneling currents: evaluating the Tsu–Esaki integral inside
    a transient ODE is thousands of times slower than the closed form, so
    long simulations precompute [log10 J] on a log-spaced field grid and
    interpolate with a monotone cubic. Accuracy is bounded by the grid
    density (checked by tests against direct evaluation). *)

type t
(** A cached [J(E)] characteristic. *)

val build :
  ?points:int -> field_min:float -> field_max:float -> (float -> float) -> t
(** [build ~field_min ~field_max j_of_field] tabulates the given current
    model ([A/m²] as a function of field [V/m]) on [points] (default 64)
    log-spaced fields. The model must be strictly positive on the range.
    @raise Invalid_argument on a bad range or non-positive samples. *)

val of_fn : ?points:int -> Fn.params -> field_min:float -> field_max:float -> t
(** Cache the closed-form FN model (mainly useful for validating the
    machinery — the closed form is already cheap). *)

val current_density : t -> field:float -> float
(** Interpolated current density. Fields outside the table clamp to the
    endpoints ([0.] below a positive [field_min] guard of a decade). *)

val max_relative_error : t -> (float -> float) -> float
(** Worst relative error against the reference model, probed between the
    table nodes — the quantity tests pin. *)

val range : t -> float * float
(** The tabulated field range. *)
