(** Transfer-matrix transmission through a barrier, treating the
    piecewise-linear profile as a staircase of [steps] constant-potential
    slabs. Exact for the staircase; converges to the true profile as steps
    grow. More accurate than WKB near and above the barrier top. *)

val transmission : ?steps:int -> Barrier.t -> energy:float -> float
(** [transmission ?steps b ~energy] is the quantum-mechanical transmission
    probability of an electron of the given energy [J]. The electron mass
    outside the barrier is the free mass; inside it is [b.m_eff]. [steps]
    defaults to 400. Energies must make the incoming wave propagating
    (energy > 0 relative to the emitter band edge); returns 0 otherwise. *)

val transmission_spectrum :
  ?steps:int -> Barrier.t -> energies:float array -> float array
(** {!transmission} mapped over an energy grid. *)
