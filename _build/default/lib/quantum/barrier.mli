(** One-dimensional potential-energy barriers seen by a tunneling electron.

    A barrier is a piecewise-linear potential profile [V(x)] over
    [0 <= x <= width], in joules, measured from the emitter Fermi level.
    Positions in metres. *)

type t = private {
  nodes : (float * float) array;
  (** [(x, V)] breakpoints, strictly increasing in [x]; [V] linear between
      them, and the barrier region is exactly [x ∈ [x_first, x_last]]. *)
  m_eff : float;  (** tunneling effective mass [kg] inside the barrier *)
}

val make : m_eff:float -> (float * float) list -> t
(** Build a profile from breakpoints. @raise Invalid_argument if fewer than
    two points, non-increasing x, or [m_eff <= 0.]. *)

val triangular : phi_b:float -> field:float -> m_eff:float -> t
(** The Fowler–Nordheim barrier (paper Fig. 2): starts at height [phi_b]
    (joules) and falls with slope [q·field] until it crosses zero at
    [x_exit = phi_b/(q·field)]. [field] in V/m must be positive.
    The profile is truncated at the exit point. *)

val trapezoidal :
  phi_b:float -> v_ox:float -> thickness:float -> m_eff:float -> t
(** The direct-tunneling barrier: height [phi_b] at the emitter interface
    falling linearly by [q·v_ox] across the full oxide [thickness]. When
    [v_ox > phi_b/q] the trapezoid degenerates into the FN triangle (the
    exit point moves inside the oxide). *)

val height_at : t -> float -> float
(** [height_at b x] is V(x) by linear interpolation ([0.] outside the
    profile). *)

val width : t -> float
(** Total extent [x_last - x_first]. *)

val max_height : t -> float
(** Highest potential on the profile. *)

val with_image_force :
  eps_r:float -> t -> t
(** Superimpose the classical image-potential lowering
    [−q²/(16πε₀εᵣ(x−x₀))] (rounded barrier, Schottky lowering), sampled on
    a refined grid. Points where the correction would diverge (within
    0.05 nm of an interface) are clamped. *)

val classical_turning_points : t -> energy:float -> (float * float) option
(** Interval where [V(x) > energy] (the forbidden region for an electron of
    that energy), or [None] when the barrier never exceeds the energy. *)
