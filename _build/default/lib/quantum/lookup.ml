module Interp = Gnrflash_numerics.Interp
module Grid = Gnrflash_numerics.Grid
module Tel = Gnrflash_telemetry.Telemetry

type t = {
  interp : Interp.t;       (* log10 J vs log10 E *)
  field_min : float;
  field_max : float;
}

let build ?(points = 64) ~field_min ~field_max j_of_field =
  if field_min <= 0. || field_max <= field_min then
    invalid_arg "Lookup.build: bad field range";
  if points < 4 then invalid_arg "Lookup.build: too few points";
  Tel.span "lookup/build" (fun () ->
      Tel.count ~n:points "lookup/build_point";
      let fields = Grid.geomspace field_min field_max points in
      let logs =
        Array.map
          (fun e ->
             let j = j_of_field e in
             if j <= 0. || not (Float.is_finite j) then
               invalid_arg "Lookup.build: model non-positive on the range";
             log10 j)
          fields
      in
      let log_fields = Array.map log10 fields in
      { interp = Interp.pchip log_fields logs; field_min; field_max })

let of_fn ?points p ~field_min ~field_max =
  build ?points ~field_min ~field_max (fun e -> Fn.current_density p ~field:e)

let current_density t ~field =
  Tel.count "lookup/hit";
  if field <= t.field_min /. 10. then begin
    Tel.count "lookup/cutoff";
    0.
  end
  else begin
    if field < t.field_min || field > t.field_max then Tel.count "lookup/clamped";
    let clamped = min (max field t.field_min) t.field_max in
    10. ** Interp.eval t.interp (log10 clamped)
  end

let max_relative_error t reference =
  let probes = Grid.geomspace t.field_min t.field_max 301 in
  Array.fold_left
    (fun worst e ->
       let exact = reference e in
       if exact <= 0. then worst
       else begin
         let approx = current_density t ~field:e in
         max worst (abs_float ((approx -. exact) /. exact))
       end)
    0. probes

let range t = (t.field_min, t.field_max)
