(** Exact quantum transmission through a linear (triangular / trapezoidal)
    barrier using Airy-function matching — the Gundlach (1966) solution.

    Serves as the ground truth the WKB and closed-form FN models are
    validated against (paper future work: "more accurate models for JFN"). *)

val transmission :
  phi1:float -> phi2:float -> thickness:float -> m_b:float -> m_e:float ->
  energy:float -> float
(** Transmission probability for an electron of [energy] (J, > 0, measured
    from the emitter conduction-band edge) through a barrier that is
    [phi1] high (J, relative to the emitter band edge) at the entry
    interface and [phi2] at the exit interface, [thickness] m wide.
    [m_b] is the effective mass inside the barrier, [m_e] in the
    electrodes. Returns a value in [0, 1]; evanescent collectors
    ([energy <= phi2] with [phi2 > 0] constant beyond) return 0. *)

val transmission_fn :
  phi_b:float -> field:float -> thickness:float -> m_b:float -> m_e:float ->
  energy:float -> float
(** Convenience wrapper for the FN geometry: barrier height [phi_b] at the
    emitter falling with slope [q·field] across [thickness], collector band
    edge at [phi_b − q·field·thickness]. *)
