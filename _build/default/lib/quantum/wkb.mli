(** Wentzel–Kramers–Brillouin tunneling through an arbitrary
    piecewise-linear barrier. *)

val action_integral : Barrier.t -> energy:float -> float
(** The WKB exponent [2/ħ ∫ √(2m(V(x) − E)) dx] over the classically
    forbidden region. [0.] when the electron energy clears the barrier. *)

val transmission : Barrier.t -> energy:float -> float
(** Transmission probability [exp(−action)], in [0, 1]. Energies above the
    barrier maximum transmit with probability 1 (WKB has no above-barrier
    reflection). *)

val transmission_triangular :
  phi_b:float -> field:float -> m_eff:float -> float
(** Closed-form WKB transmission at the Fermi level (E = 0) through the FN
    triangle: [exp(−4√(2m)·φ_B^{3/2} / (3ħqE))]. Cross-validates
    {!transmission} on {!Barrier.triangular}. *)
