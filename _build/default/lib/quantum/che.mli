(** Channel-hot-electron (CHE) injection — the programming mechanism of
    NOR-type cells, modeled with the lucky-electron picture
    (Tam, Ko & Hu 1984). Included as the baseline the paper's Section II
    compares FN programming against. *)

type params = {
  lambda : float;       (** hot-electron mean free path [m], ~9 nm in Si *)
  phi_b_ev : float;     (** injection barrier [eV] *)
  prefactor : float;    (** empirical collection efficiency C, ~2e-3 *)
}

val default_si : params
(** Textbook silicon parameters (λ = 9.2 nm, Φ_B = 3.2 eV, C = 2×10⁻³). *)

val injection_probability : params -> lateral_field:float -> float
(** Lucky-electron probability [C·exp(−Φ_B/(q·λ·E_lat))]; [0.] for
    non-positive fields. *)

val gate_current : params -> drain_current:float -> lateral_field:float -> float
(** Gate (injection) current [A] given the cell drain current and the peak
    lateral channel field. *)

val programming_current_budget :
  params -> drain_current:float -> lateral_field:float -> cells:int -> float
(** Total supply current [A] to program [cells] cells in parallel — the
    quantity that makes CHE ~10⁶× more power-hungry per cell than FN
    (paper Section II: 0.3–1 mA per cell vs < 1 nA). *)
