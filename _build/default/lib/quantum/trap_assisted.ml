module C = Gnrflash_physics.Constants

type trap = {
  depth_fraction : float;
  energy_ev : float;
}

let mid_gap_trap = { depth_fraction = 0.5; energy_ev = 2.6 }

(* Per-trap capture cross-section times attempt rate, folded into one
   calibration prefactor [A·m²] such that a fresh oxide's TAT with
   N_t ~ 1e15 m^-2 sits ~2 decades below direct tunneling at 5 nm/2 V. *)
let per_trap_prefactor = 1e-18

let validate ~v_ox ~thickness =
  if thickness <= 0. then invalid_arg "Trap_assisted: thickness <= 0";
  if v_ox <= 0. then invalid_arg "Trap_assisted: v_ox <= 0"

let step_transmissions (p : Fn.params) trap ~v_ox ~thickness =
  validate ~v_ox ~thickness;
  if trap.depth_fraction <= 0. || trap.depth_fraction >= 1. then
    invalid_arg "Trap_assisted: depth_fraction out of (0, 1)";
  let m_eff = p.Fn.m_ox_rel *. C.m0 in
  let phi_j = p.Fn.phi_b_ev *. C.ev in
  let x_t = trap.depth_fraction *. thickness in
  (* potential at the trap position, tilted by the oxide field *)
  let drop_at_trap = C.q *. v_ox *. trap.depth_fraction in
  (* capture step: tunnel from the emitter Fermi level to the trap level;
     barrier runs from phi down to the trap position's band edge. The
     electron enters at E = 0 and the local barrier is reduced by the
     field. *)
  let barrier_in =
    Barrier.make ~m_eff [ (0., phi_j); (x_t, phi_j -. drop_at_trap) ]
  in
  let t_in = Wkb.transmission barrier_in ~energy:0. in
  (* emission step: from the trap level (e_t below the local band edge)
     through the remaining oxide *)
  let trap_level = phi_j -. drop_at_trap -. (trap.energy_ev *. C.ev) in
  let barrier_out =
    Barrier.make ~m_eff
      [ (x_t, phi_j -. drop_at_trap); (thickness, phi_j -. (C.q *. v_ox)) ]
  in
  let t_out = Wkb.transmission barrier_out ~energy:(max trap_level 0.) in
  (t_in, t_out)

let current_density ?(trap = mid_gap_trap) (p : Fn.params) ~trap_density ~v_ox ~thickness =
  if trap_density < 0. then invalid_arg "Trap_assisted: negative trap density";
  if v_ox <= 0. then 0.
  else begin
    let t_in, t_out = step_transmissions p trap ~v_ox ~thickness in
    (* two sequential steps: rate limited by the slower one *)
    trap_density *. per_trap_prefactor *. min t_in t_out
  end

let silc_ratio ?(trap = mid_gap_trap) p ~trap_density ~v_ox ~thickness =
  let j_tat = current_density p ~trap ~trap_density ~v_ox ~thickness in
  let j_dt = Direct_tunneling.current_density p ~v_ox ~thickness in
  if j_dt <= 0. then infinity else j_tat /. j_dt
