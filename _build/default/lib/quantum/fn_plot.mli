(** Fowler–Nordheim plot: [ln(J/E²)] against [1/E] is a straight line with
    slope [−B] and intercept [ln A]. The paper (after refs [1]–[3], [9])
    derives its A and B parameters from exactly this construction; this
    module generates FN plots from models or measured data and extracts the
    parameters by least squares. *)

type extraction = {
  a : float;          (** extracted prefactor [A/V²] *)
  b : float;          (** extracted slope coefficient [V/m] *)
  r_squared : float;  (** linearity of the FN plot *)
}

val points : Fn.params -> fields:float array -> (float * float) array
(** [(1/E, ln(J/E²))] pairs from the closed-form model — a perfectly
    straight line; useful as a fixture. Fields must be positive. *)

val points_of_data :
  fields:float array -> currents:float array -> (float * float) array
(** Same transformation applied to (field [V/m], J [A/m²]) measurements.
    Pairs with non-positive J are dropped.
    @raise Invalid_argument on length mismatch. *)

val extract :
  fields:float array -> currents:float array -> (extraction, string) result
(** Least-squares extraction of A and B from data. Succeeds when at least
    two valid points remain. *)

val extract_from_model :
  Fn.params -> fields:float array -> (extraction, string) result
(** Round-trip helper: generate currents from the model at the given fields
    and re-extract — tests pin [b ≈ params.b] and [a ≈ params.a]. *)
