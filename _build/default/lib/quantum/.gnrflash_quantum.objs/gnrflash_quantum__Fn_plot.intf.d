lib/quantum/fn_plot.mli: Fn
