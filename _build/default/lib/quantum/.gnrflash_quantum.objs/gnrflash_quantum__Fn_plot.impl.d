lib/quantum/fn_plot.ml: Array Fn Gnrflash_numerics
