lib/quantum/barrier.ml: Array Float Gnrflash_physics List
