lib/quantum/tsu_esaki.mli:
