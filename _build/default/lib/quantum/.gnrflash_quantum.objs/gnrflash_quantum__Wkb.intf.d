lib/quantum/wkb.mli: Barrier
