lib/quantum/transfer_matrix.mli: Barrier
