lib/quantum/triangular_exact.mli:
