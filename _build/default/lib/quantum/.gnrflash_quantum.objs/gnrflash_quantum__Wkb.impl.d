lib/quantum/wkb.ml: Barrier Gnrflash_numerics Gnrflash_physics
