lib/quantum/che.ml:
