lib/quantum/barrier.mli:
