lib/quantum/triangular_exact.ml: Complex Float Gnrflash_numerics Gnrflash_physics
