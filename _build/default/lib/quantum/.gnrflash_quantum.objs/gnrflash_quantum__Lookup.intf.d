lib/quantum/lookup.mli: Fn
