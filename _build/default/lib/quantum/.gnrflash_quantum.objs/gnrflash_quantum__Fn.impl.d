lib/quantum/fn.ml: Float Gnrflash_materials Gnrflash_numerics Gnrflash_physics
