lib/quantum/direct_tunneling.ml: Fn
