lib/quantum/regime.mli:
