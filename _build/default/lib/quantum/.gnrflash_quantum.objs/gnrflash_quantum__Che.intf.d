lib/quantum/che.mli:
