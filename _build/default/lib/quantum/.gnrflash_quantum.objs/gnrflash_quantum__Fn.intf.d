lib/quantum/fn.mli: Gnrflash_materials
