lib/quantum/trap_assisted.mli: Fn
