lib/quantum/tsu_esaki.ml: Barrier Float Fn Gnrflash_numerics Gnrflash_physics Transfer_matrix Triangular_exact Wkb
