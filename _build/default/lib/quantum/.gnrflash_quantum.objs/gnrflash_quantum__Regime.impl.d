lib/quantum/regime.ml:
