lib/quantum/lookup.ml: Array Float Fn Gnrflash_numerics
