lib/quantum/lookup.ml: Array Float Fn Gnrflash_numerics Gnrflash_telemetry
