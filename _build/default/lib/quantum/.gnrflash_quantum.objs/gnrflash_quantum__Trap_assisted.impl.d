lib/quantum/trap_assisted.ml: Barrier Direct_tunneling Fn Gnrflash_physics Wkb
