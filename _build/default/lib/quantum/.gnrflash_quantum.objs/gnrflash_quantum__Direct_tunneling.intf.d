lib/quantum/direct_tunneling.mli: Fn
