lib/quantum/transfer_matrix.ml: Array Barrier Complex Float Gnrflash_numerics Gnrflash_physics
