(** Classification of the dominant conduction mechanism through a gate
    oxide, following the paper's Section II discussion: FN for thick oxides
    under high field (V_ox > Φ_B), direct tunneling for ultra-thin oxides
    (2–5 nm) at low bias, negligible otherwise. *)

type mechanism =
  | Fowler_nordheim  (** triangular barrier, V_ox > Φ_B *)
  | Direct           (** trapezoidal barrier, thin oxide *)
  | Negligible       (** thick oxide at low field *)

val classify : phi_b_ev:float -> v_ox:float -> thickness:float -> mechanism
(** [classify ~phi_b_ev ~v_ox ~thickness] applies the textbook rules:
    [v_ox > phi_b] → FN; otherwise direct if the oxide is at most
    {!direct_thickness_limit}; otherwise negligible. [thickness] in m.
    The sign of [v_ox] is ignored (mechanism is polarity-symmetric). *)

val direct_thickness_limit : float
(** 5 nm — the upper oxide thickness where direct tunneling matters
    (paper cites 2–5 nm, ref [7]). *)

val fn_thickness_threshold : float
(** 4 nm — oxides at or above this are FN-dominated at high field
    (paper ref [1] discussion). *)

val describe : mechanism -> string
(** Human-readable label. *)
