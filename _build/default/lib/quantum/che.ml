type params = {
  lambda : float;
  phi_b_ev : float;
  prefactor : float;
}

let default_si = { lambda = 9.2e-9; phi_b_ev = 3.2; prefactor = 2e-3 }

let injection_probability p ~lateral_field =
  if lateral_field <= 0. then 0.
  else begin
    (* phi_b in eV and q E lambda in eV cancel the charge: exponent is
       phi_b / (E_lat * lambda) with E in V/m. *)
    let exponent = p.phi_b_ev /. (lateral_field *. p.lambda) in
    p.prefactor *. exp (-.exponent)
  end

let gate_current p ~drain_current ~lateral_field =
  if drain_current < 0. then invalid_arg "Che.gate_current: negative drain current";
  drain_current *. injection_probability p ~lateral_field

let programming_current_budget p ~drain_current ~lateral_field ~cells =
  if cells < 0 then invalid_arg "Che.programming_current_budget: negative cells";
  ignore (injection_probability p ~lateral_field);
  float_of_int cells *. drain_current
