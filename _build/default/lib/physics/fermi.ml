let occupation ~ef ~t e =
  if t <= 0. then (if e < ef then 1. else if e > ef then 0. else 0.5)
  else begin
    let x = (e -. ef) /. (Constants.k_b *. t) in
    if x > 500. then 0.
    else if x < -500. then 1.
    else 1. /. (1. +. exp x)
  end

let maxwell_boltzmann ~ef ~t e =
  if t <= 0. then invalid_arg "Fermi.maxwell_boltzmann: t <= 0";
  exp (-.(e -. ef) /. (Constants.k_b *. t))

(* ln(1 + exp x) computed without overflow. *)
let log1p_exp x =
  if x > 40. then x
  else if x < -40. then exp x
  else log1p (exp x)

let supply_difference ~ef ~t ~qv e =
  if t <= 0. then invalid_arg "Fermi.supply_difference: t <= 0";
  let kt = Constants.k_b *. t in
  let x1 = (ef -. e) /. kt in
  let x2 = (ef -. e -. qv) /. kt in
  kt *. (log1p_exp x1 -. log1p_exp x2)

(* Bednarczyk & Bednarczyk (1978): F_1/2(η) ≈ (e^{-η} + 3√π/4 · a^{-3/8})^{-1}. *)
let fermi_integral_half eta =
  let a =
    (eta ** 4.)
    +. 50.
    +. (33.6 *. eta *. (1. -. (0.68 *. exp (-0.17 *. ((eta +. 1.) ** 2.)))))
  in
  1. /. (exp (-.eta) +. (3. *. sqrt Float.pi /. 4. *. (a ** (-0.375))))
