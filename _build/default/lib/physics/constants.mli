(** Physical constants, CODATA 2018 exact/recommended values, SI units. *)

val q : float
(** Elementary charge [C] (exact). *)

val h : float
(** Planck constant [J·s] (exact). *)

val hbar : float
(** Reduced Planck constant [J·s]. *)

val m0 : float
(** Electron rest mass [kg]. *)

val k_b : float
(** Boltzmann constant [J/K] (exact). *)

val eps0 : float
(** Vacuum permittivity [F/m]. *)

val c : float
(** Speed of light [m/s] (exact). *)

val ev : float
(** One electron-volt in joules (numerically equal to {!q}). *)

val v_fermi_graphene : float
(** Fermi velocity of graphene, ≈ 1×10⁶ m/s. *)

val a_cc : float
(** Graphene carbon–carbon bond length [m] (0.142 nm). *)

val a_graphene : float
(** Graphene lattice constant [m] (√3·a_cc ≈ 0.246 nm). *)

val t_hopping : float
(** Nearest-neighbour tight-binding hopping energy of graphene [J]
    (≈ 2.7 eV). *)

val room_temperature : float
(** 300 K. *)

val thermal_voltage : float -> float
(** [thermal_voltage t] is [kB·t/q] in volts. *)
