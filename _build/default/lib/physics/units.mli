(** Unit conversions used throughout the library.

    Internal convention: all physics code works in SI (metres, volts, amps,
    joules, seconds, farads). These helpers convert at the API boundary —
    device dimensions are naturally quoted in nm, energies in eV, fields in
    MV/cm and current densities in A/cm². *)

(** {1 Length} *)

val nm : float -> float
(** Nanometres → metres. *)

val to_nm : float -> float
(** Metres → nanometres. *)

val um : float -> float
(** Micrometres → metres. *)

val angstrom : float -> float
(** Ångström → metres. *)

(** {1 Energy} *)

val ev_to_joule : float -> float
(** Electron-volts → joules. *)

val joule_to_ev : float -> float
(** Joules → electron-volts. *)

(** {1 Electric field} *)

val mv_per_cm : float -> float
(** MV/cm → V/m (1 MV/cm = 1e8 V/m). *)

val to_mv_per_cm : float -> float
(** V/m → MV/cm. *)

(** {1 Current density} *)

val a_per_cm2 : float -> float
(** A/cm² → A/m². *)

val to_a_per_cm2 : float -> float
(** A/m² → A/cm². *)

(** {1 Capacitance / charge per area} *)

val f_per_cm2 : float -> float
(** F/cm² → F/m². *)

val to_f_per_cm2 : float -> float
(** F/m² → F/cm². *)

val c_per_cm2 : float -> float
(** C/cm² → C/m². *)

val to_c_per_cm2 : float -> float
(** C/m² → C/cm². *)

(** {1 Time} *)

val ns : float -> float
(** Nanoseconds → seconds. *)

val us : float -> float
(** Microseconds → seconds. *)

val ms : float -> float
(** Milliseconds → seconds. *)

val years : float -> float
(** Years → seconds (Julian year, 365.25 days). *)
