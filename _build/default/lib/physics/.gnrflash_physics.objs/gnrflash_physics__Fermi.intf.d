lib/physics/fermi.mli:
