lib/physics/units.mli:
