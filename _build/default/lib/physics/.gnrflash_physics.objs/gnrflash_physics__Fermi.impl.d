lib/physics/fermi.ml: Constants Float
