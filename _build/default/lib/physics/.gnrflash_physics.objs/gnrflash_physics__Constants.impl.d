lib/physics/constants.ml: Float
