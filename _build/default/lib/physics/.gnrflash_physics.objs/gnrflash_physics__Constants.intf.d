lib/physics/constants.mli:
