lib/physics/units.ml: Constants
