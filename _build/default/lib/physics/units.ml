let nm x = x *. 1e-9
let to_nm x = x *. 1e9
let um x = x *. 1e-6
let angstrom x = x *. 1e-10

let ev_to_joule x = x *. Constants.ev
let joule_to_ev x = x /. Constants.ev

let mv_per_cm x = x *. 1e8
let to_mv_per_cm x = x /. 1e8

let a_per_cm2 x = x *. 1e4
let to_a_per_cm2 x = x /. 1e4

let f_per_cm2 x = x *. 1e4
let to_f_per_cm2 x = x /. 1e4

let c_per_cm2 x = x *. 1e4
let to_c_per_cm2 x = x /. 1e4

let ns x = x *. 1e-9
let us x = x *. 1e-6
let ms x = x *. 1e-3
let years x = x *. 365.25 *. 86400.
