(** Fermi–Dirac carrier statistics. Energies in joules, temperatures in
    kelvin. *)

val occupation : ef:float -> t:float -> float -> float
(** [occupation ~ef ~t e] is the Fermi–Dirac occupation
    [1/(1 + exp((e - ef)/kT))]. Handles the [t = 0] limit (step function)
    and avoids overflow for large arguments. *)

val maxwell_boltzmann : ef:float -> t:float -> float -> float
(** Non-degenerate (Boltzmann) limit [exp(-(e - ef)/kT)]. *)

val supply_difference : ef:float -> t:float -> qv:float -> float -> float
(** [supply_difference ~ef ~t ~qv e] is
    [kT·ln((1+exp((ef−e)/kT)) / (1+exp((ef−e−qv)/kT)))] — the Tsu–Esaki
    supply function for a junction with potential drop [qv] (joules),
    evaluated stably for both signs and large arguments. *)

val fermi_integral_half : float -> float
(** Fermi–Dirac integral of order 1/2, [F_{1/2}(η)], by the Bednarczyk
    analytic approximation (error < 0.4 % over all η) — used for degenerate
    carrier densities. *)
