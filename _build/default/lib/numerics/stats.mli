(** Descriptive statistics over [float array] samples. Functions that need a
    non-empty sample raise [Invalid_argument] on an empty array. *)

val mean : float array -> float
(** Arithmetic mean. *)

val variance : float array -> float
(** Unbiased sample variance (divides by [n-1]); [0.] for a single point. *)

val std : float array -> float
(** Sample standard deviation. *)

val min_max : float array -> float * float
(** Smallest and largest element. *)

val median : float array -> float
(** Median (average of the two central elements for even length). *)

val percentile : float -> float array -> float
(** [percentile p xs] for [p] in [[0, 100]], with linear interpolation
    between order statistics. @raise Invalid_argument for [p] out of range. *)

type histogram = {
  edges : float array;   (** [bins+1] bin edges *)
  counts : int array;    (** [bins] occupancy counts *)
}

val histogram : bins:int -> float array -> histogram
(** Equal-width histogram between the sample min and max (the max falls in
    the last bin). @raise Invalid_argument if [bins < 1]. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive samples. *)

val rms_log_ratio : float array -> float array -> float
(** Root-mean-square of [log10 (a/b)] over paired positive samples — a
    scale-free "how far apart are two curves" metric used in the
    experiment reports. *)
