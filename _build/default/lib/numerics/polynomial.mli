(** Dense polynomials in one variable, represented by their coefficient
    array in increasing-degree order: [[| c0; c1; c2 |]] is
    [c0 + c1 x + c2 x²]. *)

type t = float array

val eval : t -> float -> float
(** Horner evaluation. The zero polynomial ([[||]]) evaluates to [0.]. *)

val derivative : t -> t
(** Formal derivative. *)

val integral : ?c0:float -> t -> t
(** Antiderivative with constant term [c0] (default [0.]). *)

val add : t -> t -> t
(** Polynomial sum. *)

val mul : t -> t -> t
(** Polynomial product. *)

val scale : float -> t -> t
(** Multiply all coefficients by a scalar. *)

val degree : t -> int
(** Degree ignoring trailing (near-)zero coefficients; the zero polynomial
    has degree [-1]. *)

val fit : deg:int -> float array -> float array -> (t, string) result
(** [fit ~deg xs ys] is the least-squares polynomial of degree [deg] through
    the data, via the normal equations. Requires
    [Array.length xs = Array.length ys > deg]. *)

val roots_quadratic : float -> float -> float -> (float * float) option
(** [roots_quadratic a b c] returns the real roots of [a x² + b x + c]
    (smaller first), or [None] if complex or degenerate ([a = 0]). Uses the
    numerically stable citardauq form for the second root. *)
