type kind =
  | Linear
  | Hermite of float array (* derivative at each knot *)

type t = {
  xs : float array;
  ys : float array;
  kind : kind;
}

let validate xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Interp: length mismatch";
  if n < 2 then invalid_arg "Interp: need >= 2 points";
  for i = 0 to n - 2 do
    if xs.(i + 1) <= xs.(i) then invalid_arg "Interp: xs not strictly increasing"
  done

let linear xs ys =
  validate xs ys;
  { xs = Array.copy xs; ys = Array.copy ys; kind = Linear }

(* Natural cubic spline: solve the tridiagonal system for second derivatives,
   then store knot first-derivatives so evaluation shares the Hermite path. *)
let cubic_spline xs ys =
  validate xs ys;
  let n = Array.length xs in
  let h = Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i)) in
  (* Tridiagonal system for M (second derivatives), natural BC M0 = Mn = 0. *)
  let m = Array.make n 0. in
  if n > 2 then begin
    let dim = n - 2 in
    let diag = Array.init dim (fun i -> 2. *. (h.(i) +. h.(i + 1))) in
    let sub = Array.init dim (fun i -> if i = 0 then 0. else h.(i)) in
    let sup = Array.init dim (fun i -> if i = dim - 1 then 0. else h.(i + 1)) in
    let rhs =
      Array.init dim (fun i ->
          6.
          *. (((ys.(i + 2) -. ys.(i + 1)) /. h.(i + 1))
              -. ((ys.(i + 1) -. ys.(i)) /. h.(i))))
    in
    (* Thomas algorithm *)
    let c' = Array.make dim 0. and d' = Array.make dim 0. in
    c'.(0) <- sup.(0) /. diag.(0);
    d'.(0) <- rhs.(0) /. diag.(0);
    for i = 1 to dim - 1 do
      let denom = diag.(i) -. (sub.(i) *. c'.(i - 1)) in
      c'.(i) <- sup.(i) /. denom;
      d'.(i) <- (rhs.(i) -. (sub.(i) *. d'.(i - 1))) /. denom
    done;
    m.(dim) <- d'.(dim - 1);
    for i = dim - 2 downto 0 do
      m.(i + 1) <- d'.(i) -. (c'.(i) *. m.(i + 2))
    done
  end;
  (* Convert second derivatives to knot slopes. *)
  let d = Array.make n 0. in
  for i = 0 to n - 2 do
    d.(i) <-
      ((ys.(i + 1) -. ys.(i)) /. h.(i))
      -. (h.(i) /. 6. *. ((2. *. m.(i)) +. m.(i + 1)))
  done;
  d.(n - 1) <-
    ((ys.(n - 1) -. ys.(n - 2)) /. h.(n - 2))
    +. (h.(n - 2) /. 6. *. ((2. *. m.(n - 1)) +. m.(n - 2)));
  { xs = Array.copy xs; ys = Array.copy ys; kind = Hermite d }

(* Fritsch--Carlson monotone slopes. *)
let pchip xs ys =
  validate xs ys;
  let n = Array.length xs in
  let h = Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i)) in
  let delta = Array.init (n - 1) (fun i -> (ys.(i + 1) -. ys.(i)) /. h.(i)) in
  let d = Array.make n 0. in
  for i = 1 to n - 2 do
    if delta.(i - 1) *. delta.(i) > 0. then begin
      let w1 = (2. *. h.(i)) +. h.(i - 1) in
      let w2 = h.(i) +. (2. *. h.(i - 1)) in
      d.(i) <- (w1 +. w2) /. ((w1 /. delta.(i - 1)) +. (w2 /. delta.(i)))
    end
  done;
  let endpoint_slope h0 h1 d0 d1 =
    let d = (((2. *. h0) +. h1) *. d0 -. (h0 *. d1)) /. (h0 +. h1) in
    if d *. d0 <= 0. then 0.
    else if d0 *. d1 <= 0. && abs_float d > 3. *. abs_float d0 then 3. *. d0
    else d
  in
  if n = 2 then begin
    d.(0) <- delta.(0);
    d.(1) <- delta.(0)
  end else begin
    d.(0) <- endpoint_slope h.(0) h.(1) delta.(0) delta.(1);
    d.(n - 1) <- endpoint_slope h.(n - 2) h.(n - 3) delta.(n - 2) delta.(n - 3)
  end;
  { xs = Array.copy xs; ys = Array.copy ys; kind = Hermite d }

let segment_index xs x =
  (* Largest i with xs.(i) <= x, clamped to [0, n-2]. *)
  let n = Array.length xs in
  if x <= xs.(0) then 0
  else if x >= xs.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let eval t x =
  let i = segment_index t.xs x in
  let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
  let y0 = t.ys.(i) and y1 = t.ys.(i + 1) in
  match t.kind with
  | Linear -> y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))
  | Hermite d ->
    let h = x1 -. x0 in
    let s = (x -. x0) /. h in
    let h00 = ((1. +. (2. *. s)) *. (1. -. s)) *. (1. -. s) in
    let h10 = (s *. (1. -. s)) *. (1. -. s) in
    let h01 = s *. s *. (3. -. (2. *. s)) in
    let h11 = s *. s *. (s -. 1.) in
    (h00 *. y0) +. (h10 *. h *. d.(i)) +. (h01 *. y1) +. (h11 *. h *. d.(i + 1))

let eval_array t xs = Array.map (eval t) xs

let knots t = (Array.copy t.xs, Array.copy t.ys)
