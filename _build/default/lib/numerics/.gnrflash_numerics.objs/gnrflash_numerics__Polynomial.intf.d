lib/numerics/polynomial.mli:
