lib/numerics/optimize.mli:
