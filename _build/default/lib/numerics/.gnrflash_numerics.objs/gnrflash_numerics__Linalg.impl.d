lib/numerics/linalg.ml: Array Complex
