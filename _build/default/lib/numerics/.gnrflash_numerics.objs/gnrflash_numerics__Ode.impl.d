lib/numerics/ode.ml: Array Float Gnrflash_telemetry List
