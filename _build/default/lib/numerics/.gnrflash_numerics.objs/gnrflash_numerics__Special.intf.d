lib/numerics/special.mli:
