lib/numerics/interp.mli:
