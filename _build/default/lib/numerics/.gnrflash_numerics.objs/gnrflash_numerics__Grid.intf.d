lib/numerics/grid.mli:
