lib/numerics/regression.ml: Array
