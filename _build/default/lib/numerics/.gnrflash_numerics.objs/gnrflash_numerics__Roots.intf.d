lib/numerics/roots.mli:
