lib/numerics/grid.ml: Array
