lib/numerics/roots.ml: Float Gnrflash_telemetry
