lib/numerics/regression.mli:
