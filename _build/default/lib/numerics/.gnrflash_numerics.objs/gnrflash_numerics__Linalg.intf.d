lib/numerics/linalg.mli: Complex
