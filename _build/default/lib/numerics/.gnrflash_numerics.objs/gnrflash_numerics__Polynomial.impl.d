lib/numerics/polynomial.ml: Array Float Linalg
