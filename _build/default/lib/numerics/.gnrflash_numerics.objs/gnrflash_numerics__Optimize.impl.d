lib/numerics/optimize.ml: Array
