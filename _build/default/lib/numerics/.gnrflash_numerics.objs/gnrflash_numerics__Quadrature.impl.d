lib/numerics/quadrature.ml: Array Float Gnrflash_telemetry Hashtbl
