lib/numerics/stats.mli:
