lib/numerics/quadrature.mli:
