lib/numerics/ode.mli:
