(** One-dimensional numerical integration. *)

val trapezoid : (float -> float) -> float -> float -> n:int -> float
(** [trapezoid f a b ~n] is the composite trapezoid rule with [n]
    subintervals. @raise Invalid_argument if [n < 1]. *)

val trapezoid_samples : float array -> float array -> float
(** [trapezoid_samples xs ys] integrates tabulated samples [(xs, ys)] with
    the trapezoid rule. [xs] must be sorted increasing.
    @raise Invalid_argument on length mismatch or fewer than two points. *)

val simpson : (float -> float) -> float -> float -> n:int -> float
(** [simpson f a b ~n] is composite Simpson with [n] subintervals ([n] is
    rounded up to the next even integer). Exact for cubics. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> (float -> float) -> float -> float -> float
(** [adaptive_simpson f a b] integrates with recursive Simpson refinement to
    absolute tolerance [tol] (default [1e-10]). *)

val gauss_legendre : ?order:int -> (float -> float) -> float -> float -> float
(** [gauss_legendre ~order f a b] is Gauss–Legendre quadrature with [order]
    nodes (default 16). Nodes and weights are computed by Newton iteration on
    the Legendre polynomial and cached per order; exact for polynomials of
    degree [2*order - 1]. @raise Invalid_argument if [order < 1]. *)

val gauss_legendre_nodes : int -> (float array * float array)
(** [gauss_legendre_nodes n] is the pair [(nodes, weights)] on [[-1, 1]].
    Results are cached. *)

val integrate_to_inf :
  ?tol:float -> ?decades:float -> (float -> float) -> float -> float
(** [integrate_to_inf f a] approximates [∫_a^∞ f] for integrands decaying at
    least exponentially, by mapping successive geometric panels until a panel
    contributes less than [tol] (default [1e-12]) of the running total or
    [decades] (default 6) decades past [max a 1.] have been covered. *)
