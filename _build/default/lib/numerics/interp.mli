(** Interpolation of tabulated data.

    All constructors require [xs] strictly increasing and
    [Array.length xs = Array.length ys >= 2]; they raise [Invalid_argument]
    otherwise. Evaluation outside the knot range extrapolates using the
    boundary segment. *)

type t
(** An interpolant built from tabulated data. *)

val linear : float array -> float array -> t
(** Piecewise-linear interpolant. *)

val cubic_spline : float array -> float array -> t
(** Natural cubic spline (second derivative zero at both ends). *)

val pchip : float array -> float array -> t
(** Monotone piecewise-cubic Hermite interpolant (Fritsch–Carlson slopes):
    preserves monotonicity of the data, never overshoots. *)

val eval : t -> float -> float
(** Evaluate the interpolant. *)

val eval_array : t -> float array -> float array
(** Map {!eval} over an array of abscissae. *)

val knots : t -> float array * float array
(** The [(xs, ys)] the interpolant was built from. *)
