(** Linear regression, used e.g. to extract Fowler–Nordheim parameters from
    an FN plot (ln(J/E²) vs 1/E). *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;       (** coefficient of determination *)
  slope_stderr : float;    (** standard error of the slope *)
  intercept_stderr : float;(** standard error of the intercept *)
  n : int;                 (** number of points used *)
}

val ols : float array -> float array -> (fit, string) result
(** [ols xs ys] is the ordinary least-squares line through the data.
    Requires at least two points and non-constant [xs]. *)

val wls : weights:float array -> float array -> float array -> (fit, string) result
(** Weighted least squares with the given non-negative weights (standard
    errors are reported relative to the weighted residuals). *)

val through_origin : float array -> float array -> (float, string) result
(** Best-fit slope of a line forced through the origin. *)
