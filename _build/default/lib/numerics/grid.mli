(** Construction of one-dimensional sampling grids.

    All functions return freshly-allocated arrays; callers may mutate the
    result freely. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] evenly spaced points from [a] to [b] inclusive.
    [n] must be at least 2 (use [[|a|]] yourself for a single point).
    @raise Invalid_argument if [n < 2]. *)

val logspace : float -> float -> int -> float array
(** [logspace e0 e1 n] is [n] points spaced evenly on a base-10 logarithmic
    scale, from [10.**e0] to [10.**e1] inclusive.
    @raise Invalid_argument if [n < 2]. *)

val geomspace : float -> float -> int -> float array
(** [geomspace a b n] is [n] points spaced geometrically from [a] to [b]
    inclusive. Both endpoints must be strictly positive.
    @raise Invalid_argument if [n < 2] or an endpoint is non-positive. *)

val arange : ?step:float -> float -> float -> float array
(** [arange ?step a b] is the points [a, a+step, ...] strictly below [b]
    ([step] defaults to [1.0]).
    @raise Invalid_argument if [step <= 0.] or [b < a]. *)

val midpoints : float array -> float array
(** [midpoints xs] is the array of midpoints of consecutive elements;
    its length is [Array.length xs - 1]. *)

val map2 : (float -> float -> float) -> float array -> float array -> float array
(** Pointwise combination of two equal-length arrays.
    @raise Invalid_argument on length mismatch. *)
