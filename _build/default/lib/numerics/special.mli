(** Special functions needed by the tunneling models.

    Accuracy notes: [erf]/[erfc] are good to ~1e-7 absolute; [gamma] and
    [ln_gamma] to ~1e-10 relative away from poles; the Airy functions to
    better than ~1e-8 relative for |x| ≲ 30 (power series for small
    arguments, asymptotic expansions beyond). *)

val erf : float -> float
(** Error function. *)

val erfc : float -> float
(** Complementary error function, [1 - erf x]. *)

val gamma : float -> float
(** Gamma function (Lanczos approximation with reflection for [x < 0.5]).
    Returns [nan] at non-positive integers. *)

val ln_gamma : float -> float
(** Natural log of |Γ(x)| for [x > 0]. *)

val airy_ai : float -> float
(** Airy function of the first kind, Ai(x). *)

val airy_bi : float -> float
(** Airy function of the second kind, Bi(x). *)

val airy_ai' : float -> float
(** Derivative Ai'(x). *)

val airy_bi' : float -> float
(** Derivative Bi'(x). *)

val airy_all : float -> float * float * float * float
(** [(Ai, Ai', Bi, Bi')] at the given point, sharing intermediate work. *)
