(** Derivative-free minimization, used for the paper's "future work"
    voltage/thickness/reliability optimization study. *)

val golden_section :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float ->
  float * float
(** [golden_section f a b] minimizes a unimodal [f] on [[a, b]]; returns
    [(x_min, f x_min)]. *)

val grid_search_1d :
  n:int -> (float -> float) -> float -> float -> float * float
(** Exhaustive search over [n] evenly spaced points; returns the best
    [(x, f x)]. Useful as a robust pre-pass before a local method. *)

val grid_search_2d :
  nx:int -> ny:int -> (float -> float -> float) ->
  (float * float) -> (float * float) -> (float * float) * float
(** [grid_search_2d ~nx ~ny f (x0, x1) (y0, y1)] scans the rectangle and
    returns the best [((x, y), f x y)]. *)

val nelder_mead :
  ?tol:float -> ?max_iter:int -> ?scale:float ->
  (float array -> float) -> float array -> float array * float
(** [nelder_mead f x0] is the downhill-simplex method from initial point
    [x0] (initial simplex edge [scale], default [0.1] relative to each
    coordinate's magnitude, absolute [0.1] for zero coordinates). Returns
    the best vertex and its value after convergence ([tol] on the spread of
    vertex values, default [1e-10]) or [max_iter] iterations. *)

val minimize_penalized :
  penalty:(float array -> float) -> (float array -> float) ->
  float array -> float array * float
(** Convenience: Nelder–Mead on [fun x -> f x +. penalty x] — the standard
    way constraints are folded into the optimization examples. Returns the
    best point and the {e unpenalized} objective there. *)
