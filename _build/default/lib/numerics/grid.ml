let linspace a b n =
  if n < 2 then invalid_arg "Grid.linspace: n < 2";
  let h = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> if i = n - 1 then b else a +. (float_of_int i *. h))

let logspace e0 e1 n =
  if n < 2 then invalid_arg "Grid.logspace: n < 2";
  Array.map (fun e -> 10. ** e) (linspace e0 e1 n)

let geomspace a b n =
  if n < 2 then invalid_arg "Grid.geomspace: n < 2";
  if a <= 0. || b <= 0. then invalid_arg "Grid.geomspace: non-positive endpoint";
  logspace (log10 a) (log10 b) n

let arange ?(step = 1.0) a b =
  if step <= 0. then invalid_arg "Grid.arange: step <= 0";
  if b < a then invalid_arg "Grid.arange: b < a";
  let n = int_of_float (ceil ((b -. a) /. step -. 1e-12)) in
  let n = max n 0 in
  Array.init n (fun i -> a +. (float_of_int i *. step))

let midpoints xs =
  let n = Array.length xs in
  if n < 2 then [||]
  else Array.init (n - 1) (fun i -> 0.5 *. (xs.(i) +. xs.(i + 1)))

let map2 f xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Grid.map2: length mismatch";
  Array.init n (fun i -> f xs.(i) ys.(i))
