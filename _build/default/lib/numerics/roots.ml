module Tel = Gnrflash_telemetry.Telemetry

let default_tol = 1e-12

(* Relative closeness with a tiny absolute floor so roots at (or near) zero
   still converge; the floor must stay far below any physically meaningful
   magnitude (charges of 1e-17 C appear in the device layer). *)
let close tol a b =
  abs_float (b -. a) <= (tol *. max (abs_float a) (abs_float b)) +. 1e-300

let bisect ?(tol = default_tol) ?(max_iter = 200) f a b =
  let f x = Tel.count "roots/fn_eval"; f x in
  let fa = f a and fb = f b in
  if fa = 0. then Ok a
  else if fb = 0. then Ok b
  else if fa *. fb > 0. then begin
    Tel.count "roots/bracket_fail";
    Error "Roots.bisect: no sign change on bracket"
  end
  else begin
    let rec loop a fa b i =
      Tel.count "roots/bisect_iter";
      let m = 0.5 *. (a +. b) in
      if i >= max_iter || close tol a b then Ok m
      else
        let fm = f m in
        if fm = 0. then Ok m
        else if fa *. fm < 0. then loop a fa m (i + 1)
        else loop m fm b (i + 1)
    in
    loop a fa b 0
  end

(* Brent (1973): keep a bracketing pair (a, b) with b the best iterate; try
   inverse quadratic / secant interpolation, fall back to bisection whenever
   the candidate step is not clearly contracting. *)
let brent ?(tol = default_tol) ?(max_iter = 200) f a b =
  let f x = Tel.count "roots/fn_eval"; f x in
  let fa = f a and fb = f b in
  if fa = 0. then Ok a
  else if fb = 0. then Ok b
  else if fa *. fb > 0. then begin
    Tel.count "roots/bracket_fail";
    Error "Roots.brent: no sign change on bracket"
  end
  else begin
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    if abs_float !fa < abs_float !fb then begin
      let t = !a in a := !b; b := t;
      let t = !fa in fa := !fb; fb := t
    end;
    let c = ref !a and fc = ref !fa and d = ref 0. and mflag = ref true in
    let result = ref None in
    let i = ref 0 in
    while !result = None && !i < max_iter do
      incr i;
      Tel.count "roots/brent_iter";
      if !fb = 0. || close tol !a !b then result := Some !b
      else begin
        let s =
          if !fa <> !fc && !fb <> !fc then
            (* inverse quadratic interpolation *)
            (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
            +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
            +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
          else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
        in
        let lo = (3. *. !a +. !b) /. 4. and hi = !b in
        let lo, hi = if lo <= hi then lo, hi else hi, lo in
        let bad =
          s < lo || s > hi
          || (!mflag && abs_float (s -. !b) >= abs_float (!b -. !c) /. 2.)
          || ((not !mflag) && abs_float (s -. !b) >= abs_float (!c -. !d) /. 2.)
        in
        let s = if bad then 0.5 *. (!a +. !b) else s in
        mflag := bad;
        let fs = f s in
        d := !c;
        c := !b; fc := !fb;
        if !fa *. fs < 0. then begin b := s; fb := fs end
        else begin a := s; fa := fs end;
        if abs_float !fa < abs_float !fb then begin
          let t = !a in a := !b; b := t;
          let t = !fa in fa := !fb; fb := t
        end
      end
    done;
    match !result with
    | Some x -> Ok x
    | None -> Ok !b
  end

let newton ?(tol = default_tol) ?(max_iter = 100) ~f ~df x0 =
  let f x = Tel.count "roots/fn_eval"; f x in
  let df x = Tel.count "roots/fn_eval"; df x in
  let rec loop x i =
    if i >= max_iter then Error "Roots.newton: did not converge"
    else begin
      Tel.count "roots/newton_iter";
      let fx = f x in
      if fx = 0. then Ok x
      else
        let dfx = df x in
        if dfx = 0. then Error "Roots.newton: zero derivative"
        else
          let x' = x -. (fx /. dfx) in
          if Float.is_nan x' || Float.is_nan fx then
            Error "Roots.newton: NaN encountered"
          else if close tol x x' then Ok x'
          else loop x' (i + 1)
    end
  in
  loop x0 0

let secant ?(tol = default_tol) ?(max_iter = 100) f x0 x1 =
  let f x = Tel.count "roots/fn_eval"; f x in
  let rec loop x0 f0 x1 f1 i =
    Tel.count "roots/secant_iter";
    if i >= max_iter then Error "Roots.secant: did not converge"
    else if f1 = 0. then Ok x1
    else if f1 = f0 then Error "Roots.secant: flat secant"
    else
      let x2 = x1 -. (f1 *. (x1 -. x0) /. (f1 -. f0)) in
      if Float.is_nan x2 then Error "Roots.secant: NaN encountered"
      else if close tol x1 x2 then Ok x2
      else loop x1 f1 x2 (f x2) (i + 1)
  in
  loop x0 (f x0) x1 (f x1) 0

let bracket_root ?(grow = 1.6) ?(max_iter = 60) f a b =
  let f x = Tel.count "roots/fn_eval"; f x in
  if a = b then Error "Roots.bracket_root: empty interval"
  else begin
    let a = ref (min a b) and b = ref (max a b) in
    let fa = ref (f !a) and fb = ref (f !b) in
    let rec loop i =
      if !fa *. !fb <= 0. then Ok (!a, !b)
      else if i >= max_iter then begin
        Tel.count "roots/bracket_fail";
        Error "Roots.bracket_root: no sign change found"
      end
      else begin
        Tel.count "roots/bracket_expand";
        if abs_float !fa < abs_float !fb then begin
          a := !a -. (grow *. (!b -. !a));
          fa := f !a
        end else begin
          b := !b +. (grow *. (!b -. !a));
          fb := f !b
        end;
        loop (i + 1)
      end
    in
    loop 0
  end
