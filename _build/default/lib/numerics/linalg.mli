(** Small dense linear algebra: vectors as [float array], matrices as
    row-major [float array array]. Sized for the modest systems that appear
    in device modeling (spline systems, least squares, transfer matrices). *)

(** {1 Vectors} *)

val dot : float array -> float array -> float
(** Dot product. @raise Invalid_argument on length mismatch. *)

val norm2 : float array -> float
(** Euclidean norm. *)

val scale : float -> float array -> float array
(** [scale a x] is [a*x] (fresh array). *)

val add : float array -> float array -> float array
(** Elementwise sum. @raise Invalid_argument on length mismatch. *)

val sub : float array -> float array -> float array
(** Elementwise difference. @raise Invalid_argument on length mismatch. *)

(** {1 Matrices} *)

val mat_vec : float array array -> float array -> float array
(** Matrix-vector product. *)

val mat_mul : float array array -> float array array -> float array array
(** Matrix-matrix product. @raise Invalid_argument on dimension mismatch. *)

val transpose : float array array -> float array array
(** Matrix transpose. *)

val identity : int -> float array array
(** Identity matrix of the given order. *)

val solve : float array array -> float array -> (float array, string) result
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting. Returns [Error] for a (numerically) singular matrix. The
    inputs are not modified. *)

val solve_tridiag :
  sub:float array -> diag:float array -> sup:float array -> float array ->
  (float array, string) result
(** [solve_tridiag ~sub ~diag ~sup rhs] solves a tridiagonal system with the
    Thomas algorithm. [sub.(0)] and [sup.(n-1)] are ignored. *)

val lstsq : float array array -> float array -> (float array, string) result
(** [lstsq a b] is the least-squares solution of the overdetermined system
    [a x ~ b] via the normal equations. *)

(** {1 Complex 2x2 matrices} (for transfer-matrix tunneling calculations) *)

type cmat2 = {
  a : Complex.t; b : Complex.t;
  c : Complex.t; d : Complex.t;
}

val cmat2_mul : cmat2 -> cmat2 -> cmat2
(** 2x2 complex matrix product. *)

val cmat2_id : cmat2
(** 2x2 complex identity. *)

val cmat2_det : cmat2 -> Complex.t
(** Determinant. *)
