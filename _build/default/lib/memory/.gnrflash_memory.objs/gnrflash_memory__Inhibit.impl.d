lib/memory/inhibit.ml: Gnrflash_device Gnrflash_quantum
