lib/memory/nand_string.ml: Array Cell Gnrflash_device List
