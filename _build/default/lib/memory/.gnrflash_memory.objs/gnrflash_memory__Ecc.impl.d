lib/memory/ecc.ml: Array
