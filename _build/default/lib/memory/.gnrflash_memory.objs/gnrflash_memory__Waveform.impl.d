lib/memory/waveform.ml: Gnrflash_device List
