lib/memory/cell.mli: Gnrflash_device
