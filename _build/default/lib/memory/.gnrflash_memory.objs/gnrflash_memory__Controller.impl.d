lib/memory/controller.ml: Array Array_model Cell Gnrflash_device List
