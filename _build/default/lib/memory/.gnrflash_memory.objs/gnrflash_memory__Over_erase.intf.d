lib/memory/over_erase.mli: Cell
