lib/memory/energy.ml: Gnrflash_device Gnrflash_quantum
