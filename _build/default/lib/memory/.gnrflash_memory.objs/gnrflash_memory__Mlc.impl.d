lib/memory/mlc.ml: Array Gnrflash_device List
