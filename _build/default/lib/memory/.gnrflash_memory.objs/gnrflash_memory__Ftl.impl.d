lib/memory/ftl.ml: Array List Option Workload
