lib/memory/workload.ml: Array Array_model Cell Controller List Random
