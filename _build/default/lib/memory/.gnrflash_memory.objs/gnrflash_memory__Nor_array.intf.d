lib/memory/nor_array.mli: Cell Gnrflash_device Gnrflash_quantum
