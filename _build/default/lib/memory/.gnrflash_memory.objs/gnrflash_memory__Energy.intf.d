lib/memory/energy.mli: Gnrflash_device Gnrflash_quantum
