lib/memory/waveform.mli: Gnrflash_device
