lib/memory/array_model.mli: Cell Gnrflash_device
