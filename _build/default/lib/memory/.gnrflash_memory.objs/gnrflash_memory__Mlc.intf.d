lib/memory/mlc.mli: Gnrflash_device
