lib/memory/workload.mli: Controller
