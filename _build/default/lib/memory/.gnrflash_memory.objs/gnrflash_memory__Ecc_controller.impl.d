lib/memory/ecc_controller.ml: Array Array_model Controller Ecc Printf
