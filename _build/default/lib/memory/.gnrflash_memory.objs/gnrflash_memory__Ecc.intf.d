lib/memory/ecc.mli:
