lib/memory/nand_string.mli: Cell Gnrflash_device
