lib/memory/over_erase.ml: Cell Gnrflash_device
