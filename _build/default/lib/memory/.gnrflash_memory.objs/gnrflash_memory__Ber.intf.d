lib/memory/ber.mli: Mlc
