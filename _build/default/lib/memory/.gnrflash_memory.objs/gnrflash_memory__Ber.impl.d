lib/memory/ber.ml: Ecc Gnrflash_numerics Mlc
