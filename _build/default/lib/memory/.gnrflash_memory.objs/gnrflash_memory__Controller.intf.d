lib/memory/controller.mli: Array_model Gnrflash_device
