lib/memory/nor_array.ml: Array Cell Gnrflash_device Gnrflash_quantum
