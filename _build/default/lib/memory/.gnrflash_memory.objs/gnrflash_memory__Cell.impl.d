lib/memory/cell.ml: Gnrflash_device
