lib/memory/array_model.ml: Array Cell Gnrflash_device
