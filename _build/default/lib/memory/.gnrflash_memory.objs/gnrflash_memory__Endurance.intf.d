lib/memory/endurance.mli: Gnrflash_device
