lib/memory/inhibit.mli: Gnrflash_device
