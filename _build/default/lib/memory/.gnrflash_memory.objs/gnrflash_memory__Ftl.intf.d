lib/memory/ftl.mli: Workload
