lib/memory/endurance.ml: Cell Gnrflash_device List
