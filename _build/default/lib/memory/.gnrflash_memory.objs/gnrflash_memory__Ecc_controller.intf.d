lib/memory/ecc_controller.mli: Controller
