module Sp = Gnrflash_numerics.Special

let raw_cell_error_rate ~sigma_dvt ~margin =
  if sigma_dvt <= 0. || margin <= 0. then
    invalid_arg "Ber.raw_cell_error_rate: non-positive input";
  0.5 *. Sp.erfc (margin /. (sigma_dvt *. sqrt 2.))

let mlc_raw_ber ?(config = Mlc.default_mlc) ~sigma_dvt () =
  let n = Mlc.levels config in
  let total = ref 0. in
  for level = 0 to n - 1 do
    let margin = Mlc.read_margin config ~level in
    let references = if level = 0 || level = n - 1 then 1. else 2. in
    (* each reference crossing flips exactly one Gray-coded bit *)
    total := !total +. (references *. raw_cell_error_rate ~sigma_dvt ~margin)
  done;
  (* average error per stored bit: n levels, `bits` bits per cell *)
  !total /. float_of_int (n * config.Mlc.bits)

(* log of the binomial tail P(X >= 2) for small p: dominated by the
   two-error term C(n,2) p^2; we add the exact leading terms in log space
   to stay meaningful down to 1e-300. *)
let codeword_failure_probability ~raw_ber ~codeword_bits =
  if raw_ber <= 0. then 0.
  else if raw_ber >= 1. then 1.
  else begin
    let n = float_of_int codeword_bits in
    (* P(>=2) = 1 - (1-p)^n - n p (1-p)^{n-1}, evaluated stably *)
    let log1mp = log1p (-.raw_ber) in
    let p0 = exp (n *. log1mp) in
    let p1 = exp (log n +. log raw_ber +. ((n -. 1.) *. log1mp)) in
    let tail = 1. -. p0 -. p1 in
    if tail > 1e-12 then tail
    else begin
      (* cancellation regime: use the two-error leading term *)
      let log_c2 = log (n *. (n -. 1.) /. 2.) in
      exp (log_c2 +. (2. *. log raw_ber) +. ((n -. 2.) *. log1mp))
    end
  end

let page_failure_rate ~raw_ber ~codeword_bits ~codewords_per_page =
  if codeword_bits < 3 || codewords_per_page < 1 then
    invalid_arg "Ber.page_failure_rate: bad code geometry";
  let cw = codeword_failure_probability ~raw_ber ~codeword_bits in
  if cw <= 0. then 0.
  else if cw >= 1. then 1.
  else begin
    let m = float_of_int codewords_per_page in
    (* 1 - (1 - cw)^m, stable for tiny cw *)
    -.expm1 (m *. log1p (-.cw))
  end

type analysis = {
  sigma_dvt : float;
  raw_ber : float;
  codeword_failure : float;
  page_failure : float;
  acceptable : bool;
}

let analyze ?(config = Mlc.default_mlc) ?(codeword_data_bits = 64) ~sigma_dvt () =
  let raw_ber = mlc_raw_ber ~config ~sigma_dvt () in
  let codeword_bits = codeword_data_bits + Ecc.overhead codeword_data_bits in
  (* 4 kB page of user data *)
  let codewords_per_page = 4096 * 8 / codeword_data_bits in
  let codeword_failure = codeword_failure_probability ~raw_ber ~codeword_bits in
  let page_failure = page_failure_rate ~raw_ber ~codeword_bits ~codewords_per_page in
  {
    sigma_dvt;
    raw_ber;
    codeword_failure;
    page_failure;
    acceptable = page_failure < 1e-12;
  }

let max_tolerable_sigma ?(config = Mlc.default_mlc) ?(target = 1e-12) () =
  let fails sigma = (analyze ~config ~sigma_dvt:sigma ()).page_failure > target in
  let lo = ref 1e-3 and hi = ref 2. in
  if fails !lo then !lo
  else begin
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      if fails mid then hi := mid else lo := mid
    done;
    !lo
  end
