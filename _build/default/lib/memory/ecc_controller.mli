(** ECC-protected page operations: wraps {!Controller} so every programmed
    page carries a SEC-DED codeword and every read passes through the
    decoder — the path that turns a disturbed or leaky cell into a
    corrected bit instead of corrupted data. The demo arrays store one
    codeword per word line ([strings = data_bits + overhead]). *)

type page_read = {
  data : int array;       (** decoded payload (empty if uncorrectable) *)
  corrected : int;        (** corrections applied *)
  uncorrectable : bool;
}

val required_strings : data_bits:int -> int
(** Strings a block needs per page to hold the codeword. *)

val encode_page : data:int array -> int array
(** The codeword written for a payload (exposed for tests). *)

val program_page_ecc :
  Controller.t -> page:int -> data:int array -> (Controller.t, string) result
(** Encode and program a payload. Fails when the block's string count does
    not match the codeword length. *)

val read_page_ecc :
  Controller.t -> page:int -> data_bits:int ->
  (Controller.t * page_read, string) result
(** Read and decode a page. *)
