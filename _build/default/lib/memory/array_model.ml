module D = Gnrflash_device

type t = {
  pages : int;
  strings : int;
  cells : Cell.t array array;
  v_pass : float;
}

let make ?(v_pass = 6.) device ~pages ~strings =
  if pages < 1 || strings < 1 then invalid_arg "Array_model.make: non-positive dimensions";
  {
    pages;
    strings;
    cells = Array.init pages (fun _ -> Array.init strings (fun _ -> Cell.make device));
    v_pass;
  }

let check t ~page ~string_ =
  if page < 0 || page >= t.pages || string_ < 0 || string_ >= t.strings then
    invalid_arg "Array_model: coordinates out of range"

let get t ~page ~string_ =
  check t ~page ~string_;
  t.cells.(page).(string_)

let set t ~page ~string_ c =
  check t ~page ~string_;
  let cells = Array.map Array.copy t.cells in
  cells.(page).(string_) <- c;
  { t with cells }

let map_page t ~page f =
  if page < 0 || page >= t.pages then invalid_arg "Array_model.map_page: bad page";
  let cells = Array.map Array.copy t.cells in
  cells.(page) <- Array.map f cells.(page);
  { t with cells }

let map_all t f =
  { t with cells = Array.map (fun row -> Array.map f row) t.cells }

let page_bits ?(config = D.Readout.default) t ~page =
  if page < 0 || page >= t.pages then invalid_arg "Array_model.page_bits: bad page";
  Array.map (fun c -> Cell.to_bit (Cell.read ~config c)) t.cells.(page)

let wear_summary t =
  let total_cycles = ref 0 and n = ref 0 in
  let max_fluence = ref 0. and broken = ref 0 in
  Array.iter
    (fun row ->
       Array.iter
         (fun c ->
            incr n;
            total_cycles := !total_cycles + c.Cell.wear.D.Reliability.cycles;
            max_fluence := max !max_fluence c.Cell.wear.D.Reliability.fluence;
            if c.Cell.wear.D.Reliability.broken then incr broken)
         row)
    t.cells;
  (float_of_int !total_cycles /. float_of_int !n, !max_fluence, !broken)
