module D = Gnrflash_device

type config = {
  verify_low : float;
  verify_high : float;
  soft_vgs : float;
  soft_width : float;
  max_pulses : int;
}

let default =
  {
    verify_low = -0.5;
    verify_high = 0.5;
    soft_vgs = 10.;
    soft_width = 1e-6;
    max_pulses = 32;
  }

let is_over_erased ?(config = default) c = Cell.dvt c < config.verify_low

let recover ?(config = default) c =
  if not (is_over_erased ~config c) then Ok (c, 0)
  else begin
    let pulse = { D.Program_erase.vgs = config.soft_vgs; duration = config.soft_width } in
    let rec loop c pulses =
      if pulses >= config.max_pulses then Error "Over_erase.recover: pulse budget exhausted"
      else
        match Cell.program ~pulse c with
        | Error e -> Error e
        | Ok c ->
          let dvt = Cell.dvt c in
          if dvt > config.verify_high then Error "Over_erase.recover: overshoot"
          else if dvt >= config.verify_low then Ok (c, pulses + 1)
          else loop c (pulses + 1)
    in
    loop c 0
  end

let erase_with_recovery ?(config = default) c =
  match Cell.erase c with
  | Error e -> Error e
  | Ok c -> recover ~config c
