(** A flash block: a grid of cells organised as [pages] word lines ×
    [string_length]-independent NAND strings, with page-granular program
    and block-granular erase — the NAND organisation the paper targets
    ("FN tunneling is adopted in NAND flash"). *)

type t = {
  pages : int;            (** word lines per block *)
  strings : int;          (** bit lines (NAND strings) per block *)
  cells : Cell.t array array; (** [cells.(page).(string)] *)
  v_pass : float;
}

val make :
  ?v_pass:float -> Gnrflash_device.Fgt.t -> pages:int -> strings:int -> t
(** Fresh block of identical erased cells.
    @raise Invalid_argument for non-positive dimensions. *)

val get : t -> page:int -> string_:int -> Cell.t
(** Cell accessor. @raise Invalid_argument on bad coordinates. *)

val set : t -> page:int -> string_:int -> Cell.t -> t
(** Functional cell update. *)

val map_page : t -> page:int -> (Cell.t -> Cell.t) -> t
(** Apply a function to every cell of a page. *)

val map_all : t -> (Cell.t -> Cell.t) -> t
(** Apply a function to every cell of the block. *)

val page_bits : ?config:Gnrflash_device.Readout.config -> t -> page:int -> int array
(** Read a page as bits (1 = erased). *)

val wear_summary : t -> float * float * int
(** (mean cycles, max fluence [C/m²], broken-cell count) over the block. *)
