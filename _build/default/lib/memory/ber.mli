(** Bit-error-rate pipeline: process variation broadens each MLC level's
    threshold distribution; overlap past the read references produces raw
    bit errors; the SEC-DED code absorbs single errors per codeword. This
    module closes the loop between {!Gnrflash_device.Variation},
    {!Mlc} and {!Ecc}.

    Raw per-cell error probability for a level with placement spread σ and
    read margin m (Gaussian tails on both sides):
    [p = 0.5·erfc(m / (σ·√2))] per adjacent reference. *)

val raw_cell_error_rate : sigma_dvt:float -> margin:float -> float
(** Two-sided Gaussian tail probability of a cell read landing past a
    reference [margin] volts away, given placement spread [sigma_dvt].
    @raise Invalid_argument for non-positive inputs. *)

val mlc_raw_ber : ?config:Mlc.config -> sigma_dvt:float -> unit -> float
(** Average raw bit error rate over the levels of an MLC config (interior
    levels see two references, edge levels one; Gray coding makes each
    level error cost exactly one bit flip). *)

val page_failure_rate :
  raw_ber:float -> codeword_bits:int -> codewords_per_page:int -> float
(** Probability a page read fails: a SEC-DED codeword fails when ≥ 2 of
    its bits flip (binomial tail), and a page fails when any codeword
    does. Computed in log space for tiny rates. *)

type analysis = {
  sigma_dvt : float;
  raw_ber : float;
  codeword_failure : float;
  page_failure : float;     (** per 4 kB page (512 × 72-bit codewords) *)
  acceptable : bool;         (** page failure below 1e-12 *)
}

val analyze :
  ?config:Mlc.config -> ?codeword_data_bits:int -> sigma_dvt:float -> unit ->
  analysis
(** End-to-end: spread → raw BER → post-ECC page failure for a 4 kB page
    protected by [codeword_data_bits]-data-bit SEC-DED words (default
    64). *)

val max_tolerable_sigma :
  ?config:Mlc.config -> ?target:float -> unit -> float
(** Largest placement σ [V] keeping the page-failure rate below [target]
    (default 1e-12) — the variation budget the cell designer must meet,
    found by bisection. *)
