(** Block-level command layer: page program with ISPP verify and disturb
    accounting, block erase, page read. Operation counts and failure
    statistics are accumulated for the endurance experiments. *)

type stats = {
  programs : int;
  erases : int;
  reads : int;
  program_failures : int;   (** ISPP exhausted its voltage range *)
  disturb_events : int;     (** inhibited-cell exposures accumulated *)
}

val empty_stats : stats

type t = {
  block : Array_model.t;
  stats : stats;
  ispp : Gnrflash_device.Ispp.config;
  disturb : Gnrflash_device.Disturb.config;
}

val make :
  ?ispp:Gnrflash_device.Ispp.config ->
  ?disturb:Gnrflash_device.Disturb.config ->
  Array_model.t -> t
(** Wrap a block. Defaults: {!Gnrflash_device.Ispp.default} and the VGS/2
    inhibit scheme at the ISPP start voltage. *)

val program_page : t -> page:int -> data:int array -> (t, string) result
(** Program the page to [data] (1 bit per string; 0 = program the cell,
    1 = leave erased). Programmed cells run the ISPP loop; inhibited cells
    on the same word line accumulate one disturb exposure per ISPP pulse
    used. @raise Invalid_argument on a data-length mismatch. *)

val erase_block : t -> (t, string) result
(** Erase every cell of the block with the default erase pulse. *)

val read_page : t -> page:int -> (t * int array, string) result
(** Read the page; bumps the read counter. *)

val verify_page : t -> page:int -> data:int array -> bool
(** True when the stored page matches [data]. *)
