(** Single-error-correcting, double-error-detecting (SEC-DED) extended
    Hamming code over bit arrays — the error-correction layer every flash
    controller wraps around raw pages, here used to absorb
    disturb/retention bit flips. Works on any data length: for [k] data
    bits it appends [r] parity bits with [2^r >= k + r + 1], plus one
    overall parity bit. *)

type codeword = int array
(** Bits (0/1); layout: positions 1.. in classic Hamming order with parity
    bits at powers of two, plus the overall parity bit appended last. *)

val parity_bits : int -> int
(** [parity_bits k] is the number of Hamming parity bits needed for [k]
    data bits (excluding the overall parity bit).
    @raise Invalid_argument if [k <= 0]. *)

val encode : int array -> codeword
(** Encode data bits (each 0 or 1). @raise Invalid_argument on empty input
    or non-bit values. *)

type decode_result =
  | Clean of int array            (** no error detected; data returned *)
  | Corrected of int array * int  (** single error corrected; flipped
                                      codeword position (1-based,
                                      [0] = overall parity bit) *)
  | Uncorrectable                 (** double error detected *)

val decode : k:int -> codeword -> decode_result
(** Decode a codeword for [k] data bits.
    @raise Invalid_argument on a length mismatch. *)

val overhead : int -> int
(** Total parity bits (Hamming + overall) for [k] data bits. *)

val inject_error : codeword -> pos:int -> codeword
(** Flip one bit (0-based array index) — test helper for fault injection.
    @raise Invalid_argument on a bad index. *)
