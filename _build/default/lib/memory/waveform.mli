(** Piecewise-constant control-gate bias waveforms, applied segment by
    segment through the transient solver. Lets experiments compose pulse
    trains (program → verify-read gap → re-program …) without re-deriving
    the charge each time. *)

type segment = {
  vgs : float;       (** bias during the segment [V] *)
  duration : float;  (** s, > 0 *)
}

type t = segment list

val pulse_train : vgs:float -> width:float -> gap:float -> count:int -> t
(** [count] pulses of [width] seconds at [vgs], separated by grounded gaps
    of [gap] seconds. @raise Invalid_argument for non-positive width/count. *)

val staircase : v0:float -> step:float -> width:float -> count:int -> t
(** ISPP-style staircase: pulse [i] at [v0 + i·step]. *)

val total_duration : t -> float
(** Sum of segment durations. *)

val apply :
  Gnrflash_device.Fgt.t -> qfg0:float -> t ->
  ((float * float) list, string) result
(** Run the waveform; returns the [(time, qfg)] at each segment boundary
    (cumulative time, charge carried across segments). *)
