type op =
  | Write of { page : int; data : int array }
  | Read of { page : int }

type pattern =
  | Sequential
  | Uniform
  | Zipf of float

let zipf_sampler ~state ~exponent ~n =
  (* inverse-CDF sampling over ranks 1..n with P(k) ∝ k^-exponent *)
  let weights = Array.init n (fun i -> (float_of_int (i + 1)) ** (-.exponent)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
       acc := !acc +. w;
       cdf.(i) <- !acc /. total)
    weights;
  fun () ->
    let u = Random.State.float state 1. in
    let rec find lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then find (mid + 1) hi else find lo mid
      end
    in
    find 0 (n - 1)

let generate ~seed pattern ~pages ~strings ~ops ~read_fraction =
  if pages < 1 || strings < 1 || ops < 0 then invalid_arg "Workload.generate: bad sizes";
  if read_fraction < 0. || read_fraction > 1. then
    invalid_arg "Workload.generate: read_fraction out of [0, 1]";
  let state = Random.State.make [| seed |] in
  let next_page =
    match pattern with
    | Sequential ->
      let counter = ref (-1) in
      fun () ->
        incr counter;
        !counter mod pages
    | Uniform -> fun () -> Random.State.int state pages
    | Zipf exponent ->
      if exponent <= 0. then invalid_arg "Workload.generate: zipf exponent <= 0";
      zipf_sampler ~state ~exponent ~n:pages
  in
  List.init ops (fun _ ->
      let page = next_page () in
      if Random.State.float state 1. < read_fraction then Read { page }
      else begin
        let data = Array.init strings (fun _ -> Random.State.int state 2) in
        Write { page; data }
      end)

type replay_stats = {
  writes : int;
  reads : int;
  erase_cycles : int;
  failed_verifies : int;
  max_fluence : float;
  broken_cells : int;
}

let page_holds_charge (ctrl : Controller.t) ~page =
  let block = ctrl.Controller.block in
  let dirty = ref false in
  for s = 0 to block.Array_model.strings - 1 do
    let c = Array_model.get block ~page ~string_:s in
    if Cell.dvt c > 0.5 then dirty := true
  done;
  !dirty

let replay ctrl ops =
  let rec go ctrl writes reads erases fails = function
    | [] ->
      let _, max_fluence, broken = Array_model.wear_summary ctrl.Controller.block in
      Ok
        ( ctrl,
          {
            writes;
            reads;
            erase_cycles = erases;
            failed_verifies = fails;
            max_fluence;
            broken_cells = broken;
          } )
    | Read { page } :: rest ->
      (match Controller.read_page ctrl ~page with
       | Error e -> Error e
       | Ok (ctrl, _bits) -> go ctrl writes (reads + 1) erases fails rest)
    | Write { page; data } :: rest ->
      let needs_erase = page_holds_charge ctrl ~page in
      let prep =
        if needs_erase then Controller.erase_block ctrl else Ok ctrl
      in
      (match prep with
       | Error e -> Error e
       | Ok ctrl ->
         (match Controller.program_page ctrl ~page ~data with
          | Error e -> Error e
          | Ok ctrl ->
            let ok = Controller.verify_page ctrl ~page ~data in
            go ctrl (writes + 1) reads
              (erases + if needs_erase then 1 else 0)
              (fails + if ok then 0 else 1)
              rest))
  in
  go ctrl 0 0 0 0 ops
