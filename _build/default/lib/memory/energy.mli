(** Per-operation energy accounting: the system-level comparison of FN and
    channel-hot-electron programming that motivates the paper's Section II
    ("FN requires < 1 nA per cell … allowing many cells to be programmed
    at a time"). Combines the cell currents with the charge-pump supply
    model. *)

type op_energy = {
  cell_energy : float;    (** energy delivered into the cell [J] *)
  supply_energy : float;  (** energy drawn from V_dd via the pump [J] *)
  pump_stages : int;
}

val fn_program_energy :
  ?pump:Gnrflash_device.Charge_pump.t ->
  Gnrflash_device.Fgt.t -> vgs:float -> pulse_width:float -> op_energy
(** Energy of one FN programming pulse: cell current is the tunneling
    current integrated over the transient; the pump is sized for [vgs] at
    that load. *)

val che_program_energy :
  ?pump:Gnrflash_device.Charge_pump.t ->
  ?che:Gnrflash_quantum.Che.params ->
  drain_current:float -> vds:float -> vgs:float -> pulse_width:float ->
  unit -> op_energy
(** Energy of one channel-hot-electron pulse: dominated by the drain
    current flowing for the whole pulse. *)

val page_program_comparison :
  cells:int -> (string * float) list
(** Total supply energy to program a page of [cells] cells with each
    mechanism — the headline FN-vs-CHE table ([(label, joules)]). *)
