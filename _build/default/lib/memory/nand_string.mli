(** A NAND string: cells in series between a bit line and the source line.
    Reading one page biases the selected word line at V_read and all the
    others at V_pass; the string conducts only if every unselected cell is
    turned on and the selected cell's threshold is below V_read. *)

type t = {
  cells : Cell.t array;   (** word-line order, index 0 nearest the bit line *)
  v_pass : float;         (** pass bias for unselected word lines [V] *)
}

val make : ?v_pass:float -> Cell.t array -> t
(** Build a string (default V_pass = 6 V).
    @raise Invalid_argument on an empty string. *)

val length : t -> int
(** Number of cells in the string. *)

val read_bit :
  ?config:Gnrflash_device.Readout.config -> t -> selected:int -> (int, string) result
(** Sense the selected cell: 1 (erased, conducting) or 0 (programmed).
    Fails if any unselected cell's threshold exceeds V_pass (string broken
    — usually from pass-disturb drift) or on a bad index. *)

val update_cell : t -> int -> Cell.t -> t
(** Functional update of one cell. @raise Invalid_argument on a bad index. *)

val string_current :
  ?config:Gnrflash_device.Readout.config -> t -> selected:int -> float
(** Series current through the whole string [A]: the smallest per-cell
    read current, the bottleneck of the series chain. *)

val pass_disturb_events : t -> selected:int -> int array
(** Indices of cells that see the pass bias during a read/program of the
    selected page — inputs to the disturb accounting. *)
