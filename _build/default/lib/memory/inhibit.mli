(** Program-inhibit by channel self-boosting — how real NAND protects
    cells that share the selected word line: the inhibited bit line is
    precharged and floated, so when the word lines rise the channel
    couples up with them, slashing the tunnel-oxide field instead of
    merely halving the gate bias (the VGS/2 scheme of {!Gnrflash_device.Disturb}).

    Boosted channel potential: [V_ch = precharge + r_boost·V_pgm] with the
    coupling ratio [r_boost = C_ox/(C_ox + C_dep)] ≈ 0.8 for typical
    stacks; the inhibited cell then sees only [V_pgm − V_ch] across its
    gate stack. *)

type config = {
  precharge : float;      (** bit-line precharge left in the channel [V] *)
  boost_ratio : float;    (** channel-to-gate coupling ratio, (0, 1) *)
  leak_time : float;      (** boost decay time constant [s] (junction leakage) *)
}

val default : config
(** 1.1 V precharge, 0.8 boost ratio, 100 µs decay. *)

val boosted_channel : config -> vgs_program:float -> t_elapsed:float -> float
(** Channel potential of the inhibited string [V] at a time into the
    pulse; decays exponentially toward 0 with [leak_time]. *)

val inhibited_tunnel_field :
  config -> Gnrflash_device.Fgt.t -> vgs_program:float -> qfg:float ->
  t_elapsed:float -> float
(** Field across the inhibited cell's tunnel oxide — the channel boost
    subtracts from the FG-to-channel drop. *)

val disturb_ratio :
  config -> Gnrflash_device.Fgt.t -> vgs_program:float -> float
(** J(inhibited, boosted)/J(inhibited, VGS/2 scheme) at the start of the
    pulse — how much better self-boosting is than half-select (≪ 1). *)

val dvt_after_events :
  ?config:config -> Gnrflash_device.Fgt.t -> vgs_program:float ->
  pulse_width:float -> events:int -> float
(** Accumulated threshold drift of a boosted-inhibited cell after
    [events] neighbouring program pulses (quasi-static stepping with the
    decaying boost). *)
