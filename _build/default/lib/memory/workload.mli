(** Synthetic workload traces — the substitute for production traces the
    paper's setting has no access to. Deterministic given the seed. *)

type op =
  | Write of { page : int; data : int array }
  | Read of { page : int }

type pattern =
  | Sequential    (** pages written round-robin *)
  | Uniform       (** pages drawn uniformly at random *)
  | Zipf of float (** skewed page popularity with the given exponent > 0 *)

val generate :
  seed:int -> pattern -> pages:int -> strings:int -> ops:int ->
  read_fraction:float -> op list
(** [ops] operations over a block of [pages]×[strings]; each write carries
    a random data pattern. [read_fraction] in [0, 1] is the probability an
    operation is a read. @raise Invalid_argument on bad parameters. *)

type replay_stats = {
  writes : int;
  reads : int;
  erase_cycles : int;      (** block erases triggered by page rewrites *)
  failed_verifies : int;   (** pages that did not read back as written *)
  max_fluence : float;
  broken_cells : int;
}

val replay : Controller.t -> op list -> (Controller.t * replay_stats, string) result
(** Drive the controller with the trace. A write to a page that already
    holds programmed cells triggers a block erase first (flash semantics:
    no in-place overwrite), counted in [erase_cycles]. Each write is
    verified by reading back. *)
