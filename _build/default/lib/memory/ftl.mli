(** A page-mapping flash translation layer over a multi-block device:
    out-of-place updates, greedy garbage collection and wear-aware
    allocation — the firmware layer that turns the erase-before-write
    device of this library into a rewritable address space.

    The FTL tracks page state and per-block erase counts (metadata
    simulation, the standard methodology for FTL studies); the underlying
    per-cell physics lives in {!Controller} and is exercised by the
    smaller array tests. *)

type page_state =
  | Free
  | Valid of int   (** holds this logical page *)
  | Invalid        (** superseded data awaiting garbage collection *)

type t

type config = {
  blocks : int;          (** physical blocks *)
  pages_per_block : int;
  gc_threshold : int;    (** trigger GC when free pages drop to this *)
  endurance_limit : int; (** erases after which a block is retired *)
}

val default_config : config
(** 16 blocks × 64 pages, GC at 8 free pages, 10⁴-erase endurance. *)

val create : config -> t
(** Fresh, fully-free device. @raise Invalid_argument on non-positive
    dimensions or a GC threshold that can never be satisfied. *)

val logical_capacity : t -> int
(** Logical pages exposed: 7/8 of the physical pages excluding one
    reserved block — the over-provisioning that guarantees garbage
    collection always has room to relocate a victim's valid pages. *)

val write : t -> lpn:int -> (t, string) result
(** Write (or rewrite) a logical page. Triggers garbage collection when
    free space is low. Fails when the device is out of usable space or the
    logical page number is out of range. *)

val read : t -> lpn:int -> (int * int) option
(** Physical [(block, page)] currently holding the logical page, if
    written. *)

val trim : t -> lpn:int -> t
(** Discard a logical page (marks its physical page invalid). *)

type stats = {
  host_writes : int;      (** pages written by the host *)
  device_writes : int;    (** pages physically programmed (incl. GC copies) *)
  gc_runs : int;
  erases : int;
  retired_blocks : int;
  write_amplification : float;  (** device_writes / host_writes *)
  max_erase_count : int;
  min_erase_count : int;        (** over non-retired blocks *)
}

val stats : t -> stats
(** Counters since creation. *)

val wear_spread : t -> float
(** Max minus min block erase count — flatness of the wear-leveling. *)

val run_trace : t -> Workload.op list -> (t, string) result
(** Replay a workload trace: writes map to {!write} (page index modulo the
    logical capacity), reads are metadata no-ops. *)
