module D = Gnrflash_device
module Q = Gnrflash_quantum

type config = {
  precharge : float;
  boost_ratio : float;
  leak_time : float;
}

let default = { precharge = 1.1; boost_ratio = 0.8; leak_time = 100e-6 }

let boosted_channel c ~vgs_program ~t_elapsed =
  if c.boost_ratio <= 0. || c.boost_ratio >= 1. then
    invalid_arg "Inhibit: boost_ratio out of (0, 1)";
  let v0 = c.precharge +. (c.boost_ratio *. vgs_program) in
  v0 *. exp (-.max t_elapsed 0. /. c.leak_time)

let inhibited_tunnel_field c (t : D.Fgt.t) ~vgs_program ~qfg ~t_elapsed =
  let v_ch = boosted_channel c ~vgs_program ~t_elapsed in
  let vfg = D.Fgt.vfg t ~vgs:vgs_program ~qfg in
  (vfg -. v_ch) /. t.D.Fgt.xto

let disturb_ratio c (t : D.Fgt.t) ~vgs_program =
  let j_of_field field =
    if field <= 0. then 0.
    else Q.Fn.current_density t.D.Fgt.tunnel_fn ~field
  in
  let boosted =
    j_of_field (inhibited_tunnel_field c t ~vgs_program ~qfg:0. ~t_elapsed:0.)
  in
  let half = j_of_field (D.Fgt.tunnel_field t ~vgs:(vgs_program /. 2.) ~qfg:0.) in
  if half <= 0. then 0. else boosted /. half

let dvt_after_events ?(config = default) (t : D.Fgt.t) ~vgs_program ~pulse_width
    ~events =
  if events < 0 then invalid_arg "Inhibit.dvt_after_events: negative events";
  if pulse_width <= 0. then invalid_arg "Inhibit.dvt_after_events: bad pulse width";
  (* per-pulse quasi-static integration of the decaying-boost current *)
  let steps = 16 in
  let qfg = ref 0. in
  for _ = 1 to events do
    let dt = pulse_width /. float_of_int steps in
    for k = 0 to steps - 1 do
      let t_el = (float_of_int k +. 0.5) *. dt in
      let field =
        inhibited_tunnel_field config t ~vgs_program ~qfg:!qfg ~t_elapsed:t_el
      in
      if field > 0. then begin
        let j = Q.Fn.current_density t.D.Fgt.tunnel_fn ~field in
        qfg := !qfg -. (j *. t.D.Fgt.area *. dt)
      end
    done
  done;
  D.Fgt.threshold_shift t ~qfg:!qfg
