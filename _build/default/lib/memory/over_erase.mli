(** Over-erase management: the symmetric erase pulse drives the floating
    gate past neutral (ΔVT < 0), which in a NOR array turns the cell into
    an always-on leaker that masks every other cell on its bit line. The
    standard firmware fix — modeled here — is erase-verify followed by
    soft programming: short, low-bias program pulses that nudge
    over-erased cells back above the erase-verify level without
    re-programming them. *)

type config = {
  verify_low : float;    (** ΔVT floor; cells below are over-erased [V] *)
  verify_high : float;   (** soft programming must stay below this [V] *)
  soft_vgs : float;      (** soft-program bias (well below program bias) [V] *)
  soft_width : float;    (** per-pulse width [s] *)
  max_pulses : int;
}

val default : config
(** Window [−0.5, +0.5] V, 10 V / 1 µs soft pulses, 32-pulse budget. *)

val is_over_erased : ?config:config -> Cell.t -> bool
(** True when the stored ΔVT is below the verify floor. *)

val recover : ?config:config -> Cell.t -> (Cell.t * int, string) result
(** Soft-program an over-erased cell back into the verify window. Returns
    the recovered cell and the pulses used; fails if the budget is
    exhausted or a pulse overshoots [verify_high]. Cells already in the
    window are returned unchanged with 0 pulses. *)

val erase_with_recovery :
  ?config:config -> Cell.t -> (Cell.t * int, string) result
(** Full erase flow: erase pulse, then {!recover} — what
    "erase a NOR block" actually executes. *)
