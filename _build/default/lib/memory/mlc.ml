module D = Gnrflash_device

type config = {
  bits : int;
  dvt_spacing : float;
  dvt_first : float;
  placement : float;
  ispp : D.Ispp.config;
}

let default_mlc =
  {
    bits = 2;
    dvt_spacing = 1.5;
    dvt_first = 1.5;
    placement = 0.25;
    ispp = { D.Ispp.default with D.Ispp.v_step = 0.25; pulse_width = 2e-6 };
  }

let default_tlc =
  {
    bits = 3;
    dvt_spacing = 0.8;
    dvt_first = 1.0;
    placement = 0.15;
    ispp = { D.Ispp.default with D.Ispp.v_step = 0.1; pulse_width = 1e-6 };
  }

let levels c = 1 lsl c.bits

let target_dvt c ~level =
  if level < 0 || level >= levels c then invalid_arg "Mlc.target_dvt: level out of range";
  if level = 0 then 0.
  else c.dvt_first +. (float_of_int (level - 1) *. c.dvt_spacing)

let gray_encode n = n lxor (n lsr 1)

let gray_decode g =
  let rec go acc g = if g = 0 then acc else go (acc lxor g) (g lsr 1) in
  go 0 g

let level_to_bits c level =
  let g = gray_encode level in
  Array.init c.bits (fun i -> (g lsr (c.bits - 1 - i)) land 1)

let bits_to_level c bits =
  if Array.length bits <> c.bits then invalid_arg "Mlc.bits_to_level: length mismatch";
  let g = Array.fold_left (fun acc b -> (acc lsl 1) lor (b land 1)) 0 bits in
  gray_decode g

let program_level ?(config = default_mlc) device ~qfg0 ~level =
  if level < 0 || level >= levels config then Error "Mlc.program_level: level out of range"
  else if level = 0 then Ok (qfg0, 0)
  else begin
    let target = target_dvt config ~level in
    let ispp = { config.ispp with D.Ispp.target_dvt = target } in
    match D.Ispp.run ~config:ispp device ~qfg0 with
    | Error e -> Error e
    | Ok r ->
      if not r.D.Ispp.passed then Error "Mlc.program_level: ISPP failed to verify"
      else begin
        match List.rev r.D.Ispp.steps with
        | [] -> Error "Mlc.program_level: no pulses recorded"
        | last :: _ ->
          let placed = last.D.Ispp.dvt in
          (* over-programming past the window is a placement failure; the
             undershoot side is prevented by the verify loop itself *)
          if placed > target +. config.dvt_spacing then
            Error "Mlc.program_level: overshot the level window"
          else Ok (last.D.Ispp.qfg, r.D.Ispp.pulses_used)
      end
  end

let read_level ?(config = default_mlc) device ~qfg =
  let dvt = D.Fgt.threshold_shift device ~qfg in
  let n = levels config in
  (* reference levels at midpoints between adjacent targets *)
  let rec classify level =
    if level >= n - 1 then level
    else begin
      let here = target_dvt config ~level in
      let next = target_dvt config ~level:(level + 1) in
      let reference = 0.5 *. (here +. next) in
      if dvt < reference then level else classify (level + 1)
    end
  in
  classify 0

let read_margin c ~level =
  let n = levels c in
  let here = target_dvt c ~level in
  let margins = ref infinity in
  if level > 0 then begin
    let below = target_dvt c ~level:(level - 1) in
    margins := min !margins (here -. (0.5 *. (here +. below)))
  end;
  if level < n - 1 then begin
    let above = target_dvt c ~level:(level + 1) in
    margins := min !margins ((0.5 *. (here +. above)) -. here)
  end;
  !margins
