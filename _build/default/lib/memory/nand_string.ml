module D = Gnrflash_device

type t = {
  cells : Cell.t array;
  v_pass : float;
}

let make ?(v_pass = 6.) cells =
  if Array.length cells = 0 then invalid_arg "Nand_string.make: empty string";
  { cells; v_pass }

let length t = Array.length t.cells

let check_index t i =
  if i < 0 || i >= Array.length t.cells then Error "Nand_string: index out of range"
  else Ok ()

let read_bit ?(config = D.Readout.default) t ~selected =
  match check_index t selected with
  | Error e -> Error e
  | Ok () ->
    let pass_ok = ref true in
    Array.iteri
      (fun i c ->
         if i <> selected then begin
           let vt = Cell.effective_vt ~config c in
           if vt > t.v_pass then pass_ok := false
         end)
      t.cells;
    if not !pass_ok then Error "Nand_string: unselected cell blocks the string"
    else begin
      match Cell.read ~config t.cells.(selected) with
      | Cell.Erased -> Ok 1
      | Cell.Programmed -> Ok 0
    end

let update_cell t i c =
  if i < 0 || i >= Array.length t.cells then invalid_arg "Nand_string.update_cell: bad index";
  let cells = Array.copy t.cells in
  cells.(i) <- c;
  { t with cells }

let string_current ?(config = D.Readout.default) t ~selected =
  let current i c =
    let bias = if i = selected then config.D.Readout.vread else t.v_pass in
    let cfg = { config with D.Readout.vread = bias } in
    D.Readout.read_current cfg c.Cell.device ~qfg:c.Cell.qfg
  in
  let result = ref infinity in
  Array.iteri (fun i c -> result := min !result (current i c)) t.cells;
  !result

let pass_disturb_events t ~selected =
  let n = Array.length t.cells in
  Array.of_list (List.filter (fun i -> i <> selected) (List.init n (fun i -> i)))
