type codeword = int array

let check_bit name b = if b <> 0 && b <> 1 then invalid_arg ("Ecc." ^ name ^ ": non-bit value")

let parity_bits k =
  if k <= 0 then invalid_arg "Ecc.parity_bits: k <= 0";
  let rec go r = if 1 lsl r >= k + r + 1 then r else go (r + 1) in
  go 2

let is_power_of_two n = n land (n - 1) = 0

(* Hamming layout over positions 1..n where n = k + r: parity bits at
   powers of two, data bits filling the rest in order. *)
let encode data =
  let k = Array.length data in
  if k = 0 then invalid_arg "Ecc.encode: empty data";
  Array.iter (check_bit "encode") data;
  let r = parity_bits k in
  let n = k + r in
  let word = Array.make (n + 1) 0 in
  (* place data bits (1-based positions) *)
  let next = ref 0 in
  for pos = 1 to n do
    if not (is_power_of_two pos) then begin
      word.(pos) <- data.(!next);
      incr next
    end
  done;
  (* compute parity bits: parity at 2^i covers positions with that bit set *)
  for i = 0 to r - 1 do
    let p = 1 lsl i in
    let acc = ref 0 in
    for pos = 1 to n do
      if pos land p <> 0 && pos <> p then acc := !acc lxor word.(pos)
    done;
    word.(p) <- !acc
  done;
  (* overall parity over positions 1..n, appended at the end *)
  let overall = ref 0 in
  for pos = 1 to n do
    overall := !overall lxor word.(pos)
  done;
  (* emitted codeword drops the unused index 0 and appends overall parity *)
  Array.append (Array.sub word 1 n) [| !overall |]

type decode_result =
  | Clean of int array
  | Corrected of int array * int
  | Uncorrectable

let extract_data ~k word_1based n =
  let data = Array.make k 0 in
  let next = ref 0 in
  for pos = 1 to n do
    if not (is_power_of_two pos) then begin
      data.(!next) <- word_1based.(pos);
      incr next
    end
  done;
  data

let decode ~k codeword =
  let r = parity_bits k in
  let n = k + r in
  if Array.length codeword <> n + 1 then invalid_arg "Ecc.decode: length mismatch";
  Array.iter (check_bit "decode") codeword;
  (* rebuild 1-based view *)
  let word = Array.make (n + 1) 0 in
  Array.blit codeword 0 word 1 n;
  let stored_overall = codeword.(n) in
  let syndrome = ref 0 in
  for i = 0 to r - 1 do
    let p = 1 lsl i in
    let acc = ref 0 in
    for pos = 1 to n do
      if pos land p <> 0 then acc := !acc lxor word.(pos)
    done;
    if !acc <> 0 then syndrome := !syndrome lor p
  done;
  let overall = ref 0 in
  for pos = 1 to n do
    overall := !overall lxor word.(pos)
  done;
  let overall_ok = !overall = stored_overall in
  match !syndrome, overall_ok with
  | 0, true -> Clean (extract_data ~k word n)
  | 0, false ->
    (* the overall parity bit itself flipped *)
    Corrected (extract_data ~k word n, 0)
  | s, false when s >= 1 && s <= n ->
    (* single-bit error at position s: flip and correct *)
    word.(s) <- 1 - word.(s);
    Corrected (extract_data ~k word n, s)
  | _, false -> Uncorrectable (* syndrome points outside the word *)
  | _, true -> Uncorrectable  (* nonzero syndrome but overall parity holds: double error *)

let overhead k = parity_bits k + 1

let inject_error codeword ~pos =
  if pos < 0 || pos >= Array.length codeword then invalid_arg "Ecc.inject_error: bad index";
  let w = Array.copy codeword in
  w.(pos) <- 1 - w.(pos);
  w
