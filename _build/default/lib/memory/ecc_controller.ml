type page_read = {
  data : int array;
  corrected : int;       (* bit corrections applied across codewords *)
  uncorrectable : bool;
}

(* Split a word line into SEC-DED codewords: with [data_bits] payload per
   codeword the page must provide data_bits + overhead strings per word.
   For the small demo arrays we use one codeword per page. *)
let encode_page ~data =
  Ecc.encode data

let program_page_ecc ctrl ~page ~data =
  let coded = encode_page ~data in
  if Array.length coded <> ctrl.Controller.block.Array_model.strings then
    Error
      (Printf.sprintf
         "Ecc_controller: page needs %d strings for %d data bits"
         (Array.length coded) (Array.length data))
  else Controller.program_page ctrl ~page ~data:coded

let read_page_ecc ctrl ~page ~data_bits =
  match Controller.read_page ctrl ~page with
  | Error e -> Error e
  | Ok (ctrl, raw) ->
    (match Ecc.decode ~k:data_bits raw with
     | Ecc.Clean data -> Ok (ctrl, { data; corrected = 0; uncorrectable = false })
     | Ecc.Corrected (data, _) ->
       Ok (ctrl, { data; corrected = 1; uncorrectable = false })
     | Ecc.Uncorrectable ->
       Ok (ctrl, { data = [||]; corrected = 0; uncorrectable = true }))

let required_strings ~data_bits = data_bits + Ecc.overhead data_bits
