(** Multi-level cell (MLC) operation: storing more than one bit per
    floating gate by programming to one of 2^bits threshold windows.
    Levels are targeted with ISPP (tight placement) and sensed against
    intermediate reference levels, exactly as production MLC NAND does.

    Level convention (2-bit example, Gray-coded so adjacent levels differ
    in one bit): level 0 = erased = "11", level 1 = "10", level 2 = "00",
    level 3 = "01". *)

type config = {
  bits : int;           (** bits per cell, >= 1 (1 = SLC, 2 = MLC, 3 = TLC) *)
  dvt_spacing : float;  (** threshold spacing between adjacent levels [V] *)
  dvt_first : float;    (** target ΔVT of level 1 [V] *)
  placement : float;    (** acceptable placement error around a target [V] *)
  ispp : Gnrflash_device.Ispp.config;  (** base ISPP settings (target overridden) *)
}

val default_mlc : config
(** 2 bits/cell, levels at 1.5 / 3.0 / 4.5 V with ±0.25 V placement. *)

val default_tlc : config
(** 3 bits/cell, 0.8 V spacing starting at 1.0 V. *)

val levels : config -> int
(** Number of threshold levels, [2^bits]. *)

val target_dvt : config -> level:int -> float
(** Programming target for a level ([0.] for the erased level 0).
    @raise Invalid_argument for a level out of range. *)

val gray_encode : int -> int
(** Standard binary-reflected Gray code. *)

val gray_decode : int -> int
(** Inverse of {!gray_encode}. *)

val level_to_bits : config -> int -> int array
(** Bit pattern (msb first) stored by a level, Gray-coded. *)

val bits_to_level : config -> int array -> int
(** Inverse of {!level_to_bits}. @raise Invalid_argument on length
    mismatch. *)

val program_level :
  ?config:config -> Gnrflash_device.Fgt.t -> qfg0:float -> level:int ->
  (float * int, string) result
(** Program a cell (from charge [qfg0], normally erased) to the given
    level with ISPP targeting that level's window. Returns
    [(qfg_after, pulses_used)]. Level 0 is a no-op. Fails when ISPP cannot
    place the threshold. *)

val read_level : ?config:config -> Gnrflash_device.Fgt.t -> qfg:float -> int
(** Sense the stored level by comparing ΔVT against the midpoints between
    adjacent level targets. *)

val read_margin : config -> level:int -> float
(** Distance from a level's target to the nearest read reference [V] —
    shrinks as levels are packed more densely. *)
