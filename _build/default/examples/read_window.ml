(* Sensing the stored bit: ID-VG transfer curves of the MLGNR read
   transistor in the erased and programmed states, the read window between
   them, and the over-erase recovery flow that keeps NOR bit lines usable.

   Run with: dune exec examples/read_window.exe *)

module Fet = Gnrflash_device.Fet
module O = Gnrflash_memory.Over_erase
module Cell = Gnrflash_memory.Cell
module D = Gnrflash_device

let () =
  (* the transfer-curve pair *)
  let fig = Gnrflash.Extensions.id_vg_figure ~dvt_programmed:5. () in
  Gnrflash_plot.Ascii.print ~width:64 ~height:18 fig;

  let fet = Fet.default in
  Printf.printf "\nread window at VREAD = 3 V, VDS = 50 mV: %.1e (on/off)\n"
    (Fet.read_window fet ~dvt_programmed:5. ~vread:3. ~vds:0.05);
  Printf.printf "subthreshold swing: %.1f mV/dec\n"
    (Fet.subthreshold_swing fet ~vds:0.05);

  (* over-erase: what an unmanaged NOR erase does, and the recovery *)
  print_newline ();
  let cell = Cell.make D.Fgt.paper_default in
  let programmed = match Cell.program cell with Ok c -> c | Error e -> failwith e in
  (match Cell.erase programmed with
   | Error e -> failwith e
   | Ok erased ->
     Printf.printf "raw erase leaves dVT = %.2f V (over-erased: %b)\n"
       (Cell.dvt erased)
       (O.is_over_erased erased);
     (match O.recover erased with
      | Error e -> Printf.printf "recovery failed: %s\n" e
      | Ok (fixed, pulses) ->
        Printf.printf "soft programming: %d pulses -> dVT = %.2f V (in window: %b)\n"
          pulses (Cell.dvt fixed)
          (not (O.is_over_erased fixed))))
