(* Extracting Fowler-Nordheim parameters from an FN plot, as the paper's
   references [1]-[3], [9] do: generate a J-E characteristic (with
   synthetic measurement noise), plot ln(J/E^2) against 1/E, fit the line,
   and recover the barrier height.

   Run with: dune exec examples/fn_extraction.exe *)

module Q = Gnrflash_quantum
module N = Gnrflash_numerics
module C = Gnrflash_physics.Constants

let () =
  let truth = Q.Fn.coefficients ~phi_b_ev:3.2 ~m_ox_rel:0.42 in
  Printf.printf "true parameters:      A = %.4e A/V^2, B = %.4e V/m\n" truth.Q.Fn.a
    truth.Q.Fn.b;

  (* synthetic measurement: J at 20 fields with 5%% multiplicative noise *)
  let fields = N.Grid.linspace 8e8 1.8e9 20 in
  let rng = Random.State.make [| 2014 |] in
  let noisy =
    Array.map
      (fun e ->
         let j = Q.Fn.current_density truth ~field:e in
         j *. (1. +. (0.05 *. ((2. *. Random.State.float rng 1.) -. 1.))))
      fields
  in

  match Q.Fn_plot.extract ~fields ~currents:noisy with
  | Error e -> prerr_endline ("extraction failed: " ^ e)
  | Ok ext ->
    Printf.printf "extracted from noisy: A = %.4e A/V^2, B = %.4e V/m (R^2 = %.6f)\n"
      ext.Q.Fn_plot.a ext.Q.Fn_plot.b ext.Q.Fn_plot.r_squared;

    (* recover the barrier height from B = 8 pi sqrt(2 m) phi^1.5 / 3 q h *)
    let m_ox = 0.42 *. C.m0 in
    let phi_j =
      (ext.Q.Fn_plot.b *. 3. *. C.q *. C.h /. (8. *. Float.pi *. sqrt (2. *. m_ox)))
      ** (2. /. 3.)
    in
    Printf.printf "implied barrier height: %.3f eV (true: 3.200 eV)\n"
      (phi_j /. C.ev);

    (* show the FN plot itself *)
    let pts = Q.Fn_plot.points_of_data ~fields ~currents:noisy in
    let series = Gnrflash_plot.Series.make ~label:"ln(J/E^2) vs 1/E" pts in
    Gnrflash_plot.Ascii.print ~width:60 ~height:14
      (Gnrflash_plot.Figure.make ~title:"FN plot" ~xlabel:"1/E [m/V]"
         ~ylabel:"ln(J/E^2)" [ series ])
