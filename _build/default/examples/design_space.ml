(* The paper's future-work item: "optimizing the supply voltage, tunneling
   current density and oxide thickness for optimum performance". This
   example scans the (GCR, XTO) design space for the fastest programming
   that stays under the oxide breakdown field with adequate endurance, then
   polishes the best point with Nelder-Mead.

   Run with: dune exec examples/design_space.exe *)

module E = Gnrflash.Extensions
module Opt = Gnrflash_numerics.Optimize

let () =
  let best, points = E.optimize_design () in
  Printf.printf "design grid (%d points):\n" (List.length points);
  Printf.printf "  %-6s %-8s %-13s %-14s %-12s %s\n" "GCR" "XTO[nm]" "t_prog[s]"
    "E_peak[MV/cm]" "endurance" "ok";
  List.iter
    (fun (p : E.design_point) ->
       Printf.printf "  %-6.2f %-8.1f %-13.3e %-14.2f %-12.2e %b\n" p.E.gcr p.E.xto_nm
         p.E.program_time (p.E.peak_field /. 1e8) p.E.endurance p.E.feasible)
    points;
  Printf.printf "\ngrid best: GCR=%.2f, XTO=%.1f nm, t_prog=%.3e s\n" best.E.gcr
    best.E.xto_nm best.E.program_time;

  (* Local refinement: minimize log program time with a penalty for
     breaking the field / endurance constraints. *)
  let objective x =
    let gcr = x.(0) and xto_nm = x.(1) in
    if gcr <= 0.3 || gcr >= 0.8 || xto_nm <= 3.5 || xto_nm >= 10. then 1e6
    else begin
      let p = E.evaluate_design ~gcr ~xto_nm in
      let base =
        if Float.is_finite p.E.program_time then log10 p.E.program_time else 6.
      in
      let penalty =
        (if p.E.feasible then 0. else 100.)
        +. if p.E.endurance < 1e4 then 50. else 0.
      in
      base +. penalty
    end
  in
  let x, fx = Opt.nelder_mead ~scale:0.08 objective [| best.E.gcr; best.E.xto_nm |] in
  let refined = E.evaluate_design ~gcr:x.(0) ~xto_nm:x.(1) in
  Printf.printf
    "refined:   GCR=%.3f, XTO=%.2f nm, t_prog=%.3e s (log10 objective %.2f)\n" x.(0)
    x.(1) refined.E.program_time fx;
  Printf.printf "  peak field %.2f MV/cm, predicted endurance %.2e cycles\n"
    (refined.E.peak_field /. 1e8) refined.E.endurance
