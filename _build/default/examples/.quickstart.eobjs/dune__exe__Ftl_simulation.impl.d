examples/ftl_simulation.ml: Gnrflash_memory Printf
