examples/mlc_demo.mli:
