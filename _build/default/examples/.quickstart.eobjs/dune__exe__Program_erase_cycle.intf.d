examples/program_erase_cycle.mli:
