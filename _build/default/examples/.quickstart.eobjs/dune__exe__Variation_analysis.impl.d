examples/variation_analysis.ml: Array Gnrflash_device Gnrflash_numerics Printf String
