examples/fn_extraction.mli:
