examples/nand_page_program.mli:
