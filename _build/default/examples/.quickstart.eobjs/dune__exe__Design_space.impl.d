examples/design_space.ml: Array Float Gnrflash Gnrflash_numerics List Printf
