examples/mlc_demo.ml: Array Gnrflash_device Gnrflash_memory Printf
