examples/read_window.mli:
