examples/read_window.ml: Gnrflash Gnrflash_device Gnrflash_memory Gnrflash_plot Printf
