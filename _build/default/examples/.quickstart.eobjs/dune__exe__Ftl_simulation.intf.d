examples/ftl_simulation.mli:
