examples/program_erase_cycle.ml: Array Gnrflash_device Gnrflash_memory List Printf
