examples/variation_analysis.mli:
