examples/quickstart.mli:
