examples/nand_page_program.ml: Array Gnrflash_device Gnrflash_memory List Printf String
