examples/quickstart.ml: Gnrflash Gnrflash_device Gnrflash_plot Gnrflash_quantum Printf
