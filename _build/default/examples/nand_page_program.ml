(* NAND block demo: program a checkerboard across a small block through
   the controller (ISPP with verify + program-disturb on inhibited cells),
   then read every page back and audit wear.

   Run with: dune exec examples/nand_page_program.exe *)

module M = Gnrflash_memory
module D = Gnrflash_device

let () =
  let pages = 4 and strings = 8 in
  let block = M.Array_model.make D.Fgt.paper_default ~pages ~strings in
  let ctrl = M.Controller.make block in
  let pattern p = Array.init strings (fun s -> (p + s) mod 2) in

  let ctrl =
    List.fold_left
      (fun ctrl p ->
         match M.Controller.program_page ctrl ~page:p ~data:(pattern p) with
         | Ok ctrl ->
           Printf.printf "programmed page %d\n" p;
           ctrl
         | Error e -> failwith ("program_page: " ^ e))
      ctrl
      (List.init pages (fun p -> p))
  in

  print_newline ();
  List.iter
    (fun p ->
       match M.Controller.read_page ctrl ~page:p with
       | Ok (_, bits) ->
         let want = pattern p in
         let shown =
           String.concat "" (Array.to_list (Array.map string_of_int bits))
         in
         Printf.printf "page %d: read %s  expected %s  %s\n" p shown
           (String.concat "" (Array.to_list (Array.map string_of_int want)))
           (if bits = want then "OK" else "MISMATCH")
       | Error e -> Printf.printf "page %d: read failed (%s)\n" p e)
    (List.init pages (fun p -> p));

  print_newline ();
  let stats = ctrl.M.Controller.stats in
  Printf.printf "controller stats: %d programs, %d disturb exposures, %d failures\n"
    stats.M.Controller.programs stats.M.Controller.disturb_events
    stats.M.Controller.program_failures;
  let mean_cycles, max_fluence, broken = M.Array_model.wear_summary ctrl.M.Controller.block in
  Printf.printf "wear: mean %.1f cycles/cell, max fluence %.3e C/m^2, %d broken\n"
    mean_cycles max_fluence broken;

  (* a synthetic workload over the same block *)
  print_newline ();
  let ops =
    M.Workload.generate ~seed:42 (M.Workload.Zipf 1.1) ~pages ~strings ~ops:24
      ~read_fraction:0.5
  in
  match M.Workload.replay ctrl ops with
  | Error e -> failwith ("replay: " ^ e)
  | Ok (_, s) ->
    Printf.printf
      "zipf workload: %d writes, %d reads, %d block erases, %d verify failures\n"
      s.M.Workload.writes s.M.Workload.reads s.M.Workload.erase_cycles
      s.M.Workload.failed_verifies
