(* Multi-level cell demo: pack two bits per MLGNR floating gate by
   programming to one of four threshold windows, then read them back
   against intermediate references.

   Run with: dune exec examples/mlc_demo.exe *)

module M = Gnrflash_memory.Mlc
module F = Gnrflash_device.Fgt

let () =
  let device = F.paper_default in
  let config = M.default_mlc in
  Printf.printf "MLC: %d bits/cell, %d levels\n" config.M.bits (M.levels config);
  Printf.printf "%-7s %-6s %-12s %-12s %-8s %-8s\n" "level" "bits" "target dVT"
    "placed dVT" "pulses" "margin";
  for level = 0 to M.levels config - 1 do
    match M.program_level ~config device ~qfg0:0. ~level with
    | Error e -> Printf.printf "level %d: FAILED (%s)\n" level e
    | Ok (qfg, pulses) ->
      let bits = M.level_to_bits config level in
      let placed = F.threshold_shift device ~qfg in
      let read = M.read_level ~config device ~qfg in
      Printf.printf "%-7d %d%d     %-12.2f %-12.3f %-8d %-8.2f %s\n" level bits.(0)
        bits.(1)
        (M.target_dvt config ~level)
        placed pulses
        (M.read_margin config ~level)
        (if read = level then "OK" else "READ MISMATCH")
  done;

  (* TLC: how much tighter the windows get *)
  print_newline ();
  let tlc = M.default_tlc in
  Printf.printf "TLC comparison: %d levels, margin %.3f V (MLC: %.3f V)\n"
    (M.levels tlc)
    (M.read_margin tlc ~level:1)
    (M.read_margin config ~level:1)
