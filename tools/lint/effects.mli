(** Effect classification tables shared by the inter-procedural analyzer
    ({!Callgraph}) and the rule engine ({!Lint_engine}).

    Everything here is a pure, per-identifier (or per-type) judgment; the
    graph construction and reachability live in {!Callgraph}. Identifiers
    are canonical dotted names as produced by {!normalize_name} on
    [Path.name] (e.g. ["Stdlib.Hashtbl.replace"],
    ["Gnrflash_parallel.Pool.run"]). *)

val normalize_name : string -> string
(** [Path.name] prints library-wrapped modules as [Lib__Module]; normalize
    to dotted form (and drop printer ['!'] marks) so one spelling covers
    both in-library and cross-library references. *)

val resolve : (string, string) Hashtbl.t -> string -> string
(** [resolve aliases name] rewrites the head segment of [name] through a
    local [module M = Other.Module] alias table. *)

(** How a module-level [let] right-hand side is classified for the L8
    shared-state rule. *)
type alloc_class =
  | Hazard of string
      (** allocates unsynchronized mutable state; the payload names the
          shape (["ref"], ["Hashtbl.t"], ...) for diagnostics *)
  | Synchronized
      (** allocates state with safe concurrent semantics ([Atomic],
          [Mutex], [Domain.DLS], ...) *)
  | Opaque  (** cannot tell from the allocation head alone *)

val classify_alloc : string -> alloc_class

val write_arg : string -> int option
(** [write_arg id] is [Some i] when a call to [id] mutates its [i]-th
    positional argument in place ([:=], [Hashtbl.replace], [Buffer.add_*],
    [Array.set], ...). *)

val nondet_of : string -> string option
(** [Some description] when referencing [id] injects nondeterminism into
    an otherwise deterministic computation: the global [Random] PRNG
    (the seeded [Random.State] API is exempt), wall/process clocks, and
    hash-order dependent [Hashtbl] folds. Physical equality is detected
    separately at application sites (it needs argument types). *)

val is_lock : string -> bool
(** Mutex acquisition — a function that locks is treated as a
    synchronization boundary and exempted from L8's shared-state checks. *)

val is_physical_eq : string -> bool
(** [Stdlib.==] / [Stdlib.!=]. *)

val is_boxed_type : Types.type_expr -> bool
(** Definitely-boxed judgement for the physical-equality check: true for
    records/variants/tuples/arrows, false for immediates ([int], [bool],
    [char], [unit]) and for type variables (can't tell). *)

val marshal_hazards : Types.type_expr -> string list
(** Structural scan of a type for values [Marshal] cannot round-trip
    across the [Shard] process boundary: arrows (closures), first-class
    modules, objects, and known custom/abstract blocks ([Mutex.t],
    [in_channel], [Atomic.t], ...). Only syntactically visible structure
    is scanned — abbreviations are not expanded (documented
    approximation). Returns human-readable descriptions, deduplicated. *)

val is_solver_error_name : string -> bool
(** The typed solver-error payload ([..Solver_error.t]), by canonical
    name. [Types.get_desc] does not expand abbreviations
    ([type error = Solver_error.t]), so the analyzer records candidate
    names in phase 1 and chases them through its own type-alias table in
    phase 2 before applying this test. *)

val is_result_name : string -> bool
(** The [result] type constructor (any spelling). *)

val entry_of : string -> string option
(** [Some short] when [id] is a parallel entry point whose worker-closure
    arguments start sweep-reachable code: [Sweep.map]/[mapi]/[init]/
    [map_list]/[grid] (library and umbrella spellings), [Pool.run], and
    [Shard.run]. [short] is the display name (e.g. ["Sweep.map"]). *)

val is_shard_entry : string -> bool
(** Entry points whose frames cross a process boundary ([Shard.run]). *)

val is_dls_new_key : string -> bool
(** [Domain.DLS.new_key] — the L12 target. *)
