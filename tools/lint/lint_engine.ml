type rule = L1 | L2 | L3 | L4 | L5 | L6 | L7 | L8 | L9 | L10 | L11 | L12 | L13

let rule_id = function
  | L1 -> "L1"
  | L2 -> "L2"
  | L3 -> "L3"
  | L4 -> "L4"
  | L5 -> "L5"
  | L6 -> "L6"
  | L7 -> "L7"
  | L8 -> "L8"
  | L9 -> "L9"
  | L10 -> "L10"
  | L11 -> "L11"
  | L12 -> "L12"
  | L13 -> "L13"

let all_rules = [ L1; L2; L3; L4; L5; L6; L7; L8; L9; L10; L11; L12; L13 ]

let rule_of_int = function
  | 1 -> Some L1
  | 2 -> Some L2
  | 3 -> Some L3
  | 4 -> Some L4
  | 5 -> Some L5
  | 6 -> Some L6
  | 7 -> Some L7
  | 8 -> Some L8
  | 9 -> Some L9
  | 10 -> Some L10
  | 11 -> Some L11
  | 12 -> Some L12
  | 13 -> Some L13
  | _ -> None

let rule_of_string s =
  let s = String.trim s in
  if String.length s >= 2 && (s.[0] = 'L' || s.[0] = 'l') then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n -> rule_of_int n
    | None -> None
  else None

type finding = {
  rule : rule;
  file : string;
  line : int;
  message : string;
  suppressed : bool;
  reason : string option;
}

type config = {
  solver_basenames : string list;
  l3_exempt_basenames : string list;
}

let default_config =
  {
    solver_basenames =
      [ "roots.ml"; "ode.ml"; "transient.ml"; "program_erase.ml"; "variation.ml" ];
    l3_exempt_basenames = [ "roots.ml"; "ode.ml"; "quadrature.ml" ];
  }

type report = {
  findings : finding list;
  files_scanned : int;
  graph : (string * string list) list;
}

(* ---------- canonical names ---------- *)

(* Shared with the inter-procedural analyzer (Effects/Callgraph). *)
let normalize_name = Effects.normalize_name

(* Local [module M = Other.Module] aliases, so [M.f] resolves to its
   canonical dotted name. *)
let collect_aliases (str : Typedtree.structure) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_module mb -> (
          match (mb.mb_name.txt, mb.mb_expr.mod_desc) with
          | Some name, Tmod_ident (p, _) ->
              Hashtbl.replace tbl name (normalize_name (Path.name p))
          | _ -> ())
      | _ -> ())
    str.str_items;
  tbl

let resolve = Effects.resolve

(* ---------- suppression comments ---------- *)

type allow = {
  a_line : int;
  a_rules : rule list;
  a_reason : string option;
}

let is_rule_char c = c = 'L' || c = 'l' || ('0' <= c && c <= '9') || c = ',' || c = ' '

(* Parse one source line for "lint: allow L<n>[, L<m>...] — reason". *)
let allow_of_line lnum line =
  let find_sub hay needle from =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      if i + nn > nh then None
      else if String.sub hay i nn = needle then Some i
      else go (i + 1)
    in
    go from
  in
  match find_sub line "lint:" 0 with
  | None -> None
  | Some i -> (
      match find_sub line "allow" (i + 5) with
      | None -> None
      | Some j ->
          let start = j + 5 in
          let n = String.length line in
          (* rule-id segment: chars drawn from [L0-9, ] *)
          let stop = ref start in
          while !stop < n && is_rule_char line.[!stop] do
            incr stop
          done;
          let seg = String.sub line start (!stop - start) in
          let rules =
            String.split_on_char ',' seg
            |> List.concat_map (String.split_on_char ' ')
            |> List.filter_map (fun tok -> rule_of_string (String.trim tok))
          in
          if rules = [] then None
          else
            (* everything after the rule ids, minus the comment closer and
               any leading dash/em-dash bytes, is the reason *)
            let rest = String.sub line !stop (n - !stop) in
            let rest =
              match find_sub rest "*)" 0 with
              | Some k -> String.sub rest 0 k
              | None -> rest
            in
            let rest =
              let len = String.length rest in
              let k = ref 0 in
              let continue = ref true in
              while !continue && !k < len do
                if rest.[!k] = '-' || rest.[!k] = ' ' then incr k
                else if
                  (* UTF-8 em/en dash: e2 80 93|94 *)
                  !k + 2 < len
                  && rest.[!k] = '\xe2'
                  && rest.[!k + 1] = '\x80'
                  && (rest.[!k + 2] = '\x93' || rest.[!k + 2] = '\x94')
                then k := !k + 3
                else continue := false
              done;
              String.trim (String.sub rest !k (len - !k))
            in
            let reason = if rest = "" then None else Some rest in
            Some { a_line = lnum; a_rules = rules; a_reason = reason })

let read_lines path =
  try
    let ic = open_in_bin path in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  with Sys_error _ -> []

(* An allow comment may span several source lines; merge the span and
   attribute it to the line holding the comment closer, so a multi-line
   [(* lint: allow ... *)] block directly above a finding still counts as
   "the line above". *)
let allows_of_file path =
  let lines = Array.of_list (read_lines path) in
  let has_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  let n = Array.length lines in
  let acc = ref [] in
  let i = ref 0 in
  while !i < n do
    let line = lines.(!i) in
    if has_sub line "lint:" then begin
      let buf = Buffer.create 128 in
      Buffer.add_string buf line;
      let j = ref !i in
      while (not (has_sub lines.(!j) "*)")) && !j < n - 1 do
        incr j;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (String.trim lines.(!j))
      done;
      (match allow_of_line (!j + 1) (Buffer.contents buf) with
       | Some a -> acc := a :: !acc
       | None -> ());
      i := !j + 1
    end
    else incr i
  done;
  List.rev !acc

(* A finding is suppressed by an allow on its own line or the line above;
   L5 (whole-file) by an allow anywhere. *)
let suppression allows ~line ~rule =
  let matches a =
    List.mem rule a.a_rules
    && (rule = L5 || a.a_line = line || a.a_line = line - 1)
  in
  match List.find_opt matches allows with
  | Some a -> Some (Option.value a.a_reason ~default:"")
  | None -> None

(* ---------- typed-tree checks ---------- *)

let l3_targets =
  let mk m fns = List.map (fun f -> "Gnrflash_numerics." ^ m ^ "." ^ f) fns in
  mk "Roots" [ "bisect"; "brent"; "newton"; "secant"; "bracket_root" ]
  @ mk "Ode" [ "euler"; "rk4"; "rkf45"; "rkf45_event"; "solve_scalar" ]
  @ mk "Quadrature"
      [
        "trapezoid";
        "trapezoid_samples";
        "simpson";
        "adaptive_simpson";
        "gauss_legendre";
        "integrate_to_inf";
      ]

(* L6 context: quadrature drivers whose argument subtrees (most importantly
   the inline integrand lambda) count as "inside an integral". *)
let quad_heads =
  List.map
    (fun f -> "Gnrflash_numerics.Quadrature." ^ f)
    [
      "trapezoid";
      "trapezoid_samples";
      "simpson";
      "adaptive_simpson";
      "gauss_legendre";
      "integrate_to_inf";
    ]

(* L6 targets: adaptive WKB evaluators. Calling one per quadrature node
   re-runs an adaptive Simpson recursion for every energy; the memoized
   closed form ({!Gnrflash_quantum.Wkb.Cache}) does the same work once per
   barrier. *)
let l6_targets =
  [ "Gnrflash_quantum.Wkb.action_integral"; "Gnrflash_quantum.Wkb.transmission" ]

let span_wrappers = [ "Gnrflash_telemetry.Telemetry.span" ]

(* L7 targets: Sweep entry points, under both the low-level library name
   and the umbrella re-export. A hardcoded [~chunk] at these call sites
   overrides the probe-based auto-tuning that keeps small work items from
   drowning in queue traffic — the constant that looked right on one
   machine is wrong on the next. *)
let l7_targets =
  List.concat_map
    (fun m ->
      List.map
        (fun f -> m ^ "." ^ f)
        [ "map"; "mapi"; "init"; "map_list"; "grid" ])
    [ "Gnrflash_parallel.Sweep"; "Gnrflash.Sweep" ]

let is_float_type ty =
  match Types.get_desc ty with
  | Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

type raw_finding = { r_rule : rule; r_line : int; r_message : string }

(* L13 scope: a module opts into the hot-loop allocation rule with the
   floating attribute [[@@@gnrflash.hot]] — the FSM/service modules whose
   loops the bench's words-per-op budget gates. *)
let hot_attribute = "gnrflash.hot"

let is_hot_module (str : Typedtree.structure) =
  List.exists
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_attribute a -> a.Parsetree.attr_name.txt = hot_attribute
      | _ -> false)
    str.str_items

let check_structure ~config ~basename (str : Typedtree.structure) =
  let aliases = collect_aliases str in
  let out = ref [] in
  let span_depth = ref 0 in
  let add rule loc message =
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    out := { r_rule = rule; r_line = line; r_message = message } :: !out
  in
  let canon_of (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> Some (resolve aliases (normalize_name (Path.name p)))
    | _ -> None
  in
  let is_span_head (e : Typedtree.expression) =
    match canon_of e with
    | Some c -> List.mem c span_wrappers
    | None -> false
  in
  (* The application spine of [Tel.span name @@ fun () -> ...]: the typer
     rewrites [f @@ x] into the application [(f) x], so the thunk hangs off
     an apply whose head is itself the partial application [Tel.span name]
     — walk the spine down to the ident. An unsimplified [Stdlib.@@] (e.g.
     [( @@ )] used as a value) is handled via its first argument. *)
  let rec head_is_span (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply (fn, args) -> (
        is_span_head fn || head_is_span fn
        ||
        match canon_of fn with
        | Some "Stdlib.@@" -> (
            match args with (_, Some lhs) :: _ -> head_is_span lhs | _ -> false)
        | _ -> false)
    | _ -> is_span_head e
  in
  let enters_span (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply (fn, _) -> is_span_head fn || head_is_span fn
    | _ -> false
  in
  (* An application of one of the Quadrature drivers: its argument subtrees
     (notably the integrand closure) are "inside an integral" for L6. *)
  let integrand_depth = ref 0 in
  let enters_quad (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply (fn, _) -> (
        match canon_of fn with
        | Some c -> List.mem c quad_heads
        | None -> false)
    | _ -> false
  in
  let in_solver = List.mem basename config.solver_basenames in
  let l3_scoped = not (List.mem basename config.l3_exempt_basenames) in
  let check_apply (fn : Typedtree.expression)
      (args : (Asttypes.arg_label * Typedtree.expression option) list)
      (loc : Location.t) =
    match canon_of fn with
    | None -> ()
    | Some cf ->
        (* L1: escape hatches in solver modules *)
        (if in_solver then
           match cf with
           | "Stdlib.failwith" | "Stdlib.invalid_arg" ->
               add L1 loc
                 (Printf.sprintf
                    "bare %s in a solver module — return a typed Solver_error instead"
                    (Filename.extension cf |> fun s ->
                     String.sub s 1 (String.length s - 1)))
           | "Stdlib.raise" | "Stdlib.raise_notrace" -> (
               match args with
               | (_, Some { exp_desc = Texp_construct (_, cd, _); _ }) :: _
                 when cd.cstr_name = "Invalid_argument" || cd.cstr_name = "Failure" ->
                   add L1 loc
                     (Printf.sprintf
                        "raise %s in a solver module — return a typed Solver_error \
                         instead"
                        cd.cstr_name)
               | _ -> ())
           | _ -> ());
        (* L2: structural equality at float type, or polymorphic equality
           against the literal [None] — the latter drags the whole payload
           (errors, closures, floats) through [compare] when only the
           constructor matters *)
        (match cf with
        | "Stdlib.=" | "Stdlib.<>" ->
            let float_arg =
              List.exists
                (fun (_, a) ->
                  match a with
                  | Some (e : Typedtree.expression) -> is_float_type e.exp_type
                  | None -> false)
                args
            in
            let none_arg =
              List.exists
                (fun (_, a) ->
                  match a with
                  | Some ({ exp_desc = Texp_construct (_, cd, []); _ } :
                           Typedtree.expression) ->
                      cd.Types.cstr_name = "None"
                  | _ -> false)
                args
            in
            let op = if cf = "Stdlib.=" then "=" else "<>" in
            if float_arg then
              add L2 loc
                (Printf.sprintf
                   "float equality (%s) — use Float.equal or an epsilon comparison"
                   op)
            else if none_arg then
              add L2 loc
                (Printf.sprintf
                   "polymorphic equality against None (%s) — use \
                    Option.is_none / Option.is_some"
                   op)
        | _ -> ());
        (* L3: uninstrumented solver entry points *)
        if l3_scoped && !span_depth = 0 && List.mem cf l3_targets then
          add L3 loc
            (Printf.sprintf
               "call to %s outside any Telemetry.span — wrap the call site so its \
                work is attributed"
               cf);
        (* L6: adaptive WKB evaluation inside a quadrature integrand *)
        if !integrand_depth > 0 && List.mem cf l6_targets then
          add L6 loc
            (Printf.sprintf
               "%s inside a quadrature integrand — adaptive WKB re-runs per \
                node; build a Wkb.Cache once outside the integral and call \
                Wkb.Cache.transmission per energy"
               cf);
        (* L7: hardcoded ~chunk at a Sweep call site *)
        (if List.mem cf l7_targets then
           let rec is_const (e : Typedtree.expression) =
             match e.exp_desc with
             | Texp_constant _ -> true
             | Texp_construct (_, cd, [ inner ]) when cd.cstr_name = "Some" ->
                 is_const inner
             | _ -> false
           in
           List.iter
             (fun ((lbl : Asttypes.arg_label), a) ->
               let is_chunk =
                 match lbl with
                 | Asttypes.Labelled l | Asttypes.Optional l -> l = "chunk"
                 | Asttypes.Nolabel -> false
               in
               match a with
               | Some e when is_chunk && is_const e ->
                   add L7 loc
                     (Printf.sprintf
                        "hardcoded ~chunk at %s — trust the probe-based \
                         auto-tuning (Sweep.auto_chunk), or justify the \
                         constant"
                        cf)
               | _ -> ())
             args);
        (* L4: multiplying two raw constants without going through Units *)
        if basename <> "constants.ml" && cf = "Stdlib.*." then
          let is_constant_ident (a : Typedtree.expression option) =
            match a with
            | Some e -> (
                match canon_of e with
                | Some name -> (
                    match List.rev (String.split_on_char '.' name) with
                    | _ :: m :: _ -> m = "Constants"
                    | _ -> false)
                | None -> false)
            | None -> false
          in
          match args with
          | [ (_, a1); (_, a2) ] when is_constant_ident a1 && is_constant_ident a2 ->
              add L4 loc
                "product of two raw Constants.* floats — use the typed \
                 Gnrflash_units layer (unit laundering)"
          | _ -> ()
  in
  (* L13 state: [loop_stack] holds, for each enclosing for/while loop,
     the closure-nesting depth at its entry. An allocation is "directly in
     a loop body" when the current [fun_depth] equals the innermost loop's
     recorded depth — allocations inside a nested closure are charged to
     the (already flagged) closure, not reported again. *)
  let hot = is_hot_module str in
  let fun_depth = ref 0 in
  let loop_stack = ref [] in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply (fn, args) -> check_apply fn args e.exp_loc
    | _ -> ());
    (* L13: minor-heap allocation directly inside a hot-module loop body *)
    (if hot then
       match (e.exp_desc, !loop_stack) with
       | Texp_record { extended_expression = Some _; _ }, d :: _
         when !fun_depth = d ->
           add L13 e.exp_loc
             "allocating functional record update ({ e with ... }) in a hot \
              loop — write the mutable fields in place or hoist the fresh \
              record out of the loop"
       | Texp_function _, d :: _ when !fun_depth = d ->
           add L13 e.exp_loc
             "closure allocated in a hot loop — hoist the function (or the \
              combinator call capturing it) out of the loop"
       | _ -> ());
    let in_span = enters_span e and in_quad = enters_quad e in
    if in_span then incr span_depth;
    if in_quad then incr integrand_depth;
    (match e.exp_desc with
    | Texp_for (_, _, lo, hi, _, body) ->
        (* bounds evaluate once — only the body is per-iteration *)
        sub.Tast_iterator.expr sub lo;
        sub.Tast_iterator.expr sub hi;
        loop_stack := !fun_depth :: !loop_stack;
        sub.Tast_iterator.expr sub body;
        loop_stack := List.tl !loop_stack
    | Texp_while (cond, body) ->
        (* the condition re-evaluates every iteration: hot like the body *)
        loop_stack := !fun_depth :: !loop_stack;
        sub.Tast_iterator.expr sub cond;
        sub.Tast_iterator.expr sub body;
        loop_stack := List.tl !loop_stack
    | Texp_function _ ->
        incr fun_depth;
        Tast_iterator.default_iterator.expr sub e;
        decr fun_depth
    | _ -> Tast_iterator.default_iterator.expr sub e);
    if in_quad then decr integrand_depth;
    if in_span then decr span_depth
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  iter.structure iter str;
  List.rev !out

(* L5: a module without an .mli, unless it is a pure re-export shim
   (only opens/includes/module-aliases/attributes at the top level). *)
let is_shim (str : Typedtree.structure) =
  List.for_all
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_attribute _ | Tstr_open _ | Tstr_include _ | Tstr_modtype _ -> true
      | Tstr_module mb -> ( match mb.mb_expr.mod_desc with Tmod_ident _ -> true | _ -> false)
      | _ -> false)
    str.str_items

(* ---------- filesystem walking ---------- *)

let rec collect_cmts dir acc =
  match Sys.readdir dir with
  | entries ->
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then collect_cmts path acc
          else if Filename.check_suffix entry ".cmt" then path :: acc
          else acc)
        acc entries
  | exception Sys_error _ -> acc

let raw_of_callgraph (rw : Callgraph.raw) =
  match rule_of_int rw.rw_rule with
  | Some rule ->
      Some { r_rule = rule; r_line = rw.rw_line; r_message = rw.rw_message }
  | None -> None

let run ?(config = default_config) ~root ~subdir () =
  let cmts = collect_cmts (Filename.concat root subdir) [] in
  let seen = Hashtbl.create 64 in
  let files = ref 0 in
  (* per-file raw findings: the intra-file rules (L1–L7), the analyzer's
     direct findings (L11/L12), then — once every summary is in — the
     reachability findings (L8/L9/L10) from phase 2 *)
  let per_file : (string, raw_finding list ref) Hashtbl.t = Hashtbl.create 64 in
  let raws_for src =
    match Hashtbl.find_opt per_file src with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add per_file src r;
        r
  in
  let summaries = ref [] in
  List.iter
    (fun cmt_path ->
      match Cmt_format.read_cmt cmt_path with
      | exception _ -> ()
      | infos -> (
          match (infos.cmt_annots, infos.cmt_sourcefile) with
          | Implementation str, Some src
            when Filename.check_suffix src ".ml" && not (Hashtbl.mem seen src) ->
              Hashtbl.add seen src ();
              incr files;
              let basename = Filename.basename src in
              let raw = check_structure ~config ~basename str in
              let raw =
                if
                  (not (Sys.file_exists (Filename.concat root (src ^ "i"))))
                  && not (is_shim str)
                then
                  raw
                  @ [
                      {
                        r_rule = L5;
                        r_line = 1;
                        r_message =
                          "missing .mli for a non-shim library module — document \
                           and seal its interface";
                      };
                    ]
                else raw
              in
              let summary =
                Callgraph.extract
                  ~modname:(normalize_name infos.cmt_modname)
                  ~file:src str
              in
              summaries := summary :: !summaries;
              let raw =
                raw
                @ List.filter_map raw_of_callgraph summary.Callgraph.fs_direct
              in
              let cell = raws_for src in
              cell := !cell @ raw
          | _ -> ()))
    cmts;
  let analysis = Callgraph.analyze (List.rev !summaries) in
  List.iter
    (fun (src, rw) ->
      match raw_of_callgraph rw with
      | Some r ->
          let cell = raws_for src in
          cell := !cell @ [ r ]
      | None -> ())
    analysis.Callgraph.an_findings;
  let findings = ref [] in
  Hashtbl.iter
    (fun src cell ->
      if !cell <> [] then begin
        let allows = allows_of_file (Filename.concat root src) in
        List.iter
          (fun r ->
            let supp = suppression allows ~line:r.r_line ~rule:r.r_rule in
            findings :=
              {
                rule = r.r_rule;
                file = src;
                line = r.r_line;
                message = r.r_message;
                suppressed = supp <> None;
                reason = (match supp with Some "" -> None | other -> other);
              }
              :: !findings)
          !cell
      end)
    per_file;
  let ordered =
    List.sort
      (fun a b ->
        match compare a.file b.file with
        | 0 -> ( match compare a.line b.line with 0 -> compare a.rule b.rule | c -> c)
        | c -> c)
      !findings
  in
  { findings = ordered; files_scanned = !files; graph = analysis.Callgraph.an_graph }

let unsuppressed r = List.filter (fun f -> not f.suppressed) r.findings
let suppressed r = List.filter (fun f -> f.suppressed) r.findings

let render_finding f =
  Printf.sprintf "%s:%d: [%s] %s%s" f.file f.line (rule_id f.rule) f.message
    (if f.suppressed then
       match f.reason with
       | Some reason -> Printf.sprintf "  (suppressed: %s)" reason
       | None -> "  (suppressed)"
     else "")

(* ---------- report post-processing ---------- *)

let by_rule r =
  List.map
    (fun rule ->
      let mine = List.filter (fun f -> f.rule = rule) r.findings in
      let supp, unsupp = List.partition (fun f -> f.suppressed) mine in
      (rule, List.length unsupp, List.length supp))
    all_rules

let filter_rules rules r =
  { r with findings = List.filter (fun f -> List.mem f.rule rules) r.findings }

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"files_scanned\":%d,\"rules_checked\":%d,"
       r.files_scanned (List.length all_rules));
  Buffer.add_string b
    (Printf.sprintf "\"findings\":%d,\"suppressed\":%d,"
       (List.length (unsuppressed r))
       (List.length (suppressed r)));
  Buffer.add_string b "\"by_rule\":{";
  List.iteri
    (fun i (rule, unsupp, supp) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":{\"unsuppressed\":%d,\"suppressed\":%d}"
           (rule_id rule) unsupp supp))
    (by_rule r);
  Buffer.add_string b "},\"results\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"suppressed\":%b,\
            \"reason\":%s,\"message\":\"%s\"}"
           (json_escape f.file) f.line (rule_id f.rule) f.suppressed
           (match f.reason with
           | Some reason -> Printf.sprintf "\"%s\"" (json_escape reason)
           | None -> "null")
           (json_escape f.message)))
    r.findings;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ---------- baseline mode ---------- *)

type baseline = (string * rule * int) list

let baseline_of_report r =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if not f.suppressed then
        let k = (f.file, f.rule) in
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    r.findings;
  Hashtbl.fold (fun (file, rule) n acc -> (file, rule, n) :: acc) tbl []
  |> List.sort compare

let baseline_to_string b =
  let lines =
    List.map (fun (file, rule, n) -> Printf.sprintf "%s\t%s\t%d" file (rule_id rule) n) b
  in
  "# gnrflash-lint baseline: file<TAB>rule<TAB>allowed-count\n"
  ^ String.concat "\n" lines
  ^ (if lines = [] then "" else "\n")

let baseline_of_string s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.split_on_char '\t' line with
           | [ file; rid; n ] -> (
               match (rule_of_string rid, int_of_string_opt n) with
               | Some rule, Some n when n > 0 -> Some (file, rule, n)
               | _ -> None)
           | _ -> None)

(* Findings inside the baseline budget are downgraded to suppressed (with
   a "baselined" reason) so a new rule can land before its fixes without
   breaking the build; anything beyond the recorded count still fails. *)
let apply_baseline b r =
  let budget = Hashtbl.create 16 in
  List.iter (fun (file, rule, n) -> Hashtbl.replace budget (file, rule) n) b;
  let findings =
    List.map
      (fun f ->
        if f.suppressed then f
        else
          let k = (f.file, f.rule) in
          match Hashtbl.find_opt budget k with
          | Some n when n > 0 ->
              Hashtbl.replace budget k (n - 1);
              { f with suppressed = true; reason = Some "baselined" }
          | _ -> f)
      r.findings
  in
  { r with findings }

(* ---------- root discovery ---------- *)

let rec dir_has_cmt dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> false
  | entries ->
      Array.exists
        (fun entry ->
          let path = Filename.concat dir entry in
          if Filename.check_suffix entry ".cmt" then true
          else Sys.is_directory path && dir_has_cmt path)
        entries

let locate_root () =
  let exe = Sys.executable_name in
  let exe = if Filename.is_relative exe then Filename.concat (Sys.getcwd ()) exe else exe in
  let has_lib d =
    let lib = Filename.concat d "lib" in
    Sys.file_exists lib && Sys.is_directory lib
  in
  let rec up d = if has_lib d then Some d else
    let parent = Filename.dirname d in
    if parent = d then None else up parent
  in
  match up (Filename.dirname exe) with
  | None -> failwith "gnrflash-lint: no lib/ ancestor of the executable"
  | Some d ->
      if dir_has_cmt (Filename.concat d "lib") then d
      else
        let ctx = Filename.concat (Filename.concat d "_build") "default" in
        if has_lib ctx && dir_has_cmt (Filename.concat ctx "lib") then ctx else d
