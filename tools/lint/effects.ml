(* Per-identifier and per-type effect judgments. Kept separate from the
   call-graph walker so the tables are trivially testable and the rule
   engine can reuse the name canonicalization. *)

let normalize_name s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '!' then incr i
    else if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let resolve aliases name =
  match String.index_opt name '.' with
  | None -> (
      match Hashtbl.find_opt aliases name with Some c -> c | None -> name)
  | Some i -> (
      let head = String.sub name 0 i in
      let rest = String.sub name (i + 1) (String.length name - i - 1) in
      match Hashtbl.find_opt aliases head with
      | Some c -> c ^ "." ^ rest
      | None -> name)

type alloc_class = Hazard of string | Synchronized | Opaque

let classify_alloc = function
  | "Stdlib.ref" -> Hazard "ref"
  | "Stdlib.Hashtbl.create" -> Hazard "Hashtbl.t"
  | "Stdlib.Buffer.create" -> Hazard "Buffer.t"
  | "Stdlib.Queue.create" -> Hazard "Queue.t"
  | "Stdlib.Stack.create" -> Hazard "Stack.t"
  | "Stdlib.Array.make" | "Stdlib.Array.init" | "Stdlib.Array.create_float"
  | "Stdlib.Array.make_matrix" ->
      Hazard "array"
  | "Stdlib.Bytes.create" | "Stdlib.Bytes.make" -> Hazard "bytes"
  | "Stdlib.Atomic.make" | "Stdlib.Mutex.create" | "Stdlib.Condition.create"
  | "Stdlib.Semaphore.Counting.make" | "Stdlib.Semaphore.Binary.make"
  | "Stdlib.Domain.DLS.new_key" ->
      Synchronized
  | _ -> Opaque

let write_arg = function
  | "Stdlib.:=" | "Stdlib.incr" | "Stdlib.decr" -> Some 0
  | "Stdlib.Hashtbl.add" | "Stdlib.Hashtbl.replace" | "Stdlib.Hashtbl.remove"
  | "Stdlib.Hashtbl.reset" | "Stdlib.Hashtbl.clear"
  | "Stdlib.Hashtbl.filter_map_inplace" ->
      Some 0
  | "Stdlib.Buffer.add_char" | "Stdlib.Buffer.add_string"
  | "Stdlib.Buffer.add_bytes" | "Stdlib.Buffer.add_substring"
  | "Stdlib.Buffer.add_subbytes" | "Stdlib.Buffer.add_buffer"
  | "Stdlib.Buffer.clear" | "Stdlib.Buffer.reset" | "Stdlib.Buffer.truncate" ->
      Some 0
  | "Stdlib.Array.set" | "Stdlib.Array.unsafe_set" | "Stdlib.Array.fill" ->
      Some 0
  | "Stdlib.Array.sort" | "Stdlib.Array.stable_sort" | "Stdlib.Array.blit" ->
      Some 1
  | "Stdlib.Bytes.set" | "Stdlib.Bytes.unsafe_set" | "Stdlib.Bytes.fill" ->
      Some 0
  | "Stdlib.Queue.add" | "Stdlib.Queue.push" -> Some 1
  | "Stdlib.Queue.pop" | "Stdlib.Queue.take" | "Stdlib.Queue.clear"
  | "Stdlib.Queue.transfer" ->
      Some 0
  | "Stdlib.Stack.push" -> Some 1
  | "Stdlib.Stack.pop" | "Stdlib.Stack.clear" -> Some 0
  | _ -> None

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let nondet_of id =
  if starts_with ~prefix:"Stdlib.Random.State." id then None
  else if starts_with ~prefix:"Stdlib.Random." id then
    Some ("the global Random PRNG (" ^ normalize_name id ^ ")")
  else
    match id with
    | "Unix.gettimeofday" | "Unix.time" ->
        Some ("the wall clock (" ^ id ^ ")")
    | "Stdlib.Sys.time" -> Some "the process clock (Sys.time)"
    | "Stdlib.Hashtbl.fold" | "Stdlib.Hashtbl.iter" ->
        Some
          ("hash-order dependent iteration ("
          ^ (match String.rindex_opt id '.' with
            | Some i ->
                "Hashtbl." ^ String.sub id (i + 1) (String.length id - i - 1)
            | None -> id)
          ^ ")")
    | _ -> None

let is_lock = function
  | "Stdlib.Mutex.lock" | "Stdlib.Mutex.try_lock" | "Stdlib.Mutex.protect" ->
      true
  | _ -> false

let is_physical_eq = function "Stdlib.==" | "Stdlib.!=" -> true | _ -> false

let is_boxed_type ty =
  match Types.get_desc ty with
  | Tarrow _ | Ttuple _ | Tobject _ | Tpackage _ -> true
  | Tconstr (p, _, _) ->
      not
        (Path.same p Predef.path_int
        || Path.same p Predef.path_bool
        || Path.same p Predef.path_char
        || Path.same p Predef.path_unit)
  | _ -> false

(* Known marshal-unsafe type constructors: custom blocks, OS handles, and
   containers whose identity (not contents) is the point. *)
let marshal_deny name =
  match name with
  | "Stdlib.Mutex.t" -> Some "Mutex.t (custom block)"
  | "Stdlib.Condition.t" -> Some "Condition.t (custom block)"
  | "Stdlib.Semaphore.Counting.t" | "Stdlib.Semaphore.Binary.t" ->
      Some "Semaphore.t (custom block)"
  | "Stdlib.Domain.t" -> Some "Domain.t (thread handle)"
  | "Stdlib.Domain.DLS.key" -> Some "Domain.DLS.key (per-domain identity)"
  | "Stdlib.Atomic.t" -> Some "Atomic.t (loses atomicity across processes)"
  | "Unix.file_descr" -> Some "Unix.file_descr (OS handle)"
  | "Stdlib.in_channel" | "in_channel" -> Some "in_channel (OS handle)"
  | "Stdlib.out_channel" | "out_channel" -> Some "out_channel (OS handle)"
  | "Stdlib.Lazy.t" | "CamlinternalLazy.t" ->
      Some "Lazy.t (suspension is a closure)"
  | _ -> None

let marshal_hazards ty =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let push d = if not (List.mem d !out) then out := d :: !out in
  let rec go ty =
    let id = Types.get_id ty in
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      match Types.get_desc ty with
      | Tarrow _ -> push "a function value (closure)"
      | Tobject _ -> push "an object (methods are closures)"
      | Tpackage _ -> push "a first-class module"
      | Ttuple tys -> List.iter go tys
      | Tpoly (t, _) -> go t
      | Tconstr (p, args, _) ->
          (match marshal_deny (normalize_name (Path.name p)) with
          | Some d -> push d
          | None -> ());
          List.iter go args
      | _ -> ()
    end
  in
  go ty;
  List.rev !out

let ends_with ~suffix s =
  let ns = String.length s and nx = String.length suffix in
  ns >= nx && String.sub s (ns - nx) nx = suffix

let is_solver_error_name n =
  n = "Solver_error.t" || ends_with ~suffix:".Solver_error.t" n

let is_result_name n = n = "result" || ends_with ~suffix:".result" n

let sweep_fns = [ "map"; "mapi"; "init"; "map_list"; "grid" ]

let entry_of id =
  let under m short fns =
    List.find_map
      (fun f -> if id = m ^ "." ^ f then Some (short ^ "." ^ f) else None)
      fns
  in
  match
    List.find_map
      (fun m -> under m "Sweep" sweep_fns)
      [ "Gnrflash_parallel.Sweep"; "Gnrflash.Sweep" ]
  with
  | Some s -> Some s
  | None -> (
      match id with
      | "Gnrflash_parallel.Pool.run" -> Some "Pool.run"
      | "Gnrflash_parallel.Shard.run" | "Gnrflash.Shard.run" ->
          Some "Shard.run"
      | _ -> None)

let is_shard_entry id =
  id = "Gnrflash_parallel.Shard.run" || id = "Gnrflash.Shard.run"

let is_dls_new_key id = id = "Stdlib.Domain.DLS.new_key"
