(** The two-phase inter-procedural analyzer behind rules L8–L12.

    Phase 1 ({!extract}) walks one [.cmt] typedtree and produces a
    {!file_summary}: a module-qualified node per function (top-level and
    nested [let]-bound), a per-node effect sink (referenced identifiers,
    in-place writes, nondeterminism sources, lock acquisition), the
    module-level mutable-state allocations ([Hazard]s), every
    [Sweep]/[Pool]/[Shard] call site with the effects of its inline worker
    closures, and the direct (non-reachability) findings L11/L12.

    Phase 2 ({!analyze}) merges all summaries, resolves reference
    candidates against the global node/hazard tables, and runs a BFS from
    each call site's worker roots to report L8 (unsynchronized shared
    state), L9 (nondeterminism) and L10 (marshal-unsafe shard frames).

    Documented approximations (kept deliberately simple — the analyzer
    must never crash on real code):
    - first-class modules and functor parameters do not resolve; calls
      through them are silently unreachable (no false positives, possible
      false negatives);
    - a node that acquires a [Mutex] is treated as a synchronization
      boundary: its own shared-state accesses are exempt from L8, but the
      exemption does not propagate to its callees;
    - aliases of mutable globals through intermediate [let]s escape the
      hazard table;
    - marshal scanning ({!Effects.marshal_hazards}) does not expand type
      abbreviations. *)

type nondet = { nd_what : string; nd_line : int }

type sink = {
  mutable sk_refs : (string list * int) list;
      (** referenced candidates (first match wins at resolution), line *)
  mutable sk_writes : (string list * int) list;
      (** in-place mutation targets, line *)
  mutable sk_nondet : nondet list;
  mutable sk_locks : bool;
}

type node = { nd_id : string; nd_file : string; nd_line : int; nd_sink : sink }

type hazard = {
  hz_id : string;
  hz_file : string;
  hz_line : int;
  hz_kind : string;
}

type site = {
  st_file : string;
  st_line : int;
  st_entry : string;  (** display name, e.g. ["Sweep.map"] *)
  st_sharded : bool;  (** crosses a process boundary (marshalled frames) *)
  st_roots : sink;    (** effects of inline worker closures + named roots *)
  st_marshal : string list;
      (** marshal-unsafe parts of the frame type (L10), empty when safe *)
}

(** A raw finding before suppression handling; [rw_rule] is the integer
    rule id (8–12). *)
type raw = { rw_rule : int; rw_line : int; rw_message : string }

type file_summary = {
  fs_file : string;
  fs_modname : string;
  fs_nodes : node list;
  fs_hazards : hazard list;
  fs_sites : site list;
  fs_direct : raw list;  (** L12, already attributed to lines *)
  fs_tyaliases : (string * string list) list;
      (** [type name = target] manifests (nullary constructors only), so
          phase 2 can chase abbreviations like [Transient.error] back to
          [Solver_error.t] across files *)
  fs_maybe_l11 : (string list * raw) list;
      (** candidate L11 findings: the type-name candidates of the erased
          value; reported only when they resolve to [Solver_error.t]
          through {!analysis.an_graph}'s companion type-alias table *)
}

val extract :
  modname:string -> file:string -> Typedtree.structure -> file_summary

type analysis = {
  an_graph : (string * string list) list;
      (** resolved call graph: node id -> sorted callee node ids *)
  an_written : string list;
      (** hazard ids written from at least one function (module-load
          initialization writes are exempt) *)
  an_findings : (string * raw) list;
      (** (file, finding) for L8/L9/L10 and abbreviation-resolved L11 *)
}

val analyze : file_summary list -> analysis
