(* gnrflash-lint: run the twelve L1–L12 rules over the library tree.

   Usage:
     gnrflash_lint.exe [--root DIR] [--subdir DIR] [--quiet] [--json]
                       [--rules L8,L9] [--baseline FILE]
                       [--write-baseline FILE]

   Exits 1 when unsuppressed findings remain (after rule filtering and
   baseline application), 0 otherwise, 2 on usage errors. *)

module E = Gnrflash_lint_engine.Lint_engine

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let root = ref None in
  let subdir = ref "lib" in
  let quiet = ref false in
  let json = ref false in
  let rules = ref None in
  let baseline = ref None in
  let write_baseline = ref None in
  let rec parse = function
    | [] -> ()
    | "--root" :: dir :: rest ->
        root := Some dir;
        parse rest
    | "--subdir" :: dir :: rest ->
        subdir := dir;
        parse rest
    | "--quiet" :: rest ->
        quiet := true;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--rules" :: spec :: rest ->
        let parsed =
          String.split_on_char ',' spec
          |> List.map (fun tok ->
                 match E.rule_of_string tok with
                 | Some r -> r
                 | None ->
                     prerr_endline ("gnrflash-lint: unknown rule " ^ tok);
                     exit 2)
        in
        rules := Some parsed;
        parse rest
    | "--baseline" :: file :: rest ->
        baseline := Some file;
        parse rest
    | "--write-baseline" :: file :: rest ->
        write_baseline := Some file;
        parse rest
    | arg :: _ ->
        prerr_endline ("gnrflash-lint: unknown argument " ^ arg);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let root = match !root with Some r -> r | None -> E.locate_root () in
  let report = E.run ~root ~subdir:!subdir () in
  let report =
    match !rules with Some rs -> E.filter_rules rs report | None -> report
  in
  (match !write_baseline with
  | Some file ->
      let oc = open_out file in
      output_string oc (E.baseline_to_string (E.baseline_of_report report));
      close_out oc;
      if not !quiet then
        Printf.printf "gnrflash-lint: wrote baseline for %d finding(s) to %s\n"
          (List.length (E.unsuppressed report))
          file;
      exit 0
  | None -> ());
  let report =
    match !baseline with
    | Some file -> (
        match read_file file with
        | s -> E.apply_baseline (E.baseline_of_string s) report
        | exception Sys_error msg ->
            prerr_endline ("gnrflash-lint: cannot read baseline: " ^ msg);
            exit 2)
    | None -> report
  in
  let bad = E.unsuppressed report in
  let supp = E.suppressed report in
  if !json then print_endline (E.render_json report)
  else if not !quiet then begin
    List.iter (fun f -> print_endline (E.render_finding f)) report.findings;
    Printf.printf
      "gnrflash-lint: %d file(s), rules %s: %d finding(s), %d suppressed\n"
      report.files_scanned
      (String.concat ","
         (List.map E.rule_id
            (match !rules with Some rs -> rs | None -> E.all_rules)))
      (List.length bad) (List.length supp)
  end;
  exit (if bad = [] then 0 else 1)
