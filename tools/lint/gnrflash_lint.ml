(* gnrflash-lint: run the five L1–L5 rules over the library tree.

   Usage: gnrflash_lint.exe [--root DIR] [--subdir DIR] [--quiet]
   Exits 1 when unsuppressed findings remain, 0 otherwise. *)

module E = Gnrflash_lint_engine.Lint_engine

let () =
  let root = ref None in
  let subdir = ref "lib" in
  let quiet = ref false in
  let rec parse = function
    | [] -> ()
    | "--root" :: dir :: rest ->
        root := Some dir;
        parse rest
    | "--subdir" :: dir :: rest ->
        subdir := dir;
        parse rest
    | "--quiet" :: rest ->
        quiet := true;
        parse rest
    | arg :: _ ->
        prerr_endline ("gnrflash-lint: unknown argument " ^ arg);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let root = match !root with Some r -> r | None -> E.locate_root () in
  let report = E.run ~root ~subdir:!subdir () in
  let bad = E.unsuppressed report in
  let supp = E.suppressed report in
  if not !quiet then begin
    List.iter (fun f -> print_endline (E.render_finding f)) report.findings;
    Printf.printf
      "gnrflash-lint: %d file(s), rules %s: %d finding(s), %d suppressed\n"
      report.files_scanned
      (String.concat "," (List.map E.rule_id E.all_rules))
      (List.length bad) (List.length supp)
  end;
  exit (if bad = [] then 0 else 1)
