(* A pure re-export shim: exempt from L5 (no .mli required). *)
include Gnrflash_units
