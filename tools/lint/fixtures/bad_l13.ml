(* L13 fixture: minor-heap allocations inside loop bodies of a module
   that opted into the hot-loop rule with [@@@gnrflash.hot]. Cold modules
   (every other fixture) never fire L13 regardless of loop contents. *)
[@@@gnrflash.hot]

type acc = { total : float; count : int }

let sum_functional (xs : float array) =
  let acc = ref { total = 0.; count = 0 } in
  for i = 0 to Array.length xs - 1 do
    acc := { !acc with total = !acc.total +. xs.(i) } (* EXPECT L13 *)
  done;
  !acc

let sum_closure (xs : float array) =
  let total = ref 0. in
  let i = ref 0 in
  while !i < Array.length xs do
    let add = fun x -> total := !total +. x in (* EXPECT L13 *)
    add xs.(!i);
    incr i
  done;
  !total

let sum_suppressed (xs : float array) =
  let acc = ref { total = 0.; count = 0 } in
  for i = 0 to Array.length xs - 1 do
    (* lint: allow L13 — fixture: demonstrating the suppression syntax *)
    acc := { !acc with count = !acc.count + i } (* EXPECT-SUPPRESSED L13 *)
  done;
  !acc

(* blessed shape: mutate a preallocated structure in place *)
type macc = { mutable m_total : float }

let sum_in_place (xs : float array) =
  let acc = { m_total = 0. } in
  for i = 0 to Array.length xs - 1 do
    acc.m_total <- acc.m_total +. xs.(i)
  done;
  acc.m_total

(* blessed shape: the closure is hoisted out of the loop, and a fresh
   (non-extending) record literal before the loop is not an update *)
let hoisted (xs : float array) =
  let f = fun x -> x +. 1. in
  let acc = ref { total = 0.; count = 0 } in
  let out = ref 0. in
  for i = 0 to Array.length xs - 1 do
    out := !out +. f xs.(i)
  done;
  !acc.total +. !out
