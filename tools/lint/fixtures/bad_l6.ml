(* L6 fixture: adaptive WKB evaluation inside quadrature integrands. The
   quadrature calls are span-wrapped so only L6 is exercised here (L3 has its
   own fixture). *)

module Quad = Gnrflash_numerics.Quadrature
module Wkb = Gnrflash_quantum.Wkb
module Barrier = Gnrflash_quantum.Barrier
module Tel = Gnrflash_telemetry.Telemetry

let barrier = Barrier.triangular ~phi_b:3.2 ~field:1e9 ~m_eff:3.8e-31

let adaptive_transmission_per_node () =
  Tel.span "lint_fixture/l6" @@ fun () ->
  Quad.gauss_legendre (fun e -> Wkb.transmission barrier ~energy:e) 0. 0.5 (* EXPECT L6 *)

let adaptive_action_per_node () =
  Tel.span "lint_fixture/l6" @@ fun () ->
  Quad.simpson (fun e -> Wkb.action_integral barrier ~energy:e) 0. 0.5 ~n:8 (* EXPECT L6 *)

let allowed () =
  Tel.span "lint_fixture/l6" @@ fun () ->
  (* lint: allow L6 — fixture: legacy comparison path, cache parity checked in tests *)
  Quad.gauss_legendre (fun e -> Wkb.transmission barrier ~energy:e) 0. 0.5 (* EXPECT-SUPPRESSED L6 *)

(* the blessed shape: one cache build outside, closed-form lookups per node *)
let cached () =
  Tel.span "lint_fixture/l6" @@ fun () ->
  let cache = Wkb.Cache.make barrier in
  Quad.gauss_legendre (fun e -> Wkb.Cache.transmission cache ~energy:e) 0. 0.5

(* adaptive WKB outside any integrand is fine *)
let outside_ok () = Wkb.transmission barrier ~energy:0.1
