(* L7 fixture: hardcoded ~chunk constants at Sweep call sites. The
   constant that balanced one machine's queue traffic is wrong on the
   next; the probe-based auto-tuning (Sweep.auto_chunk) picks per-call. *)

module Sweep = Gnrflash_parallel.Sweep

let xs = Array.init 64 float_of_int

let hardcoded_map () = Sweep.map ~jobs:2 ~chunk:4 (fun x -> x *. 2.) xs (* EXPECT L7 *)

let hardcoded_init () = Sweep.init ~chunk:16 64 float_of_int (* EXPECT L7 *)

let hardcoded_grid () =
  Sweep.grid ~jobs:2 ~chunk:8 (fun a b -> a +. b) ~outer:xs ~inner:xs (* EXPECT L7 *)

let allowed () =
  (* lint: allow L7 — fixture: chunk pinned to reproduce a scheduling-order bug *)
  Sweep.map ~jobs:2 ~chunk:4 (fun x -> x *. 2.) xs (* EXPECT-SUPPRESSED L7 *)

(* the blessed shape: no ~chunk, the probe auto-tunes it *)
let auto () = Sweep.map ~jobs:2 (fun x -> x *. 2.) xs

(* a computed chunk is a decision, not a magic constant — not flagged *)
let computed () =
  let chunk = max 1 (Array.length xs / 4) in
  Sweep.map ~jobs:2 ~chunk (fun x -> x *. 2.) xs
