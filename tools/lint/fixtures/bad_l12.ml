(* L12 fixture: Domain.DLS.new_key away from module toplevel — a key
   minted per call leaks one DLS slot per invocation and defeats the
   per-domain cache it was meant to implement. *)

let fresh_key () = Domain.DLS.new_key (fun () -> 0) (* EXPECT L12 *)

let suppressed_key () =
  (* lint: allow L12 — fixture: deliberately per-call for an isolation test *)
  Domain.DLS.new_key (fun () -> 0) (* EXPECT-SUPPRESSED L12 *)

(* the blessed shape: minted once at module load *)
let toplevel_key = Domain.DLS.new_key (fun () -> 0)
