val barrier : Gnrflash_quantum.Barrier.t
val adaptive_transmission_per_node : unit -> float
val adaptive_action_per_node : unit -> float
val allowed : unit -> float
val cached : unit -> float
val outside_ok : unit -> float
