val xs : float array
val hardcoded_map : unit -> float array
val hardcoded_init : unit -> float array
val hardcoded_grid : unit -> float array array
val allowed : unit -> float array
val auto : unit -> float array
val computed : unit -> float array
