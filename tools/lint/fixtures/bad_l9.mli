val jitter : unit -> float
val noisy : float array -> float array
val stamp : unit -> float
val stamped : float array -> float array
val weights : (int, float) Hashtbl.t
val folded : float array -> float array
val rows_eq : float array array -> int array
val timed : float array -> float array
val unreached : unit -> float
val seeded : float array -> float array
