(* L9 fixture: nondeterminism in sweep-reachable code — the global Random
   PRNG, wall-clock reads, hash-order dependent folds, and physical
   equality on boxed values — plus a suppressed variant and the two
   blessed shapes (unreached nondet, seeded Random.State). *)

module Sweep = Gnrflash_parallel.Sweep

let jitter () = Random.float 1.0 (* EXPECT L9 *)
let noisy xs = Sweep.map (fun x -> x +. jitter ()) xs
let stamp () = Unix.gettimeofday () (* EXPECT L9 *)
let stamped xs = Sweep.map (fun x -> x +. stamp ()) xs

let weights : (int, float) Hashtbl.t = Hashtbl.create 8

let folded xs =
  Sweep.map (fun x -> Hashtbl.fold (fun _ w acc -> acc +. w) weights x) xs (* EXPECT L9 *)

let rows_eq (xs : float array array) =
  Sweep.map (fun row -> if row == row then 1 else 0) xs (* EXPECT L9 *)

let timed xs =
  Sweep.map
    (fun x ->
      (* lint: allow L9 — fixture: timing is observability, not a result *)
      let t0 = Unix.gettimeofday () in (* EXPECT-SUPPRESSED L9 *)
      x +. (t0 -. t0))
    xs

(* nondet that no worker reaches is not reported *)
let unreached () = Random.float 2.0

(* the blessed shape: a per-element seeded generator *)
let seeded xs =
  Sweep.mapi
    (fun i x -> x +. Random.State.float (Random.State.make [| i |]) 1.0)
    xs
