(* EXPECT L5 *)
(* L5 fixture: a non-shim module deliberately missing its .mli. *)
let answer = 42
