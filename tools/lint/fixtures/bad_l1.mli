val unchecked_guard : float -> float
val invalid_guard : float -> float
val allowed_guard : float -> float
