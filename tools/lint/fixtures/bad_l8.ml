(* L8 fixture: unsynchronized module-level mutable state reachable from a
   sweep worker — including the seeded inter-procedural race two calls
   deep (worker -> log_hit -> bump), a read-only race, a suppressed
   variant, and the three blessed shapes (Atomic, Mutex, Domain.DLS). *)

module Sweep = Gnrflash_parallel.Sweep

let hits = ref 0
let tally : (int, int) Hashtbl.t = Hashtbl.create 8

(* the race is two calls below the worker closure *)
let bump n = hits := !hits + n (* EXPECT L8 *)

let log_hit n =
  bump n;
  Hashtbl.replace tally n 1 (* EXPECT L8 *)

let race_two_deep xs =
  Sweep.map
    (fun x ->
      log_hit x;
      x)
    xs

(* a worker that only reads still races with the writer elsewhere *)
let shared_mode = ref 0
let set_mode m = shared_mode := m

let read_racy xs = Sweep.map (fun x -> x + !shared_mode) xs (* EXPECT L8 *)

let suppressed_hits = ref 0

let bump_suppressed () =
  (* lint: allow L8 — fixture: single-writer phase, documented *)
  incr suppressed_hits (* EXPECT-SUPPRESSED L8 *)

let suppressed_sweep xs =
  Sweep.map
    (fun x ->
      bump_suppressed ();
      x)
    xs

(* the blessed shapes: none of these may fire *)
let safe_hits = Atomic.make 0
let safe_bump () = Atomic.incr safe_hits
let lock = Mutex.create ()
let locked_hits = ref 0
let locked_bump () = Mutex.protect lock (fun () -> incr locked_hits)
let dls_hits = Domain.DLS.new_key (fun () -> ref 0)
let dls_bump () = incr (Domain.DLS.get dls_hits)

let safe_sweep xs =
  Sweep.map
    (fun x ->
      safe_bump ();
      locked_bump ();
      dls_bump ();
      x)
    xs
