(* L1 fixture: bare raises in a solver module. The self-test configures
   [solver_basenames = ["bad_l1.ml"]] so this file is in scope. *)

let unchecked_guard x =
  if x < 0. then failwith "negative" (* EXPECT L1 *)
  else sqrt x

let invalid_guard x =
  if x < 0. then invalid_arg "negative" (* EXPECT L1 *)
  else sqrt x

let allowed_guard x =
  (* lint: allow L1 — fixture: documented precondition *)
  if x < 0. then invalid_arg "negative" (* EXPECT-SUPPRESSED L1 *)
  else sqrt x
