val eq : float -> float -> bool
val neq : float -> float -> bool
val allowed_eq : float -> float -> bool
val fine : float -> float -> bool
