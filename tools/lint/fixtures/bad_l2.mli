val eq : float -> float -> bool
val neq : float -> float -> bool
val allowed_eq : float -> float -> bool
val fine : float -> float -> bool
val no_error : string option -> bool
val some_error : (string * int) option -> bool
val allowed_none : string option -> bool
val fine_none : string option -> bool
