(* lint: allow L5 — fixture: deliberately interface-free *) (* EXPECT-SUPPRESSED L5 *)
let answer = 43
