(* L10 fixture: marshal-unsafe values at the Shard process boundary —
   sharded sweeps whose result frames hold closures or OS handles cannot
   round-trip through Marshal. Plain data and unsharded sweeps are fine. *)

module Sweep = Gnrflash_parallel.Sweep
module Shard = Gnrflash_parallel.Shard

let closure_frames xs = Sweep.map ~shards:2 (fun x -> fun () -> x) xs (* EXPECT L10 *)

let channel_frames xs = Sweep.map ~shards:2 (fun _ -> stdin) xs (* EXPECT L10 *)

let shard_closures ~n =
  Shard.run ~shards:2 ~n ~run_slice:(fun ~lo ~len -> (* EXPECT L10 *)
      Array.init len (fun i () -> lo + i))

let suppressed_frames xs =
  (* lint: allow L10 — fixture: exercised in-process only, never sharded in CI *)
  Sweep.map ~shards:2 (fun x -> fun () -> x) xs (* EXPECT-SUPPRESSED L10 *)

(* plain marshalable data across the boundary: not flagged *)
let plain_frames xs = Sweep.map ~shards:2 (fun x -> (x, x *. 2.)) xs

(* closures in an unsharded sweep stay in-process: not flagged *)
let in_process xs = Sweep.map (fun x -> fun () -> x) xs
