val closure_frames : int array -> (unit -> int) array
val channel_frames : int array -> in_channel array
val shard_closures : n:int -> (unit -> int) array
val suppressed_frames : int array -> (unit -> int) array
val plain_frames : float array -> (float * float) array
val in_process : int array -> (unit -> int) array
