(* L2 fixture: polymorphic (=)/(<>) at float type, and polymorphic
   equality against the literal None. *)

let eq (a : float) (b : float) = a = b (* EXPECT L2 *)

let neq (a : float) (b : float) = a <> b (* EXPECT L2 *)

let allowed_eq (a : float) (b : float) =
  (* lint: allow L2 — fixture: exact comparison intended *)
  a = b (* EXPECT-SUPPRESSED L2 *)

let fine (a : float) (b : float) = Float.equal a b

(* The classic short-circuit over an accumulated error payload: comparing
   the whole option drags the error value through polymorphic compare. *)
let no_error (err : string option) = err = None (* EXPECT L2 *)

let some_error (err : (string * int) option) = err <> None (* EXPECT L2 *)

let allowed_none (err : string option) =
  (* lint: allow L2 — fixture: structural comparison intended *)
  err = None (* EXPECT-SUPPRESSED L2 *)

let fine_none (err : string option) = Option.is_none err
