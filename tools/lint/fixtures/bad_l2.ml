(* L2 fixture: polymorphic (=)/(<>) at float type. *)

let eq (a : float) (b : float) = a = b (* EXPECT L2 *)

let neq (a : float) (b : float) = a <> b (* EXPECT L2 *)

let allowed_eq (a : float) (b : float) =
  (* lint: allow L2 — fixture: exact comparison intended *)
  a = b (* EXPECT-SUPPRESSED L2 *)

let fine (a : float) (b : float) = Float.equal a b
