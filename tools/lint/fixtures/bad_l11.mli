type error = Gnrflash_resilience.Solver_error.t

val solve_ish : float -> (float, error) result
val erased : float -> float
val got : float -> float
val suppressed_erase : float -> float
val bound : float -> float
val is_ok : float -> bool
val aliased : float -> float option
