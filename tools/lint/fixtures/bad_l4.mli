val laundered : unit -> float
val allowed : unit -> float
val typed : unit -> float
