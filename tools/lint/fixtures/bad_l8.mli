val hits : int ref
val tally : (int, int) Hashtbl.t
val bump : int -> unit
val log_hit : int -> unit
val race_two_deep : int array -> int array
val shared_mode : int ref
val set_mode : int -> unit
val read_racy : int array -> int array
val suppressed_hits : int ref
val bump_suppressed : unit -> unit
val suppressed_sweep : int array -> int array
val safe_hits : int Atomic.t
val safe_bump : unit -> unit
val lock : Mutex.t
val locked_hits : int ref
val locked_bump : unit -> unit
val dls_hits : int ref Domain.DLS.key
val dls_bump : unit -> unit
val safe_sweep : int array -> int array
