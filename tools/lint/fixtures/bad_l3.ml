(* L3 fixture: numerics entry points with and without a telemetry span. *)

module Roots = Gnrflash_numerics.Roots
module Tel = Gnrflash_telemetry.Telemetry

let f x = (x *. x) -. 2.

let unattributed () = Roots.bisect f 0. 2. (* EXPECT L3 *)

let attributed () = Tel.span "lint_fixture/ok" @@ fun () -> Roots.bisect f 0. 2.

let allowed () =
  (* lint: allow L3 — fixture: attribution handled by the caller *)
  Roots.bisect f 0. 2. (* EXPECT-SUPPRESSED L3 *)
