val f : float -> float

val unattributed :
  unit -> (float, Gnrflash_resilience.Solver_error.t) result

val attributed :
  unit -> (float, Gnrflash_resilience.Solver_error.t) result

val allowed :
  unit -> (float, Gnrflash_resilience.Solver_error.t) result
