(* L4 fixture: multiplying two raw Constants floats bypasses the units
   layer ("unit laundering"). *)

module C = Gnrflash_physics.Constants
module U = Gnrflash_units

let laundered () = C.q *. C.ev (* EXPECT L4 *)

let allowed () =
  (* lint: allow L4 — fixture: derived constant *)
  C.hbar *. C.k_b (* EXPECT-SUPPRESSED L4 *)

let typed () = U.to_float C.q_qty
