val fresh_key : unit -> int Domain.DLS.key
val suppressed_key : unit -> int Domain.DLS.key
val toplevel_key : int Domain.DLS.key
