val trace : int ref
val even_step : int -> int
val odd_step : int -> int
val cyclic : int array -> int array

module Counter (_ : sig
  val unit_step : int
end) : sig
  val cell : int ref
  val bump : unit -> unit
end

module C0 : sig
  val cell : int ref
  val bump : unit -> unit
end

val through_functor : int array -> int array

module type STEPPER = sig
  val step : float -> float
end

val packed : (module STEPPER)
val through_pack : float array -> float array
