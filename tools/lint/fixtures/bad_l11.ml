(* L11 fixture: typed-error erasure. A wildcard that swallows a
   Solver_error (directly or through a local [type error = Err.t]
   abbreviation, as the device layer writes it) loses the failure class;
   Result.get_ok turns it into an anonymous Invalid_argument. Binding the
   error, or visibly rebinding it with [as], is fine. *)

module Err = Gnrflash_resilience.Solver_error

type error = Err.t

let solve_ish (x : float) : (float, error) result =
  if x > 0. then Ok (sqrt x)
  else Error (Err.make ~solver:"fixture" (Err.Invalid_input "negative"))

let erased x =
  match solve_ish x with
  | Ok y -> y
  | Error _ -> 0. (* EXPECT L11 *)

let got x = Result.get_ok (solve_ish x) (* EXPECT L11 *)

let suppressed_erase x =
  match solve_ish x with
  | Ok y -> y
  (* lint: allow L11 — fixture: class already counted by the caller *)
  | Error _ -> 0. (* EXPECT-SUPPRESSED L11 *)

(* binding the error keeps the class observable: not flagged *)
let bound x =
  match solve_ish x with
  | Ok y -> y
  | Error e ->
    ignore (Err.label e);
    0.

(* a wildcard at the whole result type is a control-flow shortcut, not an
   error erasure: not flagged *)
let is_ok x = match solve_ish x with Ok _ -> true | _ -> false

(* [as] visibly rebinds the value — the wildcard underneath is fine *)
let aliased x = match solve_ish x with Ok y -> Some y | Error _ as _failed -> None
