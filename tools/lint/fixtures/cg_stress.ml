(* Call-graph stress fixture: mutual recursion (the reachability BFS must
   terminate and still find effects inside the cycle), functor
   instantiation (calls through the instantiated alias resolve into the
   functor body), and first-class modules (must not crash; calls through
   them are documented resolution misses). *)

module Sweep = Gnrflash_parallel.Sweep

let trace = ref 0

let rec even_step n = if n = 0 then 0 else odd_step (n - 1)

and odd_step n =
  trace := n; (* EXPECT L8 *)
  if n = 0 then 1 else even_step (n - 1)

let cyclic xs = Sweep.map (fun x -> even_step x) xs

module Counter (U : sig
  val unit_step : int
end) =
struct
  let cell = ref 0
  let bump () = cell := !cell + U.unit_step (* EXPECT L8 *)
end

module C0 = Counter (struct
  let unit_step = 1
end)

let through_functor xs =
  Sweep.map
    (fun x ->
      C0.bump ();
      x)
    xs

module type STEPPER = sig
  val step : float -> float
end

(* the packed structure's body is not walked (documented approximation):
   the Random.float inside is a silent false negative, never a crash *)
let packed : (module STEPPER) =
  (module struct
    let step x = x +. Random.float 1.0
  end)

let through_pack xs =
  Sweep.map
    (fun x ->
      let (module S) = packed in
      S.step x)
    xs
