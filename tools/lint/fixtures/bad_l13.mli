type acc = { total : float; count : int }

val sum_functional : float array -> acc
val sum_closure : float array -> float
val sum_suppressed : float array -> acc

type macc = { mutable m_total : float }

val sum_in_place : float array -> float
val hoisted : float array -> float
