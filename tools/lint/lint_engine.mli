(** The [gnrflash-lint] engine: typed-tree lint rules over the compiled
    [.cmt] files of the library tree.

    Intra-file rules (checked per module):
    - [L1] bare [failwith]/[invalid_arg]/[raise Invalid_argument|Failure]
      inside a solver module that should return a typed [Solver_error];
    - [L2] structural float equality ([=]/[<>] at type [float], detected
      via the typed tree) — use [Float.equal] or an epsilon comparison;
    - [L3] a call to a [Roots]/[Ode]/[Quadrature] entry point outside any
      telemetry-instrumented wrapper ([Telemetry.span]);
    - [L4] multiplying two raw [Constants.*] floats directly instead of
      going through the [Gnrflash_units] layer (unit laundering);
    - [L5] a non-shim library module without an [.mli];
    - [L6] a call to an adaptive WKB evaluator ([Wkb.action_integral] /
      [Wkb.transmission]) inside a [Quadrature] integrand — per-node
      adaptive recursion; build a {!Gnrflash_quantum.Wkb.Cache} once
      outside the integral instead;
    - [L7] a hardcoded [~chunk] constant at a [Sweep.*] call site,
      overriding the probe-based chunk auto-tuning.

    Inter-procedural rules (the {!Callgraph} two-phase analyzer; these
    certify the bit-identical-to-serial determinism contract of the
    [Sweep]/[Pool]/[Shard] scale-out tiers):
    - [L8] unsynchronized module-level mutable state ([ref], [Hashtbl],
      [Buffer], arrays, mutable record fields) written — or read while
      written elsewhere — in code reachable from a sweep worker closure,
      unless it goes through [Atomic], a [Mutex], or [Domain.DLS];
    - [L9] nondeterminism reachable from a sweep worker: the global
      [Random] PRNG, wall/process clocks ([Unix.gettimeofday],
      [Sys.time]), hash-order dependent [Hashtbl.fold]/[iter], physical
      equality on boxed values;
    - [L10] marshal-unsafe values (closures, first-class modules, custom
      blocks like [Mutex.t]/channels) in the frame type of a [Shard]
      process-boundary call;
    - [L11] typed-error erasure: a wildcard pattern matching a
      [Solver_error.t] payload, or [Result.get_ok] on a solver result;
    - [L12] [Domain.DLS.new_key] in non-toplevel position (leaks one DLS
      slot per call and defeats the per-domain cache).

    Hot-loop rule (only in modules annotated with the floating attribute
    [[@@@gnrflash.hot]] — the FSM/service modules whose loops the bench's
    allocation budget gates):
    - [L13] a minor-heap allocation inside a [for]/[while] loop body: an
      allocating functional record update ([{ e with ... }]) or a closure
      ([fun]/[function]). Hoist the value out of the loop or mutate a
      preallocated structure instead.

    Any rule is suppressible with a comment on the finding's line or the
    line above: [(* lint: allow L<n> — reason *)] ([L5]: anywhere in the
    file). The engine runs over a dune build tree: [root] is the directory
    that contains the compiled [lib/] (normally [_build/default]), where
    dune also copies the sources, so suppression comments are read from
    the same tree the [.cmt]s were built from. *)

type rule = L1 | L2 | L3 | L4 | L5 | L6 | L7 | L8 | L9 | L10 | L11 | L12 | L13

val rule_id : rule -> string
(** ["L1"] … ["L13"]. *)

val all_rules : rule list

val rule_of_string : string -> rule option
(** Parse ["L8"] / ["l8"] (case-insensitive prefix, any digit count). *)

type finding = {
  rule : rule;
  file : string;          (** path relative to [root], e.g. [lib/quantum/fn.ml] *)
  line : int;
  message : string;
  suppressed : bool;
  reason : string option; (** the reason text of the allow comment, if any *)
}

type config = {
  solver_basenames : string list;
  (** basenames of the modules [L1] holds to the typed-error contract *)
  l3_exempt_basenames : string list;
  (** the numeric kernels themselves — their internal mutual calls are the
      wrappers' own implementation, not uninstrumented call sites *)
}

val default_config : config

type report = {
  findings : finding list;   (** sorted by file, line, rule *)
  files_scanned : int;
  graph : (string * string list) list;
      (** the resolved call graph from the inter-procedural phase:
          node id -> sorted callee node ids (for tooling and tests) *)
}

val run : ?config:config -> root:string -> subdir:string -> unit -> report
(** Scan every [.cmt] under [root/subdir] (recursively, including dune's
    hidden [.objs] directories) and apply all twelve rules. *)

val unsuppressed : report -> finding list
val suppressed : report -> finding list

val render_finding : finding -> string
(** ["file:line: [L2] message"], with a [suppressed (reason)] note. *)

val by_rule : report -> (rule * int * int) list
(** Per-rule [(rule, unsuppressed, suppressed)] counts, for all rules. *)

val filter_rules : rule list -> report -> report
(** Keep only findings of the given rules ([--rules L8,L9]). *)

val render_json : report -> string
(** Machine-readable report: file/line/rule/suppressed/reason/message per
    finding plus per-rule summary counts. *)

type baseline = (string * rule * int) list
(** Allowed unsuppressed-finding counts per (file, rule). *)

val baseline_of_report : report -> baseline
val baseline_to_string : baseline -> string
val baseline_of_string : string -> baseline

val apply_baseline : baseline -> report -> report
(** Downgrade findings within the baseline budget to suppressed (reason
    ["baselined"]); anything beyond the recorded counts still fails. *)

val locate_root : unit -> string
(** Walk up from the executable's directory to the nearest ancestor with a
    [lib/] subdirectory, preferring the dune context root
    ([_build/default]) where the [.cmt] files live.
    @raise Failure if no such ancestor exists. *)
