(** The [gnrflash-lint] engine: typed-tree lint rules over the compiled
    [.cmt] files of the library tree.

    Rules (ids are stable, used in suppression comments):
    - [L1] bare [failwith]/[invalid_arg]/[raise Invalid_argument|Failure]
      inside a solver module that should return a typed [Solver_error];
    - [L2] structural float equality ([=]/[<>] at type [float], detected
      via the typed tree) — use [Float.equal] or an epsilon comparison;
    - [L3] a call to a [Roots]/[Ode]/[Quadrature] entry point outside any
      telemetry-instrumented wrapper ([Telemetry.span]);
    - [L4] multiplying two raw [Constants.*] floats directly instead of
      going through the [Gnrflash_units] layer (unit laundering);
    - [L5] a non-shim library module without an [.mli];
    - [L6] a call to an adaptive WKB evaluator ([Wkb.action_integral] /
      [Wkb.transmission]) inside a [Quadrature] integrand — per-node
      adaptive recursion; build a {!Gnrflash_quantum.Wkb.Cache} once
      outside the integral instead;
    - [L7] a hardcoded [~chunk] constant at a [Sweep.*] call site,
      overriding the probe-based chunk auto-tuning.

    Any rule is suppressible with a comment on the finding's line or the
    line above: [(* lint: allow L<n> — reason *)] ([L5]: anywhere in the
    file). The engine runs over a dune build tree: [root] is the directory
    that contains the compiled [lib/] (normally [_build/default]), where
    dune also copies the sources, so suppression comments are read from
    the same tree the [.cmt]s were built from. *)

type rule = L1 | L2 | L3 | L4 | L5 | L6 | L7

val rule_id : rule -> string
(** ["L1"] … ["L7"]. *)

val all_rules : rule list

type finding = {
  rule : rule;
  file : string;          (** path relative to [root], e.g. [lib/quantum/fn.ml] *)
  line : int;
  message : string;
  suppressed : bool;
  reason : string option; (** the reason text of the allow comment, if any *)
}

type config = {
  solver_basenames : string list;
  (** basenames of the modules [L1] holds to the typed-error contract *)
  l3_exempt_basenames : string list;
  (** the numeric kernels themselves — their internal mutual calls are the
      wrappers' own implementation, not uninstrumented call sites *)
}

val default_config : config

type report = {
  findings : finding list;   (** sorted by file, line, rule *)
  files_scanned : int;
}

val run : ?config:config -> root:string -> subdir:string -> unit -> report
(** Scan every [.cmt] under [root/subdir] (recursively, including dune's
    hidden [.objs] directories) and apply all seven rules. *)

val unsuppressed : report -> finding list
val suppressed : report -> finding list

val render_finding : finding -> string
(** ["file:line: [L2] message"], with a [suppressed (reason)] note. *)

val locate_root : unit -> string
(** Walk up from the executable's directory to the nearest ancestor with a
    [lib/] subdirectory, preferring the dune context root
    ([_build/default]) where the [.cmt] files live.
    @raise Failure if no such ancestor exists. *)
