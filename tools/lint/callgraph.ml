(* Phase 1: per-.cmt extraction of a module-qualified call graph with
   per-function effect sinks. Phase 2: reachability from every parallel
   call site's worker closures. See callgraph.mli for the approximations
   this walker deliberately makes.

   The walker must never crash on real code: every unhandled construct
   falls back to [Tast_iterator.default_iterator] (conservative recursion)
   or to an unresolved candidate list (conservatively dropped). *)

module E = Effects

type nondet = { nd_what : string; nd_line : int }

type sink = {
  mutable sk_refs : (string list * int) list;
  mutable sk_writes : (string list * int) list;
  mutable sk_nondet : nondet list;
  mutable sk_locks : bool;
}

type node = { nd_id : string; nd_file : string; nd_line : int; nd_sink : sink }

type hazard = {
  hz_id : string;
  hz_file : string;
  hz_line : int;
  hz_kind : string;
}

type site = {
  st_file : string;
  st_line : int;
  st_entry : string;
  st_sharded : bool;
  st_roots : sink;
  st_marshal : string list;
}

type raw = { rw_rule : int; rw_line : int; rw_message : string }

type file_summary = {
  fs_file : string;
  fs_modname : string;
  fs_nodes : node list;
  fs_hazards : hazard list;
  fs_sites : site list;
  fs_direct : raw list;
  fs_tyaliases : (string * string list) list;
  fs_maybe_l11 : (string list * raw) list;
}

let fresh_sink () =
  { sk_refs = []; sk_writes = []; sk_nondet = []; sk_locks = false }

let line_of loc = loc.Location.loc_start.Lexing.pos_lnum

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Candidates rooted in the stdlib or compiler internals never name one of
   our nodes or hazards; dropping them keeps the sinks small. *)
let keep_cand c =
  not (has_prefix ~prefix:"Stdlib." c || has_prefix ~prefix:"Camlinternal" c)

let is_arrow ty =
  match Types.get_desc ty with
  | Tarrow _ -> true
  | Tpoly (t, _) -> (
      match Types.get_desc t with Tarrow _ -> true | _ -> false)
  | _ -> false

(* ---------- phase 1 ---------- *)

type scope_entry = Snode of string | Svalue
type frame = Fnode of string | Froots

let extract ~modname ~file (str : Typedtree.structure) =
  let aliases : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let local_modules : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let scope : (string, scope_entry) Hashtbl.t = Hashtbl.create 32 in
  let nodes = ref [] in
  let hazards = ref [] in
  let sites = ref [] in
  let direct = ref [] in
  let tyaliases = ref [] in
  let maybe_l11 = ref [] in
  let prefixes = ref [ modname ] in
  let cur_prefix () = List.hd !prefixes in
  (* [Froots] marks a worker-roots sink, whose nested lets are attributed
     inline rather than as nodes *)
  let stack : (frame * sink) list ref = ref [] in
  let discard = fresh_sink () in
  let top_sink () = match !stack with (_, s) :: _ -> s | [] -> discard in
  let fn_depth = ref 0 in

  let add_direct rule loc msg =
    direct := { rw_rule = rule; rw_line = line_of loc; rw_message = msg } :: !direct
  in
  let add_ref cands l =
    let cands = List.filter keep_cand cands in
    if cands <> [] then begin
      let s = top_sink () in
      if not (List.exists (fun (c, _) -> c = cands) s.sk_refs) then
        s.sk_refs <- (cands, l) :: s.sk_refs
    end
  in
  let add_write cands l =
    let cands = List.filter keep_cand cands in
    if cands <> [] then begin
      let s = top_sink () in
      if not (List.exists (fun (c, l') -> c = cands && l' = l) s.sk_writes)
      then s.sk_writes <- (cands, l) :: s.sk_writes
    end
  in
  let add_nondet what l =
    let s = top_sink () in
    if
      not
        (List.exists
           (fun n -> n.nd_what = what && n.nd_line = l)
           s.sk_nondet)
    then s.sk_nondet <- { nd_what = what; nd_line = l } :: s.sk_nondet
  in

  let qualify_local s =
    match String.index_opt s '.' with
    | Some i when Hashtbl.mem local_modules (String.sub s 0 i) ->
        Hashtbl.find local_modules (String.sub s 0 i)
        ^ String.sub s i (String.length s - i)
    | _ -> s
  in
  let canon_path p =
    match p with
    | Path.Pident id -> (
        let name = Ident.name id in
        match Hashtbl.find_opt scope name with
        | Some (Snode nid) -> [ nid ]
        | Some Svalue -> []
        | None -> List.map (fun pref -> pref ^ "." ^ name) !prefixes)
    | _ -> [ qualify_local (E.resolve aliases (E.normalize_name (Path.name p))) ]
  in
  let head_canons (fn : Typedtree.expression) =
    match fn.exp_desc with Texp_ident (p, _, _) -> canon_path p | _ -> []
  in
  (* candidate canonical names for a type path; like [canon_path] but
     without the value scope (types live in their own namespace) *)
  let ty_path_cands p =
    match p with
    | Path.Pident id ->
        List.map (fun pref -> pref ^ "." ^ Ident.name id) !prefixes
    | _ -> [ qualify_local (E.resolve aliases (E.normalize_name (Path.name p))) ]
  in
  (* candidate names for a nullary type constructor ([Solver_error.t] and
     its abbreviations take no parameters); [get_desc] does not expand
     abbreviations, so the names are chased through the global type-alias
     table in phase 2 *)
  let ty_cands ty =
    match Types.get_desc ty with
    | Tconstr (p, [], _) -> ty_path_cands p
    | _ -> []
  in
  let add_maybe_l11 cands loc msg =
    if cands <> [] then
      maybe_l11 :=
        (cands, { rw_rule = 11; rw_line = line_of loc; rw_message = msg })
        :: !maybe_l11
  in
  let rec base_ident (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> Some (canon_path p)
    | Texp_field (e', _, _) -> base_ident e'
    | _ -> None
  in

  (* generic pattern walks (value and computation patterns) *)
  let rec pat_names : type k. k Typedtree.general_pattern -> string list =
   fun p ->
    match p.pat_desc with
    | Tpat_var (id, _) -> [ Ident.name id ]
    | Tpat_alias (sub, id, _) -> Ident.name id :: pat_names sub
    | Tpat_tuple ps | Tpat_array ps -> List.concat_map pat_names ps
    | Tpat_construct (_, _, ps, _) -> List.concat_map pat_names ps
    | Tpat_variant (_, Some p', _) -> pat_names p'
    | Tpat_record (fs, _) -> List.concat_map (fun (_, _, p') -> pat_names p') fs
    | Tpat_lazy p' -> pat_names p'
    | Tpat_or (a, b, _) -> pat_names a @ pat_names b
    | Tpat_value v -> pat_names (v :> Typedtree.value Typedtree.general_pattern)
    | Tpat_exception p' -> pat_names p'
    | _ -> []
  in
  (* L11: a wildcard erasing a typed Solver_error, unless it sits under an
     alias ([Error _ as e]) that visibly rebinds the value *)
  let rec scan_pat : type k. under_alias:bool -> k Typedtree.general_pattern -> unit
      =
   fun ~under_alias p ->
    (match p.pat_desc with
    | Tpat_any when not under_alias ->
        add_maybe_l11 (ty_cands p.pat_type) p.pat_loc
          "wildcard pattern erases a typed Solver_error — match or bind the \
           error so the failure class stays observable (e.g. count it in \
           telemetry before falling back)"
    | _ -> ());
    match p.pat_desc with
    | Tpat_alias (sub, _, _) -> scan_pat ~under_alias:true sub
    | Tpat_tuple ps | Tpat_array ps -> List.iter (scan_pat ~under_alias) ps
    | Tpat_construct (_, _, ps, _) -> List.iter (scan_pat ~under_alias) ps
    | Tpat_variant (_, Some p', _) -> scan_pat ~under_alias p'
    | Tpat_record (fs, _) ->
        List.iter (fun (_, _, p') -> scan_pat ~under_alias p') fs
    | Tpat_lazy p' -> scan_pat ~under_alias p'
    | Tpat_or (a, b, _) ->
        scan_pat ~under_alias a;
        scan_pat ~under_alias b
    | Tpat_value v ->
        scan_pat ~under_alias (v :> Typedtree.value Typedtree.general_pattern)
    | Tpat_exception p' -> scan_pat ~under_alias p'
    | _ -> ()
  in

  let is_fun (e : Typedtree.expression) =
    match e.exp_desc with Texp_function _ -> true | _ -> false
  in
  (* a binding of a single name: [let x = ...] is [Tpat_var], but the
     annotated form [let x : ty = ...] compiles to
     [Tpat_alias (Tpat_any, x)] *)
  let bound_var (p : Typedtree.pattern) =
    match p.pat_desc with
    | Tpat_var (id, _) -> Some id
    | Tpat_alias ({ pat_desc = Tpat_any; _ }, id, _) -> Some id
    | _ -> None
  in
  let alloc_class_of (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply (fn, _) -> (
        match head_canons fn with [ h ] -> E.classify_alloc h | _ -> E.Opaque)
    | Texp_record { fields; _ } ->
        if
          Array.exists
            (fun ((ld : Types.label_description), _) ->
              match ld.lbl_mut with Asttypes.Mutable -> true | _ -> false)
            fields
        then E.Hazard "record with mutable fields"
        else E.Opaque
    | Texp_array (_ :: _) -> E.Hazard "array literal"
    | _ -> E.Opaque
  in

  let expr (sub : Tast_iterator.iterator) (e : Typedtree.expression) =
    let iter_e e' = sub.Tast_iterator.expr sub e' in
    let walk_cases : type k. k Typedtree.case list -> unit =
     fun cases ->
      List.iter
        (fun (c : k Typedtree.case) ->
          scan_pat ~under_alias:false c.c_lhs;
          let names = pat_names c.c_lhs in
          List.iter (fun n -> Hashtbl.add scope n Svalue) names;
          Option.iter iter_e c.c_guard;
          iter_e c.c_rhs;
          List.iter (fun n -> Hashtbl.remove scope n) names)
        cases
    in
    match e.exp_desc with
    | Texp_ident (p, _, _) ->
        let cands = canon_path p in
        let l = line_of e.exp_loc in
        List.iter
          (fun c -> if E.is_lock c then (top_sink ()).sk_locks <- true)
          cands;
        (match List.find_map E.nondet_of cands with
        | Some what -> add_nondet what l
        | None -> ());
        add_ref cands l
    | Texp_apply (fn, args) -> (
        let heads = head_canons fn in
        let pick f = List.find_map f heads in
        let apply_line = line_of e.exp_loc in
        (* in-place mutation of a module-level target *)
        (match pick E.write_arg with
        | Some idx -> (
            match List.nth_opt args idx with
            | Some (_, Some arg) -> (
                match base_ident arg with
                | Some cands -> add_write cands apply_line
                | None -> ())
            | _ -> ())
        | None -> ());
        (* physical equality on boxed values *)
        (match pick (fun h -> if E.is_physical_eq h then Some h else None) with
        | Some h ->
            let boxed =
              List.exists
                (fun (_, a) ->
                  match a with
                  | Some (arg : Typedtree.expression) ->
                      E.is_boxed_type arg.exp_type
                  | None -> false)
                args
            in
            if boxed then
              add_nondet
                (Printf.sprintf
                   "physical equality (%s) on boxed values — pointer \
                    identity is allocation-order dependent"
                   (if h = "Stdlib.==" then "==" else "!="))
                apply_line
        | None -> ());
        (* L12: DLS keys minted away from module toplevel *)
        (if pick (fun h -> if E.is_dls_new_key h then Some () else None) <> None
         && !fn_depth > 0
        then
           add_direct 12 e.exp_loc
             "Domain.DLS.new_key in non-toplevel position — a key minted \
              per call leaks one slot per invocation and defeats the \
              per-domain cache; hoist it to module toplevel");
        (* L11: Result.get_ok / get_error on a typed solver result *)
        (match heads with
        | h :: _ when h = "Stdlib.Result.get_ok" || h = "Stdlib.Result.get_error"
          ->
            (* the error component is usually an abbreviation
               ([Transient.error]); collect its candidate names and let
               phase 2 decide whether it chases to Solver_error.t *)
            let err_cands =
              List.concat_map
                (fun (_, a) ->
                  match a with
                  | Some (arg : Typedtree.expression) -> (
                      match Types.get_desc arg.exp_type with
                      | Tconstr (p, [ _; err ], _)
                        when E.normalize_name (Path.name p) = "result"
                             || E.is_result_name
                                  (E.normalize_name (Path.name p)) ->
                          ty_cands err
                      | _ -> [])
                  | None -> [])
                args
            in
            add_maybe_l11 err_cands e.exp_loc
              "Result.get_ok on a solver result erases the typed \
               Solver_error into Invalid_argument — match on the result \
               (or thread it) instead"
        | _ -> ());
        (* parallel entry points: record the site and collect worker roots *)
        match pick E.entry_of with
        | Some short ->
            let sharded =
              List.exists (fun h -> E.is_shard_entry h) heads
              || List.exists
                   (fun ((lbl : Asttypes.arg_label), a) ->
                     match (lbl, a) with
                     | (Asttypes.Labelled l | Asttypes.Optional l), Some arg
                       -> (
                         l = "shards"
                         &&
                         (* an omitted optional arg is materialized by the
                            typer as a literal [None] — that is absence,
                            not a shard request *)
                         match (arg : Typedtree.expression).exp_desc with
                         | Texp_construct (_, cd, []) ->
                             cd.Types.cstr_name <> "None"
                         | _ -> true)
                     | _ -> false)
                   args
            in
            let marshal =
              if sharded && not (is_arrow e.exp_type) then
                E.marshal_hazards e.exp_type
              else []
            in
            let roots = fresh_sink () in
            sites :=
              {
                st_file = file;
                st_line = apply_line;
                st_entry = short;
                st_sharded = sharded;
                st_roots = roots;
                st_marshal = marshal;
              }
              :: !sites;
            iter_e fn;
            List.iter
              (fun (_, a) ->
                match a with
                | Some (arg : Typedtree.expression) ->
                    if is_arrow arg.exp_type then begin
                      stack := (Froots, roots) :: !stack;
                      iter_e arg;
                      stack := List.tl !stack
                    end
                    else iter_e arg
                | None -> ())
              args
        | None ->
            iter_e fn;
            List.iter (fun (_, a) -> Option.iter iter_e a) args)
    | Texp_let (rf, vbs, body) ->
        (* nested named functions become nodes (so passing them to a sweep
           by name stays resolvable) except inside worker-roots sinks,
           where effects are already attributed inline *)
        let make_nested =
          match !stack with (Froots, _) :: _ -> false | _ -> true
        in
        let owner =
          match !stack with
          | (Fnode nid, _) :: _ -> nid
          | _ -> cur_prefix ()
        in
        let bound = List.concat_map (fun vb -> pat_names vb.Typedtree.vb_pat) vbs in
        let register () =
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              match bound_var vb.vb_pat with
              | Some id when make_nested && is_fun vb.vb_expr ->
                  Hashtbl.add scope (Ident.name id)
                    (Snode (owner ^ "." ^ Ident.name id))
              | _ ->
                  List.iter
                    (fun n -> Hashtbl.add scope n Svalue)
                    (pat_names vb.vb_pat))
            vbs
        in
        let walk_vbs () =
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              scan_pat ~under_alias:false vb.vb_pat;
              match bound_var vb.vb_pat with
              | Some id when make_nested && is_fun vb.vb_expr ->
                  let nid = owner ^ "." ^ Ident.name id in
                  let sink = fresh_sink () in
                  nodes :=
                    {
                      nd_id = nid;
                      nd_file = file;
                      nd_line = line_of vb.vb_loc;
                      nd_sink = sink;
                    }
                    :: !nodes;
                  stack := (Fnode nid, sink) :: !stack;
                  iter_e vb.vb_expr;
                  stack := List.tl !stack
              | _ -> iter_e vb.vb_expr)
            vbs
        in
        (match rf with
        | Recursive ->
            register ();
            walk_vbs ()
        | Nonrecursive ->
            walk_vbs ();
            register ());
        iter_e body;
        List.iter (fun n -> Hashtbl.remove scope n) bound
    | Texp_function { cases; _ } ->
        incr fn_depth;
        walk_cases cases;
        decr fn_depth
    | Texp_match (scrut, cases, _) ->
        iter_e scrut;
        walk_cases cases
    | Texp_try (body, cases) ->
        iter_e body;
        walk_cases cases
    | Texp_for (id, _, lo, hi, _, body) ->
        iter_e lo;
        iter_e hi;
        Hashtbl.add scope (Ident.name id) Svalue;
        iter_e body;
        Hashtbl.remove scope (Ident.name id)
    | Texp_setfield (obj, _, _, v) ->
        (match base_ident obj with
        | Some cands -> add_write cands (line_of e.exp_loc)
        | None -> ());
        iter_e obj;
        iter_e v
    | Texp_letmodule (id_opt, _, _, mexpr, body) -> (
        match (id_opt, mexpr.Typedtree.mod_desc) with
        | Some id, Tmod_ident (p, _) ->
            let target =
              qualify_local (E.resolve aliases (E.normalize_name (Path.name p)))
            in
            Hashtbl.add aliases (Ident.name id) target;
            iter_e body;
            Hashtbl.remove aliases (Ident.name id)
        | _ -> iter_e body)
    | Texp_pack _ ->
        (* first-class module values: contents are not walked (calls
           through them are unresolvable anyway); must not crash *)
        ()
    | _ -> Tast_iterator.default_iterator.expr sub e
  in

  let handle_module sub (mb : Typedtree.module_binding) =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    let rec functor_head (f : Typedtree.module_expr) =
      match f.mod_desc with
      | Tmod_ident (p, _) ->
          Some (qualify_local (E.resolve aliases (E.normalize_name (Path.name p))))
      | Tmod_apply (g, _, _) -> functor_head g
      | Tmod_constraint (inner, _, _, _) -> functor_head inner
      | _ -> None
    in
    let rec go (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_ident (p, _) ->
          Hashtbl.replace aliases name
            (qualify_local (E.resolve aliases (E.normalize_name (Path.name p))))
      | Tmod_structure s ->
          let full = cur_prefix () ^ "." ^ name in
          Hashtbl.replace local_modules name full;
          prefixes := full :: !prefixes;
          List.iter (fun it -> sub.Tast_iterator.structure_item sub it) s.str_items;
          prefixes := List.tl !prefixes
      | Tmod_functor (_, body) -> go body
      | Tmod_apply (f, _, _) -> (
          match functor_head f with
          | Some target -> Hashtbl.replace aliases name target
          | None -> ())
      | Tmod_apply_unit f -> (
          match functor_head f with
          | Some target -> Hashtbl.replace aliases name target
          | None -> ())
      | Tmod_constraint (inner, _, _, _) -> go inner
      | Tmod_unpack _ -> ()
    in
    go mb.mb_expr
  in

  let structure_item (sub : Tast_iterator.iterator) (si : Typedtree.structure_item)
      =
    match si.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            scan_pat ~under_alias:false vb.vb_pat;
            match bound_var vb.vb_pat with
            | Some id when is_fun vb.vb_expr ->
                let nid = cur_prefix () ^ "." ^ Ident.name id in
                let sink = fresh_sink () in
                nodes :=
                  {
                    nd_id = nid;
                    nd_file = file;
                    nd_line = line_of vb.vb_loc;
                    nd_sink = sink;
                  }
                  :: !nodes;
                stack := (Fnode nid, sink) :: !stack;
                sub.Tast_iterator.expr sub vb.vb_expr;
                stack := List.tl !stack
            | Some id ->
                (match alloc_class_of vb.vb_expr with
                | E.Hazard kind ->
                    hazards :=
                      {
                        hz_id = cur_prefix () ^ "." ^ Ident.name id;
                        hz_file = file;
                        hz_line = line_of vb.vb_loc;
                        hz_kind = kind;
                      }
                      :: !hazards
                | _ -> ());
                (* module-load initialization: effects run once, serially,
                   before any worker exists — walked under the discard sink
                   (sites inside it are still recorded) *)
                sub.Tast_iterator.expr sub vb.vb_expr
            | None -> sub.Tast_iterator.expr sub vb.vb_expr)
          vbs
    | Tstr_type (_, decls) ->
        (* record [type error = Some.Path.t] manifests so phase 2 can chase
           abbreviations of Solver_error.t across files *)
        List.iter
          (fun (d : Typedtree.type_declaration) ->
            match d.typ_manifest with
            | Some cty -> (
                match Types.get_desc cty.ctyp_type with
                | Tconstr (p, [], _) ->
                    let name = cur_prefix () ^ "." ^ d.typ_name.txt in
                    tyaliases := (name, ty_path_cands p) :: !tyaliases
                | _ -> ())
            | None -> ())
          decls
    | Tstr_module mb -> handle_module sub mb
    | Tstr_recmodule mbs -> List.iter (handle_module sub) mbs
    | Tstr_include incl -> (
        match incl.incl_mod.mod_desc with
        | Tmod_structure s ->
            List.iter (fun it -> sub.Tast_iterator.structure_item sub it) s.str_items
        | _ -> ())
    | _ -> Tast_iterator.default_iterator.structure_item sub si
  in

  let iter =
    { Tast_iterator.default_iterator with expr; structure_item }
  in
  iter.structure iter str;
  {
    fs_file = file;
    fs_modname = modname;
    fs_nodes = List.rev !nodes;
    fs_hazards = List.rev !hazards;
    fs_sites = List.rev !sites;
    fs_direct = List.rev !direct;
    fs_tyaliases = List.rev !tyaliases;
    fs_maybe_l11 = List.rev !maybe_l11;
  }

(* ---------- phase 2 ---------- *)

type analysis = {
  an_graph : (string * string list) list;
  an_written : string list;
  an_findings : (string * raw) list;
}

(* display name: drop the library segment of a 3+-segment id *)
let short_id id =
  match String.split_on_char '.' id with
  | _ :: (_ :: _ :: _ as rest) -> String.concat "." rest
  | _ -> id

let analyze summaries =
  let node_tbl : (string, node) Hashtbl.t = Hashtbl.create 256 in
  let hazard_tbl : (string, hazard) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun fs ->
      List.iter (fun n -> Hashtbl.replace node_tbl n.nd_id n) fs.fs_nodes;
      List.iter (fun h -> Hashtbl.replace hazard_tbl h.hz_id h) fs.fs_hazards)
    summaries;
  let resolve_node cands = List.find_opt (Hashtbl.mem node_tbl) cands in
  let resolve_hazard cands = List.find_opt (Hashtbl.mem hazard_tbl) cands in

  (* hazards written from function bodies or worker closures; module-load
     init writes (discard sink) are deliberately exempt *)
  let written : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let note_writes (sk : sink) =
    List.iter
      (fun (cands, _) ->
        match resolve_hazard cands with
        | Some h -> Hashtbl.replace written h ()
        | None -> ())
      sk.sk_writes
  in
  List.iter
    (fun fs ->
      List.iter (fun n -> note_writes n.nd_sink) fs.fs_nodes;
      List.iter (fun s -> note_writes s.st_roots) fs.fs_sites)
    summaries;

  let graph =
    List.concat_map
      (fun fs ->
        List.map
          (fun n ->
            let callees =
              List.filter_map (fun (cands, _) -> resolve_node cands)
                n.nd_sink.sk_refs
              |> List.sort_uniq compare
            in
            (n.nd_id, callees))
          fs.fs_nodes)
      summaries
    |> List.sort compare
  in

  let seen : (int * string * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  let emit rule file line msg =
    if not (Hashtbl.mem seen (rule, file, line)) then begin
      Hashtbl.add seen (rule, file, line) ();
      out := (file, { rw_rule = rule; rw_line = line; rw_message = msg }) :: !out
    end
  in
  let chain_str = function
    | [] -> ""
    | chain ->
        Printf.sprintf " (call path: worker -> %s)" (String.concat " -> " chain)
  in

  (* L11: resolve the candidate type names recorded at wildcard patterns
     and Result.get_ok sites through the abbreviation chain
     ([type error = Solver_error.t] and friends) *)
  let tyalias_tbl : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun fs ->
      List.iter
        (fun (name, targets) ->
          if not (Hashtbl.mem tyalias_tbl name) then
            Hashtbl.add tyalias_tbl name targets)
        fs.fs_tyaliases)
    summaries;
  let rec ty_is_solver_error seen cands =
    List.exists
      (fun c ->
        E.is_solver_error_name c
        || (not (List.mem c seen)
           &&
           match Hashtbl.find_opt tyalias_tbl c with
           | Some next -> ty_is_solver_error (c :: seen) next
           | None -> false))
      cands
  in
  List.iter
    (fun fs ->
      List.iter
        (fun (cands, r) ->
          if ty_is_solver_error [] cands then
            emit r.rw_rule fs.fs_file r.rw_line r.rw_message)
        fs.fs_maybe_l11)
    summaries;

  List.iter
    (fun fs ->
      List.iter
        (fun st ->
          let origin =
            Printf.sprintf "the %s worker at %s:%d" st.st_entry st.st_file
              st.st_line
          in
          List.iter
            (fun d ->
              emit 10 st.st_file st.st_line
                (Printf.sprintf
                   "%s crosses the %s process boundary — shard frames must \
                    round-trip through Marshal; return plain data from \
                    sharded workers"
                   d st.st_entry))
            st.st_marshal;
          let check_sink ~file ~chain (sk : sink) =
            if not sk.sk_locks then begin
              List.iter
                (fun (cands, l) ->
                  match resolve_hazard cands with
                  | Some h ->
                      let hz = Hashtbl.find hazard_tbl h in
                      emit 8 file l
                        (Printf.sprintf
                           "unsynchronized module-level mutable state `%s` \
                            (%s, defined at %s:%d) is written in code \
                            reachable from %s%s — use an Atomic, a Mutex, \
                            or Domain.DLS"
                           (short_id h) hz.hz_kind hz.hz_file hz.hz_line
                           origin (chain_str chain))
                  | None -> ())
                sk.sk_writes;
              List.iter
                (fun (cands, l) ->
                  match resolve_hazard cands with
                  | Some h when Hashtbl.mem written h ->
                      let hz = Hashtbl.find hazard_tbl h in
                      emit 8 file l
                        (Printf.sprintf
                           "module-level mutable state `%s` (%s, defined \
                            at %s:%d) is read in code reachable from %s \
                            while other code writes it%s — synchronize or \
                            snapshot it before the sweep"
                           (short_id h) hz.hz_kind hz.hz_file hz.hz_line
                           origin (chain_str chain))
                  | _ -> ())
                sk.sk_refs
            end;
            List.iter
              (fun (nd : nondet) ->
                emit 9 file nd.nd_line
                  (Printf.sprintf
                     "nondeterminism reachable from %s: %s%s — sweep \
                      results must be bit-identical to serial for any \
                      --jobs/--chunk/--shards"
                     origin nd.nd_what (chain_str chain)))
              sk.sk_nondet
          in
          check_sink ~file:st.st_file ~chain:[] st.st_roots;
          let visited : (string, unit) Hashtbl.t = Hashtbl.create 32 in
          let q = Queue.create () in
          let enqueue chain (cands, _) =
            match resolve_node cands with
            | Some nid when not (Hashtbl.mem visited nid) ->
                Hashtbl.add visited nid ();
                Queue.add (nid, chain) q
            | _ -> ()
          in
          List.iter (enqueue []) st.st_roots.sk_refs;
          while not (Queue.is_empty q) do
            let nid, chain = Queue.pop q in
            let n = Hashtbl.find node_tbl nid in
            let chain' = chain @ [ short_id nid ] in
            check_sink ~file:n.nd_file ~chain:chain' n.nd_sink;
            List.iter (enqueue chain') n.nd_sink.sk_refs
          done)
        fs.fs_sites)
    summaries;
  {
    an_graph = graph;
    an_written = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) written []);
    an_findings = List.rev !out;
  }
