module Ps = Gnrflash_device.Pulse_surrogate
module Pe = Gnrflash_device.Program_erase
module T = Gnrflash_device.Transient
module F = Gnrflash_device.Fgt
module Tel = Gnrflash_telemetry.Telemetry
module Fault = Gnrflash_resilience.Fault
module Sweep = Gnrflash_parallel.Sweep
open Gnrflash_testing.Testing

let paper = F.paper_default

let mk ~gcr ~xto_nm =
  F.make ~gcr ~xto:(xto_nm *. 1e-9) ~xco:10e-9 ~area:(32e-9 *. 32e-9) ()

let build_exn ?box device ~vgs = check_sok "surrogate build" (Ps.build ?box device ~vgs)

let exact_final device ~vgs ~duration ~qfg =
  match T.run ~qfg0:qfg device ~vgs ~duration with
  | Ok r -> r.T.qfg_final
  | Error e ->
    Alcotest.failf "exact solve failed: %s"
      (Gnrflash_resilience.Solver_error.to_string e)

(* restore the default promotion policy however a test exits *)
let with_build_after n f =
  let prev = Ps.build_after () in
  Ps.set_build_after n;
  Fun.protect ~finally:(fun () -> Ps.set_build_after prev) f

let with_counters f =
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:(fun () -> Tel.disable (); Tel.reset ()) f

(* ---------- table basics ---------- *)

let test_build_basics () =
  let tab = build_exn paper ~vgs:15. in
  check_true "enough knots" (Ps.knot_count tab >= 8);
  check_close "records vgs" 15. (Ps.vgs tab);
  check_true "bound positive" (Ps.certified_bound tab > 0.);
  check_true "bound from measurement"
    (Ps.certified_bound tab > Ps.max_measured_divergence tab);
  (* the paper device at 15 V certifies to well under a percent *)
  check_true
    (Printf.sprintf "bound %.3e below 1e-2" (Ps.certified_bound tab))
    (Ps.certified_bound tab < 1e-2);
  let lo, hi = Ps.qfg_range tab in
  check_true "range spans the neutral cell" (lo < 0. && hi > 0.);
  (* polarity symmetry of the device carries over to the tables *)
  let te = build_exn paper ~vgs:(-15.) in
  let lo', hi' = Ps.qfg_range te in
  check_close ~tol:1e-6 "mirrored range lo" (-.hi) lo';
  check_close ~tol:1e-6 "mirrored range hi" (-.lo) hi'

let test_query_semantics () =
  let tab = build_exn paper ~vgs:15. in
  let lo, hi = Ps.qfg_range tab in
  check_true "non-positive duration refused"
    (Ps.query tab ~qfg:0. ~duration:0. = None);
  check_true "below range refused"
    (Ps.query tab ~qfg:(lo -. abs_float lo) ~duration:1e-6 = None);
  check_true "above range refused"
    (Ps.query tab ~qfg:(hi +. hi) ~duration:1e-6 = None);
  (* a long pulse saturates; a very short one does not *)
  (match Ps.query tab ~qfg:0. ~duration:1e-1 with
   | Some r -> check_true "long pulse saturates" r.Ps.saturated
   | None -> Alcotest.fail "long pulse unserved");
  match Ps.query tab ~qfg:0. ~duration:1e-9 with
  | Some r -> check_false "1 ns pulse does not saturate" r.Ps.saturated
  | None -> Alcotest.fail "short pulse unserved"

(* ---------- the headline certification property ---------- *)

(* For random operating points inside the paper box (both polarities) the
   served answer must stay within the table's own certified bound of an
   independent exact solve — measured with the table's divergence metric,
   the same function the build used to derive the bound. Operating points
   the surrogate declines (an under-resolved weak-bias trajectory fails to
   build; a duration outrunning an unsaturated table) are fallbacks to the
   exact solver by contract, so they pass trivially. *)
let cert_gen =
  QCheck2.Gen.(
    tup6 bool (float_range 8. 17.) (float_range 0.45 0.6)
      (float_range 5. 9.) (float_range (-9.) (-1.)) (float_range 0. 1.))

let cert_print (neg, v, gcr, xto_nm, logd, u) =
  Printf.sprintf
    "vgs=%s%.6g gcr=%.6g xto=%.6g nm duration=1e%.4g qfg-fraction=%.6g"
    (if neg then "-" else "") v gcr xto_nm logd u

let prop_certified_bound =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:12 ~name:"within certified bound across the box"
       ~print:cert_print cert_gen
       (fun (neg, v, gcr, xto_nm, logd, u) ->
          let vgs = if neg then -.v else v in
          let duration = 10. ** logd in
          let device = mk ~gcr ~xto_nm in
          match Ps.build device ~vgs with
          | Error _ -> true (* unresolvable corner: falls back to exact *)
          | Ok tab ->
            let lo, hi = Ps.qfg_range tab in
            let qfg = lo +. (u *. (hi -. lo)) in
            (match Ps.query tab ~qfg ~duration with
             | None -> true (* out of table coverage: falls back *)
             | Some r ->
               let exact = exact_final device ~vgs ~duration ~qfg in
               Ps.divergence tab ~exact ~approx:r.Ps.qfg_after
               <= Ps.certified_bound tab)))

let prop_monotone_in_duration =
  (* PCHIP preserves the trajectory's monotonicity: a longer pulse at the
     same bias moves at least as much charge *)
  let tab = lazy (build_exn paper ~vgs:15.) in
  prop "longer served pulse moves at least as much charge" ~count:40
    QCheck2.Gen.(pair (float_range 0. 1.) (float_range 1. 50.))
    (fun (u, mult) ->
       let tab = Lazy.force tab in
       let lo, hi = Ps.qfg_range tab in
       let qfg = lo +. (u *. (hi -. lo)) in
       let d1 = 1e-6 in
       let d2 = d1 *. mult in
       match Ps.query tab ~qfg ~duration:d1, Ps.query tab ~qfg ~duration:d2 with
       | Some a, Some b ->
         (* programming drives the charge down (electrons in) *)
         b.Ps.qfg_after <= a.Ps.qfg_after +. 1e-25
       | _ -> false)

(* ---------- out-of-domain contract ---------- *)

let bits = Int64.bits_of_float

let assert_bit_identical msg a b =
  check_true msg
    (Int64.equal (bits a.Pe.qfg_after) (bits b.Pe.qfg_after)
     && Int64.equal (bits a.Pe.dvt_after) (bits b.Pe.dvt_after)
     && Bool.equal a.Pe.saturated b.Pe.saturated)

let test_out_of_box_bit_identity () =
  with_build_after 0 @@ fun () ->
  with_counters @@ fun () ->
  let device = mk ~gcr:0.6 ~xto_nm:5. in
  (* three ways out of the box: bias, duration, device geometry *)
  let cases =
    [ ("vgs above box", device, { Pe.vgs = 18.; duration = 100e-6 });
      ("vgs below box", device, { Pe.vgs = 7.5; duration = 100e-6 });
      ("duration below box", device, { Pe.vgs = 15.; duration = 1e-10 });
      ("duration above box", device, { Pe.vgs = 15.; duration = 0.2 });
      ("gcr outside box", mk ~gcr:0.7 ~xto_nm:5., { Pe.vgs = 15.; duration = 100e-6 });
      ("xto outside box", mk ~gcr:0.6 ~xto_nm:9.5, { Pe.vgs = 15.; duration = 100e-6 });
    ]
  in
  List.iter
    (fun (msg, dev, pulse) ->
       let on =
         check_sok msg (Pe.apply_pulse ~warm_start:false dev ~qfg:0. pulse)
       in
       let off =
         check_sok msg
           (Pe.apply_pulse ~warm_start:false ~surrogate:false dev ~qfg:0. pulse)
       in
       assert_bit_identical (msg ^ ": bit-identical to exact") on off)
    cases;
  check_true "fallback fired for every out-of-box query"
    (Tel.counter_total "surrogate/fallback" >= List.length cases);
  Alcotest.(check int) "no hits out of box" 0 (Tel.counter_total "surrogate/hit")

let test_out_of_range_charge_falls_back () =
  with_build_after 0 @@ fun () ->
  with_counters @@ fun () ->
  let device = mk ~gcr:0.6 ~xto_nm:5. in
  let pulse = { Pe.vgs = 15.; duration = 100e-6 } in
  (* prime the table, then query from a charge far outside its range *)
  ignore (check_sok "prime" (Pe.apply_pulse ~warm_start:false device ~qfg:0. pulse));
  let tab =
    match Ps.cached device ~vgs:15. with
    | Some t -> t
    | None -> Alcotest.fail "table not cached after priming"
  in
  let _, hi = Ps.qfg_range tab in
  let q_out = 3. *. hi in
  let hits0 = Tel.counter_total "surrogate/hit" in
  let on =
    check_sok "oob charge" (Pe.apply_pulse ~warm_start:false device ~qfg:q_out pulse)
  in
  let off =
    check_sok "oob charge exact"
      (Pe.apply_pulse ~warm_start:false ~surrogate:false device ~qfg:q_out pulse)
  in
  assert_bit_identical "out-of-range charge is exact" on off;
  Alcotest.(check int) "no hit for out-of-range charge" hits0
    (Tel.counter_total "surrogate/hit");
  check_true "fallback fired" (Tel.counter_total "surrogate/fallback" > 0)

let test_box_edges_inside () =
  (* exactly-on-boundary operating points are inside the box, including
     devices *constructed at* a box corner (GCR round-trips through the
     capacitance network) *)
  let corners = [ (0.45, 5.); (0.45, 9.); (0.6, 5.); (0.6, 9.) ] in
  List.iter
    (fun (gcr, xto_nm) ->
       let dev = mk ~gcr ~xto_nm in
       List.iter
         (fun vgs ->
            List.iter
              (fun d ->
                 check_true
                   (Printf.sprintf "edge in box: gcr=%g xto=%g vgs=%g d=%g"
                      gcr xto_nm vgs d)
                   (Ps.in_box dev ~vgs ~duration:d))
              [ 1e-9; 1e-1 ])
         [ 8.; 17.; -8.; -17. ])
    corners;
  (* just past any face is outside *)
  let dev = mk ~gcr:0.6 ~xto_nm:5. in
  check_false "vgs past max" (Ps.in_box dev ~vgs:17.000001 ~duration:1e-6);
  check_false "duration past max" (Ps.in_box dev ~vgs:15. ~duration:0.100001);
  check_false "gcr past max"
    (Ps.in_box (mk ~gcr:0.61 ~xto_nm:5.) ~vgs:15. ~duration:1e-6)

let test_charge_range_edges_served () =
  let tab = build_exn paper ~vgs:15. in
  let lo, hi = Ps.qfg_range tab in
  check_true "exactly q_lo served" (Ps.query tab ~qfg:lo ~duration:1e-6 <> None);
  check_true "exactly q_hi served" (Ps.query tab ~qfg:hi ~duration:1e-6 <> None);
  (* the strong box corner serves right on the duration boundaries too *)
  check_true "duration_min served"
    (Ps.query tab ~qfg:0. ~duration:1e-9 <> None);
  check_true "duration_max served"
    (Ps.query tab ~qfg:0. ~duration:1e-1 <> None)

(* ---------- cache policy and counters ---------- *)

let test_promotion_policy () =
  with_counters @@ fun () ->
  let device = mk ~gcr:0.6 ~xto_nm:5. in
  let pulse = { Pe.vgs = 15.; duration = 100e-6 } in
  (* default policy: first build_after requests fall back, the next builds *)
  Alcotest.(check int) "default build_after" 2 (Ps.build_after ());
  let q = ref 0.123e-17 in
  for _ = 1 to 2 do
    ignore (check_sok "cold" (Pe.apply_pulse ~warm_start:false device ~qfg:!q pulse));
    q := !q +. 1e-19 (* distinct keys: exact replay must not mask the policy *)
  done;
  Alcotest.(check int) "no build before promotion" 0
    (Tel.counter_total "surrogate/build");
  Alcotest.(check int) "both pre-promotion pulses fell back" 2
    (Tel.counter_total "surrogate/fallback");
  ignore (check_sok "promoted" (Pe.apply_pulse ~warm_start:false device ~qfg:!q pulse));
  Alcotest.(check int) "promotion built one table" 1
    (Tel.counter_total "surrogate/build");
  Alcotest.(check int) "and served the promoting pulse" 1
    (Tel.counter_total "surrogate/hit");
  check_true "build span recorded"
    (match Tel.span_stat "surrogate/build" with
     | Some s -> s.Tel.calls = 1 && s.Tel.total_s >= 0.
     | None ->
       (* the span is keyed under the enclosing pulse span *)
       List.exists
         (fun (k, _) ->
            String.length k >= 15
            && String.sub k (String.length k - 15) 15 = "surrogate/build")
         (Tel.snapshot ()).Tel.spans)

let test_opt_out_is_silent () =
  with_build_after 0 @@ fun () ->
  with_counters @@ fun () ->
  let device = mk ~gcr:0.6 ~xto_nm:5. in
  let pulse = { Pe.vgs = 15.; duration = 100e-6 } in
  for _ = 1 to 3 do
    ignore
      (check_sok "opt-out"
         (Pe.apply_pulse ~warm_start:false ~surrogate:false device ~qfg:0. pulse))
  done;
  Alcotest.(check int) "no hits" 0 (Tel.counter_total "surrogate/hit");
  Alcotest.(check int) "no fallbacks" 0 (Tel.counter_total "surrogate/fallback");
  Alcotest.(check int) "no builds" 0 (Tel.counter_total "surrogate/build")

(* ---------- golden pins (pattern from test_figures.ml) ---------- *)

(* Fig 5 saturation time through the surrogate. The exact dense-output pin
   is 2.97320829404940892e-04 s (test_figures.ml, 1e-9 rel); the surrogate
   reads the event time off the tabulated trajectory and lands at
   2.97320727771599610e-04 s — 3.4e-7 relative away, well inside the
   table's certified bound. Pinned: 1e-9 against its own value (regression
   lock) and 1e-5 against the exact pin (accuracy contract). *)
let test_fig5_tsat_pin () =
  let tab = build_exn paper ~vgs:15. in
  match Ps.saturation_time tab ~qfg:0. with
  | None -> Alcotest.fail "surrogate tsat missing"
  | Some ts ->
    let pin_sur = 2.97320727771599610e-04 in
    let pin_exact = 2.97320829404940892e-04 in
    check_true
      (Printf.sprintf "surrogate tsat %.17e within 1e-9 of pin %.17e" ts pin_sur)
      (abs_float (ts -. pin_sur) /. pin_sur <= 1e-9);
    check_true
      (Printf.sprintf "surrogate tsat %.17e within 1e-5 of exact pin" ts)
      (abs_float (ts -. pin_exact) /. pin_exact <= 1e-5)

(* Fig 5 time-to-threshold-shift (2 V target). Exact event localization
   measures 9.94552234596851787e-09 s; the surrogate's trajectory-time
   difference lands at 9.94546668465619562e-09 s (5.6e-6 relative apart —
   the event charge sits between accepted steps, so agreement is bounded by
   the table resolution, not the certified charge bound). Pins: each side
   1e-9 against its own value, 1e-4 cross-tolerance. *)
let test_fig5_ttts_pin () =
  let pin_exact = 9.94552234596851787e-09 in
  let pin_sur = 9.94546668465619562e-09 in
  (match T.time_to_threshold_shift paper ~vgs:15. ~dvt:2. ~max_time:1. with
   | Ok (Some tt) ->
     check_true
       (Printf.sprintf "exact ttts %.17e within 1e-9 of pin" tt)
       (abs_float (tt -. pin_exact) /. pin_exact <= 1e-9)
   | _ -> Alcotest.fail "exact ttts failed");
  let tab = build_exn paper ~vgs:15. in
  let q2 = F.qfg_for_threshold_shift paper ~dvt:2. in
  match Ps.time_to_charge tab ~qfg0:0. ~qfg1:q2 with
  | None -> Alcotest.fail "surrogate ttts out of range"
  | Some tt ->
    check_true
      (Printf.sprintf "surrogate ttts %.17e within 1e-9 of pin" tt)
      (abs_float (tt -. pin_sur) /. pin_sur <= 1e-9);
    check_true "surrogate ttts within 1e-4 of the exact pin"
      (abs_float (tt -. pin_exact) /. pin_exact <= 1e-4)

(* Fig 6–9 program/erase windows at the box corners, surrogate on vs off,
   after the paper's default 1 ms pulses. Exact (surrogate-off) values are
   pinned at 1e-9 relative; the surrogate-on window must agree within
   1e-3 V absolute — generous against the certified charge bound (3.6e-3
   relative of a ~2e-17 C swing is ~0.08 V through CFC, but the operative
   divergence is far smaller: saturated corners land on the event charge,
   and the measured disagreement across corners is ≤ 5e-7 V at 5 nm and
   ≤ 5e-6 V relative at 9 nm). *)
let corner_window_pins =
  [ (0.45, 5., 7.76693787492818188e+00);
    (0.60, 5., 1.33252034061961773e+01);
    (0.45, 9., -1.00297753210103757e-02);
    (0.60, 9., 2.00207168207523756e+00);
  ]

let window ~surrogate dev =
  let p =
    check_sok "program" (Pe.program ~surrogate ~warm_start:false dev ~qfg:0.)
  in
  let e =
    check_sok "erase"
      (Pe.erase ~surrogate ~warm_start:false dev ~qfg:p.Pe.qfg_after)
  in
  p.Pe.dvt_after -. e.Pe.dvt_after

let test_fig6_9_window_pins () =
  with_build_after 0 @@ fun () ->
  List.iter
    (fun (gcr, xto_nm, pin) ->
       let dev = mk ~gcr ~xto_nm in
       let off = window ~surrogate:false dev in
       let on = window ~surrogate:true dev in
       check_true
         (Printf.sprintf "exact window gcr=%g xto=%g: %.17e vs pin %.17e" gcr
            xto_nm off pin)
         (abs_float (off -. pin) /. abs_float pin <= 1e-9);
       check_true
         (Printf.sprintf
            "surrogate window gcr=%g xto=%g within 1e-3 V of exact (%.3e)" gcr
            xto_nm (abs_float (on -. off)))
         (abs_float (on -. off) <= 1e-3))
    corner_window_pins

(* ---------- composition with warm start, faults, parallelism ---------- *)

let test_fault_plan_bypasses_surrogate () =
  with_build_after 0 @@ fun () ->
  with_counters @@ fun () ->
  let device = mk ~gcr:0.6 ~xto_nm:5. in
  let pulse = { Pe.vgs = 15.; duration = 100e-6 } in
  (* prime a table so a hit *would* be served without the plan *)
  ignore (check_sok "prime" (Pe.apply_pulse device ~qfg:0. pulse));
  check_true "primed" (Tel.counter_total "surrogate/hit" > 0);
  Tel.reset ();
  (* a plan with limit 0 never fires a fault, so the exact path runs clean —
     but its presence alone must force the exact solver *)
  let faulted =
    Fault.with_faults ~limit:0 (Fault.Nan_every 1_000_000) (fun () ->
        check_sok "under plan" (Pe.apply_pulse device ~qfg:0. pulse))
  in
  Alcotest.(check int) "no surrogate hit under a fault plan" 0
    (Tel.counter_total "surrogate/hit");
  Alcotest.(check int) "not even a fallback probe" 0
    (Tel.counter_total "surrogate/fallback");
  check_true "exact solve actually ran" (Tel.counter_total "ode/rhs_eval" > 0);
  let clean =
    check_sok "clean exact"
      (Pe.apply_pulse ~warm_start:false ~surrogate:false device ~qfg:0. pulse)
  in
  assert_bit_identical "plan-bypassed pulse is the exact answer" faulted clean

let test_jobs_invariance () =
  (* a surrogate-served workload split across domains: each element builds
     its own device and runs a short train; the per-domain caches and the
     promotion policy must keep results bit-identical for any job count *)
  let configs =
    Array.init 8 (fun i ->
        let gcr = 0.45 +. (0.15 *. float_of_int (i mod 4) /. 3.) in
        let xto_nm = if i < 4 then 5. else 6. in
        (gcr, xto_nm))
  in
  let run_one (gcr, xto_nm) =
    let dev = mk ~gcr ~xto_nm in
    let q = ref 0. in
    let out = ref [] in
    for k = 1 to 6 do
      let vgs = if k mod 2 = 1 then 15. else -15. in
      match Pe.apply_pulse dev ~qfg:!q { Pe.vgs = vgs; duration = 100e-6 } with
      | Ok o ->
        q := o.Pe.qfg_after;
        out := bits o.Pe.qfg_after :: !out
      | Error e ->
        Alcotest.failf "train failed: %s"
          (Gnrflash_resilience.Solver_error.to_string e)
    done;
    !out
  in
  let results jobs = Sweep.map ~jobs ~serial_cutoff:0. run_one configs in
  let r1 = results 1 in
  List.iter
    (fun jobs ->
       let rj = results jobs in
       check_true
         (Printf.sprintf "jobs=%d bit-identical to serial" jobs)
         (rj = r1))
    [ 2; 4 ]

let () =
  Alcotest.run "pulse_surrogate"
    [
      ( "pulse_surrogate",
        [
          case "build basics" test_build_basics;
          case "query semantics" test_query_semantics;
          prop_certified_bound;
          prop_monotone_in_duration;
          case "out-of-box bit identity" test_out_of_box_bit_identity;
          case "out-of-range charge falls back" test_out_of_range_charge_falls_back;
          case "box edges inside" test_box_edges_inside;
          case "charge-range edges served" test_charge_range_edges_served;
          case "promotion policy" test_promotion_policy;
          case "opt-out is silent" test_opt_out_is_silent;
          case "fig5 tsat pin (surrogate)" test_fig5_tsat_pin;
          case "fig5 ttts pin (surrogate vs exact)" test_fig5_ttts_pin;
          case "fig6-9 corner window pins" test_fig6_9_window_pins;
          case "fault plan bypasses surrogate" test_fault_plan_bypasses_surrogate;
          case "jobs invariance" test_jobs_invariance;
        ] );
    ]
