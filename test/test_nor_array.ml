module N = Gnrflash_memory.Nor_array
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let fresh () = N.make F.paper_default ~cells:8

let test_make () =
  let t = fresh () in
  Alcotest.(check int) "cells" 8 (N.length t);
  Alcotest.check_raises "empty" (Invalid_argument "Nor_array.make: cells < 1") (fun () ->
      ignore (N.make F.paper_default ~cells:0))

let test_fresh_reads_ones () =
  let t = fresh () in
  for i = 0 to 7 do
    Alcotest.(check int) "erased" 1 (check_ok "read" (N.read_bit t ~index:i))
  done

let test_program_and_random_access_read () =
  let t = fresh () in
  let t = check_ok "program" (N.program_bit t ~index:3) in
  Alcotest.(check int) "programmed cell" 0 (check_ok "read" (N.read_bit t ~index:3));
  Alcotest.(check int) "neighbor untouched" 1 (check_ok "read" (N.read_bit t ~index:2));
  Alcotest.(check int) "programs counted" 1 (N.programs t)

let test_che_injection_self_limits () =
  let t = fresh () in
  let t = check_ok "p1" (N.program_bit t ~index:0) in
  let q1 = (N.cell t 0).Gnrflash_memory.Cell.qfg in
  let t = check_ok "p2" (N.program_bit t ~index:0) in
  let q2 = (N.cell t 0).Gnrflash_memory.Cell.qfg in
  check_true "first pulse stores charge" (q1 < 0.);
  check_true "bounded by saturation" (q2 >= q1 -. abs_float q1);
  (* the stored threshold stays physical *)
  let dvt = Gnrflash_memory.Cell.dvt (N.cell t 0) in
  check_in "dvt physical" ~lo:0. ~hi:10. dvt

let test_supply_charge_accounting () =
  let t = fresh () in
  let t = check_ok "program" (N.program_bit t ~index:1) in
  (* 0.5 mA for 1 us = 5e-10 C per program *)
  check_close ~tol:1e-9 "drain charge" 5e-10 (N.total_supply_charge t)

let test_erase_all () =
  let t = fresh () in
  let t = check_ok "program" (N.program_bit t ~index:5) in
  let t = check_ok "erase" (N.erase_all t) in
  for i = 0 to 7 do
    Alcotest.(check int) "erased" 1 (check_ok "read" (N.read_bit t ~index:i))
  done

let test_bad_index () =
  check_error "program oob" (N.program_bit (fresh ()) ~index:99);
  check_error "read oob" (N.read_bit (fresh ()) ~index:(-1))

let test_programming_current_cap () =
  let t = fresh () in
  (* programming a whole 4 kB page at once would need amps: the NOR
     parallelism limit of paper Section II *)
  let i_page = N.programming_current t ~simultaneous:32768 in
  check_true "page current in amps" (i_page > 10.);
  check_close "per-cell current" 0.5e-3 (N.programming_current t ~simultaneous:1)

let () =
  Alcotest.run "nor_array"
    [
      ( "nor_array",
        [
          case "make" test_make;
          case "fresh reads ones" test_fresh_reads_ones;
          case "program + random access" test_program_and_random_access_read;
          case "CHE self-limiting" test_che_injection_self_limits;
          case "supply charge accounting" test_supply_charge_accounting;
          case "erase all" test_erase_all;
          case "index errors" test_bad_index;
          case "programming current cap" test_programming_current_cap;
        ] );
    ]
