module C = Gnrflash_memory.Command_fsm
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

(* Small geometry keeps the physics cheap; every pulse still goes through
   the surrogate-backed Program_erase path. *)
let small =
  { C.default_config with
    C.sectors = 2;
    words_per_sector = 4;
    word_bits = 5;
    write_buffer_words = 4;
    max_pulses = 4;
  }

let mk () = C.create ~config:small F.paper_default

let ok msg r = check_ok_with C.error_to_string msg r

let u1 t = 0x555 mod C.words t
let u2 t = 0x2AA mod C.words t

let unlock t =
  ok "unlock1" (C.write t ~addr:(u1 t) ~data:0xAA);
  ok "unlock2" (C.write t ~addr:(u2 t) ~data:0x55)

let issue_program t ~addr ~data =
  unlock t;
  ok "program setup" (C.write t ~addr:(u1 t) ~data:0xA0);
  ok "program data" (C.write t ~addr ~data)

let program t ~addr ~data =
  issue_program t ~addr ~data;
  C.wait_ready t

let issue_erase t ~sector =
  unlock t;
  ok "erase setup" (C.write t ~addr:(u1 t) ~data:0x80);
  unlock t;
  ok "erase confirm"
    (C.write t ~addr:(sector * small.C.words_per_sector) ~data:0x30)

let erase t ~sector =
  issue_erase t ~sector;
  C.wait_ready t

let word_at t ~addr =
  match C.read t ~addr with
  | C.Data bits -> bits
  | C.Status _ -> Alcotest.fail "expected data, device still busy"

let as_int bits = Array.to_list bits |> List.mapi (fun i b -> b lsl i) |> List.fold_left ( lor ) 0

let all_ones = (1 lsl small.C.word_bits) - 1

(* ---- unit tests ------------------------------------------------------ *)

let test_fresh_device () =
  let t = mk () in
  check_true "ready" (C.ready t);
  Alcotest.(check string) "idle" "idle" (C.state_name t);
  for addr = 0 to C.words t - 1 do
    Alcotest.(check int) "erased word" all_ones (as_int (C.sense_word t ~addr))
  done

let test_word_program_roundtrip () =
  let t = mk () in
  program t ~addr:1 ~data:0b00101;
  Alcotest.(check int) "programmed word reads back" 0b00101
    (as_int (word_at t ~addr:1));
  Alcotest.(check int) "neighbor untouched" all_ones (as_int (word_at t ~addr:0));
  let s = C.stats t in
  Alcotest.(check int) "one program op" 1 s.C.programs;
  check_true "pulses spent" (s.C.program_pulses > 0);
  Alcotest.(check int) "no timeouts" 0 s.C.verify_timeouts

let test_busy_status_and_rejection () =
  let t = mk () in
  issue_program t ~addr:0 ~data:0;
  check_false "busy after launch" (C.ready t);
  (match C.read t ~addr:0 with
   | C.Status { dq7; _ } -> Alcotest.(check int) "dq7 complements data" 1 dq7
   | C.Data _ -> Alcotest.fail "read data while busy");
  (* DQ6 toggles between consecutive status reads *)
  (match (C.read t ~addr:0, C.read t ~addr:0) with
   | C.Status { dq6 = a; _ }, C.Status { dq6 = b; _ } ->
     check_true "dq6 toggles" (a <> b)
   | _ -> Alcotest.fail "read data while busy");
  (match C.write t ~addr:0 ~data:0xAA with
   | Error (C.Busy _) -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (C.error_to_string e)
   | Ok () -> Alcotest.fail "bus write accepted while busy");
  C.wait_ready t;
  Alcotest.(check int) "programmed" 0 (as_int (word_at t ~addr:0))

let test_model_time_advances () =
  let t = mk () in
  let t0 = C.now t in
  program t ~addr:0 ~data:0;
  let cfg = C.config t in
  (* at least 4 bus cycles plus one program pulse of busy time *)
  check_true "busy window charged"
    (C.now t -. t0
     >= (4. *. cfg.C.t_cycle) +. cfg.C.program_pulse.Gnrflash_device.Program_erase.duration)

let test_and_semantics_need_erase () =
  let t = mk () in
  program t ~addr:2 ~data:0;
  program t ~addr:2 ~data:all_ones;
  (* 1-bits cannot be raised by programming: the word stays 0 and the
     internal verify records the timeout — firmware must erase first *)
  Alcotest.(check int) "still programmed" 0 (as_int (word_at t ~addr:2));
  check_true "verify timeout recorded" ((C.stats t).C.verify_timeouts > 0);
  erase t ~sector:0;
  Alcotest.(check int) "erase restores" all_ones (as_int (word_at t ~addr:2));
  program t ~addr:2 ~data:all_ones;
  Alcotest.(check int) "program after erase works" all_ones
    (as_int (word_at t ~addr:2))

let test_sector_erase_is_local () =
  let t = mk () in
  program t ~addr:0 ~data:0;
  program t ~addr:4 ~data:0b01010;
  erase t ~sector:0;
  Alcotest.(check int) "sector 0 erased" all_ones (as_int (word_at t ~addr:0));
  Alcotest.(check int) "sector 1 untouched" 0b01010 (as_int (word_at t ~addr:4))

let test_chip_erase () =
  let t = mk () in
  program t ~addr:0 ~data:0;
  program t ~addr:5 ~data:0;
  unlock t;
  ok "erase setup" (C.write t ~addr:(u1 t) ~data:0x80);
  unlock t;
  ok "chip erase" (C.write t ~addr:(u1 t) ~data:0x10);
  C.wait_ready t;
  for addr = 0 to C.words t - 1 do
    Alcotest.(check int) "chip erased" all_ones (as_int (C.sense_word t ~addr))
  done;
  Alcotest.(check int) "counted" 1 (C.stats t).C.chip_erases

let test_write_buffer () =
  let t = mk () in
  let sa = 0 in
  unlock t;
  ok "buffer cmd" (C.write t ~addr:sa ~data:0x25);
  ok "count" (C.write t ~addr:sa ~data:2) (* N-1 = 2 -> 3 words *);
  ok "w0" (C.write t ~addr:0 ~data:0b00001);
  ok "w1" (C.write t ~addr:1 ~data:0b00010);
  ok "w2" (C.write t ~addr:2 ~data:0b00100);
  ok "confirm" (C.write t ~addr:sa ~data:0x29);
  C.wait_ready t;
  Alcotest.(check int) "w0" 0b00001 (as_int (word_at t ~addr:0));
  Alcotest.(check int) "w1" 0b00010 (as_int (word_at t ~addr:1));
  Alcotest.(check int) "w2" 0b00100 (as_int (word_at t ~addr:2));
  let s = C.stats t in
  Alcotest.(check int) "one buffered program op" 1 s.C.programs;
  Alcotest.(check int) "three words" 3 s.C.words_programmed

let test_buffer_overflow_and_crossing () =
  let t = mk () in
  unlock t;
  ok "buffer cmd" (C.write t ~addr:0 ~data:0x25);
  (match C.write t ~addr:0 ~data:(small.C.write_buffer_words + 3) with
   | Error (C.Buffer_overflow { capacity; _ }) ->
     Alcotest.(check int) "capacity reported" small.C.write_buffer_words capacity
   | Error e -> Alcotest.failf "wrong error: %s" (C.error_to_string e)
   | Ok () -> Alcotest.fail "oversized buffer accepted");
  unlock t;
  ok "buffer cmd" (C.write t ~addr:0 ~data:0x25);
  ok "count" (C.write t ~addr:0 ~data:1);
  (match C.write t ~addr:small.C.words_per_sector ~data:0 with
   | Error (C.Buffer_sector_crossing { sector = 0; _ }) -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (C.error_to_string e)
   | Ok () -> Alcotest.fail "cross-sector load accepted");
  (* the device recovers: a fresh valid program still lands *)
  program t ~addr:1 ~data:0;
  Alcotest.(check int) "recovered" 0 (as_int (word_at t ~addr:1))

let test_suspend_resume () =
  let t = mk () in
  program t ~addr:0 ~data:0;
  issue_erase t ~sector:0;
  check_false "erasing" (C.ready t);
  ok "suspend" (C.write t ~addr:0 ~data:0xB0);
  check_true "ready while suspended" (C.ready t);
  Alcotest.(check string) "state" "erase_suspended" (C.state_name t);
  (* reads inside the suspended sector answer with DQ2 toggling *)
  (match (C.read t ~addr:0, C.read t ~addr:0) with
   | C.Status { dq2 = a; dq6 = a6; _ }, C.Status { dq2 = b; dq6 = b6; _ } ->
     check_true "dq2 toggles" (a <> b);
     check_true "dq6 frozen during suspend" (a6 = b6)
   | _ -> Alcotest.fail "suspended sector served data");
  (* other sectors serve data as usual *)
  (match C.read t ~addr:small.C.words_per_sector with
   | C.Data _ -> ()
   | C.Status _ -> Alcotest.fail "other sector blocked during suspend");
  ok "resume" (C.write t ~addr:0 ~data:0x30);
  check_false "busy again" (C.ready t);
  C.wait_ready t;
  Alcotest.(check int) "erase completed" all_ones (as_int (word_at t ~addr:0));
  let s = C.stats t in
  Alcotest.(check int) "suspend counted" 1 s.C.suspends;
  Alcotest.(check int) "resume counted" 1 s.C.resumes

let test_program_other_sector_during_suspend () =
  let t = mk () in
  program t ~addr:0 ~data:0;
  issue_erase t ~sector:0;
  ok "suspend" (C.write t ~addr:0 ~data:0xB0);
  (* programming inside the suspended sector is rejected... *)
  unlock t;
  ok "program setup" (C.write t ~addr:(u1 t) ~data:0xA0);
  (match C.write t ~addr:1 ~data:0 with
   | Error (C.Bad_sequence { state = "erase_suspended"; _ }) -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (C.error_to_string e)
   | Ok () -> Alcotest.fail "program into suspended sector accepted");
  (* ...but another sector accepts a nested program *)
  issue_program t ~addr:small.C.words_per_sector ~data:0;
  C.wait_ready t;
  Alcotest.(check int) "nested program landed" 0
    (as_int (C.sense_word t ~addr:small.C.words_per_sector));
  ok "resume" (C.write t ~addr:0 ~data:0x30);
  C.wait_ready t;
  Alcotest.(check int) "erase still completed" all_ones
    (as_int (word_at t ~addr:0))

let test_suspend_resume_errors () =
  let t = mk () in
  (match C.write t ~addr:0 ~data:0xB0 with
   | Error C.Not_erasing -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (C.error_to_string e)
   | Ok () -> Alcotest.fail "suspend accepted while idle");
  (* a program cannot be suspended *)
  issue_program t ~addr:0 ~data:0;
  if not (C.ready t) then (
    match C.write t ~addr:0 ~data:0xB0 with
    | Error C.Not_erasing -> ()
    | Error e -> Alcotest.failf "wrong error: %s" (C.error_to_string e)
    | Ok () -> Alcotest.fail "suspend accepted during program");
  C.wait_ready t

let test_reset_and_bad_sequences () =
  let t = mk () in
  unlock t;
  ok "reset mid-sequence" (C.write t ~addr:0 ~data:0xF0);
  Alcotest.(check string) "back to idle" "idle" (C.state_name t);
  (match C.write t ~addr:3 ~data:0x90 with
   | Error (C.Bad_sequence { state = "idle"; addr = 3; data = 0x90 }) -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (C.error_to_string e)
   | Ok () -> Alcotest.fail "stray command accepted");
  (* wrong second unlock cycle *)
  ok "unlock1" (C.write t ~addr:(u1 t) ~data:0xAA);
  (match C.write t ~addr:(u1 t) ~data:0x99 with
   | Error (C.Bad_sequence _) -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (C.error_to_string e)
   | Ok () -> Alcotest.fail "bad unlock accepted");
  check_true "rejections counted" ((C.stats t).C.bad_sequences >= 2);
  (* the machine still works afterwards *)
  program t ~addr:0 ~data:0b00011;
  Alcotest.(check int) "recovered" 0b00011 (as_int (word_at t ~addr:0))

let test_poll_ready () =
  let t = mk () in
  issue_program t ~addr:0 ~data:0;
  let cfg = C.config t in
  let polls =
    C.poll_ready t
      ~interval:(cfg.C.program_pulse.Gnrflash_device.Program_erase.duration /. 8.)
  in
  check_true "polled at least once" (polls >= 1);
  check_true "ready after polling" (C.ready t);
  Alcotest.(check int) "programmed" 0 (as_int (word_at t ~addr:0))

let test_digest_determinism () =
  let script t =
    program t ~addr:0 ~data:0b00110;
    erase t ~sector:0;
    program t ~addr:5 ~data:0b10001
  in
  let a = mk () and b = mk () in
  script a;
  script b;
  Alcotest.(check int) "same script, same digest" (C.state_digest a)
    (C.state_digest b);
  let c = mk () in
  program c ~addr:0 ~data:0b00110;
  check_true "different history, different digest"
    (C.state_digest c <> C.state_digest a)

(* Disturb feedback: with [disturb = Some _] the gate-disturb events that
   were previously pure accounting shift the stored charge of the erased
   cells in the sector's unselected words. The shift must track the event
   count (no pulses -> no shift), stay deterministic, and leave the
   counted statistics identical to the accounting-only run. *)
let test_disturb_feedback () =
  let dcfg =
    Gnrflash_device.Disturb.half_select ~vgs_program:15. ~pulse_width:10e-6
  in
  let run disturb ~data =
    let t = C.create ~config:{ small with C.disturb } F.paper_default in
    program t ~addr:0 ~data;
    t
  in
  let off = run None ~data:0 and on_ = run (Some dcfg) ~data:0 in
  check_true "events were counted" ((C.stats on_).C.disturb_events > 0);
  Alcotest.(check int) "feedback does not change the event count"
    (C.stats off).C.disturb_events (C.stats on_).C.disturb_events;
  check_true "feedback shifts the victim cells"
    (C.state_digest on_ <> C.state_digest off);
  Alcotest.(check int) "feedback is deterministic" (C.state_digest on_)
    (C.state_digest (run (Some dcfg) ~data:0));
  (* programming all-ones over erased cells needs zero pulses, so there
     are no disturb events and the feedback path must not fire at all *)
  let off1 = run None ~data:all_ones and on1 = run (Some dcfg) ~data:all_ones in
  Alcotest.(check int) "no pulses, no events" 0 (C.stats on1).C.disturb_events;
  Alcotest.(check int) "no events, no feedback" (C.state_digest off1)
    (C.state_digest on1)

(* ---- properties ------------------------------------------------------ *)

let prop_program_read_roundtrip =
  prop "programmed word always reads back" ~count:25
    QCheck2.Gen.(pair (int_range 0 7) (int_range 0 31))
    (fun (addr, data) ->
       let t = mk () in
       program t ~addr ~data;
       as_int (word_at t ~addr) = data)

let prop_busy_until_wait =
  prop "reads answer status until the busy window closes" ~count:25
    QCheck2.Gen.(pair (int_range 0 7) (int_range 0 30))
    (fun (addr, data) ->
       let t = mk () in
       issue_program t ~addr ~data;
       (* data < 31 guarantees at least one 0 bit, hence a busy window *)
       let was_busy = not (C.ready t) in
       let status_while_busy =
         match C.read t ~addr with C.Status _ -> true | C.Data _ -> false
       in
       C.wait_ready t;
       let data_after =
         match C.read t ~addr with C.Data _ -> true | C.Status _ -> false
       in
       was_busy && status_while_busy && data_after)

let prop_suspend_resume_transparent =
  prop "suspended erase converges to the uninterrupted result" ~count:15
    QCheck2.Gen.(int_range 0 31)
    (fun data ->
       let straight = mk () and suspended = mk () in
       program straight ~addr:0 ~data;
       erase straight ~sector:0;
       program suspended ~addr:0 ~data;
       issue_erase suspended ~sector:0;
       (match C.write suspended ~addr:0 ~data:0xB0 with
        | Ok () ->
          ignore (C.read suspended ~addr:0);
          (match C.write suspended ~addr:0 ~data:0x30 with
           | Ok () -> ()
           | Error _ -> ())
        | Error C.Not_erasing -> () (* zero-length busy window: already done *)
        | Error _ -> ());
       C.wait_ready suspended;
       let sense t =
         List.init (C.words t) (fun addr -> as_int (C.sense_word t ~addr))
       in
       sense straight = sense suspended)

let prop_garbage_cycle_rejected_then_recovers =
  prop "arbitrary first cycles are rejected and leave the machine usable"
    ~count:40
    QCheck2.Gen.(pair (int_range 0 7) (int_range 0 255))
    (fun (addr, data) ->
       let t = mk () in
       let garbage_rejected =
         if addr = u1 t && data = 0xAA then true (* legitimate unlock start *)
         else
           match C.write t ~addr ~data with
           | Ok () -> data = 0xF0 (* reset is always accepted *)
           | Error (C.Bad_sequence _) | Error C.Not_erasing -> true
           | Error _ -> false
       in
       ok "reset" (C.write t ~addr:0 ~data:0xF0);
       program t ~addr:0 ~data:0b00111;
       garbage_rejected && as_int (word_at t ~addr:0) = 0b00111)

let () =
  Alcotest.run "command_fsm"
    [
      ( "command_fsm",
        [
          case "fresh device" test_fresh_device;
          case "word program roundtrip" test_word_program_roundtrip;
          case "busy status and rejection" test_busy_status_and_rejection;
          case "model time advances" test_model_time_advances;
          case "AND semantics need erase" test_and_semantics_need_erase;
          case "sector erase is local" test_sector_erase_is_local;
          case "chip erase" test_chip_erase;
          case "write buffer" test_write_buffer;
          case "buffer overflow and crossing" test_buffer_overflow_and_crossing;
          case "suspend and resume" test_suspend_resume;
          case "program during suspend" test_program_other_sector_during_suspend;
          case "suspend/resume errors" test_suspend_resume_errors;
          case "reset and bad sequences" test_reset_and_bad_sequences;
          case "poll ready" test_poll_ready;
          case "digest determinism" test_digest_determinism;
          case "disturb feedback" test_disturb_feedback;
          prop_program_read_roundtrip;
          prop_busy_until_wait;
          prop_suspend_resume_transparent;
          prop_garbage_cycle_rejected_then_recovers;
        ] );
    ]
