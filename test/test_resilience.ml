module Err = Gnrflash_resilience.Solver_error
module Budget = Gnrflash_resilience.Budget
module Fallback = Gnrflash_resilience.Fallback
module Fault = Gnrflash_resilience.Fault
module R = Gnrflash_numerics.Roots
module Sweep = Gnrflash_parallel.Sweep
module Tel = Gnrflash_telemetry.Telemetry
open Gnrflash_testing.Testing

let with_tel f =
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:(fun () -> Tel.disable (); Tel.reset ()) f

(* ---- Solver_error ---- *)

let test_to_string_shape () =
  let e = Err.make ~solver:"Roots.brent" (Err.Invalid_input "empty interval") in
  let s = Err.to_string e in
  check_true "solver-prefixed message"
    (String.length s > String.length "Roots.brent: "
     && String.sub s 0 13 = "Roots.brent: ")

let test_labels () =
  let l kind = Err.kind_label kind in
  Alcotest.(check string) "invalid_input" "invalid_input"
    (l (Err.Invalid_input "x"));
  Alcotest.(check string) "no_convergence" "no_convergence"
    (l (Err.No_convergence { iterations = 3; best = 0.; f_best = 1. }));
  Alcotest.(check string) "budget_exhausted" "budget_exhausted"
    (l (Err.Budget_exhausted { evals = 1; elapsed_s = 0. }));
  Alcotest.(check string) "fault_injected" "fault_injected"
    (l (Err.Fault_injected { eval = 0 }));
  Alcotest.(check string) "worker_failed" "worker_failed"
    (l (Err.Worker_failed { shard = 1; detail = "exited with code 7" }));
  let e = Err.make ~solver:"X" (Err.Step_underflow { t = 0.; h = 1e-301 }) in
  Alcotest.(check string) "label of t" "step_underflow" (Err.label e)

let test_protect_catches_solver_failure () =
  let e =
    check_serr "protect"
      (Err.protect (fun () ->
           Err.fail ~solver:"X" (Err.Invalid_input "boom")))
  in
  Alcotest.(check string) "solver carried" "X" e.Err.solver

let test_protect_passes_other_exceptions () =
  Alcotest.check_raises "foreign exception flows through" Not_found (fun () ->
      ignore (Err.protect (fun () -> raise Not_found)))

(* ---- Budget ---- *)

let test_budget_eval_cap () =
  let b = Budget.make ~max_evals:10 () in
  Budget.with_budget b (fun () ->
      Budget.note_evals 5;
      check_false "under cap" (Budget.exhausted b);
      (match Budget.check ~solver:"t" () with
       | Ok () -> ()
       | Error _ -> Alcotest.fail "must pass under cap");
      Budget.note_evals 6;
      check_true "over cap" (Budget.exhausted b);
      match Budget.check ~solver:"t" () with
      | Ok () -> Alcotest.fail "must fail over cap"
      | Error e ->
        Alcotest.(check string) "typed" "budget_exhausted" (Err.label e);
        Alcotest.(check string) "solver recorded" "t" e.Err.solver);
  check_true "slot restored" (Budget.current () = None);
  Alcotest.(check int) "evals counted" 11 (Budget.evals b)

let test_budget_no_budget_passes () =
  check_true "no ambient budget" (Budget.current () = None);
  match Budget.check ~solver:"t" () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "check must pass with no budget installed"

let test_budget_nesting () =
  let outer = Budget.make ~max_evals:100 () in
  let inner = Budget.make ~max_evals:5 () in
  Budget.with_budget outer (fun () ->
      Budget.note_evals 1;
      Budget.with_budget inner (fun () -> Budget.note_evals 2);
      Budget.note_evals 3);
  Alcotest.(check int) "outer charged outside the nest" 4 (Budget.evals outer);
  Alcotest.(check int) "inner charged inside the nest" 2 (Budget.evals inner)

let test_budget_expired_wall_clock () =
  (* a deadline already in the past is exhausted deterministically *)
  let b = Budget.make ~wall_ms:(-10.) () in
  check_true "past deadline" (Budget.exhausted b);
  Budget.with_budget b (fun () ->
      match Budget.check ~solver:"t" () with
      | Ok () -> Alcotest.fail "expired deadline must fail"
      | Error e ->
        Alcotest.(check string) "typed" "budget_exhausted" (Err.label e))

(* ---- Fallback ---- *)

let no_conv = Err.No_convergence { iterations = 1; best = 0.; f_best = 1. }

let test_fallback_first_rung_ok () =
  with_tel @@ fun () ->
  let r =
    Fallback.run
      [
        Fallback.rung "a" (fun () -> Ok 1);
        Fallback.rung "b" (fun () -> Alcotest.fail "b must not run");
      ]
  in
  Alcotest.(check int) "first rung wins" 1 (check_sok "ladder" r);
  Alcotest.(check int) "no fallback recorded" 0
    (Tel.counter_total "resilience/fallback_used");
  Alcotest.(check int) "one attempt" 1
    (Tel.counter_total "resilience/rung_attempt")

let test_fallback_escalates () =
  with_tel @@ fun () ->
  let r =
    Fallback.run
      [
        (* raising Solver_failure inside a rung is equivalent to Error *)
        Fallback.rung "a" (fun () -> Err.fail ~solver:"X" no_conv);
        Fallback.rung "b" (fun () -> Ok 2);
      ]
  in
  Alcotest.(check int) "second rung rescues" 2 (check_sok "ladder" r);
  Alcotest.(check int) "fallback recorded" 1
    (Tel.counter_total "resilience/fallback_used");
  Alcotest.(check int) "rescuing rung named" 1
    (Tel.counter_total "resilience/fallback_rung/b");
  Alcotest.(check int) "one failure" 1
    (Tel.counter_total "resilience/rung_failed");
  Alcotest.(check int) "two attempts" 2
    (Tel.counter_total "resilience/rung_attempt")

let test_fallback_all_fail_returns_last () =
  let e =
    check_serr "ladder"
      (Fallback.run
         [
           Fallback.rung "a" (fun () -> Error (Err.make ~solver:"A" no_conv));
           Fallback.rung "b" (fun () ->
               Error (Err.make ~solver:"B" (Err.Zero_derivative { x = 0. })));
         ])
  in
  Alcotest.(check string) "last rung's error" "B" e.Err.solver;
  Alcotest.(check string) "last rung's kind" "zero_derivative" (Err.label e)

let test_fallback_stops_on_budget_exhausted () =
  with_tel @@ fun () ->
  let e =
    check_serr "ladder"
      (Fallback.run
         [
           Fallback.rung "a" (fun () ->
               Error
                 (Err.make ~solver:"A"
                    (Err.Budget_exhausted { evals = 1; elapsed_s = 0. })));
           Fallback.rung "b" (fun () -> Alcotest.fail "must not escalate");
         ])
  in
  Alcotest.(check string) "budget error surfaces" "budget_exhausted"
    (Err.label e);
  Alcotest.(check int) "only the first rung tried" 1
    (Tel.counter_total "resilience/rung_attempt")

let test_fallback_empty_invalid () =
  Alcotest.check_raises "empty ladder"
    (Invalid_argument "Fallback.run: empty ladder") (fun () ->
      ignore (Fallback.run ([] : int Fallback.rung list)))

(* ---- Fault injection ---- *)

let outcomes ?seed ?limit mode n =
  Fault.with_faults ?seed ?limit mode (fun () ->
      let acc = ref [] in
      for _ = 1 to n do
        acc := Fault.outcome () :: !acc
      done;
      (List.rev !acc, Fault.injected ()))

let test_fault_deterministic () =
  let a, _ = outcomes ~seed:7 (Fault.Nan_every 3) 60 in
  let b, _ = outcomes ~seed:7 (Fault.Nan_every 3) 60 in
  let c, _ = outcomes ~seed:8 (Fault.Nan_every 3) 60 in
  check_true "same seed reproduces" (a = b);
  check_true "different seed differs" (a <> c);
  let fired = List.length (List.filter (fun o -> o <> `Pass) a) in
  check_in "~1/3 of evals fault" ~lo:8. ~hi:35. (float_of_int fired)

let test_fault_rate_one_fires_every_eval () =
  let a, fired = outcomes ~seed:1 (Fault.Nan_every 1) 10 in
  check_true "every eval faults" (List.for_all (fun o -> o = `Nan) a);
  Alcotest.(check int) "all counted" 10 fired

let test_fault_limit_caps () =
  let a, fired = outcomes ~seed:1 ~limit:2 (Fault.Nan_every 1) 10 in
  Alcotest.(check int) "exactly limit faults fired" 2 fired;
  check_true "first two fault, rest pass"
    (a = [ `Nan; `Nan; `Pass; `Pass; `Pass; `Pass; `Pass; `Pass; `Pass; `Pass ])

let test_fault_fail_mode_carries_eval_index () =
  let a, _ = outcomes ~seed:1 (Fault.Fail_every 1) 3 in
  check_true "eval indices in order" (a = [ `Fail 0; `Fail 1; `Fail 2 ])

let test_fault_none_without_plan () =
  check_true "no plan: pass" (Fault.outcome () = `Pass);
  Alcotest.(check int) "no plan: nothing injected" 0 (Fault.injected ())

let test_fault_brent_typed_error () =
  Fault.with_faults ~seed:0 (Fault.Fail_every 1) (fun () ->
      let e =
        check_serr "faulted brent"
          (R.brent (fun x -> (x *. x) -. 2.) 0. 2.)
      in
      Alcotest.(check string) "typed fault" "fault_injected" (Err.label e);
      Alcotest.(check string) "solver attributed" "Roots.brent" e.Err.solver)

let test_fault_telemetry_counter () =
  with_tel @@ fun () ->
  let _, fired = outcomes ~seed:5 (Fault.Nan_every 2) 40 in
  Alcotest.(check int) "counter matches fired faults" fired
    (Tel.counter_total "resilience/fault_injected")

(* ---- determinism of fault-injected ladders under parallelism ---- *)

(* One item of a sweep: a fault-injected root solve behind a two-rung
   ladder, seeded per item. The outcome (value, rung bookkeeping, faults
   fired) must depend only on the seed — never on how Sweep chunks the
   items over domains. *)
let solve_item base_seed i =
  Fault.with_faults ~seed:(base_seed + i) ~limit:1 (Fault.Nan_every 2)
    (fun () ->
      let attempt () = R.brent (fun x -> (x *. x) -. 2. +. float_of_int (i mod 3) *. 0.1) 0. 2. in
      let r =
        Fallback.run
          [ Fallback.rung "first" attempt; Fallback.rung "retry" attempt ]
      in
      let v = match r with Ok x -> (true, x) | Error e -> (false, float_of_int (String.length (Err.label e))) in
      (v, Fault.injected ()))

let prop_ladder_deterministic_across_jobs =
  prop "fault-injected ladders are reproducible across seeds and job counts"
    ~count:10
    QCheck2.Gen.(int_bound 10_000)
    (fun base_seed ->
      let n = 9 in
      let reference = Sweep.init ~jobs:1 n (solve_item base_seed) in
      List.for_all
        (fun jobs -> Sweep.init ~jobs n (solve_item base_seed) = reference)
        [ 1; 2; 4 ])

let () =
  Alcotest.run "resilience"
    [
      ( "solver_error",
        [
          case "to_string keeps solver prefix" test_to_string_shape;
          case "class labels" test_labels;
          case "protect catches Solver_failure" test_protect_catches_solver_failure;
          case "protect is not a catch-all" test_protect_passes_other_exceptions;
        ] );
      ( "budget",
        [
          case "eval cap" test_budget_eval_cap;
          case "no ambient budget passes" test_budget_no_budget_passes;
          case "nesting restores outer" test_budget_nesting;
          case "expired wall clock" test_budget_expired_wall_clock;
        ] );
      ( "fallback",
        [
          case "first rung wins" test_fallback_first_rung_ok;
          case "escalation rescues" test_fallback_escalates;
          case "all rungs fail" test_fallback_all_fail_returns_last;
          case "budget exhaustion stops escalation" test_fallback_stops_on_budget_exhausted;
          case "empty ladder rejected" test_fallback_empty_invalid;
        ] );
      ( "fault",
        [
          case "deterministic per seed" test_fault_deterministic;
          case "rate 1 fires every eval" test_fault_rate_one_fires_every_eval;
          case "limit caps fired faults" test_fault_limit_caps;
          case "fail mode carries eval index" test_fault_fail_mode_carries_eval_index;
          case "no plan means no faults" test_fault_none_without_plan;
          case "brent surfaces typed fault" test_fault_brent_typed_error;
          case "telemetry counts fired faults" test_fault_telemetry_counter;
          prop_ladder_deterministic_across_jobs;
        ] );
    ]
