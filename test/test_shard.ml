module Sweep = Gnrflash.Sweep
module Shard = Gnrflash.Shard
module Tel = Gnrflash_telemetry.Telemetry
module Err = Gnrflash_resilience.Solver_error
open Gnrflash_testing.Testing

let work x = (sin (x *. 1.7) *. exp (-.x *. x /. 50.)) +. (x /. 3.)

(* ---- bit-identity across the multi-process tier ---- *)

let prop_shards_identical =
  prop ~count:12 "init bit-identical across shards x jobs"
    QCheck2.Gen.(triple (int_range 2 40) (int_range 1 4) (int_range 1 2))
    (fun (n, shards, jobs) ->
       let serial = Array.init n (fun i -> work (float_of_int i)) in
       Sweep.init ~shards ~jobs n (fun i -> work (float_of_int i)) = serial)

(* Variation ensembles are the production workload: float-heavy samples
   with possible [infinity]/[nan] fields and typed failures. Compare per
   field at the Int64 bit level — [nan = nan] is false, and Marshal bytes
   of a recombined array differ from serial because cross-slice string
   sharing is lost in transit, so neither (=) nor byte comparison is the
   right oracle. *)
let sample_bits_equal (a : Gnrflash_device.Variation.sample)
    (b : Gnrflash_device.Variation.sample) =
  let module V = Gnrflash_device.Variation in
  let fb = Int64.bits_of_float in
  fb a.V.xto = fb b.V.xto
  && fb a.V.phi_b_ev = fb b.V.phi_b_ev
  && fb a.V.gcr = fb b.V.gcr
  && fb a.V.program_time = fb b.V.program_time
  && fb a.V.dvt_fixed_pulse = fb b.V.dvt_fixed_pulse
  && a.V.solve_failed = b.V.solve_failed
  && Option.map Err.to_string a.V.failure = Option.map Err.to_string b.V.failure

let ensembles_bits_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i s -> if not (sample_bits_equal s b.(i)) then ok := false) a;
  !ok

let prop_variation_ensemble_identical =
  prop ~count:3 "variation ensemble bit-identical across shards x jobs"
    QCheck2.Gen.(pair (int_range 4 10) (int_range 0 1000))
    (fun (n, seed) ->
       let module V = Gnrflash_device.Variation in
       let base = Gnrflash.Params.device () in
       let serial = V.sample_devices ~seed ~base ~n () in
       List.for_all
         (fun (shards, jobs) ->
            ensembles_bits_equal serial
              (V.sample_devices ~seed ~jobs ~shards ~base ~n ()))
         [ (1, 2); (2, 1); (2, 2); (4, 1) ])

let test_slice_boundaries () =
  (* indices must be global across slices, including when shards does not
     divide n: the balanced split gives the first [n mod k] slices one
     extra element *)
  List.iter
    (fun (n, shards) ->
       let out = Sweep.init ~shards n (fun i -> i * i) in
       check_true
         (Printf.sprintf "n=%d shards=%d" n shards)
         (out = Array.init n (fun i -> i * i)))
    [ (5, 2); (7, 3); (8, 4); (3, 4); (2, 2); (1, 4); (40, 16) ]

(* ---- worker-side introspection ---- *)

let test_worker_index () =
  check_true "parent is not a worker" (not (Shard.in_worker ()));
  let who = Sweep.init ~shards:2 6 (fun _ -> Shard.worker_index ()) in
  (* slice 0 (elements 0..2) runs in the parent, slice 1 (3..5) in the
     forked worker *)
  Array.iteri
    (fun i w ->
       check_true
         (Printf.sprintf "element %d attribution" i)
         (w = if i < 3 then None else Some 1))
    who;
  check_true "parent flag restored" (not (Shard.in_worker ()))

let test_shard_seed () =
  let a = Shard.shard_seed ~seed:7 ~shard:1 in
  check_true "deterministic" (a = Shard.shard_seed ~seed:7 ~shard:1);
  check_true "matches splitmix" (a = Sweep.splitmix ~seed:7 ~index:1);
  check_true "shard decorrelates" (a <> Shard.shard_seed ~seed:7 ~shard:2)

(* ---- telemetry crosses the process boundary ---- *)

let test_shard_telemetry_parity () =
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:(fun () -> Tel.disable (); Tel.reset ()) @@ fun () ->
  Tel.span "outer_shard" (fun () ->
      ignore
        (Sweep.init ~shards:3 10 (fun i ->
             Tel.count "hit";
             i)));
  (* worker snapshots ship home in the result frame and merge additively,
     keyed under the submitting context, exactly like an unsharded run *)
  Alcotest.(check int) "prefixed counter total" 10
    (Tel.counter "outer_shard/hit");
  Alcotest.(check int) "bare key unused" 0 (Tel.counter "hit")

(* ---- a dead worker is a typed error, not a hang ---- *)

let test_killed_worker_is_typed_error () =
  match
    Sweep.init ~shards:2 8 (fun i ->
        (* every forked worker dies before writing its result frame; the
           parent's own slice is unaffected *)
        if Shard.in_worker () then Unix._exit 7;
        i)
  with
  | _ -> Alcotest.fail "sweep with a dead worker returned"
  | exception Err.Solver_failure e ->
    Alcotest.(check string) "typed kind" "worker_failed" (Err.label e);
    (match e.Err.kind with
     | Err.Worker_failed { shard; detail } ->
       Alcotest.(check int) "failing shard" 1 shard;
       check_true "wait status in detail"
         (String.length detail > 0
          &&
          let has_sub hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
            go 0
          in
          has_sub detail "exited with code 7")
     | _ -> Alcotest.fail "expected Worker_failed kind")

(* A Solver_failure raised inside a worker crosses the pipe intact. *)
let test_solver_error_crosses_frame () =
  match
    Sweep.init ~shards:2 8 (fun i ->
        if Shard.in_worker () then
          Err.fail ~solver:"TestSolver" (Err.Invalid_input "from worker");
        i)
  with
  | _ -> Alcotest.fail "sweep with a failing worker returned"
  | exception Err.Solver_failure e ->
    Alcotest.(check string) "solver preserved" "TestSolver" e.Err.solver;
    Alcotest.(check string) "kind preserved" "invalid_input" (Err.label e)

let () =
  Alcotest.run "shard"
    [
      ( "shard",
        [
          case "slice boundaries" test_slice_boundaries;
          case "worker index" test_worker_index;
          case "shard seed" test_shard_seed;
          case "telemetry parity" test_shard_telemetry_parity;
          case "killed worker is a typed error" test_killed_worker_is_typed_error;
          case "solver error crosses the frame" test_solver_error_crosses_frame;
          prop_shards_identical;
          prop_variation_ensemble_identical;
        ] );
    ]
