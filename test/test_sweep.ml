module Sweep = Gnrflash.Sweep
module Tel = Gnrflash_telemetry.Telemetry
open Gnrflash_testing.Testing

(* a float-heavy mapped function: parity checks below compare with (=), so
   bit-identical means the parallel assembly really is order-preserving *)
let work x = (sin (x *. 1.7) *. exp (-.x *. x /. 50.)) +. (x /. 3.)

let prop_map_parity =
  prop "map ~jobs ~chunk bit-identical to Array.map"
    QCheck2.Gen.(
      triple
        (array_size (int_range 0 60) (float_range (-100.) 100.))
        (int_range 1 6) (int_range 1 9))
    (fun (xs, jobs, chunk) ->
       Sweep.map ~jobs ~chunk work xs = Array.map work xs)

let prop_mapi_parity =
  prop "mapi carries the right index to every element"
    QCheck2.Gen.(pair (int_range 0 50) (int_range 1 5))
    (fun (n, jobs) ->
       let xs = Array.init n (fun i -> float_of_int i) in
       Sweep.mapi ~jobs (fun i x -> (i, work x)) xs
       = Array.mapi (fun i x -> (i, work x)) xs)

let test_jobs_invariant () =
  (* same ensemble for every pool size, including chunk sizes that do not
     divide n evenly; ~serial_cutoff:0. forces the pool so this really
     checks the parallel assembly, not the auto-serial shortcut *)
  let xs = Array.init 41 (fun i -> (float_of_int i /. 7.) -. 2.) in
  let reference = Sweep.map ~jobs:1 work xs in
  List.iter
    (fun jobs ->
       List.iter
         (fun chunk ->
            check_true
              (Printf.sprintf "jobs=%d chunk=%d" jobs chunk)
              (Sweep.map ~jobs ~chunk ~serial_cutoff:0. work xs = reference))
         [ 1; 3; 41; 100 ])
    [ 1; 2; 4 ]

let test_grid_layout () =
  let outer = [| 1.; 2.; 3. |] and inner = [| 10.; 20. |] in
  let g = Sweep.grid ~jobs:2 (fun a b -> (a, b)) ~outer ~inner in
  Alcotest.(check int) "rows" 3 (Array.length g);
  Array.iteri
    (fun i row ->
       Alcotest.(check int) "cols" 2 (Array.length row);
       Array.iteri
         (fun j (a, b) ->
            check_close ~tol:0. "outer" outer.(i) a;
            check_close ~tol:0. "inner" inner.(j) b)
         row)
    g

let test_empty_and_edges () =
  check_true "empty map" (Sweep.map ~jobs:4 work [||] = [||]);
  check_true "init 0" (Sweep.init ~jobs:4 0 float_of_int = [||]);
  check_true "singleton" (Sweep.map ~jobs:4 work [| 2. |] = [| work 2. |]);
  check_true "map_list order"
    (Sweep.map_list ~jobs:3 (fun x -> -x) [ 1; 2; 3; 4; 5 ]
     = [ -1; -2; -3; -4; -5 ]);
  check_true "empty grid"
    (Sweep.grid ~jobs:2 (fun a b -> a +. b) ~outer:[||] ~inner:[| 1. |] = [||])

let test_validation () =
  Alcotest.check_raises "jobs 0" (Invalid_argument "Sweep: jobs < 1") (fun () ->
      ignore (Sweep.map ~jobs:0 work [| 1.; 2. |]));
  Alcotest.check_raises "chunk 0" (Invalid_argument "Sweep: chunk < 1") (fun () ->
      ignore (Sweep.map ~jobs:2 ~chunk:0 work [| 1.; 2. |]));
  Alcotest.check_raises "shards 0" (Invalid_argument "Sweep: shards < 1")
    (fun () -> ignore (Sweep.map ~shards:0 work [| 1.; 2. |]));
  Alcotest.check_raises "negative init" (Invalid_argument "Sweep.init: n < 0")
    (fun () -> ignore (Sweep.init ~jobs:2 (-1) float_of_int))

let test_exception_propagates () =
  Alcotest.check_raises "worker exception reaches caller"
    (Failure "boom at 17") (fun () ->
      ignore
        (Sweep.init ~jobs:3 ~chunk:2 ~serial_cutoff:0. 40 (fun i ->
             if i = 17 then failwith "boom at 17" else i)));
  (* ... and through the auto-serial path, including from the probe itself *)
  Alcotest.check_raises "auto-serial exception reaches caller"
    (Failure "boom at 3") (fun () ->
      ignore
        (Sweep.init ~jobs:3 8 (fun i ->
             if i = 3 then failwith "boom at 3" else i)));
  Alcotest.check_raises "probe exception reaches caller"
    (Failure "boom at 0") (fun () ->
      ignore (Sweep.init ~jobs:3 8 (fun _ -> failwith "boom at 0")))

let test_splitmix () =
  let a = Sweep.splitmix ~seed:1 ~index:0 in
  check_true "deterministic" (a = Sweep.splitmix ~seed:1 ~index:0);
  check_true "non-negative" (a >= 0);
  check_true "index decorrelates" (a <> Sweep.splitmix ~seed:1 ~index:1);
  check_true "seed decorrelates" (a <> Sweep.splitmix ~seed:2 ~index:0);
  (* no collisions over a small grid of streams *)
  let seen = Hashtbl.create 256 in
  for seed = 0 to 15 do
    for index = 0 to 15 do
      Hashtbl.replace seen (Sweep.splitmix ~seed ~index) ()
    done
  done;
  Alcotest.(check int) "256 distinct hashes" 256 (Hashtbl.length seen)

let test_default_jobs () =
  let saved = Sweep.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Sweep.set_default_jobs saved)
    (fun () ->
       Sweep.set_default_jobs 3;
       Alcotest.(check int) "set" 3 (Sweep.default_jobs ());
       Sweep.set_default_jobs 0;
       Alcotest.(check int) "clamped to 1" 1 (Sweep.default_jobs ());
       check_true "available >= 1" (Sweep.available_jobs () >= 1))

(* instrumented workload: counters + a span inside the mapped function, so
   the totals exercise the per-domain sinks and the pool-join merge *)
let counted_run ~jobs =
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:Tel.disable (fun () ->
      let out =
        Sweep.init ~jobs ~chunk:3 ~serial_cutoff:0. 32 (fun i ->
            Tel.count "sweep_test/evals";
            Tel.span "sweep_test/inner" (fun () -> work (float_of_int i)))
      in
      let evals = Tel.counter_total "sweep_test/evals" in
      let span_calls =
        match Tel.span_stat "sweep_test/inner" with
        | Some s -> s.Tel.calls
        | None -> 0
      in
      (out, evals, span_calls))

let test_telemetry_totals_match_serial () =
  let out1, evals1, calls1 = counted_run ~jobs:1 in
  Alcotest.(check int) "serial evals" 32 evals1;
  Alcotest.(check int) "serial span calls" 32 calls1;
  List.iter
    (fun jobs ->
       let outp, evalsp, callsp = counted_run ~jobs in
       check_true "results match serial" (outp = out1);
       Alcotest.(check int)
         (Printf.sprintf "evals at jobs=%d" jobs)
         evals1 evalsp;
       Alcotest.(check int)
         (Printf.sprintf "span calls at jobs=%d" jobs)
         calls1 callsp)
    [ 2; 4 ]

let test_telemetry_context_prefix_adopted () =
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:Tel.disable (fun () ->
      Tel.span "outer_sweep" (fun () ->
          ignore
            (Sweep.init ~jobs:2 ~chunk:1 ~serial_cutoff:0. 8 (fun i ->
                 Tel.count "hit";
                 i)));
      (* workers counted under the submitting domain's span path, exactly
         like a serial run would *)
      Alcotest.(check int) "prefixed key" 8 (Tel.counter "outer_sweep/hit");
      Alcotest.(check int) "bare key unused" 0 (Tel.counter "hit"))

(* The auto-serial heuristic: a cheap tiny sweep at jobs>1 must engage it
   (counter fires, result bit-identical), and ~serial_cutoff:0. must fully
   disable it. *)
let test_auto_serial_heuristic () =
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:(fun () -> Tel.disable (); Tel.reset ()) @@ fun () ->
  let xs = Array.init 16 (fun i -> float_of_int i /. 3.) in
  let serial = Array.map work xs in
  (* a generous cutoff so the probe extrapolation cannot flake: 16 sin/exp
     evaluations are nowhere near a second *)
  let auto = Sweep.map ~jobs:4 ~serial_cutoff:1.0 work xs in
  check_true "auto-serial result bit-identical" (auto = serial);
  Alcotest.(check int) "heuristic engaged" 1 (Tel.counter_total "sweep/auto_serial");
  let forced = Sweep.map ~jobs:4 ~serial_cutoff:0. work xs in
  check_true "forced-pool result bit-identical" (forced = serial);
  Alcotest.(check int) "cutoff 0 disables the heuristic" 1
    (Tel.counter_total "sweep/auto_serial");
  (* jobs:1 never probes and never counts *)
  ignore (Sweep.map ~jobs:1 ~serial_cutoff:1.0 work xs);
  Alcotest.(check int) "serial path does not count" 1
    (Tel.counter_total "sweep/auto_serial")

(* Regression guard for the single-probe misroute: a first-call artifact (a
   surrogate table build, a WKB cache fill) used to inflate the per-element
   estimate and push cheap medium grids onto the pool path. The probe now
   takes the minimum of elements 0 and 1, so one expensive first call must
   not defeat the auto-serial heuristic. *)
let test_probe_ignores_first_call_artifact () =
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:(fun () -> Tel.disable (); Tel.reset ()) @@ fun () ->
  let cold = ref true in
  let f i =
    if !cold then begin
      (* simulate a one-off cache build: ~20 ms of busy work, far beyond
         serial_cutoff when extrapolated over the whole sweep *)
      cold := false;
      let t0 = Unix.gettimeofday () in
      while Unix.gettimeofday () -. t0 < 0.02 do () done
    end;
    work (float_of_int i)
  in
  let out = Sweep.init ~jobs:4 64 f in
  check_true "result matches serial"
    (out = Array.init 64 (fun i -> work (float_of_int i)));
  Alcotest.(check int) "warm probe routes a cheap sweep serially" 1
    (Tel.counter_total "sweep/auto_serial")

(* The tentpole: the pool is process-lifetime. A second parallel sweep must
   reuse the domains the first one spawned — spawn count stays flat. *)
let test_pool_persists_across_calls () =
  let xs = Array.init 64 float_of_int in
  ignore (Sweep.map ~jobs:2 ~serial_cutoff:0. work xs);
  check_true "pool retains at least one domain" (Sweep.pool_size () >= 1);
  let before = Sweep.pool_spawned () in
  for _ = 1 to 5 do
    ignore (Sweep.map ~jobs:2 ~serial_cutoff:0. work xs)
  done;
  Alcotest.(check int) "no respawn across five sweeps" before
    (Sweep.pool_spawned ())

(* Regression for the exit-hook installation race: first submissions from
   several fresh domains race to install the pool's at_exit hook (an Atomic
   compare-and-set — exactly one may win), and every racing sweep must
   still return the serial result bit-for-bit. Callers that find the pool
   busy fall back to the serial loop, so the race is safe by construction;
   this pins it. *)
let test_first_submission_race () =
  ignore (Gnrflash_parallel.Pool.quiesce ());
  let xs = Array.init 128 float_of_int in
  let expected = Array.map work xs in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> Sweep.map ~jobs:2 ~serial_cutoff:0. work xs))
  in
  List.iter
    (fun d ->
      check_true "racing sweep matches serial" (Domain.join d = expected))
    domains;
  check_true "pool still serviceable after the race"
    (Sweep.map ~jobs:2 ~serial_cutoff:0. work xs = expected)

let test_auto_chunk () =
  (* cheap elements: the chunk grows until one claim carries ~1 ms (the
     ceil of a float ratio, so allow the one-off rounding artifact) *)
  let c = Sweep.auto_chunk ~per_element_s:1e-6 ~n:100_000 ~jobs:2 in
  check_true "1 us elements -> ~1000-element chunks" (c >= 1000 && c <= 1001);
  (* expensive elements: floor at single-element chunks *)
  Alcotest.(check int) "expensive elements -> chunk 1" 1
    (Sweep.auto_chunk ~per_element_s:0.5 ~n:100 ~jobs:2);
  (* small sweeps: capped so ~2 chunks per domain remain to balance *)
  Alcotest.(check int) "balance cap at n=100 jobs=2" 25
    (Sweep.auto_chunk ~per_element_s:1e-6 ~n:100 ~jobs:2);
  check_true "never below 1"
    (Sweep.auto_chunk ~per_element_s:1. ~n:1 ~jobs:8 >= 1)

(* Regression guard for the pathology the heuristic removes: on a tiny cheap
   grid, a jobs>1 call must not be dramatically slower than the serial path.
   Wall-clock bounds flake under load, so take the best of several repeats
   and require parallel(min) <= 1.2 * serial(min) + 1ms slack; without the
   heuristic the pool spawn/join overhead fails this by an order of
   magnitude. *)
let test_tiny_grid_not_slower () =
  let outer = Array.init 4 (fun i -> float_of_int i)
  and inner = Array.init 4 (fun j -> float_of_int j /. 2.) in
  let time_min f =
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to 20 do ignore (f ()) done;
      best := min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let t_serial =
    time_min (fun () -> Sweep.grid ~jobs:1 (fun a b -> work (a +. b)) ~outer ~inner)
  in
  let t_par =
    time_min (fun () -> Sweep.grid ~jobs:4 (fun a b -> work (a +. b)) ~outer ~inner)
  in
  check_true
    (Printf.sprintf "tiny grid: parallel %.3gs within 1.2x serial %.3gs" t_par
       t_serial)
    (t_par <= (1.2 *. t_serial) +. 1e-3)

let () =
  Alcotest.run "sweep"
    [
      ( "sweep",
        [
          case "identical across jobs and chunks" test_jobs_invariant;
          case "grid layout" test_grid_layout;
          case "empty and edge cases" test_empty_and_edges;
          case "validation" test_validation;
          case "exception propagates" test_exception_propagates;
          case "splitmix hashing" test_splitmix;
          case "default jobs" test_default_jobs;
          case "telemetry totals match serial" test_telemetry_totals_match_serial;
          case "telemetry context adopted" test_telemetry_context_prefix_adopted;
          case "auto-serial heuristic" test_auto_serial_heuristic;
          case "probe ignores first-call artifact"
            test_probe_ignores_first_call_artifact;
          case "pool persists across calls" test_pool_persists_across_calls;
          case "first submissions race safely" test_first_submission_race;
          case "auto-chunk sizing" test_auto_chunk;
          case "tiny grid not slower than serial" test_tiny_grid_not_slower;
          prop_map_parity;
          prop_mapi_parity;
        ] );
    ]
