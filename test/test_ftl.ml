module F = Gnrflash_memory.Ftl
module W = Gnrflash_memory.Workload
module Sm = Gnrflash_prng.Splitmix
open Gnrflash_testing.Testing

let small = { F.blocks = 4; pages_per_block = 8; gc_threshold = 4; endurance_limit = 1000 }

let check_fok msg r = check_ok_with F.error_to_string msg r

let test_create () =
  let t = F.create small in
  (* (4-1) blocks x 8 pages x 7/8 = 21 *)
  Alcotest.(check int) "logical capacity" 21 (F.logical_capacity t);
  let s = F.stats t in
  Alcotest.(check int) "no writes" 0 s.F.host_writes;
  Alcotest.(check int) "no erases" 0 s.F.erases

let test_create_validation () =
  Alcotest.check_raises "one block" (Invalid_argument "Ftl.create: need >= 2 blocks and >= 1 page")
    (fun () -> ignore (F.create { small with F.blocks = 1 }))

let test_write_and_read () =
  let t = F.create small in
  let t = check_fok "write" (F.write t ~lpn:5) in
  (match F.read t ~lpn:5 with
   | Some _ -> ()
   | None -> Alcotest.fail "mapping missing");
  check_true "unwritten page unmapped" (F.read t ~lpn:6 = None)

let test_rewrite_moves_page () =
  let t = F.create small in
  let t = check_fok "w1" (F.write t ~lpn:3) in
  let loc1 = F.read t ~lpn:3 in
  let t = check_fok "w2" (F.write t ~lpn:3) in
  let loc2 = F.read t ~lpn:3 in
  check_true "out-of-place update" (loc1 <> loc2);
  let s = F.stats t in
  Alcotest.(check int) "2 host writes" 2 s.F.host_writes

let test_out_of_range () =
  let t = F.create small in
  match F.write t ~lpn:99 with
  | Error (F.Out_of_range 99) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (F.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Out_of_range"

let test_trim () =
  let t = F.create small in
  let t = check_fok "write" (F.write t ~lpn:1) in
  let t = F.trim t ~lpn:1 in
  check_true "unmapped after trim" (F.read t ~lpn:1 = None)

let test_gc_triggers_under_pressure () =
  let t = F.create small in
  (* hammer one logical page enough to exhaust free pages repeatedly *)
  let rec hammer t n = if n = 0 then t else hammer (check_fok "write" (F.write t ~lpn:0)) (n - 1) in
  let t = hammer t 100 in
  let s = F.stats t in
  check_true "GC ran" (s.F.gc_runs > 0);
  check_true "erases happened" (s.F.erases > 0);
  Alcotest.(check int) "all writes landed" 100 s.F.host_writes;
  (* the page is still readable *)
  check_true "still mapped" (F.read t ~lpn:0 <> None)

let test_write_amplification_bounds () =
  let t = F.create small in
  let ops = W.generate ~seed:5 W.Uniform ~pages:28 ~strings:1 ~ops:300 ~read_fraction:0. in
  let t = check_fok "trace" (F.run_trace t ops) in
  let s = F.stats t in
  check_true "wa >= 1" (s.F.write_amplification >= 1.);
  check_true "wa sane" (s.F.write_amplification < 10.)

let test_wear_leveling_spread () =
  let t = F.create { small with F.blocks = 8 } in
  let ops = W.generate ~seed:9 W.Uniform ~pages:56 ~strings:1 ~ops:2000 ~read_fraction:0. in
  let t = check_fok "trace" (F.run_trace t ops) in
  let s = F.stats t in
  check_true "work spread over blocks" (s.F.min_erase_count > 0);
  (* allocation prefers cold blocks: spread stays a small multiple of min *)
  check_true "bounded spread"
    (float_of_int s.F.max_erase_count <= (3. *. float_of_int s.F.min_erase_count) +. 5.);
  check_close ~tol:1e-12 "wear_spread agrees with stats"
    (float_of_int (s.F.max_erase_count - s.F.min_erase_count))
    (F.wear_spread t)

let test_sequential_vs_random_wa () =
  (* sequential rewrites invalidate whole blocks: cheaper GC than random *)
  let run pattern =
    let t = F.create { small with F.blocks = 8 } in
    let ops = W.generate ~seed:4 pattern ~pages:56 ~strings:1 ~ops:1500 ~read_fraction:0. in
    let t = check_fok "trace" (F.run_trace t ops) in
    (F.stats t).F.write_amplification
  in
  let wa_seq = run W.Sequential in
  let wa_zipf = run (W.Zipf 1.2) in
  check_true "sequential WA modest" (wa_seq < 2.5);
  check_true "both computed" (wa_zipf >= 1.)

let test_endurance_retirement () =
  let t = F.create { small with F.endurance_limit = 3 } in
  let rec hammer t n =
    if n = 0 then Ok t
    else match F.write t ~lpn:0 with Ok t -> hammer t (n - 1) | Error e -> Error e
  in
  (* blocks retire after 3 erases each; the device eventually fills *)
  (match hammer t 2000 with
   | Ok t ->
     let s = F.stats t in
     check_true "some retirement happened" (s.F.retired_blocks > 0)
   | Error _ -> () (* running out of space after retirement is the expected end state *));
  ()

(* ---- PR regression: the space-accounting bug ------------------------- *)

(* Crash-recovery-style snapshot with the write point lost and every free
   page stranded mid-block: [free_pages > 0] but no open block has room and
   no fully-free block exists to open, and with zero Invalid pages GC has
   nothing to reclaim. Space accounting used to accept this state
   ([free_pages > 0]) and let the allocator's internal [No_free_block]
   escape to the host; the fixed predicate ([Ftl.writable]) must turn it
   into a typed [Device_full]. *)
let scattered_free_state () =
  let valid_run ~first ~count ~len =
    Array.init len (fun i -> if i < count then F.Valid (first + i) else F.Free)
  in
  F.For_testing.of_state ~config:small
    ~pages:
      [|
        valid_run ~first:0 ~count:8 ~len:8;
        valid_run ~first:8 ~count:8 ~len:8;
        valid_run ~first:16 ~count:3 ~len:8;
        valid_run ~first:19 ~count:2 ~len:8;
      |]
    ~write_point:None ()

let test_scattered_free_is_device_full () =
  let t = scattered_free_state () in
  check_true "free pages exist" (F.free_pages t > 0);
  check_false "but none are allocatable" (F.writable t);
  (match F.ensure_space t with
   | Error F.Device_full -> ()
   | Error e ->
     Alcotest.failf "ensure_space: wrong error: %s" (F.error_to_string e)
   | Ok _ -> Alcotest.fail "ensure_space accepted an unwritable device");
  (* the host-facing write must surface the typed full condition, never an
     internal allocator error *)
  match F.write t ~lpn:0 with
  | Error F.Device_full -> ()
  | Error e ->
    Alcotest.failf "write: internal error escaped: %s" (F.error_to_string e)
  | Ok _ -> Alcotest.fail "write succeeded with no allocatable page"

let test_scattered_free_recovers_after_trim () =
  (* trimming opens up Invalid pages; GC can then reclaim and the same
     device accepts writes again *)
  let t = scattered_free_state () in
  let t = F.trim t ~lpn:0 in
  let t = F.trim t ~lpn:1 in
  let t = F.trim t ~lpn:2 in
  (* a whole block's worth of invalid pages in block 0 is reclaimable even
     though there is still no fully-free block: GC needs nothing to move
     once enough pages of the victim are dead *)
  let rec trim_all t lpn = if lpn > 7 then t else trim_all (F.trim t ~lpn) (lpn + 1) in
  let t = trim_all t 3 in
  let t = check_fok "write after trim" (F.write t ~lpn:0) in
  check_ok "invariants" (F.check_invariants t)

let test_all_retired_wear_stats () =
  (* A fully-retired device: every block wore out at exactly the endurance
     limit, so the true minimum erase count is the limit. The old stats
     folded only over non-retired blocks and reported 0 — wildly wrong
     wear-spread on an end-of-life device. (The immutable write path
     cannot reach this state because the last reclaiming erase is
     discarded when ensure_space ultimately fails, hence the snapshot
     constructor.) *)
  let limit = 2 in
  let cfg = { small with F.endurance_limit = limit } in
  let t =
    F.For_testing.of_state ~config:cfg
      ~erase_counts:(Array.make cfg.F.blocks limit)
      ~pages:
        (Array.init cfg.F.blocks (fun _ -> Array.make cfg.F.pages_per_block F.Free))
      ~write_point:None ()
  in
  let s = F.stats t in
  Alcotest.(check int) "all blocks retired" cfg.F.blocks s.F.retired_blocks;
  Alcotest.(check int) "min erase count is the endurance limit" limit
    s.F.min_erase_count;
  Alcotest.(check int) "max erase count is the endurance limit" limit
    s.F.max_erase_count;
  check_close ~tol:1e-12 "wear spread is flat" 0. (F.wear_spread t);
  check_false "retired free pages are not writable" (F.writable t);
  (match F.write t ~lpn:0 with
   | Error F.Device_full -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (F.error_to_string e)
   | Ok _ -> Alcotest.fail "write accepted on a fully-retired device");
  check_ok "invariants" (F.check_invariants t)

(* ---- properties ------------------------------------------------------ *)

let prop_mapping_consistent_after_random_trace =
  prop "every mapping points at a Valid page holding that lpn" ~count:20
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
       let t = F.create small in
       let capacity = F.logical_capacity t in
       let ops =
         W.generate ~seed W.Uniform ~pages:capacity ~strings:1 ~ops:200
           ~read_fraction:0.
       in
       match F.run_trace t ops with
       | Error _ -> false
       | Ok t ->
         let ok = ref true in
         for lpn = 0 to capacity - 1 do
           match F.read t ~lpn with
           | None -> ()
           | Some _ -> if F.read t ~lpn = None then ok := false
         done;
         !ok)

let prop_written_pages_stay_mapped =
  prop "a written lpn stays mapped through GC" ~count:20
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
       let t = F.create small in
       let capacity = F.logical_capacity t in
       let target = seed mod capacity in
       match F.write t ~lpn:target with
       | Error _ -> false
       | Ok t ->
         (* churn other pages hard enough to force GC *)
         let ops =
           W.generate ~seed:(seed + 1) W.Uniform ~pages:capacity ~strings:1
             ~ops:150 ~read_fraction:0.
         in
         (match F.run_trace t ops with
          | Error _ -> false
          | Ok t -> F.read t ~lpn:target <> None))

(* Drive a low-endurance device to exhaustion with random writes and trims.
   At every step: internal allocator errors never escape, the structural
   invariants hold, and space accounting agrees with the allocator —
   [ensure_space = Ok] implies the next write can be placed. *)
let prop_random_ops_to_exhaustion =
  prop "write/trim/GC to exhaustion keeps invariants and typed errors" ~count:15
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
       let cfg = { small with F.endurance_limit = 4 } in
       let t = ref (F.create cfg) in
       let capacity = F.logical_capacity !t in
       let ok = ref true in
       let full = ref false in
       let step = ref 0 in
       while !ok && not !full && !step < 600 do
         let h = Sm.hash ~seed ~index:!step in
         let lpn = h mod capacity in
         let trim = Sm.hash ~seed:h ~index:1 mod 10 = 0 in
         (if trim then t := F.trim !t ~lpn
          else
            match F.write !t ~lpn with
            | Ok t' -> t := t'
            | Error F.Device_full ->
              (* a full device must also say so via ensure_space *)
              (match F.ensure_space !t with
               | Error F.Device_full -> ()
               | _ -> ok := false);
              full := true
            | Error _ -> ok := false);
         (match F.check_invariants !t with Ok () -> () | Error _ -> ok := false);
         (match F.ensure_space !t with
          | Ok t' -> if not (F.writable t') then ok := false
          | Error F.Device_full -> ()
          | Error _ -> ok := false);
         incr step
       done;
       let s = F.stats !t in
       !ok && s.F.device_writes >= s.F.host_writes)

let prop_journal_mirrors_counters =
  prop "drained journal agrees with the write counters" ~count:20
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
       let t = F.create small in
       let capacity = F.logical_capacity t in
       let rec go t n =
         if n = 0 then Ok t
         else
           match F.write t ~lpn:(Sm.hash ~seed ~index:n mod capacity) with
           | Ok t -> go t (n - 1)
           | Error F.Device_full -> Ok t
           | Error _ -> Error ()
       in
       match go t 120 with
       | Error () -> false
       | Ok t ->
         let _, ops = F.drain_journal t in
         let programs, gc_copies, erases =
           List.fold_left
             (fun (p, g, e) -> function
                | F.Phys_program { gc; _ } -> ((p + 1), (if gc then g + 1 else g), e)
                | F.Phys_erase _ -> (p, g, e + 1))
             (0, 0, 0) ops
         in
         let s = F.stats t in
         programs = s.F.device_writes
         && gc_copies = s.F.device_writes - s.F.host_writes
         && erases = s.F.erases)

let () =
  Alcotest.run "ftl"
    [
      ( "ftl",
        [
          case "create" test_create;
          case "create validation" test_create_validation;
          case "write and read" test_write_and_read;
          case "out-of-place rewrite" test_rewrite_moves_page;
          case "lpn range" test_out_of_range;
          case "trim" test_trim;
          case "gc under pressure" test_gc_triggers_under_pressure;
          case "write amplification" test_write_amplification_bounds;
          case "wear leveling" test_wear_leveling_spread;
          case "sequential vs random" test_sequential_vs_random_wa;
          case "endurance retirement" test_endurance_retirement;
          case "scattered free space is Device_full" test_scattered_free_is_device_full;
          case "scattered free space recovers after trim" test_scattered_free_recovers_after_trim;
          case "all-retired wear stats" test_all_retired_wear_stats;
          prop_mapping_consistent_after_random_trace;
          prop_written_pages_stay_mapped;
          prop_random_ops_to_exhaustion;
          prop_journal_mirrors_counters;
        ] );
    ]
