module S = Gnrflash_memory.Service
module C = Gnrflash_memory.Command_fsm
module W = Gnrflash_memory.Workload
module Ftl = Gnrflash_memory.Ftl
module E = Gnrflash_memory.Ecc
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

(* Small geometry: 4 blocks x 8 pages -> 21 logical pages, 4-bit data
   words carried in 8-bit SEC-DED codewords. *)
let small_cfg =
  { S.default_config with
    S.ftl = { Ftl.blocks = 4; pages_per_block = 8; gc_threshold = 4; endurance_limit = 1000 };
    strings = 4;
  }

let mk ?(config = small_cfg) () = S.create ~config F.paper_default

let profile =
  { W.default_profile with
    W.pattern = W.Zipf 1.1;
    read_fraction = 0.3;
    trim_fraction = 0.05;
    suspend_fraction = 0.1;
  }

let test_geometry () =
  let s = mk () in
  Alcotest.(check int) "logical pages" 21 (S.logical_pages s);
  let dc = C.config (S.device s) in
  Alcotest.(check int) "sectors = blocks" 4 dc.C.sectors;
  Alcotest.(check int) "words per sector = pages per block" 8
    dc.C.words_per_sector;
  Alcotest.(check int) "codeword width" (4 + E.overhead 4) dc.C.word_bits

let test_end_to_end_trace () =
  let s = mk () in
  let r = S.run_trace ~profile ~seed:7 ~ops:600 s in
  Alcotest.(check int) "all ops submitted" 600 r.S.ops;
  Alcotest.(check int) "no op lost" 0 r.S.lost_ops;
  Alcotest.(check int) "no read mismatches" 0 r.S.read_mismatches;
  Alcotest.(check int) "final scan clean" 0 r.S.verify_mismatches;
  Alcotest.(check int) "no protocol errors" 0 r.S.fsm.C.bad_sequences;
  check_true "invariants hold" (r.S.invariant_error = None);
  check_true "device time advanced" (r.S.model_time > 0.);
  check_true "writes landed" (r.S.writes > 0);
  check_true "reads hit mapped pages" (r.S.read_hits > 0);
  check_true "GC erases mirrored to the device"
    (r.S.fsm.C.sector_erases = r.S.ftl.Ftl.erases);
  Alcotest.(check int) "journal fully mirrored" r.S.ftl.Ftl.device_writes
    r.S.fsm.C.words_programmed;
  (* latency percentiles are ordered and positive *)
  let l = r.S.latency in
  check_true "p50 > 0" (l.S.p50 > 0.);
  check_true "percentiles ordered"
    (l.S.p50 <= l.S.p95 && l.S.p95 <= l.S.p99 && l.S.p99 <= l.S.max);
  check_true "mean within range" (l.S.mean > 0. && l.S.mean <= l.S.max)

let test_determinism_across_instances () =
  let run () =
    let s = mk () in
    S.run_trace ~profile ~seed:11 ~ops:400 s
  in
  let a = run () and b = run () in
  Alcotest.(check int) "trace digest stable" a.S.trace_digest b.S.trace_digest;
  Alcotest.(check int) "state digest stable" a.S.state_digest b.S.state_digest;
  let c = mk () in
  let c = S.run_trace ~profile ~seed:12 ~ops:400 c in
  check_true "different seed, different trace"
    (c.S.trace_digest <> a.S.trace_digest)

let test_suspend_exercised () =
  let s = mk () in
  let r =
    S.run_trace
      ~profile:{ profile with W.read_fraction = 0.; trim_fraction = 0.; suspend_fraction = 1. }
      ~seed:3 ~ops:800 s
  in
  check_true "suspends happened" (r.S.fsm.C.suspends > 0);
  Alcotest.(check int) "every suspend resumed" r.S.fsm.C.suspends
    r.S.fsm.C.resumes;
  Alcotest.(check int) "no op lost" 0 r.S.lost_ops;
  Alcotest.(check int) "final scan clean" 0 r.S.verify_mismatches

let test_device_full_is_accounted () =
  (* tiny endurance: the device dies mid-trace; rejected writes must be
     typed and accounted, never lost, and never an escaped internal error *)
  let s =
    mk
      ~config:
        { small_cfg with
          S.ftl = { small_cfg.S.ftl with Ftl.endurance_limit = 3 } }
      ()
  in
  let r =
    S.run_trace
      ~profile:{ profile with W.read_fraction = 0.1; trim_fraction = 0. }
      ~seed:5 ~ops:1500 s
  in
  check_true "device filled up" (r.S.rejected_full > 0);
  Alcotest.(check int) "no op lost" 0 r.S.lost_ops;
  check_true "invariants hold at end of life" (r.S.invariant_error = None);
  check_true "blocks retired" (r.S.ftl.Ftl.retired_blocks > 0)

let test_exec_single_commands () =
  let s = mk () in
  S.exec s (W.Cmd_write { lpn = 3; data = [| 1; 0; 1; 1 |]; suspend = false });
  S.exec s (W.Cmd_read { lpn = 3 });
  S.exec s (W.Cmd_trim { lpn = 3 });
  S.exec s (W.Cmd_read { lpn = 3 });
  let r = S.report s in
  Alcotest.(check int) "ops" 4 r.S.ops;
  Alcotest.(check int) "one write" 1 r.S.writes;
  Alcotest.(check int) "two reads" 2 r.S.reads;
  Alcotest.(check int) "one hit (pre-trim)" 1 r.S.read_hits;
  Alcotest.(check int) "one trim" 1 r.S.trims;
  Alcotest.(check int) "clean" 0 r.S.read_mismatches

(* Disturb feedback threads through the service config down to the FSM:
   the enabled run counts the same events but lands on a different final
   cell state, deterministically. *)
let test_disturb_feedback_threaded () =
  let dcfg =
    Gnrflash_device.Disturb.half_select ~vgs_program:15. ~pulse_width:10e-6
  in
  let run disturb =
    let s = mk ~config:{ small_cfg with S.disturb } () in
    S.run_trace ~profile ~seed:21 ~ops:40 s
  in
  let off = run None and on_ = run (Some dcfg) in
  check_true "events counted" (on_.S.fsm.C.disturb_events > 0);
  Alcotest.(check int) "same events either way" off.S.fsm.C.disturb_events
    on_.S.fsm.C.disturb_events;
  Alcotest.(check int) "no op lost with feedback on" 0 on_.S.lost_ops;
  check_true "feedback shifts the final state"
    (on_.S.state_digest <> off.S.state_digest);
  Alcotest.(check int) "feedback is deterministic" on_.S.state_digest
    (run (Some dcfg)).S.state_digest

let prop_no_op_lost =
  prop "every command is accounted under random profiles" ~count:10
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
       let s = mk () in
       let r = S.run_trace ~profile ~seed ~ops:200 s in
       r.S.lost_ops = 0 && r.S.verify_mismatches = 0
       && r.S.invariant_error = None
       && r.S.reads + r.S.writes + r.S.rejected_full + r.S.trims = r.S.ops)

let () =
  Alcotest.run "service"
    [
      ( "service",
        [
          case "geometry" test_geometry;
          case "end to end trace" test_end_to_end_trace;
          case "determinism" test_determinism_across_instances;
          case "suspend exercised" test_suspend_exercised;
          case "device full accounted" test_device_full_is_accounted;
          case "single commands" test_exec_single_commands;
          case "disturb feedback threaded" test_disturb_feedback_threaded;
          prop_no_op_lost;
        ] );
    ]
