(* Self-test for gnrflash-lint: every (* EXPECT L<n> *) marker in the
   fixture directory must produce exactly one finding of that rule on that
   line, (* EXPECT-SUPPRESSED L<n> *) exactly one suppressed finding, and
   nothing else may fire. Also asserts the repo itself is lint-clean. *)

module E = Gnrflash_lint_engine.Lint_engine
open Gnrflash_testing.Testing

let fixtures_subdir = "tools/lint/fixtures"

let fixture_config =
  { E.solver_basenames = [ "bad_l1.ml" ]; l3_exempt_basenames = [] }

let root = E.locate_root ()

(* (file, line, rule, suppressed) expectations parsed from the markers *)
let expected_findings () =
  let dir = Filename.concat root fixtures_subdir in
  let parse_file acc name =
    if Filename.check_suffix name ".ml" then begin
      let path = Filename.concat dir name in
      let ic = open_in path in
      let acc = ref acc in
      let lnum = ref 0 in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      (try
         while true do
           let line = input_line ic in
           incr lnum;
           List.iter
             (fun rule ->
               let record suppressed =
                 acc :=
                   (Filename.concat fixtures_subdir name, !lnum, rule,
                    suppressed)
                   :: !acc
               in
               let id = E.rule_id rule in
               if contains line (Printf.sprintf "(* EXPECT %s *)" id) then
                 record false;
               if
                 contains line
                   (Printf.sprintf "(* EXPECT-SUPPRESSED %s *)" id)
               then record true)
             E.all_rules
         done
       with End_of_file -> close_in ic);
      !acc
    end
    else acc
  in
  Array.fold_left parse_file [] (Sys.readdir dir)
  |> List.sort compare

let test_fixtures_exact () =
  let report = E.run ~config:fixture_config ~root ~subdir:fixtures_subdir () in
  check_true "fixtures were scanned" (report.E.files_scanned > 0);
  let actual =
    List.map
      (fun f -> (f.E.file, f.E.line, f.E.rule, f.E.suppressed))
      report.E.findings
    |> List.sort compare
  in
  let expected = expected_findings () in
  check_true "fixture markers exist" (List.length expected > 0);
  let show (file, line, rule, supp) =
    Printf.sprintf "%s:%d %s%s" file line (E.rule_id rule)
      (if supp then " (suppressed)" else "")
  in
  Alcotest.(check (list string))
    "findings match EXPECT markers exactly" (List.map show expected)
    (List.map show actual)

let test_every_rule_covered () =
  (* the fixture set must exercise all five rules, both firing and
     suppressed *)
  let expected = expected_findings () in
  List.iter
    (fun rule ->
      check_true
        (Printf.sprintf "%s fires in fixtures" (E.rule_id rule))
        (List.exists (fun (_, _, r, s) -> r = rule && not s) expected);
      check_true
        (Printf.sprintf "%s suppressible in fixtures" (E.rule_id rule))
        (List.exists (fun (_, _, r, s) -> r = rule && s) expected))
    E.all_rules

let test_repo_clean () =
  let report = E.run ~root ~subdir:"lib" () in
  check_true "repo libraries were scanned" (report.E.files_scanned > 50);
  Alcotest.(check (list string))
    "no unsuppressed findings in lib/" []
    (List.map E.render_finding (E.unsuppressed report))

let () =
  Alcotest.run "lint"
    [
      ( "lint",
        [
          case "fixtures match markers" test_fixtures_exact;
          case "all rules covered" test_every_rule_covered;
          case "repo is lint-clean" test_repo_clean;
        ] );
    ]
