(* Self-test for gnrflash-lint: every (* EXPECT L<n> *) marker in the
   fixture directory must produce exactly one finding of that rule on that
   line, (* EXPECT-SUPPRESSED L<n> *) exactly one suppressed finding, and
   nothing else may fire. Also asserts the repo itself is lint-clean. *)

module E = Gnrflash_lint_engine.Lint_engine
open Gnrflash_testing.Testing

let fixtures_subdir = "tools/lint/fixtures"

let fixture_config =
  { E.solver_basenames = [ "bad_l1.ml" ]; l3_exempt_basenames = [] }

let root = E.locate_root ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* (file, line, rule, suppressed) expectations parsed from the markers *)
let expected_findings () =
  let dir = Filename.concat root fixtures_subdir in
  let parse_file acc name =
    if Filename.check_suffix name ".ml" then begin
      let path = Filename.concat dir name in
      let ic = open_in path in
      let acc = ref acc in
      let lnum = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lnum;
           List.iter
             (fun rule ->
               let record suppressed =
                 acc :=
                   (Filename.concat fixtures_subdir name, !lnum, rule,
                    suppressed)
                   :: !acc
               in
               let id = E.rule_id rule in
               if contains line (Printf.sprintf "(* EXPECT %s *)" id) then
                 record false;
               if
                 contains line
                   (Printf.sprintf "(* EXPECT-SUPPRESSED %s *)" id)
               then record true)
             E.all_rules
         done
       with End_of_file -> close_in ic);
      !acc
    end
    else acc
  in
  Array.fold_left parse_file [] (Sys.readdir dir)
  |> List.sort compare

let test_fixtures_exact () =
  let report = E.run ~config:fixture_config ~root ~subdir:fixtures_subdir () in
  check_true "fixtures were scanned" (report.E.files_scanned > 0);
  let actual =
    List.map
      (fun f -> (f.E.file, f.E.line, f.E.rule, f.E.suppressed))
      report.E.findings
    |> List.sort compare
  in
  let expected = expected_findings () in
  check_true "fixture markers exist" (List.length expected > 0);
  let show (file, line, rule, supp) =
    Printf.sprintf "%s:%d %s%s" file line (E.rule_id rule)
      (if supp then " (suppressed)" else "")
  in
  Alcotest.(check (list string))
    "findings match EXPECT markers exactly" (List.map show expected)
    (List.map show actual)

let test_every_rule_covered () =
  (* the fixture set must exercise all five rules, both firing and
     suppressed *)
  let expected = expected_findings () in
  List.iter
    (fun rule ->
      check_true
        (Printf.sprintf "%s fires in fixtures" (E.rule_id rule))
        (List.exists (fun (_, _, r, s) -> r = rule && not s) expected);
      check_true
        (Printf.sprintf "%s suppressible in fixtures" (E.rule_id rule))
        (List.exists (fun (_, _, r, s) -> r = rule && s) expected))
    E.all_rules

(* The inter-procedural phase exposes its resolved call graph through the
   report; the cg_stress fixture pins the shapes that historically broke
   naive walkers: mutual recursion (a cycle the BFS must traverse without
   looping), functor bodies (instantiation aliases must resolve into them),
   and first-class modules (must not crash the walker). *)
let test_callgraph () =
  let report = E.run ~config:fixture_config ~root ~subdir:fixtures_subdir () in
  let graph = report.E.graph in
  check_true "call graph is non-empty" (graph <> []);
  let ends_with suffix s =
    let ls = String.length s and lf = String.length suffix in
    ls >= lf && String.sub s (ls - lf) lf = suffix
  in
  let node suffix =
    match List.find_opt (fun (id, _) -> ends_with suffix id) graph with
    | Some n -> n
    | None ->
        Alcotest.failf "node *.%s not in graph: %s" suffix
          (String.concat ", " (List.map fst graph))
  in
  let has_edge caller callee =
    let _, callees = node caller in
    List.exists (ends_with callee) callees
  in
  check_true "cycle edge even_step -> odd_step"
    (has_edge "Cg_stress.even_step" "Cg_stress.odd_step");
  check_true "cycle edge odd_step -> even_step"
    (has_edge "Cg_stress.odd_step" "Cg_stress.even_step");
  (* the functor body got its own node, so [C0.bump] calls resolve there *)
  ignore (node "Cg_stress.Counter.bump");
  (* the two-hop chain behind the seeded L8 race *)
  check_true "edge log_hit -> bump"
    (has_edge "Bad_l8.log_hit" "Bad_l8.bump");
  (* first-class modules did not crash phase 1 and the caller still has a
     node (the packed body itself is a documented resolution miss) *)
  ignore (node "Cg_stress.through_pack")

let test_engine_api () =
  check_true "rule_of_string L8" (E.rule_of_string "L8" = Some E.L8);
  check_true "rule_of_string lowercase" (E.rule_of_string "l11" = Some E.L11);
  check_true "rule_of_string out of range" (E.rule_of_string "L14" = None);
  check_true "rule_of_string junk" (E.rule_of_string "Lx" = None);
  let report = E.run ~config:fixture_config ~root ~subdir:fixtures_subdir () in
  let counts = E.by_rule report in
  check_true "by_rule covers every rule"
    (List.length counts = List.length E.all_rules);
  let unsup = List.fold_left (fun a (_, u, _) -> a + u) 0 counts in
  let sup = List.fold_left (fun a (_, _, s) -> a + s) 0 counts in
  check_true "by_rule counts sum to the findings"
    (unsup = List.length (E.unsuppressed report)
    && sup = List.length (E.suppressed report));
  let only8 = E.filter_rules [ E.L8 ] report in
  check_true "filter_rules keeps only L8"
    (only8.E.findings <> []
    && List.for_all (fun f -> f.E.rule = E.L8) only8.E.findings);
  let json = E.render_json report in
  check_true "json lists findings" (contains json "\"findings\"");
  check_true "json has per-rule counts" (contains json "\"by_rule\"");
  check_true "json mentions L8" (contains json "\"L8\"")

let test_baseline_roundtrip () =
  let report = E.run ~config:fixture_config ~root ~subdir:fixtures_subdir () in
  let b = E.baseline_of_report report in
  check_true "fixture baseline is non-empty" (b <> []);
  let b' = E.baseline_of_string (E.baseline_to_string b) in
  check_true "baseline text round-trips"
    (List.sort compare b' = List.sort compare b);
  Alcotest.(check (list string))
    "applying a report's own baseline silences it" []
    (List.map E.render_finding (E.unsuppressed (E.apply_baseline b report)))

let test_repo_clean () =
  let report = E.run ~root ~subdir:"lib" () in
  check_true "repo libraries were scanned" (report.E.files_scanned > 50);
  Alcotest.(check (list string))
    "no unsuppressed findings in lib/" []
    (List.map E.render_finding (E.unsuppressed report))

let () =
  Alcotest.run "lint"
    [
      ( "lint",
        [
          case "fixtures match markers" test_fixtures_exact;
          case "all rules covered" test_every_rule_covered;
          case "call graph shapes" test_callgraph;
          case "engine api" test_engine_api;
          case "baseline round-trip" test_baseline_roundtrip;
          case "repo is lint-clean" test_repo_clean;
        ] );
    ]
