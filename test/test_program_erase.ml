module Pe = Gnrflash_device.Program_erase
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

(* the numerics/device solvers under test return typed solver errors *)
let check_ok msg r = check_sok msg r
let check_error msg r = ignore (check_serr msg r)

let t = F.paper_default

let test_default_pulses () =
  check_close "program bias" 15. Pe.default_program_pulse.Pe.vgs;
  check_close "erase bias" (-15.) Pe.default_erase_pulse.Pe.vgs;
  check_true "positive widths"
    (Pe.default_program_pulse.Pe.duration > 0. && Pe.default_erase_pulse.Pe.duration > 0.)

let test_program_outcome () =
  let o = check_ok "program" (Pe.program t ~qfg:0.) in
  check_close "records initial charge" 0. o.Pe.qfg_before;
  check_true "stores electrons" (o.Pe.qfg_after < 0.);
  check_true "positive shift" (o.Pe.dvt_after > 1.);
  check_close ~tol:1e-9 "injected = |delta|" (abs_float o.Pe.qfg_after) o.Pe.injected_charge;
  check_true "1 ms pulse saturates" o.Pe.saturated

let test_erase_outcome () =
  let p = check_ok "program" (Pe.program t ~qfg:0.) in
  let e = check_ok "erase" (Pe.erase t ~qfg:p.Pe.qfg_after) in
  check_true "charge removed" (e.Pe.qfg_after > p.Pe.qfg_after);
  check_true "threshold drops" (e.Pe.dvt_after < p.Pe.dvt_after)

let test_short_pulse_partial () =
  let short = { Pe.vgs = 15.; duration = 1e-9 } in
  let o = check_ok "short" (Pe.apply_pulse t ~qfg:0. short) in
  let full = check_ok "full" (Pe.program t ~qfg:0.) in
  check_true "partial programming" (o.Pe.dvt_after < full.Pe.dvt_after);
  check_true "some charge still moved" (o.Pe.dvt_after > 0.01)

let test_pulse_validation () =
  check_error "zero duration" (Pe.apply_pulse t ~qfg:0. { Pe.vgs = 15.; duration = 0. })

let test_cycle () =
  let p, e = check_ok "cycle" (Pe.cycle t ~qfg:0.) in
  check_true "programmed then erased" (p.Pe.qfg_after < 0. && e.Pe.qfg_after > p.Pe.qfg_after);
  (* symmetric device: erase overshoots to the positive mirror charge *)
  check_close ~tol:0.05 "mirror" (-.p.Pe.qfg_after) e.Pe.qfg_after

let test_idempotent_saturation () =
  (* programming an already saturated cell moves almost no charge *)
  let o1 = check_ok "first" (Pe.program t ~qfg:0.) in
  let o2 = check_ok "second" (Pe.program t ~qfg:o1.Pe.qfg_after) in
  check_true "second pulse injects far less"
    (o2.Pe.injected_charge < o1.Pe.injected_charge /. 100.)

let prop_longer_pulse_more_charge =
  prop "longer pulses move at least as much charge" ~count:6
    QCheck2.Gen.(float_range 1e-9 1e-7)
    (fun d ->
       let o1 = Pe.apply_pulse t ~qfg:0. { Pe.vgs = 15.; duration = d } in
       let o2 = Pe.apply_pulse t ~qfg:0. { Pe.vgs = 15.; duration = d *. 3. } in
       match o1, o2 with
       | Ok a, Ok b -> b.Pe.injected_charge >= a.Pe.injected_charge *. 0.999
       | _ -> false)

let () =
  Alcotest.run "program_erase"
    [
      ( "program_erase",
        [
          case "default pulses" test_default_pulses;
          case "program outcome" test_program_outcome;
          case "erase outcome" test_erase_outcome;
          case "short pulse partial" test_short_pulse_partial;
          case "pulse validation" test_pulse_validation;
          case "full cycle" test_cycle;
          case "saturation idempotence" test_idempotent_saturation;
          prop_longer_pulse_more_charge;
        ] );
    ]
