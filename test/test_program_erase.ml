module Pe = Gnrflash_device.Program_erase
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

(* the numerics/device solvers under test return typed solver errors *)
let check_ok msg r = check_sok msg r
let check_error msg r = ignore (check_serr msg r)

let t = F.paper_default

let test_default_pulses () =
  check_close "program bias" 15. Pe.default_program_pulse.Pe.vgs;
  check_close "erase bias" (-15.) Pe.default_erase_pulse.Pe.vgs;
  check_true "positive widths"
    (Pe.default_program_pulse.Pe.duration > 0. && Pe.default_erase_pulse.Pe.duration > 0.)

let test_program_outcome () =
  let o = check_ok "program" (Pe.program t ~qfg:0.) in
  check_close "records initial charge" 0. o.Pe.qfg_before;
  check_true "stores electrons" (o.Pe.qfg_after < 0.);
  check_true "positive shift" (o.Pe.dvt_after > 1.);
  check_close ~tol:1e-9 "injected = |delta|" (abs_float o.Pe.qfg_after) o.Pe.injected_charge;
  check_true "1 ms pulse saturates" o.Pe.saturated

let test_erase_outcome () =
  let p = check_ok "program" (Pe.program t ~qfg:0.) in
  let e = check_ok "erase" (Pe.erase t ~qfg:p.Pe.qfg_after) in
  check_true "charge removed" (e.Pe.qfg_after > p.Pe.qfg_after);
  check_true "threshold drops" (e.Pe.dvt_after < p.Pe.dvt_after)

let test_short_pulse_partial () =
  let short = { Pe.vgs = 15.; duration = 1e-9 } in
  let o = check_ok "short" (Pe.apply_pulse t ~qfg:0. short) in
  let full = check_ok "full" (Pe.program t ~qfg:0.) in
  check_true "partial programming" (o.Pe.dvt_after < full.Pe.dvt_after);
  check_true "some charge still moved" (o.Pe.dvt_after > 0.01)

let test_pulse_validation () =
  check_error "zero duration" (Pe.apply_pulse t ~qfg:0. { Pe.vgs = 15.; duration = 0. })

let test_cycle () =
  let p, e = check_ok "cycle" (Pe.cycle t ~qfg:0.) in
  check_true "programmed then erased" (p.Pe.qfg_after < 0. && e.Pe.qfg_after > p.Pe.qfg_after);
  (* symmetric device: erase overshoots to the positive mirror charge *)
  check_close ~tol:0.05 "mirror" (-.p.Pe.qfg_after) e.Pe.qfg_after

let test_idempotent_saturation () =
  (* programming an already saturated cell moves almost no charge *)
  let o1 = check_ok "first" (Pe.program t ~qfg:0.) in
  let o2 = check_ok "second" (Pe.program t ~qfg:o1.Pe.qfg_after) in
  check_true "second pulse injects far less"
    (o2.Pe.injected_charge < o1.Pe.injected_charge /. 100.)

(* Warm-started pulse trains: on a repeated program/erase train the step-size
   warm start and the exact-replay memoization must both engage (counters
   non-zero), stay silent when disabled, and never change the physics — the
   warm train's final charge must match a fully cold train to solver
   tolerance (replays are bit-identical by construction; the h0 reuse only
   reshapes the step sequence). The surrogate is switched off here: it has
   precedence over the replay cache, so with it on these in-box pulses
   would be table-served and the warm/replay counters under test would
   never fire. *)
let run_train ~warm_start ~cycles =
  let pp = { Pe.vgs = 15.; duration = 100e-6 }
  and ep = { Pe.vgs = -15.; duration = 100e-6 } in
  let q = ref 0. in
  for _ = 1 to cycles do
    match
      Pe.cycle ~warm_start ~surrogate:false ~program_pulse:pp ~erase_pulse:ep t
        ~qfg:!q
    with
    | Ok (_, e) -> q := e.Pe.qfg_after
    | Error _ -> Alcotest.fail "train cycle failed"
  done;
  !q

let test_warm_start_counters () =
  let module Tel = Gnrflash_telemetry.Telemetry in
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:(fun () -> Tel.disable (); Tel.reset ()) @@ fun () ->
  let q_warm = run_train ~warm_start:true ~cycles:10 in
  let warm_hits = Tel.counter_total "transient/warm_start_hit" in
  let replays = Tel.counter_total "program_erase/pulse_replay" in
  let rhs_warm = Tel.counter_total "ode/rhs_eval" in
  check_true "h0 warm start engaged" (warm_hits > 0);
  check_true "limit-cycle replay engaged" (replays > 0);
  Alcotest.(check int) "all 20 pulses recorded" 20
    (Tel.counter_total "program_erase/pulse");
  Tel.reset ();
  let q_cold = run_train ~warm_start:false ~cycles:10 in
  Alcotest.(check int) "disabled: no warm hits" 0
    (Tel.counter_total "transient/warm_start_hit");
  Alcotest.(check int) "disabled: no replays" 0
    (Tel.counter_total "program_erase/pulse_replay");
  let rhs_cold = Tel.counter_total "ode/rhs_eval" in
  check_true
    (Printf.sprintf "warm train cheaper: %d vs %d RHS evals" rhs_warm rhs_cold)
    (rhs_warm < rhs_cold);
  check_close ~tol:1e-6 "same physics warm or cold" q_cold q_warm

let test_warm_replay_bit_identical () =
  (* the same (device, vgs, duration, qfg) pulse twice in a row on the
     exact path (surrogate off): the second is a replay and must reproduce
     the first outcome bit-for-bit *)
  let pulse = { Pe.vgs = 15.; duration = 50e-6 } in
  let o1 = check_ok "first" (Pe.apply_pulse ~surrogate:false t ~qfg:0. pulse) in
  let o2 = check_ok "replayed" (Pe.apply_pulse ~surrogate:false t ~qfg:0. pulse) in
  check_true "bit-identical replay"
    (Int64.equal
       (Int64.bits_of_float o1.Pe.qfg_after)
       (Int64.bits_of_float o2.Pe.qfg_after)
     && Int64.equal
          (Int64.bits_of_float o1.Pe.dvt_after)
          (Int64.bits_of_float o2.Pe.dvt_after)
     && o1.Pe.saturated = o2.Pe.saturated)

(* Surrogate precedence over the replay cache must be deterministic: once a
   table serves a (vgs, duration, qfg) key, it keeps serving it even if an
   exact replay entry for the same key exists from an earlier opt-out solve
   — and repeated surrogate answers are bit-identical (pure interpolation
   of an immutable table). *)
let test_surrogate_precedence_deterministic () =
  let module Ps = Gnrflash_device.Pulse_surrogate in
  let module Tel = Gnrflash_telemetry.Telemetry in
  let prev = Ps.build_after () in
  Ps.set_build_after 0;
  Fun.protect ~finally:(fun () -> Ps.set_build_after prev) @@ fun () ->
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:(fun () -> Tel.disable (); Tel.reset ()) @@ fun () ->
  let pulse = { Pe.vgs = 15.; duration = 75e-6 } in
  (* seed a replay entry on the exact path first *)
  let exact = check_ok "exact seed" (Pe.apply_pulse ~surrogate:false t ~qfg:0. pulse) in
  let s1 = check_ok "surrogate 1" (Pe.apply_pulse t ~qfg:0. pulse) in
  let s2 = check_ok "surrogate 2" (Pe.apply_pulse t ~qfg:0. pulse) in
  check_true "surrogate served despite replay entry"
    (Tel.counter_total "surrogate/hit" >= 2);
  Alcotest.(check int) "replay never consulted" 0
    (Tel.counter_total "program_erase/pulse_replay");
  check_true "surrogate answers bit-identical"
    (Int64.equal (Int64.bits_of_float s1.Pe.qfg_after)
       (Int64.bits_of_float s2.Pe.qfg_after));
  (* and the surrogate stays within its table's certified bound of the
     exact answer it shadowed *)
  match Gnrflash_device.Pulse_surrogate.cached t ~vgs:15. with
  | None -> Alcotest.fail "table missing"
  | Some tab ->
    check_true "within certified bound of the shadowed exact answer"
      (Ps.divergence tab ~exact:exact.Pe.qfg_after ~approx:s1.Pe.qfg_after
       <= Ps.certified_bound tab)

let prop_longer_pulse_more_charge =
  prop "longer pulses move at least as much charge" ~count:6
    QCheck2.Gen.(float_range 1e-9 1e-7)
    (fun d ->
       let o1 = Pe.apply_pulse t ~qfg:0. { Pe.vgs = 15.; duration = d } in
       let o2 = Pe.apply_pulse t ~qfg:0. { Pe.vgs = 15.; duration = d *. 3. } in
       match o1, o2 with
       | Ok a, Ok b -> b.Pe.injected_charge >= a.Pe.injected_charge *. 0.999
       | _ -> false)

let () =
  Alcotest.run "program_erase"
    [
      ( "program_erase",
        [
          case "default pulses" test_default_pulses;
          case "program outcome" test_program_outcome;
          case "erase outcome" test_erase_outcome;
          case "short pulse partial" test_short_pulse_partial;
          case "pulse validation" test_pulse_validation;
          case "full cycle" test_cycle;
          case "saturation idempotence" test_idempotent_saturation;
          case "warm-start counters and parity" test_warm_start_counters;
          case "warm replay bit-identical" test_warm_replay_bit_identical;
          case "surrogate precedence deterministic" test_surrogate_precedence_deterministic;
          prop_longer_pulse_more_charge;
        ] );
    ]
