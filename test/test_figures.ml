module Fig = Gnrflash.Figures
module P = Gnrflash_plot
open Gnrflash_testing.Testing

let series_labelled fig label =
  match List.find_opt (fun s -> s.P.Series.label = label) fig.P.Figure.series with
  | Some s -> s
  | None -> Alcotest.failf "missing series %s" label

let test_fig2_band_profiles () =
  let fig = Fig.fig2_band_diagram () in
  Alcotest.(check int) "four profiles" 4 (List.length fig.P.Figure.series);
  (* each triangular profile starts at phi_B = 3.2 eV and falls to 0 *)
  let s = series_labelled fig "E = 10 MV/cm" in
  let ys = P.Series.ys s in
  check_close ~tol:1e-6 "entry at phi" 3.2 ys.(0);
  check_abs ~tol:1e-6 "exit at zero" 0. ys.(Array.length ys - 1);
  (* higher field -> thinner barrier: compare widths *)
  let width label =
    let xs = P.Series.xs (series_labelled fig label) in
    xs.(Array.length xs - 1)
  in
  check_true "apparent thinning" (width "E = 15 MV/cm" < width "E = 5 MV/cm");
  (* image force rounds the top below phi *)
  let rounded = P.Series.ys (series_labelled fig "E = 10 MV/cm + image force") in
  let top = Array.fold_left max neg_infinity rounded in
  check_true "image force lowers the peak" (top < 3.2)

let test_fig4_ratio () =
  let _, (jin0, jout0) = Fig.fig4_initial_currents () in
  (* paper worked example: Jin ~ 285.7 A/cm^2 at t=0, Jout negligible *)
  check_close ~tol:1e-3 "Jin(0)" 285.68 jin0;
  check_true "Jout negligible" (jout0 < 1e-9);
  check_true "many orders apart" (jin0 /. jout0 > 1e10)

let test_fig5_convergence () =
  let fig, tsat = Fig.fig5_transient () in
  (match tsat with
   | None -> Alcotest.fail "tsat missing"
   | Some t -> check_in "tsat plausible" ~lo:1e-6 ~hi:1e-1 t);
  let jin = P.Series.ys (series_labelled fig "Jin") in
  let jout = P.Series.ys (series_labelled fig "Jout") in
  let last a = a.(Array.length a - 1) in
  check_close ~tol:0.05 "currents converge at tsat" (last jin) (last jout)

(* Golden pin for the Fig 5 saturation time. The FSAL DOPRI5(4) stepper with
   dense-output event localization measures
   tsat = 2.97320829404940892e-04 s; the seed (RKF45 step-doubling +
   re-integration bisection) measured 2.97320499004981114e-04 s, 1.12e-6
   apart relative — the crossing is now resolved on the dense interpolant
   within the integration tolerance, so bit-equality with the seed is not
   expected. Documented tolerance vs the seed: 5e-6 relative (ISSUE 5);
   the current stepper is pinned much tighter (1e-9) to catch regressions. *)
let test_fig5_tsat_golden () =
  let _, tsat = Fig.fig5_transient () in
  match tsat with
  | None -> Alcotest.fail "tsat missing"
  | Some ts ->
    let pinned = 2.97320829404940892e-04 in
    let seed = 2.97320499004981114e-04 in
    check_true
      (Printf.sprintf "tsat %.17e within 1e-9 rel of pin %.17e" ts pinned)
      (abs_float (ts -. pinned) /. pinned <= 1e-9);
    check_true
      (Printf.sprintf "tsat %.17e within 5e-6 rel of seed %.17e" ts seed)
      (abs_float (ts -. seed) /. seed <= 5e-6)

let test_fig6_families () =
  let fig = Fig.fig6_program_gcr () in
  Alcotest.(check int) "four GCR curves" 4 (List.length fig.P.Figure.series);
  (* the paper's reading: at fixed VGS, higher GCR -> higher J *)
  let final label =
    let ys = P.Series.ys (series_labelled fig label) in
    ys.(Array.length ys - 1)
  in
  check_true "45 < 50" (final "GCR = 45%" < final "GCR = 50%");
  check_true "50 < 55" (final "GCR = 50%" < final "GCR = 55%");
  check_true "55 < 60" (final "GCR = 55%" < final "GCR = 60%")

let test_fig7_thickness_blowup () =
  let fig = Fig.fig7_program_xto () in
  Alcotest.(check int) "five XTO curves" 5 (List.length fig.P.Figure.series);
  let final label =
    let ys = P.Series.ys (series_labelled fig label) in
    ys.(Array.length ys - 1)
  in
  (* thinner oxide carries far more current; 5 nm vs 9 nm is > 4 decades *)
  check_true "5 nm >> 9 nm" (final "XTO = 5 nm" /. final "XTO = 9 nm" > 1e4)

let test_fig8_erase_polarity () =
  let fig = Fig.fig8_erase_gcr () in
  List.iter
    (fun s ->
       let xs = P.Series.xs s in
       Array.iter (fun v -> check_true "erase sweep negative" (v < 0.)) xs)
    fig.P.Figure.series

let test_fig9_erase_thickness () =
  let fig = Fig.fig9_erase_xto () in
  Alcotest.(check int) "five curves" 5 (List.length fig.P.Figure.series);
  (* |J| larger at more negative VGS: first point (VGS = -17) above last *)
  List.iter
    (fun s ->
       let ys = P.Series.ys s in
       check_true "decreasing towards -8 V" (ys.(0) > ys.(Array.length ys - 1)))
    fig.P.Figure.series

let test_all_figures_generate () =
  let all = Fig.all () in
  Alcotest.(check int) "seven figures" 7 (List.length all);
  List.iter
    (fun (name, fig) ->
       check_true (name ^ " has series") (List.length fig.P.Figure.series > 0))
    all

let test_jv_sweep_program_erase_symmetry () =
  (* with QFG = 0 the erase current at -V equals the program current at +V *)
  let prog =
    Fig.jv_sweep_gcr ~polarity:`Program ~gcr:0.6 ~xto_nm:5. ~vgs_range:(8., 17.) ~points:10
  in
  let erase =
    Fig.jv_sweep_gcr ~polarity:`Erase ~gcr:0.6 ~xto_nm:5. ~vgs_range:(-17., -8.) ~points:10
  in
  let j_prog_17 = snd prog.(9) in
  let j_erase_m17 = snd erase.(0) in
  check_close ~tol:1e-9 "polarity symmetry" j_prog_17 j_erase_m17

let prop_sweep_ordered_by_gcr =
  prop "higher GCR always carries more current" ~count:30
    QCheck2.Gen.(pair (float_range 0.3 0.65) (float_range 0.02 0.2))
    (fun (gcr, dg) ->
       let final gcr =
         let pts =
           Fig.jv_sweep_gcr ~polarity:`Program ~gcr ~xto_nm:5. ~vgs_range:(10., 17.)
             ~points:5
         in
         snd pts.(4)
       in
       final (gcr +. dg) > final gcr)

let prop_sweep_ordered_by_xto =
  prop "thinner tunnel oxide always carries more current" ~count:30
    QCheck2.Gen.(pair (float_range 4. 9.) (float_range 0.3 2.))
    (fun (xto, dx) ->
       let final xto_nm =
         let pts =
           Fig.jv_sweep_gcr ~polarity:`Program ~gcr:0.6 ~xto_nm ~vgs_range:(10., 17.)
             ~points:5
         in
         snd pts.(4)
       in
       final xto > final (xto +. dx))

let () =
  Alcotest.run "figures"
    [
      ( "figures",
        [
          case "fig2 band diagram" test_fig2_band_profiles;
          case "fig4 initial currents" test_fig4_ratio;
          case "fig5 transient convergence" test_fig5_convergence;
          case "fig5 tsat golden" test_fig5_tsat_golden;
          case "fig6 GCR families" test_fig6_families;
          case "fig7 thickness blow-up" test_fig7_thickness_blowup;
          case "fig8 erase polarity" test_fig8_erase_polarity;
          case "fig9 erase thickness" test_fig9_erase_thickness;
          case "all figures generate" test_all_figures_generate;
          case "program/erase symmetry" test_jv_sweep_program_erase_symmetry;
          prop_sweep_ordered_by_gcr;
          prop_sweep_ordered_by_xto;
        ] );
    ]
