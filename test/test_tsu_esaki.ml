module Ts = Gnrflash_quantum.Tsu_esaki
module Fn = Gnrflash_quantum.Fn
module C = Gnrflash_physics.Constants
open Gnrflash_testing.Testing

let ev = C.ev
let phi_b = 3.2 *. ev
let m_b = 0.42 *. C.m0
let ef = 0.1 *. ev

let j model field =
  Ts.current_density ~model ~phi_b ~field ~thickness:5e-9 ~m_b ~ef ()

let test_zero_field () =
  check_close "no field no current" 0. (j Ts.Wkb_model 0.)

let test_positive_and_finite () =
  let v = j Ts.Wkb_model 1.2e9 in
  check_true "positive" (v > 0.);
  check_true "finite" (Float.is_finite v)

let test_monotone_in_field () =
  let j1 = j Ts.Wkb_model 1.0e9 and j2 = j Ts.Wkb_model 1.4e9 in
  check_true "monotone" (j2 > j1)

let test_same_order_as_closed_form () =
  (* at high field the Tsu-Esaki/WKB integral should land within ~2 decades
     of the Lenzlinger-Snow closed form (different supply treatments) *)
  let field = 1.5e9 in
  let p = Fn.coefficients ~phi_b_ev:3.2 ~m_ox_rel:0.42 in
  let j_fn = Fn.current_density p ~field in
  let j_ts = j Ts.Wkb_model field in
  let decades = abs_float (log10 (j_ts /. j_fn)) in
  check_true "within 2 decades" (decades < 2.)

let test_models_agree_on_exponent () =
  let field = 1.4e9 in
  let j_wkb = j Ts.Wkb_model field in
  let j_airy = j Ts.Exact_airy field in
  let ratio = abs_float (log10 (j_wkb /. j_airy)) in
  check_true "wkb vs airy within 1.5 decades" (ratio < 1.5)

let test_temperature_dependence_weak () =
  (* FN tunneling is nearly temperature independent *)
  let j300 = Ts.current_density ~temp:300. ~phi_b ~field:1.4e9 ~thickness:5e-9 ~m_b ~ef () in
  let j350 = Ts.current_density ~temp:350. ~phi_b ~field:1.4e9 ~thickness:5e-9 ~m_b ~ef () in
  check_in "weak T dependence" ~lo:0.5 ~hi:2.0 (j350 /. j300)

let test_compare_models_rows () =
  let rows = Ts.compare_models ~phi_b ~field:1.4e9 ~thickness:5e-9 ~m_b ~ef () in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  List.iter
    (fun (name, v) ->
       check_true (name ^ " positive") (v > 0.);
       check_true (name ^ " finite") (Float.is_finite v))
    rows

let prop_monotone =
  prop "Tsu-Esaki monotone in field" ~count:10
    QCheck2.Gen.(float_range 1.0e9 1.8e9)
    (fun field -> j Ts.Wkb_model (field *. 1.1) > j Ts.Wkb_model field)

(* The memoized WKB transmission must be a pure acceleration: cached and
   uncached paths run the same closed-form arithmetic, so the current is
   bit-for-bit identical across a random (barrier, bias) grid — not merely
   close. *)
let prop_wkb_cache_bit_identity =
  prop "WKB cache bit-identical to uncached" ~count:25
    QCheck2.Gen.(
      triple (float_range 2.5 3.5) (float_range 0.5e9 1.8e9)
        (float_range 3e-9 9e-9))
    (fun (phi_ev, field, thickness) ->
       let phi_b = phi_ev *. ev in
       let jc =
         Ts.current_density ~wkb_cache:true ~phi_b ~field ~thickness ~m_b ~ef ()
       in
       let ju =
         Ts.current_density ~wkb_cache:false ~phi_b ~field ~thickness ~m_b ~ef ()
       in
       Int64.equal (Int64.bits_of_float jc) (Int64.bits_of_float ju))

let test_wkb_cache_bit_identity () =
  (* deterministic spot check at the paper's operating point, on top of the
     random grid above *)
  let jc = Ts.current_density ~wkb_cache:true ~phi_b ~field:1.2e9 ~thickness:5e-9 ~m_b ~ef () in
  let ju = Ts.current_density ~wkb_cache:false ~phi_b ~field:1.2e9 ~thickness:5e-9 ~m_b ~ef () in
  check_true "bit-identical at 1.2 GV/m"
    (Int64.equal (Int64.bits_of_float jc) (Int64.bits_of_float ju))

let test_wkb_cache_counters () =
  let module Tel = Gnrflash_telemetry.Telemetry in
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:(fun () -> Tel.disable (); Tel.reset ()) @@ fun () ->
  ignore (j Ts.Wkb_model 1.2e9);
  Alcotest.(check int) "one cache build per current_density call" 1
    (Tel.counter_total "wkb/cache_build");
  let hits = Tel.counter_total "wkb/cache_hit" in
  let quad_evals = Tel.counter_total "quad/fn_eval" in
  check_true "cache consulted at every quadrature node" (hits > 0);
  Alcotest.(check int) "one transmission lookup per quadrature node"
    quad_evals hits;
  Tel.reset ();
  ignore (Ts.current_density ~wkb_cache:false ~phi_b ~field:1.2e9 ~thickness:5e-9 ~m_b ~ef ());
  Alcotest.(check int) "flag off: no builds" 0 (Tel.counter_total "wkb/cache_build");
  Alcotest.(check int) "flag off: no hits" 0 (Tel.counter_total "wkb/cache_hit")

let () =
  Alcotest.run "tsu_esaki"
    [
      ( "tsu_esaki",
        [
          case "zero field" test_zero_field;
          case "WKB cache bit-identity" test_wkb_cache_bit_identity;
          case "WKB cache counters" test_wkb_cache_counters;
          case "positive and finite" test_positive_and_finite;
          case "monotone in field" test_monotone_in_field;
          case "order of closed form" test_same_order_as_closed_form;
          case "models agree" test_models_agree_on_exponent;
          case "weak temperature dependence" test_temperature_dependence_weak;
          case "compare_models rows" test_compare_models_rows;
          prop_monotone;
          prop_wkb_cache_bit_identity;
        ] );
    ]
