module T = Gnrflash_telemetry.Telemetry
open Gnrflash_testing.Testing

(* Each case owns the global telemetry state for its duration. *)
let fresh () =
  T.reset ();
  T.enable ()

let teardown () =
  T.disable ();
  T.reset ()

let with_fresh f () =
  fresh ();
  Fun.protect ~finally:teardown f

let test_counter_basics () =
  T.count "a";
  T.count "a";
  T.count ~n:5 "a";
  T.count "b";
  Alcotest.(check int) "a accumulates" 7 (T.counter "a");
  Alcotest.(check int) "b independent" 1 (T.counter "b");
  Alcotest.(check int) "absent is zero" 0 (T.counter "missing")

let test_counters_monotonic () =
  let prev = ref 0 in
  for _ = 1 to 100 do
    T.count "mono";
    let v = T.counter "mono" in
    check_true "counter strictly increases" (v > !prev);
    prev := v
  done;
  (* non-positive increments are ignored rather than allowed to decrease *)
  T.count ~n:0 "mono";
  T.count ~n:(-3) "mono";
  Alcotest.(check int) "never decreases" 100 (T.counter "mono")

let test_spans_nest () =
  let r =
    T.span "outer" (fun () ->
        T.count "top";
        T.span "inner" (fun () ->
            T.count "deep";
            42))
  in
  Alcotest.(check int) "span returns value" 42 r;
  Alcotest.(check int) "outer-scoped counter" 1 (T.counter "outer/top");
  Alcotest.(check int) "nested counter fully scoped" 1 (T.counter "outer/inner/deep");
  check_true "outer span recorded" (T.span_stat "outer" <> None);
  check_true "nested span keyed by path" (T.span_stat "outer/inner" <> None);
  (* context popped: counting after the spans is unscoped again *)
  T.count "after";
  Alcotest.(check int) "context restored" 1 (T.counter "after")

let test_span_pops_context_on_exception () =
  (try T.span "boom" (fun () -> failwith "inner failure") with Failure _ -> ());
  T.count "after_raise";
  Alcotest.(check int) "context restored after raise" 1 (T.counter "after_raise");
  match T.span_stat "boom" with
  | None -> Alcotest.fail "span must be recorded even when f raises"
  | Some s -> Alcotest.(check int) "one call" 1 s.T.calls

let test_counter_total_suffix_sum () =
  T.count ~n:2 "ode/rhs_eval";
  T.span "transient/run" (fun () -> T.count ~n:3 "ode/rhs_eval");
  T.span "other" (fun () -> T.count ~n:4 "ode/rhs_eval");
  Alcotest.(check int) "exact path" 2 (T.counter "ode/rhs_eval");
  Alcotest.(check int) "suffix sum over scopes" 9 (T.counter_total "ode/rhs_eval");
  (* a counter that merely shares a substring must not match *)
  T.count "xode/rhs_eval_extra";
  Alcotest.(check int) "no substring matches" 9 (T.counter_total "ode/rhs_eval")

let test_gauges () =
  T.gauge "h_last" 1.5e-7;
  T.gauge "h_last" 2.5e-7;
  let snap = T.snapshot () in
  Alcotest.(check (list (pair string (float 0.)))) "gauge keeps last value"
    [ ("h_last", 2.5e-7) ] snap.T.gauges

let test_disabled_is_noop () =
  T.disable ();
  T.count "never";
  T.gauge "never_g" 1.;
  let r = T.span "never_span" (fun () -> T.count "inside"; 7) in
  Alcotest.(check int) "span still transparent" 7 r;
  let snap = T.snapshot () in
  check_true "no counters" (snap.T.counters = []);
  check_true "no gauges" (snap.T.gauges = []);
  check_true "no spans" (snap.T.spans = [])

let test_snapshot_sorted () =
  T.count "zz";
  T.count "aa";
  T.count "mm";
  let snap = T.snapshot () in
  let names = List.map fst snap.T.counters in
  Alcotest.(check (list string)) "sorted" [ "aa"; "mm"; "zz" ] names

let test_json_round_trip () =
  T.count ~n:17 "ode/step_accepted";
  T.span "transient/run" (fun () ->
      T.count ~n:123456 "ode/rhs_eval";
      T.gauge "h_final" 3.0517578125e-05;
      ignore (T.span "lookup/build" (fun () -> ())));
  T.gauge "weird \"name\"\n" (-1.25e-300);
  let snap = T.snapshot () in
  let json = T.render_json snap in
  match T.snapshot_of_json json with
  | Error e -> Alcotest.fail e
  | Ok back ->
    Alcotest.(check (list (pair string int))) "counters round-trip"
      snap.T.counters back.T.counters;
    Alcotest.(check (list (pair string (float 0.)))) "gauges round-trip"
      snap.T.gauges back.T.gauges;
    List.iter2
      (fun (k1, (s1 : T.span_stat)) (k2, s2) ->
         Alcotest.(check string) "span name" k1 k2;
         Alcotest.(check int) "span calls" s1.T.calls s2.T.calls;
         check_abs ~tol:0. "span total_s exact" s1.T.total_s s2.T.total_s)
      snap.T.spans back.T.spans

let test_json_rejects_garbage () =
  check_error "not json" (T.snapshot_of_json "hello");
  check_error "truncated" (T.snapshot_of_json "{\"counters\":{");
  check_error "missing fields" (T.snapshot_of_json "{\"counters\":{}}")

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_text_render () =
  T.count ~n:3 "a/b";
  T.gauge "g" 2.5;
  ignore (T.span "s" (fun () -> ()));
  let text = T.render_text (T.snapshot ()) in
  List.iter
    (fun needle ->
       check_true (Printf.sprintf "text mentions %s" needle) (contains ~needle text))
    [ "a/b"; "3"; "g"; "2.5"; "s"; "calls" ]

let test_reset_clears () =
  T.count "x";
  ignore (T.span "y" (fun () -> T.gauge "z" 1.));
  T.reset ();
  let snap = T.snapshot () in
  check_true "reset clears everything"
    (snap.T.counters = [] && snap.T.gauges = [] && snap.T.spans = [])

let prop_counter_equals_sum_of_increments =
  prop "counter equals the sum of its positive increments" ~count:100
    QCheck2.Gen.(small_list (int_range (-5) 20))
    (fun ns ->
       fresh ();
       List.iter (fun n -> T.count ~n "p") ns;
       let expect = List.fold_left (fun acc n -> if n > 0 then acc + n else acc) 0 ns in
       let got = T.counter "p" in
       teardown ();
       got = expect)

let () =
  Alcotest.run "telemetry"
    [
      ( "telemetry",
        [
          case "counter basics" (with_fresh test_counter_basics);
          case "counters monotonic" (with_fresh test_counters_monotonic);
          case "spans nest" (with_fresh test_spans_nest);
          case "span pops context on exception"
            (with_fresh test_span_pops_context_on_exception);
          case "counter_total suffix sum" (with_fresh test_counter_total_suffix_sum);
          case "gauges" (with_fresh test_gauges);
          case "disabled is a no-op" (with_fresh test_disabled_is_noop);
          case "snapshot sorted" (with_fresh test_snapshot_sorted);
          case "json round-trip" (with_fresh test_json_round_trip);
          case "json rejects garbage" (with_fresh test_json_rejects_garbage);
          case "text render" (with_fresh test_text_render);
          case "reset clears" (with_fresh test_reset_clears);
          prop_counter_equals_sum_of_increments;
        ] );
    ]
