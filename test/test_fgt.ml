module F = Gnrflash_device.Fgt
module Cap = Gnrflash_device.Capacitance
open Gnrflash_testing.Testing

let t = F.paper_default

let test_paper_defaults () =
  check_close ~tol:1e-9 "GCR" 0.6 (F.gcr t);
  check_close "XTO" 5e-9 t.F.xto;
  check_close "XCO" 10e-9 t.F.xco;
  check_close "barrier" 3.2 t.F.tunnel_fn.Gnrflash_quantum.Fn.phi_b_ev

let test_worked_example_vfg () =
  (* the paper: VGS = 15 V, GCR = 0.6, QFG = 0 -> VFG = 9 V *)
  check_close ~tol:1e-9 "VFG = 9 V" 9. (F.vfg t ~vgs:15. ~qfg:0.)

let test_vfg_with_charge () =
  (* equation (3): negative charge lowers VFG by Q/CT *)
  let q = -2e-18 in
  check_close ~tol:1e-9 "charge term" (9. +. (q /. F.ct t)) (F.vfg t ~vgs:15. ~qfg:q)

let test_fields_at_t0 () =
  (* tunnel field 9V/5nm = 18 MV/cm; control field 6V/10nm = 6 MV/cm *)
  check_close ~tol:1e-9 "tunnel field" 1.8e9 (F.tunnel_field t ~vgs:15. ~qfg:0.);
  check_close ~tol:1e-9 "control field" 6e8 (F.control_field t ~vgs:15. ~qfg:0.)

let test_jin_dominates_at_start () =
  let ji = F.j_in t ~vgs:15. ~qfg:0. and jo = F.j_out t ~vgs:15. ~qfg:0. in
  check_true "Jin huge" (ji > 1e6);
  check_true "Jout tiny" (jo < 1e-5);
  check_true "paper's Fig 4 ordering" (ji /. jo > 1e10)

let test_erase_mirror () =
  (* at VGS = -15 V with no charge, electrons leave the FG: j_out > 0 *)
  let ji = F.j_in t ~vgs:(-15.) ~qfg:0. and jo = F.j_out t ~vgs:(-15.) ~qfg:0. in
  check_true "erase extracts" (jo > 1e6);
  check_true "negligible injection" (ji < jo /. 1e10)

let test_dqfg_sign () =
  check_true "programming charges negative" (F.dqfg_dt t ~vgs:15. ~qfg:0. < 0.);
  check_true "erase charges positive" (F.dqfg_dt t ~vgs:(-15.) ~qfg:0. > 0.)

let test_threshold_shift () =
  let q = -3e-18 in
  check_close ~tol:1e-12 "dVT = -Q/CFC" (-.q /. t.F.caps.Cap.cfc)
    (F.threshold_shift t ~qfg:q);
  check_true "programming raises VT" (F.threshold_shift t ~qfg:q > 0.)

let test_threshold_inverse () =
  let dvt = 2.5 in
  let q = F.qfg_for_threshold_shift t ~dvt in
  check_close ~tol:1e-12 "roundtrip" dvt (F.threshold_shift t ~qfg:q)

let test_with_gcr () =
  let t2 = F.with_gcr t 0.45 in
  check_close ~tol:1e-9 "new gcr" 0.45 (F.gcr t2);
  check_close ~tol:1e-9 "cfc unchanged" t.F.caps.Cap.cfc t2.F.caps.Cap.cfc;
  check_close ~tol:1e-9 "lower vfg" (0.45 *. 15.) (F.vfg t2 ~vgs:15. ~qfg:0.)

let test_with_xto () =
  let t2 = F.with_xto t 7e-9 in
  check_close "thicker oxide" 7e-9 t2.F.xto;
  check_true "lower field" (F.tunnel_field t2 ~vgs:15. ~qfg:0. < F.tunnel_field t ~vgs:15. ~qfg:0.)

let test_make_validation () =
  Alcotest.check_raises "control thinner than tunnel"
    (Invalid_argument "Fgt.make: control oxide thinner than tunnel oxide") (fun () ->
      ignore (F.make ~gcr:0.6 ~xto:10e-9 ~xco:5e-9 ~area:1e-15 ()))

let test_source_bias () =
  let t2 = F.make ~vs:0.05 ~gcr:0.6 ~xto:5e-9 ~xco:10e-9 ~area:1e-15 () in
  check_true "source bias lowers tunnel field"
    (F.tunnel_field t2 ~vgs:15. ~qfg:0. < F.tunnel_field t ~vgs:15. ~qfg:0.)

let prop_vfg_linear_in_vgs =
  prop "VFG linear in VGS at fixed charge" QCheck2.Gen.(float_range (-20.) 20.)
    (fun vgs ->
       let direct = F.vfg t ~vgs ~qfg:0. in
       abs_float (direct -. (0.6 *. vgs)) < 1e-9)

let prop_currents_nonnegative =
  prop "j_in and j_out are non-negative fluxes"
    QCheck2.Gen.(pair (float_range (-20.) 20.) (float_range (-5e-17) 5e-17))
    (fun (vgs, qfg) ->
       F.j_in t ~vgs ~qfg >= 0. && F.j_out t ~vgs ~qfg >= 0.)

let test_control_oxide_decoupled () =
  (* regression: the control-gate stack must come from the control oxide.
     Same geometry with a high-k Al2O3 blocking dielectric: at (vgs, qfg=0)
     the floating-gate potential GCR*VGS and both fields are unchanged, so
     the channel-side injection j_in is bit-identical, while the blocking
     barrier (gate/Al2O3 interface) changes j_out. *)
  let geometry = (0.6, 5e-9, 10e-9, 32e-9 *. 32e-9) in
  let build ?control_oxide () =
    let gcr, xto, xco, area = geometry in
    F.make ?control_oxide ~gcr ~xto ~xco ~area ()
  in
  let sio2 = build () in
  let hik = build ~control_oxide:Gnrflash_materials.Oxide.al2o3 () in
  check_close ~tol:1e-12 "tunnel barrier unchanged"
    sio2.F.tunnel_fn.Gnrflash_quantum.Fn.phi_b_ev
    hik.F.tunnel_fn.Gnrflash_quantum.Fn.phi_b_ev;
  check_true "control barrier changed"
    (sio2.F.control_fn.Gnrflash_quantum.Fn.phi_b_ev
     <> hik.F.control_fn.Gnrflash_quantum.Fn.phi_b_ev);
  check_true "high-k raises CFC"
    (hik.F.caps.Cap.cfc > sio2.F.caps.Cap.cfc);
  (* at a truly fixed field the tunnel current is bit-identical... *)
  let e_fix = 1.2e9 in
  check_abs ~tol:0. "tunnel J identical at fixed field"
    (Gnrflash_quantum.Fn.current_density sio2.F.tunnel_fn ~field:e_fix)
    (Gnrflash_quantum.Fn.current_density hik.F.tunnel_fn ~field:e_fix);
  (* ...and at fixed bias j_in agrees to rounding (gcr is re-derived from
     the capacitor network, so the field carries an ulp of cfc) *)
  check_close ~tol:1e-9 "j_in unchanged at fixed bias"
    (F.j_in sio2 ~vgs:15. ~qfg:0.) (F.j_in hik ~vgs:15. ~qfg:0.);
  (* erase polarity from a 0 V gate: extraction runs through the blocking
     stack, whose FN coefficients now differ *)
  let jo_sio2 = F.j_out sio2 ~vgs:15. ~qfg:0. in
  let jo_hik = F.j_out hik ~vgs:15. ~qfg:0. in
  check_true "j_out responds to the control oxide" (jo_sio2 <> jo_hik);
  (* default control oxide keeps the seed behavior exactly *)
  check_abs ~tol:0. "default degenerates to tunnel oxide"
    (F.j_out sio2 ~vgs:15. ~qfg:0.) (F.j_out t ~vgs:15. ~qfg:0.)

let () =
  Alcotest.run "fgt"
    [
      ( "fgt",
        [
          case "paper defaults" test_paper_defaults;
          case "worked example VFG = 9 V" test_worked_example_vfg;
          case "equation (3) charge term" test_vfg_with_charge;
          case "fields at t = 0" test_fields_at_t0;
          case "Jin >> Jout (Fig 4)" test_jin_dominates_at_start;
          case "erase mirror" test_erase_mirror;
          case "charging sign" test_dqfg_sign;
          case "threshold shift" test_threshold_shift;
          case "threshold inverse" test_threshold_inverse;
          case "with_gcr" test_with_gcr;
          case "with_xto" test_with_xto;
          case "make validation" test_make_validation;
          case "source bias" test_source_bias;
          case "control oxide decoupled" test_control_oxide_decoupled;
          prop_vfg_linear_in_vgs;
          prop_currents_nonnegative;
        ] );
    ]
