module Q = Gnrflash_numerics.Quadrature
open Gnrflash_testing.Testing

let test_trapezoid_linear () =
  check_close "∫x over [0,1]" 0.5 (Q.trapezoid (fun x -> x) 0. 1. ~n:3)

let test_trapezoid_samples () =
  let xs = [| 0.; 1.; 3. |] and ys = [| 0.; 2.; 2. |] in
  check_close "piecewise area" 5. (Q.trapezoid_samples xs ys)

let test_simpson_cubic_exact () =
  (* Simpson is exact for cubics *)
  check_close "∫x^3 over [0,2]" 4. (Q.simpson (fun x -> x ** 3.) 0. 2. ~n:2)

let test_simpson_sin () =
  check_close ~tol:1e-8 "∫sin over [0,pi]" 2. (Q.simpson sin 0. Float.pi ~n:200)

let test_adaptive_simpson_exp () =
  check_close ~tol:1e-9 "∫e^x over [0,1]" (exp 1. -. 1.)
    (Q.adaptive_simpson exp 0. 1.)

let test_adaptive_simpson_peak () =
  (* sharply peaked integrand: 1/(1e-4 + x^2) on [-1,1] *)
  let f x = 1. /. (1e-4 +. (x *. x)) in
  let exact = 2. /. 1e-2 *. atan (1. /. 1e-2) in
  check_close ~tol:1e-7 "peaked integrand" exact (Q.adaptive_simpson ~tol:1e-12 f (-1.) 1.)

let test_gauss_legendre_poly () =
  (* order n integrates degree 2n-1 exactly: order 5 handles x^9 *)
  let f x = x ** 9. in
  check_close ~tol:1e-12 "∫x^9 over [0,1]" 0.1 (Q.gauss_legendre ~order:5 f 0. 1.)

let test_adaptive_simpson_budget_exhaustion () =
  (* quadrature cannot return a result mid-recursion, so a starved budget
     surfaces as the typed Solver_failure exception rather than a hang *)
  let module B = Gnrflash_resilience.Budget in
  let module E = Gnrflash_resilience.Solver_error in
  let b = B.make ~max_evals:2 () in
  B.with_budget b (fun () ->
      match Q.adaptive_simpson exp 0. 1. with
      | _ -> Alcotest.fail "starved integration must not complete"
      | exception E.Solver_failure e ->
        Alcotest.(check string) "typed budget error" "budget_exhausted"
          (E.label e);
        Alcotest.(check string) "solver attributed"
          "Quadrature.adaptive_simpson" e.E.solver)

let test_gauss_legendre_nodes_symmetry () =
  let nodes, weights = Q.gauss_legendre_nodes 8 in
  for i = 0 to 3 do
    check_close ~tol:1e-12 "node symmetry" (-.nodes.(i)) nodes.(7 - i);
    check_close ~tol:1e-12 "weight symmetry" weights.(i) weights.(7 - i)
  done;
  let total = Array.fold_left ( +. ) 0. weights in
  check_close ~tol:1e-12 "weights sum to 2" 2. total

let test_gauss_legendre_gaussian () =
  let f x = exp (-.(x *. x)) in
  let erf1 = 0.842700792949715 *. sqrt Float.pi /. 1. in
  (* ∫_{-1}^{1} e^{-x^2} = sqrt(pi) erf(1) *)
  check_close ~tol:1e-10 "gaussian" erf1 (Q.gauss_legendre ~order:24 f (-1.) 1.)

let test_integrate_to_inf () =
  check_close ~tol:1e-8 "∫e^{-x} over [0,inf)" 1.
    (Q.integrate_to_inf (fun x -> exp (-.x)) 0.)

let test_integrate_to_inf_shifted () =
  check_close ~tol:1e-8 "∫e^{-x} over [2,inf)" (exp (-2.))
    (Q.integrate_to_inf (fun x -> exp (-.x)) 2.)

let prop_simpson_matches_adaptive =
  prop "composite vs adaptive on smooth f" QCheck2.Gen.(float_range 0.5 3.)
    (fun b ->
       let f x = sin (x *. x) in
       let a = Q.simpson f 0. b ~n:2000 in
       let c = Q.adaptive_simpson ~tol:1e-11 f 0. b in
       abs_float (a -. c) < 1e-6)

let prop_gl_linear_exact =
  prop "gauss-legendre exact on affine"
    QCheck2.Gen.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (m, c) ->
       let f x = (m *. x) +. c in
       let exact = (m /. 2. *. ((3. ** 2.) -. 1.)) +. (c *. 2.) in
       abs_float (Q.gauss_legendre ~order:4 f 1. 3. -. exact) < 1e-9 *. (1. +. abs_float exact))

let () =
  Alcotest.run "quadrature"
    [
      ( "quadrature",
        [
          case "trapezoid linear" test_trapezoid_linear;
          case "trapezoid samples" test_trapezoid_samples;
          case "simpson cubic exact" test_simpson_cubic_exact;
          case "simpson sin" test_simpson_sin;
          case "adaptive exp" test_adaptive_simpson_exp;
          case "adaptive peaked" test_adaptive_simpson_peak;
          case "adaptive budget exhaustion" test_adaptive_simpson_budget_exhaustion;
          case "gauss-legendre degree 9" test_gauss_legendre_poly;
          case "gauss-legendre node symmetry" test_gauss_legendre_nodes_symmetry;
          case "gauss-legendre gaussian" test_gauss_legendre_gaussian;
          case "semi-infinite exp" test_integrate_to_inf;
          case "semi-infinite shifted" test_integrate_to_inf_shifted;
          prop_simpson_matches_adaptive;
          prop_gl_linear_exact;
        ] );
    ]
