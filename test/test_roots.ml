module R = Gnrflash_numerics.Roots
open Gnrflash_testing.Testing

(* the numerics/device solvers under test return typed solver errors *)
let check_ok msg r = check_sok msg r
let check_error msg r = ignore (check_serr msg r)

let cubic x = (x *. x *. x) -. (2. *. x) -. 5.
(* real root near 2.0945514815423265 *)
let cubic_root = 2.0945514815423265

let test_bisect_cubic () =
  let x = check_ok "bisect" (R.bisect cubic 1. 3.) in
  check_close ~tol:1e-10 "cubic root" cubic_root x

let test_bisect_exact_endpoint () =
  let x = check_ok "bisect" (R.bisect (fun x -> x) 0. 5.) in
  check_close "root at endpoint" 0. x

let test_bisect_no_sign_change () =
  check_error "no bracket" (R.bisect (fun x -> (x *. x) +. 1.) (-1.) 1.)

let test_brent_cubic () =
  let x = check_ok "brent" (R.brent cubic 1. 3.) in
  check_close ~tol:1e-12 "cubic root" cubic_root x

let test_brent_cos () =
  let x = check_ok "brent" (R.brent cos 1. 2.) in
  check_close ~tol:1e-12 "pi/2" (Float.pi /. 2.) x

let test_brent_tiny_root () =
  (* magnitude ~1e-17: regression test for the absolute-floor bug that made
     the device-charge root finding return bracket endpoints *)
  let f x = x -. 3.2e-17 in
  let x = check_ok "brent tiny" (R.brent f 0. 1e-16) in
  check_close ~tol:1e-9 "tiny root" 3.2e-17 x

let test_newton () =
  let x =
    check_ok "newton"
      (R.newton ~f:(fun x -> (x *. x) -. 2.) ~df:(fun x -> 2. *. x) 1.)
  in
  check_close ~tol:1e-12 "sqrt2" (sqrt 2.) x

let test_newton_zero_derivative () =
  check_error "flat" (R.newton ~f:(fun x -> (x *. x) +. 1.) ~df:(fun _ -> 0.) 0.)

let test_secant () =
  let x = check_ok "secant" (R.secant (fun x -> exp x -. 3.) 0. 2.) in
  check_close ~tol:1e-10 "ln3" (log 3.) x

let test_bracket_root () =
  let lo, hi = check_ok "bracket" (R.bracket_root cubic 0. 0.5) in
  check_true "sign change" (cubic lo *. cubic hi <= 0.)

let test_bracket_root_fails () =
  check_error "no root anywhere"
    (R.bracket_root (fun x -> (x *. x) +. 1.) 0. 1.)

let test_brent_max_iter_unconverged () =
  (* regression: exhausting max_iter used to silently return the current
     iterate as Ok; it must be a typed No_convergence carrying the best
     iterate instead *)
  let module E = Gnrflash_resilience.Solver_error in
  let e = check_serr "unconverged" (R.brent ~max_iter:2 cubic 1. 3.) in
  match e.E.kind with
  | E.No_convergence { iterations; best; f_best } ->
    Alcotest.(check int) "stopped at the cap" 2 iterations;
    check_in "best iterate stayed in the bracket" ~lo:1. ~hi:3. best;
    check_close ~tol:1e-9 "residual attached" (cubic best) f_best
  | _ -> Alcotest.failf "expected No_convergence, got %s" (E.to_string e)

let test_brent_budget_exhausted () =
  let module B = Gnrflash_resilience.Budget in
  let module E = Gnrflash_resilience.Solver_error in
  let b = B.make ~max_evals:1 () in
  let e =
    B.with_budget b (fun () -> check_serr "budget" (R.brent cubic 1. 3.))
  in
  Alcotest.(check string) "typed budget error" "budget_exhausted" (E.label e)

let prop_brent_finds_linear_roots =
  prop "brent solves a(x - r) = 0"
    QCheck2.Gen.(pair (float_range (-50.) 50.) (float_range 0.1 10.))
    (fun (r, a) ->
       match R.brent (fun x -> a *. (x -. r)) (r -. 7.) (r +. 13.) with
       | Ok x -> abs_float (x -. r) <= 1e-7 *. (1. +. abs_float r)
       | Error _ -> false)

let prop_newton_quadratic =
  prop "newton solves x^2 = c" QCheck2.Gen.(float_range 0.1 1000.) (fun c ->
      match R.newton ~f:(fun x -> (x *. x) -. c) ~df:(fun x -> 2. *. x) (c +. 1.) with
      | Ok x -> abs_float (x -. sqrt c) <= 1e-6 *. sqrt c
      | Error _ -> false)

let test_secant_flat_function () =
  (* regression for the lint L2 pass: the f1 = f0 guard now uses
     Float.equal and must still catch a flat secant step *)
  let module E = Gnrflash_resilience.Solver_error in
  match R.secant (fun _ -> 1.) 0. 1. with
  | Error e ->
    check_true "zero derivative reported"
      (match e.E.kind with E.Zero_derivative _ -> true | _ -> false)
  | Ok _ -> Alcotest.fail "expected Zero_derivative on a flat function"

let () =
  Alcotest.run "roots"
    [
      ( "roots",
        [
          case "bisect cubic" test_bisect_cubic;
          case "bisect endpoint root" test_bisect_exact_endpoint;
          case "secant flat function" test_secant_flat_function;
          case "bisect needs sign change" test_bisect_no_sign_change;
          case "brent cubic" test_brent_cubic;
          case "brent cos" test_brent_cos;
          case "brent tiny-magnitude root" test_brent_tiny_root;
          case "newton sqrt2" test_newton;
          case "newton zero derivative" test_newton_zero_derivative;
          case "secant ln3" test_secant;
          case "bracket_root expands" test_bracket_root;
          case "bracket_root fails cleanly" test_bracket_root_fails;
          case "brent max_iter is No_convergence" test_brent_max_iter_unconverged;
          case "brent honors the eval budget" test_brent_budget_exhausted;
          prop_brent_finds_linear_roots;
          prop_newton_quadratic;
        ] );
    ]
