let check_close ?(tol = 1e-9) msg expected actual =
  let scale = if expected = 0. then 1. else abs_float expected in
  if not (abs_float (expected -. actual) <= tol *. scale) then
    Alcotest.failf "%s: expected %.12g, got %.12g (rel tol %g)" msg expected actual tol

let check_abs ?(tol = 1e-12) msg expected actual =
  if not (abs_float (expected -. actual) <= tol) then
    Alcotest.failf "%s: expected %.12g, got %.12g (abs tol %g)" msg expected actual tol

let check_in msg ~lo ~hi v =
  if not (v >= lo && v <= hi) then
    Alcotest.failf "%s: %.12g not in [%.12g, %.12g]" msg v lo hi

let check_true msg b = Alcotest.(check bool) msg true b
let check_false msg b = Alcotest.(check bool) msg false b

let check_ok msg = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error: %s" msg e

let check_error msg = function
  | Ok _ -> Alcotest.failf "%s: expected an error" msg
  | Error _ -> ()

let check_ok_with to_string msg = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error: %s" msg (to_string e)

let check_sok msg = function
  | Ok v -> v
  | Error e ->
    Alcotest.failf "%s: unexpected error: %s" msg
      (Gnrflash_resilience.Solver_error.to_string e)

let check_serr msg = function
  | Ok _ -> Alcotest.failf "%s: expected an error" msg
  | Error (e : Gnrflash_resilience.Solver_error.t) -> e

let case name f = Alcotest.test_case name `Quick f

let prop ?(count = 200) name gen p =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen p)
