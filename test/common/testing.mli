(** Shared assertion helpers for the test suites. *)

val check_close : ?tol:float -> string -> float -> float -> unit
(** [check_close msg expected actual] asserts relative closeness (default
    tolerance [1e-9]); absolute when [expected = 0.]. *)

val check_abs : ?tol:float -> string -> float -> float -> unit
(** Absolute-difference assertion (default tolerance [1e-12]). *)

val check_in : string -> lo:float -> hi:float -> float -> unit
(** Assert [lo <= v <= hi]. *)

val check_true : string -> bool -> unit
val check_false : string -> bool -> unit

val check_ok : string -> ('a, string) result -> 'a
(** Unwrap an [Ok], failing the test with the carried message otherwise. *)

val check_error : string -> ('a, string) result -> unit
(** Assert the result is an [Error]. *)

val check_ok_with : ('e -> string) -> string -> ('a, 'e) result -> 'a
(** {!check_ok} for any typed error, rendered with the given printer. *)

val check_sok : string -> ('a, Gnrflash_resilience.Solver_error.t) result -> 'a
(** {!check_ok} for typed solver errors (renders via [Solver_error.to_string]). *)

val check_serr :
  string -> ('a, Gnrflash_resilience.Solver_error.t) result ->
  Gnrflash_resilience.Solver_error.t
(** Assert the result is an [Error] and return the typed error for further
    inspection of its [kind]. *)

val case : string -> (unit -> unit) -> unit Alcotest.test_case
(** Quick test case. *)

val prop :
  ?count:int -> string -> 'a QCheck2.Gen.t -> ('a -> bool) -> unit Alcotest.test_case
(** Property-based case via qcheck-alcotest. *)
