module Tr = Gnrflash_device.Transient
module F = Gnrflash_device.Fgt
module Tel = Gnrflash_telemetry.Telemetry
open Gnrflash_testing.Testing

(* the numerics/device solvers under test return typed solver errors *)
let check_ok msg r = check_sok msg r
let check_error msg r = ignore (check_serr msg r)

let t = F.paper_default

let run_program () =
  check_ok "transient" (Tr.run t ~vgs:15. ~duration:10.)

let test_initial_currents () =
  let ji, jo = Tr.initial_currents t ~vgs:15. ~qfg:0. in
  check_close ~tol:1e-3 "Jin at t=0" 2.8568e6 ji;
  check_true "Jout negligible" (jo < 1e-5)

let test_jin_monotone_decreasing () =
  let r = run_program () in
  let samples = r.Tr.samples in
  for i = 0 to Array.length samples - 2 do
    check_true "Jin decreasing" (samples.(i + 1).Tr.j_in <= samples.(i).Tr.j_in +. 1e-9)
  done

let test_jout_monotone_increasing () =
  let r = run_program () in
  let samples = r.Tr.samples in
  for i = 0 to Array.length samples - 2 do
    check_true "Jout increasing" (samples.(i + 1).Tr.j_out >= samples.(i).Tr.j_out -. 1e-9)
  done

let test_vfg_relaxes_to_divider_point () =
  (* the fixed point Jin = Jout for identical interfaces: VFG/XTO = (VGS-VFG)/XCO
     -> VFG* = VGS XTO/(XTO+XCO) = 5 V *)
  let r = run_program () in
  let final = r.Tr.samples.(Array.length r.Tr.samples - 1) in
  check_close ~tol:5e-3 "VFG -> 5 V" 5. final.Tr.vfg

let test_tsat_reached () =
  let r = run_program () in
  match r.Tr.tsat with
  | None -> Alcotest.fail "saturation not reached"
  | Some ts ->
    check_in "tsat order of magnitude" ~lo:1e-6 ~hi:1e-1 ts

let test_charge_monotone () =
  let r = run_program () in
  let samples = r.Tr.samples in
  for i = 0 to Array.length samples - 2 do
    check_true "charge monotone negative" (samples.(i + 1).Tr.qfg <= samples.(i).Tr.qfg +. 1e-25)
  done;
  check_true "final negative" (r.Tr.qfg_final < 0.)

let test_dvt_positive_after_program () =
  let r = run_program () in
  check_in "threshold window" ~lo:5. ~hi:8. r.Tr.dvt_final

let test_erase_symmetry () =
  let rp = run_program () in
  let re = check_ok "erase" (Tr.run t ~vgs:(-15.) ~duration:10.) in
  (* identical interfaces: erase is the mirror image *)
  check_close ~tol:1e-3 "mirror charge" (-.rp.Tr.qfg_final) re.Tr.qfg_final;
  (match rp.Tr.tsat, re.Tr.tsat with
   | Some tp, Some te -> check_close ~tol:0.05 "mirror tsat" tp te
   | _ -> Alcotest.fail "both polarities must saturate")

let test_saturation_charge_matches_ode () =
  let q_root = check_ok "root" (Tr.saturation_charge t ~vgs:15.) in
  let r = run_program () in
  check_close ~tol:0.02 "ODE endpoint = fixed point" q_root r.Tr.qfg_final

let test_zero_bias_balanced () =
  let r = check_ok "zero bias" (Tr.run t ~vgs:0. ~duration:1.) in
  check_close "no charge motion" 0. r.Tr.qfg_final;
  check_true "trivially saturated" (r.Tr.tsat = Some 0.)

let test_duration_validation () =
  check_error "bad duration" (Tr.run t ~vgs:15. ~duration:0.)

let test_time_to_threshold () =
  let time =
    check_ok "ttts" (Tr.time_to_threshold_shift t ~vgs:15. ~dvt:2. ~max_time:1.)
  in
  match time with
  | None -> Alcotest.fail "2 V shift must be reachable"
  | Some ts ->
    check_in "nanosecond programming" ~lo:1e-10 ~hi:1e-6 ts;
    (* confirm by integrating exactly that long *)
    let r = check_ok "confirm" (Tr.run t ~vgs:15. ~duration:ts) in
    check_close ~tol:0.05 "dVT at that time" 2. r.Tr.dvt_final

let test_time_to_threshold_unreachable () =
  (* the bias can shift VT by at most ~6.7 V; 20 V is unreachable *)
  let time =
    check_ok "ttts" (Tr.time_to_threshold_shift t ~vgs:15. ~dvt:20. ~max_time:0.1)
  in
  check_true "unreachable" (time = None)

let test_higher_vgs_faster () =
  let time v =
    match check_ok "ttts" (Tr.time_to_threshold_shift t ~vgs:v ~dvt:1. ~max_time:1.) with
    | Some ts -> ts
    | None -> infinity
  in
  check_true "15 V faster than 12 V" (time 15. < time 12.)

(* Pin Fig 5's Jin = Jout crossing on a (vgs, GCR) grid: the ODE endpoint
   (adaptive RKF45 + imbalance event) must agree with the fixed point found
   by Brent's method on Jin - Jout — two independent solver paths. *)
let test_fixed_point_grid () =
  List.iter
    (fun gcr ->
       let t = F.with_gcr t gcr in
       List.iter
         (fun vgs ->
            let label = Printf.sprintf "vgs=%.1f gcr=%.2f" vgs gcr in
            let r = check_ok label (Tr.run t ~vgs ~duration:10.) in
            let q_star = check_ok label (Tr.saturation_charge t ~vgs) in
            check_true (label ^ ": saturated") (r.Tr.tsat <> None);
            check_close ~tol:0.02 (label ^ ": ODE endpoint = fixed point") q_star
              r.Tr.qfg_final)
         [ 12.; 15.; 17.; -12.; -15. ])
    [ 0.5; 0.6; 0.7 ]

(* Instrumentation correctness: the ODE telemetry must be consistent with the
   returned sample array. The FSAL DOPRI5(4) stepper appends exactly one
   sample per accepted step (the event step contributes the located crossing
   instead of t_new), and every trial step — accepted, rejected, or
   NaN-shrunk — costs exactly 6 RHS evaluations (stages k2..k7; k1 is the
   FSAL slope carried over from the previous step), plus one eval to seed the
   very first k1 and one re-seed after each NaN shrink (a poisoned cached
   slope must not be reused). Guards against double-counting regressions. *)
let test_instrumentation_consistency () =
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:(fun () -> Tel.disable (); Tel.reset ()) @@ fun () ->
  let r = check_ok "instrumented run" (Tr.run t ~vgs:15. ~duration:10.) in
  let accepted = Tel.counter_total "ode/step_accepted" in
  let rejected = Tel.counter_total "ode/step_rejected" in
  let nan_shrunk = Tel.counter_total "ode/step_nan_shrink" in
  let rhs = Tel.counter_total "ode/rhs_eval" in
  let trials = accepted + rejected + nan_shrunk in
  check_true "steps taken" (accepted > 0);
  check_true "rhs evaluated" (rhs > 0);
  Alcotest.(check int) "samples = accepted steps + initial state"
    (accepted + 1) (Array.length r.Tr.samples);
  Alcotest.(check int) "rhs evals = 6 per trial + FSAL seeds"
    ((6 * trials) + 1 + nan_shrunk) rhs;
  Alcotest.(check int) "one solve recorded" 1 (Tel.counter_total "transient/solve");
  Alcotest.(check int) "tsat event recorded" 1
    (Tel.counter_total "transient/tsat_event");
  (* scoped attribution: the ODE work is recorded under the transient span *)
  Alcotest.(check int) "attributed to transient/run"
    accepted (Tel.counter "transient/run/ode/step_accepted");
  (* a second identical run must add the same counts (no cross-run leakage) *)
  let _ = check_ok "second run" (Tr.run t ~vgs:15. ~duration:10.) in
  Alcotest.(check int) "counters additive across runs"
    (2 * accepted) (Tel.counter_total "ode/step_accepted")

let test_disabled_records_nothing () =
  Tel.reset ();
  check_false "disabled by default in tests" (Tel.is_enabled ());
  let _ = check_ok "uninstrumented run" (Tr.run t ~vgs:15. ~duration:1e-3) in
  check_true "no counters recorded" ((Tel.snapshot ()).Tel.counters = [])

let test_saturation_charge_erase_polarity () =
  (* regression: the single [0, 1.05 q*] bracket could miss the erase-side
     fixed point; for the symmetric paper device the erase fixed point must
     mirror the program one *)
  let q_prog = check_ok "program" (Tr.saturation_charge t ~vgs:15.) in
  let q_erase = check_ok "erase" (Tr.saturation_charge t ~vgs:(-15.)) in
  check_true "program stores electrons" (q_prog < 0.);
  check_close ~tol:1e-6 "erase mirrors program" (-.q_prog) q_erase

let test_saturation_charge_high_gcr () =
  List.iter
    (fun gcr ->
       let t = F.with_gcr t gcr in
       let label = Printf.sprintf "gcr=%.2f" gcr in
       let q = check_ok label (Tr.saturation_charge t ~vgs:15.) in
       let ji = F.j_in t ~vgs:15. ~qfg:q and jo = F.j_out t ~vgs:15. ~qfg:q in
       check_close ~tol:1e-3 (label ^ ": currents balance") ji jo)
    [ 0.3; 0.5; 0.8 ]

let test_fault_injected_run_recovers () =
  (* a single injected RHS failure kills the first ladder rung; the retry
     rung must rescue the solve and telemetry must record the fallback *)
  let module Fault = Gnrflash.Resilience.Fault in
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:(fun () -> Tel.disable (); Tel.reset ()) @@ fun () ->
  let clean = check_ok "reference" (Tr.run t ~vgs:15. ~duration:10.) in
  Alcotest.(check int) "nominal run needs no fallback" 0
    (Tel.counter_total "resilience/fallback_used");
  let faulted =
    Fault.with_faults ~seed:3 ~limit:1 (Fault.Fail_every 1) (fun () ->
        check_ok "faulted run recovers" (Tr.run t ~vgs:15. ~duration:10.))
  in
  check_true "fault actually fired"
    (Tel.counter_total "resilience/fault_injected" > 0);
  check_true "fallback rung rescued the solve"
    (Tel.counter_total "resilience/fallback_used" > 0);
  check_close ~tol:0.02 "recovered answer matches the clean one"
    clean.Tr.qfg_final faulted.Tr.qfg_final

let test_budget_exhaustion_surfaces () =
  (* a starved budget must surface as a typed error, not a hang or a raw
     exception *)
  let module B = Gnrflash.Resilience.Budget in
  let module E = Gnrflash.Resilience.Solver_error in
  let e =
    check_serr "starved run"
      (Tr.run ~budget:(B.make ~max_evals:10 ()) t ~vgs:15. ~duration:10.)
  in
  Alcotest.(check string) "typed budget error" "budget_exhausted" (E.label e)

(* Cold-start step-size heuristic: on the nominal Fig 5 workload the first
   trial step must succeed outright — no NaN shrink-and-retry cascade from a
   wildly wrong initial dt. [h_first] also surfaces the accepted size for the
   warm-start layer. *)
let test_cold_start_no_nan_shrink () =
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:(fun () -> Tel.disable (); Tel.reset ()) @@ fun () ->
  let r = check_ok "fig5 run" (Tr.run t ~vgs:15. ~duration:10.) in
  Alcotest.(check int) "no NaN shrinks on the nominal run" 0
    (Tel.counter_total "ode/step_nan_shrink");
  (match r.Tr.h_first with
   | None -> Alcotest.fail "h_first missing on a multi-step run"
   | Some h -> check_true "h_first positive and finite" (h > 0. && Float.is_finite h));
  (* an explicit h0 is honoured (clamped to the duration) and reproduces the
     same endpoint within solver tolerance *)
  let r2 =
    check_ok "explicit h0" (Tr.run ~h0:1e-7 t ~vgs:15. ~duration:10.)
  in
  check_close ~tol:1e-6 "endpoint insensitive to h0" r.Tr.qfg_final r2.Tr.qfg_final

(* Golden pin for the interpolated event localization. The seed (step-doubling
   RKF45 + re-integration bisection on Jin−Jout) measured
   ttts(2 V) = 9.94552227058640383e-09 s; locating the same crossing on the
   DOPRI5 dense interpolant reproduces it to 7.6e-9 relative — the crossing
   is now resolved within the *integration* tolerance rather than by
   re-stepping, so exact bit-equality is not expected. Documented tolerance:
   1e-7 relative (ISSUE 5); tightening it further requires re-baselining. *)
let test_ttts_golden () =
  let seed_ttts = 9.94552227058640383e-09 in
  match
    check_ok "ttts" (Tr.time_to_threshold_shift t ~vgs:15. ~dvt:2. ~max_time:1.)
  with
  | None -> Alcotest.fail "2 V shift must be reachable"
  | Some ts ->
    check_true
      (Printf.sprintf "ttts %.17e within 1e-7 rel of seed %.17e" ts seed_ttts)
      (abs_float (ts -. seed_ttts) /. seed_ttts <= 1e-7)

(* Property: the interpolated event time, re-integrated from scratch for
   exactly that duration, lands on the threshold — dense-output event
   localization vs re-integration, across random (vgs, GCR) devices. *)
let prop_event_time_vs_reintegration =
  prop "interpolated ttts lands on threshold under re-integration" ~count:8
    QCheck2.Gen.(pair (float_range 12. 17.) (float_range 0.45 0.7))
    (fun (vgs, gcr) ->
       let t = F.with_gcr t gcr in
       match Tr.time_to_threshold_shift t ~vgs ~dvt:2. ~max_time:1. with
       | Ok (Some ts) ->
         (match Tr.run t ~vgs ~duration:ts with
          | Ok r -> abs_float (r.Tr.dvt_final -. 2.) <= 1e-3
          | Error _ -> false)
       | _ -> false)

let prop_final_dvt_bounded_by_fixed_point =
  prop "transient never overshoots the fixed point" ~count:8
    QCheck2.Gen.(float_range 12. 17.)
    (fun vgs ->
       match Tr.run t ~vgs ~duration:10., Tr.saturation_charge t ~vgs with
       | Ok r, Ok q_star -> r.Tr.qfg_final >= q_star *. 1.01 -. 1e-20 || r.Tr.qfg_final >= q_star
       | _ -> false)

let () =
  Alcotest.run "transient"
    [
      ( "transient",
        [
          case "initial currents" test_initial_currents;
          case "Jin monotone (Fig 5)" test_jin_monotone_decreasing;
          case "Jout monotone (Fig 5)" test_jout_monotone_increasing;
          case "VFG relaxes to divider point" test_vfg_relaxes_to_divider_point;
          case "tsat reached" test_tsat_reached;
          case "charge monotone" test_charge_monotone;
          case "final threshold window" test_dvt_positive_after_program;
          case "erase mirrors program" test_erase_symmetry;
          case "fixed point vs ODE" test_saturation_charge_matches_ode;
          case "zero bias balanced" test_zero_bias_balanced;
          case "duration validation" test_duration_validation;
          case "time to 2 V shift" test_time_to_threshold;
          case "unreachable target" test_time_to_threshold_unreachable;
          case "higher bias is faster" test_higher_vgs_faster;
          case "fixed point vs ODE on (vgs, GCR) grid" test_fixed_point_grid;
          case "saturation charge: erase polarity" test_saturation_charge_erase_polarity;
          case "saturation charge: GCR sweep" test_saturation_charge_high_gcr;
          case "fault-injected run recovers via fallback" test_fault_injected_run_recovers;
          case "budget exhaustion is typed, not a hang" test_budget_exhaustion_surfaces;
          case "telemetry consistent with samples" test_instrumentation_consistency;
          case "telemetry disabled records nothing" test_disabled_records_nothing;
          case "cold start: no NaN shrink on Fig 5" test_cold_start_no_nan_shrink;
          case "ttts golden vs seed" test_ttts_golden;
          prop_event_time_vs_reintegration;
          prop_final_dvt_bounded_by_fixed_point;
        ] );
    ]
