(* The typed units layer (Gnrflash_units) must be a zero-cost view: every
   typed primary must be bit-identical to the raw-float shim it replaced,
   across random valid parameter ranges — not merely close. *)

module U = Gnrflash_units
module C = Gnrflash_physics.Constants
module Fn = Gnrflash_quantum.Fn
module Cap = Gnrflash_device.Capacitance
module Fgt = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let bits = Int64.bits_of_float

let check_bits msg expected actual =
  if bits expected <> bits actual then
    Alcotest.failf "%s: %.17g and %.17g differ bitwise" msg expected actual

(* --- dimension crossings pinned to the SI constants --- *)

let test_elementary_charge_exact () =
  (* the eV<->J crossing hard-codes the 2019 SI elementary charge; it must
     match Constants bit-for-bit or typed barrier heights drift *)
  check_bits "q" C.q (U.to_float (U.ev_to_joule (U.ev 1.)));
  check_bits "ev" C.ev (U.to_float (U.ev_to_joule (U.ev 1.)));
  check_bits "roundtrip 3.2 eV" (3.2 *. C.ev)
    (U.to_float (U.ev_to_joule (U.ev 3.2)))

let test_constants_typed_views () =
  check_bits "q_qty" C.q (U.to_float C.q_qty);
  check_bits "eps0_qty" C.eps0 (U.to_float C.eps0_qty);
  check_bits "k_b_qty" C.k_b (U.to_float C.k_b_qty);
  check_bits "thermal voltage" (C.thermal_voltage 300.)
    (U.to_float (C.thermal_voltage_qty (U.kelvin 300.)))

(* --- operator algebra is plain IEEE arithmetic --- *)

let test_operator_identities () =
  let e = U.(volt 9. /@ metre 5e-9) in
  check_bits "field" (9. /. 5e-9) (U.to_float e);
  check_bits "recover volt" 9. U.(to_float (e *@ metre 5e-9));
  check_bits "charge over farad" (2e-16 /. 1e-17)
    U.(to_float (coulomb 2e-16 //@ farad 1e-17));
  check_bits "area" (32e-9 *. 32e-9)
    U.(to_float (area (metre 32e-9) (metre 32e-9)));
  check_bits "sum" (1.5 +. 0.25) U.(to_float (volt 1.5 +@ volt 0.25));
  check_bits "scale" (0.6 *. 15.) U.(to_float (scale 0.6 (volt 15.)));
  check_true "compare" U.(volt 1. <@ volt 2.);
  check_true "nan incomparable" (not U.(volt nan <=@ volt nan))

let test_areal_crossings () =
  let c = U.f_per_m2 3.45e-3 and a = U.square_metre 1e-15 in
  check_bits "absolute_of_areal" (3.45e-3 *. 1e-15)
    (U.to_float (U.absolute_of_areal c ~area:a));
  check_bits "areal roundtrip" 3.45e-3
    (U.to_float (U.areal_of_absolute (U.absolute_of_areal c ~area:a) ~area:a));
  check_bits "displacement" (3.45e-3 *. 7.)
    (U.to_float (U.areal_displacement c ~v:(U.volt 7.)))

(* --- qcheck: typed primaries vs raw shims, bitwise --- *)

let gen_params =
  QCheck2.Gen.(pair (float_range 1. 6.) (float_range 0.1 1.))

let prop_fn_coefficients =
  prop "Fn.coefficients_q bit-identical" gen_params
    (fun (phi_b_ev, m_ox_rel) ->
      let raw = Fn.coefficients ~phi_b_ev ~m_ox_rel in
      let typed = Fn.coefficients_q ~phi_b:(U.ev phi_b_ev) ~m_ox_rel in
      bits raw.Fn.a = bits (U.to_float (Fn.a_qty typed))
      && bits raw.Fn.b = bits (U.to_float (Fn.b_qty typed)))

let prop_fn_current_density =
  prop "Fn.current_density_q bit-identical"
    QCheck2.Gen.(triple (float_range 1. 6.) (float_range 0.1 1.)
                   (float_range (-2e9) 2e9))
    (fun (phi_b_ev, m_ox_rel, field) ->
      let p = Fn.coefficients ~phi_b_ev ~m_ox_rel in
      bits (Fn.current_density p ~field)
      = bits (U.to_float (Fn.current_density_q p ~field:(U.v_per_m field))))

let prop_fn_current_from_voltages =
  prop "Fn.current_from_voltages_q bit-identical"
    QCheck2.Gen.(triple (float_range (-20.) 20.) (float_range 0. 0.5)
                   (float_range 1e-9 20e-9))
    (fun (vfg, vs, xto) ->
      let p = Fn.coefficients ~phi_b_ev:3.2 ~m_ox_rel:0.42 in
      bits (Fn.current_from_voltages p ~vfg ~vs ~xto)
      = bits
          (U.to_float
             (Fn.current_from_voltages_q p ~vfg:(U.volt vfg) ~vs:(U.volt vs)
                ~xto:(U.metre xto))))

let gen_caps =
  QCheck2.Gen.(quad (float_range 1e-19 1e-16) (float_range 1e-19 1e-16)
                 (float_range 1e-19 1e-16) (float_range 1e-19 1e-16))

let prop_capacitance =
  prop "Capacitance typed path bit-identical" gen_caps
    (fun (cfc, cfs, cfb, cfd) ->
      let raw = Cap.make ~cfc ~cfs ~cfb ~cfd in
      let typed =
        Cap.make_q ~cfc:(U.farad cfc) ~cfs:(U.farad cfs) ~cfb:(U.farad cfb)
          ~cfd:(U.farad cfd)
      in
      bits (Cap.total raw) = bits (U.to_float (Cap.total_q typed))
      && bits (Cap.gcr raw) = bits (Cap.gcr typed))

let prop_parallel_plate =
  prop "Capacitance.parallel_plate_q bit-identical"
    QCheck2.Gen.(triple (float_range 1. 25.) (float_range 1e-16 1e-13)
                   (float_range 1e-9 50e-9))
    (fun (eps_r, area, thickness) ->
      bits (Cap.parallel_plate ~eps_r ~area ~thickness)
      = bits
          (U.to_float
             (Cap.parallel_plate_q ~eps_r ~area:(U.square_metre area)
                ~thickness:(U.metre thickness))))

let gen_bias =
  QCheck2.Gen.(pair (float_range (-20.) 20.) (float_range (-2e-16) 2e-16))

let prop_fgt_potentials =
  prop "Fgt potentials/fields bit-identical" gen_bias (fun (vgs, qfg) ->
      let t = Fgt.paper_default in
      let vq = U.volt vgs and qq = U.coulomb qfg in
      bits (Fgt.vfg t ~vgs ~qfg)
      = bits (U.to_float (Fgt.vfg_q t ~vgs:vq ~qfg:qq))
      && bits (Fgt.tunnel_field t ~vgs ~qfg)
         = bits (U.to_float (Fgt.tunnel_field_q t ~vgs:vq ~qfg:qq))
      && bits (Fgt.control_field t ~vgs ~qfg)
         = bits (U.to_float (Fgt.control_field_q t ~vgs:vq ~qfg:qq)))

let prop_fgt_charge_balance =
  prop "Fgt charge-balance RHS bit-identical" gen_bias (fun (vgs, qfg) ->
      let t = Fgt.paper_default in
      let vq = U.volt vgs and qq = U.coulomb qfg in
      bits (Fgt.j_in t ~vgs ~qfg)
      = bits (U.to_float (Fgt.j_in_q t ~vgs:vq ~qfg:qq))
      && bits (Fgt.j_out t ~vgs ~qfg)
         = bits (U.to_float (Fgt.j_out_q t ~vgs:vq ~qfg:qq))
      && bits (Fgt.dqfg_dt t ~vgs ~qfg)
         = bits (U.to_float (Fgt.dqfg_dt_q t ~vgs:vq ~qfg:qq)))

let prop_fgt_threshold =
  prop "Fgt threshold mapping bit-identical"
    QCheck2.Gen.(float_range (-5.) 5.)
    (fun dvt ->
      let t = Fgt.paper_default in
      let qfg = Fgt.qfg_for_threshold_shift t ~dvt in
      bits qfg
      = bits (U.to_float (Fgt.qfg_for_threshold_shift_q t ~dvt:(U.volt dvt)))
      && bits (Fgt.threshold_shift t ~qfg)
         = bits
             (U.to_float (Fgt.threshold_shift_q t ~qfg:(U.coulomb qfg))))

let prop_fgt_make =
  prop "Fgt.make_q bit-identical device"
    QCheck2.Gen.(quad (float_range 0.1 0.9) (float_range 2e-9 10e-9)
                   (float_range 1e-9 15e-9) (float_range 10e-9 100e-9))
    (fun (gcr, xto, dxco, w) ->
      let xco = xto +. dxco in
      let raw = Fgt.make ~gcr ~xto ~xco ~area:(w *. w) () in
      let typed =
        Fgt.make_q ~gcr ~xto:(U.metre xto) ~xco:(U.metre xco)
          ~area:(U.area (U.metre w) (U.metre w)) ()
      in
      bits (Fgt.ct raw) = bits (Fgt.ct typed)
      && bits (Fgt.gcr raw) = bits (Fgt.gcr typed)
      && bits (Fgt.vfg raw ~vgs:12. ~qfg:(-1e-16))
         = bits (Fgt.vfg typed ~vgs:12. ~qfg:(-1e-16)))

let () =
  Alcotest.run "qty"
    [
      ( "qty",
        [
          case "elementary charge exact" test_elementary_charge_exact;
          case "typed constants views" test_constants_typed_views;
          case "operator identities" test_operator_identities;
          case "areal crossings" test_areal_crossings;
          prop_fn_coefficients;
          prop_fn_current_density;
          prop_fn_current_from_voltages;
          prop_capacitance;
          prop_parallel_plate;
          prop_fgt_potentials;
          prop_fgt_charge_balance;
          prop_fgt_threshold;
          prop_fgt_make;
        ] );
    ]
