module L = Gnrflash_quantum.Lookup
module Fn = Gnrflash_quantum.Fn
open Gnrflash_testing.Testing

let p = Fn.coefficients ~phi_b_ev:3.2 ~m_ox_rel:0.42

let table = L.of_fn p ~field_min:5e8 ~field_max:2e9

let test_exact_at_nodes_vicinity () =
  (* pchip through log-log data: error between nodes stays small *)
  let err = L.max_relative_error table (fun e -> Fn.current_density p ~field:e) in
  check_true "sub-0.1% interpolation error" (err < 1e-3)

let test_interpolation_mid_range () =
  let e = 1.234e9 in
  check_close ~tol:1e-4 "mid-range value" (Fn.current_density p ~field:e)
    (L.current_density table ~field:e)

let test_clamping () =
  let above = L.current_density table ~field:1e10 in
  let at_max = L.current_density table ~field:2e9 in
  check_close ~tol:1e-9 "clamped above" at_max above;
  check_close "deep below cuts off" 0. (L.current_density table ~field:1e7)

let test_range () =
  let lo, hi = L.range table in
  check_close "lo" 5e8 lo;
  check_close "hi" 2e9 hi

let test_build_validation () =
  Alcotest.check_raises "range" (Invalid_argument "Lookup.build: bad field range")
    (fun () -> ignore (L.build ~field_min:2e9 ~field_max:1e9 (fun _ -> 1.)));
  Alcotest.check_raises "nonpositive model"
    (Invalid_argument "Lookup.build: model non-positive on the range") (fun () ->
      ignore (L.build ~field_min:1e8 ~field_max:1e9 (fun _ -> 0.)))

let test_denser_table_more_accurate () =
  let coarse = L.of_fn ~points:8 p ~field_min:5e8 ~field_max:2e9 in
  let fine = L.of_fn ~points:128 p ~field_min:5e8 ~field_max:2e9 in
  let reference e = Fn.current_density p ~field:e in
  check_true "refinement helps"
    (L.max_relative_error fine reference < L.max_relative_error coarse reference)

let prop_monotone_like_model =
  prop "table preserves monotonicity" ~count:50
    QCheck2.Gen.(float_range 5e8 1.8e9)
    (fun e ->
       L.current_density table ~field:(e *. 1.05) >= L.current_density table ~field:e)

(* Random build ranges inside the regime where FN is well-behaved; ratio kept
   >= 1.3 so tables always span a nontrivial field decade fraction. *)
let range_gen =
  QCheck2.Gen.(
    map2 (fun lo ratio -> (lo, lo *. ratio)) (float_range 3e8 1.5e9) (float_range 1.3 4.))

let prop_pointwise_error_within_reported_bound =
  (* [max_relative_error] probes 301 points; a random field between probes
     may sit on a slightly worse spot of the pchip error ripple, hence the
     small headroom factor. *)
  prop "current_density error within reported bound on random ranges" ~count:60
    QCheck2.Gen.(pair range_gen (float_range 0. 1.))
    (fun ((lo, hi), u) ->
       let tbl = L.of_fn p ~field_min:lo ~field_max:hi in
       let reference e = Fn.current_density p ~field:e in
       let reported = L.max_relative_error tbl reference in
       (* geometric interpolation of the probe position inside the range *)
       let e = lo *. ((hi /. lo) ** u) in
       let exact = reference e in
       let approx = L.current_density tbl ~field:e in
       let rel = abs_float ((approx -. exact) /. exact) in
       reported < 1e-3 && rel <= (2. *. reported) +. 1e-9)

let prop_monotone_on_random_ranges =
  (* FN current is strictly increasing in field, and pchip is monotonicity
     preserving, so every table built from it must be monotone too. *)
  prop "interpolant monotone whenever the model is" ~count:60
    QCheck2.Gen.(triple range_gen (float_range 0. 1.) (float_range 0. 1.))
    (fun ((lo, hi), u1, u2) ->
       let tbl = L.of_fn p ~field_min:lo ~field_max:hi in
       let pos u = lo *. ((hi /. lo) ** u) in
       let e1 = pos (min u1 u2) and e2 = pos (max u1 u2) in
       L.current_density tbl ~field:e2 >= L.current_density tbl ~field:e1)

let () =
  Alcotest.run "lookup"
    [
      ( "lookup",
        [
          case "interpolation error bound" test_exact_at_nodes_vicinity;
          case "mid-range value" test_interpolation_mid_range;
          case "clamping" test_clamping;
          case "range" test_range;
          case "build validation" test_build_validation;
          case "refinement" test_denser_table_more_accurate;
          prop_monotone_like_model;
          prop_pointwise_error_within_reported_bound;
          prop_monotone_on_random_ranges;
        ] );
    ]
