module O = Gnrflash_numerics.Ode
open Gnrflash_testing.Testing

(* the numerics/device solvers under test return typed solver errors *)
let check_ok msg r = check_sok msg r
let check_error msg r = ignore (check_serr msg r)

let decay _t y = [| -.y.(0) |]

let last (tr : O.trajectory) = tr.O.states.(Array.length tr.O.states - 1)

let test_euler_decay () =
  let tr = O.euler ~f:decay ~t0:0. ~y0:[| 1. |] ~t1:1. ~steps:10000 in
  check_close ~tol:1e-3 "e^-1" (exp (-1.)) (last tr).(0)

let test_rk4_decay () =
  let tr = O.rk4 ~f:decay ~t0:0. ~y0:[| 1. |] ~t1:1. ~steps:100 in
  check_close ~tol:1e-8 "e^-1" (exp (-1.)) (last tr).(0)

let test_rk4_convergence_order () =
  (* halving h should cut the error by ~2^4 *)
  let err steps =
    let tr = O.rk4 ~f:decay ~t0:0. ~y0:[| 1. |] ~t1:1. ~steps in
    abs_float ((last tr).(0) -. exp (-1.))
  in
  let ratio = err 20 /. err 40 in
  check_in "4th order convergence" ~lo:12. ~hi:20. ratio

let test_rkf45_decay () =
  let tr = check_ok "rkf45" (O.rkf45 ~rtol:1e-10 ~f:decay ~t0:0. ~y0:[| 1. |] ~t1:2. ()) in
  check_close ~tol:1e-8 "e^-2" (exp (-2.)) (last tr).(0)

let test_rkf45_oscillator () =
  (* y'' = -y as a system; energy must be conserved to tolerance *)
  let f _t y = [| y.(1); -.y.(0) |] in
  let tr =
    check_ok "rkf45"
      (O.rkf45 ~rtol:1e-10 ~atol:1e-12 ~f ~t0:0. ~y0:[| 1.; 0. |]
         ~t1:(2. *. Float.pi) ())
  in
  let y = last tr in
  check_close ~tol:1e-6 "cos(2pi)" 1. y.(0);
  check_abs ~tol:1e-6 "sin(2pi)" 0. y.(1)

let test_rkf45_rejects_bad_range () =
  check_error "t1 <= t0" (O.rkf45 ~f:decay ~t0:1. ~y0:[| 1. |] ~t1:0. ())

let test_rkf45_times_monotone () =
  let tr = check_ok "rkf45" (O.rkf45 ~f:decay ~t0:0. ~y0:[| 1. |] ~t1:1. ()) in
  let ok = ref true in
  for i = 0 to Array.length tr.O.times - 2 do
    if tr.O.times.(i + 1) <= tr.O.times.(i) then ok := false
  done;
  check_true "strictly increasing times" !ok

let test_event_detection () =
  (* y' = 1, event at y = 0.5 -> t = 0.5 *)
  let f _t _y = [| 1. |] in
  let event _t y = y.(0) -. 0.5 in
  let r =
    check_ok "event" (O.rkf45_event ~f ~event ~t0:0. ~y0:[| 0. |] ~t1:2. ())
  in
  (match r.O.event_time with
   | Some t -> check_close ~tol:1e-6 "event time" 0.5 t
   | None -> Alcotest.fail "event not detected");
  match r.O.event_state with
  | Some y -> check_close ~tol:1e-5 "event state" 0.5 y.(0)
  | None -> Alcotest.fail "no event state"

let test_event_decay_threshold () =
  (* e^{-t} crosses 0.1 at t = ln 10 *)
  let event _t y = y.(0) -. 0.1 in
  let r =
    check_ok "event" (O.rkf45_event ~rtol:1e-10 ~f:decay ~event ~t0:0. ~y0:[| 1. |] ~t1:10. ())
  in
  match r.O.event_time with
  | Some t -> check_close ~tol:1e-5 "ln 10" (log 10.) t
  | None -> Alcotest.fail "event not detected"

let test_event_none () =
  let event _t y = y.(0) +. 1. in
  (* never crosses *)
  let r = check_ok "event" (O.rkf45_event ~f:decay ~event ~t0:0. ~y0:[| 1. |] ~t1:1. ()) in
  check_true "no event" (r.O.event_time = None)

let test_nan_region_recovery () =
  (* f produces NaN for y > 1.5; solution stays below, so large trial steps
     must be rejected rather than aborting *)
  let f _t y = if y.(0) > 1.5 then [| nan |] else [| 0.2 |] in
  let tr = check_ok "nan recovery" (O.rkf45 ~h0:100. ~f ~t0:0. ~y0:[| 0. |] ~t1:1. ()) in
  check_close ~tol:1e-6 "linear growth" 0.2 (last tr).(0)

let test_event_exact_zero_landing () =
  (* regression: a step function hits g = 0. exactly at an accepted step;
     the old strict [g0 * g1 < 0.] test never saw a sign change and the
     crossing was silently missed *)
  let f _t _y = [| 1. |] in
  let event _t y = if y.(0) >= 0.5 then 0. else -1. in
  let r =
    check_ok "event" (O.rkf45_event ~f ~event ~t0:0. ~y0:[| 0. |] ~t1:2. ())
  in
  (match r.O.event_time with
   | Some t -> check_in "crossing detected at a step past y = 0.5" ~lo:0.5 ~hi:2. t
   | None -> Alcotest.fail "exact-zero landing missed");
  match r.O.event_state with
  | Some y -> check_true "state past the threshold" (y.(0) >= 0.5)
  | None -> Alcotest.fail "no event state"

let test_event_bisection_early_exit () =
  (* regression: the crossing bisection ran a fixed 60 iterations (each one
     a 16-step RK4 re-integration) long after the bracket was at double
     precision; it must now stop at the relative time tolerance *)
  let module Tel = Gnrflash_telemetry.Telemetry in
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:(fun () -> Tel.disable (); Tel.reset ()) @@ fun () ->
  let event _t y = y.(0) -. 0.1 in
  let r =
    check_ok "event"
      (O.rkf45_event ~rtol:1e-10 ~f:decay ~event ~t0:0. ~y0:[| 1. |] ~t1:10. ())
  in
  (match r.O.event_time with
   | Some t -> check_close ~tol:1e-5 "ln 10" (log 10.) t
   | None -> Alcotest.fail "event not detected");
  Alcotest.(check int) "one crossing" 1 (Tel.counter_total "ode/event_crossing");
  let iters = Tel.counter_total "ode/event_bisect_iter" in
  check_true "bisection ran" (iters > 0);
  check_true "bisection stopped before the 60-iteration cap" (iters < 60)

let test_infinite_rhs_recovery () =
  (* companion to the NaN test: an infinite (not NaN) trial state must also
     be rejected by the finiteness guard rather than accepted as garbage.
     Relaxation toward 1.5 never crosses the threshold, but the first
     large-h trial's intermediate RK stages overshoot into the region where
     f blows up to infinity. *)
  let f _t y =
    if y.(0) > 1.5 then [| infinity |] else [| 4. *. (1.5 -. y.(0)) |]
  in
  let module Tel = Gnrflash_telemetry.Telemetry in
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:(fun () -> Tel.disable (); Tel.reset ()) @@ fun () ->
  let tr =
    check_ok "inf recovery" (O.rkf45 ~h0:1. ~f ~t0:0. ~y0:[| 0. |] ~t1:1. ())
  in
  check_close ~tol:1e-6 "relaxation endpoint" (1.5 *. (1. -. exp (-4.)))
    (last tr).(0);
  check_true "non-finite trial steps were shrunk"
    (Tel.counter_total "ode/step_nan_shrink" > 0);
  Array.iter
    (fun y -> check_true "trajectory stays finite" (Float.is_finite y.(0)))
    tr.O.states

let test_max_steps_typed () =
  let module E = Gnrflash_resilience.Solver_error in
  let e =
    check_serr "max steps"
      (O.rkf45 ~max_steps:3 ~f:decay ~t0:0. ~y0:[| 1. |] ~t1:1e6 ())
  in
  match e.E.kind with
  | E.Max_steps { steps; t } ->
    check_true "cap recorded" (steps >= 3);
    check_in "stopped mid-integration" ~lo:0. ~hi:1e6 t
  | _ -> Alcotest.failf "expected Max_steps, got %s" (E.to_string e)

let test_solve_scalar () =
  let times, values =
    check_ok "scalar" (O.solve_scalar ~f:(fun _t y -> -.y) ~t0:0. ~y0:1. ~t1:1. ())
  in
  check_close ~tol:1e-6 "e^-1" (exp (-1.)) values.(Array.length values - 1);
  check_close "start" 0. times.(0)

let prop_rkf45_linear_growth =
  prop "y' = a integrates to a*t" QCheck2.Gen.(float_range (-10.) 10.) (fun a ->
      let f _t _y = [| a |] in
      match O.rkf45 ~f ~t0:0. ~y0:[| 0. |] ~t1:3. () with
      | Ok tr ->
        let y = (last tr).(0) in
        abs_float (y -. (3. *. a)) <= 1e-6 *. (1. +. abs_float (3. *. a))
      | Error _ -> false)

(* ---------- dense output ---------- *)

(* rkf45_dense must agree with the analytic solution at arbitrary off-step
   sample times to the stepper's own accuracy — the interpolant is 4th/5th
   order, not a secant through step endpoints. *)
let test_dense_decay_analytic () =
  let ts = Array.init 97 (fun i -> 2. *. float_of_int i /. 96.) in
  let _, ys =
    check_ok "dense decay"
      (O.rkf45_dense ~rtol:1e-8 ~atol:1e-12 ~f:decay ~t0:0. ~y0:[| 1. |] ~t1:2.
         ~ts ())
  in
  Array.iteri
    (fun i t ->
       let exact = exp (-.t) in
       check_true
         (Printf.sprintf "dense decay @ t=%.3f" t)
         (abs_float (ys.(i).(0) -. exact) <= 1e-6 *. (1. +. exact)))
    ts

let test_dense_endpoints_and_validation () =
  let ts = [| 0.; 0.7; 2. |] in
  let tr, ys =
    check_ok "dense run"
      (O.rkf45_dense ~f:decay ~t0:0. ~y0:[| 1. |] ~t1:2. ~ts ())
  in
  (* a sample time at t0 returns the initial state verbatim *)
  check_close ~tol:0. "t0 is y0" 1. ys.(0).(0);
  (* the final sample time t1 returns the trajectory endpoint bit-exactly *)
  check_close ~tol:0. "t1 matches trajectory end" (last tr).(0) ys.(2).(0);
  check_error "unsorted ts"
    (O.rkf45_dense ~f:decay ~t0:0. ~y0:[| 1. |] ~t1:2. ~ts:[| 1.; 0.5 |] ());
  check_error "ts before t0"
    (O.rkf45_dense ~f:decay ~t0:0. ~y0:[| 1. |] ~t1:2. ~ts:[| -1. |] ());
  check_error "ts beyond t1"
    (O.rkf45_dense ~f:decay ~t0:0. ~y0:[| 1. |] ~t1:2. ~ts:[| 3. |] ())

(* Property: the dense interpolant agrees with a from-scratch re-integration
   stopped exactly at the sample time, over random stiffness-free linear
   systems y' = a - b*y (the Fig 4/5 charging equation's shape). *)
let prop_dense_matches_reintegration =
  prop "dense output matches re-integration"
    QCheck2.Gen.(
      triple (float_range 0.1 5.) (float_range 0.1 5.) (float_range 0.1 1.9))
    (fun (a, b, t_mid) ->
       let f _t y = [| a -. (b *. y.(0)) |] in
       match
         O.rkf45_dense ~rtol:1e-8 ~atol:1e-14 ~f ~t0:0. ~y0:[| 0. |] ~t1:2.
           ~ts:[| t_mid |] ()
       with
       | Error _ -> false
       | Ok (_, ys) ->
         (match
            O.rkf45 ~rtol:1e-11 ~atol:1e-16 ~f ~t0:0. ~y0:[| 0. |] ~t1:t_mid ()
          with
          | Error _ -> false
          | Ok tr ->
            let y_ref = (last tr).(0) in
            abs_float (ys.(0).(0) -. y_ref) <= 1e-6 *. (1. +. abs_float y_ref)))

(* FSAL bookkeeping: one eval seeds k1, then exactly 6 evals per trial step,
   +1 re-seed after every NaN shrink (the cached slope is poisoned). *)
let test_fsal_eval_count () =
  let module Tel = Gnrflash_telemetry.Telemetry in
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:(fun () -> Tel.disable (); Tel.reset ()) @@ fun () ->
  let _ = check_ok "run" (O.rkf45 ~f:decay ~t0:0. ~y0:[| 1. |] ~t1:2. ()) in
  let trials =
    Tel.counter_total "ode/step_accepted"
    + Tel.counter_total "ode/step_rejected"
    + Tel.counter_total "ode/step_nan_shrink"
  in
  Alcotest.(check int) "6 evals per trial + 1 seed"
    ((6 * trials) + 1 + Tel.counter_total "ode/step_nan_shrink")
    (Tel.counter_total "ode/rhs_eval")

let () =
  Alcotest.run "ode"
    [
      ( "ode",
        [
          case "euler decay" test_euler_decay;
          case "rk4 decay" test_rk4_decay;
          case "rk4 is 4th order" test_rk4_convergence_order;
          case "rkf45 decay" test_rkf45_decay;
          case "rkf45 oscillator" test_rkf45_oscillator;
          case "rkf45 bad range" test_rkf45_rejects_bad_range;
          case "rkf45 monotone times" test_rkf45_times_monotone;
          case "event: linear crossing" test_event_detection;
          case "event: decay threshold" test_event_decay_threshold;
          case "event: none" test_event_none;
          case "event: exact-zero landing" test_event_exact_zero_landing;
          case "event: bisection early exit" test_event_bisection_early_exit;
          case "NaN trial step recovery" test_nan_region_recovery;
          case "infinite trial step recovery" test_infinite_rhs_recovery;
          case "typed Max_steps" test_max_steps_typed;
          case "solve_scalar wrapper" test_solve_scalar;
          case "dense output: analytic decay" test_dense_decay_analytic;
          case "dense output: endpoints and validation"
            test_dense_endpoints_and_validation;
          case "FSAL eval accounting" test_fsal_eval_count;
          prop_rkf45_linear_growth;
          prop_dense_matches_reintegration;
        ] );
    ]
