module V = Gnrflash_device.Variation
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let base = F.paper_default

let summarize_exn samples =
  match V.summarize samples with Ok s -> s | Error msg -> Alcotest.fail msg

let test_sampling_deterministic () =
  let a = V.sample_devices ~seed:3 ~base ~n:5 () in
  let b = V.sample_devices ~seed:3 ~base ~n:5 () in
  check_true "same seed reproduces" (a = b);
  let c = V.sample_devices ~seed:4 ~base ~n:5 () in
  check_true "different seed differs" (a <> c)

let test_sampling_validation () =
  Alcotest.check_raises "n" (Invalid_argument "Variation.sample_devices: n < 1")
    (fun () -> ignore (V.sample_devices ~base ~n:0 ()))

let test_samples_physical () =
  let samples = V.sample_devices ~seed:1 ~base ~n:20 () in
  Array.iter
    (fun s ->
       check_true "xto positive" (s.V.xto > 0.);
       check_in "phi plausible" ~lo:1. ~hi:5. s.V.phi_b_ev;
       check_in "gcr plausible" ~lo:0.05 ~hi:0.95 s.V.gcr;
       check_true "some programming happened"
         (Float.is_finite s.V.program_time || s.V.program_time = infinity))
    samples

let test_spread_scales () =
  (* zero spread: every sample identical to the base *)
  let zero = { V.sigma_xto = 0.; sigma_phi = 0.; sigma_gcr = 0. } in
  let samples = V.sample_devices ~spread:zero ~seed:1 ~base ~n:5 () in
  let t0 = samples.(0).V.program_time in
  Array.iter (fun s -> check_close ~tol:1e-9 "no spread" t0 s.V.program_time) samples

let test_summary () =
  let samples = V.sample_devices ~seed:7 ~base ~n:60 () in
  let s = summarize_exn samples in
  Alcotest.(check int) "count" 60 s.V.n;
  check_true "median positive" (s.V.t_prog_median > 0.);
  check_true "p95 above median" (s.V.t_prog_p95 >= s.V.t_prog_median);
  check_true "spread above 1" (s.V.t_prog_spread >= 1.);
  check_true "dvt sigma positive" (s.V.dvt_sigma > 0.)

let test_oxide_sensitivity_dominates () =
  (* the exponential makes XTO variation the dominant source: 1 angstrom
     should move programming time noticeably *)
  let only_xto = { V.sigma_xto = 0.1e-9; sigma_phi = 0.; sigma_gcr = 0. } in
  let only_gcr = { V.sigma_xto = 0.; sigma_phi = 0.; sigma_gcr = 0.01 } in
  let s_xto = summarize_exn (V.sample_devices ~spread:only_xto ~seed:2 ~base ~n:40 ()) in
  let s_gcr = summarize_exn (V.sample_devices ~spread:only_gcr ~seed:2 ~base ~n:40 ()) in
  check_true "xto spread wider than gcr spread"
    (s_xto.V.t_prog_spread > s_gcr.V.t_prog_spread)

let test_sensitivity_xto () =
  let s = V.sensitivity_xto base in
  (* t ~ exp(B·XTO/VFG): d(log10 t)/d(XTO) = B/(ln10·VFG) ~ 1.2 decades/nm
     at VFG = 9 V... B/VFG = 2.53e10/9 = 2.8e9 ln-units/m = 1.22 decades/nm *)
  check_in "decades per nm" ~lo:0.8 ~hi:1.8 s;
  check_true "thicker oxide is slower" (s > 0.)

let test_summarize_empty_fails () =
  (* regression for lint L1: an all-failed ensemble is reported as [Error],
     not by raising Invalid_argument *)
  match
    V.summarize
      [| { V.xto = 1e-9; phi_b_ev = 3.; gcr = 0.5; program_time = infinity;
           dvt_fixed_pulse = nan; solve_failed = true;
           failure =
             Some
               (Gnrflash_resilience.Solver_error.make ~solver:"test"
                  (Gnrflash_resilience.Solver_error.No_convergence
                     { iterations = 1; best = 0.; f_best = 0. })) } |]
  with
  | Ok _ -> Alcotest.fail "expected Error on all-failed ensemble"
  | Error msg ->
    Alcotest.(check string) "error message"
      "Variation.summarize: no successful samples" msg

let test_jobs_invariant () =
  (* per-sample splitmix seeding: the ensemble must be identical no matter
     how it is chunked over domains *)
  let reference = V.sample_devices ~seed:11 ~jobs:1 ~base ~n:9 () in
  List.iter
    (fun jobs ->
       let run = V.sample_devices ~seed:11 ~jobs ~base ~n:9 () in
       check_true (Printf.sprintf "jobs=%d matches serial" jobs) (run = reference))
    [ 1; 2; 4 ]

let test_summarize_with_failed_solve () =
  let good t dvt =
    { V.xto = 5e-9; phi_b_ev = 3.2; gcr = 0.6; program_time = t;
      dvt_fixed_pulse = dvt; solve_failed = false; failure = None }
  in
  let failed =
    { V.xto = 5e-9; phi_b_ev = 3.2; gcr = 0.6; program_time = infinity;
      dvt_fixed_pulse = nan; solve_failed = true;
      failure =
        Some
          (Gnrflash_resilience.Solver_error.make ~solver:"Transient.run"
             (Gnrflash_resilience.Solver_error.Step_underflow
                { t = 1e-9; h = 1e-301 })) }
  in
  let s = summarize_exn [| good 1e-6 2.0; failed; good 4e-6 2.4 |] in
  Alcotest.(check int) "all samples counted" 3 s.V.n;
  Alcotest.(check int) "one failed solve" 1 s.V.n_failed;
  Alcotest.(check (list (pair string int)))
    "failure causes bucketed by class"
    [ ("step_underflow", 1) ] s.V.failed_by_class;
  (* the failure is excluded rather than poisoning the statistics *)
  check_true "median finite" (Float.is_finite s.V.t_prog_median);
  check_close ~tol:1e-12 "median over finite times" 2.5e-6 s.V.t_prog_median;
  check_close ~tol:1e-12 "dvt mean over finite dvts" 2.2 s.V.dvt_mean;
  check_true "dvt sigma finite" (Float.is_finite s.V.dvt_sigma)

let () =
  Alcotest.run "variation"
    [
      ( "variation",
        [
          case "deterministic sampling" test_sampling_deterministic;
          case "validation" test_sampling_validation;
          case "samples physical" test_samples_physical;
          case "zero spread" test_spread_scales;
          case "summary statistics" test_summary;
          case "oxide dominates" test_oxide_sensitivity_dominates;
          case "xto sensitivity" test_sensitivity_xto;
          case "empty summary" test_summarize_empty_fails;
          case "identical across job counts" test_jobs_invariant;
          case "failed solve excluded from stats" test_summarize_with_failed_solve;
        ] );
    ]
