(* Side-by-side contract of the SoA cell store against the seed
   record-based path: the same pulse sequence driven through
   [Cell_store] (flat columns + per-pulse memo) and through boxed
   [Cell.t] values must leave Int64-bit-identical charges and wear, and
   equal digests. Each run gets its own freshly constructed (physically
   distinct, structurally equal) device record so the per-domain
   surrogate/replay caches reset between runs and both paths see the
   same consult history from a cold start. *)

module S = Gnrflash_memory.Cell_store
module Cell = Gnrflash_memory.Cell
module W = Gnrflash_memory.Workload
module F = Gnrflash_device.Fgt
module PE = Gnrflash_device.Program_erase
module Rel = Gnrflash_device.Reliability
open Gnrflash_testing.Testing

let fresh_device () =
  F.make ~gcr:0.6 ~xto:5e-9 ~xco:10e-9 ~area:(32e-9 *. 32e-9) ()

let bits = Int64.bits_of_float
let same_f a b = Int64.equal (bits a) (bits b)

(* in-box pulses (surrogate-served once promoted)... *)
let prog_pulse = PE.default_program_pulse
let erase_pulse = PE.default_erase_pulse

(* ...and out-of-box ones (duration below the paper box's 1 ns floor):
   always exact, memoized via the response_static admission rule. *)
let prog_short = { PE.vgs = 15.; duration = 0.5e-9 }
let erase_short = { PE.vgs = -15.; duration = 0.5e-9 }

type op = Prog of int | Erase of int | Erange of int * int

(* ---------- the two implementations under comparison ---------- *)

let run_store ~pp ~ep ~n ops =
  let s = S.create ~n (fresh_device ()) in
  let pm = S.memo () and em = S.memo () in
  let errs = ref [] in
  let note = function Ok () -> () | Error e -> errs := e :: !errs in
  List.iter
    (fun op ->
      match op with
      | Prog i -> note (S.apply_pulse_at s ~memo:pm ~pulse:pp ~surrogate:true i)
      | Erase i -> note (S.apply_pulse_at s ~memo:em ~pulse:ep ~surrogate:true i)
      | Erange (lo, hi) ->
          note (S.apply_pulse_range s ~memo:em ~pulse:ep ~surrogate:true ~lo ~hi))
    ops;
  (s, List.rev !errs)

(* The record-based reference: boxed cells through Cell.program/erase,
   a range op as the seed's ascending per-cell loop stopping at the
   first error. *)
let run_record ~pp ~ep ~n ops =
  (* one shared device record, like the store *)
  let device = fresh_device () in
  let cells = Array.init n (fun _ -> Cell.make device) in
  let errs = ref [] in
  let prog i =
    match Cell.program ~pulse:pp ~surrogate:true cells.(i) with
    | Ok c ->
        cells.(i) <- c;
        true
    | Error e ->
        errs := e :: !errs;
        false
  in
  let erase i =
    match Cell.erase ~pulse:ep ~surrogate:true cells.(i) with
    | Ok c ->
        cells.(i) <- c;
        true
    | Error e ->
        errs := e :: !errs;
        false
  in
  List.iter
    (fun op ->
      match op with
      | Prog i -> ignore (prog i)
      | Erase i -> ignore (erase i)
      | Erange (lo, hi) ->
          let i = ref lo in
          let ok = ref true in
          while !ok && !i <= hi do
            ok := erase !i;
            incr i
          done)
    ops;
  (cells, List.rev !errs)

let fbits x = Int64.to_int (Int64.bits_of_float x)

let record_digest cells =
  Array.fold_left
    (fun h (c : Cell.t) ->
      let w = c.Cell.wear in
      let h = W.digest_fold h (fbits c.Cell.qfg) in
      let h = W.digest_fold h (fbits w.Rel.fluence) in
      let h = W.digest_fold h (fbits w.Rel.traps) in
      let h = W.digest_fold h w.Rel.cycles in
      W.digest_fold h (if w.Rel.broken then 1 else 0))
    W.digest_empty cells

let store_matches_records s cells =
  let n = S.length s in
  Array.length cells = n
  && Array.for_all Fun.id
       (Array.init n (fun i ->
            let (c : Cell.t) = cells.(i) in
            let w = c.Cell.wear in
            same_f (S.qfg s i) c.Cell.qfg
            && same_f (S.fluence s i) w.Rel.fluence
            && same_f (S.traps s i) w.Rel.traps
            && S.cycles s i = w.Rel.cycles
            && S.broken s i = w.Rel.broken))

(* ---------- generators ---------- *)

let gen_ops =
  QCheck2.Gen.(
    int_range 2 5 >>= fun n ->
    let gen_op =
      frequency
        [
          (4, map (fun i -> Prog i) (int_range 0 (n - 1)));
          (3, map (fun i -> Erase i) (int_range 0 (n - 1)));
          ( 2,
            map2
              (fun a b -> Erange (min a b, max a b))
              (int_range 0 (n - 1))
              (int_range 0 (n - 1)) );
        ]
    in
    list_size (int_range 1 24) gen_op >>= fun ops -> return (n, ops))

let side_by_side ~pp ~ep (n, ops) =
  let s, store_errs = run_store ~pp ~ep ~n ops in
  let cells, record_errs = run_record ~pp ~ep ~n ops in
  store_matches_records s cells
  && store_errs = record_errs
  && S.fold_digest s W.digest_fold W.digest_empty = record_digest cells

let prop_side_by_side_inbox =
  prop "SoA = record path, bit for bit (surrogate in-box)" ~count:8 gen_ops
    (side_by_side ~pp:prog_pulse ~ep:erase_pulse)

let prop_side_by_side_exact =
  prop "SoA = record path, bit for bit (out-of-box exact)" ~count:8 gen_ops
    (side_by_side ~pp:prog_short ~ep:erase_short)

(* ---------- unit tests ---------- *)

let test_create_rejects_empty () =
  Alcotest.check_raises "n < 1"
    (Invalid_argument "Cell_store.create: n < 1") (fun () ->
      ignore (S.create ~n:0 (fresh_device ())))

let test_view_set_roundtrip () =
  let d = fresh_device () in
  let s = S.create ~n:3 d in
  let c =
    {
      Cell.device = d;
      qfg = -3.25e-16;
      wear = { Rel.fluence = 1.5; traps = 2.5e11; cycles = 7; broken = false };
    }
  in
  S.set s 1 c;
  let v = S.view s 1 in
  check_true "qfg bits" (same_f v.Cell.qfg c.Cell.qfg);
  check_true "fluence bits" (same_f v.Cell.wear.Rel.fluence 1.5);
  check_true "traps bits" (same_f v.Cell.wear.Rel.traps 2.5e11);
  Alcotest.(check int) "cycles" 7 v.Cell.wear.Rel.cycles;
  check_false "not broken" v.Cell.wear.Rel.broken;
  (* untouched neighbours stay fresh *)
  check_true "slot 0 untouched" (same_f (S.qfg s 0) 0.);
  Alcotest.(check int) "slot 2 untouched" 0 (S.cycles s 2)

let test_scalar_readout_matches_cell () =
  let d = fresh_device () in
  let s = S.create ~n:4 d in
  let charges = [| 0.; -2e-16; -6.5e-16; 1e-17 |] in
  Array.iteri (fun i q -> S.set_qfg s i q) charges;
  for i = 0 to 3 do
    let v = S.view s i in
    check_true "dvt bits" (same_f (S.dvt s i) (Cell.dvt v));
    Alcotest.(check int) "bit"
      (Cell.to_bit (Cell.state v))
      (S.bit s i)
  done

let test_range_equals_per_cell_loop () =
  (* fresh device per store: both runs start with cold caches, so the
     exact/surrogate consult history is identical *)
  let charges = [| 0.; -1e-16; -3e-16; -1e-16; -4.5e-16 |] in
  let run_range () =
    let s = S.create ~n:5 (fresh_device ()) in
    Array.iteri (fun i q -> S.set_qfg s i q) charges;
    let m = S.memo () in
    check_ok "range"
      (S.apply_pulse_range s ~memo:m ~pulse:erase_pulse ~surrogate:true ~lo:0
         ~hi:4);
    s
  in
  let run_loop () =
    let s = S.create ~n:5 (fresh_device ()) in
    Array.iteri (fun i q -> S.set_qfg s i q) charges;
    let m = S.memo () in
    for i = 0 to 4 do
      check_ok "at"
        (S.apply_pulse_at s ~memo:m ~pulse:erase_pulse ~surrogate:true i)
    done;
    s
  in
  let a = run_range () and b = run_loop () in
  for i = 0 to 4 do
    check_true "qfg" (same_f (S.qfg a i) (S.qfg b i));
    check_true "fluence" (same_f (S.fluence a i) (S.fluence b i));
    check_true "traps" (same_f (S.traps a i) (S.traps b i));
    Alcotest.(check int) "cycles" (S.cycles b i) (S.cycles a i)
  done;
  check_true "digest"
    (S.fold_digest a W.digest_fold W.digest_empty
    = S.fold_digest b W.digest_fold W.digest_empty)

let test_range_stops_at_broken () =
  let d = fresh_device () in
  let s = S.create ~n:5 d in
  S.set s 2
    {
      Cell.device = d;
      qfg = 0.;
      wear = { Rel.fluence = 0.; traps = 0.; cycles = 0; broken = true };
    };
  let m = S.memo () in
  (match
     S.apply_pulse_range s ~memo:m ~pulse:erase_short ~surrogate:true ~lo:0
       ~hi:4
   with
  | Ok () -> Alcotest.fail "range over a broken cell must fail"
  | Error e -> Alcotest.(check string) "broken error" "Cell: oxide broken" e);
  (* cells before the break kept their pulse, cells at/after are untouched *)
  Alcotest.(check int) "cell 0 pulsed" 1 (S.cycles s 0);
  Alcotest.(check int) "cell 1 pulsed" 1 (S.cycles s 1);
  Alcotest.(check int) "cell 2 untouched" 0 (S.cycles s 2);
  Alcotest.(check int) "cell 3 untouched" 0 (S.cycles s 3);
  Alcotest.(check int) "cell 4 untouched" 0 (S.cycles s 4);
  check_true "cell 3 charge unchanged" (same_f (S.qfg s 3) 0.)

let test_memo_replays_distinct_charges () =
  (* two cells at the same charge, one at a different charge: the memo
     must key per charge, and the replay must match the first solve *)
  let s = S.create ~n:3 (fresh_device ()) in
  S.set_qfg s 0 (-2e-16);
  S.set_qfg s 1 (-2e-16);
  S.set_qfg s 2 (-5e-16);
  let m = S.memo () in
  for i = 0 to 2 do
    check_ok "pulse"
      (S.apply_pulse_at s ~memo:m ~pulse:erase_short ~surrogate:true i)
  done;
  check_true "same start, same end" (same_f (S.qfg s 0) (S.qfg s 1));
  check_true "same start, same wear" (same_f (S.fluence s 0) (S.fluence s 1));
  check_true "distinct start, distinct end" (not (same_f (S.qfg s 0) (S.qfg s 2)))

let () =
  Alcotest.run "cell_store"
    [
      ( "cell_store",
        [
          case "create rejects n < 1" test_create_rejects_empty;
          case "view/set round-trip" test_view_set_roundtrip;
          case "dvt/bit match Cell" test_scalar_readout_matches_cell;
          case "range = per-cell loop" test_range_equals_per_cell_loop;
          case "range stops at broken cell" test_range_stops_at_broken;
          case "memo keys per distinct charge" test_memo_replays_distinct_charges;
          prop_side_by_side_inbox;
          prop_side_by_side_exact;
        ] );
    ]
