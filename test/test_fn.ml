module Fn = Gnrflash_quantum.Fn
module W = Gnrflash_materials.Workfunction
module O = Gnrflash_materials.Oxide
open Gnrflash_testing.Testing

let p = Fn.coefficients ~phi_b_ev:3.2 ~m_ox_rel:0.42

let test_textbook_coefficients () =
  (* Lenzlinger-Snow for Si/SiO2: A ~ 1.15e-6 A/V^2, B ~ 2.54e10 V/m *)
  check_close ~tol:1e-3 "A" 1.1469e-6 p.Fn.a;
  check_close ~tol:1e-3 "B" 2.5341e10 p.Fn.b

let test_coefficient_scalings () =
  (* A ~ 1/(m phi), B ~ sqrt(m) phi^1.5 *)
  let p2 = Fn.coefficients ~phi_b_ev:6.4 ~m_ox_rel:0.42 in
  check_close ~tol:1e-9 "A halves when phi doubles" (p.Fn.a /. 2.) p2.Fn.a;
  check_close ~tol:1e-9 "B scales as phi^1.5" (p.Fn.b *. (2. ** 1.5)) p2.Fn.b;
  let p3 = Fn.coefficients ~phi_b_ev:3.2 ~m_ox_rel:0.84 in
  check_close ~tol:1e-9 "A inverse in mass" (p.Fn.a /. 2.) p3.Fn.a;
  check_close ~tol:1e-9 "B as sqrt mass" (p.Fn.b *. sqrt 2.) p3.Fn.b

let test_validation () =
  Alcotest.check_raises "phi" (Invalid_argument "Fn.coefficients: phi_b <= 0")
    (fun () -> ignore (Fn.coefficients ~phi_b_ev:0. ~m_ox_rel:0.42))

let test_current_at_reference_field () =
  (* worked value pinned by the smoke analysis: J(18 MV/cm) ~ 285.7 A/cm^2 *)
  check_close ~tol:1e-3 "J at 18 MV/cm" 2.8568e6 (Fn.current_density p ~field:1.8e9)

let test_current_zero_for_reverse () =
  check_close "no reverse current" 0. (Fn.current_density p ~field:(-1e9));
  check_close "zero field" 0. (Fn.current_density p ~field:0.)

let test_eq6_eq7_consistency () =
  let j7 = Fn.paper_eq7 p ~vfg:9. ~xto:5e-9 in
  let j6 = Fn.current_from_voltages p ~vfg:9. ~vs:0. ~xto:5e-9 in
  check_close "eq7 is eq6 with VS=0" j6 j7;
  let j6' = Fn.current_from_voltages p ~vfg:9. ~vs:0.05 ~xto:5e-9 in
  check_true "source bias reduces J" (j6' < j6)

let test_eq7_negative_vfg () =
  check_close "no current for negative drop" 0. (Fn.paper_eq7 p ~vfg:(-1.) ~xto:5e-9)

let test_of_interface () =
  let p' = Fn.of_interface (W.Custom ("paper", 4.1)) O.sio2 in
  check_close ~tol:1e-9 "same barrier as direct construction" p.Fn.a p'.Fn.a;
  check_close ~tol:1e-9 "same B" p.Fn.b p'.Fn.b;
  check_close "phi recorded" 3.2 p'.Fn.phi_b_ev

let test_log10_total_at_nonpositive_field () =
  (* regression: log10_current used to raise Invalid_argument for
     field <= 0 while current_density returned 0. — the contract is now
     total and consistent: J = 0 maps to log10 J = -inf *)
  check_true "zero field" (Fn.log10_current p ~field:0. = neg_infinity);
  check_true "negative field" (Fn.log10_current p ~field:(-1.8e9) = neg_infinity);
  let module U = Gnrflash_units in
  check_true "typed view agrees"
    (Fn.log10_current_q p ~field:(U.v_per_m 0.) = neg_infinity)

let test_log10_current () =
  let field = 1.2e9 in
  let direct = log10 (Fn.current_density p ~field) in
  check_close ~tol:1e-9 "log-space agrees" direct (Fn.log10_current p ~field)

let test_log10_underflow_regime () =
  (* at very low fields J underflows but log10 is still finite *)
  let l = Fn.log10_current p ~field:2e7 in
  check_true "finite log" (Float.is_finite l);
  check_true "deeply negative" (l < -300.)

let test_field_for_current () =
  let j = Fn.current_density p ~field:1.5e9 in
  let e = check_ok "invert" (Fn.field_for_current p ~j) in
  check_close ~tol:1e-6 "roundtrip" 1.5e9 e

let test_field_for_current_invalid () =
  check_error "j <= 0" (Fn.field_for_current p ~j:0.)

let prop_monotone_in_field =
  prop "J strictly increasing in field"
    QCheck2.Gen.(pair (float_range 5e8 2.5e9) (float_range 1.01 1.5))
    (fun (e, factor) ->
       Fn.current_density p ~field:(e *. factor) > Fn.current_density p ~field:e)

let prop_higher_barrier_less_current =
  prop "J decreasing in barrier height"
    QCheck2.Gen.(float_range 2.0 4.5)
    (fun phi ->
       let p1 = Fn.coefficients ~phi_b_ev:phi ~m_ox_rel:0.42 in
       let p2 = Fn.coefficients ~phi_b_ev:(phi +. 0.3) ~m_ox_rel:0.42 in
       let e = 1.2e9 in
       Fn.current_density p2 ~field:e < Fn.current_density p1 ~field:e)

let prop_field_inversion_roundtrip =
  prop "field_for_current inverts current_density" ~count:50
    QCheck2.Gen.(float_range 8e8 2.2e9)
    (fun e ->
       let j = Fn.current_density p ~field:e in
       match Fn.field_for_current p ~j with
       | Ok e' -> abs_float (e' -. e) <= 1e-5 *. e
       | Error _ -> false)

let () =
  Alcotest.run "fn"
    [
      ( "fn",
        [
          case "textbook coefficients" test_textbook_coefficients;
          case "coefficient scalings" test_coefficient_scalings;
          case "validation" test_validation;
          case "reference current" test_current_at_reference_field;
          case "polarity handling" test_current_zero_for_reverse;
          case "eq6/eq7 consistency" test_eq6_eq7_consistency;
          case "eq7 negative VFG" test_eq7_negative_vfg;
          case "interface-derived params" test_of_interface;
          case "log-space evaluation" test_log10_current;
          case "log-space total at E <= 0" test_log10_total_at_nonpositive_field;
          case "log-space underflow" test_log10_underflow_regime;
          case "field inversion" test_field_for_current;
          case "field inversion invalid" test_field_for_current_invalid;
          prop_monotone_in_field;
          prop_higher_barrier_less_current;
          prop_field_inversion_roundtrip;
        ] );
    ]
