module W = Gnrflash_memory.Workload
module Ctl = Gnrflash_memory.Controller
module Am = Gnrflash_memory.Array_model
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let test_generate_counts () =
  let ops = W.generate ~seed:1 W.Uniform ~pages:4 ~strings:4 ~ops:50 ~read_fraction:0.5 in
  Alcotest.(check int) "op count" 50 (List.length ops)

let test_generate_deterministic () =
  let a = W.generate ~seed:7 W.Uniform ~pages:4 ~strings:4 ~ops:30 ~read_fraction:0.3 in
  let b = W.generate ~seed:7 W.Uniform ~pages:4 ~strings:4 ~ops:30 ~read_fraction:0.3 in
  check_true "same seed, same trace" (a = b);
  let c = W.generate ~seed:8 W.Uniform ~pages:4 ~strings:4 ~ops:30 ~read_fraction:0.3 in
  check_true "different seed differs" (a <> c)

let test_generate_read_fraction_extremes () =
  let reads_only = W.generate ~seed:1 W.Uniform ~pages:4 ~strings:4 ~ops:20 ~read_fraction:1. in
  check_true "all reads" (List.for_all (function W.Read _ -> true | W.Write _ -> false) reads_only);
  let writes_only = W.generate ~seed:1 W.Uniform ~pages:4 ~strings:4 ~ops:20 ~read_fraction:0. in
  check_true "all writes" (List.for_all (function W.Write _ -> true | W.Read _ -> false) writes_only)

let test_sequential_pattern () =
  let ops = W.generate ~seed:1 W.Sequential ~pages:3 ~strings:2 ~ops:6 ~read_fraction:0. in
  let pages = List.map (function W.Write { page; _ } -> page | W.Read { page } -> page) ops in
  Alcotest.(check (list int)) "round robin" [ 0; 1; 2; 0; 1; 2 ] pages

let test_zipf_skew () =
  let ops = W.generate ~seed:3 (W.Zipf 1.5) ~pages:16 ~strings:2 ~ops:400 ~read_fraction:0. in
  let counts = Array.make 16 0 in
  List.iter
    (function W.Write { page; _ } | W.Read { page } -> counts.(page) <- counts.(page) + 1)
    ops;
  (* rank-1 page must dominate the tail half of the distribution *)
  let tail = Array.fold_left ( + ) 0 (Array.sub counts 8 8) in
  check_true "head heavier than tail" (counts.(0) > tail);
  check_true "pages in range" (List.for_all
    (function W.Write { page; _ } | W.Read { page } -> page >= 0 && page < 16) ops)

let test_generate_validation () =
  Alcotest.check_raises "read fraction"
    (Invalid_argument "Workload.generate: read_fraction out of [0, 1]") (fun () ->
      ignore (W.generate ~seed:1 W.Uniform ~pages:2 ~strings:2 ~ops:5 ~read_fraction:1.5));
  Alcotest.check_raises "zipf exponent"
    (Invalid_argument "Workload.generate: zipf exponent <= 0") (fun () ->
      ignore (W.generate ~seed:1 (W.Zipf 0.) ~pages:2 ~strings:2 ~ops:5 ~read_fraction:0.))

(* ---- PR regression: structural determinism of the generator ---------- *)

(* Golden digest, pinned. Op [i] is a pure function of [(seed, i)] via
   per-op splitmix streams, so this value is independent of evaluation
   order, list-building strategy and execution tier. The pre-fix generator
   threaded one mutable PRNG through [List.init], whose evaluation order
   is an implementation detail of the stdlib — any reordering silently
   produced a different trace. A digest change here means every archived
   trace and benchmark baseline is invalidated: bump deliberately. *)
let test_golden_trace_digest () =
  let ops = W.generate ~seed:123 (W.Zipf 1.1) ~pages:64 ~strings:8 ~ops:256 ~read_fraction:0.3 in
  Alcotest.(check int) "pinned op-trace digest" 0x14184D2B34E5B1C2 (W.digest_ops ops)

let test_golden_command_digest () =
  let cmds = W.generate_commands ~seed:123 ~profile:W.default_profile ~ops:256 in
  Alcotest.(check int) "pinned command-trace digest" 0x25B28F51A731F4AC
    (W.digest_commands cmds)

let test_prefix_stability () =
  (* per-op seeding: a longer trace extends a shorter one, op for op *)
  let long = W.generate ~seed:42 W.Uniform ~pages:16 ~strings:4 ~ops:100 ~read_fraction:0.4 in
  let short = W.generate ~seed:42 W.Uniform ~pages:16 ~strings:4 ~ops:40 ~read_fraction:0.4 in
  check_true "prefix equal" (short = List.filteri (fun i _ -> i < 40) long)

let test_generate_commands_shape () =
  let profile = { W.default_profile with W.pages = 32; strings = 6 } in
  let cmds = W.generate_commands ~seed:5 ~profile ~ops:300 in
  Alcotest.(check int) "command count" 300 (Array.length cmds);
  Array.iter
    (function
      | W.Cmd_read { lpn } | W.Cmd_trim { lpn } ->
        check_true "lpn in range" (lpn >= 0 && lpn < 32)
      | W.Cmd_write { lpn; data; _ } ->
        check_true "lpn in range" (lpn >= 0 && lpn < 32);
        Alcotest.(check int) "data width" 6 (Array.length data);
        Array.iter (fun b -> check_true "bits" (b = 0 || b = 1)) data)
    cmds;
  let again = W.generate_commands ~seed:5 ~profile ~ops:300 in
  check_true "deterministic" (W.digest_commands cmds = W.digest_commands again)

let test_generate_commands_fractions () =
  let all_reads =
    W.generate_commands ~seed:3
      ~profile:{ W.default_profile with W.read_fraction = 1.; trim_fraction = 0. }
      ~ops:64
  in
  check_true "all reads"
    (Array.for_all (function W.Cmd_read _ -> true | _ -> false) all_reads);
  let all_suspend =
    W.generate_commands ~seed:3
      ~profile:
        { W.default_profile with
          W.read_fraction = 0.; trim_fraction = 0.; suspend_fraction = 1. }
      ~ops:64
  in
  check_true "all writes flagged for suspend"
    (Array.for_all
       (function W.Cmd_write { suspend; _ } -> suspend | _ -> false)
       all_suspend)

let test_replay_small_trace () =
  let pages = 2 and strings = 4 in
  let ctrl = Ctl.make (Am.make F.paper_default ~pages ~strings) in
  let ops = W.generate ~seed:11 W.Sequential ~pages ~strings ~ops:6 ~read_fraction:0.5 in
  let _, stats = check_ok "replay" (W.replay ctrl ops) in
  Alcotest.(check int) "ops accounted" 6 (stats.W.writes + stats.W.reads);
  Alcotest.(check int) "no verify failures" 0 stats.W.failed_verifies;
  Alcotest.(check int) "no broken cells" 0 stats.W.broken_cells

let test_replay_rewrite_triggers_erase () =
  let pages = 1 and strings = 2 in
  let ctrl = Ctl.make (Am.make F.paper_default ~pages ~strings) in
  let data = [| 0; 0 |] in
  let ops = [ W.Write { page = 0; data }; W.Write { page = 0; data } ] in
  let _, stats = check_ok "replay" (W.replay ctrl ops) in
  Alcotest.(check int) "second write needs an erase" 1 stats.W.erase_cycles

let () =
  Alcotest.run "workload"
    [
      ( "workload",
        [
          case "op counts" test_generate_counts;
          case "deterministic" test_generate_deterministic;
          case "read fraction extremes" test_generate_read_fraction_extremes;
          case "sequential pattern" test_sequential_pattern;
          case "zipf skew" test_zipf_skew;
          case "generate validation" test_generate_validation;
          case "golden trace digest" test_golden_trace_digest;
          case "golden command digest" test_golden_command_digest;
          case "prefix stability" test_prefix_stability;
          case "generate_commands shape" test_generate_commands_shape;
          case "generate_commands fractions" test_generate_commands_fractions;
          case "replay small trace" test_replay_small_trace;
          case "rewrite triggers erase" test_replay_rewrite_triggers_erase;
        ] );
    ]
