module W = Gnrflash_memory.Waveform
module F = Gnrflash_device.Fgt
open Gnrflash_testing.Testing

let t = F.paper_default

let test_pulse_train_structure () =
  let w = W.pulse_train ~vgs:15. ~width:1e-6 ~gap:2e-6 ~count:3 in
  Alcotest.(check int) "3 pulses + 2 gaps" 5 (List.length w);
  check_close ~tol:1e-12 "total duration" ((3. *. 1e-6) +. (2. *. 2e-6)) (W.total_duration w)

let test_pulse_train_no_gap () =
  let w = W.pulse_train ~vgs:15. ~width:1e-6 ~gap:0. ~count:3 in
  Alcotest.(check int) "gapless" 3 (List.length w)

let test_pulse_train_validation () =
  Alcotest.check_raises "width" (Invalid_argument "Waveform.pulse_train: width <= 0")
    (fun () -> ignore (W.pulse_train ~vgs:1. ~width:0. ~gap:0. ~count:1))

let test_staircase () =
  let w = W.staircase ~v0:12. ~step:0.5 ~width:1e-6 ~count:4 in
  Alcotest.(check int) "4 segments" 4 (List.length w);
  let biases = List.map (fun s -> s.W.vgs) w in
  Alcotest.(check (list (float 1e-9))) "ramp" [ 12.; 12.5; 13.; 13.5 ] biases

let test_apply_accumulates_charge () =
  let w = W.pulse_train ~vgs:15. ~width:10e-9 ~gap:10e-9 ~count:3 in
  let pts = check_ok "apply" (W.apply t ~qfg0:0. w) in
  Alcotest.(check int) "one point per segment" 5 (List.length pts);
  (* charge decreases across program pulses, holds across gaps *)
  let qs = List.map snd pts in
  (match qs with
   | q1 :: q2 :: q3 :: q4 :: [ q5 ] ->
     check_true "pulse 1 charges" (q1 < 0.);
     check_close "gap holds" q1 q2;
     check_true "pulse 2 charges more" (q3 < q2);
     check_close "gap holds" q3 q4;
     check_true "pulse 3 charges more" (q5 < q4)
   | _ -> Alcotest.fail "unexpected shape");
  (* times strictly increasing *)
  let rec increasing = function
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 < t2 && increasing rest
    | _ -> true
  in
  check_true "monotone time" (increasing pts)

let test_apply_equivalent_to_single_pulse () =
  (* two back-to-back pulses = one pulse of double width *)
  let w2 = W.pulse_train ~vgs:15. ~width:10e-9 ~gap:0. ~count:2 in
  let pts = check_ok "apply" (W.apply t ~qfg0:0. w2) in
  let q_double = snd (List.nth pts 1) in
  let single =
    check_sok "single" (Gnrflash_device.Transient.run t ~vgs:15. ~duration:20e-9)
  in
  check_close ~tol:1e-3 "equivalence" single.Gnrflash_device.Transient.qfg_final q_double

let test_apply_erase_train () =
  let w = [ { W.vgs = -15.; duration = 1e-3 } ] in
  let pts = check_ok "apply" (W.apply t ~qfg0:(-2e-17) w) in
  let q = snd (List.hd (List.rev pts)) in
  check_true "erased past neutral" (q > -2e-17)

let () =
  Alcotest.run "waveform"
    [
      ( "waveform",
        [
          case "pulse train structure" test_pulse_train_structure;
          case "gapless train" test_pulse_train_no_gap;
          case "validation" test_pulse_train_validation;
          case "staircase" test_staircase;
          case "apply accumulates" test_apply_accumulates_charge;
          case "split equals single" test_apply_equivalent_to_single_pulse;
          case "erase train" test_apply_erase_train;
        ] );
    ]
