(* Reproduction harness + microbenchmarks.

   Running this executable:
   1. regenerates every figure of the paper (the same series the paper
      plots), printing the numeric rows;
   2. runs the qualitative shape checks (who wins, what's monotone, where
      the crossover lies) — the pass/fail table recorded in EXPERIMENTS.md;
   3. regenerates the extension experiments (Ext A-F of DESIGN.md);
   4. times every generator with Bechamel (one Test.make per figure /
      experiment). *)

open Bechamel
open Bechamel.Toolkit
module Tel = Gnrflash_telemetry.Telemetry

let hr title =
  Printf.printf "\n=== %s %s\n" title (String.make (max 0 (66 - String.length title)) '=')

(* ---------- part 1: figure regeneration ---------- *)

(* One thunk per paper figure so each regeneration runs under its own
   telemetry span; the span timings become the per-figure wall-clock rows of
   BENCH_telemetry.json. *)
let figure_generators =
  [
    ("fig2", fun () -> Gnrflash.Figures.fig2_band_diagram ());
    ("fig4", fun () -> fst (Gnrflash.Figures.fig4_initial_currents ()));
    ("fig5", fun () -> fst (Gnrflash.Figures.fig5_transient ()));
    ("fig6", fun () -> Gnrflash.Figures.fig6_program_gcr ());
    ("fig7", fun () -> Gnrflash.Figures.fig7_program_xto ());
    ("fig8", fun () -> Gnrflash.Figures.fig8_erase_gcr ());
    ("fig9", fun () -> Gnrflash.Figures.fig9_erase_xto ());
  ]

let print_figures () =
  hr "Paper figures (regenerated series)";
  List.iter
    (fun (name, gen) ->
       let fig = Tel.span ("figure/" ^ name) gen in
       print_newline ();
       print_string (Gnrflash.Report.series_table fig ~max_rows:6))
    figure_generators

let print_checks () =
  hr "Shape checks (paper vs model)";
  let checks = Tel.span "checks" Gnrflash.Report.all_checks in
  print_string (Gnrflash.Report.render checks);
  List.for_all (fun c -> c.Gnrflash.Report.passed) checks

(* Ablations of design choices called out in DESIGN.md. *)
let print_ablations () =
  hr "Ablation: image-force barrier lowering";
  let phi = 3.2 *. Gnrflash_physics.Constants.ev in
  let m = 0.42 *. Gnrflash_physics.Constants.m0 in
  List.iter
    (fun field_mv ->
       let field = field_mv *. 1e8 in
       let bare = Gnrflash_quantum.Barrier.triangular ~phi_b:phi ~field ~m_eff:m in
       let rounded = Gnrflash_quantum.Barrier.with_image_force ~eps_r:3.9 bare in
       let e = 0.05 *. Gnrflash_physics.Constants.ev in
       let t_bare = Gnrflash_quantum.Wkb.transmission bare ~energy:e in
       let t_img = Gnrflash_quantum.Wkb.transmission rounded ~energy:e in
       Printf.printf "  %5.1f MV/cm: T_bare=%.3e  T_image=%.3e  boost=%.1fx\n" field_mv
         t_bare t_img (t_img /. t_bare))
    [ 8.; 12.; 16. ];
  hr "Ablation: eq(3) divider vs 1D Poisson";
  let stack = Gnrflash_device.Electrostatics.of_fgt (Gnrflash.Params.device ()) in
  List.iter
    (fun sigma ->
       match Gnrflash_device.Electrostatics.solve stack ~vgs:15. ~vs:0. ~sigma_fg:sigma with
       | Ok s ->
         let divider =
           Gnrflash_device.Electrostatics.vfg_divider stack ~vgs:15. ~vs:0.
             ~sigma_fg:sigma
         in
         Printf.printf "  sigma=%9.2e C/m^2: VFG poisson=%.4f V divider=%.4f V\n" sigma
           s.Gnrflash_device.Electrostatics.vfg divider
       | Error e -> Printf.printf "  poisson failed: %s\n" e)
    [ 0.; -0.005; -0.02 ];
  hr "Ablation: SILC (trap-assisted) retention multiplier";
  let fn = Gnrflash.Params.fn () in
  List.iter
    (fun nt ->
       let r =
         Gnrflash_quantum.Trap_assisted.silc_ratio fn ~trap_density:nt ~v_ox:1.2
           ~thickness:5e-9
       in
       Printf.printf "  N_t=%8.1e /m^2: J_TAT/J_direct = %.3e\n" nt r)
    [ 1e13; 1e14; 1e15 ];
  hr "Ablation: transfer-matrix staircase convergence";
  let barrier = Gnrflash_quantum.Barrier.triangular ~phi_b:phi ~field:1.2e9 ~m_eff:m in
  let e = 0.2 *. Gnrflash_physics.Constants.ev in
  let reference =
    Gnrflash_quantum.Transfer_matrix.transmission ~steps:3200 barrier ~energy:e
  in
  List.iter
    (fun steps ->
       let t = Gnrflash_quantum.Transfer_matrix.transmission ~steps barrier ~energy:e in
       Printf.printf "  %5d steps: T=%.6e (vs 3200-step ref: %+.2f%%)\n" steps t
         (100. *. ((t /. reference) -. 1.)))
    [ 50; 100; 200; 400; 800 ];
  hr "System: FN vs CHE page energy";
  List.iter
    (fun (k, v) -> Printf.printf "  %-22s %.4e\n" k v)
    (Gnrflash_memory.Energy.page_program_comparison ~cells:4096);
  hr "System: FTL write amplification";
  let module F = Gnrflash_memory.Ftl in
  let module W = Gnrflash_memory.Workload in
  List.iter
    (fun (name, pattern) ->
       let ftl = F.create F.default_config in
       let trace =
         W.generate ~seed:2014 pattern ~pages:(F.logical_capacity ftl) ~strings:1
           ~ops:8000 ~read_fraction:0.
       in
       match F.run_trace ftl trace with
       | Error e -> Printf.printf "  %-12s failed: %s\n" name (F.error_to_string e)
       | Ok ftl ->
         let s = F.stats ftl in
         Printf.printf "  %-12s WA=%.3f gc=%d wear-spread=%.0f\n" name
           s.F.write_amplification s.F.gc_runs (F.wear_spread ftl))
    [ ("sequential", W.Sequential); ("uniform", W.Uniform); ("zipf-1.3", W.Zipf 1.3) ];
  hr "Ext K: retention after cycling (SILC)";
  List.iter
    (fun (cycles, traps, mult) ->
       Printf.printf "  %6d cycles: N_t=%9.2e /m^2  leakage x%.3f\n" cycles traps mult)
    (Gnrflash.Extensions.retention_after_cycling ());
  hr "Ext L: MLC error budget (variation -> BER -> ECC)";
  List.iter
    (fun (a : Gnrflash_memory.Ber.analysis) ->
       Printf.printf "  sigma=%.2f V: raw BER=%.3e page-fail=%.3e %s\n"
         a.Gnrflash_memory.Ber.sigma_dvt a.Gnrflash_memory.Ber.raw_ber
         a.Gnrflash_memory.Ber.page_failure
         (if a.Gnrflash_memory.Ber.acceptable then "OK" else "FAIL"))
    (Gnrflash.Extensions.mlc_error_budget ());
  Printf.printf "  max tolerable sigma: %.3f V\n"
    (Gnrflash_memory.Ber.max_tolerable_sigma ());
  hr "Ablation: square vs ramped program pulse";
  (* same total time; the ramp reaches nearly the same dVT while the peak
     tunnel-oxide field (the oxide-wear driver) is much lower *)
  let device = Gnrflash.Params.device () in
  let peak_field_of segments =
    (* peak field occurs at each segment start, before charge accumulates *)
    let q = ref 0. and peak = ref 0. in
    List.iter
      (fun (s : Gnrflash_memory.Waveform.segment) ->
         if s.Gnrflash_memory.Waveform.vgs <> 0. then begin
           peak :=
             max !peak
               (abs_float
                  (Gnrflash_device.Fgt.tunnel_field device
                     ~vgs:s.Gnrflash_memory.Waveform.vgs ~qfg:!q));
           match
             Gnrflash_device.Transient.run ~qfg0:!q device
               ~vgs:s.Gnrflash_memory.Waveform.vgs
               ~duration:s.Gnrflash_memory.Waveform.duration
           with
           | Ok r -> q := r.Gnrflash_device.Transient.qfg_final
           | Error _ -> ()
         end)
      segments;
    (!peak, Gnrflash_device.Fgt.threshold_shift device ~qfg:!q)
  in
  let square = [ { Gnrflash_memory.Waveform.vgs = 15.; duration = 100e-6 } ] in
  let ramp =
    Gnrflash_memory.Waveform.staircase ~v0:11. ~step:0.5 ~width:(100e-6 /. 9.) ~count:9
  in
  let peak_sq, dvt_sq = peak_field_of square in
  let peak_rp, dvt_rp = peak_field_of ramp in
  Printf.printf "  square 15 V/100 us: peak field %.1f MV/cm, dVT = %.2f V\n"
    (peak_sq /. 1e8) dvt_sq;
  Printf.printf "  ramp 11->15 V:      peak field %.1f MV/cm, dVT = %.2f V\n"
    (peak_rp /. 1e8) dvt_rp;
  hr "Ablation: dynamic MLGNR quantum-capacitance feedback";
  List.iter
    (fun layers ->
       let stack =
         Gnrflash_materials.Mlgnr.make
           (Gnrflash_materials.Gnr.make Gnrflash_materials.Gnr.Armchair 12)
           ~layers
       in
       match Gnrflash_device.Qcap.run ~stack (Gnrflash.Params.device ()) ~vgs:15.
               ~duration:1e-2 with
       | Ok r ->
         Printf.printf
           "  %d-layer FG: dVT %.3f V (metal ref %.3f V), window shrink %.1f%%, EF %.3f eV\n"
           layers r.Gnrflash_device.Qcap.dvt_final
           r.Gnrflash_device.Qcap.dvt_final_metal
           (100. *. r.Gnrflash_device.Qcap.window_shrink)
           r.Gnrflash_device.Qcap.ef_final_ev
       | Error e -> Printf.printf "  %d-layer FG: failed (%s)\n" layers e)
    [ 1; 3; 8 ];
  hr "Ext M: temperature bake (Arrhenius)";
  let bake_rows, ea = Gnrflash.Extensions.bake_test () in
  List.iter
    (fun (temp, time) ->
       Printf.printf "  T=%3.0f K (%3.0f C): t(80%% charge) = %s\n" temp (temp -. 273.)
         (if Float.is_finite time then Printf.sprintf "%.3e s" time else ">100 years"))
    bake_rows;
  Printf.printf "  extracted Ea = %.3f eV (model: 0.300 eV)\n" ea;
  hr "Ext N: weibull oxide reliability";
  let module Rs = Gnrflash_device.Reliability_stats in
  let w = { Rs.beta = 2.0; eta = 630. } in
  let qs = Rs.sample ~seed:2014 w ~n:2000 in
  (match Rs.fit qs with
   | Ok (fitted, r2) ->
     Printf.printf "  2000-device Q_BD sample: fitted beta=%.2f eta=%.0f C/m^2 (R^2=%.4f)\n"
       fitted.Rs.beta fitted.Rs.eta r2
   | Error e -> Printf.printf "  fit failed: %s\n" e);
  Printf.printf "  100-ppm endurance at 0.08 C/m^2 per cycle: %.0f cycles\n"
    (Rs.population_endurance ~seed:2014 w ~charge_per_cycle_per_area:0.08 ~n:100_000
       ~ppm_target:100.);
  hr "System: process variation";
  let module V = Gnrflash_device.Variation in
  let base = Gnrflash.Params.device () in
  (match V.summarize (V.sample_devices ~seed:2014 ~base ~n:100 ()) with
   | Ok s ->
     Printf.printf
       "  100 devices: t_med=%.2e s, p95/p5=%.1fx, sigma(dVT)=%.3f V, dXTO sens=%.2f dec/nm\n"
       s.V.t_prog_median s.V.t_prog_spread s.V.dvt_sigma (V.sensitivity_xto base)
   | Error msg -> Printf.printf "  variation summary unavailable: %s\n" msg)

let print_extensions () =
  hr "Ext A: JFN model comparison";
  List.iter
    (fun (name, pts) ->
       Printf.printf "  %-24s" name;
       Array.iter (fun (e, j) -> Printf.printf " %8.1f->%9.2e" e j)
         (Array.sub pts 0 (min 4 (Array.length pts)));
       print_newline ())
    (Gnrflash.Extensions.model_comparison ~fields_mv_cm:[| 8.; 11.; 14.; 17. |] ());
  hr "Ext B: design optimization";
  let best, points = Gnrflash.Extensions.optimize_design () in
  Printf.printf "  evaluated %d design points\n" (List.length points);
  Printf.printf "  best feasible: GCR=%.2f XTO=%.1fnm t_prog=%.3e s E=%.1f MV/cm endurance=%.2e\n"
    best.Gnrflash.Extensions.gcr best.Gnrflash.Extensions.xto_nm
    best.Gnrflash.Extensions.program_time
    (best.Gnrflash.Extensions.peak_field /. 1e8)
    best.Gnrflash.Extensions.endurance;
  hr "Ext C: retention";
  let _, loss = Gnrflash.Extensions.retention_curve () in
  Printf.printf "  10-year charge loss at dVT0 = 2 V: %.4f %%\n" loss;
  hr "Ext D: endurance";
  let _, survived = Gnrflash.Extensions.endurance_curve ~cycles:2000 () in
  Printf.printf "  cycles survived (budget 2000): %d\n" survived;
  hr "Ext E: quantum-capacitance correction";
  List.iter
    (fun (n, g0, g_eff) ->
       Printf.printf "  %d-layer FG: geometric GCR %.3f -> effective %.3f\n" n g0 g_eff)
    (Gnrflash.Extensions.qcap_comparison ~layers:[ 1; 2; 3; 5; 10 ]);
  hr "Ext F: NAND page program";
  match Gnrflash.Extensions.nand_page_demo () with
  | Error e -> Printf.printf "  FAILED: %s\n" e
  | Ok s ->
    Printf.printf "  pages=%d verify_failures=%d max_disturb_dVT=%.4f V mean_pulses=%.1f\n"
      s.Gnrflash.Extensions.pages_written s.Gnrflash.Extensions.verify_failures
      s.Gnrflash.Extensions.disturb_dvt_max s.Gnrflash.Extensions.mean_pulses

(* ---------- part 2: sweep-engine scaling ---------- *)

module Sweep = Gnrflash.Sweep

type scaling_row = {
  serial_s : float;
  parallel_s : float;
  identical : bool;
}

type scaling = {
  cores : int;
  pool_jobs : int;
  grid : scaling_row;
  monte_carlo : scaling_row;
  shard : scaling_row;
  pool_spawned : int;  (* pool domains spawned for the in-process rows *)
  mc_flushes : int;    (* telemetry flushes during the parallel MC sweep *)
}

let time_wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Serial vs domain-pool wall clock on the two hottest sweeps: the Fig 6/7
   program grids (compared as CSV bytes) and a Monte-Carlo variation
   ensemble (compared bit-exactly via Marshal, so NaNs don't defeat the
   check). The pool always runs at least 2 domains so the parallel path is
   exercised even on a single-core host — where oversubscription means no
   speedup is expected and the honest numbers (plus the core count) go into
   BENCH_telemetry.json. *)
let sweep_scaling () =
  hr "Sweep engine: serial vs parallel wall clock";
  let cores = Sweep.available_jobs () in
  let pool_jobs = max 2 (min 4 cores) in
  let grid_csv () =
    Gnrflash_plot.Csv.of_figure (Gnrflash.Figures.fig6_program_gcr ())
    ^ Gnrflash_plot.Csv.of_figure (Gnrflash.Figures.fig7_program_xto ())
  in
  (* the figure generators read the job count from the Sweep default (the
     CLI --jobs path); restore serial afterwards *)
  let run_grid jobs =
    Sweep.set_default_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Sweep.set_default_jobs 1)
      (fun () -> time_wall grid_csv)
  in
  let run_mc ?shards jobs =
    time_wall (fun () ->
        Gnrflash_device.Variation.sample_devices ~jobs ?shards
          ~base:Gnrflash_device.Fgt.paper_default ~n:120 ())
  in
  let g1, tg1 = run_grid 1 in
  let gp, tgp = run_grid pool_jobs in
  let m1, tm1 = run_mc 1 in
  let flushes_before = Tel.flush_count () in
  let mp, tmp = run_mc pool_jobs in
  (* parallel-overhead budget: telemetry is batched (one flush per
     participating worker per sweep) and the pool is process-lifetime (the
     grid run spawned it; the MC run must reuse it) *)
  let mc_flushes = Tel.flush_count () - flushes_before in
  let pool_spawned = Sweep.pool_spawned () in
  (* multi-process tier: forked shard workers, compared per field at the
     Int64 bit level — NaNs defeat (=), and Marshal bytes of a recombined
     sharded ensemble differ from serial because cross-slice string
     sharing is lost in pipe transit, so neither is the right oracle *)
  let msh, tmsh = run_mc ~shards:2 1 in
  let row serial_s parallel_s identical = { serial_s; parallel_s; identical } in
  let report name (r : scaling_row) =
    Printf.printf
      "  %-24s serial %7.1f ms  %d-domain %7.1f ms  speedup %.2fx  output %s\n"
      name (r.serial_s *. 1e3) pool_jobs (r.parallel_s *. 1e3)
      (r.serial_s /. r.parallel_s)
      (if r.identical then "identical" else "DIFFERS")
  in
  let grid = row tg1 tgp (String.equal g1 gp) in
  let monte_carlo =
    row tm1 tmp (String.equal (Marshal.to_string m1 []) (Marshal.to_string mp []))
  in
  let samples_identical (a : Gnrflash_device.Variation.sample array) b =
    let module V = Gnrflash_device.Variation in
    let fb = Int64.bits_of_float in
    Array.length a = Array.length b
    && Array.for_all Fun.id
         (Array.mapi
            (fun i (x : V.sample) ->
              let y : V.sample = b.(i) in
              fb x.V.xto = fb y.V.xto
              && fb x.V.phi_b_ev = fb y.V.phi_b_ev
              && fb x.V.gcr = fb y.V.gcr
              && fb x.V.program_time = fb y.V.program_time
              && fb x.V.dvt_fixed_pulse = fb y.V.dvt_fixed_pulse
              && x.V.solve_failed = y.V.solve_failed
              && Option.map Gnrflash_resilience.Solver_error.to_string x.V.failure
                 = Option.map Gnrflash_resilience.Solver_error.to_string y.V.failure)
            a)
  in
  let shard = row tm1 tmsh (samples_identical m1 msh) in
  report "fig6+fig7 grid (CSV)" grid;
  report "variation n=120" monte_carlo;
  Printf.printf
    "  %-24s serial %7.1f ms  2-shard  %7.1f ms  speedup %.2fx  output %s\n"
    "variation n=120 (fork)" (shard.serial_s *. 1e3) (shard.parallel_s *. 1e3)
    (shard.serial_s /. shard.parallel_s)
    (if shard.identical then "identical" else "DIFFERS");
  Printf.printf
    "  overhead budget: pool spawned %d domain(s) (<= %d jobs), %d telemetry \
     flush(es) on the parallel MC sweep (<= %d jobs)\n"
    pool_spawned pool_jobs mc_flushes pool_jobs;
  if cores < pool_jobs then
    Printf.printf
      "  (host has %d core(s) for %d domains: oversubscribed, no speedup expected)\n"
      cores pool_jobs;
  { cores; pool_jobs; grid; monte_carlo; shard; pool_spawned; mc_flushes }

(* The scale-out gate: outputs must be identical on every tier, overhead
   must stay inside budget everywhere, and on a host with real cores the
   in-process tier must not be slower than serial (>= 0.9x guards the
   regression this PR fixed; single-core hosts report honestly instead of
   failing, since oversubscribed domains cannot win). *)
let scaling_ok (s : scaling) =
  let speedup (r : scaling_row) = r.serial_s /. r.parallel_s in
  let identical = s.grid.identical && s.monte_carlo.identical && s.shard.identical in
  let speedups_ok =
    s.cores < 2
    || (speedup s.grid >= 0.9 && speedup s.monte_carlo >= 0.9)
  in
  let overhead_ok =
    s.pool_spawned <= s.pool_jobs && s.mc_flushes <= s.pool_jobs
  in
  identical && speedups_ok && overhead_ok

(* ---------- part 3: bechamel timing ---------- *)

let stage f = Staged.stage f

let figure_tests =
  [
    Test.make ~name:"fig2-band-diagram"
      (stage (fun () -> ignore (Gnrflash.Figures.fig2_band_diagram ())));
    Test.make ~name:"fig4-initial-currents"
      (stage (fun () -> ignore (Gnrflash.Figures.fig4_initial_currents ())));
    Test.make ~name:"fig5-transient"
      (stage (fun () -> ignore (Gnrflash.Figures.fig5_transient ())));
    Test.make ~name:"fig6-program-gcr"
      (stage (fun () -> ignore (Gnrflash.Figures.fig6_program_gcr ())));
    Test.make ~name:"fig7-program-xto"
      (stage (fun () -> ignore (Gnrflash.Figures.fig7_program_xto ())));
    Test.make ~name:"fig8-erase-gcr"
      (stage (fun () -> ignore (Gnrflash.Figures.fig8_erase_gcr ())));
    Test.make ~name:"fig9-erase-xto"
      (stage (fun () -> ignore (Gnrflash.Figures.fig9_erase_xto ())));
  ]

let extension_tests =
  [
    Test.make ~name:"ext-a-model-ablation"
      (stage (fun () ->
           ignore
             (Gnrflash.Extensions.model_comparison ~fields_mv_cm:[| 10.; 14. |] ())));
    Test.make ~name:"ext-b-design-point"
      (stage (fun () -> ignore (Gnrflash.Extensions.evaluate_design ~gcr:0.6 ~xto_nm:5.)));
    Test.make ~name:"ext-c-retention"
      (stage (fun () -> ignore (Gnrflash.Extensions.retention_curve ())));
    Test.make ~name:"ext-d-endurance-100"
      (stage (fun () -> ignore (Gnrflash.Extensions.endurance_curve ~cycles:100 ())));
    Test.make ~name:"ext-e-qcap"
      (stage (fun () -> ignore (Gnrflash.Extensions.qcap_comparison ~layers:[ 1; 5 ])));
    Test.make ~name:"ext-f-nand-page"
      (stage (fun () -> ignore (Gnrflash.Extensions.nand_page_demo ~pages:1 ~strings:4 ())));
  ]

let kernel_tests =
  let fn = Gnrflash.Params.fn () in
  let phi = 3.2 *. Gnrflash_physics.Constants.ev in
  let m = 0.42 *. Gnrflash_physics.Constants.m0 in
  let barrier = Gnrflash_quantum.Barrier.triangular ~phi_b:phi ~field:1.2e9 ~m_eff:m in
  [
    Test.make ~name:"kernel-fn-closed-form"
      (stage (fun () -> ignore (Gnrflash_quantum.Fn.current_density fn ~field:1.2e9)));
    Test.make ~name:"kernel-wkb-quadrature"
      (stage (fun () ->
           ignore (Gnrflash_quantum.Wkb.transmission barrier ~energy:1e-21)));
    Test.make ~name:"kernel-transfer-matrix-400"
      (stage (fun () ->
           ignore
             (Gnrflash_quantum.Transfer_matrix.transmission ~steps:400 barrier
                ~energy:(0.1 *. Gnrflash_physics.Constants.ev))));
    Test.make ~name:"kernel-airy-exact"
      (stage (fun () ->
           ignore
             (Gnrflash_quantum.Triangular_exact.transmission_fn ~phi_b:phi ~field:1.2e9
                ~thickness:5e-9 ~m_b:m ~m_e:Gnrflash_physics.Constants.m0
                ~energy:(0.1 *. Gnrflash_physics.Constants.ev))));
    Test.make ~name:"kernel-program-transient"
      (stage (fun () ->
           ignore
             (Gnrflash_device.Transient.run Gnrflash_device.Fgt.paper_default ~vgs:15.
                ~duration:10.)));
  ]

let system_tests =
  [
    Test.make ~name:"system-poisson-solve"
      (stage (fun () ->
           let stack =
             Gnrflash_device.Electrostatics.of_fgt Gnrflash_device.Fgt.paper_default
           in
           ignore
             (Gnrflash_device.Electrostatics.solve stack ~vgs:15. ~vs:0.
                ~sigma_fg:(-0.01))));
    Test.make ~name:"system-mlc-program-4-levels"
      (stage (fun () ->
           for level = 1 to 3 do
             ignore
               (Gnrflash_memory.Mlc.program_level Gnrflash_device.Fgt.paper_default
                  ~qfg0:0. ~level)
           done));
    Test.make ~name:"system-ecc-encode-decode-64"
      (stage
         (let data = Array.init 64 (fun i -> i land 1) in
          fun () ->
            match Gnrflash_memory.Ecc.decode ~k:64 (Gnrflash_memory.Ecc.encode data) with
            | Gnrflash_memory.Ecc.Clean _ -> ()
            | _ -> failwith "ecc"));
    Test.make ~name:"system-ftl-1000-writes"
      (stage (fun () ->
           let ftl = Gnrflash_memory.Ftl.create Gnrflash_memory.Ftl.default_config in
           let rec go ftl n =
             if n = 0 then ()
             else
               match Gnrflash_memory.Ftl.write ftl ~lpn:(n mod 100) with
               | Ok ftl -> go ftl (n - 1)
               | Error _ -> ()
           in
           go ftl 1000));
    Test.make ~name:"system-variation-10-devices"
      (stage (fun () ->
           ignore
             (Gnrflash_device.Variation.sample_devices
                ~base:Gnrflash_device.Fgt.paper_default ~n:10 ())));
  ]

let run_benchmarks () =
  hr "Bechamel microbenchmarks";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.3) ~kde:(Some 100) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let all_tests = figure_tests @ extension_tests @ kernel_tests @ system_tests in
  Printf.printf "  %-28s %14s %10s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun test ->
       List.iter
         (fun (name, result) ->
            let est = Analyze.one ols Instance.monotonic_clock result in
            let ns =
              match Analyze.OLS.estimates est with
              | Some [ e ] -> e
              | _ -> nan
            in
            let r2 = match Analyze.OLS.r_square est with Some r -> r | None -> nan in
            let time_str =
              if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
              else Printf.sprintf "%.1f ns" ns
            in
            Printf.printf "  %-28s %14s %10.4f\n" name time_str r2)
         (Benchmark.all cfg instances test |> Hashtbl.to_seq |> List.of_seq
          |> List.sort compare))
    all_tests

(* ---------- part 4: telemetry artifact ---------- *)

(* Per-figure fallback/budget counter totals. Counters bumped while a
   figure regenerates carry that figure's span-context prefix
   (e.g. figure/fig5/transient/run/resilience/fallback_used), so summing
   every counter under figure/<name>/ that ends with the resilience key
   gives the figure's total. On the golden parameter set every figure must
   solve on the first rung: any fallback use is a regression. *)
type resilience_row = {
  fig : string;
  fallback_used : int;
  budget_exhausted_n : int;
}

let resilience_rows snap =
  let total fig key =
    let prefix = "figure/" ^ fig ^ "/" in
    let suffix = "resilience/" ^ key in
    List.fold_left
      (fun acc (name, v) ->
         if String.starts_with ~prefix name && String.ends_with ~suffix name
         then acc + v
         else acc)
      0 snap.Tel.counters
  in
  List.map
    (fun (fig, _) ->
       {
         fig;
         fallback_used = total fig "fallback_used";
         budget_exhausted_n = total fig "budget_exhausted";
       })
    figure_generators

(* ---------- hot-path RHS/quadrature budgets ---------- *)

(* Counter-budget regression gate for the hot-path acceleration work
   (ISSUE 5). Budgets are derived from the seed's measured eval counts on
   the same telemetry-on workloads (Ext A/B/D plus the figures), divided by
   the minimum speedup the acceleration must deliver:

     - program_erase pulse RHS evals: seed 3,292,338 -> budget /3
       (FSAL stepper + warm-started pulse trains + limit-cycle replay)
     - fixed-step re-integration RHS evals: seed 315,200 -> budget /10
       (event times now read off the dense interpolant; expected 0)
     - WKB quadrature fn evals inside Tsu-Esaki: seed 223,396 -> budget /5
       (memoized closed-form transmission, one adaptive recursion per node
        replaced by an O(segments) closed form)

   Exceeding a budget fails the bench run non-zero, exactly like a shape
   check or lint regression. Re-baselining requires editing these constants
   and justifying the change. *)

let contains_sub ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

type perf_row = {
  metric : string;
  measured : int;
  budget : int;
  seed_baseline : int;
}

let perf_rows snap =
  let total ?(mid = "") ~suffix () =
    List.fold_left
      (fun acc (name, v) ->
         if String.ends_with ~suffix name && contains_sub ~sub:mid name then
           acc + v
         else acc)
      0 snap.Tel.counters
  in
  [
    {
      metric = "pulse_rhs_evals";
      measured = total ~mid:"program_erase/pulse/" ~suffix:"ode/rhs_eval" ();
      budget = 3_292_338 / 3;
      seed_baseline = 3_292_338;
    };
    {
      metric = "fixed_step_rhs_evals";
      measured = total ~suffix:"ode/rhs_eval_fixed" ();
      budget = 315_200 / 10;
      seed_baseline = 315_200;
    };
    {
      metric = "tsu_esaki_quad_fn_evals";
      measured =
        total ~mid:"tsu_esaki/current_density" ~suffix:"quad/fn_eval" ();
      budget = 223_396 / 5;
      seed_baseline = 223_396;
    };
  ]

(* Flag plumbing probe, run while telemetry is still on: a short warm pulse
   train and a cached Tsu-Esaki call under perf/flags_on (counters must
   fire), then the same work with ~warm_start:false / ~wkb_cache:false
   under perf/flags_off (the same counters must stay silent). The span
   prefix keys the two runs apart in the snapshot. *)
let perf_probe () =
  let phi_b = 3.2 *. Gnrflash_physics.Constants.ev in
  let m_b = 0.42 *. Gnrflash_physics.Constants.m0 in
  let ef = 0.1 *. Gnrflash_physics.Constants.ev in
  let train ~warm_start =
    (* a fresh device record per train (with_gcr rebuilds the record at the
       paper's own GCR): the warm cache is keyed by physical identity, so
       this guarantees a cold, deterministic start regardless of which pulse
       workloads ran earlier in the bench *)
    let t = Gnrflash_device.Fgt.(with_gcr paper_default 0.6) in
    let pp = { Gnrflash_device.Program_erase.vgs = 15.; duration = 100e-6 } in
    let ep = { Gnrflash_device.Program_erase.vgs = -15.; duration = 100e-6 } in
    let q = ref 0. in
    (* surrogate off: it outranks the replay cache, so with it on the warm
       counters this probe asserts on would never fire *)
    for _ = 1 to 6 do
      match
        Gnrflash_device.Program_erase.cycle ~warm_start ~surrogate:false
          ~program_pulse:pp ~erase_pulse:ep t ~qfg:!q
      with
      | Ok (_, e) -> q := e.Gnrflash_device.Program_erase.qfg_after
      | Error _ -> ()
    done
  in
  Tel.span "perf/flags_on" (fun () ->
      train ~warm_start:true;
      ignore
        (Gnrflash_quantum.Tsu_esaki.current_density ~wkb_cache:true ~phi_b
           ~field:1.2e9 ~thickness:5e-9 ~m_b ~ef ()));
  Tel.span "perf/flags_off" (fun () ->
      train ~warm_start:false;
      ignore
        (Gnrflash_quantum.Tsu_esaki.current_density ~wkb_cache:false ~phi_b
           ~field:1.2e9 ~thickness:5e-9 ~m_b ~ef ()))

(* ---------- pulse-surrogate probe and gates ---------- *)

module Ps = Gnrflash_device.Pulse_surrogate
module Dpe = Gnrflash_device.Program_erase

(* Counter probe, telemetry on (mirrors perf_probe): a short cycle train
   with the surrogate on must build tables and serve hits, an out-of-box
   pulse must fall back; the same train with the flag off must leave every
   surrogate counter silent. build_after is forced to 0 so the first pulse
   of the train promotes immediately. *)
let surrogate_probe () =
  let train ~surrogate =
    let t = Gnrflash_device.Fgt.(with_gcr paper_default 0.6) in
    let pp = { Dpe.vgs = 15.; duration = 100e-6 } in
    let ep = { Dpe.vgs = -15.; duration = 100e-6 } in
    let q = ref 0. in
    for _ = 1 to 4 do
      match Dpe.cycle ~surrogate ~program_pulse:pp ~erase_pulse:ep t ~qfg:!q with
      | Ok (_, e) -> q := e.Dpe.qfg_after
      | Error _ -> ()
    done;
    ignore
      (Dpe.apply_pulse ~surrogate ~warm_start:false t ~qfg:0.
         { Dpe.vgs = 18.; duration = 100e-6 })
  in
  let prev = Ps.build_after () in
  Ps.set_build_after 0;
  Fun.protect ~finally:(fun () -> Ps.set_build_after prev) @@ fun () ->
  Tel.span "perf/surrogate_on" (fun () -> train ~surrogate:true);
  Tel.span "perf/surrogate_off" (fun () -> train ~surrogate:false)

type surrogate_report = {
  sur_flags_on_ok : bool;
  sur_flags_off_ok : bool;
  sur_builds : int;
  sur_hits : int;
  sur_fallbacks : int;
  sur_bound : float;        (* worst certified bound across probed tables *)
  sur_divergence : float;   (* worst measured divergence vs exact *)
  sur_div_ok : bool;        (* every divergence within its table's bound *)
  sur_exact_s : float;      (* per-pulse wall clock, exact ODE path *)
  sur_pulse_s : float;      (* per-pulse wall clock, surrogate-served *)
  sur_speedup : float;
  sur_build_s : float;      (* summed table build CPU time *)
}

let surrogate_speedup_gate = 100.

(* Timing + certification report, telemetry off (production config, like
   the microbenchmarks). Divergence is checked with each table's own
   divergence metric against a fresh exact solve at deterministic probe
   points; the per-pulse speedup is measured through the full
   apply_pulse serving path against cold exact solves. *)
let surrogate_report snap =
  let under prefix suffix =
    List.fold_left
      (fun acc (name, v) ->
         if String.starts_with ~prefix name && String.ends_with ~suffix name
         then acc + v
         else acc)
      0 snap.Tel.counters
  in
  let on s = under "perf/surrogate_on/" s and off s = under "perf/surrogate_off/" s in
  let sur_flags_on_ok =
    on "surrogate/build" > 0 && on "surrogate/hit" > 0 && on "surrogate/fallback" > 0
  in
  let sur_flags_off_ok =
    off "surrogate/build" = 0 && off "surrogate/hit" = 0
    && off "surrogate/fallback" = 0
  in
  let t = Gnrflash_device.Fgt.paper_default in
  let build vgs =
    match Ps.build t ~vgs with
    | Ok tab -> tab
    | Error e ->
      Printf.eprintf "bench: surrogate build failed: %s\n"
        (Gnrflash_resilience.Solver_error.to_string e);
      exit 1
  in
  let tab_p = build 15. and tab_e = build (-15.) in
  let sur_build_s = Ps.build_seconds tab_p +. Ps.build_seconds tab_e in
  let worst_div = ref 0. and div_ok = ref true in
  let probe tab vgs =
    let lo, hi = Ps.qfg_range tab in
    List.iter
      (fun (u, d) ->
         let qfg = lo +. (u *. (hi -. lo)) in
         match Ps.query tab ~qfg ~duration:d with
         | None -> ()
         | Some r ->
           (match Gnrflash_device.Transient.run ~qfg0:qfg t ~vgs ~duration:d with
            | Error _ -> div_ok := false
            | Ok ex ->
              let dv =
                Ps.divergence tab ~exact:ex.Gnrflash_device.Transient.qfg_final
                  ~approx:r.Ps.qfg_after
              in
              if dv > !worst_div then worst_div := dv;
              if dv > Ps.certified_bound tab then div_ok := false))
      [ (0., 1e-6); (0.15, 1e-5); (0.35, 1e-4); (0.5, 3e-4); (0.65, 1e-3);
        (0.85, 1e-2); (1., 1e-5); (0.5, 1e-9); (0.5, 1e-1) ]
  in
  probe tab_p 15.;
  probe tab_e (-15.);
  (* per-pulse wall clock: cold exact solves vs table-served apply_pulse *)
  let lo, hi = Ps.qfg_range tab_p in
  let n_exact = 8 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n_exact - 1 do
    let qfg = lo +. (float_of_int i /. float_of_int n_exact *. (hi -. lo)) in
    ignore (Gnrflash_device.Transient.run ~qfg0:qfg t ~vgs:15. ~duration:100e-6)
  done;
  let sur_exact_s = (Unix.gettimeofday () -. t0) /. float_of_int n_exact in
  let prev = Ps.build_after () in
  Ps.set_build_after 0;
  let sur_pulse_s =
    Fun.protect ~finally:(fun () -> Ps.set_build_after prev) @@ fun () ->
    let pulse = { Dpe.vgs = 15.; duration = 100e-6 } in
    ignore (Dpe.apply_pulse t ~qfg:0. pulse) (* warm the domain cache *);
    let n = 20_000 in
    let t0 = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      let qfg = lo +. (float_of_int (i mod 997) /. 997. *. (hi -. lo)) in
      ignore (Dpe.apply_pulse t ~qfg pulse)
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  {
    sur_flags_on_ok;
    sur_flags_off_ok;
    sur_builds = on "surrogate/build";
    sur_hits = on "surrogate/hit";
    sur_fallbacks = on "surrogate/fallback";
    sur_bound = Float.max (Ps.certified_bound tab_p) (Ps.certified_bound tab_e);
    sur_divergence = !worst_div;
    sur_div_ok = !div_ok;
    sur_exact_s;
    sur_pulse_s;
    sur_speedup = sur_exact_s /. sur_pulse_s;
    sur_build_s;
  }

let print_surrogate s =
  hr "Perf: certified pulse surrogate";
  Printf.printf
    "  probe counters: builds=%d hits=%d fallbacks=%d  flags on %s, flags off %s\n"
    s.sur_builds s.sur_hits s.sur_fallbacks
    (if s.sur_flags_on_ok then "fire" else "SILENT (regression)")
    (if s.sur_flags_off_ok then "silent" else "FIRE (flag plumbing broken)");
  Printf.printf
    "  divergence vs exact: %.3e (certified bound %.3e)  %s\n"
    s.sur_divergence s.sur_bound
    (if s.sur_div_ok then "ok" else "OUT OF BOUND");
  Printf.printf
    "  per pulse: exact %.3e s, surrogate %.3e s  (%.0fx, gate %.0fx)  %s\n"
    s.sur_exact_s s.sur_pulse_s s.sur_speedup surrogate_speedup_gate
    (if s.sur_speedup >= surrogate_speedup_gate then "ok" else "TOO SLOW");
  s.sur_flags_on_ok && s.sur_flags_off_ok && s.sur_div_ok
  && s.sur_speedup >= surrogate_speedup_gate

type perf = {
  rows : perf_row list;
  flags_on_ok : bool;
  flags_off_ok : bool;
}

let perf_of_snapshot snap =
  let under prefix suffix =
    List.fold_left
      (fun acc (name, v) ->
         if String.starts_with ~prefix name && String.ends_with ~suffix name
         then acc + v
         else acc)
      0 snap.Tel.counters
  in
  let on p = under "perf/flags_on/" p and off p = under "perf/flags_off/" p in
  {
    rows = perf_rows snap;
    flags_on_ok =
      on "transient/warm_start_hit" > 0
      && on "program_erase/pulse_replay" > 0
      && on "wkb/cache_hit" > 0
      && on "wkb/cache_build" > 0;
    flags_off_ok =
      off "transient/warm_start_hit" = 0
      && off "program_erase/pulse_replay" = 0
      && off "wkb/cache_hit" = 0
      && off "wkb/cache_build" = 0;
  }

let print_perf perf =
  hr "Perf: hot-path eval budgets (vs seed baselines)";
  List.iter
    (fun r ->
       Printf.printf "  %-26s %9d evals  budget %9d  seed %9d  (%5.1fx)  %s\n"
         r.metric r.measured r.budget r.seed_baseline
         (float_of_int r.seed_baseline /. float_of_int (max 1 r.measured))
         (if r.measured <= r.budget then "ok" else "OVER BUDGET"))
    perf.rows;
  Printf.printf "  warm-start/cache counters: flags on %s, flags off %s\n"
    (if perf.flags_on_ok then "fire" else "SILENT (regression)")
    (if perf.flags_off_ok then "silent" else "FIRE (flag plumbing broken)");
  List.for_all (fun r -> r.measured <= r.budget) perf.rows
  && perf.flags_on_ok && perf.flags_off_ok

(* ---------- command-level service fleet gate ---------- *)

module Svc = Gnrflash_memory.Service
module Wkl = Gnrflash_memory.Workload

(* End-to-end gate for the command-level NOR service (ISSUE 8, scaled to
   >= 1e6 aggregate ops by ISSUE 10's SoA cell store): a fleet of
   independent service instances pushes host traffic through the FTL and
   mirrors every journaled physical op onto the JEDEC command FSM. Gates:
   zero lost ops, zero data mismatches, zero protocol errors, FTL
   invariants intact, the fleet's folded trace/state digests bit-identical
   across the execution tiers (--jobs 2 and --shards 2 vs the serial run)
   AND equal to the seed record-based cell path on the reference workload,
   plus (full mode) the throughput floor and the minor-heap allocation
   budget below. --quick runs a reduced fleet with the correctness gates
   only. *)

(* 3x the ISSUE 8 record-based baseline (38.6k ops/s serial tier on the
   reference host) — the ISSUE 10 acceptance floor. *)
let svc_ops_per_s_floor = 115_800.

(* Minor-heap allocation budget for the service hot loop, measured as
   [Gc.minor_words] delta per host command on a single serial instance
   (the pool tier runs in other domains, invisible to the probe). The
   SoA store runs the memoized program/erase replays allocation-free —
   including settled out-of-box outcomes (see Cell_store /
   Pulse_surrogate.response_static); the residual is workload generation,
   the first-occurrence solves and the mirror-path bookkeeping — see
   DESIGN.md "Cell store". Measured ~620 words/op at ISSUE 10; the budget
   leaves ~30% headroom. *)
let svc_alloc_budget = 800.

(* Fleet digests of the seed record-based cell path on the reference
   workloads (8 instances, seed 2014, splitmix per-instance seeds,
   default config), captured immediately before the SoA refactor. The
   store must reproduce them bit-for-bit. *)
let svc_ref_full = (0x220177D6E385E5D6, 0x359CE3F68DF1567C) (* 8 x 13_000 *)
let svc_ref_quick = (0x2B1EBC781D8A520D, 0x329D851F83DC4DF0) (* 8 x 250 *)

type service_stats = {
  svc_instances : int;
  svc_per_instance : int;
  svc_ops : int;
  svc_lost : int;
  svc_mismatches : int;
  svc_bad_sequences : int;
  svc_invariant_failures : string list;
  svc_trace_digest : int;
  svc_state_digest : int;
  svc_jobs_identical : bool;
  svc_shards_identical : bool;
  svc_ref_identical : bool;
      (* reference-workload digests match the record-based path *)
  svc_alloc_words_per_op : float;
  svc_perf_gated : bool; (* full mode: throughput + alloc gates apply *)
  svc_wall_s : float;
  svc_ops_per_s : float;
  svc_p50 : float;
  svc_p95 : float;
  svc_p99 : float;
}

let service_fleet ~jobs ~shards ~instances ~per_instance ~seed =
  (* serial_cutoff 0: force the pool path so the jobs tier is actually
     exercised, not auto-serialized away *)
  Gnrflash.Sweep.init ~jobs ~shards ~serial_cutoff:0. instances (fun i ->
      let seed_i = Gnrflash.Sweep.splitmix ~seed ~index:i in
      let s = Svc.create (Gnrflash.Params.device ()) in
      let r = Svc.run_trace ~seed:seed_i ~ops:per_instance s in
      (r, Svc.latencies s))

let fleet_digests results =
  let fold f =
    Array.fold_left
      (fun acc (r, _) -> Wkl.digest_fold acc (f r))
      Wkl.digest_empty results
  in
  (fold (fun r -> r.Svc.trace_digest), fold (fun r -> r.Svc.state_digest))

let service_report ~quick () =
  let instances = 8 in
  let per_instance = if quick then 250 else 130_000 in
  let seed = 2014 in
  (* allocation probe first, on a dedicated serial instance in this
     domain: Gc.minor_words only observes the calling domain, and the
     fleets below run inside the domain pool *)
  let alloc_ops = if quick then 250 else 13_000 in
  let alloc_w =
    let s = Svc.create (Gnrflash.Params.device ()) in
    let m0 = Gc.minor_words () in
    let (_ : Svc.report) =
      Svc.run_trace
        ~seed:(Gnrflash.Sweep.splitmix ~seed ~index:0)
        ~ops:alloc_ops s
    in
    (Gc.minor_words () -. m0) /. float_of_int alloc_ops
  in
  let t0 = Unix.gettimeofday () in
  let base = service_fleet ~jobs:1 ~shards:1 ~instances ~per_instance ~seed in
  let wall = Unix.gettimeofday () -. t0 in
  let jobs2 = service_fleet ~jobs:2 ~shards:1 ~instances ~per_instance ~seed in
  let shards2 =
    service_fleet ~jobs:1 ~shards:2 ~instances ~per_instance ~seed
  in
  let td, sd = fleet_digests base in
  (* record-path equality: in quick mode the base fleet IS the 8 x 250
     reference workload; in full mode rerun the 8 x 13_000 reference *)
  let ref_identical =
    if quick then (td, sd) = svc_ref_quick
    else
      fleet_digests
        (service_fleet ~jobs:1 ~shards:1 ~instances ~per_instance:13_000 ~seed)
      = svc_ref_full
  in
  let sum f = Array.fold_left (fun a (r, _) -> a + f r) 0 base in
  let lats = Svc.merge_latencies (Array.to_list (Array.map snd base)) in
  let pct p =
    if Array.length lats = 0 then 0.
    else
      lats.(int_of_float
              (Float.round (p *. float_of_int (Array.length lats - 1))))
  in
  let ops = sum (fun r -> r.Svc.ops) in
  {
    svc_instances = instances;
    svc_per_instance = per_instance;
    svc_ops = ops;
    svc_lost = sum (fun r -> r.Svc.lost_ops);
    svc_mismatches =
      sum (fun r -> r.Svc.read_mismatches + r.Svc.verify_mismatches);
    svc_bad_sequences =
      sum (fun r -> r.Svc.fsm.Gnrflash_memory.Command_fsm.bad_sequences);
    svc_invariant_failures =
      Array.fold_left
        (fun acc (r, _) ->
           match r.Svc.invariant_error with None -> acc | Some e -> e :: acc)
        [] base;
    svc_trace_digest = td;
    svc_state_digest = sd;
    svc_jobs_identical = fleet_digests jobs2 = (td, sd);
    svc_shards_identical = fleet_digests shards2 = (td, sd);
    svc_ref_identical = ref_identical;
    svc_alloc_words_per_op = alloc_w;
    svc_perf_gated = not quick;
    svc_wall_s = wall;
    svc_ops_per_s = float_of_int ops /. Float.max wall 1e-9;
    svc_p50 = pct 0.50;
    svc_p95 = pct 0.95;
    svc_p99 = pct 0.99;
  }

let service_ok s =
  s.svc_lost = 0 && s.svc_mismatches = 0 && s.svc_bad_sequences = 0
  && s.svc_invariant_failures = [] && s.svc_jobs_identical
  && s.svc_shards_identical && s.svc_ref_identical
  && (not s.svc_perf_gated
      || s.svc_ops >= 1_000_000
         && s.svc_ops_per_s >= svc_ops_per_s_floor
         && s.svc_alloc_words_per_op <= svc_alloc_budget)

let print_service s =
  hr "Service: command-level NOR fleet (FTL -> JEDEC command FSM)";
  Printf.printf "  fleet            %d instances x %d host commands\n"
    s.svc_instances s.svc_per_instance;
  Printf.printf "  throughput       %.0f ops/s wall (%.2f s serial tier)%s\n"
    s.svc_ops_per_s s.svc_wall_s
    (if not s.svc_perf_gated then ""
     else if s.svc_ops_per_s >= svc_ops_per_s_floor then
       Printf.sprintf "  >= %.0f ok" svc_ops_per_s_floor
     else Printf.sprintf "  BELOW FLOOR %.0f" svc_ops_per_s_floor);
  Printf.printf "  minor alloc      %.0f words/op (budget %.0f)  %s\n"
    s.svc_alloc_words_per_op svc_alloc_budget
    (if (not s.svc_perf_gated) || s.svc_alloc_words_per_op <= svc_alloc_budget
     then "ok"
     else "OVER BUDGET");
  Printf.printf "  latency p50/p95/p99  %.3e / %.3e / %.3e s (model)\n"
    s.svc_p50 s.svc_p95 s.svc_p99;
  Printf.printf "  lost ops         %d  %s\n" s.svc_lost
    (if s.svc_lost = 0 then "ok" else "LOST");
  Printf.printf "  data mismatches  %d  %s\n" s.svc_mismatches
    (if s.svc_mismatches = 0 then "ok" else "CORRUPT");
  Printf.printf "  protocol errors  %d  %s\n" s.svc_bad_sequences
    (if s.svc_bad_sequences = 0 then "ok" else "BAD SEQUENCE");
  List.iter
    (fun e -> Printf.printf "  INVARIANT VIOLATION: %s\n" e)
    s.svc_invariant_failures;
  Printf.printf "  trace digest     0x%016X\n" s.svc_trace_digest;
  Printf.printf "  state digest     0x%016X\n" s.svc_state_digest;
  Printf.printf "  --jobs 2 tier    %s\n"
    (if s.svc_jobs_identical then "bit-identical" else "DIVERGED");
  Printf.printf "  --shards 2 tier  %s\n"
    (if s.svc_shards_identical then "bit-identical" else "DIVERGED");
  Printf.printf "  record-path ref  %s\n"
    (if s.svc_ref_identical then "bit-identical" else "DIVERGED");
  service_ok s

(* ---------- static-analysis gate ---------- *)

module Lint = Gnrflash_lint_engine.Lint_engine

(* The bench doubles as a CI gate for gnrflash-lint: record the rule
   counts in BENCH_telemetry.json and fail the run if any unsuppressed
   finding exists, so a lint regression cannot ship silently. *)
let run_lint () =
  hr "Static analysis (gnrflash-lint over lib/)";
  let report = Lint.run ~root:(Lint.locate_root ()) ~subdir:"lib" () in
  let unsuppressed = Lint.unsuppressed report in
  let suppressed = Lint.suppressed report in
  List.iter
    (fun f -> Printf.printf "  %s\n" (Lint.render_finding f))
    unsuppressed;
  Printf.printf "  %d file(s), %d rule(s): %d finding(s), %d suppressed\n"
    report.Lint.files_scanned
    (List.length Lint.all_rules)
    (List.length report.Lint.findings)
    (List.length suppressed);
  List.iter
    (fun (r, unsup, sup) ->
      if unsup + sup > 0 then
        Printf.printf "    %s: %d unsuppressed, %d suppressed\n"
          (Lint.rule_id r) unsup sup)
    (Lint.by_rule report);
  report

(* Machine-readable bench trajectory: per-figure wall-clock timings, the
   serial-vs-parallel scaling rows, plus the full counter/span snapshot,
   written next to the repo's other BENCH data. *)
let write_bench_telemetry ~path ~checks_passed ~scaling ~resilience ~perf
    ~surrogate ~service ~lint snap =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"schema\":\"gnrflash-bench-telemetry/1\",";
  Buffer.add_string b
    (Printf.sprintf "\"checks_passed\":%b,\"figures\":{" checks_passed);
  let prefix = "figure/" in
  let figures =
    List.filter_map
      (fun (name, (s : Tel.span_stat)) ->
         if String.starts_with ~prefix name then begin
           let rest =
             String.sub name (String.length prefix)
               (String.length name - String.length prefix)
           in
           (* top-level figure spans only; nested solver spans stay in the
              full telemetry section *)
           if String.contains rest '/' then None else Some (rest, s.Tel.total_s)
         end
         else None)
      snap.Tel.spans
  in
  List.iteri
    (fun i (name, seconds) ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b (Printf.sprintf "\"%s\":%.6e" name seconds))
    figures;
  let scaling_row (r : scaling_row) =
    Printf.sprintf
      "{\"serial_s\":%.6e,\"parallel_s\":%.6e,\"speedup\":%.3f,\"identical\":%b}"
      r.serial_s r.parallel_s (r.serial_s /. r.parallel_s) r.identical
  in
  Buffer.add_string b
    (Printf.sprintf
       "},\"sweep\":{\"cores\":%d,\"jobs\":%d,\"grid\":%s,\"monte_carlo\":%s,\
        \"shard\":%s,\"overhead\":{\"pool_spawned\":%d,\"mc_flushes\":%d},\
        \"scaling_ok\":%b}"
       scaling.cores scaling.pool_jobs (scaling_row scaling.grid)
       (scaling_row scaling.monte_carlo) (scaling_row scaling.shard)
       scaling.pool_spawned scaling.mc_flushes (scaling_ok scaling));
  Buffer.add_string b ",\"resilience\":{";
  List.iteri
    (fun i r ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (Printf.sprintf "\"%s\":{\"fallback_used\":%d,\"budget_exhausted\":%d}"
            r.fig r.fallback_used r.budget_exhausted_n))
    resilience;
  Buffer.add_char b '}';
  Buffer.add_string b ",\"perf\":{";
  List.iteri
    (fun i r ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (Printf.sprintf
            "\"%s\":{\"measured\":%d,\"budget\":%d,\"seed_baseline\":%d,\"ok\":%b}"
            r.metric r.measured r.budget r.seed_baseline (r.measured <= r.budget)))
    perf.rows;
  Buffer.add_string b
    (Printf.sprintf "%s\"flags_on_ok\":%b,\"flags_off_ok\":%b}"
       (if perf.rows = [] then "" else ",")
       perf.flags_on_ok perf.flags_off_ok);
  Buffer.add_string b
    (Printf.sprintf
       ",\"surrogate\":{\"build_s\":%.6e,\"builds\":%d,\"hits\":%d,\
        \"fallbacks\":%d,\"certified_bound\":%.6e,\"max_divergence\":%.6e,\
        \"divergence_ok\":%b,\"per_pulse_exact_s\":%.6e,\
        \"per_pulse_surrogate_s\":%.6e,\"speedup\":%.1f,\"speedup_gate\":%.0f,\
        \"flags_on_ok\":%b,\"flags_off_ok\":%b}"
       surrogate.sur_build_s surrogate.sur_builds surrogate.sur_hits
       surrogate.sur_fallbacks surrogate.sur_bound surrogate.sur_divergence
       surrogate.sur_div_ok surrogate.sur_exact_s surrogate.sur_pulse_s
       surrogate.sur_speedup surrogate_speedup_gate surrogate.sur_flags_on_ok
       surrogate.sur_flags_off_ok);
  Buffer.add_string b
    (Printf.sprintf
       ",\"service\":{\"instances\":%d,\"ops\":%d,\"ops_per_s\":%.1f,\
        \"ops_per_s_floor\":%.0f,\"alloc_words_per_op\":%.1f,\
        \"alloc_budget\":%.0f,\
        \"latency_model_s\":{\"p50\":%.6e,\"p95\":%.6e,\"p99\":%.6e},\
        \"lost_ops\":%d,\"mismatches\":%d,\"bad_sequences\":%d,\
        \"invariant_failures\":%d,\"trace_digest\":\"0x%016X\",\
        \"state_digest\":\"0x%016X\",\"jobs_identical\":%b,\
        \"shards_identical\":%b,\"ref_identical\":%b,\"ok\":%b}"
       service.svc_instances service.svc_ops service.svc_ops_per_s
       svc_ops_per_s_floor service.svc_alloc_words_per_op svc_alloc_budget
       service.svc_p50 service.svc_p95 service.svc_p99 service.svc_lost
       service.svc_mismatches service.svc_bad_sequences
       (List.length service.svc_invariant_failures) service.svc_trace_digest
       service.svc_state_digest service.svc_jobs_identical
       service.svc_shards_identical service.svc_ref_identical
       (service_ok service));
  Buffer.add_string b
    (Printf.sprintf
       ",\"lint\":{\"rules_checked\":%d,\"findings\":%d,\"suppressed\":%d,\
        \"by_rule\":{%s}}"
       (List.length Lint.all_rules)
       (List.length lint.Lint.findings)
       (List.length (Lint.suppressed lint))
       (String.concat ","
          (List.map
             (fun (r, unsup, sup) ->
               Printf.sprintf "\"%s\":{\"unsuppressed\":%d,\"suppressed\":%d}"
                 (Lint.rule_id r) unsup sup)
             (Lint.by_rule lint))));
  Buffer.add_string b ",\"telemetry\":";
  Buffer.add_string b (Tel.render_json snap);
  Buffer.add_string b "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\nwrote %s (%d figure timings, %d counters)\n" path
    (List.length figures) (List.length snap.Tel.counters)

let () =
  (* --quick: the counter-budget smoke run wired into `dune runtest` — the
     telemetry-on workloads, the shape checks, and the perf budgets, but no
     bechamel timing, no scaling comparison, no lint pass, and no JSON
     artifact. A budget regression fails the test suite, not just the full
     bench. *)
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  Tel.reset ();
  Tel.enable ();
  print_figures ();
  let checks_passed = print_checks () in
  print_extensions ();
  print_ablations ();
  perf_probe ();
  surrogate_probe ();
  let snap = Tel.snapshot () in
  (* run the scaling comparison and the microbenchmarks with telemetry
     disabled so both measure the production (counters-off) configuration *)
  Tel.disable ();
  let perf = perf_of_snapshot snap in
  let perf_ok = print_perf perf in
  let sur = surrogate_report snap in
  let sur_ok = print_surrogate sur in
  (* telemetry already off: the service fleet must not inflate the
     hot-path eval budgets measured above *)
  let service = service_report ~quick () in
  let service_passed = print_service service in
  if quick then begin
    hr "Done (quick)";
    if not checks_passed then prerr_endline "bench: qualitative shape checks FAILED";
    if not perf_ok then prerr_endline "bench: perf eval budgets exceeded";
    if not sur_ok then
      prerr_endline "bench: pulse-surrogate certification or speedup gate FAILED";
    if not service_passed then
      prerr_endline
        "bench: command-level service gate FAILED (lost ops, data \
         mismatch, protocol error, tier or record-path divergence, \
         throughput floor, or alloc budget)";
    exit (if checks_passed && perf_ok && sur_ok && service_passed then 0 else 1)
  end;
  let scaling = sweep_scaling () in
  run_benchmarks ();
  let resilience = resilience_rows snap in
  let lint = run_lint () in
  write_bench_telemetry ~path:"BENCH_telemetry.json" ~checks_passed ~scaling
    ~resilience ~perf ~surrogate:sur ~service ~lint snap;
  hr "Resilience (per-figure fallback/budget counters)";
  List.iter
    (fun r ->
       Printf.printf "  %-6s fallback_used=%d budget_exhausted=%d\n" r.fig
         r.fallback_used r.budget_exhausted_n)
    resilience;
  let fallbacks_used = List.exists (fun r -> r.fallback_used > 0) resilience in
  if fallbacks_used then
    prerr_endline
      "bench: a figure needed a fallback rung on the golden parameter set";
  let lint_failed = Lint.unsuppressed lint <> [] in
  let scale_ok = scaling_ok scaling in
  hr "Done";
  if not checks_passed || fallbacks_used || lint_failed || not perf_ok
     || not sur_ok || not scale_ok || not service_passed
  then begin
    if not checks_passed then
      prerr_endline "bench: qualitative shape checks FAILED";
    if lint_failed then
      prerr_endline "bench: unsuppressed gnrflash-lint findings";
    if not perf_ok then
      prerr_endline "bench: perf eval budgets exceeded or flag plumbing broken";
    if not sur_ok then
      prerr_endline "bench: pulse-surrogate certification or speedup gate FAILED";
    if not scale_ok then
      prerr_endline
        "bench: parallel scale-out gate FAILED (non-identical output, \
         sub-0.9x speedup on a multi-core host, or overhead over budget)";
    if not service_passed then
      prerr_endline
        "bench: command-level service gate FAILED (lost ops, data \
         mismatch, protocol error, tier or record-path divergence, \
         throughput floor, or alloc budget)";
    exit 1
  end
