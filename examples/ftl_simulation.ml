(* Flash-translation-layer simulation: drive a 16-block device with
   sequential, uniform and zipf workloads; compare write amplification,
   garbage-collection pressure and wear-leveling flatness.

   Run with: dune exec examples/ftl_simulation.exe *)

module F = Gnrflash_memory.Ftl
module W = Gnrflash_memory.Workload

let run_workload name pattern =
  let ftl = F.create F.default_config in
  let capacity = F.logical_capacity ftl in
  let ops =
    W.generate ~seed:2014 pattern ~pages:capacity ~strings:1 ~ops:20_000
      ~read_fraction:0.
  in
  match F.run_trace ftl ops with
  | Error e -> Printf.printf "%-12s FAILED: %s\n" name (F.error_to_string e)
  | Ok ftl ->
    let s = F.stats ftl in
    Printf.printf "%-12s WA=%.3f  gc=%-5d erases=%-5d wear=[%d..%d] spread=%.0f\n"
      name s.F.write_amplification s.F.gc_runs s.F.erases s.F.min_erase_count
      s.F.max_erase_count (F.wear_spread ftl)

let () =
  let cfg = F.default_config in
  Printf.printf
    "FTL: %d blocks x %d pages, %d logical pages exposed, GC threshold %d\n\n"
    cfg.F.blocks cfg.F.pages_per_block
    (F.logical_capacity (F.create cfg))
    cfg.F.gc_threshold;
  Printf.printf "20000 page writes per workload:\n";
  run_workload "sequential" W.Sequential;
  run_workload "uniform" W.Uniform;
  run_workload "zipf(0.9)" (W.Zipf 0.9);
  run_workload "zipf(1.3)" (W.Zipf 1.3);
  print_newline ();
  print_endline
    "Skewed (zipf) traffic concentrates invalidations, so GC finds emptier \
     victims and write amplification drops; uniform traffic is the worst case."
