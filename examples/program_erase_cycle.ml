(* A full program / read / erase / read cycle of one MLGNR-CNT cell,
   showing the charge-balance dynamics of paper Section III and the logic
   convention (programmed = '0', erased = '1').

   Run with: dune exec examples/program_erase_cycle.exe *)

module D = Gnrflash_device
module M = Gnrflash_memory

let show_state label (cell : M.Cell.t) =
  let logic = M.Cell.read cell in
  Printf.printf "%-18s QFG = %+.3e C  dVT = %+6.3f V  reads as '%d'\n" label
    cell.M.Cell.qfg (M.Cell.dvt cell) (M.Cell.to_bit logic)

let () =
  let cell = M.Cell.make D.Fgt.paper_default in
  show_state "fresh:" cell;

  (* Program with the default 15 V / 1 ms pulse. *)
  let programmed =
    match M.Cell.program cell with
    | Ok c -> c
    | Error e -> failwith ("program failed: " ^ e)
  in
  show_state "programmed:" programmed;

  (* Erase with -15 V. *)
  let erased =
    match M.Cell.erase programmed with
    | Ok c -> c
    | Error e -> failwith ("erase failed: " ^ e)
  in
  show_state "erased:" erased;

  (* The transient inside the program pulse, as in paper Figs 4-5. *)
  print_newline ();
  (match D.Transient.run D.Fgt.paper_default ~vgs:15. ~duration:10. with
   | Error e -> prerr_endline (Gnrflash_resilience.Solver_error.to_string e)
   | Ok r ->
     Printf.printf "programming transient (tsat = %s):\n"
       (match r.D.Transient.tsat with
        | Some t -> Printf.sprintf "%.3e s" t
        | None -> "not reached");
     Printf.printf "  %-12s %-10s %-12s %-12s\n" "t [s]" "VFG [V]" "Jin[A/cm2]"
       "Jout[A/cm2]";
     let samples = r.D.Transient.samples in
     let n = Array.length samples in
     Array.iteri
       (fun i s ->
          if i mod (max 1 (n / 10)) = 0 || i = n - 1 then
            Printf.printf "  %-12.3e %-10.3f %-12.3e %-12.3e\n" s.D.Transient.time
              s.D.Transient.vfg
              (s.D.Transient.j_in /. 1e4)
              (s.D.Transient.j_out /. 1e4))
       samples);

  (* ISPP: how production flash would program this cell to dVT = 2 V. *)
  print_newline ();
  (match D.Ispp.run D.Fgt.paper_default ~qfg0:0. with
   | Error e -> prerr_endline e
   | Ok r ->
     Printf.printf "ISPP to dVT = 2 V: %d pulses, passed = %b\n" r.D.Ispp.pulses_used
       r.D.Ispp.passed;
     List.iter
       (fun s ->
          Printf.printf "  pulse %2d @ %.1f V -> dVT = %.3f V\n" s.D.Ispp.pulse_index
            s.D.Ispp.vgs s.D.Ispp.dvt)
       r.D.Ispp.steps)
