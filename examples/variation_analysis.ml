(* Process-variation Monte Carlo: how manufacturing spread in oxide
   thickness, barrier height and coupling ratio translates into
   programming-speed and threshold-placement distributions — the
   exponential FN sensitivity made quantitative.

   Run with: dune exec examples/variation_analysis.exe *)

module V = Gnrflash_device.Variation
module F = Gnrflash_device.Fgt
module Stats = Gnrflash_numerics.Stats

let () =
  let base = F.paper_default in
  Printf.printf "XTO sensitivity at the paper point: %.2f decades of t_prog per nm\n\n"
    (V.sensitivity_xto base);

  let show label spread =
    let samples = V.sample_devices ~spread ~seed:7 ~base ~n:200 () in
    match V.summarize samples with
    | Ok s ->
      Printf.printf "%-28s t_med=%.2e s  t_p95=%.2e s  spread(p95/p5)=%6.1fx  sigma(dVT)=%.3f V\n"
        label s.V.t_prog_median s.V.t_prog_p95 s.V.t_prog_spread s.V.dvt_sigma
    | Error msg -> Printf.printf "%-28s %s\n" label msg
  in
  Printf.printf "200-device ensembles (program to dVT = 2 V at 15 V):\n";
  show "all sources (default)" V.default_spread;
  show "oxide only (1 A sigma)" { V.sigma_xto = 0.1e-9; sigma_phi = 0.; sigma_gcr = 0. };
  show "barrier only (50 meV)" { V.sigma_xto = 0.; sigma_phi = 0.05; sigma_gcr = 0. };
  show "GCR only (1%)" { V.sigma_xto = 0.; sigma_phi = 0.; sigma_gcr = 0.01 };

  (* histogram of fixed-pulse threshold placement *)
  print_newline ();
  let samples = V.sample_devices ~seed:7 ~base ~n:400 () in
  let dvts = Array.map (fun s -> s.V.dvt_fixed_pulse) samples in
  let h = Stats.histogram ~bins:10 dvts in
  Printf.printf "dVT after a fixed 100 ns pulse (400 devices):\n";
  Array.iteri
    (fun i count ->
       Printf.printf "  %5.2f-%5.2f V %s\n" h.Stats.edges.(i)
         h.Stats.edges.(i + 1)
         (String.make count '#'))
    h.Stats.counts
