(* Quickstart: build the paper's device, compute the worked example of
   Section III, and regenerate one evaluation figure.

   Run with: dune exec examples/quickstart.exe *)

module D = Gnrflash_device
module Q = Gnrflash_quantum

let () =
  (* The paper's floating-gate transistor: GCR = 0.6, 5 nm tunnel oxide,
     10 nm control oxide, 3.2 eV barrier. *)
  let fgt = D.Fgt.paper_default in

  (* Equation (3): with VGS = 15 V and no stored charge, VFG = 9 V. *)
  let vfg = D.Fgt.vfg fgt ~vgs:15. ~qfg:0. in
  Printf.printf "VFG at VGS=15V, QFG=0: %.2f V (paper: 9 V)\n" vfg;

  (* The two tunneling currents at the start of programming. *)
  let jin, jout = D.Transient.initial_currents fgt ~vgs:15. ~qfg:0. in
  Printf.printf "Jin  = %.3e A/cm^2 (channel -> floating gate)\n" (jin /. 1e4);
  Printf.printf "Jout = %.3e A/cm^2 (floating gate -> control gate)\n" (jout /. 1e4);

  (* Program the cell for 100 us and look at the threshold shift. *)
  (match D.Transient.run fgt ~vgs:15. ~duration:100e-6 with
   | Error e ->
     prerr_endline
       ("transient failed: " ^ Gnrflash_resilience.Solver_error.to_string e)
   | Ok r ->
     Printf.printf "after 100 us: QFG = %.3e C, dVT = %.2f V%s\n"
       r.D.Transient.qfg_final r.D.Transient.dvt_final
       (match r.D.Transient.tsat with
        | Some t -> Printf.sprintf " (saturated at %.2e s)" t
        | None -> ""));

  (* FN coefficients behind all of this. *)
  let p = Q.Fn.coefficients ~phi_b_ev:3.2 ~m_ox_rel:0.42 in
  Printf.printf "FN coefficients: A = %.3e A/V^2, B = %.3e V/m\n" p.Q.Fn.a p.Q.Fn.b;

  (* Figure 6, as the paper draws it. *)
  print_newline ();
  Gnrflash_plot.Ascii.print ~width:64 ~height:16 (Gnrflash.Figures.fig6_program_gcr ())
