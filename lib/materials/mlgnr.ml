module C = Gnrflash_physics.Constants

type t = {
  ribbon : Gnr.t;
  layers : int;
  interlayer : float;
}

let graphite_spacing = 0.335e-9

let make ?(interlayer = graphite_spacing) ribbon ~layers =
  if layers < 1 then invalid_arg "Mlgnr.make: layers < 1";
  if interlayer <= 0. then invalid_arg "Mlgnr.make: interlayer <= 0";
  { ribbon; layers; interlayer }

let thickness s =
  (* one atomic layer (~0.34 nm van der Waals thickness) plus spacings *)
  graphite_spacing +. (float_of_int (s.layers - 1) *. s.interlayer)

let bandgap_ev s =
  Gnr.bandgap_ev s.ribbon /. (1. +. (0.5 *. float_of_int (s.layers - 1)))

let screening_factor = 0.53

let quantum_capacitance s ~ef_ev ~temp =
  let ef = ef_ev *. C.ev in
  let cq1 = Graphene.quantum_capacitance ~ef ~t:temp in
  (* geometric series of screened layer contributions *)
  let rec add acc weight remaining =
    if remaining = 0 then acc
    else add (acc +. (weight *. cq1)) (weight *. screening_factor) (remaining - 1)
  in
  add 0. 1. s.layers

let storable_charge s ~ef_max_ev =
  if ef_max_ev < 0. then invalid_arg "Mlgnr.storable_charge: negative ef_max";
  let ef = ef_max_ev *. C.ev in
  (* ∫0^Ef DOS(E) dE for linear DOS = Ef² / (π ħ² vF²); per layer, with the
     same screening weights as the quantum capacitance. *)
  (* lint: allow L4 — (ħ·v_F)² is a derived constant outside the
     units-layer per-algebra *)
  let per_layer = ef *. ef /. (Float.pi *. (C.hbar *. C.v_fermi_graphene) ** 2.) in
  let rec add acc weight remaining =
    if remaining = 0 then acc
    else add (acc +. (weight *. per_layer)) (weight *. screening_factor) (remaining - 1)
  in
  C.q *. add 0. 1. s.layers

let sheet_conductance s ~ef_ev =
  let channels = Gnr.conducting_channels s.ribbon ~ef_ev in
  let g0 = 2. *. C.q *. C.q /. C.h in
  float_of_int (s.layers * channels) *. g0
