module C = Gnrflash_physics.Constants
module Quad = Gnrflash_numerics.Quadrature
module Roots = Gnrflash_numerics.Roots

(* lint: allow L4 — ħ·v_F (J·m) is a derived constant outside the
   units-layer per-algebra, which only names the FN/FGT dimensions *)
let hv = C.hbar *. C.v_fermi_graphene

let dispersion k = hv *. abs_float k

let density_of_states e = 2. *. abs_float e /. (Float.pi *. hv *. hv)

let degenerate_density ef =
  let s = if ef >= 0. then 1. else -1. in
  s *. ef *. ef /. (Float.pi *. hv *. hv)

let carrier_density ~ef ~t =
  if t <= 0. then degenerate_density ef
  else begin
    let kt = C.k_b *. t in
    (* electrons in the conduction band minus holes in the valence band;
       each integral decays exponentially past a few kT beyond |ef|. The
       quadrature tolerance must be scaled to the integral's magnitude
       (~1e16 m^-2 in SI) — an absolute tolerance would force the adaptive
       rule to its maximum depth everywhere. *)
    let upper = (10. *. kt) +. (3. *. abs_float ef) in
    let scale = density_of_states (abs_float ef +. kt) *. upper in
    let tol = 1e-10 *. scale in
    let electrons =
      (* lint: allow L3 — materials is a leaf library kept free of the
         telemetry dependency; charge integrals are attributed by callers *)
      Quad.adaptive_simpson ~tol
        (fun e -> density_of_states e *. Gnrflash_physics.Fermi.occupation ~ef ~t e)
        0. upper
    in
    let holes =
      (* lint: allow L3 — see above: leaf library, no telemetry dep *)
      Quad.adaptive_simpson ~tol
        (fun e ->
           density_of_states e
           *. (1. -. Gnrflash_physics.Fermi.occupation ~ef ~t (-.e)))
        0. upper
    in
    electrons -. holes
  end

let quantum_capacitance ~ef ~t =
  let pref = 2. *. C.q *. C.q /. (Float.pi *. hv *. hv) in
  if t <= 0. then pref *. abs_float ef
  else begin
    let kt = C.k_b *. t in
    let x = ef /. kt in
    (* ln(2(1+cosh x)) computed stably for large |x| *)
    let lncosh_term =
      if abs_float x > 40. then abs_float x
      else log (2. *. (1. +. cosh x))
    in
    pref *. kt *. lncosh_term
  end

let fermi_level_for_density ~n ~t =
  if Float.equal n 0. then 0.
  else begin
    let f ef = carrier_density ~ef ~t -. n in
    let guess =
      (* invert the degenerate relation for a starting bracket *)
      let s = if n >= 0. then 1. else -1. in
      s *. sqrt (abs_float n *. Float.pi) *. hv
    in
    let a = min (guess /. 4.) (guess *. 4.) -. (C.k_b *. max t 1. *. 20.) in
    let b = max (guess /. 4.) (guess *. 4.) +. (C.k_b *. max t 1. *. 20.) in
    (* lint: allow L3 — see above: leaf library, no telemetry dep *)
    match Roots.bracket_root f a b with
    (* lint: allow L11 — leaf material library: no telemetry dep to count
       the class; falling back to the analytic guess is the contract *)
    | Error _ -> guess
    | Ok (lo, hi) ->
      (* lint: allow L3 — see above: leaf library, no telemetry dep *)
      (match Roots.brent f lo hi with
       | Ok x -> x
       (* lint: allow L11 — see above: analytic-guess fallback, no
          telemetry dep in the material layer *)
       | Error _ -> guess)
  end
