module C = Gnrflash_physics.Constants

let bandgap_ev = 1.12
let electron_affinity = 4.05
let eps_r = 11.7
let ni = 1.0e16 (* 1e10 cm^-3 *)
let nc = 2.8e25 (* 2.8e19 cm^-3 *)
let nv = 1.04e25

let fermi_level_n ~nd =
  if nd <= 0. then invalid_arg "Silicon.fermi_level_n: nd <= 0";
  (* lint: allow L4 — kT at a fixed reference temperature is a derived
     constant; the typed path is Constants.thermal_voltage_qty *)
  let kt_ev = C.k_b *. C.room_temperature /. C.ev in
  kt_ev *. log (nc /. nd)
