(** Synthetic workload traces — the substitute for production traces the
    paper's setting has no access to.

    Every draw is a pure function of [(seed, op index, draw slot)] via
    {!Gnrflash_prng.Splitmix}, so a trace depends only on its seed: not
    on list-construction order, job count, chunking or shard count. This
    is what makes golden-trace digests and cross-tier identity checks
    meaningful. *)

type op =
  | Write of { page : int; data : int array }
  | Read of { page : int }

type pattern =
  | Sequential    (** pages written round-robin *)
  | Uniform       (** pages drawn uniformly at random *)
  | Zipf of float (** skewed page popularity with the given exponent > 0 *)

val generate :
  seed:int -> pattern -> pages:int -> strings:int -> ops:int ->
  read_fraction:float -> op list
(** [ops] operations over a block of [pages]×[strings]; each write carries
    a random data pattern. [read_fraction] in [0, 1] is the probability an
    operation is a read. @raise Invalid_argument on bad parameters. *)

(** {1 Command streams}

    Host-level commands for the command-level memory service
    ({!Service}): logical reads, writes and trims, with optional
    suspend/resume injection on writes that trigger erases. *)

type host_cmd =
  | Cmd_write of { lpn : int; data : int array; suspend : bool }
      (** write [data] (bits, one per string) to logical page [lpn];
          when [suspend] is set, any erase this write triggers is
          suspended and resumed part-way through *)
  | Cmd_read of { lpn : int }
  | Cmd_trim of { lpn : int }

type command_profile = {
  pattern : pattern;
  pages : int;              (** logical page span of the trace *)
  strings : int;            (** data word width in bits *)
  read_fraction : float;
  trim_fraction : float;    (** [read + trim <= 1]; remainder are writes *)
  suspend_fraction : float; (** probability a write carries [suspend] *)
}

val default_profile : command_profile
(** Zipf(1.1) over 256 logical pages, 16-bit words, 30% reads, 5% trims,
    2% suspend injection. *)

val generate_commands :
  seed:int -> profile:command_profile -> ops:int -> host_cmd array
(** Deterministic command stream; element [i] depends only on
    [(seed, i)]. @raise Invalid_argument on bad parameters. *)

(** {1 Trace digests}

    Order-sensitive FNV-style digests for golden-trace pinning and
    bit-identity checks across execution tiers. Not cryptographic. *)

val digest_fold : int -> int -> int
(** Fold one value into a digest accumulator. *)

val digest_empty : int
(** Accumulator seed value. *)

val digest_ops : op list -> int
val digest_commands : host_cmd array -> int

(** {1 Physics replay} *)

type replay_stats = {
  writes : int;
  reads : int;
  erase_cycles : int;      (** block erases triggered by page rewrites *)
  failed_verifies : int;   (** pages that did not read back as written *)
  max_fluence : float;
  broken_cells : int;
}

val replay : Controller.t -> op list -> (Controller.t * replay_stats, string) result
(** Drive the controller with the trace. A write to a page that already
    holds programmed cells triggers a block erase first (flash semantics:
    no in-place overwrite), counted in [erase_cycles]. Each write is
    verified by reading back. *)
