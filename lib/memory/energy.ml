module D = Gnrflash_device
module Tel = Gnrflash_telemetry.Telemetry
module Err = Gnrflash_resilience.Solver_error
module Q = Gnrflash_quantum

type op_energy = {
  cell_energy : float;
  supply_energy : float;
  pump_stages : int;
}

let default_pump = D.Charge_pump.make ~v_dd:1.8 ~stages:12 ()

let fn_program_energy ?(pump = default_pump) device ~vgs ~pulse_width =
  (* integrate the injected charge over the pulse: the transient endpoint
     gives total charge moved; the supply sees it at VGS through the pump *)
  let injected, mean_current =
    match D.Transient.run device ~qfg0:0. ~vgs ~duration:pulse_width with
    | Ok r ->
      let q = abs_float r.D.Transient.qfg_final in
      (q, q /. pulse_width)
    | Error e ->
      Tel.count ("energy/transient_fallback/" ^ Err.label e);
      (0., 0.)
  in
  let stages = D.Charge_pump.stages_for pump ~v_target:vgs ~i_load:mean_current in
  let pump = { pump with D.Charge_pump.stages } in
  {
    cell_energy = injected *. vgs;
    supply_energy =
      D.Charge_pump.energy_per_program pump ~i_load:(max mean_current 1e-12)
        ~pulse_width;
    pump_stages = stages;
  }

let che_program_energy ?(pump = default_pump) ?(che = Q.Che.default_si)
    ~drain_current ~vds ~vgs ~pulse_width () =
  ignore che;
  (* drain path runs directly from a mid-rail supply; the gate is pumped
     but draws negligible current *)
  let drain_energy = drain_current *. vds *. pulse_width in
  let stages = D.Charge_pump.stages_for pump ~v_target:vgs ~i_load:1e-9 in
  let pump_sized = { pump with D.Charge_pump.stages } in
  let gate_energy =
    D.Charge_pump.energy_per_program pump_sized ~i_load:1e-9 ~pulse_width
  in
  {
    cell_energy = drain_energy;
    supply_energy = drain_energy +. gate_energy;
    pump_stages = stages;
  }

let page_program_comparison ~cells =
  if cells < 1 then invalid_arg "Energy.page_program_comparison: cells < 1";
  let device = D.Fgt.paper_default in
  (* FN: all cells in parallel on one word line, 10 us pulse at 15 V *)
  let fn = fn_program_energy device ~vgs:15. ~pulse_width:10e-6 in
  let fn_total = fn.supply_energy *. float_of_int cells in
  (* CHE: 0.5 mA per cell at VDS = 5 V for 1 us (typical NOR numbers);
     cells must be programmed in small groups, but energy scales per cell *)
  let che =
    che_program_energy ~drain_current:0.5e-3 ~vds:5. ~vgs:10. ~pulse_width:1e-6 ()
  in
  let che_total = che.supply_energy *. float_of_int cells in
  [
    ("fn-page-energy-J", fn_total);
    ("che-page-energy-J", che_total);
    ("che-to-fn-ratio", che_total /. max fn_total 1e-30);
  ]
