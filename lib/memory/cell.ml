module D = Gnrflash_device

type logic =
  | Programmed
  | Erased

type t = {
  device : D.Fgt.t;
  qfg : float;
  wear : D.Reliability.wear;
}

let make ?(qfg = 0.) device = { device; qfg; wear = D.Reliability.fresh }

let dvt c = D.Fgt.threshold_shift c.device ~qfg:c.qfg

let state ?(dvt_threshold = 1.0) c = if dvt c > dvt_threshold then Programmed else Erased

let to_bit = function Programmed -> 0 | Erased -> 1

let apply_bias_pulse ?surrogate ~reliability ~pulse c =
  if c.wear.D.Reliability.broken then Error "Cell: oxide broken"
  else
    match D.Program_erase.apply_pulse ?surrogate c.device ~qfg:c.qfg pulse with
    | Error e -> Error (Gnrflash_resilience.Solver_error.to_string e)
    | Ok o ->
      (* effective stress field: the tunnel-oxide field at the pulse's
         midpoint charge (the instantaneous initial field decays within
         nanoseconds and would over-penalize the whole pulse) *)
      let q_mid = 0.5 *. (c.qfg +. o.D.Program_erase.qfg_after) in
      let field =
        abs_float
          (D.Fgt.tunnel_field c.device ~vgs:pulse.D.Program_erase.vgs ~qfg:q_mid)
      in
      let wear =
        D.Reliability.after_pulse reliability c.wear
          ~injected:o.D.Program_erase.injected_charge ~area:c.device.D.Fgt.area
          ~field:(max field 1e6)
      in
      Ok { c with qfg = o.D.Program_erase.qfg_after; wear }

let program ?(pulse = D.Program_erase.default_program_pulse)
    ?(reliability = D.Reliability.default) ?surrogate c =
  apply_bias_pulse ?surrogate ~reliability ~pulse c

let erase ?(pulse = D.Program_erase.default_erase_pulse)
    ?(reliability = D.Reliability.default) ?surrogate c =
  apply_bias_pulse ?surrogate ~reliability ~pulse c

let read ?(config = D.Readout.default) c =
  let i = D.Readout.read_current config c.device ~qfg:c.qfg in
  let i_on = D.Readout.read_current config c.device ~qfg:0. in
  if i < 0.5 *. i_on then Programmed else Erased

let effective_vt ?(config = D.Readout.default) ?(reliability = D.Reliability.default) c =
  D.Readout.threshold_voltage config c.device ~qfg:c.qfg
  +. D.Reliability.vt_drift reliability c.wear
