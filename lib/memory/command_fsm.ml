[@@@gnrflash.hot]
(* lint: this module's program/erase/disturb loops are the bench-critical
   hot path — L13 flags allocating record updates and closures inside
   them (the SoA Cell_store keeps them allocation-free). *)

module D = Gnrflash_device
module S = Cell_store
module Tel = Gnrflash_telemetry.Telemetry

type config = {
  sectors : int;
  words_per_sector : int;
  word_bits : int;
  write_buffer_words : int;
  t_cycle : float;
  program_pulse : D.Program_erase.pulse;
  erase_pulse : D.Program_erase.pulse;
  max_pulses : int;
  surrogate : bool;
  disturb : D.Disturb.config option;
      (* when set, every program pulse feeds its gate disturb back into the
         erased cells of the sector's unselected words *)
}

let default_config =
  {
    sectors = 8;
    words_per_sector = 32;
    word_bits = 13;
    write_buffer_words = 16;
    t_cycle = 100e-9;
    program_pulse = D.Program_erase.default_program_pulse;
    erase_pulse = D.Program_erase.default_erase_pulse;
    max_pulses = 8;
    surrogate = true;
    disturb = None;
  }

type read_result =
  | Data of int array
  | Status of { dq7 : int; dq6 : int; dq5 : int; dq2 : int }

type error =
  | Bad_sequence of { state : string; addr : int; data : int }
  | Busy of { operation : string }
  | Not_erasing
  | Not_suspended
  | Buffer_overflow of { count : int; capacity : int }
  | Buffer_sector_crossing of { sector : int; addr : int }
  | Physics of string

let error_to_string = function
  | Bad_sequence { state; addr; data } ->
    Printf.sprintf "Command_fsm: command 0x%X @ 0x%X not accepted in state %s"
      data addr state
  | Busy { operation } ->
    Printf.sprintf "Command_fsm: bus write while %s is running" operation
  | Not_erasing -> "Command_fsm: erase suspend with no sector erase in flight"
  | Not_suspended -> "Command_fsm: erase resume with no suspended erase"
  | Buffer_overflow { count; capacity } ->
    Printf.sprintf "Command_fsm: write buffer count %d exceeds capacity %d" count
      capacity
  | Buffer_sector_crossing { sector; addr } ->
    Printf.sprintf "Command_fsm: buffered word @ 0x%X outside sector %d" addr sector
  | Physics e -> "Command_fsm: pulse solve failed: " ^ e

type stats = {
  bus_cycles : int;
  data_reads : int;
  status_reads : int;
  programs : int;
  words_programmed : int;
  sector_erases : int;
  chip_erases : int;
  suspends : int;
  resumes : int;
  resets : int;
  program_pulses : int;
  erase_pulses : int;
  verify_timeouts : int;
  disturb_events : int;
  bad_sequences : int;
}

type mstats = {
  mutable m_bus_cycles : int;
  mutable m_data_reads : int;
  mutable m_status_reads : int;
  mutable m_programs : int;
  mutable m_words_programmed : int;
  mutable m_sector_erases : int;
  mutable m_chip_erases : int;
  mutable m_suspends : int;
  mutable m_resumes : int;
  mutable m_resets : int;
  mutable m_program_pulses : int;
  mutable m_erase_pulses : int;
  mutable m_verify_timeouts : int;
  mutable m_disturb_events : int;
  mutable m_bad_sequences : int;
}

type op_kind =
  | Op_program of { dq7 : int }
  | Op_sector_erase of { sector : int }
  | Op_chip_erase

type busy_op = {
  kind : op_kind;
  mutable ends_at : float;
  mutable remaining : float; (* busy seconds left when suspended *)
}

type seq =
  | Idle
  | Unlock1
  | Unlocked
  | Word_program
  | Erase_setup
  | Erase_unlock1
  | Erase_unlocked
  | Buf_count of { sector : int }
  | Buf_load of { sector : int; remaining : int; acc : (int * int) list }
  | Buf_confirm of { sector : int; acc : (int * int) list }

type t = {
  cfg : config;
  store : S.t; (* cell [addr * word_bits + bit] *)
  pmemo : S.memo; (* program-pulse outcomes, keyed by starting charge *)
  ememo : S.memo; (* erase-pulse outcomes *)
  dmemo : (int64 * int, float) Hashtbl.t;
  (* disturb outcomes keyed by (victim charge bits, event count) — hoisted
     to the instance so repeated programs at the same charge reuse it *)
  mutable seq : seq;
  mutable clock : float;
  mutable op : busy_op option;
  mutable suspended : busy_op option;
  mutable dq6 : int; (* toggles on status reads while busy *)
  mutable dq2 : int; (* toggles on suspended-sector status reads *)
  ms : mstats;
}

let create ?(config = default_config) device =
  if config.sectors < 1 || config.words_per_sector < 1 || config.word_bits < 1
     || config.write_buffer_words < 1 || config.max_pulses < 1
     || config.t_cycle <= 0.
  then invalid_arg "Command_fsm.create: bad geometry";
  let n = config.sectors * config.words_per_sector * config.word_bits in
  (* Private copy of the device record: the pulse caches (surrogate
     tables, warm starts, exact-replay memos) are keyed by physical
     identity, so a fresh identity makes every instance start cold and
     end bit-identical, whatever ran before it on this domain. *)
  let device = { device with D.Fgt.vs = device.D.Fgt.vs } in
  {
    cfg = config;
    store = S.create ~n device;
    pmemo = S.memo ();
    ememo = S.memo ();
    dmemo = Hashtbl.create 16;
    seq = Idle;
    clock = 0.;
    op = None;
    suspended = None;
    dq6 = 0;
    dq2 = 0;
    ms =
      {
        m_bus_cycles = 0;
        m_data_reads = 0;
        m_status_reads = 0;
        m_programs = 0;
        m_words_programmed = 0;
        m_sector_erases = 0;
        m_chip_erases = 0;
        m_suspends = 0;
        m_resumes = 0;
        m_resets = 0;
        m_program_pulses = 0;
        m_erase_pulses = 0;
        m_verify_timeouts = 0;
        m_disturb_events = 0;
        m_bad_sequences = 0;
      };
  }

let config t = t.cfg
let words t = t.cfg.sectors * t.cfg.words_per_sector
let sector_of t ~addr = addr mod words t / t.cfg.words_per_sector
let now t = t.clock

let state_name t =
  match t.seq with
  | Idle -> if Option.is_some t.suspended then "erase_suspended" else "idle"
  | Unlock1 -> "unlock1"
  | Unlocked -> "unlocked"
  | Word_program -> "word_program"
  | Erase_setup -> "erase_setup"
  | Erase_unlock1 -> "erase_unlock1"
  | Erase_unlocked -> "erase_unlocked"
  | Buf_count _ -> "buffer_count"
  | Buf_load _ -> "buffer_load"
  | Buf_confirm _ -> "buffer_confirm"

let commit t =
  match t.op with
  | Some op when t.clock >= op.ends_at -> t.op <- None
  | _ -> ()

let tick t =
  t.clock <- t.clock +. t.cfg.t_cycle;
  t.ms.m_bus_cycles <- t.ms.m_bus_cycles + 1;
  commit t

let step_to t target =
  if target > t.clock then t.clock <- target;
  commit t

let ready t = Option.is_none t.op

let wait_ready t = match t.op with None -> () | Some op -> step_to t op.ends_at

(* ---------- physics ---------- *)

exception Pulse_failed of string

(* Feed the counted gate-disturb events back into the victim cells: every
   erased cell of the sector's unselected words integrates [events] disturb
   pulses from its current charge. Victims at the same charge share one
   solve (fresh erased cells are all identical), memoized on the instance,
   so repeated programs at the same charge cost zero transients. *)
let apply_disturb t ~addr ~events =
  match t.cfg.disturb with
  | None -> ()
  | Some dcfg ->
    let sector = sector_of t ~addr in
    let shifted q =
      let key = (Int64.bits_of_float q, events) in
      match Hashtbl.find_opt t.dmemo key with
      | Some q' -> q'
      | None -> (
        match
          D.Disturb.qfg_after_events ~config:dcfg (S.device t.store) ~qfg0:q
            ~events
        with
        | Error e -> raise (Pulse_failed e)
        | Ok q' ->
          Hashtbl.add t.dmemo key q';
          q')
    in
    let victims = ref 0 in
    let base_word = sector * t.cfg.words_per_sector in
    for w = base_word to base_word + t.cfg.words_per_sector - 1 do
      if w <> addr then
        for i = 0 to t.cfg.word_bits - 1 do
          let idx = (w * t.cfg.word_bits) + i in
          if S.bit t.store idx = 1 then begin
            S.set_qfg t.store idx (shifted (S.qfg t.store idx));
            incr victims
          end
        done
    done;
    if !victims > 0 then Tel.count ~n:!victims "command_fsm/disturb_feedback"

(* Embedded program of one word: pulse-and-verify per target-0 bit, bits in
   parallel on the word line (busy time = the slowest bit's pulse count).
   AND semantics: a target 1 over a programmed cell cannot raise it — that
   is a verify timeout, not an error, exactly like hardware. *)
let program_word_cells t ~addr ~data =
  let base = addr * t.cfg.word_bits in
  let max_pulses_used = ref 0 in
  let timeout = ref false in
  for i = 0 to t.cfg.word_bits - 1 do
    let target = (data lsr i) land 1 in
    let idx = base + i in
    if target = 0 then begin
      (* seed semantics: the record path buffered the cell in a ref and
         only wrote it back after a clean verify loop, so a mid-loop solve
         failure discards that bit's partial pulses — snapshot and restore
         to keep the in-place store bit-identical on the error path too *)
      let q0 = S.qfg t.store idx and fl0 = S.fluence t.store idx in
      let tr0 = S.traps t.store idx and cy0 = S.cycles t.store idx in
      let bk0 = S.broken t.store idx in
      let p = ref 0 in
      let failed = ref "" in
      while
        String.length !failed = 0
        && S.bit t.store idx = 1
        && !p < t.cfg.max_pulses
      do
        match
          S.apply_pulse_at t.store ~memo:t.pmemo ~pulse:t.cfg.program_pulse
            ~surrogate:t.cfg.surrogate idx
        with
        | Error e -> failed := e
        | Ok () -> incr p
      done;
      if String.length !failed > 0 then begin
        S.set t.store idx
          {
            Cell.device = S.device t.store;
            qfg = q0;
            wear =
              { D.Reliability.fluence = fl0; traps = tr0; cycles = cy0;
                broken = bk0 };
          };
        raise (Pulse_failed !failed)
      end;
      if S.bit t.store idx = 1 then timeout := true;
      t.ms.m_program_pulses <- t.ms.m_program_pulses + !p;
      if !p > !max_pulses_used then max_pulses_used := !p
    end
    else if S.bit t.store idx = 0 then timeout := true
  done;
  (* every program pulse gate-disturbs the unselected words of the sector *)
  t.ms.m_disturb_events <-
    t.ms.m_disturb_events + (!max_pulses_used * (t.cfg.words_per_sector - 1));
  if !max_pulses_used > 0 then apply_disturb t ~addr ~events:!max_pulses_used;
  if !timeout then t.ms.m_verify_timeouts <- t.ms.m_verify_timeouts + 1;
  t.ms.m_words_programmed <- t.ms.m_words_programmed + 1;
  float_of_int !max_pulses_used *. t.cfg.program_pulse.D.Program_erase.duration

(* Embedded sector erase: erase pulses hit every cell of the sector each
   round (over-erasing already-clean cells — the real NOR over-erase
   hazard), verify per cell, repeat until the whole sector reads erased. *)
let erase_sector_cells t ~sector =
  let base = sector * t.cfg.words_per_sector * t.cfg.word_bits in
  let ncells = t.cfg.words_per_sector * t.cfg.word_bits in
  let rounds = ref 0 in
  let all_erased () =
    let ok = ref true in
    for i = base to base + ncells - 1 do
      if S.bit t.store i = 0 then ok := false
    done;
    !ok
  in
  while (not (all_erased ())) && !rounds < t.cfg.max_pulses do
    (match
       S.apply_pulse_range t.store ~memo:t.ememo ~pulse:t.cfg.erase_pulse
         ~surrogate:t.cfg.surrogate ~lo:base ~hi:(base + ncells - 1)
     with
     | Ok () -> ()
     | Error e -> raise (Pulse_failed e));
    t.ms.m_erase_pulses <- t.ms.m_erase_pulses + ncells;
    incr rounds
  done;
  if not (all_erased ()) then t.ms.m_verify_timeouts <- t.ms.m_verify_timeouts + 1;
  float_of_int !rounds *. t.cfg.erase_pulse.D.Program_erase.duration

let launch t kind duration =
  t.op <- Some { kind; ends_at = t.clock +. duration; remaining = 0. };
  commit t (* zero-duration operations (nothing to do) complete at once *)

(* ---------- bus ---------- *)

let sense_word t ~addr =
  let addr = addr mod words t in
  let base = addr * t.cfg.word_bits in
  Array.init t.cfg.word_bits (fun i -> S.bit t.store (base + i))

let status_read t ~addr ~toggle6 =
  t.ms.m_status_reads <- t.ms.m_status_reads + 1;
  if toggle6 then t.dq6 <- 1 - t.dq6;
  let in_suspended_sector =
    match t.suspended with
    | Some { kind = Op_sector_erase { sector }; _ } -> sector_of t ~addr = sector
    | _ -> false
  in
  if in_suspended_sector then t.dq2 <- 1 - t.dq2;
  let dq7 =
    match t.op with
    | Some { kind = Op_program { dq7 }; _ } -> dq7
    | Some _ -> 0 (* erasing: DQ7 reads 0 until done *)
    | None -> 1
  in
  let dq5 =
    (* timeout bit: internal verify exhausted max_pulses at least once *)
    if t.ms.m_verify_timeouts > 0 then 1 else 0
  in
  Status { dq7; dq6 = t.dq6; dq5; dq2 = t.dq2 }

let read t ~addr =
  tick t;
  let addr = addr mod words t in
  match t.op with
  | Some _ -> status_read t ~addr ~toggle6:true
  | None ->
    let suspended_here =
      match t.suspended with
      | Some { kind = Op_sector_erase { sector }; _ } -> sector_of t ~addr = sector
      | _ -> false
    in
    if suspended_here then
      (* DQ6 does not toggle during suspend; DQ2 does *)
      status_read t ~addr ~toggle6:false
    else begin
      t.ms.m_data_reads <- t.ms.m_data_reads + 1;
      Data (sense_word t ~addr)
    end

let poll_ready t ~interval =
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match read t ~addr:0 with
    | Data _ -> continue := false
    | Status _ ->
      incr n;
      step_to t (t.clock +. interval)
  done;
  !n

let suspended_sector t =
  match t.suspended with
  | Some { kind = Op_sector_erase { sector }; _ } -> Some sector
  | _ -> None

let bad t ~addr ~data =
  t.ms.m_bad_sequences <- t.ms.m_bad_sequences + 1;
  let state = state_name t in
  t.seq <- Idle;
  Error (Bad_sequence { state; addr; data })

let run_physics t f =
  match f () with
  | duration -> Ok duration
  | exception Pulse_failed e ->
    t.seq <- Idle;
    Error (Physics e)

let write t ~addr ~data =
  tick t;
  let addr = addr mod words t in
  let u1 = 0x555 mod words t and u2 = 0x2AA mod words t in
  match t.op with
  | Some op when data = 0xB0 ->
    (* erase suspend: only a sector erase can be suspended *)
    (match op.kind with
     | Op_sector_erase _ ->
       op.remaining <- op.ends_at -. t.clock;
       t.suspended <- Some op;
       t.op <- None;
       t.seq <- Idle;
       t.ms.m_suspends <- t.ms.m_suspends + 1;
       Tel.count "command_fsm/suspend";
       Ok ()
     | Op_program _ | Op_chip_erase -> Error Not_erasing)
  | Some op ->
    let operation =
      match op.kind with
      | Op_program _ -> "an embedded program"
      | Op_sector_erase _ -> "a sector erase"
      | Op_chip_erase -> "a chip erase"
    in
    Error (Busy { operation })
  | None -> (
    match t.seq with
    | Word_program -> (
      (* data cycle of the single-word program *)
      t.seq <- Idle;
      match suspended_sector t with
      | Some sector when sector_of t ~addr = sector ->
        t.ms.m_bad_sequences <- t.ms.m_bad_sequences + 1;
        Error (Bad_sequence { state = "erase_suspended"; addr; data })
      | _ -> (
        match run_physics t (fun () -> program_word_cells t ~addr ~data) with
        | Error e -> Error e
        | Ok duration ->
          t.ms.m_programs <- t.ms.m_programs + 1;
          Tel.count "command_fsm/program";
          launch t (Op_program { dq7 = 1 - (data land 1) }) duration;
          Ok ()))
    | Buf_count { sector } ->
      (* JEDEC encodes the word count as N-1 *)
      let count = data + 1 in
      if sector_of t ~addr <> sector then begin
        t.seq <- Idle;
        Error (Buffer_sector_crossing { sector; addr })
      end
      else if count > t.cfg.write_buffer_words then begin
        t.seq <- Idle;
        Error (Buffer_overflow { count; capacity = t.cfg.write_buffer_words })
      end
      else begin
        t.seq <- Buf_load { sector; remaining = count; acc = [] };
        Ok ()
      end
    | Buf_load { sector; remaining; acc } ->
      if sector_of t ~addr <> sector then begin
        t.seq <- Idle;
        Error (Buffer_sector_crossing { sector; addr })
      end
      else begin
        let acc = (addr, data) :: acc in
        t.seq <-
          (if remaining = 1 then Buf_confirm { sector; acc }
           else Buf_load { sector; remaining = remaining - 1; acc });
        Ok ()
      end
    | Buf_confirm { sector; acc } ->
      if data <> 0x29 || sector_of t ~addr <> sector then bad t ~addr ~data
      else (
        t.seq <- Idle;
        match suspended_sector t with
        | Some s when s = sector ->
          t.ms.m_bad_sequences <- t.ms.m_bad_sequences + 1;
          Error (Bad_sequence { state = "erase_suspended"; addr; data })
        | _ -> (
          (* program buffered words sequentially (last loaded value per
             address wins, like the hardware buffer) *)
          let words_in_order = List.rev acc in
          match
            run_physics t (fun () ->
                List.fold_left
                  (fun d (a, w) -> d +. program_word_cells t ~addr:a ~data:w)
                  0. words_in_order)
          with
          | Error e -> Error e
          | Ok duration ->
            t.ms.m_programs <- t.ms.m_programs + 1;
            Tel.count "command_fsm/buffer_program";
            let dq7 =
              match List.rev words_in_order with
              | (_, w) :: _ -> 1 - (w land 1)
              | [] -> 1
            in
            launch t (Op_program { dq7 }) duration;
            Ok ()))
    | _ when data = 0xF0 ->
      t.seq <- Idle;
      t.ms.m_resets <- t.ms.m_resets + 1;
      Ok ()
    | _ when data = 0xB0 -> Error Not_erasing
    | Idle when data = 0x30 && Option.is_some t.suspended -> (
      (* erase resume (0x30 doubles as the resume command) *)
      match t.suspended with
      | Some op ->
        op.ends_at <- t.clock +. op.remaining;
        t.suspended <- None;
        t.op <- Some op;
        t.ms.m_resumes <- t.ms.m_resumes + 1;
        Tel.count "command_fsm/resume";
        Ok ()
      | None -> Error Not_suspended)
    | Idle when addr = u1 && data = 0xAA ->
      t.seq <- Unlock1;
      Ok ()
    | Unlock1 when addr = u2 && data = 0x55 ->
      t.seq <- Unlocked;
      Ok ()
    | Unlocked when addr = u1 && data = 0xA0 ->
      t.seq <- Word_program;
      Ok ()
    | Unlocked when data = 0x25 ->
      t.seq <- Buf_count { sector = sector_of t ~addr };
      Ok ()
    | Unlocked when addr = u1 && data = 0x80 ->
      t.seq <- Erase_setup;
      Ok ()
    | Erase_setup when addr = u1 && data = 0xAA ->
      t.seq <- Erase_unlock1;
      Ok ()
    | Erase_unlock1 when addr = u2 && data = 0x55 ->
      t.seq <- Erase_unlocked;
      Ok ()
    | Erase_unlocked when data = 0x30 -> (
      t.seq <- Idle;
      let sector = sector_of t ~addr in
      match t.suspended with
      | Some _ ->
        (* no nested erase while another sector erase is suspended *)
        t.ms.m_bad_sequences <- t.ms.m_bad_sequences + 1;
        Error (Bad_sequence { state = "erase_suspended"; addr; data })
      | None -> (
        match run_physics t (fun () -> erase_sector_cells t ~sector) with
        | Error e -> Error e
        | Ok duration ->
          t.ms.m_sector_erases <- t.ms.m_sector_erases + 1;
          Tel.count "command_fsm/sector_erase";
          launch t (Op_sector_erase { sector }) duration;
          Ok ()))
    | Erase_unlocked when addr = u1 && data = 0x10 -> (
      t.seq <- Idle;
      if Option.is_some t.suspended then begin
        t.ms.m_bad_sequences <- t.ms.m_bad_sequences + 1;
        Error (Bad_sequence { state = "erase_suspended"; addr; data })
      end
      else
        match
          run_physics t (fun () ->
              let d = ref 0. in
              for sector = 0 to t.cfg.sectors - 1 do
                d := !d +. erase_sector_cells t ~sector
              done;
              !d)
        with
        | Error e -> Error e
        | Ok duration ->
          t.ms.m_chip_erases <- t.ms.m_chip_erases + 1;
          Tel.count "command_fsm/chip_erase";
          launch t Op_chip_erase duration;
          Ok ())
    | _ -> bad t ~addr ~data)

let stats t =
  let m = t.ms in
  {
    bus_cycles = m.m_bus_cycles;
    data_reads = m.m_data_reads;
    status_reads = m.m_status_reads;
    programs = m.m_programs;
    words_programmed = m.m_words_programmed;
    sector_erases = m.m_sector_erases;
    chip_erases = m.m_chip_erases;
    suspends = m.m_suspends;
    resumes = m.m_resumes;
    resets = m.m_resets;
    program_pulses = m.m_program_pulses;
    erase_pulses = m.m_erase_pulses;
    verify_timeouts = m.m_verify_timeouts;
    disturb_events = m.m_disturb_events;
    bad_sequences = m.m_bad_sequences;
  }

let cell t ~idx =
  if idx < 0 || idx >= S.length t.store then
    invalid_arg "Command_fsm.cell: index out of range";
  S.view t.store idx

let cell_count t = S.length t.store

let state_digest t =
  let f = Workload.digest_fold in
  let float h x = f h (Int64.to_int (Int64.bits_of_float x)) in
  let h = ref (S.fold_digest t.store f Workload.digest_empty) in
  h := float !h t.clock;
  let m = t.ms in
  List.iter
    (fun v -> h := f !h v)
    [
      m.m_bus_cycles; m.m_data_reads; m.m_status_reads; m.m_programs;
      m.m_words_programmed; m.m_sector_erases; m.m_chip_erases; m.m_suspends;
      m.m_resumes; m.m_resets; m.m_program_pulses; m.m_erase_pulses;
      m.m_verify_timeouts; m.m_disturb_events; m.m_bad_sequences;
    ];
  h := f !h (Hashtbl.hash (state_name t));
  !h
