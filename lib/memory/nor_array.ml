module D = Gnrflash_device
module S = Cell_store
module Tel = Gnrflash_telemetry.Telemetry
module Err = Gnrflash_resilience.Solver_error
module Q = Gnrflash_quantum

type config = {
  vgs_program : float;
  vds_program : float;
  drain_current : float;
  pulse_width : float;
  lateral_field : float;
  che : Q.Che.params;
}

let default_config =
  {
    vgs_program = 10.;
    vds_program = 5.;
    drain_current = 0.5e-3;
    pulse_width = 1e-6;
    lateral_field = 5e8;
    che = Q.Che.default_si;
  }

type t = {
  config : config;
  store : S.t; (* one word line, struct-of-arrays *)
  mutable programs : int;
  mutable total_supply_charge : float;
}

let make ?(config = default_config) device ~cells =
  if cells < 1 then invalid_arg "Nor_array.make: cells < 1";
  { config; store = S.create ~n:cells device; programs = 0; total_supply_charge = 0. }

let length t = S.length t.store
let cell t i = S.view t.store i
let programs t = t.programs
let total_supply_charge t = t.total_supply_charge

let check_index t i =
  if i < 0 || i >= S.length t.store then Error "Nor_array: index out of range"
  else Ok ()

let program_bit t ~index =
  match check_index t index with
  | Error e -> Error e
  | Ok () ->
    if S.broken t.store index then Error "Nor_array: broken cell"
    else begin
      let cfg = t.config in
      let device = S.device t.store in
      let q0 = S.qfg t.store index in
      let i_gate =
        Q.Che.gate_current cfg.che ~drain_current:cfg.drain_current
          ~lateral_field:cfg.lateral_field
      in
      let dose = i_gate *. cfg.pulse_width in
      (* electrons land on the FG; injection self-limits once the FG
         potential has collapsed to the word-line saturation point (the
         same fixed point the FN transient relaxes to) *)
      let q_floor =
        match D.Transient.saturation_charge device ~vgs:cfg.vgs_program with
        | Ok q -> q
        | Error e ->
          Tel.count ("nor_array/saturation_fallback/" ^ Err.label e);
          q0 -. dose
      in
      let qfg = max q_floor (q0 -. dose) in
      let injected = q0 -. qfg in
      let field =
        abs_float (D.Fgt.tunnel_field device ~vgs:cfg.vgs_program ~qfg)
      in
      let c = S.view t.store index in
      let wear =
        D.Reliability.after_pulse D.Reliability.default c.Cell.wear ~injected
          ~area:device.D.Fgt.area ~field:(max field 1e6)
      in
      S.set t.store index { c with Cell.qfg; wear };
      t.programs <- t.programs + 1;
      t.total_supply_charge <-
        t.total_supply_charge +. (cfg.drain_current *. cfg.pulse_width);
      Ok t
    end

let read_bit t ~index =
  match check_index t index with
  | Error e -> Error e
  | Ok () -> Ok (Cell.to_bit (Cell.read (S.view t.store index)))

let erase_all t =
  (* every cell erases independently; sweep boxed views across the domain
     pool and report the first (lowest-index) failure for determinism —
     the store is written back only on a fully clean sweep *)
  let views = Array.init (S.length t.store) (S.view t.store) in
  let results = Gnrflash_parallel.Sweep.map Cell.erase views in
  let error =
    Array.fold_left
      (fun acc r -> match acc, r with None, Error e -> Some e | _ -> acc)
      None results
  in
  match error with
  | Some e -> Error e
  | None ->
    Array.iteri
      (fun i r ->
         match r with
         | Ok c -> S.set t.store i c
         | Error _ -> assert false)
      results;
    Ok t

let programming_current t ~simultaneous =
  if simultaneous < 0 then invalid_arg "Nor_array.programming_current: negative count";
  float_of_int simultaneous *. t.config.drain_current
