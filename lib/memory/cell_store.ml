[@@@gnrflash.hot]
module D = Gnrflash_device
module U = Gnrflash_units

type t = {
  device : D.Fgt.t;
  cfc : float; (* control-coupling capacitance, hoisted for O(1) readout *)
  n : int;
  qfg : float array;
  fluence : float array;
  traps : float array;
  cycles : int array;
  broken : Bytes.t; (* '\000' intact, '\001' broken *)
}

let create ?(qfg = 0.) ~n device =
  if n < 1 then invalid_arg "Cell_store.create: n < 1";
  {
    device;
    cfc = U.to_float (D.Capacitance.cfc_qty device.D.Fgt.caps);
    n;
    qfg = Array.make n qfg;
    fluence = Array.make n 0.;
    traps = Array.make n 0.;
    cycles = Array.make n 0;
    broken = Bytes.make n '\000';
  }

let length t = t.n
let device t = t.device
let qfg t i = t.qfg.(i)
let fluence t i = t.fluence.(i)
let traps t i = t.traps.(i)
let cycles t i = t.cycles.(i)
let broken t i = Bytes.get t.broken i <> '\000'
let set_qfg t i q = t.qfg.(i) <- q

(* Same float expression as Fgt.threshold_shift (the units layer is
   identities over float), with cfc read once at [create]. *)
let dvt t i = -.t.qfg.(i) /. t.cfc

let bit ?(dvt_threshold = 1.0) t i =
  if -.t.qfg.(i) /. t.cfc > dvt_threshold then 0 else 1

let view t i =
  {
    Cell.device = t.device;
    qfg = t.qfg.(i);
    wear =
      {
        D.Reliability.fluence = t.fluence.(i);
        traps = t.traps.(i);
        cycles = t.cycles.(i);
        broken = broken t i;
      };
  }

let set t i (c : Cell.t) =
  t.qfg.(i) <- c.Cell.qfg;
  let w = c.Cell.wear in
  t.fluence.(i) <- w.D.Reliability.fluence;
  t.traps.(i) <- w.D.Reliability.traps;
  t.cycles.(i) <- w.D.Reliability.cycles;
  Bytes.set t.broken i (if w.D.Reliability.broken then '\001' else '\000')

(* ---------- batched pulses ---------- *)

type entry = {
  e_qfg_after : float;
  e_dfluence : float; (* injected /. area *)
  e_dtraps : float; (* trap_per_charge *. electrons_per_area *)
  e_qbd : float; (* breakdown fluence at this pulse's stress field *)
}

(* Open-addressed flat-column memo keyed by the starting charge: probing
   compares raw float bits (no boxed [Int64] key, no bucket cells), and a
   hit replays the deltas straight out of the float columns — the hot
   loop's zero-allocation path. *)
type memo = {
  mutable m_occ : Bytes.t; (* '\000' empty, '\001' occupied *)
  mutable m_keys : float array; (* starting charges *)
  mutable m_qafter : float array;
  mutable m_dfl : float array;
  mutable m_dtr : float array;
  mutable m_qbd : float array;
  mutable m_mask : int; (* capacity - 1, capacity a power of two *)
  mutable m_used : int;
}

let memo_cap0 = 64

let memo () =
  {
    m_occ = Bytes.make memo_cap0 '\000';
    m_keys = Array.make memo_cap0 0.;
    m_qafter = Array.make memo_cap0 0.;
    m_dfl = Array.make memo_cap0 0.;
    m_dtr = Array.make memo_cap0 0.;
    m_qbd = Array.make memo_cap0 0.;
    m_mask = memo_cap0 - 1;
    m_used = 0;
  }

(* Bit equality for non-NaN floats without boxing: equal floats are
   bit-equal except +0. / -0., which [1. /. x] tells apart (charges are
   never NaN — the solver returns a typed error instead). *)
(* lint: allow L2 — exact bit equality is the point: the memo key must
   distinguish every distinct charge, an epsilon would alias entries *)
let same_key k q = k = q && (k <> 0. || 1. /. k = 1. /. q)

let find_slot m q =
  let i = ref (Hashtbl.hash q land m.m_mask) in
  while
    Bytes.unsafe_get m.m_occ !i <> '\000'
    && not (same_key (Array.unsafe_get m.m_keys !i) q)
  do
    i := (!i + 1) land m.m_mask
  done;
  !i

let rec memo_add m q ~qfg_after ~dfl ~dtr ~qbd =
  if 2 * (m.m_used + 1) > m.m_mask + 1 then begin
    (* keep load factor under 1/2: rehash into twice the capacity *)
    let old_occ = m.m_occ
    and old_keys = m.m_keys
    and old_qa = m.m_qafter
    and old_dfl = m.m_dfl
    and old_dtr = m.m_dtr
    and old_qbd = m.m_qbd in
    let cap = 2 * (m.m_mask + 1) in
    m.m_occ <- Bytes.make cap '\000';
    m.m_keys <- Array.make cap 0.;
    m.m_qafter <- Array.make cap 0.;
    m.m_dfl <- Array.make cap 0.;
    m.m_dtr <- Array.make cap 0.;
    m.m_qbd <- Array.make cap 0.;
    m.m_mask <- cap - 1;
    m.m_used <- 0;
    for i = 0 to Bytes.length old_occ - 1 do
      if Bytes.get old_occ i <> '\000' then
        memo_add m old_keys.(i) ~qfg_after:old_qa.(i) ~dfl:old_dfl.(i)
          ~dtr:old_dtr.(i) ~qbd:old_qbd.(i)
    done;
    memo_add m q ~qfg_after ~dfl ~dtr ~qbd
  end
  else begin
    let i = find_slot m q in
    Bytes.set m.m_occ i '\001';
    m.m_keys.(i) <- q;
    m.m_qafter.(i) <- qfg_after;
    m.m_dfl.(i) <- dfl;
    m.m_dtr.(i) <- dtr;
    m.m_qbd.(i) <- qbd;
    m.m_used <- m.m_used + 1
  end

(* The per-cell deltas of one Cell.apply_bias_pulse for starting charge
   [q0] whose pulse left the charge at [qfg_after]. The expressions mirror
   Cell.apply_bias_pulse / Reliability.after_pulse term by term so
   replaying [fluence +. e_dfluence] etc. is bit-identical to the record
   path. *)
let entry_of t ~rel ~pulse q0 qfg_after =
  (* both solver paths report |ΔQFG| exactly as this difference *)
  let injected = abs_float (qfg_after -. q0) in
  let area = t.device.D.Fgt.area in
  (* effective stress field at the pulse's midpoint charge *)
  let q_mid = 0.5 *. (q0 +. qfg_after) in
  let field =
    abs_float
      (D.Fgt.tunnel_field t.device ~vgs:pulse.D.Program_erase.vgs ~qfg:q_mid)
  in
  let dfluence = injected /. area in
  let electrons_per_area = injected /. area /. Gnrflash_physics.Constants.q in
  {
    e_qfg_after = qfg_after;
    e_dfluence = dfluence;
    e_dtraps = rel.D.Reliability.trap_per_charge *. electrons_per_area;
    e_qbd = D.Reliability.qbd rel ~field:(max field 1e6);
  }

let apply_entry t i e =
  let fl = t.fluence.(i) +. e.e_dfluence in
  t.fluence.(i) <- fl;
  t.traps.(i) <- t.traps.(i) +. e.e_dtraps;
  t.cycles.(i) <- t.cycles.(i) + 1;
  if fl >= e.e_qbd then Bytes.set t.broken i '\001';
  t.qfg.(i) <- e.e_qfg_after

(* Full apply_pulse round trip for the paths that must stay un-memoized:
   surrogate off, fault plans, non-positive durations. These take the same
   apply_pulse call the record path took, in the same order. *)
let apply_exact t ~rel ~pulse ~surrogate i q0 =
  match D.Program_erase.apply_pulse ~surrogate t.device ~qfg:q0 pulse with
  | Error e -> Error (Gnrflash_resilience.Solver_error.to_string e)
  | Ok o ->
    apply_entry t i (entry_of t ~rel ~pulse q0 o.D.Program_erase.qfg_after);
    Ok ()

let apply_pulse_at ?(reliability = D.Reliability.default) t ~memo ~pulse
    ~surrogate i =
  if Bytes.get t.broken i <> '\000' then Error "Cell: oxide broken"
  else begin
    let q0 = t.qfg.(i) in
    (* Memoization is sound only for surrogate-served pulses: the table is
       a pure function of (device, vgs, duration, qfg) with no
       call-history state. Everything else — surrogate off, active fault
       plan (a memo must never mask a fault path), non-positive duration,
       out-of-box charge — takes the same apply_pulse call the record
       path took, in the same order. *)
    if
      (not surrogate)
      || pulse.D.Program_erase.duration <= 0.
      || Gnrflash_resilience.Fault.active ()
    then apply_exact t ~rel:reliability ~pulse ~surrogate i q0
    else begin
      let s = find_slot memo q0 in
      if Bytes.unsafe_get memo.m_occ s <> '\000' then begin
        (* hit: replay the deltas straight from the columns — no solve,
           no allocation *)
        let fl = t.fluence.(i) +. Array.unsafe_get memo.m_dfl s in
        t.fluence.(i) <- fl;
        t.traps.(i) <- t.traps.(i) +. Array.unsafe_get memo.m_dtr s;
        t.cycles.(i) <- t.cycles.(i) + 1;
        if fl >= Array.unsafe_get memo.m_qbd s then Bytes.set t.broken i '\001';
        t.qfg.(i) <- Array.unsafe_get memo.m_qafter s;
        Ok ()
      end
      else begin
        match
          D.Pulse_surrogate.pulse_response t.device
            ~vgs:pulse.D.Program_erase.vgs
            ~duration:pulse.D.Program_erase.duration ~qfg:q0
        with
        | Some r ->
          let e =
            entry_of t ~rel:reliability ~pulse q0 r.D.Pulse_surrogate.qfg_after
          in
          memo_add memo q0 ~qfg_after:e.e_qfg_after ~dfl:e.e_dfluence
            ~dtr:e.e_dtraps ~qbd:e.e_qbd;
          apply_entry t i e;
          Ok ()
        | None -> begin
          (* the consult above already counted toward this (device, vgs)
             promotion — go exact WITHOUT a second consult, so the
             surrogate's build-after counter advances exactly as often as
             under the record path's single apply_pulse consult *)
          match
            D.Program_erase.apply_pulse ~surrogate:false t.device ~qfg:q0
              pulse
          with
          | Error e -> Error (Gnrflash_resilience.Solver_error.to_string e)
          | Ok o ->
            let e =
              entry_of t ~rel:reliability ~pulse q0 o.D.Program_erase.qfg_after
            in
            (* Out-of-box outcomes come from Program_erase's exact-replay
               table, pure in (vgs, duration, qfg) — memoizable once the
               surrogate consult can no longer mutate promotion state
               (slot settled or pulse never in the box). Before that,
               every pulse must keep consulting, or the build would land
               on a different pulse than under the record path. *)
            if
              D.Pulse_surrogate.response_static t.device
                ~vgs:pulse.D.Program_erase.vgs
                ~duration:pulse.D.Program_erase.duration
            then
              memo_add memo q0 ~qfg_after:e.e_qfg_after ~dfl:e.e_dfluence
                ~dtr:e.e_dtraps ~qbd:e.e_qbd;
            apply_entry t i e;
            Ok ()
        end
      end
    end
  end

let apply_pulse_range ?(reliability = D.Reliability.default) t ~memo ~pulse
    ~surrogate ~lo ~hi =
  let err = ref None in
  let i = ref lo in
  while Option.is_none !err && !i <= hi do
    (match apply_pulse_at t ~reliability ~memo ~pulse ~surrogate !i with
     | Ok () -> ()
     | Error e -> err := Some e);
    incr i
  done;
  match !err with None -> Ok () | Some e -> Error e

let fold_digest t f h0 =
  let fbits x = Int64.to_int (Int64.bits_of_float x) in
  let h = ref h0 in
  for i = 0 to t.n - 1 do
    h := f !h (fbits t.qfg.(i));
    h := f !h (fbits t.fluence.(i));
    h := f !h (fbits t.traps.(i));
    h := f !h t.cycles.(i);
    h := f !h (if Bytes.get t.broken i <> '\000' then 1 else 0)
  done;
  !h
