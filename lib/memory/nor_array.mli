(** NOR-type array: cells connected in parallel between bit line and
    ground, programmed by channel-hot-electron injection and erased by FN
    through the source — the architecture the paper's Section II contrasts
    against NAND. Random-access reads (one cell per bit line), fast CHE
    programming per cell, but large programming current. *)

type config = {
  vgs_program : float;   (** word-line bias during CHE programming [V] *)
  vds_program : float;   (** drain bias during programming [V] *)
  drain_current : float; (** channel current per programmed cell [A] *)
  pulse_width : float;   (** CHE pulse width [s] *)
  lateral_field : float; (** peak channel field for the lucky-electron model [V/m] *)
  che : Gnrflash_quantum.Che.params;
}

val default_config : config
(** 10 V / 5 V, 0.5 mA, 1 µs, 5×10⁸ V/m, silicon lucky-electron
    parameters. *)

type t
(** One word line backed by a {!Cell_store} (struct-of-arrays, mutated in
    place). [program_bit] and [erase_all] update the handle and return it,
    so existing pipeline-style callers keep working — but the returned
    value aliases the argument; retained pre-update snapshots are not
    supported. *)

val make : ?config:config -> Gnrflash_device.Fgt.t -> cells:int -> t
(** One word line of fresh cells. @raise Invalid_argument if [cells < 1]. *)

val length : t -> int
(** Cells on the word line. *)

val cell : t -> int -> Cell.t
(** Boxed view of one cell's current state (a fresh record per call). *)

val programs : t -> int
(** Program operations accepted so far. *)

val total_supply_charge : t -> float
(** Coulombs drawn for programming so far. *)

val program_bit : t -> index:int -> (t, string) result
(** CHE-program one cell: the injected charge is the gate current
    integrated over the pulse, [I_d·P_inject·t_pulse]; the supply charge
    is the full drain current. Fails on a bad index. *)

val read_bit : t -> index:int -> (int, string) result
(** Random-access read of one cell (no pass-gating needed in NOR). *)

val erase_all : t -> (t, string) result
(** FN erase of the whole word line (source erase). *)

val programming_current : t -> simultaneous:int -> float
(** Supply current needed to program [simultaneous] cells at once [A] —
    the quantity that caps NOR program parallelism. *)
