module D = Gnrflash_device

type stats = {
  programs : int;
  erases : int;
  reads : int;
  program_failures : int;
  disturb_events : int;
}

let empty_stats =
  { programs = 0; erases = 0; reads = 0; program_failures = 0; disturb_events = 0 }

type t = {
  block : Array_model.t;
  stats : stats;
  ispp : D.Ispp.config;
  disturb : D.Disturb.config;
}

let make ?(ispp = D.Ispp.default) ?disturb block =
  let disturb =
    match disturb with
    | Some d -> d
    | None ->
      D.Disturb.half_select ~vgs_program:ispp.D.Ispp.v_start
        ~pulse_width:ispp.D.Ispp.pulse_width
  in
  { block; stats = empty_stats; ispp; disturb }

let program_page t ~page ~data =
  if Array.length data <> t.block.Array_model.strings then
    invalid_arg "Controller.program_page: data length mismatch";
  let block = ref t.block in
  let failures = ref 0 in
  let disturb_events = ref 0 in
  let error = ref None in
  Array.iteri
    (fun s bit ->
       if Option.is_none !error && bit = 0 then begin
         let c = Array_model.get !block ~page ~string_:s in
         match D.Ispp.run ~config:t.ispp c.Cell.device ~qfg0:c.Cell.qfg with
         | Error e -> error := Some e
         | Ok r ->
           if not r.D.Ispp.passed then incr failures;
           let qfg =
             match List.rev r.D.Ispp.steps with
             | last :: _ -> last.D.Ispp.qfg
             | [] -> c.Cell.qfg
           in
           block := Array_model.set !block ~page ~string_:s { c with Cell.qfg };
           (* every pulse exposes the inhibited cells on this word line *)
           disturb_events := !disturb_events + r.D.Ispp.pulses_used
       end)
    data;
  match !error with
  | Some e -> Error e
  | None ->
    (* apply the accumulated disturb to inhibited (data = 1) cells *)
    let n_events = !disturb_events in
    let block', disturb_err =
      Array.to_list data
      |> List.mapi (fun s bit -> (s, bit))
      |> List.fold_left
        (fun (b, err) (s, bit) ->
           match err with
           | Some _ -> (b, err)
           | None ->
             if bit = 1 && n_events > 0 then begin
               let c = Array_model.get b ~page ~string_:s in
               let duration =
                 float_of_int n_events *. t.disturb.D.Disturb.pulse_width
               in
               match
                 D.Transient.run ~qfg0:c.Cell.qfg c.Cell.device
                   ~vgs:t.disturb.D.Disturb.v_disturb ~duration
               with
               | Error e ->
                 (b, Some (Gnrflash_resilience.Solver_error.to_string e))
               | Ok r ->
                 ( Array_model.set b ~page ~string_:s
                     { c with Cell.qfg = r.D.Transient.qfg_final },
                   None )
             end
             else (b, err))
        (!block, None)
    in
    (match disturb_err with
     | Some e -> Error e
     | None ->
       Ok
         {
           t with
           block = block';
           stats =
             {
               t.stats with
               programs = t.stats.programs + 1;
               program_failures = t.stats.program_failures + !failures;
               disturb_events = t.stats.disturb_events + n_events;
             };
         })

let erase_block t =
  let error = ref None in
  let block =
    Array_model.map_all t.block (fun c ->
        match !error with
        | Some _ -> c
        | None ->
          (match Cell.erase c with
           | Error e ->
             error := Some e;
             c
           | Ok c' -> c'))
  in
  match !error with
  | Some e -> Error e
  | None ->
    Ok { t with block; stats = { t.stats with erases = t.stats.erases + 1 } }

let read_page t ~page =
  let bits = Array_model.page_bits t.block ~page in
  Ok ({ t with stats = { t.stats with reads = t.stats.reads + 1 } }, bits)

let verify_page t ~page ~data =
  let bits = Array_model.page_bits t.block ~page in
  bits = data
