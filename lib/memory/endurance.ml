module D = Gnrflash_device
module Tel = Gnrflash_telemetry.Telemetry
module Err = Gnrflash_resilience.Solver_error

type cycle_sample = {
  cycle : int;
  vt_programmed : float;
  vt_erased : float;
  window : float;
  fluence : float;
}

type run = {
  samples : cycle_sample list;
  cycles_survived : int;
  failure : string option;
}

let log_spaced_checkpoints n =
  (* 1, 2, 3, 5, 10, 20, ... up to n *)
  let rec go acc decade =
    if decade > n then List.rev acc
    else begin
      let pts = List.filter (fun x -> x <= n) [ decade; 2 * decade; 3 * decade; 5 * decade ] in
      go (List.rev_append pts acc) (decade * 10)
    end
  in
  List.sort_uniq compare (go [] 1 @ [ n ])

let cycle_cell ?(reliability = D.Reliability.default)
    ?(program_pulse = D.Program_erase.default_program_pulse)
    ?(erase_pulse = D.Program_erase.default_erase_pulse) ?(window_min = 1.)
    ?surrogate device ~cycles =
  if cycles < 1 then invalid_arg "Endurance.cycle_cell: cycles < 1";
  let checkpoints = log_spaced_checkpoints cycles in
  (* P/E cycling alternates exactly two charge states once the loop
     settles, so a 1-cell store with per-pulse memos turns the long
     cycling run into O(1) replays after the first few solves *)
  let store = Cell_store.create ~n:1 device in
  let pmemo = Cell_store.memo () and ememo = Cell_store.memo () in
  let surrogate = Option.value surrogate ~default:true in
  let samples = ref [] in
  let failure = ref None in
  let survived = ref 0 in
  (try
     for i = 1 to cycles do
       (match
          Cell_store.apply_pulse_at ~reliability store ~memo:pmemo
            ~pulse:program_pulse ~surrogate 0
        with
        | Error e -> failure := Some e; raise Exit
        | Ok () -> ());
       let vt_prog = Cell.effective_vt ~reliability (Cell_store.view store 0) in
       (match
          Cell_store.apply_pulse_at ~reliability store ~memo:ememo
            ~pulse:erase_pulse ~surrogate 0
        with
        | Error e -> failure := Some e; raise Exit
        | Ok () -> ());
       let vt_er = Cell.effective_vt ~reliability (Cell_store.view store 0) in
       survived := i;
       let window = vt_prog -. vt_er in
       if List.mem i checkpoints then
         samples :=
           {
             cycle = i;
             vt_programmed = vt_prog;
             vt_erased = vt_er;
             window;
             fluence = Cell_store.fluence store 0;
           }
           :: !samples;
       if window < window_min then begin
         failure := Some "window closed";
         raise Exit
       end
     done
   with Exit -> ());
  { samples = List.rev !samples; cycles_survived = !survived; failure = !failure }

let predicted_endurance ?(reliability = D.Reliability.default) device ~vgs =
  match D.Transient.saturation_charge device ~vgs with
  | Error e ->
    Tel.count ("endurance/saturation_fallback/" ^ Err.label e);
    0.
  | Ok q_sat ->
    let per_cycle = 2. *. abs_float q_sat in
    (* program + erase both stress the tunnel oxide *)
    let field = abs_float (D.Fgt.tunnel_field device ~vgs ~qfg:0.) in
    D.Reliability.endurance_cycles reliability ~charge_per_cycle:per_cycle
      ~area:device.D.Fgt.area ~field
