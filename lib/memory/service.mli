(** Command-level NOR memory service: the glue that runs host commands
    ({!Workload.host_cmd}) through the {!Ftl} space manager and mirrors
    every journaled physical operation ({!Ftl.phys_op}) onto a behavioral
    {!Command_fsm} device as real JEDEC command sequences — unlock
    cycles, word or write-buffer programs, sector erases, and
    suspend/resume dances for suspend-flagged host writes.

    Data pages are SEC-DED encoded ({!Ecc}) before programming and
    decoded on every host read, so the service observes the device the
    way firmware does: through codewords, busy polling and status bits.
    All timing is model time (see {!Command_fsm}), which makes latency
    percentiles and the trace digest bit-identical across execution
    tiers ([--jobs]/[--shards]) for a fixed seed. *)

type config = {
  ftl : Ftl.config;      (** FTL geometry; blocks become device sectors *)
  strings : int;         (** data bits per page (GNR strings) *)
  poll_interval : float; (** >0: DQ6 data-toggle polling every this many
                             model seconds; 0: RY/BY#-style wait *)
  t_cycle : float;       (** bus cycle time [s] *)
  max_pulses : int;      (** device-internal verify retries *)
  surrogate : bool;      (** serve pulses from the certified surrogate *)
  disturb : Gnrflash_device.Disturb.config option;
  (** forwarded to {!Command_fsm}: when set, counted gate-disturb events
      shift the charge of erased victim cells; [None] (default) keeps
      disturb as pure accounting *)
}

val default_config : config
(** {!Ftl.default_config} geometry, 8 data bits (13-bit codewords),
    RY/BY# waits, 100 ns cycles, 8 retries, surrogate on, disturb
    feedback off. *)

type t
(** Mutable service instance (owns a {!Command_fsm.t} and an {!Ftl.t}).
    Not thread-safe; each execution-tier worker owns its instances. *)

type latency_summary = {
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}
(** Host-command latencies in model seconds. *)

type report = {
  ops : int;               (** host commands submitted *)
  reads : int;
  read_hits : int;         (** reads of a mapped logical page *)
  writes : int;            (** host writes accepted by the FTL *)
  rejected_full : int;     (** host writes rejected with [Device_full] —
                               accounted, never lost *)
  trims : int;
  lost_ops : int;          (** [ops] minus all accounted outcomes; 0 on a
                               correct run *)
  read_mismatches : int;   (** decoded page differed from ground truth *)
  verify_mismatches : int; (** final full-scan decode mismatches *)
  model_time : float;      (** device model clock at the end [s] *)
  latency : latency_summary;
  trace_digest : int;      (** order-sensitive digest of every host-command
                               outcome and its latency *)
  state_digest : int;      (** digest of final device cells/wear, FTL
                               mapping and counters *)
  fsm : Command_fsm.stats;
  ftl : Ftl.stats;
  invariant_error : string option;  (** {!Ftl.check_invariants} failure *)
}

val create : ?config:config -> Gnrflash_device.Fgt.t -> t
(** Fresh service over a fresh device. @raise Invalid_argument if the
    geometry is non-positive. *)

val logical_pages : t -> int
(** Logical address space exposed to host commands
    ({!Ftl.logical_capacity}). *)

val device : t -> Command_fsm.t
val ftl : t -> Ftl.t

val exec : t -> Workload.host_cmd -> unit
(** Run one host command to completion (the device is always ready
    again when this returns). Logical page numbers wrap modulo
    {!logical_pages}. [Device_full] rejections are recorded, not raised.
    @raise Failure on a service-level protocol violation (an FSM command
    rejected mid-mirror, or an FTL internal error escaping — the bugs
    this PR's regression suite pins down). *)

val latencies : t -> float array
(** All host-command latencies so far, sorted ascending (model seconds) —
    lets a fleet driver merge per-instance distributions before taking
    percentiles. *)

val merge_latencies : float array list -> float array
(** Stable k-way merge of sorted per-instance latency arrays, in the
    order given (ties resolve to the earlier instance): the one
    deterministic merged distribution fleet drivers take percentiles
    over, identical across [--jobs]/[--shards] tiers for a fixed
    instance order. *)

val report : t -> report
(** Totals since [create]; computes the final verify scan (every live
    logical page is sensed from the cell array and SEC-DED decoded
    against ground truth) and the digests. *)

val run : t -> Workload.host_cmd array -> report
(** [exec] every command in order, then {!report}. *)

val run_trace :
  ?profile:Workload.command_profile -> seed:int -> ops:int -> t -> report
(** Generate {!Workload.generate_commands} traffic (profile defaults to
    {!Workload.default_profile} with [pages]/[strings] clamped to this
    service's geometry) and {!run} it. *)
