type page_state =
  | Free
  | Valid of int
  | Invalid

type config = {
  blocks : int;
  pages_per_block : int;
  gc_threshold : int;
  endurance_limit : int;
}

type error =
  | Out_of_range of int
  | Device_full
  | No_victim
  | No_free_block

let error_to_string = function
  | Out_of_range lpn -> Printf.sprintf "Ftl: lpn %d out of range" lpn
  | Device_full -> "Ftl: device full"
  | No_victim -> "Ftl: nothing to collect"
  | No_free_block -> "Ftl: no free block to open"

(* Physical operations, journaled in the order the device would see them so
   a command-level front end (Service) can mirror the op stream. *)
type phys_op =
  | Phys_program of { block : int; page : int; lpn : int; gc : bool }
  | Phys_erase of { block : int; retired : bool }

(* Flat hot-path representation. The page map is one int array indexed by
   [block * pages_per_block + page] holding the resident lpn, [p_free] or
   [p_invalid]; the logical map holds the flat physical location or
   [unmapped]. Per-block Free/Invalid populations are maintained
   incrementally so allocation, GC-victim selection and space accounting
   are O(blocks) instead of O(blocks * pages_per_block) scans with
   polymorphic equality.

   Persistence contract (unchanged from the record-of-arrays version):
   every public operation returns a value that shares no mutable state it
   will ever write through — one deep copy per accepting [write]/[trim]
   and one per garbage-collection run, never one per relocated page. The
   in-place [_in] helpers below may only be applied to such a private
   working copy. *)

let p_free = -1
let p_invalid = -2
let unmapped = -1

type t = {
  config : config;
  pages : int array; (* [block * ppb + page] -> lpn | p_free | p_invalid *)
  mapping : int array; (* lpn -> flat physical location | unmapped *)
  erase_counts : int array;
  retired : bool array;
  free_cnt : int array; (* per-block Free pages, maintained incrementally *)
  invalid_cnt : int array; (* per-block Invalid pages, ditto *)
  mutable wp_block : int; (* open block, -1 when none *)
  mutable wp_page : int; (* next page in the open block; may equal ppb *)
  mutable host_writes : int;
  mutable device_writes : int;
  mutable gc_runs : int;
  mutable erases : int;
  mutable journal : phys_op list; (* reverse chronological *)
}

let default_config =
  { blocks = 16; pages_per_block = 64; gc_threshold = 8; endurance_limit = 10_000 }

(* One whole block is reserved so garbage collection always has a landing
   zone for a victim's valid pages, plus 1/8 page-level over-provisioning
   to keep the GC off the hot path. *)
let logical_capacity_of config = (config.blocks - 1) * config.pages_per_block * 7 / 8

let create config =
  if config.blocks < 2 || config.pages_per_block < 1 then
    invalid_arg "Ftl.create: need >= 2 blocks and >= 1 page";
  if config.gc_threshold < 1 || config.gc_threshold >= config.blocks * config.pages_per_block / 4
  then invalid_arg "Ftl.create: unreasonable gc threshold";
  {
    config;
    pages = Array.make (config.blocks * config.pages_per_block) p_free;
    mapping = Array.make (logical_capacity_of config) unmapped;
    erase_counts = Array.make config.blocks 0;
    retired = Array.make config.blocks false;
    free_cnt = Array.make config.blocks config.pages_per_block;
    invalid_cnt = Array.make config.blocks 0;
    wp_block = -1;
    wp_page = 0;
    host_writes = 0;
    device_writes = 0;
    gc_runs = 0;
    erases = 0;
    journal = [];
  }

let config t = t.config
let logical_capacity t = Array.length t.mapping

let free_pages t =
  let n = ref 0 in
  for b = 0 to t.config.blocks - 1 do
    if not t.retired.(b) then n := !n + t.free_cnt.(b)
  done;
  !n

(* Pick the block with the lowest erase count among blocks that are fully
   free (candidates to open for writing); earliest block wins erase-count
   ties. Returns -1 when none qualifies. *)
let pick_open_block t ~exclude =
  let best = ref (-1) in
  for b = 0 to t.config.blocks - 1 do
    if
      (not t.retired.(b))
      && b <> exclude
      && t.free_cnt.(b) = t.config.pages_per_block
      && (!best < 0 || t.erase_counts.(b) < t.erase_counts.(!best))
    then best := b
  done;
  !best

(* Fully-free blocks not currently open for writing — the GC headroom. *)
let fully_free_blocks t =
  let n = ref 0 in
  for b = 0 to t.config.blocks - 1 do
    if
      (not t.retired.(b))
      && b <> t.wp_block
      && t.free_cnt.(b) = t.config.pages_per_block
    then incr n
  done;
  !n

(* Exactly the condition under which the allocator can program a page:
   either the open block still has room, or a fully-free block exists to
   open. Free pages scattered across partially-written non-open blocks do
   NOT count — the allocator cannot consume them. *)
let writable t =
  (t.wp_block >= 0 && t.wp_page < t.config.pages_per_block)
  || pick_open_block t ~exclude:(-1) >= 0

let copy t =
  {
    t with
    pages = Array.copy t.pages;
    mapping = Array.copy t.mapping;
    erase_counts = Array.copy t.erase_counts;
    retired = Array.copy t.retired;
    free_cnt = Array.copy t.free_cnt;
    invalid_cnt = Array.copy t.invalid_cnt;
  }

(* ---------- in-place core (private working copies only) ---------- *)

(* Ensure the write point can take one page; opens a block if needed. *)
let allocate_in t =
  if t.wp_block >= 0 && t.wp_page < t.config.pages_per_block then Ok ()
  else
    match pick_open_block t ~exclude:(-1) with
    | -1 -> Error No_free_block
    | b ->
      t.wp_block <- b;
      t.wp_page <- 0;
      Ok ()

let program_page_in ?(gc = false) t ~lpn =
  match allocate_in t with
  | Error e -> Error e
  | Ok () ->
    let ppb = t.config.pages_per_block in
    let b = t.wp_block and p = t.wp_page in
    t.pages.((b * ppb) + p) <- lpn;
    t.free_cnt.(b) <- t.free_cnt.(b) - 1;
    (* invalidate the previous location *)
    let old = t.mapping.(lpn) in
    if old >= 0 then begin
      t.pages.(old) <- p_invalid;
      t.invalid_cnt.(old / ppb) <- t.invalid_cnt.(old / ppb) + 1
    end;
    t.mapping.(lpn) <- (b * ppb) + p;
    t.wp_page <- p + 1;
    t.device_writes <- t.device_writes + 1;
    t.journal <- Phys_program { block = b; page = p; lpn; gc } :: t.journal;
    Ok ()

(* Greedy victim selection: most invalid pages; ties broken toward higher
   erase count being avoided (wear leveling). Never the open block.
   Returns -1 when nothing is collectable. *)
let pick_victim t =
  let best = ref (-1) and best_invalid = ref 0 and best_erases = ref 0 in
  for b = 0 to t.config.blocks - 1 do
    if (not t.retired.(b)) && b <> t.wp_block then begin
      let invalid = t.invalid_cnt.(b) in
      if
        invalid > 0
        && not
             (!best >= 0
             && (!best_invalid > invalid
                || (!best_invalid = invalid && !best_erases <= t.erase_counts.(b))
                ))
      then begin
        best := b;
        best_invalid := invalid;
        best_erases := t.erase_counts.(b)
      end
    end
  done;
  !best

let erase_block_in t b =
  let ppb = t.config.pages_per_block in
  Array.fill t.pages (b * ppb) ppb p_free;
  t.free_cnt.(b) <- ppb;
  t.invalid_cnt.(b) <- 0;
  t.erase_counts.(b) <- t.erase_counts.(b) + 1;
  if t.erase_counts.(b) >= t.config.endurance_limit then t.retired.(b) <- true;
  t.erases <- t.erases + 1;
  if t.wp_block = b then begin
    t.wp_block <- -1;
    t.wp_page <- 0
  end;
  t.journal <- Phys_erase { block = b; retired = t.retired.(b) } :: t.journal

(* ---------- persistent operations ---------- *)

let garbage_collect t =
  match pick_victim t with
  | -1 -> Error No_victim
  | victim ->
    (* Move valid pages of the victim through the write point. With at
       least one fully-free block in reserve this always fits: the victim
       holds at most pages_per_block valid pages and GC can consume the
       reserve block, regaining a full block when the victim is erased.
       The whole run mutates ONE working copy; a part-way failure discards
       it, leaving the input (and its journal) untouched. *)
    let t = copy t in
    let ppb = t.config.pages_per_block in
    let base = victim * ppb in
    let err = ref None in
    let p = ref 0 in
    while Option.is_none !err && !p < ppb do
      let s = t.pages.(base + !p) in
      if s >= 0 then begin
        match program_page_in ~gc:true t ~lpn:s with
        | Ok () -> ()
        | Error e -> err := Some e
      end;
      incr p
    done;
    (match !err with
     | Some e -> Error e
     | None ->
       erase_block_in t victim;
       t.gc_runs <- t.gc_runs + 1;
       Ok t)

(* Maintain the invariant that a spare fully-free block exists before
   accepting a host write (plus the configured free-page low-water mark). *)
let rec ensure_space t =
  let needs_gc =
    fully_free_blocks t < 1 || free_pages t <= t.config.gc_threshold
  in
  if not needs_gc then Ok t
  else
    match garbage_collect t with
    | Ok t -> ensure_space t
    | Error _ ->
      (* No reclaimable pages. Accept the write only if the allocator can
         actually place it — free pages stranded in partially-written,
         non-open blocks are unusable until their block is collected, so
         [free_pages t > 0] alone is NOT sufficient here. *)
      if writable t then Ok t else Error Device_full

let write t ~lpn =
  if lpn < 0 || lpn >= logical_capacity t then Error (Out_of_range lpn)
  else
    match ensure_space t with
    | Error e -> Error e
    | Ok t' ->
      (* ensure_space returns its input unchanged when no GC ran — copy
         then, and only then, so a host write costs exactly one copy *)
      let w = if t' == t then copy t else t' in
      (match program_page_in w ~lpn with
       | Error e -> Error e
       | Ok () ->
         w.host_writes <- w.host_writes + 1;
         Ok w)

(* ---------- in-place variants (linear handles, e.g. Service) ---------- *)

let overwrite dst src =
  Array.blit src.pages 0 dst.pages 0 (Array.length dst.pages);
  Array.blit src.mapping 0 dst.mapping 0 (Array.length dst.mapping);
  Array.blit src.erase_counts 0 dst.erase_counts 0 (Array.length dst.erase_counts);
  Array.blit src.retired 0 dst.retired 0 (Array.length dst.retired);
  Array.blit src.free_cnt 0 dst.free_cnt 0 (Array.length dst.free_cnt);
  Array.blit src.invalid_cnt 0 dst.invalid_cnt 0 (Array.length dst.invalid_cnt);
  dst.wp_block <- src.wp_block;
  dst.wp_page <- src.wp_page;
  dst.host_writes <- src.host_writes;
  dst.device_writes <- src.device_writes;
  dst.gc_runs <- src.gc_runs;
  dst.erases <- src.erases;
  dst.journal <- src.journal

let write_in_place t ~lpn =
  if lpn < 0 || lpn >= logical_capacity t then Error (Out_of_range lpn)
  else if fully_free_blocks t >= 1 && free_pages t > t.config.gc_threshold then begin
    (* fast path, no GC due: program straight into this handle — zero
       copies, zero allocation beyond the journal entry *)
    match program_page_in t ~lpn with
    | Error e -> Error e (* allocate failed before any mutation *)
    | Ok () ->
      t.host_writes <- t.host_writes + 1;
      Ok ()
  end
  else
    (* GC due: run the persistent collector (one working copy per GC run,
       discarded intact on part-way failure) and adopt the survivor, so
       the rollback semantics of [write] carry over exactly *)
    match ensure_space t with
    | Error e -> Error e
    | Ok t' ->
      if t' != t then overwrite t t';
      (match program_page_in t ~lpn with
       | Error e -> Error e
       | Ok () ->
         t.host_writes <- t.host_writes + 1;
         Ok ())

let trim_in_place t ~lpn =
  if lpn >= 0 && lpn < logical_capacity t then begin
    let loc = t.mapping.(lpn) in
    if loc >= 0 then begin
      t.pages.(loc) <- p_invalid;
      t.invalid_cnt.(loc / t.config.pages_per_block) <-
        t.invalid_cnt.(loc / t.config.pages_per_block) + 1;
      t.mapping.(lpn) <- unmapped
    end
  end

let take_journal t =
  let ops = List.rev t.journal in
  t.journal <- [];
  ops

let read t ~lpn =
  if lpn < 0 || lpn >= logical_capacity t then None
  else
    let loc = t.mapping.(lpn) in
    if loc < 0 then None
    else Some (loc / t.config.pages_per_block, loc mod t.config.pages_per_block)

let trim t ~lpn =
  if lpn < 0 || lpn >= logical_capacity t then t
  else
    let loc = t.mapping.(lpn) in
    if loc < 0 then t
    else begin
      let t = copy t in
      t.pages.(loc) <- p_invalid;
      t.invalid_cnt.(loc / t.config.pages_per_block) <-
        t.invalid_cnt.(loc / t.config.pages_per_block) + 1;
      t.mapping.(lpn) <- unmapped;
      t
    end

let drain_journal t = ({ t with journal = [] }, List.rev t.journal)

type stats = {
  host_writes : int;
  device_writes : int;
  gc_runs : int;
  erases : int;
  retired_blocks : int;
  write_amplification : float;
  max_erase_count : int;
  min_erase_count : int;
}

let stats t =
  let retired_blocks = Array.fold_left (fun n r -> if r then n + 1 else n) 0 t.retired in
  (* Minimum over ALL blocks: a retired block carries exactly
     endurance_limit erases, which never undercuts a live block, and on a
     fully-retired device the true minimum is the endurance limit — not 0,
     which would make wear_spread read as max_erase_count on a dead
     device. *)
  let max_e = ref 0 and min_e = ref max_int in
  Array.iter
    (fun e ->
       max_e := max !max_e e;
       min_e := min !min_e e)
    t.erase_counts;
  {
    host_writes = t.host_writes;
    device_writes = t.device_writes;
    gc_runs = t.gc_runs;
    erases = t.erases;
    retired_blocks;
    write_amplification =
      (if t.host_writes = 0 then 1.
       else float_of_int t.device_writes /. float_of_int t.host_writes);
    max_erase_count = !max_e;
    min_erase_count = (if !min_e = max_int then 0 else !min_e);
  }

let wear_spread t =
  let s = stats t in
  float_of_int (s.max_erase_count - s.min_erase_count)

exception Violation of string

let check_invariants t =
  let ppb = t.config.pages_per_block in
  let check cond fmt =
    Printf.ksprintf (fun s -> if not cond then raise (Violation s)) fmt
  in
  try
    (* mapping -> pages *)
    Array.iteri
      (fun lpn loc ->
         if loc <> unmapped then begin
           check (loc >= 0 && loc < t.config.blocks * ppb)
             "lpn %d maps to out-of-range (%d,%d)" lpn (loc / ppb) (loc mod ppb);
           check (t.pages.(loc) = lpn)
             "lpn %d maps to (%d,%d) which does not hold it" lpn (loc / ppb)
             (loc mod ppb)
         end)
      t.mapping;
    (* pages -> mapping: no aliasing, every Valid page is the mapped one *)
    Array.iteri
      (fun loc s ->
         if s >= 0 then begin
           let b = loc / ppb and p = loc mod ppb in
           check (s < Array.length t.mapping)
             "page (%d,%d) holds out-of-range lpn %d" b p s;
           check (t.mapping.(s) = loc)
             "page (%d,%d) holds lpn %d but mapping disagrees" b p s
         end)
      t.pages;
    (* the incremental per-block populations agree with the page map *)
    for b = 0 to t.config.blocks - 1 do
      let free = ref 0 and invalid = ref 0 in
      for p = 0 to ppb - 1 do
        let s = t.pages.((b * ppb) + p) in
        if s = p_free then incr free else if s = p_invalid then incr invalid
      done;
      check (t.free_cnt.(b) = !free)
        "block %d free count %d disagrees with page map (%d)" b t.free_cnt.(b)
        !free;
      check (t.invalid_cnt.(b) = !invalid)
        "block %d invalid count %d disagrees with page map (%d)" b
        t.invalid_cnt.(b) !invalid
    done;
    (* write point sanity *)
    if t.wp_block >= 0 then begin
      check (t.wp_block < t.config.blocks && t.wp_page >= 0 && t.wp_page <= ppb)
        "write point (%d,%d) out of range" t.wp_block t.wp_page;
      check (not t.retired.(t.wp_block)) "write point on retired block %d"
        t.wp_block
    end;
    (* counters *)
    check (t.device_writes >= t.host_writes)
      "device_writes %d < host_writes %d" t.device_writes t.host_writes;
    check (t.erases = Array.fold_left ( + ) 0 t.erase_counts)
      "erases counter %d disagrees with per-block erase counts" t.erases;
    Ok ()
  with Violation s -> Error s

let run_trace t ops =
  let capacity = logical_capacity t in
  List.fold_left
    (fun acc op ->
       match acc with
       | Error _ -> acc
       | Ok t ->
         (match op with
          | Workload.Read _ -> Ok t
          | Workload.Write { page; _ } -> write t ~lpn:(page mod capacity)))
    (Ok t) ops

module For_testing = struct
  let of_state ~config:cfg ?erase_counts ~pages ~write_point () =
    if Array.length pages <> cfg.blocks
       || Array.exists (fun row -> Array.length row <> cfg.pages_per_block) pages
    then invalid_arg "Ftl.For_testing.of_state: page map dimensions";
    let erase_counts =
      match erase_counts with
      | None -> Array.make cfg.blocks 0
      | Some ec ->
        if Array.length ec <> cfg.blocks || Array.exists (fun c -> c < 0) ec
        then invalid_arg "Ftl.For_testing.of_state: erase counts";
        Array.copy ec
    in
    let t = create cfg in
    Array.blit erase_counts 0 t.erase_counts 0 cfg.blocks;
    for b = 0 to cfg.blocks - 1 do
      t.retired.(b) <- erase_counts.(b) >= cfg.endurance_limit
    done;
    t.erases <- Array.fold_left ( + ) 0 erase_counts;
    (match write_point with
     | None -> ()
     | Some (b, p) ->
       t.wp_block <- b;
       t.wp_page <- p);
    let ppb = cfg.pages_per_block in
    Array.iteri
      (fun b row ->
         Array.iteri
           (fun p s ->
              let loc = (b * ppb) + p in
              match s with
              | Free -> ()
              | Invalid ->
                t.pages.(loc) <- p_invalid;
                t.free_cnt.(b) <- t.free_cnt.(b) - 1;
                t.invalid_cnt.(b) <- t.invalid_cnt.(b) + 1
              | Valid lpn ->
                if lpn < 0 || lpn >= Array.length t.mapping then
                  invalid_arg "Ftl.For_testing.of_state: lpn out of range";
                if t.mapping.(lpn) <> unmapped then
                  invalid_arg "Ftl.For_testing.of_state: duplicate lpn";
                t.pages.(loc) <- lpn;
                t.free_cnt.(b) <- t.free_cnt.(b) - 1;
                t.mapping.(lpn) <- loc)
           row)
      pages;
    t
end
