type page_state =
  | Free
  | Valid of int
  | Invalid

type config = {
  blocks : int;
  pages_per_block : int;
  gc_threshold : int;
  endurance_limit : int;
}

type error =
  | Out_of_range of int
  | Device_full
  | No_victim
  | No_free_block

let error_to_string = function
  | Out_of_range lpn -> Printf.sprintf "Ftl: lpn %d out of range" lpn
  | Device_full -> "Ftl: device full"
  | No_victim -> "Ftl: nothing to collect"
  | No_free_block -> "Ftl: no free block to open"

(* Physical operations, journaled in the order the device would see them so
   a command-level front end (Service) can mirror the op stream. *)
type phys_op =
  | Phys_program of { block : int; page : int; lpn : int; gc : bool }
  | Phys_erase of { block : int; retired : bool }

type t = {
  config : config;
  pages : page_state array array;   (* [block].[page] *)
  mapping : (int * int) option array; (* lpn -> (block, page) *)
  erase_counts : int array;
  retired : bool array;
  write_point : (int * int) option;   (* current open (block, next page) *)
  host_writes : int;
  device_writes : int;
  gc_runs : int;
  erases : int;
  journal : phys_op list;             (* reverse chronological *)
}

let default_config =
  { blocks = 16; pages_per_block = 64; gc_threshold = 8; endurance_limit = 10_000 }

(* One whole block is reserved so garbage collection always has a landing
   zone for a victim's valid pages, plus 1/8 page-level over-provisioning
   to keep the GC off the hot path. *)
let logical_capacity_of config = (config.blocks - 1) * config.pages_per_block * 7 / 8

let create config =
  if config.blocks < 2 || config.pages_per_block < 1 then
    invalid_arg "Ftl.create: need >= 2 blocks and >= 1 page";
  if config.gc_threshold < 1 || config.gc_threshold >= config.blocks * config.pages_per_block / 4
  then invalid_arg "Ftl.create: unreasonable gc threshold";
  {
    config;
    pages = Array.init config.blocks (fun _ -> Array.make config.pages_per_block Free);
    mapping = Array.make (logical_capacity_of config) None;
    erase_counts = Array.make config.blocks 0;
    retired = Array.make config.blocks false;
    write_point = None;
    host_writes = 0;
    device_writes = 0;
    gc_runs = 0;
    erases = 0;
    journal = [];
  }

let config t = t.config
let logical_capacity t = Array.length t.mapping

let free_pages t =
  let n = ref 0 in
  Array.iteri
    (fun b row ->
       if not t.retired.(b) then
         Array.iter (fun s -> if s = Free then incr n) row)
    t.pages;
  !n

(* Pick the block with the lowest erase count among blocks that are fully
   free (candidates to open for writing). *)
let pick_open_block t ~exclude =
  let best = ref None in
  Array.iteri
    (fun b row ->
       if (not t.retired.(b)) && b <> exclude
          && Array.for_all (fun s -> s = Free) row then begin
         match !best with
         | Some b' when t.erase_counts.(b') <= t.erase_counts.(b) -> ()
         | _ -> best := Some b
       end)
    t.pages;
  !best

(* Fully-free blocks not currently open for writing — the GC headroom. *)
let fully_free_blocks t =
  let open_block = match t.write_point with Some (b, _) -> b | None -> -1 in
  let n = ref 0 in
  Array.iteri
    (fun b row ->
       if (not t.retired.(b)) && b <> open_block
          && Array.for_all (fun s -> s = Free) row then incr n)
    t.pages;
  !n

(* Exactly the condition under which [allocate] can program a page: either
   the open block still has room, or a fully-free block exists to open.
   Free pages scattered across partially-written non-open blocks do NOT
   count — the allocator cannot consume them. *)
let writable t =
  (match t.write_point with
   | Some (_, p) when p < t.config.pages_per_block -> true
   | _ -> false)
  || Option.is_some (pick_open_block t ~exclude:(-1))

let copy t =
  {
    t with
    pages = Array.map Array.copy t.pages;
    mapping = Array.copy t.mapping;
    erase_counts = Array.copy t.erase_counts;
    retired = Array.copy t.retired;
  }

(* Program one physical page at the write point; opens a block if needed. *)
let rec allocate t =
  match t.write_point with
  | Some (b, p) when p < t.config.pages_per_block -> Ok (t, b, p)
  | _ ->
    (match pick_open_block t ~exclude:(-1) with
     | Some b -> Ok ({ t with write_point = Some (b, 0) }, b, 0)
     | None -> Error No_free_block)

and program_page ?(gc = false) t ~lpn =
  match allocate t with
  | Error e -> Error e
  | Ok (t, b, p) ->
    let t = copy t in
    t.pages.(b).(p) <- Valid lpn;
    (* invalidate the previous location *)
    (match t.mapping.(lpn) with
     | Some (ob, op) -> t.pages.(ob).(op) <- Invalid
     | None -> ());
    t.mapping.(lpn) <- Some (b, p);
    Ok
      {
        t with
        write_point = Some (b, p + 1);
        device_writes = t.device_writes + 1;
        journal = Phys_program { block = b; page = p; lpn; gc } :: t.journal;
      }

(* Greedy victim selection: most invalid pages; ties broken toward higher
   erase count being avoided (wear leveling). Never the open block. *)
let pick_victim t =
  let open_block = match t.write_point with Some (b, _) -> b | None -> -1 in
  let best = ref None in
  Array.iteri
    (fun b row ->
       if (not t.retired.(b)) && b <> open_block then begin
         let invalid = Array.fold_left (fun n s -> if s = Invalid then n + 1 else n) 0 row in
         if invalid > 0 then begin
           match !best with
           | Some (_, best_invalid, best_erases)
             when best_invalid > invalid
                  || (best_invalid = invalid && best_erases <= t.erase_counts.(b)) ->
             ()
           | _ -> best := Some (b, invalid, t.erase_counts.(b))
         end
       end)
    t.pages;
  Option.map (fun (b, _, _) -> b) !best

let erase_block t b =
  let t = copy t in
  Array.fill t.pages.(b) 0 t.config.pages_per_block Free;
  t.erase_counts.(b) <- t.erase_counts.(b) + 1;
  if t.erase_counts.(b) >= t.config.endurance_limit then t.retired.(b) <- true;
  let write_point =
    match t.write_point with
    | Some (wb, _) when wb = b -> None
    | wp -> wp
  in
  {
    t with
    erases = t.erases + 1;
    write_point;
    journal = Phys_erase { block = b; retired = t.retired.(b) } :: t.journal;
  }

let garbage_collect t =
  match pick_victim t with
  | None -> Error No_victim
  | Some victim ->
    (* Move valid pages of the victim through the write point. With at
       least one fully-free block in reserve this always fits: the victim
       holds at most pages_per_block valid pages and GC can consume the
       reserve block, regaining a full block when the victim is erased. *)
    let rec move t p =
      if p >= t.config.pages_per_block then Ok t
      else
        match t.pages.(victim).(p) with
        | Valid lpn ->
          (match program_page ~gc:true t ~lpn with
           | Error e -> Error e
           | Ok t -> move t (p + 1))
        | Free | Invalid -> move t (p + 1)
    in
    (match move t 0 with
     | Error e -> Error e
     | Ok t ->
       let t = erase_block t victim in
       Ok { t with gc_runs = t.gc_runs + 1 })

(* Maintain the invariant that a spare fully-free block exists before
   accepting a host write (plus the configured free-page low-water mark). *)
let rec ensure_space t =
  let needs_gc =
    fully_free_blocks t < 1 || free_pages t <= t.config.gc_threshold
  in
  if not needs_gc then Ok t
  else
    match garbage_collect t with
    | Ok t -> ensure_space t
    | Error _ ->
      (* No reclaimable pages. Accept the write only if the allocator can
         actually place it — free pages stranded in partially-written,
         non-open blocks are unusable until their block is collected, so
         [free_pages t > 0] alone is NOT sufficient here. *)
      if writable t then Ok t else Error Device_full

let write t ~lpn =
  if lpn < 0 || lpn >= logical_capacity t then Error (Out_of_range lpn)
  else
    match ensure_space t with
    | Error e -> Error e
    | Ok t ->
      (match program_page t ~lpn with
       | Error e -> Error e
       | Ok t -> Ok { t with host_writes = t.host_writes + 1 })

let read t ~lpn =
  if lpn < 0 || lpn >= logical_capacity t then None else t.mapping.(lpn)

let trim t ~lpn =
  if lpn < 0 || lpn >= logical_capacity t then t
  else
    match t.mapping.(lpn) with
    | None -> t
    | Some (b, p) ->
      let t = copy t in
      t.pages.(b).(p) <- Invalid;
      t.mapping.(lpn) <- None;
      t

let drain_journal t = ({ t with journal = [] }, List.rev t.journal)

type stats = {
  host_writes : int;
  device_writes : int;
  gc_runs : int;
  erases : int;
  retired_blocks : int;
  write_amplification : float;
  max_erase_count : int;
  min_erase_count : int;
}

let stats t =
  let retired_blocks = Array.fold_left (fun n r -> if r then n + 1 else n) 0 t.retired in
  (* Minimum over ALL blocks: a retired block carries exactly
     endurance_limit erases, which never undercuts a live block, and on a
     fully-retired device the true minimum is the endurance limit — not 0,
     which would make wear_spread read as max_erase_count on a dead
     device. *)
  let max_e = ref 0 and min_e = ref max_int in
  Array.iter
    (fun e ->
       max_e := max !max_e e;
       min_e := min !min_e e)
    t.erase_counts;
  {
    host_writes = t.host_writes;
    device_writes = t.device_writes;
    gc_runs = t.gc_runs;
    erases = t.erases;
    retired_blocks;
    write_amplification =
      (if t.host_writes = 0 then 1.
       else float_of_int t.device_writes /. float_of_int t.host_writes);
    max_erase_count = !max_e;
    min_erase_count = (if !min_e = max_int then 0 else !min_e);
  }

let wear_spread t =
  let s = stats t in
  float_of_int (s.max_erase_count - s.min_erase_count)

exception Violation of string

let check_invariants t =
  let ppb = t.config.pages_per_block in
  let check cond fmt =
    Printf.ksprintf (fun s -> if not cond then raise (Violation s)) fmt
  in
  try
    (* mapping -> pages *)
    Array.iteri
      (fun lpn loc ->
         match loc with
         | None -> ()
         | Some (b, p) ->
           check (b >= 0 && b < t.config.blocks && p >= 0 && p < ppb)
             "lpn %d maps to out-of-range (%d,%d)" lpn b p;
           check (t.pages.(b).(p) = Valid lpn)
             "lpn %d maps to (%d,%d) which does not hold it" lpn b p)
      t.mapping;
    (* pages -> mapping: no aliasing, every Valid page is the mapped one *)
    Array.iteri
      (fun b row ->
         Array.iteri
           (fun p s ->
              match s with
              | Valid lpn ->
                check (lpn >= 0 && lpn < Array.length t.mapping)
                  "page (%d,%d) holds out-of-range lpn %d" b p lpn;
                check (t.mapping.(lpn) = Some (b, p))
                  "page (%d,%d) holds lpn %d but mapping disagrees" b p lpn
              | Free | Invalid -> ())
           row)
      t.pages;
    (* write point sanity *)
    (match t.write_point with
     | None -> ()
     | Some (b, p) ->
       check (b >= 0 && b < t.config.blocks && p >= 0 && p <= ppb)
         "write point (%d,%d) out of range" b p;
       check (not t.retired.(b)) "write point on retired block %d" b);
    (* counters *)
    check (t.device_writes >= t.host_writes)
      "device_writes %d < host_writes %d" t.device_writes t.host_writes;
    check (t.erases = Array.fold_left ( + ) 0 t.erase_counts)
      "erases counter %d disagrees with per-block erase counts" t.erases;
    Ok ()
  with Violation s -> Error s

let run_trace t ops =
  let capacity = logical_capacity t in
  List.fold_left
    (fun acc op ->
       match acc with
       | Error _ -> acc
       | Ok t ->
         (match op with
          | Workload.Read _ -> Ok t
          | Workload.Write { page; _ } -> write t ~lpn:(page mod capacity)))
    (Ok t) ops

module For_testing = struct
  let of_state ~config:cfg ?erase_counts ~pages ~write_point () =
    if Array.length pages <> cfg.blocks
       || Array.exists (fun row -> Array.length row <> cfg.pages_per_block) pages
    then invalid_arg "Ftl.For_testing.of_state: page map dimensions";
    let erase_counts =
      match erase_counts with
      | None -> Array.make cfg.blocks 0
      | Some ec ->
        if Array.length ec <> cfg.blocks || Array.exists (fun c -> c < 0) ec
        then invalid_arg "Ftl.For_testing.of_state: erase counts";
        Array.copy ec
    in
    let retired = Array.map (fun c -> c >= cfg.endurance_limit) erase_counts in
    let erases = Array.fold_left ( + ) 0 erase_counts in
    let t = create cfg in
    let t =
      { t with
        pages = Array.map Array.copy pages;
        write_point;
        erase_counts;
        retired;
        erases;
      }
    in
    Array.iteri
      (fun b row ->
         Array.iteri
           (fun p s ->
              match s with
              | Valid lpn ->
                if lpn < 0 || lpn >= Array.length t.mapping then
                  invalid_arg "Ftl.For_testing.of_state: lpn out of range";
                if Option.is_some t.mapping.(lpn) then
                  invalid_arg "Ftl.For_testing.of_state: duplicate lpn";
                t.mapping.(lpn) <- Some (b, p)
              | Free | Invalid -> ())
           row)
      pages;
    t
end
