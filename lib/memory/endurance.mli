(** Program/erase cycling with wear feedback: per-cycle injected charge
    accumulates oxide fluence; trap generation drifts the neutral
    threshold; the cell fails when the oxide breaks or the program/erase
    window closes. *)

type cycle_sample = {
  cycle : int;
  vt_programmed : float;   (** programmed-state threshold [V] *)
  vt_erased : float;       (** erased-state threshold [V] *)
  window : float;          (** program/erase window [V] *)
  fluence : float;         (** cumulative oxide fluence [C/m²] *)
}

type run = {
  samples : cycle_sample list;   (** log-spaced observation points *)
  cycles_survived : int;
  failure : string option;       (** [None] if the cycle budget completed *)
}

val cycle_cell :
  ?reliability:Gnrflash_device.Reliability.model ->
  ?program_pulse:Gnrflash_device.Program_erase.pulse ->
  ?erase_pulse:Gnrflash_device.Program_erase.pulse ->
  ?window_min:float ->
  ?surrogate:bool ->
  Gnrflash_device.Fgt.t -> cycles:int -> run
(** Cycle a single cell [cycles] times, sampling the thresholds at
    log-spaced cycle counts. Stops early on oxide breakdown or when the
    window falls below [window_min] (default 1 V). [surrogate] (default
    on) serves in-box pulses from the {!Gnrflash_device.Pulse_surrogate}
    tables — the intended fleet-scale cycling path; pass [false] to force
    every pulse through the exact ODE solve. *)

val predicted_endurance :
  ?reliability:Gnrflash_device.Reliability.model ->
  Gnrflash_device.Fgt.t -> vgs:float -> float
(** Closed-form endurance estimate: charge-to-breakdown at the programming
    field divided by the per-cycle fluence (from the saturation charge) —
    cross-checks the simulation. *)
