module Sm = Gnrflash_prng.Splitmix

type op =
  | Write of { page : int; data : int array }
  | Read of { page : int }

type pattern =
  | Sequential
  | Uniform
  | Zipf of float

(* Per-op deterministic randomness: every draw is a pure function of
   (seed, op index, draw slot), so traces depend only on the seed — never
   on evaluation order, chunking, job count or shard count. *)
let unit_float h = float_of_int h *. 0x1p-62 (* hash is 62-bit *)

let zipf_cdf ~exponent ~n =
  (* inverse-CDF table over ranks 1..n with P(k) ∝ k^-exponent *)
  let weights = Array.init n (fun i -> (float_of_int (i + 1)) ** (-.exponent)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
       acc := !acc +. w;
       cdf.(i) <- !acc /. total)
    weights;
  cdf

let inv_cdf cdf u =
  let n = Array.length cdf in
  let rec find lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then find (mid + 1) hi else find lo mid
    end
  in
  find 0 (n - 1)

let page_of ~pattern ~cdf ~pages ~index draw =
  match pattern with
  | Sequential -> index mod pages
  | Uniform -> draw mod pages
  | Zipf _ -> inv_cdf (Option.get cdf) (unit_float draw)

let validate_pattern = function
  | Zipf exponent when exponent <= 0. ->
    invalid_arg "Workload.generate: zipf exponent <= 0"
  | _ -> ()

let cdf_of_pattern ~pages = function
  | Zipf exponent -> Some (zipf_cdf ~exponent ~n:pages)
  | Sequential | Uniform -> None

let generate ~seed pattern ~pages ~strings ~ops ~read_fraction =
  if pages < 1 || strings < 1 || ops < 0 then invalid_arg "Workload.generate: bad sizes";
  if read_fraction < 0. || read_fraction > 1. then
    invalid_arg "Workload.generate: read_fraction out of [0, 1]";
  validate_pattern pattern;
  let cdf = cdf_of_pattern ~pages pattern in
  let op_at i =
    let h = Sm.hash ~seed ~index:i in
    let draw j = Sm.hash ~seed:h ~index:j in
    let page = page_of ~pattern ~cdf ~pages ~index:i (draw 0) in
    if unit_float (draw 1) < read_fraction then Read { page }
    else Write { page; data = Array.init strings (fun s -> draw (2 + s) land 1) }
  in
  (* explicit back-to-front build: op order is the index order by
     construction, with no reliance on List.init's application order *)
  let rec build i acc = if i < 0 then acc else build (i - 1) (op_at i :: acc) in
  build (ops - 1) []

(* ------------------------------------------------------------------ *)
(* Command streams for the command-level memory service               *)
(* ------------------------------------------------------------------ *)

type host_cmd =
  | Cmd_write of { lpn : int; data : int array; suspend : bool }
  | Cmd_read of { lpn : int }
  | Cmd_trim of { lpn : int }

type command_profile = {
  pattern : pattern;
  pages : int;
  strings : int;
  read_fraction : float;
  trim_fraction : float;
  suspend_fraction : float;
}

let default_profile =
  {
    pattern = Zipf 1.1;
    pages = 256;
    strings = 16;
    read_fraction = 0.3;
    trim_fraction = 0.05;
    suspend_fraction = 0.02;
  }

let generate_commands ~seed ~profile ~ops =
  let { pattern; pages; strings; read_fraction; trim_fraction; suspend_fraction } =
    profile
  in
  if pages < 1 || strings < 1 || ops < 0 then
    invalid_arg "Workload.generate_commands: bad sizes";
  if read_fraction < 0. || trim_fraction < 0. || read_fraction +. trim_fraction > 1.
  then invalid_arg "Workload.generate_commands: fractions out of range";
  if suspend_fraction < 0. || suspend_fraction > 1. then
    invalid_arg "Workload.generate_commands: suspend_fraction out of [0, 1]";
  validate_pattern pattern;
  let cdf = cdf_of_pattern ~pages pattern in
  Array.init ops (fun i ->
      let h = Sm.hash ~seed ~index:i in
      let draw j = Sm.hash ~seed:h ~index:j in
      let lpn = page_of ~pattern ~cdf ~pages ~index:i (draw 0) in
      let u = unit_float (draw 1) in
      if u < read_fraction then Cmd_read { lpn }
      else if u < read_fraction +. trim_fraction then Cmd_trim { lpn }
      else
        Cmd_write
          {
            lpn;
            data = Array.init strings (fun s -> draw (3 + s) land 1);
            suspend = unit_float (draw 2) < suspend_fraction;
          })

(* ------------------------------------------------------------------ *)
(* Trace digests                                                      *)
(* ------------------------------------------------------------------ *)

(* FNV-1a-style folding over ints, truncated to OCaml's non-negative
   range: stable, order-sensitive, cheap — for golden-trace pinning and
   cross-tier identity checks, not cryptography. *)
let digest_fold h v = ((h lxor v) * 0x100000001B3) land max_int

let digest_empty = 0x1505

let digest_op h = function
  | Read { page } -> digest_fold (digest_fold h 1) page
  | Write { page; data } ->
    Array.fold_left digest_fold (digest_fold (digest_fold h 2) page) data

let digest_ops ops = List.fold_left digest_op digest_empty ops

let digest_cmd h = function
  | Cmd_read { lpn } -> digest_fold (digest_fold h 1) lpn
  | Cmd_trim { lpn } -> digest_fold (digest_fold h 2) lpn
  | Cmd_write { lpn; data; suspend } ->
    let h = digest_fold (digest_fold h 3) lpn in
    let h = digest_fold h (if suspend then 1 else 0) in
    Array.fold_left digest_fold h data

let digest_commands cmds = Array.fold_left digest_cmd digest_empty cmds

type replay_stats = {
  writes : int;
  reads : int;
  erase_cycles : int;
  failed_verifies : int;
  max_fluence : float;
  broken_cells : int;
}

let page_holds_charge (ctrl : Controller.t) ~page =
  let block = ctrl.Controller.block in
  let dirty = ref false in
  for s = 0 to block.Array_model.strings - 1 do
    let c = Array_model.get block ~page ~string_:s in
    if Cell.dvt c > 0.5 then dirty := true
  done;
  !dirty

let replay ctrl ops =
  let rec go ctrl writes reads erases fails = function
    | [] ->
      let _, max_fluence, broken = Array_model.wear_summary ctrl.Controller.block in
      Ok
        ( ctrl,
          {
            writes;
            reads;
            erase_cycles = erases;
            failed_verifies = fails;
            max_fluence;
            broken_cells = broken;
          } )
    | Read { page } :: rest ->
      (match Controller.read_page ctrl ~page with
       | Error e -> Error e
       | Ok (ctrl, _bits) -> go ctrl writes (reads + 1) erases fails rest)
    | Write { page; data } :: rest ->
      let needs_erase = page_holds_charge ctrl ~page in
      let prep =
        if needs_erase then Controller.erase_block ctrl else Ok ctrl
      in
      (match prep with
       | Error e -> Error e
       | Ok ctrl ->
         (match Controller.program_page ctrl ~page ~data with
          | Error e -> Error e
          | Ok ctrl ->
            let ok = Controller.verify_page ctrl ~page ~data in
            go ctrl (writes + 1) reads
              (erases + if needs_erase then 1 else 0)
              (fails + if ok then 0 else 1)
              rest))
  in
  go ctrl 0 0 0 0 ops
