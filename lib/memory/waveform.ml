module D = Gnrflash_device

type segment = {
  vgs : float;
  duration : float;
}

type t = segment list

let pulse_train ~vgs ~width ~gap ~count =
  if width <= 0. then invalid_arg "Waveform.pulse_train: width <= 0";
  if count < 1 then invalid_arg "Waveform.pulse_train: count < 1";
  if gap < 0. then invalid_arg "Waveform.pulse_train: negative gap";
  List.concat
    (List.init count (fun i ->
         let p = { vgs; duration = width } in
         if gap > 0. && i < count - 1 then [ p; { vgs = 0.; duration = gap } ] else [ p ]))

let staircase ~v0 ~step ~width ~count =
  if width <= 0. then invalid_arg "Waveform.staircase: width <= 0";
  if count < 1 then invalid_arg "Waveform.staircase: count < 1";
  List.init count (fun i -> { vgs = v0 +. (float_of_int i *. step); duration = width })

let total_duration t = List.fold_left (fun acc s -> acc +. s.duration) 0. t

let apply device ~qfg0 segments =
  let rec go time qfg acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest ->
      if s.duration <= 0. then Error "Waveform.apply: non-positive segment duration"
      else if Float.equal s.vgs 0. then
        (* grounded gap: leakage is negligible on pulse timescales *)
        go (time +. s.duration) qfg ((time +. s.duration, qfg) :: acc) rest
      else
        (match D.Transient.run ~qfg0:qfg device ~vgs:s.vgs ~duration:s.duration with
         | Error e -> Error (Gnrflash_resilience.Solver_error.to_string e)
         | Ok r ->
           let time' = time +. s.duration in
           go time' r.D.Transient.qfg_final ((time', r.D.Transient.qfg_final) :: acc) rest)
  in
  go 0. qfg0 [] segments
