(** A page-mapping flash translation layer over a multi-block device:
    out-of-place updates, greedy garbage collection and wear-aware
    allocation — the firmware layer that turns the erase-before-write
    device of this library into a rewritable address space.

    The FTL tracks page state and per-block erase counts (metadata
    simulation, the standard methodology for FTL studies); the underlying
    per-cell physics lives in {!Controller} and is exercised by the
    smaller array tests. The physical operations each host call performs
    are journaled (see {!phys_op}) so a command-level front end
    ({!Service}) can replay the exact op stream against a behavioral
    device model. *)

type page_state =
  | Free
  | Valid of int   (** holds this logical page *)
  | Invalid        (** superseded data awaiting garbage collection *)

type t

type config = {
  blocks : int;          (** physical blocks *)
  pages_per_block : int;
  gc_threshold : int;    (** trigger GC when free pages drop to this *)
  endurance_limit : int; (** erases after which a block is retired *)
}

type error =
  | Out_of_range of int  (** logical page number outside the capacity *)
  | Device_full          (** no space the allocator can actually consume *)
  | No_victim            (** internal: GC found nothing to collect *)
  | No_free_block        (** internal: allocator found no fully-free block *)

val error_to_string : error -> string

(** One physical operation, in device order. [gc] distinguishes
    relocations performed by garbage collection from host-initiated
    programs. *)
type phys_op =
  | Phys_program of { block : int; page : int; lpn : int; gc : bool }
  | Phys_erase of { block : int; retired : bool }

val default_config : config
(** 16 blocks × 64 pages, GC at 8 free pages, 10⁴-erase endurance. *)

val create : config -> t
(** Fresh, fully-free device. @raise Invalid_argument on non-positive
    dimensions or a GC threshold that can never be satisfied. *)

val config : t -> config

val logical_capacity : t -> int
(** Logical pages exposed: 7/8 of the physical pages excluding one
    reserved block — the over-provisioning that guarantees garbage
    collection always has room to relocate a victim's valid pages. *)

val free_pages : t -> int
(** Free physical pages over non-retired blocks (includes pages the
    allocator cannot reach; see {!writable}). *)

val fully_free_blocks : t -> int
(** Fully-free non-open blocks — the garbage collector's headroom. *)

val writable : t -> bool
(** Whether the allocator can place one more page right now: the open
    block has room, or a fully-free block exists to open. This — not
    [free_pages t > 0] — is the predicate space accounting must use;
    free pages stranded in partially-written non-open blocks are
    unusable until their block is collected. *)

val ensure_space : t -> (t, error) result
(** Run garbage collection until a fully-free reserve block exists and
    the free-page low-water mark is respected, or accept the state as-is
    when nothing is reclaimable but the allocator still has room.
    [Error Device_full] when a write cannot be placed. *)

val write : t -> lpn:int -> (t, error) result
(** Write (or rewrite) a logical page. Triggers garbage collection when
    free space is low. Fails with [Device_full] when out of usable space
    or [Out_of_range] for a bad logical page number. *)

val read : t -> lpn:int -> (int * int) option
(** Physical [(block, page)] currently holding the logical page, if
    written. *)

(** {2 In-place variants}

    For callers that use an FTL handle {e linearly} — one owner, every
    update applied to the same handle, no retained snapshots
    ({!Service}'s hot loop). They observe exactly the semantics of
    {!write}/{!trim}/{!drain_journal} (same allocation decisions, GC
    runs, journal streams and rollback on failure — a part-way GC
    failure leaves the handle untouched) but mutate the handle instead
    of copying it, so an accepted write without a GC run costs zero
    copies. Mixing them with retained snapshots of the same handle is
    unsupported: earlier copies obtained from the persistent functions
    stay valid, but values sharing state with [t] (e.g. the pre-drain
    half of {!drain_journal}) are invalidated by an in-place update. *)

val write_in_place : t -> lpn:int -> (unit, error) result
(** {!write}, mutating [t]. [Error] leaves [t] unchanged. *)

val trim_in_place : t -> lpn:int -> unit
(** {!trim}, mutating [t]. *)

val take_journal : t -> phys_op list
(** {!drain_journal}, clearing [t]'s journal in place. *)

val trim : t -> lpn:int -> t
(** Discard a logical page (marks its physical page invalid). *)

val drain_journal : t -> t * phys_op list
(** Physical operations performed since creation or the last drain, in
    chronological device order, and the device with an emptied journal.
    Discarded intermediate states (e.g. a garbage collection attempt that
    failed part-way) leave no journal entries. *)

val check_invariants : t -> (unit, string) result
(** Structural self-check: the logical-to-physical mapping and the page
    state array agree in both directions (no aliasing), the write point
    is sane, [device_writes >= host_writes], and the erase counter equals
    the per-block sum. [Error] carries a description of the first
    violation found. *)

type stats = {
  host_writes : int;      (** pages written by the host *)
  device_writes : int;    (** pages physically programmed (incl. GC copies) *)
  gc_runs : int;
  erases : int;
  retired_blocks : int;
  write_amplification : float;  (** device_writes / host_writes *)
  max_erase_count : int;
  min_erase_count : int;        (** over all blocks, retired included — on a
                                    fully-retired device this is the
                                    endurance limit, not 0 *)
}

val stats : t -> stats
(** Counters since creation. *)

val wear_spread : t -> float
(** Max minus min block erase count — flatness of the wear-leveling.
    0 on a fully-retired device (every block wore out at the same
    endurance limit). *)

val run_trace : t -> Workload.op list -> (t, error) result
(** Replay a workload trace: writes map to {!write} (page index modulo the
    logical capacity), reads are metadata no-ops. *)

(** Test-only construction of out-of-policy device states — e.g. a
    crash-recovery snapshot where the write point was lost and free pages
    are stranded mid-block — which the normal write/trim path can never
    reach but space accounting must still handle. *)
module For_testing : sig
  val of_state :
    config:config ->
    ?erase_counts:int array ->
    pages:page_state array array ->
    write_point:(int * int) option ->
    unit ->
    t
  (** Build a device from an explicit page-state map; the
      logical-to-physical mapping is derived from the [Valid] cells, and
      block retirement from [erase_counts] (default all-zero) against the
      endurance limit.
      @raise Invalid_argument on dimension mismatch, negative erase
      counts, out-of-range or duplicate logical page numbers. *)
end
