[@@@gnrflash.hot]
module D = Gnrflash_device
module Tel = Gnrflash_telemetry.Telemetry

type config = {
  ftl : Ftl.config;
  strings : int;
  poll_interval : float;
  t_cycle : float;
  max_pulses : int;
  surrogate : bool;
  disturb : Gnrflash_device.Disturb.config option;
}

let default_config =
  {
    ftl = Ftl.default_config;
    strings = 8;
    poll_interval = 0.;
    t_cycle = 100e-9;
    max_pulses = 8;
    surrogate = true;
    disturb = None;
  }

type latency_summary = {
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

type report = {
  ops : int;
  reads : int;
  read_hits : int;
  writes : int;
  rejected_full : int;
  trims : int;
  lost_ops : int;
  read_mismatches : int;
  verify_mismatches : int;
  model_time : float;
  latency : latency_summary;
  trace_digest : int;
  state_digest : int;
  fsm : Command_fsm.stats;
  ftl : Ftl.stats;
  invariant_error : string option;
}

type t = {
  cfg : config;
  fsm : Command_fsm.t;
  ftl : Ftl.t; (* linear handle, updated through the in-place API *)
  store : int array option array; (* ground truth per logical page *)
  cw_memo : (int, int) Hashtbl.t; (* packed data bits -> SEC-DED codeword *)
  mutable ops : int;
  mutable reads : int;
  mutable read_hits : int;
  mutable writes : int;
  mutable rejected_full : int;
  mutable trims : int;
  mutable read_mismatches : int;
  mutable trace : int;
  (* latency ring: a preallocated grow-by-doubling buffer instead of a
     cons per op — the hot loop writes one float into a flat array *)
  mutable lat_buf : float array;
  mutable lat_len : int;
}

let word_bits_for strings = strings + Ecc.overhead strings

let create ?(config = default_config) device =
  if config.strings <= 0 then invalid_arg "Service.create: strings must be > 0";
  let fsm_config =
    {
      Command_fsm.default_config with
      sectors = config.ftl.Ftl.blocks;
      words_per_sector = config.ftl.Ftl.pages_per_block;
      word_bits = word_bits_for config.strings;
      t_cycle = config.t_cycle;
      max_pulses = config.max_pulses;
      surrogate = config.surrogate;
      disturb = config.disturb;
    }
  in
  let ftl = Ftl.create config.ftl in
  {
    cfg = config;
    fsm = Command_fsm.create ~config:fsm_config device;
    ftl;
    store = Array.make (Ftl.logical_capacity ftl) None;
    cw_memo = Hashtbl.create 64;
    ops = 0;
    reads = 0;
    read_hits = 0;
    writes = 0;
    rejected_full = 0;
    trims = 0;
    read_mismatches = 0;
    trace = Workload.digest_empty;
    lat_buf = Array.make 1024 0.;
    lat_len = 0;
  }

let logical_pages s = Array.length s.store
let device s = s.fsm
let ftl s = s.ftl

(* ---------- bus helpers ---------- *)

let bus_write s ~addr ~data =
  match Command_fsm.write s.fsm ~addr ~data with
  | Ok () -> ()
  | Error e ->
    failwith
      (Printf.sprintf "Service: device rejected 0x%X @ 0x%X: %s" data addr
         (Command_fsm.error_to_string e))

let u1 s = 0x555 mod Command_fsm.words s.fsm
let u2 s = 0x2AA mod Command_fsm.words s.fsm

let finish s =
  if s.cfg.poll_interval > 0. then
    ignore (Command_fsm.poll_ready s.fsm ~interval:s.cfg.poll_interval)
  else Command_fsm.wait_ready s.fsm

let word_of_bits bits =
  let w = ref 0 in
  for i = 0 to Array.length bits - 1 do
    w := !w lor (bits.(i) lsl i)
  done;
  !w

(* One SEC-DED encode per distinct data word per instance; the hot loop
   replays packed codewords out of the memo. *)
let codeword_for s data =
  let key = ref 0 in
  for i = Array.length data - 1 downto 0 do
    key := (!key lsl 1) lor data.(i)
  done;
  match Hashtbl.find_opt s.cw_memo !key with
  | Some w -> w
  | None ->
    let w = word_of_bits (Ecc.encode data) in
    Hashtbl.add s.cw_memo !key w;
    w

let addr_of s ~block ~page =
  (block * s.cfg.ftl.Ftl.pages_per_block) + page

(* ---------- mirrored device operations ---------- *)

let program_word s ~addr ~word =
  bus_write s ~addr:(u1 s) ~data:0xAA;
  bus_write s ~addr:(u2 s) ~data:0x55;
  bus_write s ~addr:(u1 s) ~data:0xA0;
  bus_write s ~addr ~data:word;
  finish s

let program_buffer s ~sector ~words =
  let sa = sector * s.cfg.ftl.Ftl.pages_per_block in
  bus_write s ~addr:(u1 s) ~data:0xAA;
  bus_write s ~addr:(u2 s) ~data:0x55;
  bus_write s ~addr:sa ~data:0x25;
  bus_write s ~addr:sa ~data:(List.length words - 1);
  List.iter (fun (addr, word) -> bus_write s ~addr ~data:word) words;
  bus_write s ~addr:sa ~data:0x29;
  finish s

let erase_sector s ~sector ~suspend =
  let sa = sector * s.cfg.ftl.Ftl.pages_per_block in
  bus_write s ~addr:(u1 s) ~data:0xAA;
  bus_write s ~addr:(u2 s) ~data:0x55;
  bus_write s ~addr:(u1 s) ~data:0x80;
  bus_write s ~addr:(u1 s) ~data:0xAA;
  bus_write s ~addr:(u2 s) ~data:0x55;
  bus_write s ~addr:sa ~data:0x30;
  if suspend && not (Command_fsm.ready s.fsm) then begin
    (* let the erase run a little, then suspend it and peek at the device *)
    let cfg = Command_fsm.config s.fsm in
    Command_fsm.step_to s.fsm
      (Command_fsm.now s.fsm
      +. (0.25 *. cfg.Command_fsm.erase_pulse.D.Program_erase.duration));
    if not (Command_fsm.ready s.fsm) then begin
      bus_write s ~addr:sa ~data:0xB0;
      (* a read inside the suspended sector answers with DQ2 toggling... *)
      ignore (Command_fsm.read s.fsm ~addr:sa);
      (* ...while other sectors serve data as usual *)
      if cfg.Command_fsm.sectors > 1 then
        ignore
          (Command_fsm.read s.fsm
             ~addr:
               ((sector + 1) mod cfg.Command_fsm.sectors
               * cfg.Command_fsm.words_per_sector));
      bus_write s ~addr:sa ~data:0x30 (* resume *)
    end
  end;
  finish s

(* Data for one journaled program: GC relocations replay the stored
   ground truth; the single host-initiated entry carries the new data. *)
let data_for s ~host_lpn ~host_data ~lpn ~gc =
  if gc then
    match s.store.(lpn) with
    | Some d -> d
    | None ->
      failwith
        (Printf.sprintf "Service: GC relocated lpn %d with no ground truth" lpn)
  else if lpn <> host_lpn then
    failwith
      (Printf.sprintf "Service: host program journaled for lpn %d, expected %d"
         lpn host_lpn)
  else host_data

let mirror s ~host_lpn ~host_data ~suspend phys_ops =
  let buffer_cap = (Command_fsm.config s.fsm).Command_fsm.write_buffer_words in
  let first_erase = ref true in
  (* batch maximal same-sector runs of programs through the write buffer *)
  let rec go = function
    | [] -> ()
    | Ftl.Phys_erase { block; retired = _ } :: rest ->
      let suspend_this = suspend && !first_erase in
      first_erase := false;
      erase_sector s ~sector:block ~suspend:suspend_this;
      go rest
    | Ftl.Phys_program { block; _ } :: _ as ops ->
      let rec take n acc = function
        | Ftl.Phys_program { block = b; page; lpn; gc } :: rest
          when b = block && n < buffer_cap ->
          let word = codeword_for s (data_for s ~host_lpn ~host_data ~lpn ~gc) in
          take (n + 1) ((addr_of s ~block ~page, word) :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let batch, rest = take 0 [] ops in
      (match batch with
       | [ (addr, word) ] -> program_word s ~addr ~word
       | words -> program_buffer s ~sector:block ~words);
      go rest
  in
  go phys_ops

(* ---------- host commands ---------- *)

let fold v s = s.trace <- Workload.digest_fold s.trace v

let fold_float x s =
  s.trace <- Workload.digest_fold s.trace (Int64.to_int (Int64.bits_of_float x))

let record_latency s t0 =
  let dt = Command_fsm.now s.fsm -. t0 in
  let n = Array.length s.lat_buf in
  if s.lat_len = n then begin
    let bigger = Array.make (2 * n) 0. in
    Array.blit s.lat_buf 0 bigger 0 n;
    s.lat_buf <- bigger
  end;
  s.lat_buf.(s.lat_len) <- dt;
  s.lat_len <- s.lat_len + 1;
  fold_float dt s

let exec_read s ~lpn =
  s.reads <- s.reads + 1;
  fold 1 s;
  fold lpn s;
  match Ftl.read s.ftl ~lpn with
  | None -> fold 0 s
  | Some (block, page) -> (
    s.read_hits <- s.read_hits + 1;
    let addr = addr_of s ~block ~page in
    match Command_fsm.read s.fsm ~addr with
    | Command_fsm.Status _ ->
      (* the service always waits for ready, so a status answer on the
         read path is a protocol violation *)
      failwith "Service: data read answered with status while ready"
    | Command_fsm.Data bits -> (
      let matches =
        match (Ecc.decode ~k:s.cfg.strings bits, s.store.(lpn)) with
        | (Ecc.Clean d | Ecc.Corrected (d, _)), Some expect -> d = expect
        | Ecc.Uncorrectable, _ | _, None -> false
      in
      fold (Bool.to_int matches) s;
      if not matches then begin
        s.read_mismatches <- s.read_mismatches + 1;
        Tel.count "service/read_mismatch"
      end))

let exec_write s ~lpn ~data ~suspend =
  if Array.length data <> s.cfg.strings then
    invalid_arg "Service.exec: data width does not match [strings]";
  match Ftl.write_in_place s.ftl ~lpn with
  | Error Ftl.Device_full ->
    s.rejected_full <- s.rejected_full + 1;
    fold 3 s;
    fold lpn s;
    Tel.count "service/rejected_full"
  | Error e ->
    (* No_free_block / No_victim escaping here is exactly the FTL
       space-accounting bug this PR fixes — fail loudly. *)
    failwith ("Service: FTL internal error escaped: " ^ Ftl.error_to_string e)
  | Ok () ->
    let phys_ops = Ftl.take_journal s.ftl in
    mirror s ~host_lpn:lpn ~host_data:data ~suspend phys_ops;
    s.store.(lpn) <- Some data;
    s.writes <- s.writes + 1;
    fold 2 s;
    fold lpn s;
    Array.iter (fun b -> fold b s) data

let exec s cmd =
  s.ops <- s.ops + 1;
  let t0 = Command_fsm.now s.fsm in
  (match cmd with
   | Workload.Cmd_read { lpn } -> exec_read s ~lpn:(lpn mod logical_pages s)
   | Workload.Cmd_trim { lpn } ->
     let lpn = lpn mod logical_pages s in
     s.trims <- s.trims + 1;
     Ftl.trim_in_place s.ftl ~lpn;
     s.store.(lpn) <- None;
     fold 4 s;
     fold lpn s
   | Workload.Cmd_write { lpn; data; suspend } ->
     exec_write s ~lpn:(lpn mod logical_pages s) ~data ~suspend);
  record_latency s t0

(* ---------- reporting ---------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float ((p *. float_of_int (n - 1)) +. 0.5)))

let latencies s =
  let lats = Array.sub s.lat_buf 0 s.lat_len in
  Array.sort compare lats;
  lats

(* Stable k-way merge of sorted per-instance distributions, walking the
   inputs in the order given: ties resolve to the earlier instance, so a
   fleet's merged percentile array is one deterministic sequence rather
   than whatever an unstable concat-and-sort produced. *)
let merge_latencies sorted =
  let arrays = Array.of_list sorted in
  let k = Array.length arrays in
  let total = Array.fold_left (fun n a -> n + Array.length a) 0 arrays in
  let out = Array.make (max total 1) 0. in
  let pos = Array.make k 0 in
  for i = 0 to total - 1 do
    let best = ref (-1) in
    for j = 0 to k - 1 do
      if pos.(j) < Array.length arrays.(j) then
        let v = arrays.(j).(pos.(j)) in
        if !best < 0 || v < arrays.(!best).(pos.(!best)) then best := j
    done;
    out.(i) <- arrays.(!best).(pos.(!best));
    pos.(!best) <- pos.(!best) + 1
  done;
  if total = 0 then [||] else Array.sub out 0 total

let latency_summary s =
  let lats = latencies s in
  let n = Array.length lats in
  let mean =
    if n = 0 then 0.
    else Array.fold_left ( +. ) 0. lats /. float_of_int n
  in
  {
    mean;
    p50 = percentile lats 0.50;
    p95 = percentile lats 0.95;
    p99 = percentile lats 0.99;
    max = (if n = 0 then 0. else lats.(n - 1));
  }

let verify_scan s =
  let mismatches = ref 0 in
  Array.iteri
    (fun lpn stored ->
       match stored with
       | None -> ()
       | Some expect -> (
         match Ftl.read s.ftl ~lpn with
         | None -> incr mismatches
         | Some (block, page) -> (
           let bits = Command_fsm.sense_word s.fsm ~addr:(addr_of s ~block ~page) in
           match Ecc.decode ~k:s.cfg.strings bits with
           | Ecc.Clean d | Ecc.Corrected (d, _) ->
             if d <> expect then incr mismatches
           | Ecc.Uncorrectable -> incr mismatches)))
    s.store;
  !mismatches

let state_digest s =
  let h = ref (Command_fsm.state_digest s.fsm) in
  let f v = h := Workload.digest_fold !h v in
  Array.iteri
    (fun lpn _ ->
       match Ftl.read s.ftl ~lpn with
       | None -> f (-1)
       | Some (block, page) -> f (addr_of s ~block ~page))
    s.store;
  let st = Ftl.stats s.ftl in
  List.iter f
    [
      st.Ftl.host_writes; st.Ftl.device_writes; st.Ftl.gc_runs; st.Ftl.erases;
      st.Ftl.retired_blocks; st.Ftl.max_erase_count; st.Ftl.min_erase_count;
    ];
  !h

let report s =
  let accounted = s.reads + s.writes + s.rejected_full + s.trims in
  {
    ops = s.ops;
    reads = s.reads;
    read_hits = s.read_hits;
    writes = s.writes;
    rejected_full = s.rejected_full;
    trims = s.trims;
    lost_ops = s.ops - accounted;
    read_mismatches = s.read_mismatches;
    verify_mismatches = verify_scan s;
    model_time = Command_fsm.now s.fsm;
    latency = latency_summary s;
    trace_digest = s.trace;
    state_digest = state_digest s;
    fsm = Command_fsm.stats s.fsm;
    ftl = Ftl.stats s.ftl;
    invariant_error =
      (match Ftl.check_invariants s.ftl with
       | Ok () -> None
       | Error msg -> Some msg);
  }

let run s cmds =
  Array.iter (exec s) cmds;
  report s

let run_trace ?profile ~seed ~ops s =
  let profile =
    match profile with
    | Some p -> { p with Workload.pages = logical_pages s; strings = s.cfg.strings }
    | None ->
      {
        Workload.default_profile with
        Workload.pages = logical_pages s;
        strings = s.cfg.strings;
      }
  in
  run s (Workload.generate_commands ~seed ~profile ~ops)
