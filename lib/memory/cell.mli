(** A flash cell: one floating-gate transistor plus its stored state and
    wear. The paper's logic convention is used throughout: electrons on the
    floating gate (positive ΔVT) = programmed = logic '0'; depleted =
    erased = logic '1'. *)

type logic =
  | Programmed  (** logic '0' *)
  | Erased      (** logic '1' *)

type t = {
  device : Gnrflash_device.Fgt.t;
  qfg : float;                        (** stored charge [C] *)
  wear : Gnrflash_device.Reliability.wear;
}

val make : ?qfg:float -> Gnrflash_device.Fgt.t -> t
(** Fresh cell (default neutral charge, zero wear). *)

val dvt : t -> float
(** Threshold shift of the stored state. *)

val state : ?dvt_threshold:float -> t -> logic
(** Classify the stored state by its threshold shift (default decision
    level 1 V). *)

val to_bit : logic -> int
(** [Programmed → 0], [Erased → 1]. *)

val program :
  ?pulse:Gnrflash_device.Program_erase.pulse ->
  ?reliability:Gnrflash_device.Reliability.model ->
  ?surrogate:bool ->
  t -> (t, string) result
(** Apply a program pulse, updating charge and wear. Fails on a broken
    oxide. [surrogate] is passed to {!Gnrflash_device.Program_erase}
    (default on: in-box pulses are table-served within the certified
    bound). *)

val erase :
  ?pulse:Gnrflash_device.Program_erase.pulse ->
  ?reliability:Gnrflash_device.Reliability.model ->
  ?surrogate:bool ->
  t -> (t, string) result
(** Apply an erase pulse, updating charge and wear. *)

val read : ?config:Gnrflash_device.Readout.config -> t -> logic
(** Sense the cell through the readout model (current comparison against
    half the neutral on-current). *)

val effective_vt : ?config:Gnrflash_device.Readout.config ->
  ?reliability:Gnrflash_device.Reliability.model -> t -> float
(** Threshold including both stored charge and wear-induced drift —
    the quantity whose program/erase window closes with cycling. *)
