(** Behavioral command-level NOR flash device, modeled on the classic
    JEDEC/AMD command set: unlock cycles, embedded word program with
    internal program-and-verify, a write buffer, sector erase with
    suspend/resume, busy/ready status with data-toggle semantics, and
    typed command-sequence errors.

    Every program and erase resolves through the device physics of
    {!Gnrflash_device.Program_erase} (surrogate-accelerated by default),
    so busy durations, over-erase drift and wear are consequences of the
    paper's floating-gate model rather than datasheet constants. Time is
    {e model time} in seconds — each bus cycle costs [t_cycle] and each
    embedded operation holds the device busy for its accumulated pulse
    time — which makes latency measurements bit-deterministic and
    independent of the execution tier running the simulation.

    State machine (command cycles, addresses taken modulo the device
    span; [SA] = any address inside the target sector):

    {v
                0xAA@0x555      0x55@0x2AA
        Idle ────────────► U1 ────────────► Unlocked
          ▲                                  │ │ │
          │ 0xF0 (reset, from any            │ │ └─ 0x25@SA ► Buf_count
          │      non-busy state)             │ │              │ N-1@SA
          │                                  │ │              ▼
          │                    0xA0@0x555 ◄──┘ │          Buf_load (N words @SA)
          │                        │           │              │
          │                        ▼           │              ▼
          │                  Word_program      │          Buf_confirm ── 0x29@SA ─► BUSY
          │                  (addr,data) ─► BUSY
          │                                    └─ 0x80@0x555 ► Erase_setup
          │                                         │ 0xAA@0x555, 0x55@0x2AA
          │                                         ▼
          │                                    Erase_unlocked
          │                                      │ 0x30@SA ─► BUSY (sector erase)
          │                                      │ 0x10@0x555 ► BUSY (chip erase)
          │        while erasing: 0xB0 ─► SUSPENDED ─ 0x30 ─► BUSY (resume)
    v}

    While busy, reads return {!constructor-Status} (DQ7 = complement of
    programmed data, DQ6 toggles on every status read, DQ2 toggles for
    the suspended sector); bus writes other than suspend/reset are
    rejected with a typed error and leave the operation running. *)

type config = {
  sectors : int;
  words_per_sector : int;
  word_bits : int;            (** cells per word (data + ECC bits) *)
  write_buffer_words : int;   (** capacity of the program buffer *)
  t_cycle : float;            (** bus cycle time [s] *)
  program_pulse : Gnrflash_device.Program_erase.pulse;
  erase_pulse : Gnrflash_device.Program_erase.pulse;
  max_pulses : int;           (** internal program/erase verify retries *)
  surrogate : bool;           (** serve pulses from the certified surrogate *)
  disturb : Gnrflash_device.Disturb.config option;
  (** when set, the gate disturb counted in [disturb_events] is fed back
      into the stored charge of the erased cells of the sector's
      unselected words (one {!Gnrflash_device.Disturb} transient per
      distinct victim charge); [None] (default) keeps disturb as pure
      accounting *)
}

val default_config : config
(** 8 sectors × 32 words × 13 bits, 16-word buffer, 100 ns cycles,
    the paper's ±15 V / 1 ms pulses, 8 verify retries, surrogate on,
    disturb feedback off. *)

type t
(** Mutable device instance (one word line of cells per word, flat).
    Not thread-safe; each execution-tier worker owns its instances. *)

(** Result of one bus read cycle. *)
type read_result =
  | Data of int array
      (** sensed word bits, [word_bits] entries of 0/1 *)
  | Status of { dq7 : int; dq6 : int; dq5 : int; dq2 : int }
      (** embedded-operation status: [dq7] is the complement of the bit
          being programmed (1 while erasing), [dq6] toggles on every
          status read while busy, [dq2] toggles for reads inside an
          erase-suspended sector, [dq5] sets on internal verify timeout *)

type error =
  | Bad_sequence of { state : string; addr : int; data : int }
      (** command cycle that no edge of the state machine accepts *)
  | Busy of { operation : string }
      (** bus write while an embedded operation is running *)
  | Not_erasing  (** suspend with no erase in flight *)
  | Not_suspended  (** resume with no suspended erase *)
  | Buffer_overflow of { count : int; capacity : int }
  | Buffer_sector_crossing of { sector : int; addr : int }
  | Physics of string
      (** the underlying pulse solve failed (typed solver error text) *)

val error_to_string : error -> string

type stats = {
  bus_cycles : int;
  data_reads : int;
  status_reads : int;
  programs : int;          (** embedded program operations (word or buffer) *)
  words_programmed : int;
  sector_erases : int;
  chip_erases : int;
  suspends : int;
  resumes : int;
  resets : int;
  program_pulses : int;    (** physics pulses, program polarity *)
  erase_pulses : int;
  verify_timeouts : int;   (** words/sectors that hit [max_pulses] *)
  disturb_events : int;    (** program pulses seen by unselected words *)
  bad_sequences : int;
}

val create : ?config:config -> Gnrflash_device.Fgt.t -> t
(** Fresh device, all cells erased (neutral charge), model clock at 0.
    @raise Invalid_argument on non-positive geometry. *)

val config : t -> config
val words : t -> int
(** Total word span ([sectors × words_per_sector]); addresses wrap
    modulo this. *)

val sector_of : t -> addr:int -> int

val now : t -> float
(** Model clock [s]. *)

val ready : t -> bool
(** RY/BY# — false while an embedded operation is running (a suspended
    erase with no nested program reports ready). *)

val write : t -> addr:int -> data:int -> (unit, error) result
(** One bus write cycle (advances the clock by [t_cycle]). Drives the
    command state machine; completed unlock sequences launch embedded
    operations. For the program data cycle, [data] is the target word:
    bit [i] of [data] is the target for cell [i] (AND semantics — a 1
    over a programmed 0 cannot erase it; the internal verify then records
    a timeout, which is why the firmware layer must erase before
    program). Errors leave the device state unchanged apart from the
    consumed bus cycle and the [bad_sequences] counter. *)

val read : t -> addr:int -> read_result
(** One bus read cycle (advances the clock by [t_cycle]). Returns
    {!constructor-Status} while the device is busy, or for addresses in
    the suspended sector while an erase is suspended. *)

val step_to : t -> float -> unit
(** Advance the model clock to [max now t], completing any embedded
    operation whose busy window ends by then. *)

val wait_ready : t -> unit
(** RY/BY#-style wait: jump the clock to the end of the current busy
    window (no-op when ready). *)

val poll_ready : t -> interval:float -> int
(** Data-toggle polling loop: status-read the device every [interval]
    model seconds until DQ6 stops toggling; returns the number of status
    reads. The classic alternative to the RY/BY# pin. *)

val sense_word : t -> addr:int -> int array
(** Direct array sense for verification harnesses: bypasses the bus (no
    clock advance, no status gating, works while busy or suspended). *)

val cell_count : t -> int
(** Total cells ([words × word_bits]). *)

val cell : t -> idx:int -> Cell.t
(** Boxed {!Cell.t} view of cell [idx] (flat index
    [addr × word_bits + bit]) out of the struct-of-arrays store — the
    single-cell window the side-by-side regression tests compare
    charge and wear through, bit for bit.
    @raise Invalid_argument when [idx] is out of range. *)

val stats : t -> stats

val state_name : t -> string
(** Current command-sequence state, for diagnostics ("idle",
    "unlocked", "erase_suspended", ...). *)

val state_digest : t -> int
(** Order-sensitive digest of the full device state: cell charges and
    wear (bit patterns of the floats), command state, clock, counters.
    Bit-identical runs produce equal digests across jobs/shards tiers. *)
