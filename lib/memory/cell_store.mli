(** Struct-of-arrays cell population: the allocation-free backing store
    for {!Command_fsm}, {!Nor_array} and the endurance paths.

    The paper models the array as a uniform population of identical
    floating-gate cells distinguished only by stored charge and wear
    (Hossain et al., SOCC 2014), so one shared {!Gnrflash_device.Fgt.t}
    record per store plus flat float columns for [qfg] and the wear
    scalars replaces the boxed per-cell {!Cell.t} records: writes are
    in-place, bit readout is O(1) arithmetic on [qfg], and batched range
    operations resolve one surrogate solve per {e distinct} charge and
    replay the precomputed charge/wear deltas across the range.

    Bit-identity contract: every update applies exactly the float
    expressions of {!Cell.apply_bias_pulse} /
    {!Gnrflash_device.Reliability.after_pulse} (memoized per distinct
    starting charge — valid because the pulse solve is a pure function of
    [(device, vgs, duration, qfg)], see {!Gnrflash_device.Program_erase}),
    so charges, wear and digests stay Int64-bit-identical to the seed
    record-based path. The side-by-side qcheck property in
    [test/test_cell_store.ml] pins this. *)

type t
(** Mutable store. Not thread-safe; each execution-tier worker owns its
    instances. *)

val create : ?qfg:float -> n:int -> Gnrflash_device.Fgt.t -> t
(** [n] cells over one shared device record, all at charge [qfg]
    (default neutral) with zero wear. @raise Invalid_argument if [n < 1]. *)

val length : t -> int
val device : t -> Gnrflash_device.Fgt.t

(** {1 Per-cell scalar access} *)

val qfg : t -> int -> float
val fluence : t -> int -> float
val traps : t -> int -> float
val cycles : t -> int -> int
val broken : t -> int -> bool
val set_qfg : t -> int -> float -> unit

val dvt : t -> int -> float
(** Threshold shift of cell [i]: bit-identical to
    {!Gnrflash_device.Fgt.threshold_shift} (the control-coupling
    capacitance is hoisted at [create]). *)

val bit : ?dvt_threshold:float -> t -> int -> int
(** O(1) readout: [0] (programmed) when [dvt] exceeds the decision level
    (default 1 V), else [1] — the {!Cell.state}/{!Cell.to_bit}
    composition without the record round-trip. *)

(** {1 Cell views}

    {!Cell.t} stays the single-cell currency for APIs and tests; these
    convert at the boundary. *)

val view : t -> int -> Cell.t
(** Boxed snapshot of cell [i] (shares the store's device record). *)

val set : t -> int -> Cell.t -> unit
(** Write [c]'s charge and wear into slot [i]. The cell's [device] field
    is ignored: the store's shared device stays authoritative. *)

(** {1 Batched pulse application} *)

type memo
(** Memo of pulse outcomes keyed by the bits of the starting charge
    (sign-preserving, so [-0.] and [0.] stay distinct). Each entry
    carries the post-pulse charge and the precomputed wear deltas of
    {!Gnrflash_device.Reliability.after_pulse}. A memo is valid for one
    fixed [(pulse, surrogate, reliability)] triple on this store's device
    — e.g. an instance-lifetime program memo and erase memo in
    {!Command_fsm}. Entries are admitted from two sources: surrogate-served
    outcomes (pure in the charge by certification), and out-of-box exact
    outcomes once {!Gnrflash_device.Pulse_surrogate.response_static} says
    the consult can no longer advance the build promotion — before that,
    every pulse re-consults so the surrogate builds on exactly the same
    pulse as under the record-based path. *)

val memo : unit -> memo

val apply_pulse_at :
  ?reliability:Gnrflash_device.Reliability.model ->
  t ->
  memo:memo ->
  pulse:Gnrflash_device.Program_erase.pulse ->
  surrogate:bool ->
  int -> (unit, string) result
(** Apply one pulse to cell [i] in place, bit-identical to
    {!Cell.program}/{!Cell.erase} on the equivalent {!Cell.t}: broken
    oxide fails first (before any lookup), a fresh charge resolves one
    surrogate consult (falling back to the exact/replay solver) and
    memoizes when sound (see {!type-memo}), a repeated charge replays the
    deltas in O(1) with no solve and no allocation. Solver errors are
    returned (never memoized) with the cell unchanged. *)

val apply_pulse_range :
  ?reliability:Gnrflash_device.Reliability.model ->
  t ->
  memo:memo ->
  pulse:Gnrflash_device.Program_erase.pulse ->
  surrogate:bool ->
  lo:int -> hi:int -> (unit, string) result
(** [apply_pulse_at] over [lo..hi] inclusive, ascending — one solve per
    distinct charge in the range, deltas blitted across the rest. Stops
    at the first error (cells before it keep their updates, matching the
    seed per-cell loop). *)

val fold_digest : t -> (int -> int -> int) -> int -> int
(** [fold_digest t f h] folds [f] over every cell in address order —
    charge bits, fluence bits, traps bits, cycles, broken flag — exactly
    the per-cell prefix of {!Command_fsm.state_digest}, so digests stay
    stable across the SoA refactor. *)
