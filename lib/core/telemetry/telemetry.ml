(* Solver telemetry: named monotonic counters, gauges, and wall-clock span
   timers for the tunneling -> capacitive-network -> transient pipeline.

   Design constraints:
   - negligible overhead when disabled: every entry point is a single
     [if not !enabled] branch away from a no-op, so instrumentation can stay
     permanently wired into the numeric kernels;
   - scoped attribution: [span] pushes its name onto a context stack and
     every counter/gauge recorded inside is keyed under the caller's path
     (e.g. "transient/run/ode/rhs_eval"), so nested solves attribute work to
     the figure or experiment that asked for it;
   - no dependencies beyond the stdlib + unix (for the wall clock), so the
     numerics layer can depend on this module without cycles.

   Domain-safety: every domain records into its own domain-local sink
   (Domain.DLS), so the hot path stays lock-free. Worker domains spawned by
   the Sweep pool call [flush_local] before they join, merging their sink
   into a mutex-protected global accumulator; counters and span calls add,
   span times add (total work across domains), gauges are last-writer in
   merge order. Accessors ([counter], [snapshot], ...) see the merge of the
   global accumulator and the calling domain's local sink, so single-domain
   callers observe exactly the old semantics. *)

type span_stat = {
  calls : int;
  total_s : float;
}

type sink = {
  sink_counters : (string, int ref) Hashtbl.t;
  sink_gauges : (string, float) Hashtbl.t;
  sink_spans : (string, span_stat ref) Hashtbl.t;
  (* Span-name stack plus its joined path, maintained on span entry/exit so
     counter increments (the hot operation) never re-join the stack. The
     prefix is "" at top level. *)
  mutable context : string list;
  mutable context_prefix : string;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  spans : (string * span_stat) list;
}

let make_sink () =
  {
    sink_counters = Hashtbl.create 64;
    sink_gauges = Hashtbl.create 16;
    sink_spans = Hashtbl.create 16;
    context = [];
    context_prefix = "";
  }

let enabled = Atomic.make false

(* One sink per domain; the main domain's sink doubles as the primary store
   so the single-domain path never touches the mutex. *)
let sink_key : sink Domain.DLS.key = Domain.DLS.new_key make_sink
let local () = Domain.DLS.get sink_key

(* Merge target for worker-domain sinks, only touched under [merged_mutex]
   by [flush_local] / [reset] and the read-side merge. *)
let merged = make_sink ()
let merged_mutex = Mutex.create ()

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

let clear_sink s =
  Hashtbl.reset s.sink_counters;
  Hashtbl.reset s.sink_gauges;
  Hashtbl.reset s.sink_spans;
  s.context <- [];
  s.context_prefix <- ""

let reset () =
  Mutex.protect merged_mutex (fun () -> clear_sink merged);
  clear_sink (local ())

(* Fold [src] into [dst]: counters and span stats add, gauges overwrite. *)
let merge_sink ~dst (src : sink) =
  (* lint: allow L9 — counter merge is commutative addition keyed by name;
     the iteration order over [src] cannot change any merged total *)
  Hashtbl.iter
    (fun key r ->
       match Hashtbl.find_opt dst.sink_counters key with
       | Some d -> d := !d + !r
       | None -> Hashtbl.add dst.sink_counters key (ref !r))
    src.sink_counters;
  (* lint: allow L9 — last-writer-wins gauges are documented as approximate *)
  Hashtbl.iter (fun key v -> Hashtbl.replace dst.sink_gauges key v) src.sink_gauges;
  (* lint: allow L9 — span stats add like counters; order-insensitive *)
  Hashtbl.iter
    (fun key r ->
       match Hashtbl.find_opt dst.sink_spans key with
       | Some d -> d := { calls = !d.calls + !r.calls; total_s = !d.total_s +. !r.total_s }
       | None -> Hashtbl.add dst.sink_spans key (ref !r))
    src.sink_spans

(* Flushes are counted so the bench can assert the pool batches telemetry
   (one flush per participating worker per Sweep call, not per chunk). *)
let flushes = Atomic.make 0
let flush_count () = Atomic.get flushes

let flush_local () =
  Atomic.incr flushes;
  let s = local () in
  Mutex.protect merged_mutex (fun () -> merge_sink ~dst:merged s);
  Hashtbl.reset s.sink_counters;
  Hashtbl.reset s.sink_gauges;
  Hashtbl.reset s.sink_spans

(* Merge a snapshot produced by another process (a Shard worker) into the
   global accumulator, as if its domains had called [flush_local] here. *)
let absorb ({ counters; gauges; spans } : snapshot) =
  if Atomic.get enabled then begin
    let src = make_sink () in
    List.iter (fun (k, v) -> Hashtbl.replace src.sink_counters k (ref v)) counters;
    List.iter (fun (k, v) -> Hashtbl.replace src.sink_gauges k v) gauges;
    List.iter (fun (k, v) -> Hashtbl.replace src.sink_spans k (ref v)) spans;
    Mutex.protect merged_mutex (fun () -> merge_sink ~dst:merged src)
  end

(* Context propagation for the Sweep pool: a worker domain adopts the
   submitting domain's span path so parallel work is keyed identically to
   the serial equivalent. *)
let context_prefix () = (local ()).context_prefix

let with_context_prefix prefix f =
  let s = local () in
  let saved = s.context_prefix in
  s.context_prefix <- prefix;
  Fun.protect ~finally:(fun () -> s.context_prefix <- saved) f

let path s name = if s.context_prefix = "" then name else s.context_prefix ^ "/" ^ name

let count ?(n = 1) name =
  if Atomic.get enabled && n > 0 then begin
    let s = local () in
    let key = path s name in
    match Hashtbl.find_opt s.sink_counters key with
    | Some r -> r := !r + n
    | None -> Hashtbl.add s.sink_counters key (ref n)
  end

let gauge name v =
  if Atomic.get enabled then begin
    let s = local () in
    Hashtbl.replace s.sink_gauges (path s name) v
  end

let span name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let s = local () in
    let saved_prefix = s.context_prefix in
    let key = path s name in
    s.context <- name :: s.context;
    s.context_prefix <- key;
    (* lint: allow L9 — span durations are observability data alongside the
       sweep results, never an input to them *)
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        (match s.context with _ :: rest -> s.context <- rest | [] -> ());
        s.context_prefix <- saved_prefix;
        (* lint: allow L9 — see above: timing telemetry only *)
        let dt = Unix.gettimeofday () -. t0 in
        match Hashtbl.find_opt s.sink_spans key with
        | Some r -> r := { calls = !r.calls + 1; total_s = !r.total_s +. dt }
        | None -> Hashtbl.add s.sink_spans key (ref { calls = 1; total_s = dt }))
      f
  end

(* ---- accessors: local sink merged over the global accumulator ---- *)

let read_both f =
  Mutex.protect merged_mutex (fun () -> f merged (local ()))

let counter name =
  let get s = match Hashtbl.find_opt s.sink_counters name with Some r -> !r | None -> 0 in
  read_both (fun m l -> get m + get l)

(* Sum of every counter whose path is [name] or ends in "/name"; lets callers
   ask for e.g. "ode/rhs_eval" regardless of which span recorded it. *)
let counter_total name =
  let suffix = "/" ^ name in
  let total s =
    Hashtbl.fold
      (fun key r acc ->
         if key = name || String.ends_with ~suffix key then acc + !r else acc)
      s.sink_counters 0
  in
  read_both (fun m l -> total m + total l)

let span_stat name =
  read_both (fun m l ->
      match Hashtbl.find_opt m.sink_spans name, Hashtbl.find_opt l.sink_spans name with
      | None, None -> None
      | Some r, None | None, Some r -> Some !r
      | Some a, Some b ->
        Some { calls = !a.calls + !b.calls; total_s = !a.total_s +. !b.total_s })

let snapshot () : snapshot =
  read_both (fun m l ->
      let view = make_sink () in
      merge_sink ~dst:view m;
      merge_sink ~dst:view l;
      let sorted tbl read =
        Hashtbl.fold (fun k v acc -> (k, read v) :: acc) tbl [] |> List.sort compare
      in
      {
        counters = sorted view.sink_counters ( ! );
        gauges = sorted view.sink_gauges Fun.id;
        spans = sorted view.sink_spans ( ! );
      })

(* ---- renderers ---- *)

let render_text ({ counters; gauges; spans } : snapshot) =
  let b = Buffer.create 512 in
  let section title = Buffer.add_string b (title ^ ":\n") in
  if counters <> [] then begin
    section "counters";
    List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-48s %d\n" k v)) counters
  end;
  if gauges <> [] then begin
    section "gauges";
    List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-48s %g\n" k v)) gauges
  end;
  if spans <> [] then begin
    section "spans";
    List.iter
      (fun (k, s) ->
         Buffer.add_string b
           (Printf.sprintf "  %-48s %6d calls %12.3f ms\n" k s.calls (s.total_s *. 1e3)))
      spans
  end;
  if Buffer.length b = 0 then Buffer.add_string b "telemetry: no data recorded\n";
  Buffer.contents b

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | '\r' -> Buffer.add_string b "\\r"
       | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.17g round-trips IEEE doubles exactly, which the snapshot round-trip
   test relies on. *)
let json_float v =
  if Float.is_integer v && abs_float v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let render_json ({ counters; gauges; spans } : snapshot) =
  let b = Buffer.create 512 in
  let entries items emit_v =
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char b ',';
         Buffer.add_string b (Printf.sprintf "\"%s\":" (escape_string k));
         emit_v v)
      items;
    Buffer.add_char b '}'
  in
  Buffer.add_string b "{\"counters\":";
  entries counters (fun v -> Buffer.add_string b (string_of_int v));
  Buffer.add_string b ",\"gauges\":";
  entries gauges (fun v -> Buffer.add_string b (json_float v));
  Buffer.add_string b ",\"spans\":";
  entries spans (fun s ->
      Buffer.add_string b
        (Printf.sprintf "{\"calls\":%d,\"total_s\":%s}" s.calls (json_float s.total_s)));
  Buffer.add_string b "}";
  Buffer.contents b

(* ---- minimal JSON reader, just enough to round-trip [render_json] ---- *)

type json = Num of float | Str of string | Obj of (string * json) list

exception Parse_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'; advance ()
         | Some '\\' -> Buffer.add_char b '\\'; advance ()
         | Some '/' -> Buffer.add_char b '/'; advance ()
         | Some 'n' -> Buffer.add_char b '\n'; advance ()
         | Some 't' -> Buffer.add_char b '\t'; advance ()
         | Some 'r' -> Buffer.add_char b '\r'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "bad \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else fail "non-ascii \\u escape unsupported"
         | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false)
    do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' -> parse_obj ()
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | _ -> fail "expected value"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin advance (); Obj [] end
    else begin
      let rec members acc =
        let key = (skip_ws (); parse_string ()) in
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); members ((key, v) :: acc)
        | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let snapshot_of_json text =
  try
    let assoc name = function
      | Obj fields ->
        (match List.assoc_opt name fields with
         | Some v -> v
         | None -> raise (Parse_error ("missing field " ^ name)))
      | _ -> raise (Parse_error "expected object")
    in
    let entries f = function
      | Obj fields -> List.map (fun (k, v) -> (k, f v)) fields
      | _ -> raise (Parse_error "expected object of entries")
    in
    let num = function Num v -> v | _ -> raise (Parse_error "expected number") in
    let root = parse_json text in
    Ok
      {
        counters = entries (fun v -> int_of_float (num v)) (assoc "counters" root);
        gauges = entries num (assoc "gauges" root);
        spans =
          entries
            (fun v ->
               {
                 calls = int_of_float (num (assoc "calls" v));
                 total_s = num (assoc "total_s" v);
               })
            (assoc "spans" root);
      }
  with
  | Parse_error msg -> Error ("Telemetry.snapshot_of_json: " ^ msg)
  | Failure msg -> Error ("Telemetry.snapshot_of_json: " ^ msg)
